package hw

import "bytes"

// Serial8250 models a 16550-style UART reduced to what a guest console
// needs: transmit (captured into a buffer), line status, and the usual
// register decode at COM1 (0x3f8). It never raises interrupts; consoles
// poll LSR.
type Serial8250 struct {
	base uint16
	tx   bytes.Buffer

	dlab    bool
	divisor uint16
	ier     uint8
	lcr     uint8
	mcr     uint8
	scratch uint8

	rx []byte // injected input for the guest to read
}

// NewSerial8250 creates a UART at the given port base (0x3f8 for COM1).
func NewSerial8250(base uint16) *Serial8250 { return &Serial8250{base: base, divisor: 1} }

// Base returns the first port of the register window.
func (s *Serial8250) Base() uint16 { return s.base }

// Output returns everything the guest has transmitted so far.
func (s *Serial8250) Output() string { return s.tx.String() }

// OutputBytes returns the raw transmitted bytes.
func (s *Serial8250) OutputBytes() []byte { return s.tx.Bytes() }

// InjectInput queues bytes for the guest to receive.
func (s *Serial8250) InjectInput(b []byte) { s.rx = append(s.rx, b...) }

// PortRead implements IOPortHandler.
func (s *Serial8250) PortRead(port uint16, size int) uint32 {
	switch port - s.base {
	case 0: // RBR or DLL
		if s.dlab {
			return uint32(s.divisor & 0xff)
		}
		if len(s.rx) > 0 {
			b := s.rx[0]
			s.rx = s.rx[1:]
			return uint32(b)
		}
		return 0
	case 1: // IER or DLM
		if s.dlab {
			return uint32(s.divisor >> 8)
		}
		return uint32(s.ier)
	case 2: // IIR: no interrupt pending
		return 0x01
	case 3:
		return uint32(s.lcr)
	case 4:
		return uint32(s.mcr)
	case 5: // LSR: THR empty + transmitter idle, data-ready if rx queued
		lsr := uint32(0x60)
		if len(s.rx) > 0 {
			lsr |= 0x01
		}
		return lsr
	case 6: // MSR
		return 0xb0
	case 7:
		return uint32(s.scratch)
	}
	return 0xff
}

// PortWrite implements IOPortHandler.
func (s *Serial8250) PortWrite(port uint16, size int, val uint32) {
	v := uint8(val)
	switch port - s.base {
	case 0:
		if s.dlab {
			s.divisor = s.divisor&0xff00 | uint16(v)
			return
		}
		s.tx.WriteByte(v)
	case 1:
		if s.dlab {
			s.divisor = s.divisor&0x00ff | uint16(v)<<8
			return
		}
		s.ier = v
	case 3:
		s.lcr = v
		s.dlab = v&0x80 != 0
	case 4:
		s.mcr = v
	case 7:
		s.scratch = v
	}
}
