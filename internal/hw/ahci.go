package hw

import (
	"encoding/binary"
	"fmt"
)

// AHCI register offsets (generic host control).
const (
	ahciCAP = 0x00
	ahciGHC = 0x04
	ahciIS  = 0x08
	ahciPI  = 0x0c
	ahciVS  = 0x10

	ahciPortBase = 0x100
	ahciPortSize = 0x80

	// Per-port register offsets.
	pxCLB  = 0x00
	pxCLBU = 0x04
	pxFB   = 0x08
	pxFBU  = 0x0c
	pxIS   = 0x10
	pxIE   = 0x14
	pxCMD  = 0x18
	pxTFD  = 0x20
	pxSIG  = 0x24
	pxSSTS = 0x28
	pxSCTL = 0x2c
	pxSERR = 0x30
	pxSACT = 0x34
	pxCI   = 0x38
)

// GHC bits.
const (
	ghcHR = 1 << 0
	ghcIE = 1 << 1
	ghcAE = 1 << 31
)

// PxCMD bits.
const (
	pxcmdST  = 1 << 0
	pxcmdFRE = 1 << 4
	pxcmdFR  = 1 << 14
	pxcmdCR  = 1 << 15
)

// PxIS bits.
const (
	pxisDHRS = 1 << 0 // device-to-host register FIS received
	pxisTFES = 1 << 30
)

// ATA commands handled by the model.
const (
	ataReadDMAExt  = 0x25
	ataWriteDMAExt = 0x35
	ataFlushCache  = 0xe7
	ataIdentify    = 0xec
)

// AHCIStats counts controller activity for the Figure 6 analysis.
type AHCIStats struct {
	MMIOReads  uint64
	MMIOWrites uint64
	Commands   uint64
	IRQs       uint64
	DMABytes   uint64
	Errors     uint64
}

// AHCI models a single-port AHCI host bus adapter attached to a Disk.
// The register interface follows the AHCI programming model closely
// enough that the same driver code programs both this physical instance
// and the VMM's virtual instance: command list and command tables are
// fetched by DMA, PRDT entries scatter/gather the data, and completion
// raises the port interrupt.
type AHCI struct {
	Dev   DeviceID
	disk  *Disk
	dma   DMABus
	queue *EventQueue
	clock func() Cycles
	raise func() // interrupt line to the platform PIC

	// Generic host control.
	ghc uint32
	is  uint32

	// Port 0.
	clb  uint64
	fb   uint64
	pis  uint32
	pie  uint32
	pcmd uint32
	tfd  uint32
	serr uint32
	ci   uint32

	inflight uint32 // slots issued to the media but not yet complete

	Stats AHCIStats
}

// NewAHCI creates the controller. raise is invoked for each interrupt
// assertion.
func NewAHCI(dev DeviceID, disk *Disk, dma DMABus, queue *EventQueue, clock func() Cycles, raise func()) *AHCI {
	return &AHCI{
		Dev: dev, disk: disk, dma: dma, queue: queue, clock: clock, raise: raise,
		tfd: 0x50, // DRDY | seek complete
	}
}

// SetDMA replaces the DMA path (e.g., after the hypervisor interposes an
// IOMMU domain).
func (a *AHCI) SetDMA(dma DMABus) { a.dma = dma }

// Disk returns the attached media.
func (a *AHCI) Disk() *Disk { return a.disk }

// MMIORead implements MMIOHandler.
func (a *AHCI) MMIORead(off uint32, size int) uint32 {
	a.Stats.MMIOReads++
	switch off {
	case ahciCAP:
		return 0x40141f00 | 0 // 64-bit addressing, 32 slots, 1 port
	case ahciGHC:
		return a.ghc | ghcAE
	case ahciIS:
		return a.is
	case ahciPI:
		return 0x1
	case ahciVS:
		return 0x00010300
	}
	if off >= ahciPortBase && off < ahciPortBase+ahciPortSize {
		switch off - ahciPortBase {
		case pxCLB:
			return uint32(a.clb)
		case pxCLBU:
			return uint32(a.clb >> 32)
		case pxFB:
			return uint32(a.fb)
		case pxFBU:
			return uint32(a.fb >> 32)
		case pxIS:
			return a.pis
		case pxIE:
			return a.pie
		case pxCMD:
			cmd := a.pcmd
			if a.pcmd&pxcmdST != 0 {
				cmd |= pxcmdCR
			}
			if a.pcmd&pxcmdFRE != 0 {
				cmd |= pxcmdFR
			}
			return cmd
		case pxTFD:
			return a.tfd
		case pxSIG:
			return 0x00000101 // SATA disk signature
		case pxSSTS:
			return 0x113 // device present, Gen1 speed, active
		case pxSERR:
			return a.serr
		case pxSACT:
			return 0
		case pxCI:
			return a.ci
		}
	}
	return 0
}

// MMIOWrite implements MMIOHandler.
func (a *AHCI) MMIOWrite(off uint32, size int, val uint32) {
	a.Stats.MMIOWrites++
	switch off {
	case ahciGHC:
		if val&ghcHR != 0 {
			a.reset()
			return
		}
		a.ghc = val &^ ghcHR
		return
	case ahciIS:
		a.is &^= val // write-1-to-clear
		return
	}
	if off >= ahciPortBase && off < ahciPortBase+ahciPortSize {
		switch off - ahciPortBase {
		case pxCLB:
			a.clb = a.clb&^0xffffffff | uint64(val)
		case pxCLBU:
			a.clb = a.clb&0xffffffff | uint64(val)<<32
		case pxFB:
			a.fb = a.fb&^0xffffffff | uint64(val)
		case pxFBU:
			a.fb = a.fb&0xffffffff | uint64(val)<<32
		case pxIS:
			a.pis &^= val // write-1-to-clear
		case pxIE:
			a.pie = val
		case pxCMD:
			a.pcmd = val & (pxcmdST | pxcmdFRE)
		case pxSERR:
			a.serr &^= val
		case pxCI:
			newSlots := val &^ a.ci &^ a.inflight
			a.ci |= val
			if a.pcmd&pxcmdST != 0 {
				for slot := 0; slot < 32; slot++ {
					if newSlots&(1<<uint(slot)) != 0 {
						a.issue(slot)
					}
				}
			}
		}
	}
}

func (a *AHCI) reset() {
	a.ghc, a.is = 0, 0
	a.pis, a.pie, a.pcmd, a.ci, a.serr, a.inflight = 0, 0, 0, 0, 0, 0
	a.tfd = 0x50
}

// cmdHeader is a decoded AHCI command-list entry.
type cmdHeader struct {
	cfl   int
	write bool
	prdtl int
	ctba  uint64
}

func (a *AHCI) readHeader(slot int) (cmdHeader, error) {
	var raw [32]byte
	if err := a.dma.DMARead(a.Dev, a.clb+uint64(slot)*32, raw[:]); err != nil {
		return cmdHeader{}, err
	}
	dw0 := binary.LittleEndian.Uint32(raw[0:])
	return cmdHeader{
		cfl:   int(dw0 & 0x1f),
		write: dw0&(1<<6) != 0,
		prdtl: int(dw0 >> 16),
		ctba:  uint64(binary.LittleEndian.Uint32(raw[8:])) | uint64(binary.LittleEndian.Uint32(raw[12:]))<<32,
	}, nil
}

// prd is a decoded physical region descriptor.
type prd struct {
	dba   uint64
	bytes int
}

func (a *AHCI) readPRDT(h cmdHeader) ([]prd, error) {
	out := make([]prd, 0, h.prdtl)
	for i := 0; i < h.prdtl; i++ {
		var raw [16]byte
		if err := a.dma.DMARead(a.Dev, h.ctba+0x80+uint64(i)*16, raw[:]); err != nil {
			return nil, err
		}
		dba := uint64(binary.LittleEndian.Uint32(raw[0:])) | uint64(binary.LittleEndian.Uint32(raw[4:]))<<32
		dbc := binary.LittleEndian.Uint32(raw[12:])&0x3fffff + 1 // zero-based count
		out = append(out, prd{dba: dba, bytes: int(dbc)})
	}
	return out, nil
}

// issue fetches the command in slot and schedules its completion.
func (a *AHCI) issue(slot int) {
	a.Stats.Commands++
	h, err := a.readHeader(slot)
	if err != nil {
		a.fail(slot, err)
		return
	}
	var cfis [20]byte
	if err := a.dma.DMARead(a.Dev, h.ctba, cfis[:]); err != nil {
		a.fail(slot, err)
		return
	}
	if cfis[0] != 0x27 { // H2D register FIS
		a.fail(slot, fmt.Errorf("hw: AHCI slot %d: bad FIS type %#x", slot, cfis[0]))
		return
	}
	cmd := cfis[2]
	lba := uint64(cfis[4]) | uint64(cfis[5])<<8 | uint64(cfis[6])<<16 |
		uint64(cfis[8])<<24 | uint64(cfis[9])<<32 | uint64(cfis[10])<<40
	count := int(uint16(cfis[12]) | uint16(cfis[13])<<8)
	if count == 0 {
		count = 65536
	}

	bit := uint32(1) << uint(slot)
	a.inflight |= bit
	a.tfd |= 0x80 // BSY

	var bytes int
	switch cmd {
	case ataReadDMAExt, ataWriteDMAExt:
		bytes = count * SectorSize
	case ataIdentify:
		bytes = SectorSize
	case ataFlushCache:
		bytes = 0
	default:
		a.fail(slot, fmt.Errorf("hw: AHCI slot %d: unsupported ATA command %#x", slot, cmd))
		return
	}

	done := a.disk.Schedule(a.clock(), bytes)
	a.queue.At(done, func() {
		a.complete(slot, h, cmd, lba, count)
	})
}

func (a *AHCI) complete(slot int, h cmdHeader, cmd uint8, lba uint64, count int) {
	bit := uint32(1) << uint(slot)
	var err error
	switch cmd {
	case ataReadDMAExt:
		buf := make([]byte, count*SectorSize)
		if err = a.disk.ReadSectors(lba, count, buf); err == nil {
			err = a.scatter(h, buf)
		}
	case ataWriteDMAExt:
		buf := make([]byte, count*SectorSize)
		if err = a.gather(h, buf); err == nil {
			err = a.disk.WriteSectors(lba, count, buf)
		}
	case ataIdentify:
		err = a.scatter(h, a.identify())
	case ataFlushCache:
		// No data.
	}
	a.ci &^= bit
	a.inflight &^= bit
	if a.inflight == 0 {
		a.tfd &^= 0x80 // clear BSY
	}
	if err != nil {
		a.Stats.Errors++
		a.tfd |= 0x01 // ERR
		a.pis |= pxisTFES
	} else {
		a.pis |= pxisDHRS
	}
	a.maybeInterrupt()
}

func (a *AHCI) fail(slot int, err error) {
	a.Stats.Errors++
	bit := uint32(1) << uint(slot)
	a.ci &^= bit
	a.inflight &^= bit
	a.tfd |= 0x01
	a.pis |= pxisTFES
	a.maybeInterrupt()
}

func (a *AHCI) maybeInterrupt() {
	if a.pis&a.pie != 0 {
		a.is |= 1 // port 0
		if a.ghc&ghcIE != 0 {
			a.Stats.IRQs++
			a.raise()
		}
	}
}

// scatter writes buf out through the PRDT.
func (a *AHCI) scatter(h cmdHeader, buf []byte) error {
	prds, err := a.readPRDT(h)
	if err != nil {
		return err
	}
	for _, p := range prds {
		if len(buf) == 0 {
			break
		}
		n := p.bytes
		if n > len(buf) {
			n = len(buf)
		}
		if err := a.dma.DMAWrite(a.Dev, p.dba, buf[:n]); err != nil {
			return err
		}
		a.Stats.DMABytes += uint64(n)
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return fmt.Errorf("hw: AHCI PRDT too small: %d bytes left", len(buf))
	}
	return nil
}

// gather reads buf in through the PRDT.
func (a *AHCI) gather(h cmdHeader, buf []byte) error {
	prds, err := a.readPRDT(h)
	if err != nil {
		return err
	}
	for _, p := range prds {
		if len(buf) == 0 {
			break
		}
		n := p.bytes
		if n > len(buf) {
			n = len(buf)
		}
		if err := a.dma.DMARead(a.Dev, p.dba, buf[:n]); err != nil {
			return err
		}
		a.Stats.DMABytes += uint64(n)
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return fmt.Errorf("hw: AHCI PRDT too small: %d bytes left", len(buf))
	}
	return nil
}

// identify builds ATA IDENTIFY DEVICE data for the modeled drive.
func (a *AHCI) identify() []byte {
	id := make([]byte, SectorSize)
	// Word 0: ATA device. Words 60-61: LBA28 sectors. 100-103: LBA48.
	binary.LittleEndian.PutUint16(id[0:], 0x0040)
	sectors28 := a.disk.Sectors
	if sectors28 > 0x0fffffff {
		sectors28 = 0x0fffffff
	}
	binary.LittleEndian.PutUint32(id[60*2:], uint32(sectors28))
	binary.LittleEndian.PutUint64(id[100*2:], a.disk.Sectors)
	copyATAString(id[27*2:], "NOVA SIM HITACHI 250GB", 40)
	copyATAString(id[10*2:], "NV0001", 20)
	return id
}

// copyATAString stores s in the byte-swapped format ATA strings use.
func copyATAString(dst []byte, s string, n int) {
	for i := 0; i < n; i++ {
		c := byte(' ')
		if i < len(s) {
			c = s[i]
		}
		dst[i^1] = c
	}
}
