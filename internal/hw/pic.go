package hw

// I8259 models a cascaded pair of Intel 8259A programmable interrupt
// controllers (the classic PC master/slave arrangement, IRQ 0-15).
//
// The same model serves two roles in this repository, mirroring the
// paper's architecture: instantiated in the Platform it is the physical
// interrupt controller driven by the microhypervisor; instantiated in the
// user-level VMM it is the *virtual* PIC whose mask/ack/unmask port
// accesses by the guest cause the "Port I/O" VM exits that dominate
// Table 2.
type I8259 struct {
	irr uint16 // interrupt request register (pending lines)
	isr uint16 // in-service register
	imr uint16 // interrupt mask register

	baseMaster uint8 // vector offset programmed via ICW2
	baseSlave  uint8

	initState  [2]int // ICW sequence progress per chip
	readISR    [2]bool
	autoEOI    bool
	elcr       uint16 // edge/level control (for completeness)
	levelState uint16 // current level of each line, for level-triggered semantics

	// OutputChanged, if set, is called whenever the INTR output to the
	// CPU may have changed. The hypervisor (or VMM) uses it to schedule
	// interrupt delivery.
	OutputChanged func()

	// Counters for the evaluation.
	Raised uint64 // edges raised
	Acked  uint64 // vectors delivered to the CPU
	EOIs   uint64
}

// NewI8259 returns a PIC with the conventional PC vector bases (0x08 for
// the master, 0x70 for the slave) and all lines masked off except the
// cascade.
func NewI8259() *I8259 {
	return &I8259{baseMaster: 0x08, baseSlave: 0x70}
}

// RaiseIRQ asserts line (0-15).
func (p *I8259) RaiseIRQ(line int) {
	bit := uint16(1) << uint(line)
	p.levelState |= bit
	if p.irr&bit == 0 {
		p.irr |= bit
		p.Raised++
		p.notify()
	}
}

// LowerIRQ deasserts a level-triggered line.
func (p *I8259) LowerIRQ(line int) {
	bit := uint16(1) << uint(line)
	p.levelState &^= bit
	if p.elcr&bit != 0 { // level-triggered: dropping the line clears the request
		p.irr &^= bit
		p.notify()
	}
}

func (p *I8259) notify() {
	if p.OutputChanged != nil {
		p.OutputChanged()
	}
}

// pendingLine returns the highest-priority pending, unmasked line that is
// not blocked by an in-service interrupt of equal or higher priority, or
// -1. IRQ0 has the highest priority; the slave cascades through IRQ2.
func (p *I8259) pendingLine() int {
	avail := p.irr &^ p.imr
	for line := 0; line < 16; line++ {
		bit := uint16(1) << uint(line)
		if avail&bit == 0 {
			continue
		}
		// Blocked if a higher-or-equal priority interrupt is in service
		// on the same chip.
		if line < 8 {
			if p.isr&((bit<<1)-1) != 0 {
				continue
			}
		} else {
			if p.isr&0xff00&((bit<<1)-1) != 0 {
				continue
			}
		}
		return line
	}
	return -1
}

// HasPending reports whether the INTR output is asserted.
func (p *I8259) HasPending() bool { return p.pendingLine() >= 0 }

// Acknowledge performs the INTA cycle: it returns the vector of the
// highest-priority pending interrupt, moving it from IRR to ISR. It
// returns (0, false) when nothing is pending (spurious).
func (p *I8259) Acknowledge() (uint8, bool) {
	line := p.pendingLine()
	if line < 0 {
		return 0, false
	}
	bit := uint16(1) << uint(line)
	// Edge-triggered requests clear on acknowledge; level-triggered
	// requests persist while the line is high.
	if p.elcr&bit == 0 || p.levelState&bit == 0 {
		p.irr &^= bit
	}
	if !p.autoEOI {
		p.isr |= bit
	}
	p.Acked++
	if line < 8 {
		return p.baseMaster + uint8(line), true
	}
	return p.baseSlave + uint8(line-8), true
}

// LineFor maps an acknowledged vector back to its IRQ line using the
// programmed ICW2 bases (the inverse of Acknowledge's vector math). It
// is a pure lookup: no PIC state changes. Observability consumers use
// it to correlate an injected vector with the device line that raised
// it.
func (p *I8259) LineFor(vec uint8) (int, bool) {
	if d := int(vec) - int(p.baseMaster); d >= 0 && d < 8 {
		return d, true
	}
	if d := int(vec) - int(p.baseSlave); d >= 0 && d < 8 {
		return d + 8, true
	}
	return 0, false
}

// EOI signals end-of-interrupt for the highest-priority in-service line
// of the addressed chip (non-specific EOI).
func (p *I8259) eoi(slave bool) {
	p.EOIs++
	lo, hi := 0, 8
	if slave {
		lo, hi = 8, 16
	}
	for line := lo; line < hi; line++ {
		bit := uint16(1) << uint(line)
		if p.isr&bit != 0 {
			p.isr &^= bit
			p.notify()
			return
		}
	}
}

// IMR returns the current interrupt mask register.
func (p *I8259) IMR() uint16 { return p.imr }

// ISR returns the in-service register.
func (p *I8259) ISR() uint16 { return p.isr }

// IRR returns the interrupt request register.
func (p *I8259) IRR() uint16 { return p.irr }

// PortRead implements IOPortHandler for ports 0x20/0x21 (master) and
// 0xa0/0xa1 (slave), plus ELCR at 0x4d0/0x4d1.
func (p *I8259) PortRead(port uint16, size int) uint32 {
	switch port {
	case 0x20:
		if p.readISR[0] {
			return uint32(p.isr & 0xff)
		}
		return uint32(p.irr & 0xff)
	case 0xa0:
		if p.readISR[1] {
			return uint32(p.isr >> 8)
		}
		return uint32(p.irr >> 8)
	case 0x21:
		return uint32(p.imr & 0xff)
	case 0xa1:
		return uint32(p.imr >> 8)
	case 0x4d0:
		return uint32(p.elcr & 0xff)
	case 0x4d1:
		return uint32(p.elcr >> 8)
	}
	return 0xff
}

// PortWrite implements IOPortHandler.
func (p *I8259) PortWrite(port uint16, size int, val uint32) {
	v := uint8(val)
	switch port {
	case 0x20, 0xa0: // command
		chip := 0
		if port == 0xa0 {
			chip = 1
		}
		switch {
		case v&0x10 != 0: // ICW1: begin init sequence
			p.initState[chip] = 1
			if chip == 0 {
				p.irr &= 0xff00
				p.isr &= 0xff00
				p.imr &= 0xff00
			} else {
				p.irr &= 0x00ff
				p.isr &= 0x00ff
				p.imr &= 0x00ff
			}
		case v&0x08 != 0: // OCW3
			switch v & 0x03 {
			case 0x02:
				p.readISR[chip] = false
			case 0x03:
				p.readISR[chip] = true
			}
		default: // OCW2
			if v&0x20 != 0 { // EOI (non-specific or specific)
				p.eoi(chip == 1)
			}
		}
	case 0x21, 0xa1: // data
		chip := 0
		if port == 0xa1 {
			chip = 1
		}
		switch p.initState[chip] {
		case 1: // ICW2: vector base
			if chip == 0 {
				p.baseMaster = v & 0xf8
			} else {
				p.baseSlave = v & 0xf8
			}
			p.initState[chip] = 2
		case 2: // ICW3: cascade wiring (fixed in this model)
			p.initState[chip] = 3
		case 3: // ICW4
			p.autoEOI = v&0x02 != 0
			p.initState[chip] = 0
		default: // OCW1: mask register
			if chip == 0 {
				p.imr = p.imr&0xff00 | uint16(v)
			} else {
				p.imr = p.imr&0x00ff | uint16(v)<<8
			}
			p.notify()
		}
	case 0x4d0:
		p.elcr = p.elcr&0xff00 | uint16(v)
	case 0x4d1:
		p.elcr = p.elcr&0x00ff | uint16(v)<<8
	}
}
