package hw

import "testing"

func TestIOMMUUnattachedDeviceBlocked(t *testing.T) {
	mem := NewMemory(1 << 20)
	u := NewIOMMU(mem)
	buf := make([]byte, 16)
	if err := u.DMARead(BDF(0, 1, 0), 0x1000, buf); err == nil {
		t.Error("unattached device DMA succeeded")
	}
	if u.DMABlocks != 1 || len(u.Faults) != 1 {
		t.Errorf("blocks=%d faults=%d", u.DMABlocks, len(u.Faults))
	}
}

func TestIOMMUTranslatedDMA(t *testing.T) {
	mem := NewMemory(1 << 20)
	u := NewIOMMU(mem)
	dom := NewIOMMUDomain("vm0")
	// Bus 0x10000 -> host 0x40000, read+write.
	if err := dom.Map(0x10000, 0x40000, PageSize, IOMMURead|IOMMUWrite); err != nil {
		t.Fatal(err)
	}
	dev := BDF(0, 2, 0)
	u.Attach(dev, dom)

	mem.WriteBytes(0x40010, []byte("payload"))
	buf := make([]byte, 7)
	if err := u.DMARead(dev, 0x10010, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "payload" {
		t.Errorf("read %q", buf)
	}
	if err := u.DMAWrite(dev, 0x10020, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if string(mem.ReadBytes(0x40020, 3)) != "xyz" {
		t.Error("write not translated")
	}
}

func TestIOMMUUnmappedPageFaults(t *testing.T) {
	mem := NewMemory(1 << 20)
	u := NewIOMMU(mem)
	dom := NewIOMMUDomain("vm0")
	dom.Map(0x10000, 0x40000, PageSize, IOMMURead|IOMMUWrite)
	dev := BDF(0, 2, 0)
	u.Attach(dev, dom)
	if err := u.DMARead(dev, 0x20000, make([]byte, 4)); err == nil {
		t.Error("DMA to unmapped bus address succeeded")
	}
}

func TestIOMMUPermissionEnforced(t *testing.T) {
	mem := NewMemory(1 << 20)
	u := NewIOMMU(mem)
	dom := NewIOMMUDomain("vm0")
	dom.Map(0x10000, 0x40000, PageSize, IOMMURead) // read-only
	dev := BDF(0, 2, 0)
	u.Attach(dev, dom)
	if err := u.DMARead(dev, 0x10000, make([]byte, 4)); err != nil {
		t.Errorf("read through read-only mapping failed: %v", err)
	}
	if err := u.DMAWrite(dev, 0x10000, []byte{1}); err == nil {
		t.Error("write through read-only mapping succeeded")
	}
}

func TestIOMMUProtectsHypervisorRange(t *testing.T) {
	// §4.2: "the hypervisor blocks DMA transfers to its own memory
	// region" — even a mapping that somehow points there is refused.
	mem := NewMemory(1 << 20)
	u := NewIOMMU(mem)
	u.BlockRange(0, 0x10000) // hypervisor occupies the first 64K
	dom := NewIOMMUDomain("evil")
	dom.Map(0x0, 0x0, PageSize, IOMMURead|IOMMUWrite) // points into hypervisor
	dev := BDF(0, 2, 0)
	u.Attach(dev, dom)
	if err := u.DMAWrite(dev, 0x0, []byte{0x90}); err == nil {
		t.Error("DMA into hypervisor range succeeded")
	}
}

func TestIOMMUCrossPageDMA(t *testing.T) {
	mem := NewMemory(1 << 20)
	u := NewIOMMU(mem)
	dom := NewIOMMUDomain("vm0")
	// Two bus pages mapping to two discontiguous host pages.
	dom.Map(0x10000, 0x40000, PageSize, IOMMURead|IOMMUWrite)
	dom.Map(0x11000, 0x80000, PageSize, IOMMURead|IOMMUWrite)
	dev := BDF(0, 2, 0)
	u.Attach(dev, dom)
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i + 1)
	}
	if err := u.DMAWrite(dev, 0x10ff0, data); err != nil {
		t.Fatal(err)
	}
	if string(mem.ReadBytes(0x40ff0, 16)) != string(data[:16]) {
		t.Error("first page content wrong")
	}
	if string(mem.ReadBytes(0x80000, 16)) != string(data[16:]) {
		t.Error("second page content wrong")
	}
}

func TestIOMMUInterruptRemapping(t *testing.T) {
	mem := NewMemory(1 << 20)
	u := NewIOMMU(mem)
	dev := BDF(0, 2, 0)
	u.AllowVector(dev, 0x2b)
	if !u.RemapInterrupt(dev, 0x2b) {
		t.Error("allowed vector blocked")
	}
	if u.RemapInterrupt(dev, 0x30) {
		t.Error("disallowed vector passed")
	}
	if len(u.Faults) != 1 || !u.Faults[0].IsIRQ {
		t.Errorf("faults = %+v", u.Faults)
	}
}

func TestIOMMUDetach(t *testing.T) {
	mem := NewMemory(1 << 20)
	u := NewIOMMU(mem)
	dom := NewIOMMUDomain("vm0")
	dom.Map(0x10000, 0x40000, PageSize, IOMMURead)
	dev := BDF(0, 2, 0)
	u.Attach(dev, dom)
	if err := u.DMARead(dev, 0x10000, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	u.Detach(dev)
	if err := u.DMARead(dev, 0x10000, make([]byte, 4)); err == nil {
		t.Error("detached device DMA succeeded")
	}
}

func TestIOMMUDomainUnmap(t *testing.T) {
	dom := NewIOMMUDomain("d")
	dom.Map(0x0, 0x1000, 2*PageSize, IOMMURead)
	if _, ok := dom.Translate(0x1000, IOMMURead); !ok {
		t.Fatal("mapped page not translatable")
	}
	dom.Unmap(0x1000, PageSize)
	if _, ok := dom.Translate(0x1000, IOMMURead); ok {
		t.Error("unmapped page still translatable")
	}
	if _, ok := dom.Translate(0x0, IOMMURead); !ok {
		t.Error("neighbouring page lost")
	}
}

func TestIOMMUMapAlignmentChecked(t *testing.T) {
	dom := NewIOMMUDomain("d")
	if err := dom.Map(0x10, 0x1000, PageSize, IOMMURead); err == nil {
		t.Error("misaligned map accepted")
	}
}

func TestBDFFormatting(t *testing.T) {
	d := BDF(0, 31, 2)
	if d.String() != "00:1f.2" {
		t.Errorf("BDF string = %q", d.String())
	}
}
