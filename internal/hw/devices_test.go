package hw

import (
	"encoding/binary"
	"testing"
)

func TestPITPeriodicTicks(t *testing.T) {
	q := NewEventQueue()
	var clk Clock
	ticks := 0
	pit := NewI8254(q, clk.Now, 2670, func() { ticks++ })
	// Program mode 2, reload 11932 (~100 Hz).
	pit.PortWrite(0x43, 1, 0x34)
	pit.PortWrite(0x40, 1, 11932&0xff)
	pit.PortWrite(0x40, 1, 11932>>8)
	if pit.Period() == 0 {
		t.Fatal("period not programmed")
	}
	// Run 10 periods of virtual time.
	horizon := clk.Now() + 10*pit.Period()
	for !q.Empty() && q.NextTime() <= horizon {
		clk.AdvanceTo(q.NextTime())
		q.PopDue(clk.Now())
	}
	if ticks != 10 {
		t.Errorf("ticks = %d, want 10", ticks)
	}
	pit.Stop()
}

func TestPITPeriodMatchesFrequency(t *testing.T) {
	q := NewEventQueue()
	var clk Clock
	pit := NewI8254(q, clk.Now, 1000, func() {}) // 1 GHz for easy math
	pit.PortWrite(0x43, 1, 0x34)
	pit.PortWrite(0x40, 1, 0xff)
	pit.PortWrite(0x40, 1, 0xff) // reload 65535 -> ~54.9 ms
	wantNs := uint64(65535) * 1e9 / PITInputHz
	got := uint64(pit.Period()) // 1 cycle = 1 ns at 1 GHz
	if diff := int64(got) - int64(wantNs); diff < -1000 || diff > 1000 {
		t.Errorf("period = %d ns, want ~%d ns", got, wantNs)
	}
	pit.Stop()
}

func TestSerialOutputAndDLAB(t *testing.T) {
	s := NewSerial8250(0x3f8)
	for _, c := range []byte("hi\n") {
		s.PortWrite(0x3f8, 1, uint32(c))
	}
	if s.Output() != "hi\n" {
		t.Errorf("output = %q", s.Output())
	}
	// DLAB redirects register 0 to the divisor latch.
	s.PortWrite(0x3fb, 1, 0x83) // LCR with DLAB
	s.PortWrite(0x3f8, 1, 0x0c) // DLL: 9600 baud
	s.PortWrite(0x3f9, 1, 0x00)
	s.PortWrite(0x3fb, 1, 0x03) // clear DLAB
	if s.Output() != "hi\n" {
		t.Errorf("divisor write leaked into output: %q", s.Output())
	}
	if lsr := s.PortRead(0x3fd, 1); lsr&0x20 == 0 {
		t.Errorf("LSR = %#x, want THR empty", lsr)
	}
}

func TestSerialInput(t *testing.T) {
	s := NewSerial8250(0x3f8)
	s.InjectInput([]byte("ab"))
	if lsr := s.PortRead(0x3fd, 1); lsr&0x01 == 0 {
		t.Error("LSR data-ready not set")
	}
	if got := s.PortRead(0x3f8, 1); got != 'a' {
		t.Errorf("first byte = %c", got)
	}
	if got := s.PortRead(0x3f8, 1); got != 'b' {
		t.Errorf("second byte = %c", got)
	}
	if lsr := s.PortRead(0x3fd, 1); lsr&0x01 != 0 {
		t.Error("data-ready still set after drain")
	}
}

func TestDiskSyntheticContentDeterministic(t *testing.T) {
	d := NewDisk(1000, 67, 8200, 2670)
	a := make([]byte, SectorSize)
	b := make([]byte, SectorSize)
	if err := d.ReadSectors(7, 1, a); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadSectors(7, 1, b); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("synthetic content not deterministic")
		}
	}
	if err := d.ReadSectors(8, 1, b); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different sectors returned identical content")
	}
}

func TestDiskWriteReadBack(t *testing.T) {
	d := NewDisk(1000, 67, 8200, 2670)
	w := make([]byte, 2*SectorSize)
	for i := range w {
		w[i] = byte(i)
	}
	if err := d.WriteSectors(10, 2, w); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 2*SectorSize)
	if err := d.ReadSectors(10, 2, r); err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if r[i] != w[i] {
			t.Fatalf("byte %d: got %d want %d", i, r[i], w[i])
		}
	}
}

func TestDiskBoundsChecks(t *testing.T) {
	d := NewDisk(100, 67, 8200, 2670)
	buf := make([]byte, SectorSize)
	if err := d.ReadSectors(100, 1, buf); err == nil {
		t.Error("read past capacity accepted")
	}
	if err := d.WriteSectors(99, 2, make([]byte, 2*SectorSize)); err == nil {
		t.Error("write past capacity accepted")
	}
	if err := d.ReadSectors(0, 2, buf); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestDiskServiceTimeRegimes(t *testing.T) {
	d := NewDisk(1e6, 67, 8200, 2670)
	// Small request: IOPS-bound. 1/8200 s at 2670 MHz ~ 325,609 cycles.
	small := d.ServiceTime(512)
	large := d.ServiceTime(65536)
	if small >= large {
		t.Errorf("small (%d) >= large (%d) service time", small, large)
	}
	// 512B and 4K are both IOPS-bound: same service time.
	if d.ServiceTime(512) != d.ServiceTime(4096) {
		t.Error("IOPS-bound regime should be size-independent")
	}
	// 64K is bandwidth-bound: 65536/67e6 s.
	wantUS := float64(65536) / 67e6 * 1e6
	gotUS := float64(large) / 2670
	if gotUS < wantUS*0.95 || gotUS > wantUS*1.05 {
		t.Errorf("64K service = %f µs, want ~%f", gotUS, wantUS)
	}
}

func TestDiskScheduleSerializes(t *testing.T) {
	d := NewDisk(1e6, 67, 8200, 2670)
	t1 := d.Schedule(0, 4096)
	t2 := d.Schedule(0, 4096)
	if t2 <= t1 {
		t.Errorf("overlapping requests not serialized: %d then %d", t1, t2)
	}
	if t2-t1 != d.ServiceTime(4096) {
		t.Errorf("second request gap = %d, want %d", t2-t1, d.ServiceTime(4096))
	}
}

// buildAHCIRead writes a one-slot command list + table into mem that
// reads count sectors from lba into bufAddr, and returns the CLB.
func buildAHCIRead(mem *Memory, clb, ctba, bufAddr PhysAddr, lba uint64, count int, write bool) {
	// Command header slot 0.
	dw0 := uint32(5) | 1<<16 // CFL=5 dwords, PRDTL=1
	if write {
		dw0 |= 1 << 6
	}
	mem.Write32(clb+0, dw0)
	mem.Write32(clb+8, uint32(ctba))
	mem.Write32(clb+12, 0)
	// CFIS: H2D register FIS.
	cmd := uint8(ataReadDMAExt)
	if write {
		cmd = ataWriteDMAExt
	}
	mem.Write8(ctba+0, 0x27)
	mem.Write8(ctba+1, 0x80)
	mem.Write8(ctba+2, cmd)
	mem.Write8(ctba+4, uint8(lba))
	mem.Write8(ctba+5, uint8(lba>>8))
	mem.Write8(ctba+6, uint8(lba>>16))
	mem.Write8(ctba+7, 0x40)
	mem.Write8(ctba+8, uint8(lba>>24))
	mem.Write8(ctba+12, uint8(count))
	mem.Write8(ctba+13, uint8(count>>8))
	// PRDT entry 0.
	mem.Write32(ctba+0x80, uint32(bufAddr))
	mem.Write32(ctba+0x80+4, 0)
	mem.Write32(ctba+0x80+12, uint32(count*SectorSize-1))
}

func newTestAHCI(t *testing.T) (*AHCI, *Memory, *EventQueue, *Clock, *int) {
	t.Helper()
	mem := NewMemory(1 << 20)
	q := NewEventQueue()
	clk := &Clock{}
	irqs := new(int)
	disk := NewDisk(1e6, 67, 8200, 2670)
	a := NewAHCI(BDF(0, 31, 2), disk, NewDirectDMA(mem), q, clk.Now, func() { *irqs++ })
	return a, mem, q, clk, irqs
}

// ahciStart programs GHC.IE, PxCLB, PxIE and PxCMD.ST like a driver.
func ahciStart(a *AHCI, clb PhysAddr) {
	a.MMIOWrite(ahciGHC, 4, ghcIE)
	a.MMIOWrite(ahciPortBase+pxCLB, 4, uint32(clb))
	a.MMIOWrite(ahciPortBase+pxCLBU, 4, 0)
	a.MMIOWrite(ahciPortBase+pxIE, 4, pxisDHRS|pxisTFES)
	a.MMIOWrite(ahciPortBase+pxCMD, 4, pxcmdST|pxcmdFRE)
}

func drain(q *EventQueue, clk *Clock) {
	for !q.Empty() {
		clk.AdvanceTo(q.NextTime())
		q.PopDue(clk.Now())
	}
}

func TestAHCIReadCommand(t *testing.T) {
	a, mem, q, clk, irqs := newTestAHCI(t)
	clb, ctba, buf := PhysAddr(0x1000), PhysAddr(0x2000), PhysAddr(0x8000)
	buildAHCIRead(mem, clb, ctba, buf, 100, 2, false)
	ahciStart(a, clb)
	a.MMIOWrite(ahciPortBase+pxCI, 4, 1)

	if a.MMIORead(ahciPortBase+pxTFD, 4)&0x80 == 0 {
		t.Error("BSY not set while command in flight")
	}
	drain(q, clk)

	if ci := a.MMIORead(ahciPortBase+pxCI, 4); ci != 0 {
		t.Errorf("CI = %#x after completion", ci)
	}
	if *irqs != 1 {
		t.Errorf("irqs = %d, want 1", *irqs)
	}
	if is := a.MMIORead(ahciPortBase+pxIS, 4); is&pxisDHRS == 0 {
		t.Errorf("PxIS = %#x, want DHRS", is)
	}
	// Data must match the disk's synthetic content.
	want := make([]byte, 2*SectorSize)
	if err := a.Disk().ReadSectors(100, 2, want); err != nil {
		t.Fatal(err)
	}
	got := mem.ReadBytes(buf, 2*SectorSize)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DMA data mismatch at %d", i)
		}
	}
}

func TestAHCIWriteCommand(t *testing.T) {
	a, mem, q, clk, _ := newTestAHCI(t)
	clb, ctba, buf := PhysAddr(0x1000), PhysAddr(0x2000), PhysAddr(0x8000)
	pattern := make([]byte, SectorSize)
	for i := range pattern {
		pattern[i] = byte(i * 7)
	}
	mem.WriteBytes(buf, pattern)
	buildAHCIRead(mem, clb, ctba, buf, 55, 1, true)
	ahciStart(a, clb)
	a.MMIOWrite(ahciPortBase+pxCI, 4, 1)
	drain(q, clk)

	got := make([]byte, SectorSize)
	if err := a.Disk().ReadSectors(55, 1, got); err != nil {
		t.Fatal(err)
	}
	for i := range pattern {
		if got[i] != pattern[i] {
			t.Fatalf("disk content mismatch at %d", i)
		}
	}
}

func TestAHCIIdentify(t *testing.T) {
	a, mem, q, clk, _ := newTestAHCI(t)
	clb, ctba, buf := PhysAddr(0x1000), PhysAddr(0x2000), PhysAddr(0x8000)
	buildAHCIRead(mem, clb, ctba, buf, 0, 1, false)
	mem.Write8(ctba+2, ataIdentify) // patch command byte
	ahciStart(a, clb)
	a.MMIOWrite(ahciPortBase+pxCI, 4, 1)
	drain(q, clk)
	sectors := binary.LittleEndian.Uint64(mem.ReadBytes(buf+100*2, 8))
	if sectors != 1e6 {
		t.Errorf("IDENTIFY LBA48 sectors = %d, want 1e6", sectors)
	}
}

func TestAHCIBadCommandSetsError(t *testing.T) {
	a, mem, q, clk, _ := newTestAHCI(t)
	clb, ctba, buf := PhysAddr(0x1000), PhysAddr(0x2000), PhysAddr(0x8000)
	buildAHCIRead(mem, clb, ctba, buf, 0, 1, false)
	mem.Write8(ctba+2, 0x99) // unsupported ATA command
	ahciStart(a, clb)
	a.MMIOWrite(ahciPortBase+pxCI, 4, 1)
	drain(q, clk)
	if a.MMIORead(ahciPortBase+pxTFD, 4)&0x01 == 0 {
		t.Error("TFD.ERR not set for unsupported command")
	}
	if a.Stats.Errors == 0 {
		t.Error("error not counted")
	}
}

func TestAHCISignatureAndStatus(t *testing.T) {
	a, _, _, _, _ := newTestAHCI(t)
	if sig := a.MMIORead(ahciPortBase+pxSIG, 4); sig != 0x101 {
		t.Errorf("PxSIG = %#x", sig)
	}
	if ssts := a.MMIORead(ahciPortBase+pxSSTS, 4); ssts != 0x113 {
		t.Errorf("PxSSTS = %#x", ssts)
	}
	if pi := a.MMIORead(ahciPI, 4); pi != 1 {
		t.Errorf("PI = %#x", pi)
	}
}

// newTestNIC builds a NIC with an 8-descriptor ring at 0x1000, buffers at
// 0x4000.
func newTestNIC(coalesceHz int) (*NIC, *Memory, *EventQueue, *Clock, *int) {
	mem := NewMemory(1 << 20)
	q := NewEventQueue()
	clk := &Clock{}
	irqs := new(int)
	n := NewNIC(BDF(0, 25, 0), NewDirectDMA(mem), q, clk.Now, 2670, coalesceHz, func() { *irqs++ })
	const slots = 8
	for i := 0; i < slots; i++ {
		mem.Write64(PhysAddr(0x1000+i*16), uint64(0x4000+i*2048))
	}
	n.MMIOWrite(nicRDBAL, 4, 0x1000)
	n.MMIOWrite(nicRDBAH, 4, 0)
	n.MMIOWrite(nicRDLEN, 4, slots*16)
	n.MMIOWrite(nicRDH, 4, 0)
	n.MMIOWrite(nicRDT, 4, slots-1)
	n.MMIOWrite(nicIMS, 4, icrRXT0)
	n.MMIOWrite(nicRCTL, 4, rctlEN)
	return n, mem, q, clk, irqs
}

func TestNICReceiveIntoRing(t *testing.T) {
	n, mem, _, _, irqs := newTestNIC(0)
	pkt := []byte("hello world, this is a packet")
	if !n.Receive(pkt) {
		t.Fatal("receive failed")
	}
	if *irqs != 1 {
		t.Errorf("irqs = %d, want 1", *irqs)
	}
	// Descriptor 0 written back with DD|EOP and length.
	if st := mem.Read8(0x1000 + 12); st != 0x03 {
		t.Errorf("desc status = %#x", st)
	}
	if l := mem.Read16(0x1000 + 8); int(l) != len(pkt) {
		t.Errorf("desc length = %d, want %d", l, len(pkt))
	}
	got := mem.ReadBytes(0x4000, len(pkt))
	for i := range pkt {
		if got[i] != pkt[i] {
			t.Fatal("packet data mismatch")
		}
	}
	if h := n.MMIORead(nicRDH, 4); h != 1 {
		t.Errorf("RDH = %d, want 1", h)
	}
}

func TestNICRingFullDrops(t *testing.T) {
	n, _, _, _, _ := newTestNIC(0)
	// 7 descriptors available (RDT = slots-1); the 8th receive must drop.
	for i := 0; i < 7; i++ {
		if !n.Receive([]byte{1, 2, 3}) {
			t.Fatalf("receive %d failed early", i)
		}
	}
	if n.Receive([]byte{1, 2, 3}) {
		t.Error("receive into full ring succeeded")
	}
	if n.Stats.PacketsDropped != 1 {
		t.Errorf("drops = %d, want 1", n.Stats.PacketsDropped)
	}
}

func TestNICDisabledDrops(t *testing.T) {
	n, _, _, _, _ := newTestNIC(0)
	n.MMIOWrite(nicRCTL, 4, 0)
	if n.Receive([]byte{1}) {
		t.Error("disabled NIC received a packet")
	}
}

func TestNICInterruptCoalescing(t *testing.T) {
	n, _, q, clk, irqs := newTestNIC(20000) // 20k ints/s cap
	// Deliver 10 packets back-to-back: only the first fires immediately,
	// the rest coalesce into one deferred interrupt.
	for i := 0; i < 7; i++ {
		n.Receive([]byte{byte(i)})
		n.MMIOWrite(nicRDT, 4, uint32(i)) // driver returns the slot
	}
	if *irqs != 1 {
		t.Fatalf("immediate irqs = %d, want 1", *irqs)
	}
	if n.Stats.IRQsCoalesced == 0 {
		t.Error("no coalescing recorded")
	}
	drain(q, clk)
	if *irqs != 2 {
		t.Errorf("total irqs = %d, want 2 (1 immediate + 1 merged)", *irqs)
	}
}

func TestNICICRReadToClear(t *testing.T) {
	n, _, _, _, _ := newTestNIC(0)
	n.Receive([]byte{1})
	if icr := n.MMIORead(nicICR, 4); icr&icrRXT0 == 0 {
		t.Error("ICR missing RXT0")
	}
	if icr := n.MMIORead(nicICR, 4); icr != 0 {
		t.Errorf("ICR not cleared by read: %#x", icr)
	}
}

func TestPacketSourceRate(t *testing.T) {
	n, mem, q, clk, _ := newTestNIC(0)
	_ = mem
	// 100 Mbit/s with 1472-byte packets ≈ 8491 pps.
	src := NewPacketSource(n, q, clk.Now, 2670, 1472, 100, 50)
	src.Start()
	// Keep the ring fed while draining events.
	for !q.Empty() {
		clk.AdvanceTo(q.NextTime())
		q.PopDue(clk.Now())
		n.MMIOWrite(nicRDT, 4, (n.MMIORead(nicRDH, 4)+7)%8)
	}
	if src.Sent != 50 {
		t.Errorf("sent = %d, want 50", src.Sent)
	}
	// Elapsed time should match 50 packets at ~8491 pps ≈ 5.9 ms.
	gotMs := float64(clk.Now()) / 2670e3
	if gotMs < 5 || gotMs > 7 {
		t.Errorf("elapsed = %f ms, want ~5.9", gotMs)
	}
}

func TestPCIEnumeration(t *testing.T) {
	b := NewPCIBus()
	b.Add(&PCIFunction{Dev: BDF(0, 31, 2), VendorID: 0x8086, DeviceID: 0x2922, Class: 0x010601, IRQLine: 11})
	// CONFIG_ADDRESS for bus 0, dev 31, fn 2, reg 0.
	addr := uint32(0x80000000) | uint32(BDF(0, 31, 2))<<8
	b.PortWrite(0xcf8, 4, addr)
	if id := b.PortRead(0xcfc, 4); id != 0x29228086 {
		t.Errorf("vendor/device = %#x", id)
	}
	b.PortWrite(0xcf8, 4, addr|0x08)
	if cls := b.PortRead(0xcfc, 4); cls>>8 != 0x010601 {
		t.Errorf("class = %#x", cls)
	}
	// Absent device floats high.
	b.PortWrite(0xcf8, 4, uint32(0x80000000)|uint32(BDF(0, 3, 0))<<8)
	if id := b.PortRead(0xcfc, 4); id != 0xffffffff {
		t.Errorf("absent device = %#x", id)
	}
}

func TestPlatformConstruction(t *testing.T) {
	p := MustNewPlatform(Config{Model: BLM, NumCPUs: 2, RAMSize: 16 << 20})
	if len(p.CPUs) != 2 {
		t.Fatalf("CPUs = %d", len(p.CPUs))
	}
	if p.IOMMU == nil {
		t.Fatal("BLM platform should have an IOMMU")
	}
	// AHCI MMIO is reachable through physical memory.
	if sig := p.Mem.Read32(AHCIMMIOBase + ahciPortBase + pxSIG); sig != 0x101 {
		t.Errorf("AHCI signature via memory = %#x", sig)
	}
	// Devices are enumerable via PCI.
	if len(p.PCI.Functions()) != 2 {
		t.Errorf("PCI functions = %d", len(p.PCI.Functions()))
	}
	// Platform without IOMMU.
	p2 := MustNewPlatform(Config{Model: CNR, DisableIOMMU: true, RAMSize: 16 << 20})
	if p2.IOMMU != nil {
		t.Error("CNR platform should have no IOMMU when disabled")
	}
}

func TestPlatformInterruptHook(t *testing.T) {
	p := MustNewPlatform(Config{Model: BLM, RAMSize: 16 << 20})
	initPIC(p.PIC)
	hooked := 0
	p.InterruptHook = func() { hooked++ }
	p.PIC.RaiseIRQ(IRQAHCI)
	if hooked == 0 {
		t.Error("interrupt hook not invoked")
	}
}
