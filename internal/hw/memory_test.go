package hw

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteWidths(t *testing.T) {
	m := NewMemory(1 << 20)
	m.Write8(0x100, 0xab)
	if got := m.Read8(0x100); got != 0xab {
		t.Errorf("Read8 = %#x", got)
	}
	m.Write16(0x200, 0x1234)
	if got := m.Read16(0x200); got != 0x1234 {
		t.Errorf("Read16 = %#x", got)
	}
	m.Write32(0x300, 0xdeadbeef)
	if got := m.Read32(0x300); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x", got)
	}
	m.Write64(0x400, 0x0123456789abcdef)
	if got := m.Read64(0x400); got != 0x0123456789abcdef {
		t.Errorf("Read64 = %#x", got)
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory(4096)
	m.Write32(0, 0x11223344)
	if m.Read8(0) != 0x44 || m.Read8(3) != 0x11 {
		t.Errorf("not little-endian: %#x %#x", m.Read8(0), m.Read8(3))
	}
}

// quickMem is a reusable memory for the property test.
var quickMem = NewMemory(1 << 20)

func TestMemoryRoundTripProperty(t *testing.T) {
	// Property: any 32-bit value written at any in-range aligned address
	// reads back identically.
	f := func(off uint16, v uint32) bool {
		addr := PhysAddr(off) * 4
		quickMem.Write32(addr, v)
		return quickMem.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type testMMIO struct {
	lastOff  uint32
	lastVal  uint32
	lastSize int
	readVal  uint32
}

func (d *testMMIO) MMIORead(off uint32, size int) uint32 {
	d.lastOff, d.lastSize = off, size
	return d.readVal
}
func (d *testMMIO) MMIOWrite(off uint32, size int, val uint32) {
	d.lastOff, d.lastSize, d.lastVal = off, size, val
}

func TestMemoryMMIORouting(t *testing.T) {
	m := NewMemory(1 << 20)
	dev := &testMMIO{readVal: 0xcafe}
	if err := m.MapMMIO("dev", 0xf0000000, 0x1000, dev); err != nil {
		t.Fatal(err)
	}
	if !m.IsMMIO(0xf0000010) {
		t.Error("IsMMIO false inside region")
	}
	if m.IsMMIO(0xf0001000) {
		t.Error("IsMMIO true past region end")
	}
	if got := m.Read32(0xf0000010); got != 0xcafe {
		t.Errorf("MMIO read = %#x", got)
	}
	if dev.lastOff != 0x10 || dev.lastSize != 4 {
		t.Errorf("MMIO read routed to off=%#x size=%d", dev.lastOff, dev.lastSize)
	}
	m.Write16(0xf0000020, 0x55aa)
	if dev.lastOff != 0x20 || dev.lastVal != 0x55aa || dev.lastSize != 2 {
		t.Errorf("MMIO write routed to off=%#x val=%#x size=%d", dev.lastOff, dev.lastVal, dev.lastSize)
	}
}

func TestMemoryMMIOOverlapRejected(t *testing.T) {
	m := NewMemory(1 << 20)
	dev := &testMMIO{}
	if err := m.MapMMIO("a", 0xf0000000, 0x1000, dev); err != nil {
		t.Fatal(err)
	}
	if err := m.MapMMIO("b", 0xf0000800, 0x1000, dev); err == nil {
		t.Error("overlapping MMIO map accepted")
	}
}

func TestMemoryBytesHelpers(t *testing.T) {
	m := NewMemory(4096)
	data := []byte{1, 2, 3, 4, 5}
	m.WriteBytes(100, data)
	got := m.ReadBytes(100, 5)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("ReadBytes[%d] = %d", i, got[i])
		}
	}
}

func TestMemoryOutOfRangePanics(t *testing.T) {
	m := NewMemory(4096)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	m.Read32(4094)
}

func TestIOPortsRouting(t *testing.T) {
	p := NewIOPorts()
	s := NewSerial8250(0x3f8)
	if err := p.Map("serial", 0x3f8, 0x3ff, s); err != nil {
		t.Fatal(err)
	}
	p.Write(0x3f8, 1, 'X')
	if s.Output() != "X" {
		t.Errorf("serial output = %q", s.Output())
	}
	// Unmapped port floats high and drops writes.
	if got := p.Read(0x80, 1); got != 0xff {
		t.Errorf("unmapped port read = %#x", got)
	}
	p.Write(0x80, 1, 0x42) // must not panic
	if err := p.Map("overlap", 0x3f0, 0x3f8, s); err == nil {
		t.Error("overlapping port map accepted")
	}
}
