package hw

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteWidths(t *testing.T) {
	m := NewMemory(1 << 20)
	m.Write8(0x100, 0xab)
	if got := m.Read8(0x100); got != 0xab {
		t.Errorf("Read8 = %#x", got)
	}
	m.Write16(0x200, 0x1234)
	if got := m.Read16(0x200); got != 0x1234 {
		t.Errorf("Read16 = %#x", got)
	}
	m.Write32(0x300, 0xdeadbeef)
	if got := m.Read32(0x300); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x", got)
	}
	m.Write64(0x400, 0x0123456789abcdef)
	if got := m.Read64(0x400); got != 0x0123456789abcdef {
		t.Errorf("Read64 = %#x", got)
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory(4096)
	m.Write32(0, 0x11223344)
	if m.Read8(0) != 0x44 || m.Read8(3) != 0x11 {
		t.Errorf("not little-endian: %#x %#x", m.Read8(0), m.Read8(3))
	}
}

// quickMem is a reusable memory for the property test.
var quickMem = NewMemory(1 << 20)

func TestMemoryRoundTripProperty(t *testing.T) {
	// Property: any 32-bit value written at any in-range aligned address
	// reads back identically.
	f := func(off uint16, v uint32) bool {
		addr := PhysAddr(off) * 4
		quickMem.Write32(addr, v)
		return quickMem.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type testMMIO struct {
	lastOff  uint32
	lastVal  uint32
	lastSize int
	readVal  uint32
}

func (d *testMMIO) MMIORead(off uint32, size int) uint32 {
	d.lastOff, d.lastSize = off, size
	return d.readVal
}
func (d *testMMIO) MMIOWrite(off uint32, size int, val uint32) {
	d.lastOff, d.lastSize, d.lastVal = off, size, val
}

func TestMemoryMMIORouting(t *testing.T) {
	m := NewMemory(1 << 20)
	dev := &testMMIO{readVal: 0xcafe}
	if err := m.MapMMIO("dev", 0xf0000000, 0x1000, dev); err != nil {
		t.Fatal(err)
	}
	if !m.IsMMIO(0xf0000010) {
		t.Error("IsMMIO false inside region")
	}
	if m.IsMMIO(0xf0001000) {
		t.Error("IsMMIO true past region end")
	}
	if got := m.Read32(0xf0000010); got != 0xcafe {
		t.Errorf("MMIO read = %#x", got)
	}
	if dev.lastOff != 0x10 || dev.lastSize != 4 {
		t.Errorf("MMIO read routed to off=%#x size=%d", dev.lastOff, dev.lastSize)
	}
	m.Write16(0xf0000020, 0x55aa)
	if dev.lastOff != 0x20 || dev.lastVal != 0x55aa || dev.lastSize != 2 {
		t.Errorf("MMIO write routed to off=%#x val=%#x size=%d", dev.lastOff, dev.lastVal, dev.lastSize)
	}
}

func TestMemoryMMIOOverlapRejected(t *testing.T) {
	m := NewMemory(1 << 20)
	dev := &testMMIO{}
	if err := m.MapMMIO("a", 0xf0000000, 0x1000, dev); err != nil {
		t.Fatal(err)
	}
	if err := m.MapMMIO("b", 0xf0000800, 0x1000, dev); err == nil {
		t.Error("overlapping MMIO map accepted")
	}
}

func TestMemoryBytesHelpers(t *testing.T) {
	m := NewMemory(4096)
	data := []byte{1, 2, 3, 4, 5}
	m.WriteBytes(100, data)
	got := m.ReadBytes(100, 5)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("ReadBytes[%d] = %d", i, got[i])
		}
	}
}

func TestMemoryOutOfRangePanics(t *testing.T) {
	m := NewMemory(4096)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	m.Read32(4094)
}

func TestIOPortsRouting(t *testing.T) {
	p := NewIOPorts()
	s := NewSerial8250(0x3f8)
	if err := p.Map("serial", 0x3f8, 0x3ff, s); err != nil {
		t.Fatal(err)
	}
	p.Write(0x3f8, 1, 'X')
	if s.Output() != "X" {
		t.Errorf("serial output = %q", s.Output())
	}
	// Unmapped port floats high and drops writes.
	if got := p.Read(0x80, 1); got != 0xff {
		t.Errorf("unmapped port read = %#x", got)
	}
	p.Write(0x80, 1, 0x42) // must not panic
	if err := p.Map("overlap", 0x3f0, 0x3f8, s); err == nil {
		t.Error("overlapping port map accepted")
	}
}

// TestCodePageAndGenerations pins the decode-cache support contract:
// CodePage hands out a read-only view of a RAM page with its current
// write generation, and every write path — each store width, bulk
// writes, DMA — bumps the generation of every page it touches.
func TestCodePageAndGenerations(t *testing.T) {
	m := NewMemory(1 << 20)
	data, gen, ok := m.CodePage(0x1234)
	if !ok {
		t.Fatal("CodePage declined a plain RAM page")
	}
	if len(data) != int(PageSize) {
		t.Fatalf("page view is %d bytes", len(data))
	}
	m.Write8(0x1080, 0x5a)
	if data[0x80] != 0x5a {
		t.Error("page view does not alias RAM")
	}

	gen0 := gen
	check := func(what string, want uint64) {
		t.Helper()
		_, g, ok := m.CodePage(0x1000)
		if !ok || g != gen0+want {
			t.Errorf("after %s: gen = %d, want %d", what, g, gen0+want)
		}
	}
	check("Write8", 1)
	m.Write16(0x1100, 1)
	check("Write16", 2)
	m.Write32(0x1100, 1)
	check("Write32", 3)
	m.Write64(0x1100, 1)
	check("Write64", 4)
	m.WriteBytes(0x1100, []byte{1, 2, 3})
	check("WriteBytes", 5)
	if err := NewDirectDMA(m).DMAWrite(0, 0x1100, []byte{9}); err != nil {
		t.Fatal(err)
	}
	check("DMAWrite", 6)

	// A write elsewhere must not disturb this page's generation.
	m.Write32(0x5000, 7)
	check("unrelated write", 6)

	// A write spanning a page boundary bumps both pages.
	_, gA, _ := m.CodePage(0x1000)
	_, gB, _ := m.CodePage(0x2000)
	m.Write32(0x1ffe, 0xffffffff)
	_, gA2, _ := m.CodePage(0x1000)
	_, gB2, _ := m.CodePage(0x2000)
	if gA2 != gA+1 || gB2 != gB+1 {
		t.Errorf("page-crossing write: gens %d→%d, %d→%d (want both +1)", gA, gA2, gB, gB2)
	}
}

// TestCodePageDeclines checks the fast path is refused wherever reading
// raw bytes would skip device semantics or fall off RAM.
func TestCodePageDeclines(t *testing.T) {
	m := NewMemory(1 << 20)
	if err := m.MapMMIO("dev", 0x8000, 64, &testMMIO{}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := m.CodePage(0x8010); ok {
		t.Error("CodePage served a page overlapping an MMIO window")
	}
	// Any address in the same page is declined, even outside the window.
	if _, _, ok := m.CodePage(0x8fff); ok {
		t.Error("CodePage served the tail of an MMIO-overlapping page")
	}
	if _, _, ok := m.CodePage(PhysAddr(1 << 20)); ok {
		t.Error("CodePage served a page beyond RAM")
	}
	if _, _, ok := m.CodePage(PhysAddr(1<<20 - 1)); !ok {
		t.Error("CodePage declined the last full RAM page")
	}
	if _, _, ok := m.CodePage(0x9000); !ok {
		t.Error("CodePage declined the page after the MMIO window")
	}
}
