package hw

import "fmt"

// IOMMUPerm is the access permission of an IOMMU mapping.
type IOMMUPerm uint8

// DMA permission bits.
const (
	IOMMURead IOMMUPerm = 1 << iota
	IOMMUWrite
)

type iommuEntry struct {
	hpa  uint64
	perm IOMMUPerm
}

// IOMMUDomain is one DMA protection domain: a page-granular translation
// from bus (guest-physical or driver-virtual) addresses to host-physical
// addresses. In NOVA the hypervisor delegates only the memory regions a
// driver legitimately needs (§4.2: "the hypervisor restricts the usage of
// DMA for drivers to regions of memory that have been explicitly
// delegated").
type IOMMUDomain struct {
	name  string
	pages map[uint64]iommuEntry // key: bus address >> 12
}

// NewIOMMUDomain creates an empty translation domain.
func NewIOMMUDomain(name string) *IOMMUDomain {
	return &IOMMUDomain{name: name, pages: make(map[uint64]iommuEntry)}
}

// Map installs a translation of size bytes (page aligned) from bus
// address to host-physical address with the given permissions.
func (d *IOMMUDomain) Map(busAddr, hpa, size uint64, perm IOMMUPerm) error {
	if busAddr%PageSize != 0 || hpa%PageSize != 0 || size%PageSize != 0 {
		return fmt.Errorf("hw: IOMMU map not page aligned: bus=%#x hpa=%#x size=%#x", busAddr, hpa, size)
	}
	for off := uint64(0); off < size; off += PageSize {
		d.pages[(busAddr+off)>>12] = iommuEntry{hpa: hpa + off, perm: perm}
	}
	return nil
}

// Unmap removes translations covering [busAddr, busAddr+size).
func (d *IOMMUDomain) Unmap(busAddr, size uint64) {
	for off := uint64(0); off < size; off += PageSize {
		delete(d.pages, (busAddr+off)>>12)
	}
}

// Translate resolves one bus address, returning the host-physical
// address if mapped with the needed permission.
func (d *IOMMUDomain) Translate(busAddr uint64, perm IOMMUPerm) (uint64, bool) {
	e, ok := d.pages[busAddr>>12]
	if !ok || e.perm&perm != perm {
		return 0, false
	}
	return e.hpa + busAddr&0xfff, true
}

// IOMMUFault records one blocked DMA or interrupt-remapping violation.
type IOMMUFault struct {
	Dev   DeviceID
	Addr  uint64
	Write bool
	// Vector is set (and Addr is zero) for interrupt remapping faults.
	Vector uint8
	IsIRQ  bool
}

// IOMMU models VT-d-style DMA remapping plus interrupt remapping. It
// wraps a direct DMA bus: attached devices get their domain's
// translations, unattached devices are blocked entirely, and the
// hypervisor's own memory can never be mapped (BlockRange).
type IOMMU struct {
	mem     *Memory
	inner   DMABus
	domains map[DeviceID]*IOMMUDomain

	blockedLo, blockedHi uint64 // host-physical range that may never be mapped

	// allowedVectors restricts which interrupt vectors each device may
	// signal (§4.2: the hypervisor "restricts the interrupt vectors
	// available to drivers").
	allowedVectors map[DeviceID]map[uint8]bool

	Faults    []IOMMUFault
	DMAPasses uint64
	DMABlocks uint64
}

// NewIOMMU creates a remapping unit in front of direct physical DMA.
func NewIOMMU(mem *Memory) *IOMMU {
	return &IOMMU{
		mem:            mem,
		inner:          NewDirectDMA(mem),
		domains:        make(map[DeviceID]*IOMMUDomain),
		allowedVectors: make(map[DeviceID]map[uint8]bool),
	}
}

// BlockRange declares [lo, hi) host-physical as never-DMA-able (the
// microhypervisor's own image and page tables).
func (u *IOMMU) BlockRange(lo, hi uint64) { u.blockedLo, u.blockedHi = lo, hi }

// Attach binds a device to a translation domain.
func (u *IOMMU) Attach(dev DeviceID, d *IOMMUDomain) { u.domains[dev] = d }

// Detach removes a device's domain binding; subsequent DMA is blocked.
func (u *IOMMU) Detach(dev DeviceID) { delete(u.domains, dev) }

// Domain returns the domain a device is attached to, if any.
func (u *IOMMU) Domain(dev DeviceID) (*IOMMUDomain, bool) {
	d, ok := u.domains[dev]
	return d, ok
}

// AllowVector permits dev to signal the given interrupt vector.
func (u *IOMMU) AllowVector(dev DeviceID, vec uint8) {
	m := u.allowedVectors[dev]
	if m == nil {
		m = make(map[uint8]bool)
		u.allowedVectors[dev] = m
	}
	m[vec] = true
}

// RemapInterrupt validates an interrupt request from dev. Blocked
// vectors are recorded as faults.
func (u *IOMMU) RemapInterrupt(dev DeviceID, vec uint8) bool {
	if m, ok := u.allowedVectors[dev]; ok && m[vec] {
		return true
	}
	u.Faults = append(u.Faults, IOMMUFault{Dev: dev, Vector: vec, IsIRQ: true})
	return false
}

func (u *IOMMU) translate(dev DeviceID, addr uint64, n int, write bool) (uint64, error) {
	d, ok := u.domains[dev]
	if !ok {
		u.DMABlocks++
		u.Faults = append(u.Faults, IOMMUFault{Dev: dev, Addr: addr, Write: write})
		return 0, fmt.Errorf("hw: IOMMU blocked DMA from unattached device %v to %#x", dev, addr)
	}
	perm := IOMMURead
	if write {
		perm = IOMMUWrite
	}
	hpa, ok := d.Translate(addr, perm)
	if !ok {
		u.DMABlocks++
		u.Faults = append(u.Faults, IOMMUFault{Dev: dev, Addr: addr, Write: write})
		return 0, fmt.Errorf("hw: IOMMU fault: device %v, bus addr %#x, write=%v", dev, addr, write)
	}
	if hpa < u.blockedHi && hpa+uint64(n) > u.blockedLo {
		u.DMABlocks++
		u.Faults = append(u.Faults, IOMMUFault{Dev: dev, Addr: addr, Write: write})
		return 0, fmt.Errorf("hw: IOMMU blocked DMA into protected range from %v", dev)
	}
	return hpa, nil
}

// DMARead implements DMABus with per-page translation.
func (u *IOMMU) DMARead(dev DeviceID, addr uint64, b []byte) error {
	return u.dma(dev, addr, b, false)
}

// DMAWrite implements DMABus with per-page translation.
func (u *IOMMU) DMAWrite(dev DeviceID, addr uint64, b []byte) error {
	return u.dma(dev, addr, b, true)
}

func (u *IOMMU) dma(dev DeviceID, addr uint64, b []byte, write bool) error {
	for len(b) > 0 {
		n := PageSize - int(addr&0xfff)
		if n > len(b) {
			n = len(b)
		}
		hpa, err := u.translate(dev, addr, n, write)
		if err != nil {
			return err
		}
		if write {
			if err := u.inner.DMAWrite(dev, hpa, b[:n]); err != nil {
				return err
			}
		} else {
			if err := u.inner.DMARead(dev, hpa, b[:n]); err != nil {
				return err
			}
		}
		u.DMAPasses++
		addr += uint64(n)
		b = b[n:]
	}
	return nil
}
