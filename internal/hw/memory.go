package hw

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the base (small) page size of the simulated platform.
const PageSize = 4096

// PhysAddr is a host-physical address.
type PhysAddr uint64

// MMIOHandler models a device's memory-mapped register window. Reads and
// writes are of size 1, 2 or 4 bytes, offset-relative to the region base.
type MMIOHandler interface {
	MMIORead(off uint32, size int) uint32
	MMIOWrite(off uint32, size int, val uint32)
}

type mmioRegion struct {
	base    PhysAddr
	size    uint64
	handler MMIOHandler
	name    string
}

// Memory is the platform's physical memory plus the MMIO address space.
// Device windows are claimed with MapMMIO; ordinary loads and stores to
// those ranges are routed to the device handler.
type Memory struct {
	ram     []byte
	regions []mmioRegion // sorted by base

	// pageGen counts writes per 4 KiB RAM page. Host-side caches of
	// derived page contents (the interpreter's decoded-code cache) key
	// on it to detect staleness; it is pure host bookkeeping and never
	// affects simulated behaviour or cycle accounting.
	pageGen []uint64
}

// NewMemory allocates size bytes of physical RAM.
func NewMemory(size uint64) *Memory {
	return &Memory{ram: make([]byte, size), pageGen: make([]uint64, (size+PageSize-1)/PageSize)}
}

// Size returns the amount of RAM in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.ram)) }

// MapMMIO registers handler for the physical range [base, base+size).
// The range must not overlap RAM-backed addresses in use or another
// region.
func (m *Memory) MapMMIO(name string, base PhysAddr, size uint64, handler MMIOHandler) error {
	for _, r := range m.regions {
		if base < r.base+PhysAddr(r.size) && r.base < base+PhysAddr(size) {
			return fmt.Errorf("hw: MMIO region %s [%#x,%#x) overlaps %s", name, base, uint64(base)+size, r.name)
		}
	}
	m.regions = append(m.regions, mmioRegion{base: base, size: size, handler: handler, name: name})
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].base < m.regions[j].base })
	return nil
}

// MMIOAt returns the handler covering addr, if any.
func (m *Memory) MMIOAt(addr PhysAddr) (MMIOHandler, uint32, bool) {
	i := sort.Search(len(m.regions), func(i int) bool {
		return m.regions[i].base+PhysAddr(m.regions[i].size) > addr
	})
	if i < len(m.regions) && addr >= m.regions[i].base {
		return m.regions[i].handler, uint32(addr - m.regions[i].base), true
	}
	return nil, 0, false
}

// IsMMIO reports whether addr falls inside a registered device window.
func (m *Memory) IsMMIO(addr PhysAddr) bool {
	_, _, ok := m.MMIOAt(addr)
	return ok
}

// touch bumps the write generation of every RAM page the write
// [addr, addr+n) covers. Callers must have bounds-checked via checkRAM.
func (m *Memory) touch(addr PhysAddr, n int) {
	if n <= 0 {
		return
	}
	first := uint64(addr) >> 12
	last := (uint64(addr) + uint64(n) - 1) >> 12
	for p := first; p <= last; p++ {
		m.pageGen[p]++ // sanitized: callers checkRAM the full [addr, addr+n) range first
	}
}

// overlapsMMIO reports whether [base, base+size) intersects any device
// window.
func (m *Memory) overlapsMMIO(base PhysAddr, size uint64) bool {
	i := sort.Search(len(m.regions), func(i int) bool {
		return m.regions[i].base+PhysAddr(m.regions[i].size) > base
	})
	return i < len(m.regions) && m.regions[i].base < base+PhysAddr(size)
}

// CodePage returns the RAM backing of the 4 KiB page containing addr
// together with its current write generation, for host-side caches of
// decoded code. It fails (ok=false) when the page is not plain RAM —
// beyond the RAM size or overlapping a device window, where reads have
// side effects and must go through the MMIO-routed access path.
func (m *Memory) CodePage(addr PhysAddr) (data []byte, gen uint64, ok bool) {
	base := addr &^ (PageSize - 1)
	if uint64(base)+PageSize > uint64(len(m.ram)) {
		return nil, 0, false
	}
	if m.overlapsMMIO(base, PageSize) {
		return nil, 0, false
	}
	return m.ram[base : base+PageSize : base+PageSize], m.pageGen[base>>12], true
}

func (m *Memory) checkRAM(addr PhysAddr, n int) {
	if uint64(addr)+uint64(n) > uint64(len(m.ram)) {
		// invariant: guest accesses are bounds-checked during address
		// translation (vTLB/EPT walk) before they reach physical memory,
		// so an out-of-range physical access can only come from a bug in
		// the simulator itself — never from guest or user input.
		panic(fmt.Sprintf("hw: physical access [%#x,%#x) beyond RAM size %#x", addr, uint64(addr)+uint64(n), len(m.ram)))
	}
}

// Read8 loads one byte of physical memory, routing to MMIO if mapped.
func (m *Memory) Read8(addr PhysAddr) uint8 {
	if h, off, ok := m.MMIOAt(addr); ok {
		return uint8(h.MMIORead(off, 1))
	}
	m.checkRAM(addr, 1)
	return m.ram[addr] // sanitized: checkRAM above panics on out-of-range physical access
}

// Read16 loads a little-endian 16-bit value.
func (m *Memory) Read16(addr PhysAddr) uint16 {
	if h, off, ok := m.MMIOAt(addr); ok {
		return uint16(h.MMIORead(off, 2))
	}
	m.checkRAM(addr, 2)
	return binary.LittleEndian.Uint16(m.ram[addr:]) // sanitized: checkRAM above panics on out-of-range physical access
}

// Read32 loads a little-endian 32-bit value.
func (m *Memory) Read32(addr PhysAddr) uint32 {
	if h, off, ok := m.MMIOAt(addr); ok {
		return h.MMIORead(off, 4)
	}
	m.checkRAM(addr, 4)
	return binary.LittleEndian.Uint32(m.ram[addr:]) // sanitized: checkRAM above panics on out-of-range physical access
}

// Read64 loads a little-endian 64-bit value from RAM (not MMIO).
func (m *Memory) Read64(addr PhysAddr) uint64 {
	m.checkRAM(addr, 8)
	return binary.LittleEndian.Uint64(m.ram[addr:]) // sanitized: checkRAM above panics on out-of-range physical access
}

// Write8 stores one byte, routing to MMIO if mapped.
func (m *Memory) Write8(addr PhysAddr, v uint8) {
	if h, off, ok := m.MMIOAt(addr); ok {
		h.MMIOWrite(off, 1, uint32(v))
		return
	}
	m.checkRAM(addr, 1)
	m.pageGen[addr>>12]++ // sanitized: checkRAM above panics on out-of-range physical access
	m.ram[addr] = v       // sanitized: checkRAM above panics on out-of-range physical access
}

// Write16 stores a little-endian 16-bit value.
func (m *Memory) Write16(addr PhysAddr, v uint16) {
	if h, off, ok := m.MMIOAt(addr); ok {
		h.MMIOWrite(off, 2, uint32(v))
		return
	}
	m.checkRAM(addr, 2)
	m.touch(addr, 2)
	binary.LittleEndian.PutUint16(m.ram[addr:], v) // sanitized: checkRAM above panics on out-of-range physical access
}

// Write32 stores a little-endian 32-bit value.
func (m *Memory) Write32(addr PhysAddr, v uint32) {
	if h, off, ok := m.MMIOAt(addr); ok {
		h.MMIOWrite(off, 4, v)
		return
	}
	m.checkRAM(addr, 4)
	m.touch(addr, 4)
	binary.LittleEndian.PutUint32(m.ram[addr:], v) // sanitized: checkRAM above panics on out-of-range physical access
}

// Write64 stores a little-endian 64-bit value to RAM (not MMIO).
func (m *Memory) Write64(addr PhysAddr, v uint64) {
	m.checkRAM(addr, 8)
	m.touch(addr, 8)
	binary.LittleEndian.PutUint64(m.ram[addr:], v) // sanitized: checkRAM above panics on out-of-range physical access
}

// ReadBytes copies n bytes of RAM starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr PhysAddr, n int) []byte {
	m.checkRAM(addr, n)
	out := make([]byte, n)
	copy(out, m.ram[addr:]) // sanitized: checkRAM above panics on out-of-range physical access
	return out
}

// WriteBytes copies b into RAM at addr.
func (m *Memory) WriteBytes(addr PhysAddr, b []byte) {
	m.checkRAM(addr, len(b))
	m.touch(addr, len(b))
	copy(m.ram[addr:], b) // sanitized: checkRAM above panics on out-of-range physical access
}

// RAM exposes the raw backing slice for DMA engines. Callers must respect
// region boundaries; this bypasses MMIO routing intentionally.
func (m *Memory) RAM() []byte { return m.ram }
