package hw

import "fmt"

// Conventional platform memory map and interrupt routing.
const (
	AHCIMMIOBase PhysAddr = 0xfeb00000
	AHCIMMIOSize          = 0x1000
	NICMMIOBase  PhysAddr = 0xfea00000
	NICMMIOSize           = 0x20000

	IRQTimer  = 0
	IRQSerial = 4
	IRQNIC    = 10
	IRQAHCI   = 11
)

// Well-known PCI device IDs of the platform devices, packed BDF-style
// (bus<<8 | dev<<3 | fn, see BDF): the AHCI controller at 00:1f.2 and
// the NIC at 00:19.0.
const (
	AHCIDeviceID DeviceID = 0<<8 | 31<<3 | 2
	NICDeviceID  DeviceID = 0<<8 | 25<<3 | 0
)

// CPU is one logical processor of the platform: a cycle clock and a
// hardware TLB. The architectural register state lives in the x86
// package; the hypervisor binds the two.
type CPU struct {
	ID    int
	Clock Clock
	TLB   *TLB
}

// Config selects the platform parameters.
type Config struct {
	Model   CPUModel
	NumCPUs int
	RAMSize uint64

	// Disk parameters; zero values select the paper's drive
	// (250 GB, ~67 MB/s sequential, ~8200 req/s).
	DiskSectors  uint64
	DiskMBs      float64
	DiskIOPS     float64
	NICCoalesce  int  // interrupts/second cap; 0 = paper default 20000
	DisableIOMMU bool // platforms without VT-d (pre-Nehalem)

	// TLB geometry; zero values select 512 small + 32 large entries.
	TLBSmall int
	TLBLarge int
}

// Platform is the simulated machine: the substitute for the paper's
// DX58SO/Core i7 testbed.
type Platform struct {
	Cost  *CostModel
	Mem   *Memory
	Queue *EventQueue
	Ports *IOPorts
	CPUs  []*CPU

	PIC    *I8259
	PIT    *I8254
	Serial *Serial8250
	AHCI   *AHCI
	NIC    *NIC
	IOMMU  *IOMMU // nil if the platform has none
	PCI    *PCIBus

	// InterruptHook, when set, is invoked whenever a device interrupt
	// becomes pending at the PIC. The microhypervisor installs itself
	// here.
	InterruptHook func()
}

// NewPlatform builds the machine.
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 1
	}
	if cfg.RAMSize == 0 {
		cfg.RAMSize = 768 << 20
	}
	if cfg.DiskSectors == 0 {
		cfg.DiskSectors = 250e9 / SectorSize
	}
	if cfg.DiskMBs == 0 {
		cfg.DiskMBs = 67
	}
	if cfg.DiskIOPS == 0 {
		cfg.DiskIOPS = 8200
	}
	if cfg.NICCoalesce == 0 {
		cfg.NICCoalesce = 20000
	}
	if cfg.TLBSmall == 0 {
		cfg.TLBSmall = 512
	}
	if cfg.TLBLarge == 0 {
		cfg.TLBLarge = 32
	}

	cost := ModelByName(cfg.Model)
	p := &Platform{
		Cost:  cost,
		Mem:   NewMemory(cfg.RAMSize),
		Queue: NewEventQueue(),
		Ports: NewIOPorts(),
		PCI:   NewPCIBus(),
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		p.CPUs = append(p.CPUs, &CPU{
			ID:  i,
			TLB: NewTLB(cfg.TLBSmall, cfg.TLBLarge, cost.LargePage),
		})
	}
	clock := func() Cycles { return p.CPUs[0].Clock.Now() }

	p.PIC = NewI8259()
	p.PIC.OutputChanged = func() {
		if p.InterruptHook != nil {
			p.InterruptHook()
		}
	}
	p.PIT = NewI8254(p.Queue, clock, cost.FreqMHz, func() { p.PIC.RaiseIRQ(IRQTimer) })
	p.Serial = NewSerial8250(0x3f8)

	disk := NewDisk(cfg.DiskSectors, cfg.DiskMBs, cfg.DiskIOPS, cost.FreqMHz)
	var dma DMABus = NewDirectDMA(p.Mem)
	if !cfg.DisableIOMMU {
		p.IOMMU = NewIOMMU(p.Mem)
		dma = p.IOMMU
	}
	p.AHCI = NewAHCI(AHCIDeviceID, disk, dma, p.Queue, clock, func() { p.PIC.RaiseIRQ(IRQAHCI) })
	p.NIC = NewNIC(NICDeviceID, dma, p.Queue, clock, cost.FreqMHz, cfg.NICCoalesce, func() { p.PIC.RaiseIRQ(IRQNIC) })

	if err := p.Mem.MapMMIO("ahci", AHCIMMIOBase, AHCIMMIOSize, p.AHCI); err != nil {
		return nil, err
	}
	if err := p.Mem.MapMMIO("nic", NICMMIOBase, NICMMIOSize, p.NIC); err != nil {
		return nil, err
	}
	for _, m := range []struct {
		name   string
		lo, hi uint16
		h      IOPortHandler
	}{
		{"pic-master", 0x20, 0x21, p.PIC},
		{"pit", 0x40, 0x43, p.PIT},
		{"port61", 0x61, 0x61, p.PIT},
		{"pic-slave", 0xa0, 0xa1, p.PIC},
		{"serial", 0x3f8, 0x3ff, p.Serial},
		{"elcr", 0x4d0, 0x4d1, p.PIC},
		{"pci", 0xcf8, 0xcff, p.PCI},
	} {
		if err := p.Ports.Map(m.name, m.lo, m.hi, m.h); err != nil {
			return nil, err
		}
	}

	p.PCI.Add(&PCIFunction{
		Dev: AHCIDeviceID, VendorID: 0x8086, DeviceID: 0x2922,
		Class: 0x010601, BAR: [6]uint32{5: uint32(AHCIMMIOBase)}, IRQLine: IRQAHCI,
	})
	p.PCI.Add(&PCIFunction{
		Dev: NICDeviceID, VendorID: 0x8086, DeviceID: 0x10de,
		Class: 0x020000, BAR: [6]uint32{0: uint32(NICMMIOBase)}, IRQLine: IRQNIC,
	})
	return p, nil
}

// MustNewPlatform is NewPlatform for tests and examples with known-good
// configurations.
func MustNewPlatform(cfg Config) *Platform {
	p, err := NewPlatform(cfg)
	if err != nil {
		// invariant: Must-constructor for statically known-good configs
		// in tests and examples; runs at setup time, before any guest
		// code executes. Production callers use NewPlatform.
		panic(fmt.Sprintf("hw: NewPlatform: %v", err))
	}
	return p
}

// BootCPU returns CPU 0.
func (p *Platform) BootCPU() *CPU { return p.CPUs[0] }

// Now returns CPU 0's clock, the platform reference time.
func (p *Platform) Now() Cycles { return p.CPUs[0].Clock.Now() }

// RunEventsUntil fires all pending events up to and including time t.
func (p *Platform) RunEventsUntil(t Cycles) {
	for !p.Queue.Empty() && p.Queue.NextTime() <= t {
		p.Queue.PopDue(t)
	}
}
