package hw

// PCIFunction describes one discoverable PCI function for config-space
// enumeration.
type PCIFunction struct {
	Dev      DeviceID
	VendorID uint16
	DeviceID uint16
	Class    uint32 // class<<16 | subclass<<8 | progif
	BAR      [6]uint32
	IRQLine  uint8
}

// PCIBus implements the legacy 0xCF8/0xCFC configuration mechanism over a
// static set of functions. It exists so drivers discover devices the same
// way they would on hardware; it does not model bridges or reassignment.
type PCIBus struct {
	fns  map[DeviceID]*PCIFunction
	addr uint32 // last value written to CONFIG_ADDRESS
}

// NewPCIBus returns an empty bus.
func NewPCIBus() *PCIBus { return &PCIBus{fns: make(map[DeviceID]*PCIFunction)} }

// Add registers a function.
func (b *PCIBus) Add(f *PCIFunction) { b.fns[f.Dev] = f }

// Functions returns all registered functions.
func (b *PCIBus) Functions() []*PCIFunction {
	out := make([]*PCIFunction, 0, len(b.fns))
	for _, f := range b.fns {
		out = append(out, f)
	}
	return out
}

// PortRead implements IOPortHandler for 0xCF8-0xCFF.
func (b *PCIBus) PortRead(port uint16, size int) uint32 {
	switch {
	case port == 0xcf8:
		return b.addr
	case port >= 0xcfc && port <= 0xcff:
		if b.addr&0x80000000 == 0 {
			return 0xffffffff
		}
		dev := DeviceID(b.addr >> 8 & 0xffff)
		reg := b.addr & 0xfc
		f, ok := b.fns[dev]
		if !ok {
			return 0xffffffff
		}
		v := b.configRead(f, reg)
		shift := (uint32(port) & 3) * 8
		return v >> shift
	}
	return 0xffffffff
}

// PortWrite implements IOPortHandler.
func (b *PCIBus) PortWrite(port uint16, size int, val uint32) {
	if port == 0xcf8 {
		b.addr = val
	}
	// Config writes (BAR sizing etc.) are not needed by our drivers.
}

func (b *PCIBus) configRead(f *PCIFunction, reg uint32) uint32 {
	switch reg {
	case 0x00:
		return uint32(f.DeviceID)<<16 | uint32(f.VendorID)
	case 0x04:
		return 0x02100006 // status: caps; command: memory + bus master
	case 0x08:
		return f.Class<<8 | 0x01 // revision 1
	case 0x0c:
		return 0 // single-function, header type 0
	case 0x10, 0x14, 0x18, 0x1c, 0x20, 0x24:
		return f.BAR[(reg-0x10)/4]
	case 0x3c:
		return uint32(f.IRQLine)<<0 | 1<<8 // interrupt line, pin INTA
	}
	return 0
}
