package hw

// TLBTag identifies the address-space tag of a TLB entry. On hardware
// with VPID/ASID support, guest entries carry the VM's tag and survive
// VM transitions; tag 0 is the host/hypervisor tag. Without tagging
// support every transition flushes the whole TLB.
type TLBTag uint16

// HostTag is the TLB tag of host-mode translations.
const HostTag TLBTag = 0

// TLBEntry is one cached translation.
type TLBEntry struct {
	Tag      TLBTag
	VPN      uint32 // virtual page number (vaddr >> 12)
	PFN      uint64 // physical frame number (paddr >> 12)
	Large    bool   // entry covers a large page
	Writable bool
	User     bool
	Global   bool // survives single-tag flushes (PGE)
}

type tlbKey struct {
	tag TLBTag
	vpn uint32
}

// TLBStats counts TLB activity; the Figure 5 paging-mode deltas and the
// "TLB effects" box of Figure 8 derive from these.
type TLBStats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Evictions  uint64
	FlushAll   uint64
	FlushTag   uint64
	FlushVA    uint64
	FlushedEnt uint64 // total entries dropped by flushes
}

// TLB models a tagged, capacity-limited translation cache with separate
// small-page and large-page arrays (as on Nehalem-class hardware). A
// large-page entry covers an entire 2M/4M region with a single entry,
// which is why large host pages lower TLB pressure (Figure 5's "EPT,
// small pages" bars).
type TLB struct {
	smallCap int
	largeCap int

	small map[tlbKey]*TLBEntry
	large map[tlbKey]*TLBEntry

	// FIFO eviction rings for determinism.
	smallOrder []tlbKey
	largeOrder []tlbKey

	largeShift uint // log2 of the large page size (21 for 2M, 22 for 4M)

	Stats TLBStats
}

// NewTLB creates a TLB with the given entry capacities and large-page
// size in bytes (must be a power of two >= 2M).
func NewTLB(smallCap, largeCap int, largePage uint32) *TLB {
	shift := uint(0)
	for p := largePage; p > 1; p >>= 1 {
		shift++
	}
	return &TLB{
		smallCap:   smallCap,
		largeCap:   largeCap,
		small:      make(map[tlbKey]*TLBEntry, smallCap),
		large:      make(map[tlbKey]*TLBEntry, largeCap),
		largeShift: shift,
	}
}

// LargePageSize returns the large page size in bytes.
func (t *TLB) LargePageSize() uint32 { return 1 << t.largeShift }

func (t *TLB) largeVPN(vaddr uint32) uint32 { return vaddr >> t.largeShift }

// Lookup searches for a translation of vaddr under tag. On a hit it
// returns the entry.
func (t *TLB) Lookup(tag TLBTag, vaddr uint32) (*TLBEntry, bool) {
	if e, ok := t.large[tlbKey{tag, t.largeVPN(vaddr)}]; ok {
		t.Stats.Hits++
		return e, true
	}
	if e, ok := t.small[tlbKey{tag, vaddr >> 12}]; ok {
		t.Stats.Hits++
		return e, true
	}
	t.Stats.Misses++
	return nil, false
}

// Insert caches a translation. For large entries, VPN must already be the
// large-page-aligned virtual page number (vaddr >> largeShift stored as
// VPN) — use InsertLarge/InsertSmall helpers to avoid mistakes.
func (t *TLB) insert(m map[tlbKey]*TLBEntry, order *[]tlbKey, capn int, k tlbKey, e *TLBEntry) {
	if _, exists := m[k]; !exists && len(m) >= capn {
		// FIFO eviction of the oldest still-present key.
		for len(*order) > 0 {
			victim := (*order)[0]
			*order = (*order)[1:]
			if _, ok := m[victim]; ok {
				delete(m, victim)
				t.Stats.Evictions++
				break
			}
		}
	}
	if _, exists := m[k]; !exists {
		*order = append(*order, k)
	}
	m[k] = e
	t.Stats.Fills++
}

// InsertSmall caches a 4K translation for vaddr.
func (t *TLB) InsertSmall(tag TLBTag, vaddr uint32, pfn uint64, writable, user, global bool) {
	k := tlbKey{tag, vaddr >> 12}
	t.insert(t.small, &t.smallOrder, t.smallCap, k, &TLBEntry{
		Tag: tag, VPN: k.vpn, PFN: pfn, Writable: writable, User: user, Global: global,
	})
}

// InsertLarge caches a large-page translation for vaddr. pfn is the
// physical frame number of the large frame base (paddr >> 12).
func (t *TLB) InsertLarge(tag TLBTag, vaddr uint32, pfn uint64, writable, user, global bool) {
	k := tlbKey{tag, t.largeVPN(vaddr)}
	t.insert(t.large, &t.largeOrder, t.largeCap, k, &TLBEntry{
		Tag: tag, VPN: k.vpn, PFN: pfn, Large: true, Writable: writable, User: user, Global: global,
	})
}

// Translate returns the physical address for vaddr if cached.
func (t *TLB) Translate(tag TLBTag, vaddr uint32) (PhysAddr, *TLBEntry, bool) {
	e, ok := t.Lookup(tag, vaddr)
	if !ok {
		return 0, nil, false
	}
	if e.Large {
		mask := uint32(1)<<t.largeShift - 1
		return PhysAddr(e.PFN)<<12 + PhysAddr(vaddr&mask), e, true
	}
	return PhysAddr(e.PFN)<<12 + PhysAddr(vaddr&0xfff), e, true
}

// FlushAll drops every entry (untagged hardware on a world switch, or
// MOV CR3 with PGE disabled dropping even global entries is modeled by
// the caller choosing FlushAll vs FlushTag).
func (t *TLB) FlushAll() {
	t.Stats.FlushAll++
	t.Stats.FlushedEnt += uint64(len(t.small) + len(t.large))
	clearMap(t.small)
	clearMap(t.large)
	t.smallOrder = t.smallOrder[:0]
	t.largeOrder = t.largeOrder[:0]
}

// FlushTag drops all non-global entries with the given tag (tagged
// address-space switch / INVVPID single-context).
func (t *TLB) FlushTag(tag TLBTag) {
	t.Stats.FlushTag++
	for k, e := range t.small {
		if k.tag == tag && !e.Global {
			delete(t.small, k)
			t.Stats.FlushedEnt++
		}
	}
	for k, e := range t.large {
		if k.tag == tag && !e.Global {
			delete(t.large, k)
			t.Stats.FlushedEnt++
		}
	}
}

// FlushVA drops the entry covering vaddr under tag (INVLPG).
func (t *TLB) FlushVA(tag TLBTag, vaddr uint32) {
	t.Stats.FlushVA++
	if _, ok := t.small[tlbKey{tag, vaddr >> 12}]; ok {
		delete(t.small, tlbKey{tag, vaddr >> 12})
		t.Stats.FlushedEnt++
	}
	if _, ok := t.large[tlbKey{tag, t.largeVPN(vaddr)}]; ok {
		delete(t.large, tlbKey{tag, t.largeVPN(vaddr)})
		t.Stats.FlushedEnt++
	}
}

// Len returns the number of cached entries.
func (t *TLB) Len() int { return len(t.small) + len(t.large) }

func clearMap(m map[tlbKey]*TLBEntry) {
	for k := range m {
		delete(m, k)
	}
}
