package hw

import "encoding/binary"

// NIC register offsets (e1000-flavoured subset).
const (
	nicCTRL   = 0x0000
	nicSTATUS = 0x0008
	nicICR    = 0x00c0 // interrupt cause, read-to-clear
	nicITR    = 0x00c4 // interrupt throttle (min interval, 256ns units)
	nicIMS    = 0x00d0
	nicIMC    = 0x00d8
	nicRCTL   = 0x0100
	nicRDBAL  = 0x2800
	nicRDBAH  = 0x2804
	nicRDLEN  = 0x2808
	nicRDH    = 0x2810
	nicRDT    = 0x2818
)

// Interrupt cause bits.
const (
	icrRXT0 = 1 << 7 // receiver timer / packet received
)

// RCTL bits.
const (
	rctlEN   = 1 << 1
	rctlBSEX = 1 << 25 // buffer size extension
)

// bufSize decodes the receive buffer size from RCTL (BSIZE bits 16-17,
// extended by BSEX), as on the real controller. Packets longer than the
// buffer are truncated — drivers must configure jumbo-capable buffers
// for jumbo frames.
func (n *NIC) bufSize() int {
	bsize := n.rctl >> 16 & 3
	if n.rctl&rctlBSEX != 0 {
		switch bsize {
		case 1:
			return 16384
		case 2:
			return 8192
		case 3:
			return 4096
		}
		return 16384
	}
	switch bsize {
	case 1:
		return 1024
	case 2:
		return 512
	case 3:
		return 256
	}
	return 2048
}

// NICStats counts device activity for the Figure 7 analysis.
type NICStats struct {
	PacketsReceived uint64
	PacketsDropped  uint64
	BytesReceived   uint64
	IRQs            uint64
	IRQsCoalesced   uint64
	MMIOReads       uint64
	MMIOWrites      uint64
}

// NIC models a descriptor-ring gigabit Ethernet controller in the style
// of the Intel 82567 used in the paper: received packets are DMA'd into
// ring buffers and completion interrupts are rate-limited by hardware
// interrupt coalescing — the mechanism that caps Figure 7's interrupt
// rate at roughly 20000 interrupts per second.
type NIC struct {
	Dev   DeviceID
	dma   DMABus
	queue *EventQueue
	clock func() Cycles
	raise func()

	freqMHz int

	ctrl  uint32
	icr   uint32
	ims   uint32
	rctl  uint32
	rdba  uint64
	rdlen uint32
	rdh   uint32
	rdt   uint32

	// Coalescing state: a pending interrupt fires when the throttle
	// window expires.
	itrCycles   Cycles // min cycles between interrupts
	lastIRQ     Cycles
	everFired   bool
	irqPending  bool
	irqDeferred *Event

	Stats NICStats
}

// NewNIC creates the controller; coalesceHz caps the interrupt rate
// (0 disables coalescing).
func NewNIC(dev DeviceID, dma DMABus, queue *EventQueue, clock func() Cycles, freqMHz int, coalesceHz int, raise func()) *NIC {
	n := &NIC{Dev: dev, dma: dma, queue: queue, clock: clock, freqMHz: freqMHz, raise: raise}
	if coalesceHz > 0 {
		n.itrCycles = Cycles(uint64(freqMHz) * 1e6 / uint64(coalesceHz))
	}
	return n
}

// SetDMA replaces the DMA path (IOMMU interposition).
func (n *NIC) SetDMA(dma DMABus) { n.dma = dma }

// SetCoalesceHz reconfigures the interrupt rate cap.
func (n *NIC) SetCoalesceHz(hz int) {
	if hz <= 0 {
		n.itrCycles = 0
		return
	}
	n.itrCycles = Cycles(uint64(n.freqMHz) * 1e6 / uint64(hz))
}

// ringSlots returns the number of descriptors in the ring.
func (n *NIC) ringSlots() uint32 { return n.rdlen / 16 }

// Receive delivers one packet from the wire. It returns false if the
// ring had no free descriptor (packet dropped).
func (n *NIC) Receive(pkt []byte) bool {
	if n.rctl&rctlEN == 0 || n.ringSlots() == 0 {
		n.Stats.PacketsDropped++
		return false
	}
	next := (n.rdh + 1) % n.ringSlots()
	if n.rdh == n.rdt { // ring empty of software-owned descriptors
		n.Stats.PacketsDropped++
		return false
	}
	// Fetch descriptor at RDH.
	descAddr := n.rdba + uint64(n.rdh)*16
	var desc [16]byte
	if err := n.dma.DMARead(n.Dev, descAddr, desc[:]); err != nil {
		n.Stats.PacketsDropped++
		return false
	}
	bufAddr := binary.LittleEndian.Uint64(desc[0:])
	data := pkt
	if max := n.bufSize(); len(data) > max {
		data = data[:max] // hardware truncation at the buffer boundary
	}
	if err := n.dma.DMAWrite(n.Dev, bufAddr, data); err != nil {
		n.Stats.PacketsDropped++
		return false
	}
	// Write back: length, status DD|EOP.
	binary.LittleEndian.PutUint16(desc[8:], uint16(len(data)))
	desc[12] = 0x03
	if err := n.dma.DMAWrite(n.Dev, descAddr, desc[:]); err != nil {
		n.Stats.PacketsDropped++
		return false
	}
	n.rdh = next
	n.Stats.PacketsReceived++
	n.Stats.BytesReceived += uint64(len(pkt))
	n.icr |= icrRXT0
	n.interrupt()
	return true
}

// interrupt asserts the line, subject to coalescing.
func (n *NIC) interrupt() {
	if n.icr&n.ims == 0 {
		return
	}
	now := n.clock()
	if n.itrCycles == 0 || !n.everFired || now >= n.lastIRQ+n.itrCycles {
		n.fireIRQ(now)
		return
	}
	// Within the throttle window: defer to the window edge, merging
	// with any already-deferred interrupt.
	n.Stats.IRQsCoalesced++
	if n.irqPending {
		return
	}
	n.irqPending = true
	n.irqDeferred = n.queue.At(n.lastIRQ+n.itrCycles, func() {
		n.irqPending = false
		n.irqDeferred = nil
		if n.icr&n.ims != 0 {
			n.fireIRQ(n.clock())
		}
	})
}

func (n *NIC) fireIRQ(now Cycles) {
	n.lastIRQ = now
	n.everFired = true
	n.Stats.IRQs++
	n.raise()
}

// MMIORead implements MMIOHandler.
func (n *NIC) MMIORead(off uint32, size int) uint32 {
	n.Stats.MMIOReads++
	switch off {
	case nicCTRL:
		return n.ctrl
	case nicSTATUS:
		return 0x80080783 // link up, full duplex, 1000 Mb/s
	case nicICR:
		v := n.icr
		n.icr = 0 // read-to-clear
		return v
	case nicITR:
		if n.itrCycles == 0 {
			return 0
		}
		return uint32(uint64(n.itrCycles) * 1000 / uint64(n.freqMHz) / 256 * 1000)
	case nicIMS:
		return n.ims
	case nicRCTL:
		return n.rctl
	case nicRDBAL:
		return uint32(n.rdba)
	case nicRDBAH:
		return uint32(n.rdba >> 32)
	case nicRDLEN:
		return n.rdlen
	case nicRDH:
		return n.rdh
	case nicRDT:
		return n.rdt
	}
	return 0
}

// MMIOWrite implements MMIOHandler.
func (n *NIC) MMIOWrite(off uint32, size int, val uint32) {
	n.Stats.MMIOWrites++
	switch off {
	case nicCTRL:
		n.ctrl = val
	case nicIMS:
		n.ims |= val
	case nicIMC:
		n.ims &^= val
	case nicRCTL:
		n.rctl = val
	case nicRDBAL:
		n.rdba = n.rdba&^0xffffffff | uint64(val)
	case nicRDBAH:
		n.rdba = n.rdba&0xffffffff | uint64(val)<<32
	case nicRDLEN:
		n.rdlen = val
	case nicRDH:
		n.rdh = val
	case nicRDT:
		n.rdt = val
	}
}

// PacketSource feeds a NIC with a constant-bandwidth packet stream shaped
// by a token bucket — the sender configuration of the paper's Netperf
// benchmark (§8.3).
type PacketSource struct {
	nic     *NIC
	queue   *EventQueue
	clock   func() Cycles
	freqMHz int

	packetBytes int
	gapCycles   Cycles
	remaining   uint64
	stopped     bool

	Sent uint64
}

// NewPacketSource creates a source that will deliver `count` packets of
// `packetBytes` each at `mbitPerSec` to nic.
func NewPacketSource(nic *NIC, queue *EventQueue, clock func() Cycles, freqMHz int, packetBytes int, mbitPerSec float64, count uint64) *PacketSource {
	bitsPerPacket := float64(packetBytes * 8)
	pps := mbitPerSec * 1e6 / bitsPerPacket
	gap := Cycles(float64(freqMHz) * 1e6 / pps)
	if gap == 0 {
		gap = 1
	}
	return &PacketSource{
		nic: nic, queue: queue, clock: clock, freqMHz: freqMHz,
		packetBytes: packetBytes, gapCycles: gap, remaining: count,
	}
}

// Start schedules the first arrival.
func (s *PacketSource) Start() { s.scheduleNext(s.clock() + s.gapCycles) }

// Stop halts further arrivals.
func (s *PacketSource) Stop() { s.stopped = true }

// Done reports whether all packets have been delivered.
func (s *PacketSource) Done() bool { return s.remaining == 0 || s.stopped }

func (s *PacketSource) scheduleNext(at Cycles) {
	if s.remaining == 0 || s.stopped {
		return
	}
	s.queue.At(at, func() {
		if s.stopped {
			return
		}
		pkt := make([]byte, s.packetBytes)
		binary.LittleEndian.PutUint64(pkt, s.Sent)
		s.nic.Receive(pkt)
		s.Sent++
		s.remaining--
		s.scheduleNext(at + s.gapCycles)
	})
}
