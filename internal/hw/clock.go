// Package hw simulates the physical platform NOVA runs on: CPUs with
// cycle-accurate clocks, physical memory with an MMIO bus, a tagged TLB
// model, platform devices (AHCI, NIC, PIC, PIT, serial), an IOMMU, and a
// discrete-event queue that provides virtual time.
//
// The paper's system runs on real Intel/AMD hardware; this package is the
// synthetic substitute. Everything that is an architectural *mechanism*
// (TLB tagging, nested page walks, DMA descriptor processing, interrupt
// coalescing) is executed for real; only the raw costs of hardware
// primitives (a VM transition, a page-walk step) are constants taken from
// the per-CPU cost models in costmodel.go, which correspond to the
// hardware-measured lowermost boxes of Figures 8 and 9 of the paper.
package hw

import (
	"container/heap"
	"fmt"
)

// Cycles is a duration or point in virtual time, measured in CPU clock
// cycles of the simulated platform's reference clock.
type Cycles uint64

// Clock is a per-CPU cycle counter. All costs charged during simulation
// accumulate here; benchmark results are derived from clock deltas.
type Clock struct {
	now Cycles

	// busy accumulates cycles charged while the CPU was doing
	// attributable work (as opposed to idling in HLT). CPU-utilization
	// figures are busy/total.
	busy Cycles
}

// Now returns the current virtual time of this clock.
func (c *Clock) Now() Cycles { return c.now }

// Busy returns the cycles spent on attributable work since creation.
func (c *Clock) Busy() Cycles { return c.busy }

// Charge advances the clock by n cycles of work.
func (c *Clock) Charge(n Cycles) {
	c.now += n
	c.busy += n
}

// Idle advances the clock by n cycles without accounting them as work
// (the CPU is halted or waiting).
func (c *Clock) Idle(n Cycles) { c.now += n }

// AdvanceTo moves the clock forward to t (idling) if t is in the future.
func (c *Clock) AdvanceTo(t Cycles) {
	if t > c.now {
		c.now = t
	}
}

// Event is a scheduled callback in virtual time.
type Event struct {
	When Cycles
	Do   func()

	index int // heap index; -1 when popped or cancelled
	seq   uint64
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// EventQueue orders device completions, timer ticks and other
// asynchronous hardware activity in virtual time. It is deterministic:
// events at the same instant fire in scheduling order.
type EventQueue struct {
	heap eventHeap
	seq  uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// At schedules do to run at absolute time when and returns the event so
// the caller may cancel it.
func (q *EventQueue) At(when Cycles, do func()) *Event {
	q.seq++
	e := &Event{When: when, Do: do, seq: q.seq}
	heap.Push(&q.heap, e)
	return e
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *EventQueue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.heap, e.index)
	e.index = -2
}

// Empty reports whether no events are pending.
func (q *EventQueue) Empty() bool { return len(q.heap) == 0 }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.heap) }

// NextTime returns the time of the earliest pending event. It panics if
// the queue is empty; check Empty first.
func (q *EventQueue) NextTime() Cycles {
	if len(q.heap) == 0 {
		// invariant: callers must check Empty() first (API contract);
		// the event queue is driven only by simulator-internal run
		// loops, so an empty-queue query is a simulator bug, not a
		// condition any guest or user domain can provoke.
		panic("hw: NextTime on empty event queue")
	}
	return q.heap[0].When
}

// PopDue fires the earliest event if it is due at or before now.
// It returns true if an event fired.
func (q *EventQueue) PopDue(now Cycles) bool {
	if len(q.heap) == 0 || q.heap[0].When > now {
		return false
	}
	e := heap.Pop(&q.heap).(*Event)
	e.Do()
	return true
}

// String summarizes the queue for debugging.
func (q *EventQueue) String() string {
	if q.Empty() {
		return "eventqueue{empty}"
	}
	return fmt.Sprintf("eventqueue{%d pending, next @%d}", q.Len(), q.NextTime())
}
