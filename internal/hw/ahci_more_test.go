package hw

import "testing"

func TestAHCIMultipleSlotsInFlight(t *testing.T) {
	a, mem, q, clk, irqs := newTestAHCI(t)
	// Three commands in slots 0..2, different LBAs and buffers.
	for slot := 0; slot < 3; slot++ {
		clb := PhysAddr(0x1000)
		ctba := PhysAddr(0x2000 + slot*0x200)
		buf := PhysAddr(0x8000 + slot*0x1000)
		// Header for this slot.
		hdrAddr := clb + PhysAddr(slot*32)
		mem.Write32(hdrAddr, 5|1<<16)
		mem.Write32(hdrAddr+8, uint32(ctba))
		mem.Write32(hdrAddr+12, 0)
		// CFIS: read 1 sector at LBA 100+slot.
		mem.Write8(ctba+0, 0x27)
		mem.Write8(ctba+1, 0x80)
		mem.Write8(ctba+2, 0x25)
		mem.Write8(ctba+4, uint8(100+slot))
		mem.Write8(ctba+7, 0x40)
		mem.Write8(ctba+12, 1)
		// PRDT.
		mem.Write32(ctba+0x80, uint32(buf))
		mem.Write32(ctba+0x80+12, SectorSize-1)
	}
	ahciStart(a, 0x1000)
	a.MMIOWrite(ahciPortBase+pxCI, 4, 0b111)
	if ci := a.MMIORead(ahciPortBase+pxCI, 4); ci != 0b111 {
		t.Fatalf("CI = %#b", ci)
	}
	drain(q, clk)
	if ci := a.MMIORead(ahciPortBase+pxCI, 4); ci != 0 {
		t.Errorf("CI = %#b after drain", ci)
	}
	if *irqs == 0 {
		t.Error("no interrupts")
	}
	// Each buffer holds its own sector.
	for slot := 0; slot < 3; slot++ {
		want := make([]byte, SectorSize)
		a.Disk().ReadSectors(uint64(100+slot), 1, want) //nolint:errcheck
		got := mem.ReadBytes(PhysAddr(0x8000+slot*0x1000), SectorSize)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("slot %d data mismatch at %d", slot, i)
			}
		}
	}
	if a.Stats.Commands != 3 {
		t.Errorf("commands = %d", a.Stats.Commands)
	}
}

func TestAHCIScatterGatherMultiPRD(t *testing.T) {
	a, mem, q, clk, _ := newTestAHCI(t)
	clb, ctba := PhysAddr(0x1000), PhysAddr(0x2000)
	// One 2-sector read scattered into two discontiguous buffers.
	mem.Write32(clb, 5|2<<16)
	mem.Write32(clb+8, uint32(ctba))
	mem.Write8(ctba+0, 0x27)
	mem.Write8(ctba+1, 0x80)
	mem.Write8(ctba+2, 0x25)
	mem.Write8(ctba+4, 40)
	mem.Write8(ctba+7, 0x40)
	mem.Write8(ctba+12, 2)
	mem.Write32(ctba+0x80, 0x8000)
	mem.Write32(ctba+0x80+12, SectorSize-1)
	mem.Write32(ctba+0x90, 0xa000)
	mem.Write32(ctba+0x90+12, SectorSize-1)
	ahciStart(a, clb)
	a.MMIOWrite(ahciPortBase+pxCI, 4, 1)
	drain(q, clk)

	want := make([]byte, 2*SectorSize)
	a.Disk().ReadSectors(40, 2, want) //nolint:errcheck
	got1 := mem.ReadBytes(0x8000, SectorSize)
	got2 := mem.ReadBytes(0xa000, SectorSize)
	for i := 0; i < SectorSize; i++ {
		if got1[i] != want[i] || got2[i] != want[SectorSize+i] {
			t.Fatalf("scatter mismatch at %d", i)
		}
	}
}

func TestNICRingWrapAround(t *testing.T) {
	n, _, _, _, _ := newTestNIC(0)
	// Drive the 8-slot ring through 20 packets, returning slots as a
	// driver would: RDT = just-consumed slot.
	for i := 0; i < 20; i++ {
		if !n.Receive([]byte{byte(i), 1, 2, 3}) {
			t.Fatalf("receive %d failed", i)
		}
		head := n.MMIORead(nicRDH, 4)
		n.MMIOWrite(nicRDT, 4, (head+7)%8) // keep 7 slots available
	}
	if n.Stats.PacketsReceived != 20 {
		t.Errorf("received = %d", n.Stats.PacketsReceived)
	}
	if n.Stats.PacketsDropped != 0 {
		t.Errorf("drops = %d", n.Stats.PacketsDropped)
	}
	if h := n.MMIORead(nicRDH, 4); h != 20%8 {
		t.Errorf("RDH = %d, want %d", h, 20%8)
	}
}

func TestPITOneShotMode(t *testing.T) {
	q := NewEventQueue()
	var clk Clock
	ticks := 0
	pit := NewI8254(q, clk.Now, 1000, func() { ticks++ })
	pit.PortWrite(0x43, 1, 0x30) // channel 0, lobyte/hibyte, mode 0
	pit.PortWrite(0x40, 1, 0x10)
	pit.PortWrite(0x40, 1, 0x00)
	for !q.Empty() {
		clk.AdvanceTo(q.NextTime())
		q.PopDue(clk.Now())
	}
	if ticks != 1 {
		t.Errorf("one-shot fired %d times", ticks)
	}
	pit.Stop()
}

func TestKeyboardControllerModel(t *testing.T) {
	raised := 0
	k := NewI8042(func() { raised++ })
	if k.Pending() {
		t.Error("pending when empty")
	}
	if st := k.PortRead(0x64, 1); st&1 != 0 {
		t.Error("OBF set when empty")
	}
	k.Inject(0x1c, 0x9c)
	if !k.Pending() || raised == 0 {
		t.Error("injection did not arm")
	}
	if st := k.PortRead(0x64, 1); st&1 == 0 {
		t.Error("OBF clear with data")
	}
	if sc := k.PortRead(0x60, 1); sc != 0x1c {
		t.Errorf("first scancode = %#x", sc)
	}
	if sc := k.PortRead(0x60, 1); sc != 0x9c {
		t.Errorf("second scancode = %#x", sc)
	}
	if k.Pending() {
		t.Error("still pending after drain")
	}
	// Overflow drops.
	for i := 0; i < 32; i++ {
		k.Inject(byte(i))
	}
	if k.Drops == 0 {
		t.Error("no drops on overflow")
	}
}
