package hw

import "testing"

func TestClockChargeAndIdle(t *testing.T) {
	var c Clock
	c.Charge(100)
	c.Idle(50)
	if c.Now() != 150 {
		t.Errorf("Now = %d, want 150", c.Now())
	}
	if c.Busy() != 100 {
		t.Errorf("Busy = %d, want 100", c.Busy())
	}
	c.AdvanceTo(120) // in the past: no-op
	if c.Now() != 150 {
		t.Errorf("AdvanceTo past moved clock to %d", c.Now())
	}
	c.AdvanceTo(200)
	if c.Now() != 200 {
		t.Errorf("AdvanceTo(200) = %d", c.Now())
	}
	if c.Busy() != 100 {
		t.Errorf("AdvanceTo changed Busy to %d", c.Busy())
	}
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	q.At(30, func() { fired = append(fired, 3) })
	q.At(10, func() { fired = append(fired, 1) })
	q.At(20, func() { fired = append(fired, 2) })
	for q.PopDue(100) {
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Errorf("fire order = %v, want [1 2 3]", fired)
	}
}

func TestEventQueueFIFOAtSameTime(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	for i := 0; i < 5; i++ {
		i := i
		q.At(42, func() { fired = append(fired, i) })
	}
	for q.PopDue(42) {
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", fired)
		}
	}
}

func TestEventQueueNotDueYet(t *testing.T) {
	q := NewEventQueue()
	ran := false
	q.At(100, func() { ran = true })
	if q.PopDue(99) {
		t.Error("PopDue(99) fired an event scheduled at 100")
	}
	if ran {
		t.Error("event ran early")
	}
	if q.NextTime() != 100 {
		t.Errorf("NextTime = %d, want 100", q.NextTime())
	}
	if !q.PopDue(100) || !ran {
		t.Error("event did not run at its due time")
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestEventQueueCancel(t *testing.T) {
	q := NewEventQueue()
	ran := false
	e := q.At(10, func() { ran = true })
	q.Cancel(e)
	if !e.Cancelled() {
		t.Error("event not marked cancelled")
	}
	for q.PopDue(100) {
	}
	if ran {
		t.Error("cancelled event ran")
	}
	q.Cancel(e) // double-cancel is a no-op
	q.Cancel(nil)
}

func TestEventQueueCascade(t *testing.T) {
	// An event that schedules another event due at the same horizon.
	q := NewEventQueue()
	var fired []string
	q.At(10, func() {
		fired = append(fired, "a")
		q.At(20, func() { fired = append(fired, "b") })
	})
	for q.PopDue(50) {
	}
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Errorf("cascade = %v, want [a b]", fired)
	}
}

func TestCostModelConversions(t *testing.T) {
	blm := Bloomfield()
	if blm.FreqMHz != 2670 {
		t.Fatalf("BLM freq = %d", blm.FreqMHz)
	}
	ns := blm.CyclesToNs(2670)
	if ns < 999 || ns > 1001 {
		t.Errorf("2670 cycles at 2.67GHz = %f ns, want ~1000", ns)
	}
	cy := blm.NsToCycles(1000)
	if cy != 2670 {
		t.Errorf("1000ns = %d cycles, want 2670", cy)
	}
	s := blm.CyclesToSeconds(2670e6)
	if s < 0.999 || s > 1.001 {
		t.Errorf("2670M cycles = %f s, want ~1", s)
	}
}

func TestCostModelTable1Complete(t *testing.T) {
	// All six Table 1 processors must be present with sane parameters.
	models := Models()
	if len(models) != 6 {
		t.Fatalf("got %d models, want 6", len(models))
	}
	wantFreq := map[CPUModel]int{K8: 2000, K10: 2200, YNH: 2000, CNR: 2400, WFD: 3000, BLM: 2670}
	for _, m := range models {
		if m.FreqMHz != wantFreq[m.Model] {
			t.Errorf("%v freq = %d, want %d", m.Model, m.FreqMHz, wantFreq[m.Model])
		}
		if m.SyscallEntryExit == 0 || m.VMTransit == 0 {
			t.Errorf("%v has zero transition costs", m.Model)
		}
		if m.TaggedVMTransit > m.VMTransit {
			t.Errorf("%v tagged transit %d > untagged %d", m.Model, m.TaggedVMTransit, m.VMTransit)
		}
	}
}

func TestVMTransitCostTagging(t *testing.T) {
	blm := Bloomfield()
	if got := blm.VMTransitCost(true); got != 1016 {
		t.Errorf("BLM tagged transit = %d, want 1016 (paper §8.5)", got)
	}
	if got := blm.VMTransitCost(false); got != 1091 {
		t.Errorf("BLM untagged transit = %d, want 1091", got)
	}
	// CPUs without VPID ignore the tagging request.
	wfd := ModelByName(WFD)
	if wfd.VMTransitCost(true) != wfd.VMTransitCost(false) {
		t.Error("WFD has no VPID; tagged and untagged transit must match")
	}
}
