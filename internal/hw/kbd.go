package hw

// I8042 models the PC keyboard controller (ports 0x60/0x64) far enough
// for BIOS keyboard services and polling guests: injected scancodes
// appear in the output buffer and optionally raise IRQ 1.
type I8042 struct {
	queue []byte
	raise func()

	status  uint8
	command uint8

	Reads  uint64
	Drops  uint64
	Events uint64
}

// NewI8042 creates the controller; raise (may be nil) is invoked when a
// scancode becomes available.
func NewI8042(raise func()) *I8042 {
	return &I8042{raise: raise}
}

// Inject queues scancodes as if keys were pressed.
func (k *I8042) Inject(scancodes ...byte) {
	for _, sc := range scancodes {
		if len(k.queue) >= 16 {
			k.Drops++
			continue
		}
		k.queue = append(k.queue, sc)
		k.Events++
	}
	if len(k.queue) > 0 && k.raise != nil {
		k.raise()
	}
}

// Pending reports whether a scancode is available.
func (k *I8042) Pending() bool { return len(k.queue) > 0 }

// PortRead implements IOPortHandler.
func (k *I8042) PortRead(port uint16, size int) uint32 {
	switch port {
	case 0x60:
		k.Reads++
		if len(k.queue) == 0 {
			return 0
		}
		sc := k.queue[0]
		k.queue = k.queue[1:]
		if len(k.queue) > 0 && k.raise != nil {
			k.raise()
		}
		return uint32(sc)
	case 0x64: // status: OBF when data pending, system flag set
		st := uint32(0x04)
		if len(k.queue) > 0 {
			st |= 0x01
		}
		return st
	}
	return 0xff
}

// PortWrite implements IOPortHandler. Controller commands are accepted
// and, where they expect data, consumed; none change modeled behaviour.
func (k *I8042) PortWrite(port uint16, size int, val uint32) {
	if port == 0x64 {
		k.command = uint8(val)
	}
}
