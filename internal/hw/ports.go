package hw

import "fmt"

// IOPortHandler models a device's x86 I/O-port window.
type IOPortHandler interface {
	PortRead(port uint16, size int) uint32
	PortWrite(port uint16, size int, val uint32)
}

type portRange struct {
	lo, hi  uint16 // inclusive
	handler IOPortHandler
	name    string
}

// IOPorts is the 64K x86 I/O port space with per-range device routing.
type IOPorts struct {
	ranges []portRange
}

// NewIOPorts returns an empty port space.
func NewIOPorts() *IOPorts { return &IOPorts{} }

// Map claims ports [lo, hi] for handler.
func (p *IOPorts) Map(name string, lo, hi uint16, handler IOPortHandler) error {
	if hi < lo {
		return fmt.Errorf("hw: invalid port range %#x-%#x", lo, hi)
	}
	for _, r := range p.ranges {
		if lo <= r.hi && r.lo <= hi {
			return fmt.Errorf("hw: port range %s %#x-%#x overlaps %s %#x-%#x", name, lo, hi, r.name, r.lo, r.hi)
		}
	}
	p.ranges = append(p.ranges, portRange{lo: lo, hi: hi, handler: handler, name: name})
	return nil
}

// HandlerAt returns the device owning port, if any.
func (p *IOPorts) HandlerAt(port uint16) (IOPortHandler, bool) {
	for _, r := range p.ranges {
		if port >= r.lo && port <= r.hi {
			return r.handler, true
		}
	}
	return nil, false
}

// Read performs an IN from port; unclaimed ports float high (all ones),
// matching ISA bus behaviour.
func (p *IOPorts) Read(port uint16, size int) uint32 {
	if h, ok := p.HandlerAt(port); ok {
		return h.PortRead(port, size)
	}
	switch size {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	default:
		return 0xffffffff
	}
}

// Write performs an OUT to port; unclaimed ports drop the write.
func (p *IOPorts) Write(port uint16, size int, val uint32) {
	if h, ok := p.HandlerAt(port); ok {
		h.PortWrite(port, size, val)
	}
}
