package hw

import "fmt"

// DeviceID identifies a bus-master device for DMA remapping: the PCI
// bus/device/function triple packed as on real hardware.
type DeviceID uint16

// BDF builds a DeviceID from bus, device and function numbers.
func BDF(bus, dev, fn int) DeviceID {
	return DeviceID(bus<<8 | dev<<3 | fn)
}

func (d DeviceID) String() string {
	return fmt.Sprintf("%02x:%02x.%x", int(d>>8), int(d>>3)&0x1f, int(d)&0x7)
}

// DMABus is the path a bus-master device uses to reach memory. Without an
// IOMMU the platform hands devices a direct bus (full physical access —
// exactly the trust problem §4.2 "Device-Driver Attacks" describes); with
// an IOMMU the accesses are translated and permission-checked per device.
type DMABus interface {
	// DMARead copies len(b) bytes from bus address addr into b on behalf
	// of dev.
	DMARead(dev DeviceID, addr uint64, b []byte) error
	// DMAWrite copies b to bus address addr on behalf of dev.
	DMAWrite(dev DeviceID, addr uint64, b []byte) error
}

// directDMA gives devices unrestricted access to physical memory.
type directDMA struct {
	mem *Memory
}

// NewDirectDMA returns a DMABus without translation or protection.
func NewDirectDMA(mem *Memory) DMABus { return &directDMA{mem: mem} }

func (d *directDMA) DMARead(dev DeviceID, addr uint64, b []byte) error {
	if addr+uint64(len(b)) > d.mem.Size() {
		return fmt.Errorf("hw: DMA read [%#x,%#x) beyond RAM", addr, addr+uint64(len(b)))
	}
	copy(b, d.mem.RAM()[addr:])
	return nil
}

func (d *directDMA) DMAWrite(dev DeviceID, addr uint64, b []byte) error {
	if addr+uint64(len(b)) > d.mem.Size() {
		return fmt.Errorf("hw: DMA write [%#x,%#x) beyond RAM", addr, addr+uint64(len(b)))
	}
	d.mem.touch(PhysAddr(addr), len(b))
	copy(d.mem.RAM()[addr:], b)
	return nil
}
