package hw

import "fmt"

// SectorSize is the logical block size of the simulated SATA disk.
const SectorSize = 512

// Disk models the paper's 250 GB Hitachi SATA drive: a sparse backing
// store plus a service-time model. Sequential reads are limited both by
// a maximum request rate (command overhead — dominant for small blocks,
// giving Figure 6's flat region below 8 KiB) and by media bandwidth
// (dominant for large blocks, giving the linear fall-off).
type Disk struct {
	Sectors uint64 // capacity in 512-byte sectors

	// BandwidthMBs is the sustained media transfer rate in MB/s.
	BandwidthMBs float64
	// MaxIOPS bounds the request rate for small transfers.
	MaxIOPS float64

	freqMHz int

	written map[uint64][]byte // sparse overlay of written sectors

	// Counters.
	Reads, Writes             uint64
	BytesRead, BytesWritten   uint64
	BusyUntil                 Cycles // media busy horizon for queuing
	TotalServiceCycles        Cycles
	TotalQueuedRequestsServed uint64
}

// NewDisk creates a disk of the given capacity. freqMHz converts service
// times to cycles of the platform clock.
func NewDisk(sectors uint64, bandwidthMBs, maxIOPS float64, freqMHz int) *Disk {
	return &Disk{
		Sectors:      sectors,
		BandwidthMBs: bandwidthMBs,
		MaxIOPS:      maxIOPS,
		freqMHz:      freqMHz,
		written:      make(map[uint64][]byte),
	}
}

// synthSector fills b with the deterministic content of sector lba:
// reproducible pseudo-data standing in for a real filesystem image.
func synthSector(lba uint64, b []byte) {
	x := lba*2654435761 + 0x9e3779b9
	for i := range b {
		x = x*6364136223846793005 + 1442695040888963407
		b[i] = byte(x >> 33)
	}
}

// ReadSectors copies count sectors starting at lba into buf.
func (d *Disk) ReadSectors(lba uint64, count int, buf []byte) error {
	if len(buf) < count*SectorSize {
		return fmt.Errorf("hw: disk read buffer too small: %d < %d", len(buf), count*SectorSize)
	}
	if lba+uint64(count) > d.Sectors {
		return fmt.Errorf("hw: disk read [%d,%d) beyond capacity %d", lba, lba+uint64(count), d.Sectors)
	}
	for i := 0; i < count; i++ {
		dst := buf[i*SectorSize : (i+1)*SectorSize]
		if s, ok := d.written[lba+uint64(i)]; ok {
			copy(dst, s)
		} else {
			synthSector(lba+uint64(i), dst)
		}
	}
	d.Reads++
	d.BytesRead += uint64(count) * SectorSize
	return nil
}

// WriteSectors stores count sectors from buf at lba.
func (d *Disk) WriteSectors(lba uint64, count int, buf []byte) error {
	if len(buf) < count*SectorSize {
		return fmt.Errorf("hw: disk write buffer too small: %d < %d", len(buf), count*SectorSize)
	}
	if lba+uint64(count) > d.Sectors {
		return fmt.Errorf("hw: disk write [%d,%d) beyond capacity %d", lba, lba+uint64(count), d.Sectors)
	}
	for i := 0; i < count; i++ {
		s := make([]byte, SectorSize)
		copy(s, buf[i*SectorSize:])
		d.written[lba+uint64(i)] = s
	}
	d.Writes++
	d.BytesWritten += uint64(count) * SectorSize
	return nil
}

// ServiceTime returns how many cycles a request of the given byte size
// occupies the media: max(command overhead, transfer time).
func (d *Disk) ServiceTime(bytes int) Cycles {
	perReq := 1e6 / d.MaxIOPS                             // µs
	xfer := float64(bytes) / (d.BandwidthMBs * 1e6) * 1e6 // µs
	t := perReq
	if xfer > t {
		t = xfer
	}
	return Cycles(t * float64(d.freqMHz))
}

// Schedule returns the completion time for a request issued at now,
// honouring media serialization (a request queued behind another waits).
func (d *Disk) Schedule(now Cycles, bytes int) Cycles {
	start := now
	if d.BusyUntil > start {
		start = d.BusyUntil
	}
	svc := d.ServiceTime(bytes)
	d.BusyUntil = start + svc
	d.TotalServiceCycles += svc
	d.TotalQueuedRequestsServed++
	return d.BusyUntil
}
