package hw

import "fmt"

// CPUModel identifies one of the processors from Table 1 of the paper.
type CPUModel int

// The six processors of Table 1.
const (
	K8  CPUModel = iota // AMD Opteron 2212, Santa Rosa, 2.0 GHz
	K10                 // AMD Phenom 9550, Agena, 2.2 GHz
	YNH                 // Intel Core Duo T2500, Yonah, 2.0 GHz
	CNR                 // Intel Core2 Duo E6600, Conroe, 2.4 GHz
	WFD                 // Intel Core2 Duo E8400, Wolfdale, 3.0 GHz
	BLM                 // Intel Core i7 920, Bloomfield, 2.67 GHz
)

func (m CPUModel) String() string {
	switch m {
	case K8:
		return "K8"
	case K10:
		return "K10"
	case YNH:
		return "YNH"
	case CNR:
		return "CNR"
	case WFD:
		return "WFD"
	case BLM:
		return "BLM"
	}
	return fmt.Sprintf("CPUModel(%d)", int(m))
}

// Vendor distinguishes the virtualization extension family.
type Vendor int

// CPU vendors; Intel CPUs use VT-x (VMCS, VPID), AMD CPUs use SVM
// (VMCB, ASID).
const (
	Intel Vendor = iota
	AMD
)

func (v Vendor) String() string {
	if v == AMD {
		return "AMD"
	}
	return "Intel"
}

// CostModel captures the hardware-primitive costs of one processor, in
// cycles. These correspond to the quantities the paper measures directly
// on hardware (the lowermost boxes of Figures 8 and 9); everything layered
// above them (IPC path length, vTLB fill work, instruction emulation) is
// produced by executing this repository's code.
type CostModel struct {
	Model     CPUModel
	Name      string // marketing name, Table 1
	Core      string // microarchitecture, Table 1
	Vendor    Vendor
	FreqMHz   int  // clock frequency
	HasVPID   bool // tagged hardware TLB for guest entries (VPID/ASID)
	HasEPT    bool // hardware nested paging (EPT/NPT)
	LargePage uint32

	// Syscall transition: sysenter + sti + sysexit, the lowermost box of
	// Figure 8.
	SyscallEntryExit Cycles

	// VM transition: VM exit + VM resume (world switch), the lowermost
	// box of Figure 9. TaggedVMTransit applies when VPID/ASID tagging is
	// enabled (no hardware TLB flush on the transition).
	VMTransit       Cycles
	TaggedVMTransit Cycles

	// VMRead is the cost of reading one field from the VMCS. On AMD the
	// VMCB lives in cacheable memory, making access cheap.
	VMRead Cycles

	// CacheLineAccess approximates a memory access that misses L1
	// (page-table entry reads during walks, UTCB copies crossing caches).
	CacheLineAccess Cycles

	// TLBRefill is the aggregate cost of repopulating the working set of
	// TLB entries after a full flush — the "TLB effects" box of Figure 8
	// incurred on every address-space switch because x86 (at the time)
	// had no tagged TLB for user address spaces.
	TLBRefill Cycles

	// PageWalkLevel is the cost of one level of a hardware page walk on
	// a TLB miss (cached walk; EPT walks multiply this per nested level).
	PageWalkLevel Cycles

	// HostPTLevels is the depth of the host (nested) page table the
	// hardware walks: 4 on Intel (2M pages with four-level EPT), 2 on
	// AMD (4M pages with two-level NPT) — §8.1's explanation for the
	// lower overhead on the Phenom.
	HostPTLevels int

	// InstructionCost is the base cost of one simple guest instruction.
	InstructionCost Cycles

	// EmulateInstruction is the base VMM-side software cost of fetching,
	// decoding, executing and writing back one guest instruction.
	EmulateInstruction Cycles

	// DeviceModelUpdate is the base VMM-side cost of updating a virtual
	// device state machine for one intercepted register access.
	DeviceModelUpdate Cycles
}

// NsToCycles converts nanoseconds to cycles at this model's frequency.
func (c *CostModel) NsToCycles(ns float64) Cycles {
	return Cycles(ns * float64(c.FreqMHz) / 1000)
}

// CyclesToNs converts cycles to nanoseconds at this model's frequency.
func (c *CostModel) CyclesToNs(cy Cycles) float64 {
	return float64(cy) * 1000 / float64(c.FreqMHz)
}

// CyclesToSeconds converts cycles to seconds at this model's frequency.
func (c *CostModel) CyclesToSeconds(cy Cycles) float64 {
	return float64(cy) / (float64(c.FreqMHz) * 1e6)
}

// VMTransitCost returns the guest<->host round-trip cost with or without
// TLB tagging enabled.
func (c *CostModel) VMTransitCost(tagged bool) Cycles {
	if tagged && c.HasVPID {
		return c.TaggedVMTransit
	}
	return c.VMTransit
}

// Models returns the cost models for all Table 1 processors, in table
// order. The calibration targets are the figures of the paper:
//
//   - Figure 8 totals (cross-AS IPC): K8 164 ns, K10 152 ns, YNH 192 ns,
//     CNR 179 ns, WFD 131 ns, BLM 108 ns.
//   - Figure 9 exit+resume: YNH 2087, CNR 2122, WFD 1324, BLM 1091
//     (untagged) / 1016 (VPID) cycles; §8.5 quotes 1016 for Bloomfield.
//   - Figure 9 totals: YNH 1355 ns, CNR 1140 ns, WFD 694 ns,
//     BLM 527 ns / 491 ns with VPID.
func Models() []*CostModel {
	return []*CostModel{
		{
			Model: K8, Name: "AMD Opteron 2212", Core: "Santa Rosa (K8)",
			Vendor: AMD, FreqMHz: 2000, HasVPID: false, HasEPT: false,
			LargePage:        4 << 20, // 4M pages with 2-level tables
			SyscallEntryExit: 137, VMTransit: 1850, TaggedVMTransit: 1850,
			VMRead: 10, CacheLineAccess: 40, TLBRefill: 112, PageWalkLevel: 30, HostPTLevels: 2,
			InstructionCost: 1, EmulateInstruction: 450, DeviceModelUpdate: 350,
		},
		{
			Model: K10, Name: "AMD Phenom 9550", Core: "Agena (K10)",
			Vendor: AMD, FreqMHz: 2200, HasVPID: true, HasEPT: true,
			LargePage:        4 << 20,
			SyscallEntryExit: 124, VMTransit: 1450, TaggedVMTransit: 1150,
			VMRead: 10, CacheLineAccess: 40, TLBRefill: 131, PageWalkLevel: 28, HostPTLevels: 2,
			InstructionCost: 1, EmulateInstruction: 450, DeviceModelUpdate: 350,
		},
		{
			Model: YNH, Name: "Intel Core Duo T2500", Core: "Yonah (YNH)",
			Vendor: Intel, FreqMHz: 2000, HasVPID: false, HasEPT: false,
			LargePage:        2 << 20,
			SyscallEntryExit: 90, VMTransit: 2087, TaggedVMTransit: 2087,
			VMRead: 45, CacheLineAccess: 45, TLBRefill: 232, PageWalkLevel: 35, HostPTLevels: 4,
			InstructionCost: 1, EmulateInstruction: 450, DeviceModelUpdate: 350,
		},
		{
			Model: CNR, Name: "Intel Core2 Duo E6600", Core: "Conroe (CNR)",
			Vendor: Intel, FreqMHz: 2400, HasVPID: false, HasEPT: false,
			LargePage:        2 << 20,
			SyscallEntryExit: 151, VMTransit: 2122, TaggedVMTransit: 2122,
			VMRead: 45, CacheLineAccess: 42, TLBRefill: 220, PageWalkLevel: 32, HostPTLevels: 4,
			InstructionCost: 1, EmulateInstruction: 450, DeviceModelUpdate: 350,
		},
		{
			Model: WFD, Name: "Intel Core2 Duo E8400", Core: "Wolfdale (WFD)",
			Vendor: Intel, FreqMHz: 3000, HasVPID: false, HasEPT: false,
			LargePage:        2 << 20,
			SyscallEntryExit: 137, VMTransit: 1324, TaggedVMTransit: 1324,
			VMRead: 45, CacheLineAccess: 40, TLBRefill: 201, PageWalkLevel: 30, HostPTLevels: 4,
			InstructionCost: 1, EmulateInstruction: 450, DeviceModelUpdate: 350,
		},
		{
			Model: BLM, Name: "Intel Core i7 920", Core: "Bloomfield (BLM)",
			Vendor: Intel, FreqMHz: 2670, HasVPID: true, HasEPT: true,
			LargePage:        2 << 20,
			SyscallEntryExit: 124, VMTransit: 1091, TaggedVMTransit: 1016,
			VMRead: 24, CacheLineAccess: 38, TLBRefill: 85, PageWalkLevel: 26, HostPTLevels: 4,
			InstructionCost: 1, EmulateInstruction: 450, DeviceModelUpdate: 350,
		},
	}
}

// ModelByName returns the cost model for the given CPUModel.
func ModelByName(m CPUModel) *CostModel {
	for _, c := range Models() {
		if c.Model == m {
			return c
		}
	}
	// invariant: CPUModel values are compile-time constants (Table 1's
	// enumeration); an unknown model is a configuration bug caught at
	// platform construction, before any guest executes.
	panic(fmt.Sprintf("hw: unknown CPU model %v", m))
}

// Bloomfield returns the Core i7 920 model used for the paper's primary
// evaluation machine (DX58SO board, 3 GB DDR3).
func Bloomfield() *CostModel { return ModelByName(BLM) }

// Phenom returns the AMD Phenom model used in the paper's AMD runs.
func Phenom() *CostModel { return ModelByName(K10) }
