package hw

import (
	"testing"
	"testing/quick"
)

func TestTLBInsertLookupSmall(t *testing.T) {
	tlb := NewTLB(16, 4, 2<<20)
	tlb.InsertSmall(1, 0x1000, 0x42, true, false, false)
	pa, e, ok := tlb.Translate(1, 0x1234)
	if !ok {
		t.Fatal("miss after insert")
	}
	if pa != 0x42<<12|0x234 {
		t.Errorf("pa = %#x", pa)
	}
	if !e.Writable || e.User {
		t.Errorf("perms wrong: %+v", e)
	}
	// Different tag misses.
	if _, _, ok := tlb.Translate(2, 0x1234); ok {
		t.Error("hit under wrong tag")
	}
}

func TestTLBLargePageCoverage(t *testing.T) {
	tlb := NewTLB(16, 4, 2<<20)
	// One large entry covers the whole 2M region.
	tlb.InsertLarge(1, 0x00200000, 0x800, true, true, false)
	for _, va := range []uint32{0x00200000, 0x00200fff, 0x003fffff} {
		pa, e, ok := tlb.Translate(1, va)
		if !ok {
			t.Fatalf("large-page miss at %#x", va)
		}
		if !e.Large {
			t.Fatal("entry not large")
		}
		want := PhysAddr(0x800)<<12 + PhysAddr(va&0x1fffff)
		if pa != want {
			t.Errorf("pa(%#x) = %#x, want %#x", va, pa, want)
		}
	}
	// Next region misses.
	if _, _, ok := tlb.Translate(1, 0x00400000); ok {
		t.Error("hit outside large page")
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	tlb := NewTLB(4, 2, 2<<20)
	for i := uint32(0); i < 8; i++ {
		tlb.InsertSmall(1, i<<12, uint64(i), false, false, false)
	}
	if tlb.Len() > 4+0 {
		t.Errorf("TLB over capacity: %d entries", tlb.Len())
	}
	if tlb.Stats.Evictions != 4 {
		t.Errorf("evictions = %d, want 4", tlb.Stats.Evictions)
	}
	// FIFO: oldest entries gone, newest present.
	if _, ok := tlb.Lookup(1, 0); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := tlb.Lookup(1, 7<<12); !ok {
		t.Error("newest entry evicted")
	}
}

func TestTLBFlushTagSparesOtherTagsAndGlobals(t *testing.T) {
	tlb := NewTLB(16, 4, 2<<20)
	tlb.InsertSmall(1, 0x1000, 1, false, false, false)
	tlb.InsertSmall(1, 0x2000, 2, false, false, true) // global
	tlb.InsertSmall(2, 0x1000, 3, false, false, false)
	tlb.FlushTag(1)
	if _, ok := tlb.Lookup(1, 0x1000); ok {
		t.Error("flushed entry survived")
	}
	if _, ok := tlb.Lookup(1, 0x2000); !ok {
		t.Error("global entry flushed by FlushTag")
	}
	if _, ok := tlb.Lookup(2, 0x1000); !ok {
		t.Error("other tag flushed")
	}
}

func TestTLBFlushAllDropsEverything(t *testing.T) {
	tlb := NewTLB(16, 4, 2<<20)
	tlb.InsertSmall(1, 0x1000, 1, false, false, true)
	tlb.InsertLarge(2, 0x200000, 2, false, false, false)
	tlb.FlushAll()
	if tlb.Len() != 0 {
		t.Errorf("entries after FlushAll: %d", tlb.Len())
	}
	if tlb.Stats.FlushedEnt != 2 {
		t.Errorf("FlushedEnt = %d, want 2", tlb.Stats.FlushedEnt)
	}
}

func TestTLBFlushVA(t *testing.T) {
	tlb := NewTLB(16, 4, 2<<20)
	tlb.InsertSmall(1, 0x1000, 1, false, false, false)
	tlb.InsertSmall(1, 0x2000, 2, false, false, false)
	tlb.FlushVA(1, 0x1800) // same page as 0x1000
	if _, ok := tlb.Lookup(1, 0x1000); ok {
		t.Error("INVLPG'd entry survived")
	}
	if _, ok := tlb.Lookup(1, 0x2000); !ok {
		t.Error("unrelated entry flushed")
	}
}

func TestTLBStatsCounting(t *testing.T) {
	tlb := NewTLB(16, 4, 2<<20)
	tlb.Lookup(1, 0x1000) // miss
	tlb.InsertSmall(1, 0x1000, 1, false, false, false)
	tlb.Lookup(1, 0x1000) // hit
	if tlb.Stats.Misses != 1 || tlb.Stats.Hits != 1 || tlb.Stats.Fills != 1 {
		t.Errorf("stats = %+v", tlb.Stats)
	}
}

func TestTLBTranslationProperty(t *testing.T) {
	// Property: translate(insert(va, pfn)) preserves the page offset and
	// maps the page number to pfn, for arbitrary va/pfn.
	f := func(vaRaw uint32, pfnRaw uint32, tagRaw uint8) bool {
		tlb := NewTLB(8, 2, 2<<20)
		tag := TLBTag(tagRaw)
		pfn := uint64(pfnRaw) & 0xfffff
		tlb.InsertSmall(tag, vaRaw, pfn, true, true, false)
		pa, _, ok := tlb.Translate(tag, vaRaw)
		return ok && pa == PhysAddr(pfn)<<12+PhysAddr(vaRaw&0xfff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
