package hw

import "testing"

// initPIC programs the PC-conventional ICW sequence: master base 0x20,
// slave base 0x28, all lines unmasked.
func initPIC(p *I8259) {
	p.PortWrite(0x20, 1, 0x11) // ICW1
	p.PortWrite(0x21, 1, 0x20) // ICW2: master base
	p.PortWrite(0x21, 1, 0x04) // ICW3
	p.PortWrite(0x21, 1, 0x01) // ICW4
	p.PortWrite(0xa0, 1, 0x11)
	p.PortWrite(0xa1, 1, 0x28) // slave base
	p.PortWrite(0xa1, 1, 0x02)
	p.PortWrite(0xa1, 1, 0x01)
	p.PortWrite(0x21, 1, 0x00) // unmask all
	p.PortWrite(0xa1, 1, 0x00)
}

func TestPICRaiseAcknowledgeEOI(t *testing.T) {
	p := NewI8259()
	initPIC(p)
	p.RaiseIRQ(0)
	if !p.HasPending() {
		t.Fatal("no pending after raise")
	}
	vec, ok := p.Acknowledge()
	if !ok || vec != 0x20 {
		t.Fatalf("ack = %#x, %v; want 0x20", vec, ok)
	}
	// In service: same line cannot re-fire until EOI.
	p.RaiseIRQ(0)
	if _, ok := p.Acknowledge(); ok {
		t.Error("re-acknowledged IRQ0 while in service")
	}
	p.PortWrite(0x20, 1, 0x20) // EOI
	vec, ok = p.Acknowledge()
	if !ok || vec != 0x20 {
		t.Errorf("post-EOI ack = %#x, %v", vec, ok)
	}
}

func TestPICPriority(t *testing.T) {
	p := NewI8259()
	initPIC(p)
	p.RaiseIRQ(4)
	p.RaiseIRQ(1)
	vec, _ := p.Acknowledge()
	if vec != 0x21 {
		t.Errorf("first ack = %#x, want IRQ1 (0x21)", vec)
	}
	// IRQ1 in service blocks IRQ4 (lower priority)? No: lower priority
	// lines are blocked only by higher-or-equal ISR bits. IRQ4 has lower
	// priority than IRQ1, so it stays blocked until EOI.
	if _, ok := p.Acknowledge(); ok {
		t.Error("IRQ4 delivered while IRQ1 in service")
	}
	p.PortWrite(0x20, 1, 0x20)
	vec, ok := p.Acknowledge()
	if !ok || vec != 0x24 {
		t.Errorf("second ack = %#x, %v; want 0x24", vec, ok)
	}
}

func TestPICHigherPriorityPreempts(t *testing.T) {
	p := NewI8259()
	initPIC(p)
	p.RaiseIRQ(4)
	if v, _ := p.Acknowledge(); v != 0x24 {
		t.Fatalf("ack = %#x", v)
	}
	// IRQ0 outranks in-service IRQ4 and may be delivered (nested).
	p.RaiseIRQ(0)
	v, ok := p.Acknowledge()
	if !ok || v != 0x20 {
		t.Errorf("nested ack = %#x, %v; want 0x20", v, ok)
	}
}

func TestPICMasking(t *testing.T) {
	p := NewI8259()
	initPIC(p)
	p.PortWrite(0x21, 1, 0x01) // mask IRQ0
	p.RaiseIRQ(0)
	if p.HasPending() {
		t.Error("masked IRQ pending at CPU")
	}
	p.PortWrite(0x21, 1, 0x00) // unmask: request was latched in IRR
	if !p.HasPending() {
		t.Error("unmasked IRQ lost")
	}
}

func TestPICSlaveVectors(t *testing.T) {
	p := NewI8259()
	initPIC(p)
	p.RaiseIRQ(11)
	vec, ok := p.Acknowledge()
	if !ok || vec != 0x28+3 {
		t.Errorf("slave ack = %#x, %v; want 0x2b", vec, ok)
	}
	p.PortWrite(0xa0, 1, 0x20) // EOI on slave
	if p.ISR() != 0 {
		t.Errorf("ISR = %#x after slave EOI", p.ISR())
	}
}

func TestPICSpuriousAcknowledge(t *testing.T) {
	p := NewI8259()
	initPIC(p)
	if _, ok := p.Acknowledge(); ok {
		t.Error("acknowledge with nothing pending succeeded")
	}
}

func TestPICOutputChangedCallback(t *testing.T) {
	p := NewI8259()
	initPIC(p)
	calls := 0
	p.OutputChanged = func() { calls++ }
	p.RaiseIRQ(3)
	if calls == 0 {
		t.Error("OutputChanged not invoked on raise")
	}
}

func TestPICRegistersReadable(t *testing.T) {
	p := NewI8259()
	initPIC(p)
	p.RaiseIRQ(2)
	if got := p.PortRead(0x20, 1); got&0x04 == 0 {
		t.Errorf("IRR read = %#x, want bit 2", got)
	}
	p.PortWrite(0x20, 1, 0x0b) // OCW3: read ISR
	p.Acknowledge()
	if got := p.PortRead(0x20, 1); got&0x04 == 0 {
		t.Errorf("ISR read = %#x, want bit 2", got)
	}
}
