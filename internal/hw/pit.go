package hw

// PITInputHz is the 8254's input clock frequency.
const PITInputHz = 1193182

// I8254 models channel 0 of the PC's 8254 programmable interval timer as
// a periodic interrupt source on IRQ 0. Like the PIC, the same model is
// used both as the physical scheduling timer (driven by the
// microhypervisor) and as the VMM's virtual timer device.
type I8254 struct {
	queue   *EventQueue
	clock   func() Cycles // current time source
	freqMHz int           // CPU frequency, for Hz->cycles conversion
	raise   func()        // IRQ0 edge callback

	reload    uint16 // channel 0 reload value
	latchLow  bool   // LSB already written in lobyte/hibyte mode
	partial   uint16
	mode      uint8
	running   bool
	pending   *Event
	periodCyc Cycles

	Ticks uint64 // interrupts generated
}

// NewI8254 creates a PIT whose ticks are scheduled on queue. clock
// supplies the current time, freqMHz converts PIT periods to cycles, and
// raise is invoked on every channel-0 output edge.
func NewI8254(queue *EventQueue, clock func() Cycles, freqMHz int, raise func()) *I8254 {
	return &I8254{queue: queue, clock: clock, freqMHz: freqMHz, raise: raise}
}

// Period returns the current channel-0 period in cycles (0 if not
// programmed).
func (p *I8254) Period() Cycles { return p.periodCyc }

func (p *I8254) program(reload uint16) {
	if reload == 0 {
		reload = 0xffff // hardware treats 0 as 65536
	}
	p.reload = reload
	// period = reload / 1.193182 MHz, in CPU cycles.
	p.periodCyc = Cycles(uint64(reload) * uint64(p.freqMHz) * 1000000 / PITInputHz)
	if p.periodCyc == 0 {
		p.periodCyc = 1
	}
	p.start()
}

func (p *I8254) start() {
	p.stop()
	p.running = true
	p.schedule()
}

func (p *I8254) stop() {
	if p.pending != nil {
		p.queue.Cancel(p.pending)
		p.pending = nil
	}
	p.running = false
}

func (p *I8254) schedule() {
	p.pending = p.queue.At(p.clock()+p.periodCyc, func() {
		p.pending = nil
		if !p.running {
			return
		}
		p.Ticks++
		p.raise()
		if p.mode != 0 { // mode 2/3: periodic
			p.schedule()
		}
	})
}

// Stop halts the timer (used when tearing a platform down).
func (p *I8254) Stop() { p.stop() }

// PortRead implements IOPortHandler for ports 0x40-0x43 and 0x61.
func (p *I8254) PortRead(port uint16, size int) uint32 {
	switch port {
	case 0x40:
		// Counter read-back: return the reload value halves in sequence.
		if !p.latchLow {
			p.latchLow = true
			return uint32(p.reload & 0xff)
		}
		p.latchLow = false
		return uint32(p.reload >> 8)
	case 0x61: // NMI status / speaker port, timer 2 output bit toggles
		return 0x20
	}
	return 0xff
}

// PortWrite implements IOPortHandler.
func (p *I8254) PortWrite(port uint16, size int, val uint32) {
	v := uint8(val)
	switch port {
	case 0x43: // control word
		ch := v >> 6
		if ch != 0 {
			return // only channel 0 modeled as interrupt source
		}
		p.mode = (v >> 1) & 0x07
		p.latchLow = false
	case 0x40: // channel 0 data: lobyte/hibyte sequence
		if !p.latchLow {
			p.partial = uint16(v)
			p.latchLow = true
		} else {
			p.latchLow = false
			p.program(p.partial | uint16(v)<<8)
		}
	}
}
