// Package span is the request-scoped causal-tracing layer of the
// simulation: a span ID is assigned at each request origin (a guest
// disk doorbell in the virtual AHCI model, a harvested NIC RX frame in
// the network server, a BIOS INT 13h disk service, a hypercall-
// initiated IPC) and propagated through the kernel portal path, the
// VMM's device models and the user-level servers until the request's
// effect reaches the guest again. Every boundary crossing records a
// segment-transition event, so a completed span decomposes exactly into
// guest / kernel-IPC / emulation / server / queueing segments whose
// durations telescope to the end-to-end virtual-time latency.
//
// The design contract is the same zero-perturbation rule the tracer,
// profiler and stat registry obey (DESIGN.md §5h): recording must never
// charge simulated cycles, mutate guest-visible state, or read the wall
// clock. All methods are nil-safe on the *Recorder and no-ops for span
// ID 0, so instrumented code needs no enablement checks and correlation
// fields can be stored unconditionally. Timestamps are virtual time
// from the per-CPU clocks; events land in the same fixed-capacity
// per-CPU rings the tracer uses (trace.Ring), with record-granular
// overwrite accounting. The nova-vet `tracepure` analyzer covers this
// package; the CI span-on/off step proves bit-identity end to end.
package span

import (
	"nova/internal/hw"
	"nova/internal/trace"
)

// ID identifies one request span. IDs are assigned densely from 1 in
// request-origin order (deterministic: the simulation is a single
// sequential schedule); 0 means "no span" and every recording method
// treats it as a no-op.
type ID uint64

// Class is the request class a span belongs to; percentiles are
// reported per class.
type Class uint8

// Request classes, one per instrumented origin.
const (
	// ClassDisk is a guest AHCI command forwarded to the disk server
	// (Figure 4's whole path, doorbell write to interrupt injection).
	ClassDisk Class = iota
	// ClassNetRX is one received NIC frame, from harvest in the network
	// server's interrupt EC to the client draining it.
	ClassNetRX
	// ClassIPC is a hypercall-initiated portal call that is not part of
	// an enclosing request (standalone IPC round-trips).
	ClassIPC
	// ClassBIOSDisk is a virtual-BIOS INT 13h disk read (boot path).
	ClassBIOSDisk
	// NumClasses sizes per-class tables.
	NumClasses
)

var classNames = [NumClasses]string{
	ClassDisk:     "disk",
	ClassNetRX:    "net-rx",
	ClassIPC:      "ipc",
	ClassBIOSDisk: "bios-disk",
}

func (c Class) String() string {
	if int(c) < int(NumClasses) {
		return classNames[c]
	}
	return "class?"
}

// ClassNames returns the class-name table in class order (for Meta).
func ClassNames() []string {
	names := make([]string, NumClasses)
	copy(names, classNames[:])
	return names
}

// Seg is one critical-path segment of a request. A span is in exactly
// one segment at any time; transitions are recorded as events and the
// per-segment durations telescope to close minus open.
type Seg uint8

// Critical-path segments.
const (
	// SegGuest: the request's completion interrupt has been raised at
	// the virtual PIC and the guest is executing until the VMM can arm
	// the injection (delivery-into-guest wait).
	SegGuest Seg = iota
	// SegIPC: kernel portal traversal — call path, reply path, the
	// hypercall entry/exit around them.
	SegIPC
	// SegEmul: VMM work — instruction emulation, device-model state
	// machines, completion processing, BIOS services.
	SegEmul
	// SegServer: user-level server work — request validation and host
	// controller programming, interrupt-EC completion harvesting.
	SegServer
	// SegQueue: queueing — the request is in flight at the host device,
	// or a completion waits for its doorbell EC to be dispatched.
	SegQueue
	// NumSegs sizes per-segment tables.
	NumSegs
)

var segNames = [NumSegs]string{
	SegGuest:  "guest",
	SegIPC:    "kernel-ipc",
	SegEmul:   "emulation",
	SegServer: "server",
	SegQueue:  "queueing",
}

func (s Seg) String() string {
	if int(s) < int(NumSegs) {
		return segNames[s]
	}
	return "seg?"
}

// SegNames returns the segment-name table in segment order (for Meta).
func SegNames() []string {
	names := make([]string, NumSegs)
	copy(names, segNames[:])
	return names
}

// Kind classifies a span event. Span events ride in trace.Ring records;
// the payload mapping is fixed: A0 is always the span ID, A1/A2 are the
// kind-specific arguments below, A3 is unused.
type Kind uint8

// Span event kinds.
const (
	// KindNone is never emitted; it marks an empty record.
	KindNone Kind = iota
	// KindOpen: a request origin assigned a new span ID.
	// A1=class, A2=origin detail (command slot, IRQ line, portal uid…).
	KindOpen
	// KindSeg: the span entered a new critical-path segment. A1=segment.
	KindSeg
	// KindAnnotate: a key/value annotation. A1=key, A2=value.
	KindAnnotate
	// KindClose: the request completed. A1=status.
	KindClose
	// NumKinds sizes per-kind tables.
	NumKinds
)

var kindNames = [NumKinds]string{
	KindNone:     "none",
	KindOpen:     "open",
	KindSeg:      "seg",
	KindAnnotate: "annotate",
	KindClose:    "close",
}

func (k Kind) String() string {
	if int(k) < int(NumKinds) {
		return kindNames[k]
	}
	return "kind?"
}

// KindNames returns the kind-name table in kind order (for Meta).
func KindNames() []string {
	names := make([]string, NumKinds)
	copy(names, kindNames[:])
	return names
}

// Close statuses (the A1 payload of KindClose).
const (
	// StatusOK: the request completed and its effect reached the
	// consumer (injection armed, packet drained, reply delivered).
	StatusOK uint64 = iota
	// StatusError: the request failed (bad command, server refusal).
	StatusError
	// StatusNoIRQ: the request completed but the guest had the
	// completion interrupt masked; the span closes at device-model
	// completion instead of injection.
	StatusNoIRQ
)

// Annotation keys (the A1 payload of KindAnnotate).
const (
	AnnotLBA     uint64 = 1
	AnnotSectors uint64 = 2
	AnnotBytes   uint64 = 3
	AnnotVector  uint64 = 4
)

// Meta describes the run that produced a span file, mirroring
// trace.Meta so span files are self-describing.
type Meta struct {
	Model        string   `json:"model"`
	FreqMHz      int      `json:"freq_mhz"`
	NumCPUs      int      `json:"num_cpus"`
	RingCapacity int      `json:"ring_capacity"`
	ClassNames   []string `json:"class_names"`
	SegNames     []string `json:"seg_names"`
	KindNames    []string `json:"kind_names"`
}

// active is one entry of a CPU's active-span stack: the span currently
// being worked on by the code executing on that CPU, plus the segment
// it was in when it became current (so nested portal calls can restore
// the caller's segment on return).
type active struct {
	id  ID
	seg Seg
}

// Recorder assigns span IDs and records span events into per-CPU
// rings. All methods are nil-safe: a nil *Recorder means span tracing
// is off and every call is a cheap no-op, exactly like trace.Tracer.
type Recorder struct {
	Meta  Meta
	rings []*trace.Ring
	cur   [][]active // per-CPU active-span stack
	next  uint64     // last assigned span ID

	// Opened/Closed count spans over the whole run (rings may wrap).
	Opened uint64
	Closed uint64
}

// New creates a recorder with one ring of the given capacity per CPU.
func New(meta Meta, cpus, capacity int) *Recorder {
	r := &Recorder{Meta: meta}
	r.Meta.NumCPUs = cpus
	r.Meta.RingCapacity = capacity
	r.Meta.ClassNames = ClassNames()
	r.Meta.SegNames = SegNames()
	r.Meta.KindNames = KindNames()
	for i := 0; i < cpus; i++ {
		r.rings = append(r.rings, trace.NewRing(i, capacity))
		r.cur = append(r.cur, nil)
	}
	return r
}

// Open assigns the next span ID and records the open plus the initial
// segment (a two-record emission). It returns 0 on a nil recorder so
// callers can store the result unconditionally.
func (r *Recorder) Open(cpu int, now hw.Cycles, class Class, seg Seg, detail uint64) ID {
	if r == nil || cpu < 0 || cpu >= len(r.rings) {
		return 0
	}
	r.next++
	id := ID(r.next)
	r.Opened++
	ring := r.rings[cpu]
	ring.Push(now, trace.Kind(KindOpen), uint64(id), uint64(class), detail, 0)
	ring.Push(now, trace.Kind(KindSeg), uint64(id), uint64(seg), 0, 0)
	return id
}

// Transition records that the span entered seg at now. If the span is
// the CPU's current span, its stack entry tracks the new segment.
func (r *Recorder) Transition(cpu int, now hw.Cycles, id ID, seg Seg) {
	if r == nil || id == 0 || cpu < 0 || cpu >= len(r.rings) {
		return
	}
	r.rings[cpu].Push(now, trace.Kind(KindSeg), uint64(id), uint64(seg), 0, 0)
	if stack := r.cur[cpu]; len(stack) > 0 && stack[len(stack)-1].id == id {
		stack[len(stack)-1].seg = seg
	}
}

// Annotate attaches a key/value pair to the span.
func (r *Recorder) Annotate(cpu int, now hw.Cycles, id ID, key, val uint64) {
	if r == nil || id == 0 || cpu < 0 || cpu >= len(r.rings) {
		return
	}
	r.rings[cpu].Push(now, trace.Kind(KindAnnotate), uint64(id), key, val, 0)
}

// Close records the span's completion.
func (r *Recorder) Close(cpu int, now hw.Cycles, id ID, status uint64) {
	if r == nil || id == 0 || cpu < 0 || cpu >= len(r.rings) {
		return
	}
	r.Closed++
	r.rings[cpu].Push(now, trace.Kind(KindClose), uint64(id), status, 0, 0)
}

// Begin pushes the span onto the CPU's active stack: subsequent
// portal-path code on this CPU attributes its segments to it via
// Current. seg is the segment the span is in while current.
func (r *Recorder) Begin(cpu int, id ID, seg Seg) {
	if r == nil || id == 0 || cpu < 0 || cpu >= len(r.cur) {
		return
	}
	r.cur[cpu] = append(r.cur[cpu], active{id: id, seg: seg})
}

// End pops the CPU's active stack.
func (r *Recorder) End(cpu int) {
	if r == nil || cpu < 0 || cpu >= len(r.cur) {
		return
	}
	if n := len(r.cur[cpu]); n > 0 {
		r.cur[cpu] = r.cur[cpu][:n-1]
	}
}

// Current returns the CPU's current span and the segment it is in, or
// (0, 0) when no span is active (or the recorder is nil).
func (r *Recorder) Current(cpu int) (ID, Seg) {
	if r == nil || cpu < 0 || cpu >= len(r.cur) {
		return 0, 0
	}
	if stack := r.cur[cpu]; len(stack) > 0 {
		top := stack[len(stack)-1]
		return top.id, top.seg
	}
	return 0, 0
}

// Rings returns the per-CPU rings (index = CPU).
func (r *Recorder) Rings() []*trace.Ring {
	if r == nil {
		return nil
	}
	return r.rings
}

// Events returns all live span records merged across CPUs in the
// (time, CPU, seq) total order.
func (r *Recorder) Events() []trace.Event {
	if r == nil {
		return nil
	}
	var per [][]trace.Event
	for _, ring := range r.rings {
		per = append(per, ring.Events())
	}
	return trace.MergeEvents(per)
}
