package span

import (
	"bytes"
	"testing"
)

// TestNilSafety exercises every Recorder method on a nil receiver and
// on span ID 0: the contract is that instrumented code needs no
// enablement checks.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if id := r.Open(0, 10, ClassDisk, SegEmul, 1); id != 0 {
		t.Errorf("nil Open = %d, want 0", id)
	}
	r.Transition(0, 20, 1, SegIPC)
	r.Annotate(0, 20, 1, AnnotLBA, 42)
	r.Close(0, 30, 1, StatusOK)
	r.Begin(0, 1, SegIPC)
	r.End(0)
	if id, seg := r.Current(0); id != 0 || seg != 0 {
		t.Errorf("nil Current = (%d, %d), want (0, 0)", id, seg)
	}
	if r.Rings() != nil || r.Events() != nil {
		t.Error("nil Rings/Events should return nil")
	}
	if _, err := r.Encode(); err == nil {
		t.Error("nil Encode should error")
	}

	// ID 0 is a no-op on a live recorder.
	live := New(Meta{Model: "test", FreqMHz: 1000}, 1, 16)
	live.Transition(0, 10, 0, SegIPC)
	live.Annotate(0, 10, 0, AnnotLBA, 1)
	live.Close(0, 10, 0, StatusOK)
	live.Begin(0, 0, SegIPC)
	if len(live.Events()) != 0 {
		t.Errorf("ID-0 calls recorded %d events, want 0", len(live.Events()))
	}
	// Out-of-range CPUs are no-ops too.
	if id := live.Open(5, 10, ClassDisk, SegEmul, 0); id != 0 {
		t.Errorf("out-of-range CPU Open = %d, want 0", id)
	}
}

// TestActiveStack checks the per-CPU current-span stack used by the
// kernel portal path to find the enclosing request.
func TestActiveStack(t *testing.T) {
	r := New(Meta{}, 2, 16)
	a := r.Open(0, 10, ClassDisk, SegEmul, 0)
	r.Begin(0, a, SegEmul)
	if id, seg := r.Current(0); id != a || seg != SegEmul {
		t.Fatalf("Current = (%d, %v), want (%d, emulation)", id, seg, a)
	}
	// Other CPU has its own stack.
	if id, _ := r.Current(1); id != 0 {
		t.Errorf("CPU 1 Current = %d, want 0", id)
	}
	// A transition of the current span updates its tracked segment, so
	// the restore after a nested portal call returns to the right one.
	r.Transition(0, 20, a, SegIPC)
	if _, seg := r.Current(0); seg != SegIPC {
		t.Errorf("after Transition, tracked seg = %v, want kernel-ipc", seg)
	}
	r.End(0)
	if id, _ := r.Current(0); id != 0 {
		t.Errorf("after End, Current = %d, want 0", id)
	}
	r.End(0) // pop of an empty stack is a no-op
}

// TestBuildSpansTelescoping drives a hand-written event sequence through
// the reconstruction and checks the core invariant: per-segment
// durations sum exactly to close minus open, with zero-width hops
// dropped and contiguous same-segment hops merged.
func TestBuildSpansTelescoping(t *testing.T) {
	r := New(Meta{Model: "test", FreqMHz: 2000}, 1, 64)
	id := r.Open(0, 100, ClassDisk, SegEmul, 7)
	r.Transition(0, 130, id, SegIPC)
	r.Transition(0, 180, id, SegServer)
	r.Transition(0, 180, id, SegQueue) // zero-width server hop
	r.Annotate(0, 180, id, AnnotLBA, 4096)
	r.Transition(0, 500, id, SegEmul)
	r.Transition(0, 520, id, SegGuest)
	r.Close(0, 600, id, StatusOK)

	b, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	spans := BuildSpans(d)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if !s.Closed || s.Status != StatusOK || s.Detail != 7 {
		t.Fatalf("span = %+v, want closed OK detail=7", s)
	}
	if got := s.Duration(); got != 500 {
		t.Fatalf("Duration = %d, want 500", got)
	}
	var sum int64
	for _, v := range s.Segs {
		sum += v
	}
	if sum != int64(s.Duration()) {
		t.Errorf("segments sum to %d, want %d", sum, s.Duration())
	}
	want := map[Seg]int64{SegEmul: 50, SegIPC: 50, SegQueue: 320, SegGuest: 80}
	for seg, w := range want { // lookup-only over expectations; order-independent asserts
		if s.Segs[seg] != w {
			t.Errorf("Segs[%v] = %d, want %d", seg, s.Segs[seg], w)
		}
	}
	if s.Segs[SegServer] != 0 {
		t.Errorf("zero-width server hop charged %d cycles", s.Segs[SegServer])
	}
	// Path: emulation(30), kernel-ipc(50), queueing(320), emulation(20),
	// guest(80) — the zero-width server hop is dropped.
	if len(s.Path) != 5 {
		t.Fatalf("path has %d hops, want 5: %+v", len(s.Path), s.Path)
	}
	var pathSum int64
	for _, p := range s.Path {
		if p.Dur == 0 {
			t.Errorf("zero-width hop survived: %+v", p)
		}
		pathSum += p.Dur
	}
	if pathSum != int64(s.Duration()) {
		t.Errorf("path sums to %d, want %d", pathSum, s.Duration())
	}
	if len(s.Annot) != 1 || s.Annot[0].Key != AnnotLBA || s.Annot[0].Val != 4096 {
		t.Errorf("annotations = %+v, want one LBA=4096", s.Annot)
	}
}

// TestPercentileNearestRank pins the nearest-rank definition: the
// smallest value with at least q*N values at or below it.
func TestPercentileNearestRank(t *testing.T) {
	sorted := []uint64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want uint64
	}{
		{0.50, 50}, {0.99, 100}, {0.999, 100}, {0.10, 10}, {1.0, 100},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); got != c.want {
			t.Errorf("Percentile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty Percentile should be 0")
	}
	one := []uint64{7}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if Percentile(one, q) != 7 {
			t.Errorf("single-value Percentile(%v) != 7", q)
		}
	}
}

// TestEncodeDecodeRoundTrip checks that Decode inverts Encode and that
// encoding is deterministic.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := New(Meta{Model: "test", FreqMHz: 2670}, 2, 32)
	a := r.Open(0, 10, ClassDisk, SegEmul, 1)
	b2 := r.Open(1, 15, ClassNetRX, SegServer, 64)
	r.Annotate(1, 15, b2, AnnotBytes, 64)
	r.Close(0, 50, a, StatusOK)
	// b2 stays open: Summary must still count it as opened.

	enc1, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Error("two encodes of the same recorder differ")
	}
	d, err := Decode(enc1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.Model != "test" || d.Meta.NumCPUs != 2 || d.Meta.RingCapacity != 32 {
		t.Errorf("meta round-trip: %+v", d.Meta)
	}
	if d.Summary.Opened != 2 || d.Summary.Closed != 1 {
		t.Errorf("summary = %+v, want opened=2 closed=1", d.Summary)
	}
	if len(d.PerCPU) != 2 || len(d.PerCPU[0]) != 3 || len(d.PerCPU[1]) != 3 {
		t.Fatalf("per-CPU record counts: %d/%d", len(d.PerCPU[0]), len(d.PerCPU[1]))
	}
	if r.Hash() == 0 || r.Hash() != r.Hash() {
		t.Error("Hash should be stable and nonzero")
	}

	// Corrupt inputs are rejected, not misparsed.
	if _, err := Decode(enc1[:len(enc1)-1]); err == nil {
		t.Error("truncated file decoded")
	}
	if _, err := Decode([]byte("NOTSPANS")); err == nil {
		t.Error("bad magic decoded")
	}
	if _, err := Decode(append(append([]byte{}, enc1...), 0)); err == nil {
		t.Error("trailing bytes decoded")
	}
}
