package span

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"nova/internal/hw"
	"nova/internal/trace"
)

// magic identifies a serialized span file (version 1). The framing
// reuses trace.WriteSection: magic, meta JSON section, per-CPU rings,
// summary JSON section.
const magic = "NOVASPN1"

// recordSize is the fixed on-disk size of one span record:
// time(8) + seq(8) + kind(1) + span(8) + a1(8) + a2(8).
const recordSize = 8 + 8 + 1 + 3*8

// Summary is the trailing section: whole-run counters that survive
// ring wraps.
type Summary struct {
	Opened uint64 `json:"opened"`
	Closed uint64 `json:"closed"`
}

// Encode serializes the recorder deterministically: struct-based JSON
// (fixed field order) and fixed-size little-endian records, so two runs
// from identical inputs produce identical bytes (the double-run
// byte-identity test depends on this).
func (r *Recorder) Encode() ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("span: nil recorder")
	}
	var buf bytes.Buffer
	buf.WriteString(magic)

	metaJSON, err := json.Marshal(r.Meta)
	if err != nil {
		return nil, err
	}
	trace.WriteSection(&buf, metaJSON)

	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(r.rings)))
	buf.Write(tmp[:])
	for _, ring := range r.rings {
		events := ring.Events()
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(events)))
		binary.LittleEndian.PutUint64(hdr[4:], ring.Overwritten())
		buf.Write(hdr[:])
		var rec [recordSize]byte
		for _, e := range events {
			binary.LittleEndian.PutUint64(rec[0:], uint64(e.Time))
			binary.LittleEndian.PutUint64(rec[8:], e.Seq)
			rec[16] = uint8(e.Kind)
			binary.LittleEndian.PutUint64(rec[17:], e.A0)
			binary.LittleEndian.PutUint64(rec[25:], e.A1)
			binary.LittleEndian.PutUint64(rec[33:], e.A2)
			buf.Write(rec[:])
		}
	}

	sumJSON, err := json.Marshal(Summary{Opened: r.Opened, Closed: r.Closed})
	if err != nil {
		return nil, err
	}
	trace.WriteSection(&buf, sumJSON)
	return buf.Bytes(), nil
}

// Hash returns the FNV-64a hash of the serialized spans, for the
// determinism regression tests.
func (r *Recorder) Hash() uint64 {
	b, err := r.Encode()
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Data is a decoded span file.
type Data struct {
	Meta        Meta
	PerCPU      [][]trace.Event // index = CPU, ordered by sequence
	Overwritten []uint64        // per CPU
	Summary     Summary
}

// Events returns all records merged into the (time, CPU, seq) order.
func (d *Data) Events() []trace.Event { return trace.MergeEvents(d.PerCPU) }

// Decode parses a serialized span file.
func Decode(b []byte) (*Data, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("span: bad magic (not a nova span file)")
	}
	b = b[len(magic):]

	metaJSON, b, err := trace.ReadSection(b)
	if err != nil {
		return nil, fmt.Errorf("span: meta: %w", err)
	}
	d := &Data{}
	if err := json.Unmarshal(metaJSON, &d.Meta); err != nil {
		return nil, fmt.Errorf("span: meta: %w", err)
	}

	if len(b) < 4 {
		return nil, fmt.Errorf("span: truncated CPU count")
	}
	cpus := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if cpus < 0 || cpus > 1<<16 {
		return nil, fmt.Errorf("span: implausible CPU count %d", cpus)
	}
	for cpu := 0; cpu < cpus; cpu++ {
		if len(b) < 12 {
			return nil, fmt.Errorf("span: truncated ring header (cpu %d)", cpu)
		}
		count := int(binary.LittleEndian.Uint32(b))
		over := binary.LittleEndian.Uint64(b[4:])
		b = b[12:]
		if count < 0 || len(b) < count*recordSize {
			return nil, fmt.Errorf("span: truncated ring (cpu %d)", cpu)
		}
		events := make([]trace.Event, count)
		for i := range events {
			rec := b[i*recordSize:]
			events[i] = trace.Event{
				Time: hw.Cycles(binary.LittleEndian.Uint64(rec[0:])),
				Seq:  binary.LittleEndian.Uint64(rec[8:]),
				CPU:  uint8(cpu),
				Kind: trace.Kind(rec[16]),
				A0:   binary.LittleEndian.Uint64(rec[17:]),
				A1:   binary.LittleEndian.Uint64(rec[25:]),
				A2:   binary.LittleEndian.Uint64(rec[33:]),
			}
		}
		b = b[count*recordSize:]
		d.PerCPU = append(d.PerCPU, events)
		d.Overwritten = append(d.Overwritten, over)
	}

	sumJSON, b, err := trace.ReadSection(b)
	if err != nil {
		return nil, fmt.Errorf("span: summary: %w", err)
	}
	if err := json.Unmarshal(sumJSON, &d.Summary); err != nil {
		return nil, fmt.Errorf("span: summary: %w", err)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("span: %d trailing bytes", len(b))
	}
	return d, nil
}
