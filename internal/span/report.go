package span

import (
	"math"
	"sort"

	"nova/internal/hw"
)

// PathSeg is one hop of a span's critical path: the span was in Seg
// from Start for Dur cycles. Dur is signed so that per-segment sums
// telescope exactly to close minus open even across CPU-crossing marks
// (per-CPU clocks are only loosely synchronized).
type PathSeg struct {
	Seg   Seg       `json:"-"`
	Name  string    `json:"seg"`
	Start hw.Cycles `json:"start"`
	Dur   int64     `json:"dur"`
}

// Annot is one decoded annotation.
type Annot struct {
	Key uint64 `json:"key"`
	Val uint64 `json:"val"`
}

// Span is one reconstructed request.
type Span struct {
	ID     ID        `json:"id"`
	Class  Class     `json:"-"`
	Name   string    `json:"class"`
	Detail uint64    `json:"detail"`
	CPU    uint8     `json:"cpu"`
	Open   hw.Cycles `json:"open"`
	End    hw.Cycles `json:"close"`
	Closed bool      `json:"closed"`
	Status uint64    `json:"status"`

	// Segs accumulates duration per segment; Path is the ordered
	// critical-path decomposition (consecutive same-segment hops are
	// merged). For a closed span, the Segs entries sum exactly to
	// End-Open.
	Segs  [NumSegs]int64 `json:"-"`
	Path  []PathSeg      `json:"path,omitempty"`
	Annot []Annot        `json:"annot,omitempty"`

	lastSeg  Seg
	lastTime hw.Cycles
	hasSeg   bool
}

// Duration returns the end-to-end latency of a closed span.
func (s *Span) Duration() uint64 { return uint64(s.End - s.Open) }

// BuildSpans reconstructs spans from a decoded span file, in span-ID
// order. Spans whose open record was overwritten by a wrapped ring are
// dropped (their decomposition would be incomplete).
func BuildSpans(d *Data) []*Span {
	byID := map[ID]*Span{} // lookup index only; iteration uses the slice
	var spans []*Span
	for _, e := range d.Events() {
		id := ID(e.A0)
		k := Kind(e.Kind)
		if k == KindOpen {
			s := &Span{
				ID: id, Class: Class(e.A1), Name: Class(e.A1).String(),
				Detail: e.A2, CPU: e.CPU, Open: e.Time,
			}
			byID[id] = s
			spans = append(spans, s)
			continue
		}
		s := byID[id]
		if s == nil {
			continue // open record lost to a ring wrap
		}
		switch k {
		case KindSeg:
			s.mark(e.Time, Seg(e.A1))
		case KindAnnotate:
			s.Annot = append(s.Annot, Annot{Key: e.A1, Val: e.A2})
		case KindClose:
			s.closeAt(e.Time, e.A1)
		}
	}
	return spans
}

// mark accumulates the previous segment up to now and switches to seg.
func (s *Span) mark(now hw.Cycles, seg Seg) {
	if s.Closed || int(seg) >= int(NumSegs) {
		return
	}
	s.flush(now)
	if s.hasSeg && len(s.Path) > 0 && s.Path[len(s.Path)-1].Seg == seg && s.Path[len(s.Path)-1].Start+hw.Cycles(s.Path[len(s.Path)-1].Dur) == now {
		// Re-entering the segment with no gap: extend the last hop
		// instead of appending a zero-width one.
	} else {
		s.Path = append(s.Path, PathSeg{Seg: seg, Name: seg.String(), Start: now})
	}
	s.lastSeg, s.lastTime, s.hasSeg = seg, now, true
}

// flush adds the time since the last mark to the current segment.
func (s *Span) flush(now hw.Cycles) {
	if !s.hasSeg {
		return
	}
	d := int64(now) - int64(s.lastTime)
	s.Segs[s.lastSeg] += d
	if len(s.Path) > 0 && s.Path[len(s.Path)-1].Seg == s.lastSeg {
		s.Path[len(s.Path)-1].Dur += d
	}
	s.lastTime = now
}

// closeAt finalizes the span.
func (s *Span) closeAt(now hw.Cycles, status uint64) {
	if s.Closed {
		return
	}
	s.flush(now)
	s.End, s.Closed, s.Status = now, true, status
	// Drop zero-width hops left by immediate transitions, then merge
	// contiguous hops of the same segment that they had split.
	out := s.Path[:0]
	for _, p := range s.Path {
		if p.Dur == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Seg == p.Seg && out[n-1].Start+hw.Cycles(out[n-1].Dur) == p.Start {
			out[n-1].Dur += p.Dur
			continue
		}
		out = append(out, p)
	}
	s.Path = out
}

// SegTotal is one segment's aggregate over a request class.
type SegTotal struct {
	Seg   string `json:"seg"`
	Total int64  `json:"total"`
	Avg   int64  `json:"avg"`
}

// ClassReport aggregates one request class: exact nearest-rank
// percentiles over every completed request plus the per-segment
// critical-path totals.
type ClassReport struct {
	Class  string `json:"class"`
	Count  int    `json:"count"`  // closed spans
	Open   int    `json:"open"`   // spans never closed (excluded below)
	Failed int    `json:"failed"` // closed with StatusError

	Min  uint64 `json:"min"`
	Mean uint64 `json:"mean"`
	P50  uint64 `json:"p50"`
	P99  uint64 `json:"p99"`
	P999 uint64 `json:"p999"`
	Max  uint64 `json:"max"`

	Segs []SegTotal `json:"segs,omitempty"`
}

// Report is the nova-span report: per-class latency tails and
// critical-path decomposition.
type Report struct {
	FreqMHz int           `json:"freq_mhz"`
	Opened  uint64        `json:"opened"`
	Closed  uint64        `json:"closed"`
	Classes []ClassReport `json:"classes"`
}

// Percentile returns the exact nearest-rank percentile of sorted
// (ascending) values: the smallest value with at least q·N values at or
// below it. Exact because it operates on every completed request's
// duration, not on histogram buckets.
func Percentile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// BuildReport aggregates reconstructed spans into the per-class report.
func BuildReport(d *Data, spans []*Span) *Report {
	rep := &Report{FreqMHz: d.Meta.FreqMHz, Opened: d.Summary.Opened, Closed: d.Summary.Closed}
	var durs [NumClasses][]uint64
	var segs [NumClasses][NumSegs]int64
	var open, failed [NumClasses]int
	for _, s := range spans {
		c := s.Class
		if int(c) >= int(NumClasses) {
			continue
		}
		if !s.Closed {
			open[c]++
			continue
		}
		if s.Status == StatusError {
			failed[c]++
		}
		durs[c] = append(durs[c], s.Duration())
		for i, v := range s.Segs {
			segs[c][i] += v
		}
	}
	for c := Class(0); c < NumClasses; c++ {
		ds := durs[c]
		if len(ds) == 0 && open[c] == 0 {
			continue
		}
		cr := ClassReport{Class: c.String(), Count: len(ds), Open: open[c], Failed: failed[c]}
		if len(ds) > 0 {
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			var sum uint64
			for _, v := range ds {
				sum += v
			}
			cr.Min = ds[0]
			cr.Max = ds[len(ds)-1]
			cr.Mean = sum / uint64(len(ds))
			cr.P50 = Percentile(ds, 0.50)
			cr.P99 = Percentile(ds, 0.99)
			cr.P999 = Percentile(ds, 0.999)
			for i := Seg(0); i < NumSegs; i++ {
				if segs[c][i] == 0 {
					continue
				}
				cr.Segs = append(cr.Segs, SegTotal{
					Seg: i.String(), Total: segs[c][i], Avg: segs[c][i] / int64(len(ds)),
				})
			}
		}
		rep.Classes = append(rep.Classes, cr)
	}
	return rep
}
