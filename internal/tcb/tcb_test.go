package tcb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPaperFigure1Invariants(t *testing.T) {
	stacks := PaperFigure1()
	if len(stacks) != 6 {
		t.Fatalf("stacks = %d, want 6", len(stacks))
	}
	if stacks[0].Name != "NOVA" {
		t.Fatal("NOVA must come first")
	}
	nova := stacks[0]
	if nova.Total() != 36 {
		t.Errorf("NOVA total = %.0f, want 36 (9+7+20)", nova.Total())
	}
	if nova.Privileged() != 9 {
		t.Errorf("NOVA privileged = %.0f, want 9", nova.Privileged())
	}
	// The order-of-magnitude claim: every competitor's TCB is at least
	// 5x NOVA's.
	for _, s := range stacks[1:] {
		if s.Total() < 5*nova.Total() {
			t.Errorf("%s total %.0f < 5x NOVA", s.Name, s.Total())
		}
		if s.Privileged() == 0 {
			t.Errorf("%s has no privileged component", s.Name)
		}
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found")
		}
		dir = parent
	}
}

func TestCountRepo(t *testing.T) {
	res, err := CountRepo(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CountResult{}
	for _, r := range res {
		byName[r.Component] = r
	}
	for _, name := range []string{"Microhypervisor", "User Env.", "VMM"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("component %q missing", name)
		}
		if r.Code == 0 || r.Files == 0 {
			t.Errorf("%s counted empty: %+v", name, r)
		}
		if r.Tests == 0 {
			t.Errorf("%s has no test lines?", name)
		}
	}
	// The reproduction keeps NOVA's proportions: the microhypervisor is
	// much smaller than the VMM+substrate combined.
	hv := byName["Microhypervisor"].Code
	rest := byName["VMM"].Code + byName["Substrate (sim)"].Code
	if hv >= rest {
		t.Errorf("microhypervisor (%d) not smaller than VMM+substrate (%d)", hv, rest)
	}
}

func TestCountLinesSkipsBlanksAndComments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	content := "package x\n\n// comment\nfunc F() {}\n\n// more\nvar V = 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := countLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // package, func, var
		t.Errorf("counted %d lines, want 3", n)
	}
}

func TestFormatOutput(t *testing.T) {
	out := Format(nil)
	for _, want := range []string{"NOVA", "Hyper-V", "smaller"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	live := []CountResult{{Component: "X", Files: 1, Code: 10, Tests: 5}}
	out = Format(live)
	if !strings.Contains(out, "live count") || !strings.Contains(out, "X") {
		t.Error("live section missing")
	}
}
