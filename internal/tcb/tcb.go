// Package tcb reproduces Figure 1 of the paper: the trusted-computing-
// base comparison across virtualization environments, in lines of
// source code. The competitor numbers are the paper's own estimates;
// the NOVA numbers can additionally be measured live from this
// repository's source tree.
package tcb

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Component is one box of a Figure 1 bar.
type Component struct {
	Name string
	KLOC float64
	// Privileged marks the most privileged component (the lowermost
	// box, which must be fully trusted).
	Privileged bool
}

// Stack is one bar of Figure 1.
type Stack struct {
	Name       string
	Components []Component
}

// Total returns the full TCB size in KLOC.
func (s Stack) Total() float64 {
	t := 0.0
	for _, c := range s.Components {
		t += c.KLOC
	}
	return t
}

// Privileged returns the size of the most privileged component.
func (s Stack) Privileged() float64 {
	for _, c := range s.Components {
		if c.Privileged {
			return c.KLOC
		}
	}
	return 0
}

// PaperFigure1 returns the paper's TCB comparison (Figure 1 and §3.2):
// NOVA 9+7+20 KLOC; Xen ~100 KLOC hypervisor + Dom0 Linux (~200 KLOC
// stripped) + QEMU (~140 KLOC reduced); KVM = Linux ~200 + KVM 20 +
// QEMU 140; KVM-L4 adds the L4 microkernel and L4Linux; ESXi ~200;
// Hyper-V >= 100 + Windows Server 2008 parent.
func PaperFigure1() []Stack {
	return []Stack{
		{Name: "NOVA", Components: []Component{
			{Name: "Microhypervisor", KLOC: 9, Privileged: true},
			{Name: "User Env.", KLOC: 7},
			{Name: "VMM", KLOC: 20},
		}},
		{Name: "Xen", Components: []Component{
			{Name: "Hypervisor", KLOC: 100, Privileged: true},
			{Name: "Dom0 Linux", KLOC: 200},
			{Name: "QEMU VMM", KLOC: 140},
		}},
		{Name: "KVM", Components: []Component{
			{Name: "Linux+KVM", KLOC: 220, Privileged: true},
			{Name: "QEMU VMM", KLOC: 140},
		}},
		{Name: "KVM-L4", Components: []Component{
			{Name: "L4", KLOC: 15, Privileged: true},
			{Name: "L4Linux+KVM", KLOC: 220},
			{Name: "QEMU VMM", KLOC: 140},
		}},
		{Name: "ESXi", Components: []Component{
			{Name: "Hypervisor", KLOC: 200, Privileged: true},
		}},
		{Name: "Hyper-V", Components: []Component{
			{Name: "Hypervisor", KLOC: 100, Privileged: true},
			{Name: "2008 Server", KLOC: 200},
		}},
	}
}

// RepoComponents maps this repository's packages onto the paper's NOVA
// components.
var RepoComponents = map[string][]string{
	"Microhypervisor": {"internal/hypervisor", "internal/cap"},
	"User Env.":       {"internal/services"},
	"VMM":             {"internal/vmm"},
	"Substrate (sim)": {"internal/hw", "internal/x86"},
	"Guests":          {"internal/guest"},
}

// CountResult is the live line count of one component.
type CountResult struct {
	Component string
	Files     int
	Code      int // non-blank, non-comment-only lines outside tests
	Tests     int // lines in _test.go files
}

// CountRepo measures this repository's component sizes from root (the
// module directory).
func CountRepo(root string) ([]CountResult, error) {
	names := make([]string, 0, len(RepoComponents))
	for name := range RepoComponents {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []CountResult
	for _, name := range names {
		r := CountResult{Component: name}
		for _, dir := range RepoComponents[name] {
			err := filepath.Walk(filepath.Join(root, dir), func(path string, info os.FileInfo, err error) error {
				if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
					return err
				}
				n, err := countLines(path)
				if err != nil {
					return err
				}
				r.Files++
				if strings.HasSuffix(path, "_test.go") {
					r.Tests += n
				} else {
					r.Code += n
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// countLines counts non-blank, non-pure-comment lines.
func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		n++
	}
	return n, sc.Err()
}

// Format renders the Figure 1 comparison with optional live counts.
func Format(live []CountResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: TCB size of virtual environments (KLOC, paper estimates)\n")
	fmt.Fprintf(&b, "%-8s  %10s  %10s  %s\n", "stack", "privileged", "total", "components")
	for _, s := range PaperFigure1() {
		parts := make([]string, len(s.Components))
		for i, c := range s.Components {
			parts[i] = fmt.Sprintf("%s=%.0f", c.Name, c.KLOC)
		}
		fmt.Fprintf(&b, "%-8s  %10.0f  %10.0f  %s\n", s.Name, s.Privileged(), s.Total(), strings.Join(parts, " + "))
	}
	nova := PaperFigure1()[0]
	others := PaperFigure1()[1:]
	minOther := others[0].Total()
	for _, s := range others {
		if s.Total() < minOther {
			minOther = s.Total()
		}
	}
	fmt.Fprintf(&b, "\nNOVA total %.0f KLOC vs smallest competitor %.0f KLOC: %.1fx smaller\n",
		nova.Total(), minOther, minOther/nova.Total())
	if live != nil {
		fmt.Fprintf(&b, "\nThis reproduction (live count):\n")
		fmt.Fprintf(&b, "%-18s %6s %8s %8s\n", "component", "files", "code", "tests")
		for _, r := range live {
			fmt.Fprintf(&b, "%-18s %6d %8d %8d\n", r.Component, r.Files, r.Code, r.Tests)
		}
	}
	return b.String()
}
