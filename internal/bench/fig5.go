package bench

import (
	"encoding/binary"
	"fmt"

	"nova/internal/guest"
	"nova/internal/hw"
	"nova/internal/prof"
)

// Fig5Row is one bar of Figure 5.
type Fig5Row struct {
	Group    string
	Label    string
	Relative float64 // % of native performance (measured or modeled)
	Paper    float64 // % the paper reports (0 if not shown)
	Kind     string  // "measured", "modeled", "anchor"
	Cycles   hw.Cycles
	Exits    uint64
}

// Modeled per-exit penalties of the monolithic competitors relative to
// NOVA's exit handling (QEMU round trips, Dom0 scheduling, heavier exit
// paths). These constants are calibrated so the Figure 5 deltas land in
// the paper's neighbourhood; the *shape* claim is only about ordering.
const (
	kvmExtraPerExit    = 2500
	xenExtraPerExit    = 6000
	esxiExtraPerExit   = 6000
	hypervExtraPerExit = 12000
)

// runCompileConfig executes the compile workload under one
// configuration and returns duration, total VM exits, and the run's
// guest profile (sampling is zero-perturbation, so the first two are
// identical with and without it). The run's resource totals fold into
// rs when non-nil.
func runCompileConfig(sc Scale, cfg guest.RunnerConfig, disk bool, rs *Resources) (hw.Cycles, uint64, *prof.Data, error) {
	img := guest.MustBuild(guest.CompileKernel(667))
	if disk && (cfg.Mode == guest.ModeVirtEPT || cfg.Mode == guest.ModeVirtVTLB) {
		cfg.WithDiskServer = true
	}
	cfg.ProfilePeriod = benchProfPeriod
	r, err := guest.NewRunner(cfg, img)
	if err != nil {
		return 0, 0, nil, err
	}
	params := make([]byte, 24)
	binary.LittleEndian.PutUint32(params[0:], uint32(sc.Slices))
	binary.LittleEndian.PutUint32(params[4:], uint32(sc.CachePages))
	binary.LittleEndian.PutUint32(params[8:], uint32(sc.PrivPages))
	binary.LittleEndian.PutUint32(params[12:], uint32(sc.FillerIter))
	diskFlag := uint32(0)
	if disk {
		diskFlag = 1
	}
	binary.LittleEndian.PutUint32(params[16:], diskFlag)
	binary.LittleEndian.PutUint32(params[20:], uint32(sc.CachePasses))
	r.WriteGuest(guest.ParamBase, params)
	cycles, err := r.RunUntilDone(1 << 40)
	if err != nil {
		return 0, 0, nil, err
	}
	var exits uint64
	if v := r.VCPU(); v != nil {
		exits = v.TotalExits()
	}
	rs.AddRun(r)
	return cycles, exits, r.Prof.Data(), nil
}

// RunFig5 reproduces Figure 5: the kernel-compilation workload across
// virtualization configurations on the Intel Core i7 and AMD Phenom
// models.
func RunFig5(sc Scale) (*Table, []Fig5Row, error) {
	var rows []Fig5Row
	add := func(group, label string, rel, paper float64, kind string, cy hw.Cycles, exits uint64) {
		rows = append(rows, Fig5Row{Group: group, Label: label, Relative: rel,
			Paper: paper, Kind: kind, Cycles: cy, Exits: exits})
	}

	type cfgSpec struct {
		group, label string
		paper        float64
		cfg          guest.RunnerConfig
		disk         bool
	}
	intel := []cfgSpec{
		{"EPT+VPID", "Native", 100,
			guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeNative}, true},
		{"EPT+VPID", "Direct", 99.4,
			guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeDirect, UseVPID: true, HostLargePages: true, DirectNoExits: true}, true},
		{"EPT+VPID", "NOVA", 99.2,
			guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeVirtEPT, UseVPID: true, HostLargePages: true}, true},
		{"EPT w/o VPID", "NOVA", 97.7,
			guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeVirtEPT, UseVPID: false, HostLargePages: true}, true},
		{"EPT small pages", "NOVA", 97.0,
			guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeVirtEPT, UseVPID: true, HostLargePages: false}, true},
		{"Shadow paging", "NOVA", 72.3,
			guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeVirtVTLB, UseVPID: true, HostLargePages: true}, true},
	}

	measured := map[string]Fig5Row{}
	var profSum *ProfSummary
	var nativeCycles hw.Cycles
	var vcycles uint64
	res := &Resources{}
	for _, s := range intel {
		cy, exits, pd, err := runCompileConfig(sc, s.cfg, s.disk, res)
		if err != nil {
			return nil, nil, fmt.Errorf("fig5 %s/%s: %w", s.group, s.label, err)
		}
		vcycles += uint64(cy)
		mergeProf(&profSum, pd)
		if s.label == "Native" {
			nativeCycles = cy
		}
		rel := float64(nativeCycles) / float64(cy) * 100
		add(s.group, s.label, rel, s.paper, "measured", cy, exits)
		measured[s.group+"/"+s.label] = rows[len(rows)-1]
	}

	// Modeled monolithic competitors: same measured exit stream, heavier
	// per-exit handling.
	model := func(group string, base Fig5Row, label string, extra hw.Cycles, paper float64) {
		cy := base.Cycles + hw.Cycles(base.Exits)*extra
		add(group, label, float64(nativeCycles)/float64(cy)*100, paper, "modeled", cy, base.Exits)
	}
	novaEPT := measured["EPT+VPID/NOVA"]
	model("EPT+VPID", novaEPT, "KVM", kvmExtraPerExit, 98.1)
	model("EPT+VPID", novaEPT, "Xen", xenExtraPerExit, 97.3)
	model("EPT+VPID", novaEPT, "ESXi", esxiExtraPerExit, 97.3)
	model("EPT+VPID", novaEPT, "Hyper-V", hypervExtraPerExit, 95.9)
	model("EPT w/o VPID", measured["EPT w/o VPID/NOVA"], "KVM", kvmExtraPerExit, 97.4)
	model("EPT small pages", measured["EPT small pages/NOVA"], "KVM", kvmExtraPerExit, 95.7)
	// KVM's shadow pager is more mature than NOVA's vTLB (the paper
	// measures KVM ahead here): model it with 25% cheaper fills.
	vtlb := measured["Shadow paging/NOVA"]
	kvmShadow := nativeCycles + (vtlb.Cycles-nativeCycles)*3/4 + hw.Cycles(vtlb.Exits)*kvmExtraPerExit
	add("Shadow paging", "KVM", float64(nativeCycles)/float64(kvmShadow)*100, 78.5, "modeled", kvmShadow, vtlb.Exits)

	// Paravirtualization context bars, anchored to the paper's numbers
	// (we virtualize fully; these are shown for completeness).
	add("Paravirt", "Xen PV", 96.5, 96.5, "anchor", 0, 0)
	add("Paravirt", "L4Linux", 88.0, 88.0, "anchor", 0, 0)

	// AMD Phenom set (NPT with ASIDs, 4M host pages, 2-level tables).
	amd := []cfgSpec{
		{"AMD NPT", "Native", 100,
			guest.RunnerConfig{Model: hw.K10, Mode: guest.ModeNative}, true},
		{"AMD NPT", "NOVA", 99.4,
			guest.RunnerConfig{Model: hw.K10, Mode: guest.ModeVirtEPT, UseVPID: true, HostLargePages: true}, true},
	}
	var amdNative hw.Cycles
	for _, s := range amd {
		cy, exits, pd, err := runCompileConfig(sc, s.cfg, s.disk, res)
		if err != nil {
			return nil, nil, fmt.Errorf("fig5 %s/%s: %w", s.group, s.label, err)
		}
		vcycles += uint64(cy)
		mergeProf(&profSum, pd)
		if s.label == "Native" {
			amdNative = cy
		}
		add(s.group, s.label, float64(amdNative)/float64(cy)*100, s.paper, "measured", cy, exits)
	}
	amdNova := rows[len(rows)-1]
	kvmAMD := amdNova.Cycles + hw.Cycles(amdNova.Exits)*kvmExtraPerExit
	add("AMD NPT", "KVM", float64(amdNative)/float64(kvmAMD)*100, 97.2, "modeled", kvmAMD, amdNova.Exits)

	t := &Table{
		Title:   "Figure 5: Linux kernel compilation, relative to native performance (%)",
		Columns: []string{"group", "config", "measured %", "paper %", "kind", "cycles", "exits"},
	}
	for _, r := range rows {
		paper := "-"
		if r.Paper > 0 {
			paper = f1(r.Paper)
		}
		t.Rows = append(t.Rows, []string{r.Group, r.Label, f1(r.Relative), paper, r.Kind, d(uint64(r.Cycles)), d(r.Exits)})
	}
	t.Notes = append(t.Notes,
		"measured = full stack executed; modeled = NOVA measurement + per-exit penalty constants; anchor = paper value shown for context",
		fmt.Sprintf("scale %q: %d timeslices of the synthetic compile (paper: full Linux build, ~470 s)", sc.Name, sc.Slices))
	t.Prof = profSum
	t.VirtualCycles = vcycles
	t.Resources = res
	return t, rows, nil
}
