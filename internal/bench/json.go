package bench

import (
	"encoding/json"
	"runtime"
)

// ReportSchemaVersion identifies the report layout. Bump it when a
// field changes meaning so `nova-bench -compare` refuses to diff
// incompatible artifacts instead of reporting nonsense drift.
const ReportSchemaVersion = 3 // v3: per-experiment Latency blocks (request-span tails)

// Report is the machine-readable form of a bench run, written by
// `nova-bench -out BENCH_<scale>.json`. It carries the same tables the
// terminal output shows, so CI can archive one artifact per run and
// diff results across revisions without screen-scraping.
//
// Provenance fields split two ways. SchemaVersion, Scale and
// TotalVirtualCycles are properties of the simulated run and must be
// bit-stable across hosts; GoVersion and the per-experiment HostSeconds
// describe the machine that happened to run the benchmark and are
// advisory only.
type Report struct {
	SchemaVersion      int          `json:"schema_version"`
	Scale              string       `json:"scale"`
	GoVersion          string       `json:"go_version"`
	TotalVirtualCycles uint64       `json:"total_virtual_cycles"`
	Experiments        []Experiment `json:"experiments"`
}

// Experiment is one named result table. HostSeconds is the host
// wall-clock duration of the experiment run — a property of the machine
// that ran the benchmark, never of the simulated platform.
type Experiment struct {
	Name        string  `json:"name"`
	Table       *Table  `json:"table"`
	HostSeconds float64 `json:"host_seconds,omitempty"`
}

// ProfSummary condenses an experiment's guest profile into the report:
// how many virtual-time samples the runs recorded, and which guest
// address was hottest (by sampled plus attributed cycles). It rides in
// the JSON so the benchmark trajectory carries attribution — "vtlb got
// slower AND the heat moved to the page-fault path" — not just totals.
type ProfSummary struct {
	Samples   uint64 `json:"samples"`
	TopAddr   string `json:"top_addr"`
	TopCycles uint64 `json:"top_cycles"`
}

// Add appends one experiment's table to the report.
func (r *Report) Add(name string, t *Table) {
	r.Experiments = append(r.Experiments, Experiment{Name: name, Table: t})
}

// SetHostSeconds records the host duration of the named experiment.
func (r *Report) SetHostSeconds(name string, sec float64) {
	for i := range r.Experiments {
		if r.Experiments[i].Name == name {
			r.Experiments[i].HostSeconds = sec
		}
	}
}

// JSON serializes the report, indented, trailing newline included.
// An empty report encodes as "experiments": [] rather than null.
// Provenance is stamped here so every written artifact carries it.
func (r *Report) JSON() ([]byte, error) {
	if r.Experiments == nil {
		r.Experiments = []Experiment{}
	}
	r.SchemaVersion = ReportSchemaVersion
	r.GoVersion = runtime.Version()
	r.TotalVirtualCycles = 0
	for _, e := range r.Experiments {
		if e.Table != nil {
			r.TotalVirtualCycles += e.Table.VirtualCycles
		}
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
