package bench

import (
	"encoding/json"
)

// Report is the machine-readable form of a bench run, written by
// `nova-bench -out BENCH_<scale>.json`. It carries the same tables the
// terminal output shows, so CI can archive one artifact per run and
// diff results across revisions without screen-scraping.
type Report struct {
	Scale       string       `json:"scale"`
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one named result table.
type Experiment struct {
	Name  string `json:"name"`
	Table *Table `json:"table"`
}

// Add appends one experiment's table to the report.
func (r *Report) Add(name string, t *Table) {
	r.Experiments = append(r.Experiments, Experiment{Name: name, Table: t})
}

// JSON serializes the report, indented, trailing newline included.
// An empty report encodes as "experiments": [] rather than null.
func (r *Report) JSON() ([]byte, error) {
	if r.Experiments == nil {
		r.Experiments = []Experiment{}
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
