package bench

import (
	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/hypervisor"
)

// Fig8Row is one processor's IPC measurement.
type Fig8Row struct {
	Model      hw.CPUModel
	EntryExit  hw.Cycles // syscall transition (lowermost box)
	SameAS     hw.Cycles // one-way message transfer, same address space
	CrossAS    hw.Cycles // one-way, different address spaces
	TLBEffects hw.Cycles // CrossAS - SameAS
	CrossNs    float64
	PaperNs    float64 // total read off Figure 8
}

// paperFig8Ns are the cross-address-space one-way IPC times read off
// Figure 8 (ns).
var paperFig8Ns = map[hw.CPUModel]float64{
	hw.K8: 164, hw.K10: 152, hw.YNH: 192, hw.CNR: 179, hw.WFD: 131, hw.BLM: 108,
}

// RunFig8 reproduces Figure 8: the IPC microbenchmark across the six
// Table 1 processors, correlating the user/kernel transition cost with
// the cost of a message transfer between two threads, same and
// different address space.
func RunFig8() (*Table, []Fig8Row, error) {
	var rows []Fig8Row
	var vcycles uint64
	for _, cm := range hw.Models() {
		plat := hw.MustNewPlatform(hw.Config{Model: cm.Model, RAMSize: 32 << 20})
		k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})

		client, err := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "client", false)
		if err != nil {
			return nil, nil, err
		}
		server, err := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "server", false)
		if err != nil {
			return nil, nil, err
		}
		handle := func(m *hypervisor.UTCB) error { return nil }
		// Same-AS portal: created inside the client's own domain.
		sameSel := client.Caps.AllocSel()
		if _, err := k.CreatePortal(client, sameSel, "same", 0, 0, handle); err != nil {
			return nil, nil, err
		}
		// Cross-AS portal: leads into the server.
		srvSel := server.Caps.AllocSel()
		if _, err := k.CreatePortal(server, srvSel, "cross", 0, 0, handle); err != nil {
			return nil, nil, err
		}
		crossSel := client.Caps.AllocSel()
		if err := server.Caps.Delegate(srvSel, client.Caps, crossSel, cap.RightsAll); err != nil {
			return nil, nil, err
		}

		// Measurement comes from the tracer's IPC-latency histogram
		// rather than ad-hoc clock deltas: the kernel records each
		// call→reply round trip, and the syscall entry (charged before
		// the portal path begins) is added back to reconstruct the full
		// call cost. A call is two one-way transfers (call + reply).
		tr := k.AttachTracer(16)
		const iters = 1000
		measure := func(sel cap.Selector) (hw.Cycles, error) {
			msg := &hypervisor.UTCB{Words: []uint64{1, 2}}
			before := tr.IPCLatency
			for i := 0; i < iters; i++ {
				if err := k.Call(client, sel, msg); err != nil {
					return 0, err
				}
			}
			dSum := tr.IPCLatency.Sum - before.Sum
			dCount := tr.IPCLatency.Count - before.Count
			if dCount == 0 {
				return 0, nil
			}
			latency := hw.Cycles(dSum / dCount)
			return (latency + cm.SyscallEntryExit) / 2, nil
		}
		same, err := measure(sameSel)
		if err != nil {
			return nil, nil, err
		}
		cross, err := measure(crossSel)
		if err != nil {
			return nil, nil, err
		}
		vcycles += uint64(k.Now())
		rows = append(rows, Fig8Row{
			Model:      cm.Model,
			EntryExit:  cm.SyscallEntryExit,
			SameAS:     same,
			CrossAS:    cross,
			TLBEffects: cross - same,
			CrossNs:    cm.CyclesToNs(cross),
			PaperNs:    paperFig8Ns[cm.Model],
		})
	}

	t := &Table{
		Title:   "Figure 8: IPC microbenchmark (cycles, one-way message transfer)",
		Columns: []string{"cpu", "entry+exit", "ipc path", "tlb effects", "cross-AS total", "ns", "paper ns"},
	}
	for _, r := range rows {
		path := r.SameAS - r.EntryExit
		t.Rows = append(t.Rows, []string{
			r.Model.String(), d(uint64(r.EntryExit)), d(uint64(path)),
			d(uint64(r.TLBEffects)), d(uint64(r.CrossAS)),
			f1(r.CrossNs), f1(r.PaperNs),
		})
	}
	t.Notes = append(t.Notes,
		"paper: extending TLB tags to user address spaces would cut cross-AS IPC cost (the tlb-effects box) — same conclusion here")
	t.VirtualCycles = vcycles
	return t, rows, nil
}
