package bench

import (
	"encoding/binary"
	"fmt"

	"nova/internal/guest"
	"nova/internal/hw"
	"nova/internal/x86"
)

// Fig6Point is one measurement of the disk benchmark.
type Fig6Point struct {
	BlockBytes  int
	Mode        guest.Mode
	Utilization float64 // CPU busy fraction, %
	CyclesPerRq float64
	ExitsPerRq  float64
	ReqPerSec   float64
}

// blkLayerIter models the guest OS block-layer path per request
// (~20k cycles at divide latency ~47 cycles/iteration), matching the
// paper's native CPU-utilization magnitude.
const blkLayerIter = 420

// RunFig6 reproduces Figure 6: CPU overhead of sequential disk reads
// with different block sizes, comparing the native driver, a directly
// assigned controller, and the fully virtualized controller.
func RunFig6(sc Scale) (*Table, []Fig6Point, error) {
	blockSizes := []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}
	modes := []guest.RunnerConfig{
		{Model: hw.BLM, Mode: guest.ModeNative},
		{Model: hw.BLM, Mode: guest.ModeDirect, UseVPID: true},
		{Model: hw.BLM, Mode: guest.ModeVirtEPT, UseVPID: true, WithDiskServer: true},
	}
	var points []Fig6Point
	var profSum *ProfSummary
	var vcycles uint64
	res := &Resources{}
	lat := &latencyAcc{}
	img := guest.MustBuild(guest.DiskReadKernel())
	for _, bs := range blockSizes {
		for _, cfg := range modes {
			cfg.ProfilePeriod = benchProfPeriod
			// Record request spans on the virtualized runs (ignored in
			// native mode). Zero-perturbation: the utilization and
			// exit-count columns are bit-identical either way.
			cfg.SpanCapacity = benchSpanCapacity
			r, err := guest.NewRunner(cfg, img)
			if err != nil {
				return nil, nil, err
			}
			requests := sc.DiskRequests
			sectors := bs / hw.SectorSize
			params := make([]byte, 24)
			binary.LittleEndian.PutUint32(params[0:], uint32(sectors))
			binary.LittleEndian.PutUint32(params[4:], uint32(requests))
			binary.LittleEndian.PutUint32(params[8:], 4096)
			binary.LittleEndian.PutUint32(params[20:], blkLayerIter)
			r.WriteGuest(guest.ParamBase, params)
			cycles, err := r.RunUntilDone(1 << 40)
			if err != nil {
				return nil, nil, fmt.Errorf("fig6 %v bs=%d: %w", cfg.Mode, bs, err)
			}
			vcycles += uint64(cycles)
			p := Fig6Point{
				BlockBytes:  bs,
				Mode:        cfg.Mode,
				Utilization: r.BusyFraction() * 100,
				CyclesPerRq: float64(r.Clock().Busy()) / float64(requests),
				ReqPerSec:   float64(requests) / r.Plat.Cost.CyclesToSeconds(cycles),
			}
			if v := r.VCPU(); v != nil {
				p.ExitsPerRq = float64(v.TotalExits()) / float64(requests)
				_ = v.Exits[x86.ExitEPTViolation]
			}
			mergeProf(&profSum, r.Prof.Data())
			res.AddRun(r)
			if err := lat.add(r.Spans); err != nil {
				return nil, nil, fmt.Errorf("fig6 %v bs=%d spans: %w", cfg.Mode, bs, err)
			}
			points = append(points, p)
		}
	}

	t := &Table{
		Title:   "Figure 6: CPU utilization (%) for sequential disk reads by block size",
		Columns: []string{"block", "native %", "direct %", "virt %", "req/s", "exits/req direct", "exits/req virt"},
	}
	for i := 0; i < len(points); i += 3 {
		n, dct, v := points[i], points[i+1], points[i+2]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n.BlockBytes),
			f2(n.Utilization), f2(dct.Utilization), f2(v.Utilization),
			fmt.Sprintf("%.0f", n.ReqPerSec),
			f1(dct.ExitsPerRq), f1(v.ExitsPerRq),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: utilization flat below 8K (request-rate bound), falling above (bandwidth bound);",
		"direct assignment roughly doubles native utilization; full virtualization doubles it again (§8.2)",
		"paper reference at 16K: native 3.7%, direct 7%; ~6 exits/request interrupt path + ~6 MMIO exits when virtualized")
	t.Prof = profSum
	t.VirtualCycles = vcycles
	t.Resources = res
	t.Latency = lat.block()
	return t, points, nil
}
