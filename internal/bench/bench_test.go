package bench

import (
	"strings"
	"testing"

	"nova/internal/guest"
	"nova/internal/hw"
)

// tiny returns a very small scale for unit tests.
func tiny() Scale {
	return Scale{Name: "tiny", Slices: 6, CachePages: 192, PrivPages: 16,
		FillerIter: 8000, DiskRequests: 8, Packets: 60}
}

func TestFig5ShapeHolds(t *testing.T) {
	table, rows, err := RunFig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table)
	rel := map[string]float64{}
	for _, r := range rows {
		rel[r.Group+"/"+r.Label] = r.Relative
	}
	// Intel ordering: native=100 >= direct >= NOVA EPT > shadow paging.
	if !(rel["EPT+VPID/Direct"] <= 100.01 && rel["EPT+VPID/NOVA"] <= rel["EPT+VPID/Direct"]+0.5) {
		t.Errorf("direct/NOVA ordering: direct=%.1f nova=%.1f", rel["EPT+VPID/Direct"], rel["EPT+VPID/NOVA"])
	}
	if rel["Shadow paging/NOVA"] >= rel["EPT+VPID/NOVA"]-3 {
		t.Errorf("shadow paging not clearly slower: vtlb=%.1f ept=%.1f",
			rel["Shadow paging/NOVA"], rel["EPT+VPID/NOVA"])
	}
	// Monolithic competitors slower than NOVA in each group.
	for _, g := range []string{"EPT+VPID", "EPT w/o VPID", "EPT small pages"} {
		if rel[g+"/KVM"] > rel[g+"/NOVA"] {
			t.Errorf("%s: KVM (%.1f) beat NOVA (%.1f)", g, rel[g+"/KVM"], rel[g+"/NOVA"])
		}
	}
	if !(rel["EPT+VPID/Hyper-V"] < rel["EPT+VPID/Xen"] && rel["EPT+VPID/Xen"] <= rel["EPT+VPID/KVM"]) {
		t.Errorf("competitor ordering wrong: kvm=%.1f xen=%.1f hyperv=%.1f",
			rel["EPT+VPID/KVM"], rel["EPT+VPID/Xen"], rel["EPT+VPID/Hyper-V"])
	}
	// AMD overhead lower than Intel (2-level NPT).
	amdOver := 100 - rel["AMD NPT/NOVA"]
	intelOver := 100 - rel["EPT+VPID/NOVA"]
	if amdOver > intelOver+0.5 {
		t.Errorf("AMD overhead (%.2f%%) should not exceed Intel (%.2f%%)", amdOver, intelOver)
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	table, points, err := RunFig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table)
	byMode := map[guest.Mode]map[int]Fig6Point{}
	for _, p := range points {
		if byMode[p.Mode] == nil {
			byMode[p.Mode] = map[int]Fig6Point{}
		}
		byMode[p.Mode][p.BlockBytes] = p
	}
	for _, bs := range []int{512, 4096, 16384, 65536} {
		n := byMode[guest.ModeNative][bs]
		dd := byMode[guest.ModeDirect][bs]
		v := byMode[guest.ModeVirtEPT][bs]
		if !(n.Utilization < dd.Utilization && dd.Utilization < v.Utilization) {
			t.Errorf("bs=%d: ordering violated: %.3f %.3f %.3f", bs, n.Utilization, dd.Utilization, v.Utilization)
		}
	}
	// Flat region below 8K: request-rate bound, utilization roughly
	// constant; above: falls.
	n512 := byMode[guest.ModeNative][512].Utilization
	n4096 := byMode[guest.ModeNative][4096].Utilization
	if n4096 < n512*0.6 || n4096 > n512*1.6 {
		t.Errorf("native not flat below 8K: 512=%.3f 4096=%.3f", n512, n4096)
	}
	n64k := byMode[guest.ModeNative][65536]
	if n64k.ReqPerSec >= byMode[guest.ModeNative][512].ReqPerSec {
		t.Error("64K requests not bandwidth-bound")
	}
	// Virtualized exits per request: ~6 MMIO + interrupt path.
	v16k := byMode[guest.ModeVirtEPT][16384]
	if v16k.ExitsPerRq < 8 || v16k.ExitsPerRq > 40 {
		t.Errorf("virt exits/request = %.1f, expected O(10)", v16k.ExitsPerRq)
	}
}

func TestFig7ShapeHolds(t *testing.T) {
	table, points, err := RunFig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table)
	for i := 0; i < len(points); i += 2 {
		n, dd := points[i], points[i+1]
		if dd.Utilization <= n.Utilization {
			t.Errorf("pkt=%d mbit=%.0f: direct (%.4f) not above native (%.4f)",
				n.PacketBytes, n.MbitPerSec, dd.Utilization, n.Utilization)
		}
		if n.Dropped != 0 || dd.Dropped != 0 {
			t.Errorf("pkt=%d mbit=%.0f: drops %d/%d", n.PacketBytes, n.MbitPerSec, n.Dropped, dd.Dropped)
		}
	}
}

func TestFig8ShapeHolds(t *testing.T) {
	table, rows, err := RunFig8()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table)
	for _, r := range rows {
		if r.TLBEffects <= 0 {
			t.Errorf("%v: no TLB effect on cross-AS IPC", r.Model)
		}
		if r.SameAS <= r.EntryExit {
			t.Errorf("%v: IPC path free?", r.Model)
		}
		// Within 25% of the paper's figure-read values.
		if r.PaperNs > 0 {
			ratio := r.CrossNs / r.PaperNs
			if ratio < 0.75 || ratio > 1.25 {
				t.Errorf("%v: cross-AS %.0f ns vs paper %.0f ns", r.Model, r.CrossNs, r.PaperNs)
			}
		}
	}
	// BLM has the cheapest IPC in ns (the paper's trend).
	var blm, ynh Fig8Row
	for _, r := range rows {
		if r.Model == hw.BLM {
			blm = r
		}
		if r.Model == hw.YNH {
			ynh = r
		}
	}
	if blm.CrossNs >= ynh.CrossNs {
		t.Errorf("BLM (%.0f ns) not faster than YNH (%.0f ns)", blm.CrossNs, ynh.CrossNs)
	}
}

func TestFig9ShapeHolds(t *testing.T) {
	table, rows, err := RunFig9()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table)
	byLabel := map[string]Fig9Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
		// Transition dominates the miss cost (paper: ~80%).
		frac := float64(r.ExitResume) / float64(r.PerMiss)
		if frac < 0.5 || frac > 1.0 {
			t.Errorf("%s: transition fraction %.2f outside [0.5,1.0]", r.Label, frac)
		}
		if r.PaperNs > 0 {
			ratio := r.Ns / r.PaperNs
			if ratio < 0.7 || ratio > 1.4 {
				t.Errorf("%s: %.0f ns vs paper %.0f ns", r.Label, r.Ns, r.PaperNs)
			}
		}
	}
	// Newer CPUs are cheaper; VPID helps on BLM.
	if byLabel["BLM"].PerMiss >= byLabel["YNH"].PerMiss {
		t.Error("BLM miss not cheaper than YNH")
	}
	if byLabel["BLM VPID"].PerMiss >= byLabel["BLM"].PerMiss {
		t.Error("VPID did not reduce the miss cost")
	}
}

func TestTab1(t *testing.T) {
	table := RunTab1()
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	t.Logf("\n%s", table)
}

func TestTab2ShapeHolds(t *testing.T) {
	table, cols, err := RunTab2(Scale{Name: "tab2", Slices: 16, CachePages: 256,
		PrivPages: 24, FillerIter: 60000, DiskRequests: 16, Packets: 60})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table)
	var ept, vtlb, disk Tab2Column
	for _, c := range cols {
		switch c.Name {
		case "EPT":
			ept = c
		case "vTLB":
			vtlb = c
		case "Disk 4k":
			disk = c
		}
	}
	// Nested paging eliminates vTLB events; shadow paging is dominated
	// by them (the paper's two-orders-of-magnitude claim scales down).
	if ept.Events["vTLB Fill"] != 0 {
		t.Error("EPT run recorded vTLB fills")
	}
	if vtlb.Events["vTLB Fill"] == 0 || vtlb.Events["vTLB Fill"] < 5*ept.Events["Total VM Exits"] {
		t.Errorf("vTLB fills (%d) do not dominate EPT exits (%d)",
			vtlb.Events["vTLB Fill"], ept.Events["Total VM Exits"])
	}
	// Port I/O is the most frequent EPT exit class.
	if ept.Events["Port I/O"] < ept.Events["Memory-Mapped I/O"] ||
		ept.Events["Port I/O"] < ept.Events["Hardware Interrupts"] {
		t.Errorf("EPT: port I/O (%d) should dominate (mmio %d, hwint %d)",
			ept.Events["Port I/O"], ept.Events["Memory-Mapped I/O"], ept.Events["Hardware Interrupts"])
	}
	// Disk 4k: ~6 MMIO exits per disk operation (paper's explicit claim).
	ops := disk.Events["Disk Operations"]
	mmio := disk.Events["Memory-Mapped I/O"]
	if ops == 0 {
		t.Fatal("no disk operations")
	}
	perOp := float64(mmio) / float64(ops)
	if perOp < 4 || perOp > 10 {
		t.Errorf("MMIO per disk op = %.1f, paper says 6", perOp)
	}
	// vTLB runtime longer than EPT runtime (645 vs 470 in the paper).
	if vtlb.Seconds <= ept.Seconds {
		t.Errorf("vTLB runtime %.3f not longer than EPT %.3f", vtlb.Seconds, ept.Seconds)
	}
}

func TestAblations(t *testing.T) {
	table, rows, err := RunAblations(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table)
	for _, r := range rows {
		if strings.Contains(r.Name, "coalescing") {
			if r.Penalty <= 0 {
				t.Errorf("coalescing off did not raise CPU utilization: %+v", r)
			}
			continue
		}
		if r.Ablated < r.Baseline {
			t.Errorf("%s: ablated (%d) faster than baseline (%d)", r.Name, r.Ablated, r.Baseline)
		}
	}
}
