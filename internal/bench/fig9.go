package bench

import (
	"fmt"

	"nova/internal/guest"
	"nova/internal/hw"
)

// Fig9Row is one vTLB-miss measurement.
type Fig9Row struct {
	Label      string
	Model      hw.CPUModel
	VPID       bool
	PerMiss    hw.Cycles // measured cost of one vTLB miss
	ExitResume hw.Cycles // cost-model transition component
	VMReads    hw.Cycles // six VMREADs
	Fill       hw.Cycles // remainder: walk + shadow update
	Ns         float64
	PaperNs    float64
}

// paperFig9Ns are the per-miss totals read off Figure 9 (ns).
var paperFig9Ns = map[string]float64{
	"YNH": 1355, "CNR": 1140, "WFD": 694, "BLM": 527, "BLM VPID": 491,
}

// vtlbMissKernel measures the vTLB miss cost from inside the guest:
// it timestamps a cold pass (shadow flushed by a CR3 reload) and a warm
// pass over the same pages; the difference per page is the miss cost.
func vtlbMissKernel(pages int) guest.KernelOpts {
	return guest.KernelOpts{
		Paging: true,
		MapMB:  8,
		Workload: fmt.Sprintf(`
	call touch_pages   ; populate the shadow once
	mov eax, cr3
	mov cr3, eax       ; vTLB flush
	rdtsc
	mov [%#[1]x], eax
	mov [%#[1]x + 4], edx
	call touch_pages   ; cold pass: every touch is a vTLB miss
	rdtsc
	mov [%#[1]x + 8], eax
	mov [%#[1]x + 12], edx
	call touch_pages   ; warm pass
	rdtsc
	mov [%#[1]x + 16], eax
	mov [%#[1]x + 20], edx
	jmp finish
touch_pages:
	mov esi, 0x100000
	mov ecx, %[2]d
tp_loop:
	mov eax, [esi]
	add esi, 4096
	dec ecx
	jnz tp_loop
	ret
`, guest.ParamBase, pages),
	}
}

// RunFig9 reproduces Figure 9: the vTLB miss microbenchmark across the
// Intel processors, including the VPID effect on the Core i7.
func RunFig9() (*Table, []Fig9Row, error) {
	const pages = 256
	type spec struct {
		label string
		model hw.CPUModel
		vpid  bool
	}
	specs := []spec{
		{"YNH", hw.YNH, false},
		{"CNR", hw.CNR, false},
		{"WFD", hw.WFD, false},
		{"BLM", hw.BLM, false},
		{"BLM VPID", hw.BLM, true},
	}
	img := guest.MustBuild(vtlbMissKernel(pages))
	var rows []Fig9Row
	var vcycles uint64
	res := &Resources{}
	for _, s := range specs {
		r, err := guest.NewRunner(guest.RunnerConfig{
			Model: s.model, Mode: guest.ModeVirtVTLB, UseVPID: s.vpid,
			SchedTimerHz:  -1, // no preemption noise in the microbenchmark
			TraceCapacity: 16,
		}, img)
		if err != nil {
			return nil, nil, err
		}
		cy, err := r.RunUntilDone(1 << 40)
		if err != nil {
			return nil, nil, fmt.Errorf("fig9 %s: %w", s.label, err)
		}
		vcycles += uint64(cy)
		res.AddRun(r)
		rd64 := func(off uint64) uint64 {
			return uint64(r.ReadGuest32(guest.ParamBase+off)) |
				uint64(r.ReadGuest32(guest.ParamBase+off+4))<<32
		}
		t0, t1, t2 := rd64(0), rd64(8), rd64(16)
		perMiss := hw.Cycles((t1 - t0 - (t2 - t1)) / pages)
		cm := r.Plat.Cost

		// Cross-check against the kernel's own instrumentation: the
		// tracer records every vTLB-fill duration; subtracting the warm
		// shadow-hit cost must land on the guest-observed per-miss
		// figure. Catches drift between the cost model and the trace.
		fills := &r.Tracer.VTLBFill
		if fills.Count == 0 {
			return nil, nil, fmt.Errorf("fig9 %s: tracer saw no vTLB fills", s.label)
		}
		traceMiss := hw.Cycles(fills.Sum/fills.Count) - 2*cm.PageWalkLevel
		if diff := int64(traceMiss) - int64(perMiss); diff < -int64(perMiss)/10 || diff > int64(perMiss)/10 {
			return nil, nil, fmt.Errorf("fig9 %s: trace-derived miss cost %d disagrees with guest rdtsc %d",
				s.label, traceMiss, perMiss)
		}
		transit := cm.VMTransitCost(s.vpid)
		vmreads := 6 * cm.VMRead
		fill := hw.Cycles(0)
		if perMiss > transit+vmreads {
			fill = perMiss - transit - vmreads
		}
		rows = append(rows, Fig9Row{
			Label: s.label, Model: s.model, VPID: s.vpid,
			PerMiss: perMiss, ExitResume: transit, VMReads: vmreads, Fill: fill,
			Ns:      cm.CyclesToNs(perMiss),
			PaperNs: paperFig9Ns[s.label],
		})
	}

	t := &Table{
		Title:   "Figure 9: vTLB miss microbenchmark (cycles per miss)",
		Columns: []string{"cpu", "exit+resume", "vmread x6", "vtlb fill", "total", "ns", "paper ns"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Label, d(uint64(r.ExitResume)), d(uint64(r.VMReads)),
			d(uint64(r.Fill)), d(uint64(r.PerMiss)), f1(r.Ns), f1(r.PaperNs),
		})
	}
	t.Notes = append(t.Notes,
		"paper: the hardware transition accounts for ~80% of the total miss cost, falling with each CPU generation",
		"per-miss totals cross-checked against the tracer's vtlb-fill histogram")
	t.VirtualCycles = vcycles
	t.Resources = res
	return t, rows, nil
}
