package bench

import (
	"encoding/binary"
	"fmt"

	"nova/internal/guest"
	"nova/internal/hw"
	"nova/internal/x86"
)

// RunTab1 prints Table 1: the processors used for the microbenchmarks.
func RunTab1() *Table {
	t := &Table{
		Title:   "Table 1: Processors used for microbenchmarks",
		Columns: []string{"cpu model", "core", "frequency", "VT TLB tags", "nested paging"},
	}
	for _, m := range hw.Models() {
		tag := "no"
		if m.HasVPID {
			tag = "yes"
		}
		np := "no"
		if m.HasEPT {
			np = "yes"
		}
		t.Rows = append(t.Rows, []string{
			m.Name, m.Core, fmt.Sprintf("%.2f GHz", float64(m.FreqMHz)/1000), tag, np,
		})
	}
	return t
}

// Tab2Column is the event distribution of one benchmark run.
type Tab2Column struct {
	Name    string
	Events  map[string]uint64
	Seconds float64
}

// tab2EventOrder lists the rows in the paper's order.
var tab2EventOrder = []string{
	"vTLB Fill", "Guest Page Fault", "CR Read/Write", "vTLB Flush",
	"Port I/O", "INVLPG", "Hardware Interrupts", "Memory-Mapped I/O",
	"HLT", "Interrupt Window", "Total VM Exits", "Injected vIRQ",
	"Disk Operations",
}

// paperTab2 holds the paper's Table 2 values for reference.
var paperTab2 = map[string]map[string]uint64{
	"EPT": {
		"Port I/O": 610589, "Hardware Interrupts": 174558,
		"Memory-Mapped I/O": 76285, "HLT": 3738, "Interrupt Window": 2171,
		"Total VM Exits": 867341, "Injected vIRQ": 131982,
		"Disk Operations": 12715,
	},
	"vTLB": {
		"vTLB Fill": 181966391, "Guest Page Fault": 13987802,
		"CR Read/Write": 3000321, "vTLB Flush": 2328044,
		"Port I/O": 723274, "INVLPG": 537270, "Hardware Interrupts": 239142,
		"Memory-Mapped I/O": 75151, "HLT": 4027, "Interrupt Window": 3371,
		"Total VM Exits": 202864793, "Injected vIRQ": 177693,
		"Disk Operations": 12526,
	},
	"Disk 4k": {
		"Memory-Mapped I/O": 600102, "Hardware Interrupts": 101185,
		"Interrupt Window": 961, "Injected vIRQ": 102507,
		"Disk Operations": 100017,
	},
}

// collectEvents extracts the Table 2 counters from a finished run.
func collectEvents(r *guest.Runner, cycles hw.Cycles) Tab2Column {
	v := r.VCPU()
	ev := map[string]uint64{}
	if r.K != nil {
		ev["vTLB Fill"] = r.K.Stats.VTLBFills
		ev["Guest Page Fault"] = r.K.Stats.GuestPageFault
		ev["vTLB Flush"] = r.K.Stats.VTLBFlushes
	}
	if v != nil {
		ev["CR Read/Write"] = v.Exits[x86.ExitCRAccess]
		ev["Port I/O"] = v.Exits[x86.ExitIO]
		ev["INVLPG"] = v.Exits[x86.ExitINVLPG]
		ev["Hardware Interrupts"] = v.Exits[x86.ExitExternalInterrupt]
		ev["Memory-Mapped I/O"] = v.Exits[x86.ExitEPTViolation]
		ev["HLT"] = v.Exits[x86.ExitHLT]
		ev["Interrupt Window"] = v.Exits[x86.ExitInterruptWindow]
		ev["Total VM Exits"] = v.TotalExits() + ev["vTLB Fill"] + ev["Guest Page Fault"]
		ev["Injected vIRQ"] = v.InjectedIRQs
	}
	if r.VMM != nil {
		ev["Disk Operations"] = r.VMM.Stats.DiskRequests
	}
	return Tab2Column{Events: ev, Seconds: r.Plat.Cost.CyclesToSeconds(cycles)}
}

// RunTab2 reproduces Table 2: the distribution of virtualization events
// for the compile workload under nested paging and shadow paging, and
// for the 4-KiB disk benchmark, plus §8.5's average-exit-cost breakdown.
func RunTab2(sc Scale) (*Table, []Tab2Column, error) {
	runCfg := func(mode guest.Mode) (*guest.Runner, hw.Cycles, error) {
		img := guest.MustBuild(guest.CompileKernel(667))
		r, err := guest.NewRunner(guest.RunnerConfig{
			Model: hw.BLM, Mode: mode, UseVPID: true, HostLargePages: true,
			WithDiskServer: true,
		}, img)
		if err != nil {
			return nil, 0, err
		}
		params := make([]byte, 24)
		binary.LittleEndian.PutUint32(params[0:], uint32(sc.Slices))
		binary.LittleEndian.PutUint32(params[4:], uint32(sc.CachePages))
		binary.LittleEndian.PutUint32(params[8:], uint32(sc.PrivPages))
		binary.LittleEndian.PutUint32(params[12:], uint32(sc.FillerIter))
		binary.LittleEndian.PutUint32(params[16:], 1)
		binary.LittleEndian.PutUint32(params[20:], uint32(sc.CachePasses))
		r.WriteGuest(guest.ParamBase, params)
		cy, err := r.RunUntilDone(1 << 40)
		return r, cy, err
	}

	eptRun, eptCycles, err := runCfg(guest.ModeVirtEPT)
	if err != nil {
		return nil, nil, fmt.Errorf("tab2 ept: %w", err)
	}
	ept := collectEvents(eptRun, eptCycles)
	ept.Name = "EPT"

	vtlbRun, vtlbCycles, err := runCfg(guest.ModeVirtVTLB)
	if err != nil {
		return nil, nil, fmt.Errorf("tab2 vtlb: %w", err)
	}
	vtlb := collectEvents(vtlbRun, vtlbCycles)
	vtlb.Name = "vTLB"

	// Disk 4k benchmark column.
	img := guest.MustBuild(guest.DiskReadKernel())
	dr, err := guest.NewRunner(guest.RunnerConfig{
		Model: hw.BLM, Mode: guest.ModeVirtEPT, UseVPID: true, WithDiskServer: true,
	}, img)
	if err != nil {
		return nil, nil, err
	}
	params := make([]byte, 24)
	binary.LittleEndian.PutUint32(params[0:], 8) // 4 KiB
	binary.LittleEndian.PutUint32(params[4:], uint32(sc.DiskRequests))
	binary.LittleEndian.PutUint32(params[8:], 4096)
	binary.LittleEndian.PutUint32(params[20:], blkLayerIter)
	dr.WriteGuest(guest.ParamBase, params)
	diskCycles, err := dr.RunUntilDone(1 << 40)
	if err != nil {
		return nil, nil, fmt.Errorf("tab2 disk: %w", err)
	}
	disk := collectEvents(dr, diskCycles)
	disk.Name = "Disk 4k"

	cols := []Tab2Column{ept, vtlb, disk}
	t := &Table{
		Title:   "Table 2: Distribution of virtualization events (measured | paper)",
		Columns: []string{"event", "EPT", "paper", "vTLB", "paper", "Disk 4k", "paper"},
	}
	cell := func(v uint64, ok bool) string {
		if !ok && v == 0 {
			return "-"
		}
		return d(v)
	}
	for _, name := range tab2EventOrder {
		row := []string{name}
		for _, c := range cols {
			v, ok := c.Events[name]
			row = append(row, cell(v, ok))
			pv, pok := paperTab2[c.Name][name]
			if pok {
				row = append(row, d(pv))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"Runtime (s)",
		fmt.Sprintf("%.4f", ept.Seconds), "470", fmt.Sprintf("%.4f", vtlb.Seconds), "645",
		fmt.Sprintf("%.4f", disk.Seconds), "10"})
	t.VirtualCycles = uint64(eptCycles) + uint64(vtlbCycles) + uint64(diskCycles)
	res := &Resources{}
	res.AddRun(eptRun)
	res.AddRun(vtlbRun)
	res.AddRun(dr)
	t.Resources = res

	// §8.5: average VM exit cost breakdown for the EPT compile run.
	exits := ept.Events["Total VM Exits"]
	if exits > 0 {
		cm := eptRun.Plat.Cost
		transit := uint64(cm.VMTransitCost(true))
		avgIPC := uint64(0)
		if eptRun.K.Stats.IPCCalls > 0 {
			// Round-trip IPC cost per exit from the measured word volume.
			avgIPC = 2*uint64(cm.SyscallEntryExit) +
				3*eptRun.K.Stats.IPCWords/eptRun.K.Stats.IPCCalls*2
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"§8.5 breakdown: world switch %d cycles/exit + IPC ~%d cycles/exit; paper: 3900 total = 26%% transition + 15%% IPC + 59%% emulation",
			transit, avgIPC))
	}
	t.Notes = append(t.Notes,
		"nested paging eliminates the vTLB fill/flush classes entirely — two orders of magnitude fewer exits (paper: 867k vs 203M)",
		fmt.Sprintf("scale %q: absolute counts are ~1/1000 of the paper's full Linux build; ratios are the target", sc.Name))
	return t, cols, nil
}
