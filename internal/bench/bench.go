// Package bench regenerates every table and figure of the paper's
// evaluation (§8) on the simulated platform. Each experiment runs the
// real stack — microhypervisor, VMM, servers and genuine guest kernels —
// and prints the measured series next to the values the paper reports,
// so the reproduction target (shape: who wins, by roughly what factor,
// where crossovers fall) can be checked at a glance.
//
// Absolute durations differ from the paper by design: the workloads are
// scaled down (the paper compiles Linux for ~470 s on a 2.67 GHz
// machine; we run a synthetic compile of a few hundred million cycles)
// and the substrate is a simulator. Ratios are the result.
package bench

import (
	"fmt"
	"strings"
)

// Scale selects the workload size. The shapes are stable across scales;
// larger scales reduce noise in the small-overhead configurations.
type Scale struct {
	Name string

	// Compile workload (Figure 5 / Table 2).
	Slices      int
	CachePages  int
	CachePasses int
	PrivPages   int
	FillerIter  int

	// Disk workload (Figure 6): requests per block size.
	DiskRequests int

	// Network workload (Figure 7): packets per bandwidth point.
	Packets int
}

// Quick is the CI-friendly scale (seconds per experiment).
func Quick() Scale {
	return Scale{Name: "quick", Slices: 12, CachePages: 384, CachePasses: 3,
		PrivPages: 32, FillerIter: 10000, DiskRequests: 30, Packets: 150}
}

// Full is the paper-shaped scale (a few minutes for the whole suite).
func Full() Scale {
	return Scale{Name: "full", Slices: 40, CachePages: 448, CachePasses: 4,
		PrivPages: 48, FillerIter: 15000, DiskRequests: 200, Packets: 1000}
}

// Series is one measured line of a figure.
type Series struct {
	Label  string
	X      []float64
	Y      []float64
	YLabel string
}

// Table renders simple fixed-width result tables.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	// Prof summarizes the experiment's guest profile, when its runs
	// were profiled (zero-perturbation: the numbers in Rows are
	// bit-identical either way).
	Prof *ProfSummary `json:"prof,omitempty"`
	// VirtualCycles is the total simulated cycle count consumed by the
	// experiment's runs — a deterministic quantity, unlike HostSeconds.
	VirtualCycles uint64 `json:"virtual_cycles,omitempty"`
	// Resources aggregates the runs' deterministic consumption totals
	// (instructions, exits, IPC, DMA, ...), when the experiment ran
	// guest workloads.
	Resources *Resources `json:"resources,omitempty"`
	// Latency holds the per-request-class virtual-time latency tails
	// (exact p50/p99/p999) and critical-path segment totals, when the
	// experiment recorded request spans.
	Latency []LatencyClass `json:"latency,omitempty"`
}

func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d(v uint64) string   { return fmt.Sprintf("%d", v) }
