package bench

import (
	"encoding/binary"
	"fmt"

	"nova/internal/guest"
	"nova/internal/hw"
)

// AblationRow compares a design choice on/off.
type AblationRow struct {
	Name     string
	Baseline hw.Cycles
	Ablated  hw.Cycles
	Penalty  float64 // % slowdown without the design choice
}

// RunAblations benchmarks the design choices DESIGN.md calls out:
// MTD-filtered state transfer (§5.2), direct switching on donated SCs
// (Figure 3), the one-dimensional vTLB walk trick (§5.3) and NIC
// interrupt coalescing (§8.3).
func RunAblations(sc Scale) (*Table, []AblationRow, error) {
	var rows []AblationRow
	res := &Resources{}

	runEPT := func(mod func(*guest.RunnerConfig)) (hw.Cycles, error) {
		cfg := guest.RunnerConfig{
			Model: hw.BLM, Mode: guest.ModeVirtEPT, UseVPID: true,
			HostLargePages: true, WithDiskServer: true,
		}
		if mod != nil {
			mod(&cfg)
		}
		img := guest.MustBuild(guest.CompileKernel(667))
		r, err := guest.NewRunner(cfg, img)
		if err != nil {
			return 0, err
		}
		params := make([]byte, 24)
		binary.LittleEndian.PutUint32(params[0:], uint32(sc.Slices))
		binary.LittleEndian.PutUint32(params[4:], uint32(sc.CachePages))
		binary.LittleEndian.PutUint32(params[8:], uint32(sc.PrivPages))
		binary.LittleEndian.PutUint32(params[12:], uint32(sc.FillerIter))
		binary.LittleEndian.PutUint32(params[16:], 1)
		binary.LittleEndian.PutUint32(params[20:], uint32(sc.CachePasses))
		r.WriteGuest(guest.ParamBase, params)
		cy, err := r.RunUntilDone(1 << 40)
		res.AddRun(r)
		return cy, err
	}
	runVTLB := func(mod func(*guest.RunnerConfig)) (hw.Cycles, error) {
		cfg := guest.RunnerConfig{
			Model: hw.BLM, Mode: guest.ModeVirtVTLB, UseVPID: true,
			HostLargePages: true, WithDiskServer: true,
		}
		if mod != nil {
			mod(&cfg)
		}
		img := guest.MustBuild(guest.CompileKernel(667))
		r, err := guest.NewRunner(cfg, img)
		if err != nil {
			return 0, err
		}
		params := make([]byte, 24)
		binary.LittleEndian.PutUint32(params[0:], uint32(sc.Slices))
		binary.LittleEndian.PutUint32(params[4:], uint32(sc.CachePages))
		binary.LittleEndian.PutUint32(params[8:], uint32(sc.PrivPages))
		binary.LittleEndian.PutUint32(params[12:], uint32(sc.FillerIter))
		binary.LittleEndian.PutUint32(params[16:], 1)
		binary.LittleEndian.PutUint32(params[20:], uint32(sc.CachePasses))
		r.WriteGuest(guest.ParamBase, params)
		cy, err := r.RunUntilDone(1 << 40)
		res.AddRun(r)
		return cy, err
	}

	add := func(name string, base, abl hw.Cycles) {
		rows = append(rows, AblationRow{
			Name: name, Baseline: base, Ablated: abl,
			Penalty: (float64(abl)/float64(base) - 1) * 100,
		})
	}

	base, err := runEPT(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("ablate baseline: %w", err)
	}
	noMTD, err := runEPT(func(c *guest.RunnerConfig) { c.DisableMTDOpt = true })
	if err != nil {
		return nil, nil, err
	}
	add("MTD-filtered state transfer (§5.2)", base, noMTD)

	noDS, err := runEPT(func(c *guest.RunnerConfig) { c.DisableDirectSwitch = true })
	if err != nil {
		return nil, nil, err
	}
	add("direct switch on donated SC (Fig 3)", base, noDS)

	vtlbBase, err := runVTLB(nil)
	if err != nil {
		return nil, nil, err
	}
	noTrick, err := runVTLB(func(c *guest.RunnerConfig) { c.DisableVTLBTrick = true })
	if err != nil {
		return nil, nil, err
	}
	add("one-dimensional vTLB walk (§5.3)", vtlbBase, noTrick)

	// Interrupt coalescing: UDP receive with the cap on vs off.
	coal := func(hz int) (hw.Cycles, float64, error) {
		img := guest.MustBuild(guest.UDPReceiveKernel())
		r, err := guest.NewRunner(guest.RunnerConfig{
			Model: hw.BLM, Mode: guest.ModeDirect, UseVPID: true, NICCoalesce: hz,
		}, img)
		if err != nil {
			return 0, 0, err
		}
		params := make([]byte, 4)
		binary.LittleEndian.PutUint32(params, uint32(sc.Packets))
		r.WriteGuest(guest.ParamBase, params)
		if err := r.RunUntilGuest32(guest.RxReadyAddr, 1, 1<<32); err != nil {
			return 0, 0, err
		}
		src := hw.NewPacketSource(r.Plat.NIC, r.Plat.Queue, r.Clock().Now,
			r.Plat.Cost.FreqMHz, 1472, 512, uint64(sc.Packets))
		src.Start()
		cy, err := r.RunUntilDone(1 << 42)
		res.AddRun(r)
		return cy, r.BusyFraction() * 100, err
	}
	coalOnCy, utilOn, err := coal(20000)
	if err != nil {
		return nil, nil, err
	}
	coalOffCy, utilOff, err := coal(-1) // negative leaves hw.Config zero -> default; use 1 to disable
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, AblationRow{
		Name:    "NIC interrupt coalescing (§8.3), CPU util % with/without",
		Penalty: utilOff - utilOn,
	})

	t := &Table{
		Title:   "Ablations: NOVA design choices on vs off",
		Columns: []string{"design choice", "with (cycles)", "without (cycles)", "penalty %"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, d(uint64(r.Baseline)), d(uint64(r.Ablated)), f2(r.Penalty)})
	}
	_ = utilOn
	t.VirtualCycles = uint64(base) + uint64(noMTD) + uint64(noDS) +
		uint64(vtlbBase) + uint64(noTrick) + uint64(coalOnCy) + uint64(coalOffCy)
	t.Resources = res
	return t, rows, nil
}
