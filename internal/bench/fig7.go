package bench

import (
	"encoding/binary"
	"fmt"

	"nova/internal/guest"
	"nova/internal/hw"
)

// Fig7Point is one measurement of the UDP receive benchmark.
type Fig7Point struct {
	PacketBytes int
	MbitPerSec  float64
	Mode        guest.Mode
	Utilization float64
	IRQsPerSec  float64
	Dropped     uint64
}

// RunFig7 reproduces Figure 7: CPU overhead for receiving UDP streams
// of different bandwidths and packet sizes, native NIC vs directly
// assigned NIC.
func RunFig7(sc Scale) (*Table, []Fig7Point, error) {
	type sweep struct {
		pkt  int
		mbit []float64
	}
	sweeps := []sweep{
		{64, []float64{2, 8, 32, 64}},
		{1472, []float64{32, 124, 512, 1024}},
		{9188, []float64{64, 256, 1024}},
	}
	img := guest.MustBuild(guest.UDPReceiveKernel())
	var points []Fig7Point
	var vcycles uint64
	res := &Resources{}
	for _, sw := range sweeps {
		for _, mbit := range sw.mbit {
			for _, mode := range []guest.Mode{guest.ModeNative, guest.ModeDirect} {
				r, err := guest.NewRunner(guest.RunnerConfig{
					Model: hw.BLM, Mode: mode, UseVPID: true,
				}, img)
				if err != nil {
					return nil, nil, err
				}
				packets := sc.Packets
				params := make([]byte, 4)
				binary.LittleEndian.PutUint32(params, uint32(packets))
				r.WriteGuest(guest.ParamBase, params)
				if err := r.RunUntilGuest32(guest.RxReadyAddr, 1, 1<<32); err != nil {
					return nil, nil, fmt.Errorf("fig7 %v pkt=%d: %w", mode, sw.pkt, err)
				}
				src := hw.NewPacketSource(r.Plat.NIC, r.Plat.Queue, r.Clock().Now,
					r.Plat.Cost.FreqMHz, sw.pkt, mbit, uint64(packets))
				src.Start()
				cycles, err := r.RunUntilDone(1 << 42)
				if err != nil {
					return nil, nil, fmt.Errorf("fig7 %v pkt=%d mbit=%.0f: %w", mode, sw.pkt, mbit, err)
				}
				vcycles += uint64(cycles)
				res.AddRun(r)
				secs := r.Plat.Cost.CyclesToSeconds(cycles)
				points = append(points, Fig7Point{
					PacketBytes: sw.pkt, MbitPerSec: mbit, Mode: mode,
					Utilization: r.BusyFraction() * 100,
					IRQsPerSec:  float64(r.Plat.NIC.Stats.IRQs) / secs,
					Dropped:     r.Plat.NIC.Stats.PacketsDropped,
				})
			}
		}
	}

	t := &Table{
		Title:   "Figure 7: CPU utilization (%) receiving UDP streams, native vs direct NIC",
		Columns: []string{"pkt bytes", "Mbit/s", "native %", "direct %", "irq/s", "overhead cy/irq"},
	}
	for i := 0; i < len(points); i += 2 {
		n, dct := points[i], points[i+1]
		var perIRQ float64
		if dct.IRQsPerSec > 0 {
			perIRQ = (dct.Utilization - n.Utilization) / 100 *
				float64(2670e6) / dct.IRQsPerSec
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n.PacketBytes),
			fmt.Sprintf("%.0f", n.MbitPerSec),
			f2(n.Utilization), f2(dct.Utilization),
			fmt.Sprintf("%.0f", dct.IRQsPerSec),
			fmt.Sprintf("%.0f", perIRQ),
		})
	}
	t.Notes = append(t.Notes,
		"paper: virtualization overhead scales linearly with the interrupt rate; ~16300 cycles/interrupt at 1472B/124Mbit (§8.3);",
		"interrupt coalescing caps the rate near 20000/s, so native and direct converge at high bandwidth")
	t.VirtualCycles = vcycles
	t.Resources = res
	return t, points, nil
}
