package bench

import (
	"encoding/json"
	"fmt"
)

// CompareResult partitions the differences between two bench reports.
// Drift lists mismatches in deterministic fields — simulated results
// that must be bit-identical across hosts, so any entry is a regression
// (or an intentional change that needs a baseline refresh). Advisory
// lists differences in host-dependent fields (wall-clock durations, Go
// version, host-throughput rows), which never fail a comparison.
type CompareResult struct {
	Drift    []string
	Advisory []string
}

// Failed reports whether the comparison found deterministic drift.
func (c *CompareResult) Failed() bool { return len(c.Drift) > 0 }

// hostDependentExperiments name experiments whose table rows measure
// the host machine rather than the simulated platform. Their rows are
// advisory; their VirtualCycles totals are still simulated quantities
// and compared strictly.
var hostDependentExperiments = map[string]bool{"hostperf": true}

// Compare diffs two serialized bench reports (baseline first). It
// refuses mismatched schema versions or scales outright, since row
// layouts and workload sizes are only comparable within one schema and
// one scale.
func Compare(baseline, current []byte) (*CompareResult, error) {
	var old, new Report
	if err := json.Unmarshal(baseline, &old); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &new); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	c := &CompareResult{}
	drift := func(format string, args ...any) {
		c.Drift = append(c.Drift, fmt.Sprintf(format, args...))
	}
	advise := func(format string, args ...any) {
		c.Advisory = append(c.Advisory, fmt.Sprintf(format, args...))
	}

	if old.SchemaVersion != new.SchemaVersion {
		return nil, fmt.Errorf("schema version mismatch: baseline v%d vs current v%d (refresh the baseline)",
			old.SchemaVersion, new.SchemaVersion)
	}
	if old.Scale != new.Scale {
		return nil, fmt.Errorf("scale mismatch: baseline %q vs current %q", old.Scale, new.Scale)
	}
	if old.GoVersion != new.GoVersion {
		advise("go version: %s -> %s", old.GoVersion, new.GoVersion)
	}
	if old.TotalVirtualCycles != new.TotalVirtualCycles {
		drift("total virtual cycles: %d -> %d (Δ=%+d)",
			old.TotalVirtualCycles, new.TotalVirtualCycles,
			int64(new.TotalVirtualCycles)-int64(old.TotalVirtualCycles))
	}

	newByName := map[string]Experiment{}
	for _, e := range new.Experiments {
		newByName[e.Name] = e
	}
	seen := map[string]bool{}
	for _, oe := range old.Experiments {
		seen[oe.Name] = true
		ne, ok := newByName[oe.Name]
		if !ok {
			drift("experiment %q: present in baseline, missing from current", oe.Name)
			continue
		}
		compareExperiment(oe, ne, drift, advise)
	}
	for _, ne := range new.Experiments {
		if !seen[ne.Name] {
			drift("experiment %q: present in current, missing from baseline", ne.Name)
		}
	}
	return c, nil
}

func compareExperiment(old, new Experiment, drift, advise func(string, ...any)) {
	name := old.Name
	if old.HostSeconds != new.HostSeconds {
		advise("%s: host seconds %.2f -> %.2f", name, old.HostSeconds, new.HostSeconds)
	}
	ot, nt := old.Table, new.Table
	if (ot == nil) != (nt == nil) {
		drift("%s: table presence differs", name)
		return
	}
	if ot == nil {
		return
	}
	if ot.VirtualCycles != nt.VirtualCycles {
		drift("%s: virtual cycles %d -> %d (Δ=%+d)", name,
			ot.VirtualCycles, nt.VirtualCycles, int64(nt.VirtualCycles)-int64(ot.VirtualCycles))
	}
	rowDiff := hostDependentExperiments[name]
	report := drift
	if rowDiff {
		report = advise
	}
	if ot.Title != nt.Title {
		report("%s: title %q -> %q", name, ot.Title, nt.Title)
	}
	if fmt.Sprint(ot.Columns) != fmt.Sprint(nt.Columns) {
		report("%s: columns %v -> %v", name, ot.Columns, nt.Columns)
	}
	if len(ot.Rows) != len(nt.Rows) {
		report("%s: row count %d -> %d", name, len(ot.Rows), len(nt.Rows))
	} else {
		for i := range ot.Rows {
			if fmt.Sprint(ot.Rows[i]) != fmt.Sprint(nt.Rows[i]) {
				report("%s row %d: %v -> %v", name, i, ot.Rows[i], nt.Rows[i])
			}
		}
	}
	if fmt.Sprint(ot.Notes) != fmt.Sprint(nt.Notes) {
		report("%s: notes differ", name)
	}
	op, np := ot.Prof, nt.Prof
	switch {
	case (op == nil) != (np == nil):
		drift("%s: profile summary presence differs", name)
	case op != nil && *op != *np:
		drift("%s: profile summary %+v -> %+v", name, *op, *np)
	}
	or, nr := ot.Resources, nt.Resources
	switch {
	case (or == nil) != (nr == nil):
		drift("%s: resource profile presence differs", name)
	case or != nil && *or != *nr:
		drift("%s: resource profile %+v -> %+v", name, *or, *nr)
	}
	// Latency blocks are pure virtual-time quantities, so any movement
	// (a shifted percentile, a changed critical-path split) is a real
	// behavioral drift, never host noise.
	if fmt.Sprint(ot.Latency) != fmt.Sprint(nt.Latency) {
		drift("%s: latency block differs:\n  old: %+v\n  new: %+v", name, ot.Latency, nt.Latency)
	}
}
