package bench

import (
	"fmt"

	"nova/internal/prof"
)

// benchProfPeriod is the sampling grid the profiled experiments use.
// Profiling is zero-perturbation (enforced by TestProfilerABIdentity),
// so enabling it here cannot move any number in the tables.
const benchProfPeriod = 10_000

// benchSpanCapacity sizes the per-CPU span rings of the experiments
// that record request spans (enough to hold every request of a quick
// or full run without wrapping). Span recording is zero-perturbation
// (enforced by TestSpanABIdentity), so attaching it cannot move any
// number in the tables.
const benchSpanCapacity = 1 << 16

// mergeProf folds one profiled run into an experiment's summary:
// sample counts accumulate, and the hottest address across all of the
// experiment's runs wins the top slot.
func mergeProf(sum **ProfSummary, d *prof.Data) {
	if d == nil {
		return
	}
	s := *sum
	if s == nil {
		s = &ProfSummary{}
		*sum = s
	}
	s.Samples += d.TotalSamples()
	if hot := d.Hot(1); len(hot) > 0 && hot[0].TotalCycles() > s.TopCycles {
		s.TopCycles = hot[0].TotalCycles()
		s.TopAddr = fmt.Sprintf("0x%08x", hot[0].Addr)
	}
}
