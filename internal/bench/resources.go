package bench

import "nova/internal/guest"

// Resources is one experiment's aggregate resource profile: the
// deterministic consumption totals of every run the experiment
// performed, summed. All fields are simulated quantities, so the
// compare gate diffs them strictly — a change in how many exits or
// instructions an experiment consumes is drift even when its headline
// figures still round the same way.
type Resources struct {
	Runs         int    `json:"runs"`
	Instructions uint64 `json:"instructions"`
	VMExits      uint64 `json:"vm_exits,omitempty"`
	Hypercalls   uint64 `json:"hypercalls,omitempty"`
	IPCCalls     uint64 `json:"ipc_calls,omitempty"`
	VTLBFills    uint64 `json:"vtlb_fills,omitempty"`
	VTLBFlushes  uint64 `json:"vtlb_flushes,omitempty"`
	Injections   uint64 `json:"injections,omitempty"`
	Emulated     uint64 `json:"emulated,omitempty"`
	DiskRequests uint64 `json:"disk_requests,omitempty"`
	DMABytes     uint64 `json:"dma_bytes,omitempty"`
	RXPackets    uint64 `json:"rx_packets,omitempty"`
}

// AddRun folds one finished runner's aggregates into the profile.
func (rs *Resources) AddRun(r *guest.Runner) {
	if rs == nil || r == nil {
		return
	}
	rs.Runs++
	rs.Instructions += r.InstRet()
	if v := r.VCPU(); v != nil {
		rs.VMExits += v.TotalExits()
	}
	if r.K != nil {
		rs.Hypercalls += r.K.Stats.Hypercalls
		rs.IPCCalls += r.K.Stats.IPCCalls
		rs.VTLBFills += r.K.Stats.VTLBFills
		rs.VTLBFlushes += r.K.Stats.VTLBFlushes
		rs.Injections += r.K.Stats.Injections
	}
	if r.VMM != nil {
		rs.Emulated += r.VMM.Stats.Emulated
		rs.DiskRequests += r.VMM.Stats.DiskRequests
	}
	if r.Plat != nil {
		if ahci := r.Plat.AHCI; ahci != nil {
			rs.DMABytes += ahci.Stats.DMABytes
		}
		if nic := r.Plat.NIC; nic != nil {
			rs.RXPackets += nic.Stats.PacketsReceived
		}
	}
}
