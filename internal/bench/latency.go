package bench

import (
	"sort"

	"nova/internal/span"
)

// LatencyClass is one request class's virtual-time latency tail in an
// experiment's Latency block: exact nearest-rank percentiles over every
// completed request of every run the experiment performed, plus the
// critical-path segment totals. All values are simulated cycles, so the
// block is bit-stable across hosts and compared strictly by
// `nova-bench -compare`.
type LatencyClass struct {
	Class string `json:"class"`
	Count int    `json:"count"`
	Min   uint64 `json:"min"`
	Mean  uint64 `json:"mean"`
	P50   uint64 `json:"p50"`
	P99   uint64 `json:"p99"`
	P999  uint64 `json:"p999"`
	Max   uint64 `json:"max"`

	Segs []SegCycles `json:"segs,omitempty"`
}

// SegCycles is one critical-path segment's total over a class.
type SegCycles struct {
	Seg    string `json:"seg"`
	Cycles int64  `json:"cycles"`
}

// latencyAcc accumulates request spans across an experiment's runs.
type latencyAcc struct {
	durs [span.NumClasses][]uint64
	segs [span.NumClasses][span.NumSegs]int64
}

// add folds one run's recorded spans into the accumulator. A nil
// recorder (spans not attached) is a no-op.
func (a *latencyAcc) add(rec *span.Recorder) error {
	if rec == nil {
		return nil
	}
	b, err := rec.Encode()
	if err != nil {
		return err
	}
	d, err := span.Decode(b)
	if err != nil {
		return err
	}
	for _, s := range span.BuildSpans(d) {
		if !s.Closed || int(s.Class) >= int(span.NumClasses) {
			continue
		}
		a.durs[s.Class] = append(a.durs[s.Class], s.Duration())
		for i, v := range s.Segs {
			a.segs[s.Class][i] += v
		}
	}
	return nil
}

// block renders the accumulated spans as the experiment's Latency
// block, classes in class order, empty classes omitted.
func (a *latencyAcc) block() []LatencyClass {
	var out []LatencyClass
	for c := span.Class(0); c < span.NumClasses; c++ {
		ds := a.durs[c]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var sum uint64
		for _, v := range ds {
			sum += v
		}
		lc := LatencyClass{
			Class: c.String(), Count: len(ds),
			Min: ds[0], Max: ds[len(ds)-1], Mean: sum / uint64(len(ds)),
			P50:  span.Percentile(ds, 0.50),
			P99:  span.Percentile(ds, 0.99),
			P999: span.Percentile(ds, 0.999),
		}
		for i := span.Seg(0); i < span.NumSegs; i++ {
			if a.segs[c][i] != 0 {
				lc.Segs = append(lc.Segs, SegCycles{Seg: i.String(), Cycles: a.segs[c][i]})
			}
		}
		out = append(out, lc)
	}
	return out
}
