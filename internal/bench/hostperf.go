package bench

import (
	"encoding/binary"
	"fmt"

	"nova/internal/guest"
	"nova/internal/hw"
	"nova/internal/walltime"
)

// RunHostPerf measures how fast the *simulator itself* executes guest
// code: retired guest instructions per host wall-clock second (guest
// MIPS), with the interpreter's host-side fast paths peeled off layer
// by layer — superblock fusion on top of the decoded-instruction cache
// ("fused"), the cache alone ("step"), and neither ("bare") — for the
// compile workload across execution modes.
//
// This is the one experiment in the suite about the host, not the
// simulated machine — hence the walltime import. The simulated results
// of all three settings are bit-identical (enforced by
// TestDecodeCacheABIdentity, TestSuperblockABIdentity and the CI
// identity steps); only the host seconds may differ, and the speedup
// columns quantify by how much.
func RunHostPerf(sc Scale) (*Table, error) {
	type cfgSpec struct {
		label string
		cfg   guest.RunnerConfig
	}
	specs := []cfgSpec{
		{"native", guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeNative}},
		{"ept", guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeVirtEPT, UseVPID: true, HostLargePages: true}},
		{"vtlb", guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeVirtVTLB, UseVPID: true, HostLargePages: true}},
	}

	var vcycles uint64
	res := &Resources{}
	run := func(cfg guest.RunnerConfig, disableCache, disableSB bool) (insts uint64, seconds float64, err error) {
		cfg.DisableDecodeCache = disableCache
		cfg.DisableSuperblocks = disableSB
		img := guest.MustBuild(guest.CompileKernel(667))
		if cfg.Mode == guest.ModeVirtEPT || cfg.Mode == guest.ModeVirtVTLB {
			cfg.WithDiskServer = true
		}
		r, err := guest.NewRunner(cfg, img)
		if err != nil {
			return 0, 0, err
		}
		params := make([]byte, 24)
		binary.LittleEndian.PutUint32(params[0:], uint32(sc.Slices))
		binary.LittleEndian.PutUint32(params[4:], uint32(sc.CachePages))
		binary.LittleEndian.PutUint32(params[8:], uint32(sc.PrivPages))
		binary.LittleEndian.PutUint32(params[12:], uint32(sc.FillerIter))
		binary.LittleEndian.PutUint32(params[16:], 1)
		binary.LittleEndian.PutUint32(params[20:], uint32(sc.CachePasses))
		r.WriteGuest(guest.ParamBase, params)
		sw := walltime.Start()
		cy, err := r.RunUntilDone(1 << 40)
		if err != nil {
			return 0, 0, err
		}
		vcycles += uint64(cy)
		res.AddRun(r)
		return r.InstRet(), sw.Seconds(), nil
	}

	t := &Table{
		Title:   "Host performance: guest MIPS (retired guest instructions / host second)",
		Columns: []string{"mode", "guest insts", "MIPS fused", "MIPS step", "MIPS bare", "fused/bare", "fused/step"},
	}
	for _, s := range specs {
		fusedInsts, fusedSec, err := run(s.cfg, false, false)
		if err != nil {
			return nil, fmt.Errorf("hostperf %s (fused): %w", s.label, err)
		}
		stepInsts, stepSec, err := run(s.cfg, false, true)
		if err != nil {
			return nil, fmt.Errorf("hostperf %s (step): %w", s.label, err)
		}
		bareInsts, bareSec, err := run(s.cfg, true, true)
		if err != nil {
			return nil, fmt.Errorf("hostperf %s (bare): %w", s.label, err)
		}
		if fusedInsts != stepInsts || stepInsts != bareInsts {
			return nil, fmt.Errorf("hostperf %s: retired-instruction counts diverged across fast-path settings (fused %d, step %d, bare %d) — a host-side layer leaked into the simulation", s.label, fusedInsts, stepInsts, bareInsts)
		}
		mips := func(insts uint64, sec float64) float64 {
			if sec <= 0 {
				return 0
			}
			return float64(insts) / sec / 1e6
		}
		fused, step, bare := mips(fusedInsts, fusedSec), mips(stepInsts, stepSec), mips(bareInsts, bareSec)
		ratio := func(num, den float64) string {
			if den <= 0 {
				return "-"
			}
			return f2(num / den)
		}
		t.Rows = append(t.Rows, []string{s.label, d(fusedInsts), f1(fused), f1(step), f1(bare),
			ratio(fused, bare), ratio(fused, step)})
	}
	t.Notes = append(t.Notes,
		"host-side metric: wall-clock throughput of the simulator process, not a simulated quantity",
		"fused = decode cache + superblocks, step = decode cache only, bare = neither; all three retire identical instruction streams")
	t.VirtualCycles = vcycles
	t.Resources = res
	return t, nil
}
