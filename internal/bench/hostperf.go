package bench

import (
	"encoding/binary"
	"fmt"

	"nova/internal/guest"
	"nova/internal/hw"
	"nova/internal/walltime"
)

// RunHostPerf measures how fast the *simulator itself* executes guest
// code: retired guest instructions per host wall-clock second (guest
// MIPS), with the decoded-instruction cache enabled and disabled, for
// the compile workload across execution modes.
//
// This is the one experiment in the suite about the host, not the
// simulated machine — hence the walltime import. The simulated results
// of the cache-on and cache-off runs are bit-identical (enforced by
// TestDecodeCacheABIdentity and the CI identity step); only the host
// seconds may differ, and the speedup column quantifies by how much.
func RunHostPerf(sc Scale) (*Table, error) {
	type cfgSpec struct {
		label string
		cfg   guest.RunnerConfig
	}
	specs := []cfgSpec{
		{"native", guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeNative}},
		{"ept", guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeVirtEPT, UseVPID: true, HostLargePages: true}},
		{"vtlb", guest.RunnerConfig{Model: hw.BLM, Mode: guest.ModeVirtVTLB, UseVPID: true, HostLargePages: true}},
	}

	var vcycles uint64
	res := &Resources{}
	run := func(cfg guest.RunnerConfig, disableCache bool) (insts uint64, seconds float64, err error) {
		cfg.DisableDecodeCache = disableCache
		img := guest.MustBuild(guest.CompileKernel(667))
		if cfg.Mode == guest.ModeVirtEPT || cfg.Mode == guest.ModeVirtVTLB {
			cfg.WithDiskServer = true
		}
		r, err := guest.NewRunner(cfg, img)
		if err != nil {
			return 0, 0, err
		}
		params := make([]byte, 24)
		binary.LittleEndian.PutUint32(params[0:], uint32(sc.Slices))
		binary.LittleEndian.PutUint32(params[4:], uint32(sc.CachePages))
		binary.LittleEndian.PutUint32(params[8:], uint32(sc.PrivPages))
		binary.LittleEndian.PutUint32(params[12:], uint32(sc.FillerIter))
		binary.LittleEndian.PutUint32(params[16:], 1)
		binary.LittleEndian.PutUint32(params[20:], uint32(sc.CachePasses))
		r.WriteGuest(guest.ParamBase, params)
		sw := walltime.Start()
		cy, err := r.RunUntilDone(1 << 40)
		if err != nil {
			return 0, 0, err
		}
		vcycles += uint64(cy)
		res.AddRun(r)
		return r.InstRet(), sw.Seconds(), nil
	}

	t := &Table{
		Title:   "Host performance: guest MIPS (retired guest instructions / host second)",
		Columns: []string{"mode", "guest insts", "MIPS cached", "MIPS uncached", "speedup"},
	}
	for _, s := range specs {
		onInsts, onSec, err := run(s.cfg, false)
		if err != nil {
			return nil, fmt.Errorf("hostperf %s (cache on): %w", s.label, err)
		}
		offInsts, offSec, err := run(s.cfg, true)
		if err != nil {
			return nil, fmt.Errorf("hostperf %s (cache off): %w", s.label, err)
		}
		if onInsts != offInsts {
			return nil, fmt.Errorf("hostperf %s: retired-instruction counts diverged with the cache toggled (%d vs %d) — the cache leaked into the simulation", s.label, onInsts, offInsts)
		}
		mips := func(insts uint64, sec float64) float64 {
			if sec <= 0 {
				return 0
			}
			return float64(insts) / sec / 1e6
		}
		onMIPS, offMIPS := mips(onInsts, onSec), mips(offInsts, offSec)
		speedup := "-"
		if offMIPS > 0 {
			speedup = f2(onMIPS / offMIPS)
		}
		t.Rows = append(t.Rows, []string{s.label, d(onInsts), f1(onMIPS), f1(offMIPS), speedup})
	}
	t.Notes = append(t.Notes,
		"host-side metric: wall-clock throughput of the simulator process, not a simulated quantity",
		"cached/uncached runs retire identical instruction streams; only host speed differs")
	t.VirtualCycles = vcycles
	t.Resources = res
	return t, nil
}
