package bench

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// sampleReport builds a small report the way nova-bench does, then
// serializes it so the tests exercise the real artifact path.
func sampleReport(t *testing.T) []byte {
	t.Helper()
	r := &Report{Scale: "quick"}
	r.Add("fig5", &Table{
		Title:         "Figure 5",
		Columns:       []string{"config", "measured %"},
		Rows:          [][]string{{"Native", "100.0"}, {"NOVA", "99.2"}},
		VirtualCycles: 12345,
	})
	r.Add("hostperf", &Table{
		Title:         "Host performance",
		Columns:       []string{"mode", "MIPS"},
		Rows:          [][]string{{"native", "250.0"}},
		VirtualCycles: 777,
	})
	r.SetHostSeconds("fig5", 1.5)
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestReportProvenance(t *testing.T) {
	b := string(sampleReport(t))
	for _, want := range []string{
		fmt.Sprintf(`"schema_version": %d`, ReportSchemaVersion),
		`"scale": "quick"`,
		`"go_version": "` + runtime.Version() + `"`,
		`"total_virtual_cycles": 13122`, // 12345 + 777
	} {
		if !strings.Contains(b, want) {
			t.Errorf("report JSON missing %s:\n%s", want, b)
		}
	}
}

func TestCompareIdentical(t *testing.T) {
	b := sampleReport(t)
	res, err := Compare(b, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Errorf("identical reports drifted: %v", res.Drift)
	}
	if len(res.Advisory) != 0 {
		t.Errorf("identical reports yielded advisories: %v", res.Advisory)
	}
}

func TestCompareDetectsDeterministicDrift(t *testing.T) {
	base := sampleReport(t)
	cur := strings.Replace(string(base), `"99.2"`, `"98.7"`, 1)
	cur = strings.Replace(cur, `"virtual_cycles": 12345`, `"virtual_cycles": 12999`, 1)
	cur = strings.Replace(cur, `"total_virtual_cycles": 13122`, `"total_virtual_cycles": 13776`, 1)
	res, err := Compare(base, []byte(cur))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("changed simulated results not flagged as drift")
	}
	joined := strings.Join(res.Drift, "\n")
	for _, want := range []string{"fig5 row 1", "fig5: virtual cycles", "total virtual cycles"} {
		if !strings.Contains(joined, want) {
			t.Errorf("drift missing %q:\n%s", want, joined)
		}
	}
}

func TestCompareHostFieldsAdvisory(t *testing.T) {
	base := sampleReport(t)
	cur := strings.Replace(string(base), `"host_seconds": 1.5`, `"host_seconds": 9.9`, 1)
	cur = strings.Replace(cur, runtime.Version(), "go0.0-other", 1)
	cur = strings.Replace(cur, `"250.0"`, `"40.0"`, 1) // hostperf MIPS row
	res, err := Compare(base, []byte(cur))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Errorf("host-dependent changes flagged as drift: %v", res.Drift)
	}
	if len(res.Advisory) != 3 {
		t.Errorf("advisory = %v, want go-version + host-seconds + hostperf-row entries", res.Advisory)
	}
}

func TestCompareExperimentSetDrift(t *testing.T) {
	base := sampleReport(t)
	r := &Report{Scale: "quick"}
	r.Add("fig5", &Table{Title: "Figure 5", Columns: []string{"config", "measured %"},
		Rows: [][]string{{"Native", "100.0"}, {"NOVA", "99.2"}}, VirtualCycles: 12345})
	cur, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("missing experiment not flagged")
	}
}

func TestCompareScaleMismatch(t *testing.T) {
	base := sampleReport(t)
	cur := strings.Replace(string(base), `"scale": "quick"`, `"scale": "full"`, 1)
	if _, err := Compare(base, []byte(cur)); err == nil {
		t.Fatal("scale mismatch not rejected")
	}
	cur = strings.Replace(string(base),
		fmt.Sprintf(`"schema_version": %d`, ReportSchemaVersion), `"schema_version": 1`, 1)
	if _, err := Compare(base, []byte(cur)); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}
