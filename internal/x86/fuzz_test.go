package x86

import (
	"math/rand"
	"testing"
)

// TestInterpreterSurvivesRandomBytes feeds the interpreter pseudo-random
// instruction streams: every Step must either make progress or return a
// typed error (exception, exit) — never panic and never loop without
// consuming input. This is the robustness a virtualization layer needs
// against adversarial guests (§4.2).
func TestInterpreterSurvivesRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		env := newFlatEnv(1 << 16)
		rng.Read(env.mem[0x1000:0x3000])
		// An IVT/IDT full of valid-enough vectors pointing at HLT so
		// delivered exceptions terminate quickly.
		env.mem[0x4000] = 0xf4 // hlt
		for v := 0; v < 256; v++ {
			env.mem[v*4] = 0x00
			env.mem[v*4+1] = 0x40 // offset 0x4000
			env.mem[v*4+2] = 0x00
			env.mem[v*4+3] = 0x00 // segment 0
		}
		st := &CPUState{}
		st.Reset()
		st.EIP = 0x1000
		st.GPR[ESP] = 0x8000
		ip := NewInterp(env, st, Intercepts{})
		for i := 0; i < 500 && !st.Halted; i++ {
			err := ip.Step()
			if err == nil {
				continue
			}
			if _, ok := err.(*VMExit); ok {
				break // triple fault or similar: fine
			}
			t.Fatalf("trial %d: unexpected error type %T: %v", trial, err, err)
		}
	}
}

// TestInterceptedInterpreterSurvivesRandomBytes is the same under full
// interception: random code may exit at any point; exits carry sane
// qualifications.
func TestInterceptedInterpreterSurvivesRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	for trial := 0; trial < 200; trial++ {
		env := newFlatEnv(1 << 16)
		rng.Read(env.mem[0x1000:0x3000])
		st := &CPUState{}
		st.Reset()
		st.EIP = 0x1000
		st.GPR[ESP] = 0x8000
		ip := NewInterp(env, st, VTLBVirt())
		for i := 0; i < 300 && !st.Halted; i++ {
			err := ip.Step()
			if err == nil {
				continue
			}
			exit, ok := err.(*VMExit)
			if !ok {
				t.Fatalf("trial %d: %T: %v", trial, err, err)
			}
			switch exit.Reason {
			case ExitIO, ExitHLT, ExitCPUID, ExitCRAccess, ExitINVLPG,
				ExitMSR, ExitTripleFault, ExitRDTSC:
				// Emulate "skip" like a VMM would, so execution continues.
				if exit.Reason == ExitTripleFault {
					i = 300
					break
				}
				st.EIP += uint32(exit.InstLen)
			default:
				t.Fatalf("trial %d: unexpected exit %v", trial, exit.Reason)
			}
		}
	}
}

// FuzzDecode is the native fuzz target for the instruction decoder.
// The seed corpus concentrates on guest-byte patterns the taint
// analyzer's sinks guard: SIB bytes exercising every scale-bit value
// (the decoder masks sib>>6 to two bits before effectiveAddr shifts by
// it), ModRM reg fields at the 3-bit boundary (CR-access GPR
// selection), group-3 TEST immediates, and shift counts above the
// architectural mask.
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		{0x8b, 0x04, 0x20},                         // mov eax, [eax+eiz]   scale=0
		{0x8b, 0x04, 0x65, 1, 2, 3, 4},             // SIB scale=1, disp32
		{0x8b, 0x04, 0xb3},                         // mov eax, [ebx+esi*4] scale=2
		{0x8b, 0x04, 0xf5, 0xff, 0xff, 0xff, 0xff}, // SIB scale=3 (both top bits)
		{0x0f, 0x22, 0xf8},                         // mov cr7, eax: reg field = 7
		{0x0f, 0x20, 0xc0},                         // mov eax, cr0
		{0xf6, 0xc0, 0xff},                         // grp3 TEST r/m8, imm8
		{0xf7, 0xc0, 0xde, 0xad, 0xbe, 0xef},       // grp3 TEST r/m32, imm32
		{0xc1, 0xe0, 0xff},                         // shl eax, 0xff: count > 31
		{0xd3, 0xe8},                               // shr eax, cl
		{0x66, 0x67, 0x8b, 0x04, 0xf5, 1, 2, 3, 4}, // prefix soup + SIB scale=3
		{0xf3, 0x26, 0xa5},                         // rep es: movsd
	}
	for _, s := range seeds {
		f.Add(s, true)
		f.Add(s, false)
	}
	f.Fuzz(func(t *testing.T, buf []byte, def32 bool) {
		inst, err := Decode(&sliceFetcher{b: buf}, def32)
		if err != nil {
			return
		}
		if inst.Len <= 0 || inst.Len > 15 {
			t.Fatalf("decoded length %d from %x", inst.Len, buf)
		}
		if inst.Scale < 0 || inst.Scale > 3 {
			t.Fatalf("SIB scale %d out of range from %x", inst.Scale, buf)
		}
	})
}

// TestDecoderNeverPanicsOnRandomInput decodes random byte strings.
func TestDecoderNeverPanicsOnRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 16)
	for trial := 0; trial < 5000; trial++ {
		rng.Read(buf)
		for _, def32 := range []bool{true, false} {
			f := &sliceFetcher{b: buf}
			inst, err := Decode(f, def32)
			if err != nil {
				continue
			}
			if inst.Len <= 0 || inst.Len > 15 {
				t.Fatalf("decoded length %d from %x", inst.Len, buf)
			}
		}
	}
}
