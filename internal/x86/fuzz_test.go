package x86

import (
	"math/rand"
	"testing"
)

// TestInterpreterSurvivesRandomBytes feeds the interpreter pseudo-random
// instruction streams: every Step must either make progress or return a
// typed error (exception, exit) — never panic and never loop without
// consuming input. This is the robustness a virtualization layer needs
// against adversarial guests (§4.2).
func TestInterpreterSurvivesRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		env := newFlatEnv(1 << 16)
		rng.Read(env.mem[0x1000:0x3000])
		// An IVT/IDT full of valid-enough vectors pointing at HLT so
		// delivered exceptions terminate quickly.
		env.mem[0x4000] = 0xf4 // hlt
		for v := 0; v < 256; v++ {
			env.mem[v*4] = 0x00
			env.mem[v*4+1] = 0x40 // offset 0x4000
			env.mem[v*4+2] = 0x00
			env.mem[v*4+3] = 0x00 // segment 0
		}
		st := &CPUState{}
		st.Reset()
		st.EIP = 0x1000
		st.GPR[ESP] = 0x8000
		ip := NewInterp(env, st, Intercepts{})
		for i := 0; i < 500 && !st.Halted; i++ {
			err := ip.Step()
			if err == nil {
				continue
			}
			if _, ok := err.(*VMExit); ok {
				break // triple fault or similar: fine
			}
			t.Fatalf("trial %d: unexpected error type %T: %v", trial, err, err)
		}
	}
}

// TestInterceptedInterpreterSurvivesRandomBytes is the same under full
// interception: random code may exit at any point; exits carry sane
// qualifications.
func TestInterceptedInterpreterSurvivesRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	for trial := 0; trial < 200; trial++ {
		env := newFlatEnv(1 << 16)
		rng.Read(env.mem[0x1000:0x3000])
		st := &CPUState{}
		st.Reset()
		st.EIP = 0x1000
		st.GPR[ESP] = 0x8000
		ip := NewInterp(env, st, VTLBVirt())
		for i := 0; i < 300 && !st.Halted; i++ {
			err := ip.Step()
			if err == nil {
				continue
			}
			exit, ok := err.(*VMExit)
			if !ok {
				t.Fatalf("trial %d: %T: %v", trial, err, err)
			}
			switch exit.Reason {
			case ExitIO, ExitHLT, ExitCPUID, ExitCRAccess, ExitINVLPG,
				ExitMSR, ExitTripleFault, ExitRDTSC:
				// Emulate "skip" like a VMM would, so execution continues.
				if exit.Reason == ExitTripleFault {
					i = 300
					break
				}
				st.EIP += uint32(exit.InstLen)
			default:
				t.Fatalf("trial %d: unexpected exit %v", trial, exit.Reason)
			}
		}
	}
}

// TestDecoderNeverPanicsOnRandomInput decodes random byte strings.
func TestDecoderNeverPanicsOnRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 16)
	for trial := 0; trial < 5000; trial++ {
		rng.Read(buf)
		for _, def32 := range []bool{true, false} {
			f := &sliceFetcher{b: buf}
			inst, err := Decode(f, def32)
			if err != nil {
				continue
			}
			if inst.Len <= 0 || inst.Len > 15 {
				t.Fatalf("decoded length %d from %x", inst.Len, buf)
			}
		}
	}
}
