package x86

import "fmt"

// This file is host-side performance machinery only, like the decoded-
// instruction cache it builds on. A superblock is a straight-line run of
// already-decoded, provably-no-fault instructions within one physical
// code page, executed as a single fused loop: one fetch translation, no
// per-step rollback snapshots, and one batched cycle charge by the
// binding layer. Nothing here may influence simulated behaviour — the
// A/B identity matrix (superblocks on/off across exec modes, including
// profiler-attached runs) enforces bit-identical cycles, traces, RAM
// and final vCPU state.
//
// Why fusing is invisible to the simulation:
//
//   - Every fused instruction satisfies InstFusible: register-only or
//     immediate forms that cannot fault, exit, touch memory or devices,
//     or add ExtraCycles. Mid-block there is nothing to observe and
//     nothing that can diverge.
//   - All instructions lie within one physical — and therefore one
//     virtual — 4K page. The sequential interpreter's per-instruction
//     fetch translations would all hit the TLB entry the block's single
//     fetch used: hits are free (no charge, no trace), so skipping them
//     changes only hw.TLBStats.Hits, the sanctioned host-side counter
//     (DESIGN.md §3a).
//   - The binding layer caps the block (StepBlock's max) so virtual
//     time cannot run past the next platform event or the run-loop
//     deadline: no event, interrupt-window or preemption check that the
//     sequential loop would have performed mid-block could have fired.
//     When anything is already pending, the binding layer forces
//     max=1 and the existing single-step path runs instead.
//   - A relative branch may only terminate a block, so the cached
//     instruction sequence always matches the addresses execution
//     actually visits; a taken branch simply ends the block where the
//     sequential loop would re-fetch.
//
// Invalidation rides the decode cache's per-page write generations
// (guest SMC, VMM/BIOS writes, DMA): once a page's generation moves,
// every block hit on it re-proves the block with one memcmp of its
// byte span against the snapshot taken at build time, and rebuilds on
// mismatch. The cache key's def32 bit covers CS default-size changes;
// paging-mode or mapping changes are caught by the per-fetch
// translation that precedes every block run.

// Superblock is a cached straight-line run of fusible instructions
// starting at one page offset. enc snapshots the span bytes the run was
// decoded from: after the page is written, one memcmp of the live span
// against enc re-proves the whole chain (the instructions are
// contiguous, so the span covers every byte any of them decoded).
type Superblock struct {
	insts []*Inst
	enc   []byte
}

// SuperblockStats counts superblock activity. Host-side only: the
// binding layers surface these through the stat registry, and nothing
// simulated reads them.
type SuperblockStats struct {
	// Built counts superblocks constructed (at least two instructions).
	Built uint64
	// Hits counts fused executions of a cached superblock.
	Hits uint64
	// Fused counts instructions retired inside fused executions.
	Fused uint64
	// Invalidated counts cached superblocks dropped because the bytes
	// under them actually changed (byte-verified after a page write)
	// or the cache overflowed.
	Invalidated uint64
	// CutPending counts single-steps forced by the binding layer
	// because an interrupt, recall or injection was already pending.
	CutPending uint64
	// CutClamp counts fused executions truncated below the cached
	// block's length by the event-horizon/deadline cap.
	CutClamp uint64
	// CutHook counts single-steps forced by an attached StepHook
	// (profiler sampling needs per-instruction granularity).
	CutHook uint64
	// CutShort counts entry points with no fusible run of length >= 2.
	CutShort uint64
	// CutSlow counts fallbacks where the fetch had no fast path
	// (MMIO-backed code) or the fetch translation faulted.
	CutSlow uint64
}

// instBranch reports whether inst is one of the relative control
// transfers admitted by instNoFault (Jcc, LOOPcc, JCXZ, JMP rel). Such
// an instruction may terminate a superblock but never sit inside one:
// execution after a taken branch would leave the cached straight-line
// sequence.
func instBranch(inst *Inst) bool {
	if inst.TwoByte {
		return inst.Op >= 0x80 && inst.Op <= 0x8f // Jcc relZ
	}
	switch {
	case inst.Op >= 0x70 && inst.Op <= 0x7f: // Jcc rel8
		return true
	case inst.Op >= 0xe0 && inst.Op <= 0xe3: // LOOPcc, JCXZ
		return true
	}
	return inst.Op == 0xe9 || inst.Op == 0xeb // JMP rel
}

// InstFusible reports whether inst may be part of a superblock: provably
// no-fault (see instNoFault) and free of ExtraCycles side charges, so a
// fused run's cost is exactly its instruction count times the base
// instruction cost. MUL and DIV group-3 forms charge extra latency and
// are excluded; everything else instNoFault admits retires for the flat
// base cost. Exported for nova-prof, which annotates hot addresses with
// their fusibility.
func InstFusible(inst *Inst) bool {
	if !instNoFault(inst) {
		return false
	}
	if !inst.TwoByte && (inst.Op == 0xf6 || inst.Op == 0xf7) && inst.RegOp >= 4 {
		return false
	}
	return true
}

// buildSuperblock chains decoded instructions forward from off,
// stopping at the first non-fusible or page-spilling instruction; a
// relative branch is included only as the final instruction. On a stale
// page, cached decodes are byte-verified before being chained (and
// re-decoded when their bytes changed). Runs shorter than two
// instructions yield the cache's noBlock sentinel, so StepBlock stops
// re-probing those entry points.
func (ip *Interp) buildSuperblock(dp *decodedPage, data []byte, off int, def32, fresh bool) *Superblock {
	var insts []*Inst
	pos := off
	for pos < codePageSize {
		inst := dp.insts[pos]
		if inst != nil && !fresh && !instValid(inst, data, pos) {
			inst = nil
		}
		if inst == nil {
			in, err := Decode(&pageFetcher{data: data, off: pos}, def32)
			if err != nil {
				break // page spill or bad encoding: end the block before it
			}
			cacheInst(dp, data, pos, in)
			inst = in
		}
		if !InstFusible(inst) {
			break
		}
		insts = append(insts, inst)
		pos += inst.Len
		if instBranch(inst) {
			break
		}
	}
	if len(insts) < 2 {
		return ip.Cache.noBlock
	}
	enc := make([]byte, pos-off)
	copy(enc, data[off:pos])
	return &Superblock{insts: insts, enc: enc}
}

// StepBlock fetches the superblock at CS:EIP and executes up to max of
// its instructions as one fused run, or falls back to the single-step
// path when no block applies. The caller charges the retired-instruction
// delta exactly as it does after Step — a fused run retires n
// instructions with zero ExtraCycles, so the one batched charge equals
// the n sequential charges it replaces. The caller must ensure max
// instructions fit before the next platform event and the run deadline,
// and must force max=1 (or call Step) when an interrupt, recall or
// injection is pending.
func (ip *Interp) StepBlock(max uint64) error {
	st := ip.St
	if st.Halted {
		return nil // waiting for an interrupt; the run loop advances time
	}
	if ip.StepHook != nil || ip.Cache == nil || ip.pager == nil || max < 2 {
		if ip.Cache != nil && ip.StepHook != nil {
			ip.Cache.SB.CutHook++
		}
		return ip.Step()
	}
	prevShadow := st.IntShadow
	st.IntShadow = false
	def32 := st.Seg[CS].Def32
	va := st.Seg[CS].Base + st.EIP
	data, page, gen, err := ip.pager.ExecPage(st, va)
	if err != nil {
		ip.Cache.SB.CutSlow++
		return ip.stepDecoded(nil, err, prevShadow)
	}
	if data == nil {
		// MMIO-backed fetch: decode per byte through the environment,
		// exactly like Step's slow path (the translation just performed
		// is hit in the TLB, so the re-reads are free).
		ip.Cache.SB.CutSlow++
		f := &execFetcher{ip: ip, pos: st.EIP}
		inst, derr := Decode(f, def32)
		return ip.stepDecoded(inst, derr, prevShadow)
	}
	off := int(va & (codePageSize - 1))
	dp, fresh := ip.Cache.page(page, def32, gen)
	sb := dp.blocks[off]
	if sb != nil && sb != ip.Cache.noBlock && !fresh &&
		!bytesEqual(data[off:off+len(sb.enc)], sb.enc) {
		// The page was written inside this block's span (guest SMC, DMA):
		// the chain is stale. Drop it and rebuild from the live bytes.
		ip.Cache.SB.Invalidated++
		dp.nblocks--
		ip.Cache.liveBlocks--
		dp.blocks[off] = nil
		sb = nil
	}
	if sb == nil {
		sb = ip.buildSuperblock(dp, data, off, def32, fresh)
		dp.blocks[off] = sb
		if sb != ip.Cache.noBlock {
			ip.Cache.SB.Built++
			dp.nblocks++
			ip.Cache.liveBlocks++
		}
	}
	if sb == ip.Cache.noBlock {
		ip.Cache.SB.CutShort++
		inst, derr := ip.decodeFromPage(dp, data, off, def32, fresh)
		return ip.stepDecoded(inst, derr, prevShadow)
	}
	n := len(sb.insts)
	if uint64(n) > max {
		n = int(max)
		ip.Cache.SB.CutClamp++
	}
	ip.Cache.SB.Hits++
	ip.Cache.SB.Fused += uint64(n)
	for _, inst := range sb.insts[:n] {
		// Mirror the sequential loop exactly: each step consumes the
		// interrupt shadow (STI mid-block may set it for the next
		// step), advances EIP past the instruction, then executes.
		st.IntShadow = false
		st.EIP += uint32(inst.Len)
		if err := ip.exec(inst); err != nil {
			// invariant: InstFusible admitted an instruction whose exec
			// failed — a classification bug in the simulator itself,
			// never reachable from guest input.
			panic(fmt.Sprintf("x86: fused no-fault instruction %v failed: %v", inst, err))
		}
	}
	ip.InstRet += uint64(n)
	return nil
}
