package x86

// This file is host-side performance machinery only. Nothing in it may
// influence simulated behaviour: the decoded-instruction cache and the
// page-span fetcher exist so the interpreter's hot loop avoids re-doing
// host work (per-byte Env.MemRead calls, instruction decode) whose
// simulated cost is charged elsewhere. Virtual-cycle accounting, trace
// output and guest-visible state must be bit-identical with the cache
// attached or not; the determinism A/B test enforces this.

// codePageSize is the unit of the decoded-instruction cache: one small
// page, matching the granularity of address translation and of the
// physical-memory write generations that invalidate cached decodes.
const codePageSize = 4096

// ExecPager is an optional Env extension providing direct host access to
// the RAM page backing an instruction fetch. ExecPage must perform
// exactly the translation work — cycle charges, TLB fills, trace events,
// faults and exits — that a one-byte MemRead(va, AccessExec) would, and
// additionally return the whole backing physical page as a raw slice,
// a stable identifier for it (its physical page number), and the page's
// current write generation.
//
// A nil data slice with a nil error means "no fast path" (the page is
// MMIO-backed or otherwise not plain RAM); the interpreter then falls
// back to fetching through MemRead, which is free of double charging
// because the translation just performed is hit in the TLB.
type ExecPager interface {
	ExecPage(st *CPUState, va uint32) (data []byte, page uint64, gen uint64, err error)
}

// decodeKey identifies one cached code page: decoded instructions depend
// on the page's bytes and on the code segment's default operand size.
type decodeKey struct {
	page  uint64
	def32 bool
}

// decodedPage holds the decode results of one physical page, indexed by
// page offset. Only instructions contained entirely within the page are
// cached; gen is the physical page's write generation at fill time.
type decodedPage struct {
	gen   uint64
	insts [codePageSize]*Inst
}

// decodeCacheMaxPages bounds host memory use. Overflow resets the whole
// cache: dropping entries is always safe (they are re-decoded on demand)
// and code working sets larger than this are rare.
const decodeCacheMaxPages = 64

// DecodeCache memoizes instruction decode per physical code page. It is
// shared per vCPU and validated against physical-page write generations,
// so guest stores into code pages (self-modifying code), VMM or BIOS
// writes, and device DMA all invalidate stale decodes uniformly —
// regardless of which virtual mapping the writes went through.
type DecodeCache struct {
	pages map[decodeKey]*decodedPage

	// One-entry MRU memo: consecutive fetches overwhelmingly hit the
	// same code page, and the map hash dominates the lookup otherwise.
	lastKey decodeKey
	last    *decodedPage
}

// NewDecodeCache returns an empty cache.
func NewDecodeCache() *DecodeCache {
	return &DecodeCache{pages: make(map[decodeKey]*decodedPage)}
}

// page returns the (fresh) decoded page for key, resetting it when the
// backing page's write generation moved.
func (c *DecodeCache) page(page uint64, def32 bool, gen uint64) *decodedPage {
	key := decodeKey{page: page, def32: def32}
	dp := c.last
	if dp == nil || c.lastKey != key {
		dp = c.pages[key]
		if dp == nil {
			if len(c.pages) >= decodeCacheMaxPages {
				c.pages = make(map[decodeKey]*decodedPage, decodeCacheMaxPages)
			}
			dp = &decodedPage{gen: gen}
			c.pages[key] = dp
		}
		c.lastKey, c.last = key, dp
	}
	if dp.gen != gen {
		*dp = decodedPage{gen: gen}
	}
	return dp
}

// errPageSpill signals that a decode ran off the end of its code page;
// the interpreter retries through the slow per-byte path, which handles
// the next page's translation (and its faults and charges) properly.
type errPageSpill struct{}

func (errPageSpill) Error() string { return "x86: instruction fetch crossed a page boundary" }

// pageFetcher feeds the decoder from a raw code-page slice.
type pageFetcher struct {
	data []byte
	off  int
}

func (f *pageFetcher) FetchByte() (byte, error) {
	if f.off >= len(f.data) {
		return 0, errPageSpill{}
	}
	b := f.data[f.off]
	f.off++
	return b, nil
}
