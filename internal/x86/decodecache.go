package x86

// This file is host-side performance machinery only. Nothing in it may
// influence simulated behaviour: the decoded-instruction cache and the
// page-span fetcher exist so the interpreter's hot loop avoids re-doing
// host work (per-byte Env.MemRead calls, instruction decode) whose
// simulated cost is charged elsewhere. Virtual-cycle accounting, trace
// output and guest-visible state must be bit-identical with the cache
// attached or not; the determinism A/B test enforces this.

// codePageSize is the unit of the decoded-instruction cache: one small
// page, matching the granularity of address translation and of the
// physical-memory write generations that invalidate cached decodes.
const codePageSize = 4096

// ExecPager is an optional Env extension providing direct host access to
// the RAM page backing an instruction fetch. ExecPage must perform
// exactly the translation work — cycle charges, TLB fills, trace events,
// faults and exits — that a one-byte MemRead(va, AccessExec) would, and
// additionally return the whole backing physical page as a raw slice,
// a stable identifier for it (its physical page number), and the page's
// current write generation.
//
// A nil data slice with a nil error means "no fast path" (the page is
// MMIO-backed or otherwise not plain RAM); the interpreter then falls
// back to fetching through MemRead, which is free of double charging
// because the translation just performed is hit in the TLB.
type ExecPager interface {
	ExecPage(st *CPUState, va uint32) (data []byte, page uint64, gen uint64, err error)
}

// decodeKey identifies one cached code page: decoded instructions depend
// on the page's bytes and on the code segment's default operand size.
type decodeKey struct {
	page  uint64
	def32 bool
}

// decodedPage holds the decode results of one physical page, indexed by
// page offset. Only instructions contained entirely within the page are
// cached; gen is the physical page's write generation at fill time.
//
// Staleness is detected in two tiers. While the page's write generation
// still equals gen, every cached entry is trivially valid and lookups
// are a bare array load. Once any store lands in the page — guest SMC,
// VMM or BIOS writes, device DMA — the generation moves and the page
// enters verify mode for good: each lookup then memcmps the entry's
// recorded encoding (Inst.enc, Superblock.enc) against the live page
// bytes, dropping and re-decoding only entries whose bytes actually
// changed. Decode is pure in the bytes, so matching bytes prove the
// cached result. This keeps code pages that also hold writable data
// (a guest patching one routine, a DMA buffer sharing the page) from
// repeatedly wiping every decode on the page, which would make the
// cache a net loss on such workloads.
//
// blocks caches superblocks (see superblock.go) by their entry offset,
// verified the same way over their whole byte span. nblocks counts the
// real (non-sentinel) blocks currently cached, so whole-cache resets
// can be accounted without scanning the array.
type decodedPage struct {
	gen     uint64
	insts   [codePageSize]*Inst
	blocks  [codePageSize]*Superblock
	nblocks int
}

// decodeCacheMaxPages bounds host memory use. Overflow resets the whole
// cache: dropping entries is always safe (they are re-decoded on demand)
// and code working sets larger than this are rare.
const decodeCacheMaxPages = 64

// DecodeCache memoizes instruction decode per physical code page. It is
// shared per vCPU and validated against physical-page write generations,
// so guest stores into code pages (self-modifying code), VMM or BIOS
// writes, and device DMA all invalidate stale decodes uniformly —
// regardless of which virtual mapping the writes went through.
type DecodeCache struct {
	pages map[decodeKey]*decodedPage

	// One-entry MRU memo: consecutive fetches overwhelmingly hit the
	// same code page, and the map hash dominates the lookup otherwise.
	lastKey decodeKey
	last    *decodedPage

	// SB counts superblock activity (see superblock.go). Host-side
	// observability only; nothing simulated reads it.
	SB SuperblockStats

	// liveBlocks tracks the real superblocks across all cached pages,
	// so a whole-cache reset can account its invalidations without
	// ranging over the page map.
	liveBlocks int

	// noBlock marks entry points where no run of at least two fusible
	// instructions exists (per cache, so machines in one process share
	// no mutable-looking globals).
	noBlock *Superblock
}

// NewDecodeCache returns an empty cache.
func NewDecodeCache() *DecodeCache {
	return &DecodeCache{
		pages:   make(map[decodeKey]*decodedPage),
		noBlock: &Superblock{},
	}
}

// page returns the decoded page for key and whether it is fresh: fresh
// means the backing page's write generation still matches fill time, so
// every cached entry is valid as-is. A stale page is NOT reset — its
// entries are individually byte-verified at lookup (see instValid and
// the superblock span check), so stores into the data half of a mixed
// code/data page cost a short memcmp instead of a full re-decode.
func (c *DecodeCache) page(page uint64, def32 bool, gen uint64) (dp *decodedPage, fresh bool) {
	key := decodeKey{page: page, def32: def32}
	dp = c.last
	if dp == nil || c.lastKey != key {
		dp = c.pages[key]
		if dp == nil {
			if len(c.pages) >= decodeCacheMaxPages {
				c.SB.Invalidated += uint64(c.liveBlocks)
				c.liveBlocks = 0
				c.pages = make(map[decodeKey]*decodedPage, decodeCacheMaxPages)
			}
			dp = &decodedPage{gen: gen}
			c.pages[key] = dp
		}
		c.lastKey, c.last = key, dp
	}
	return dp, dp.gen == gen
}

// instValid reports whether a cached decode still matches the live page
// bytes it was made from. Called only on stale pages; on fresh pages the
// generation match already proves validity.
func instValid(inst *Inst, data []byte, off int) bool {
	return bytesEqual(data[off:off+inst.Len], inst.enc[:inst.Len])
}

// cacheInst records a decode in the page, snapshotting the bytes it was
// made from so later lookups can verify it after the page is written.
func cacheInst(dp *decodedPage, data []byte, off int, inst *Inst) {
	copy(inst.enc[:], data[off:off+inst.Len])
	dp.insts[off] = inst
}

// bytesEqual is bytes.Equal without the import: spans here are at most
// 15 bytes (one instruction) or a few dozen (one superblock), where the
// simple loop is as fast as the vectorized runtime call.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// errPageSpill signals that a decode ran off the end of its code page;
// the interpreter retries through the slow per-byte path, which handles
// the next page's translation (and its faults and charges) properly.
type errPageSpill struct{}

func (errPageSpill) Error() string { return "x86: instruction fetch crossed a page boundary" }

// pageFetcher feeds the decoder from a raw code-page slice.
type pageFetcher struct {
	data []byte
	off  int
}

func (f *pageFetcher) FetchByte() (byte, error) {
	if f.off >= len(f.data) {
		return 0, errPageSpill{}
	}
	b := f.data[f.off]
	f.off++
	return b, nil
}
