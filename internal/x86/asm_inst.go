package x86

import "strings"

var segPrefix = [6]byte{0x26, 0x2e, 0x36, 0x3e, 0x64, 0x65}

// prefixOp emits the operand-size prefix when size disagrees with the
// current mode's default.
func (a *Assembler) prefixOp(size int) {
	if size == 2 && a.bits == 32 || size == 4 && a.bits == 16 {
		a.emit(0x66)
	}
}

// immZSize is the immediate width for full-size operands in this mode.
func (a *Assembler) relSize(size int) int {
	if size == 2 {
		return 2
	}
	return 4
}

// memPrefixes emits segment-override and address-size prefixes for a
// memory operand. It must run before the opcode.
func (a *Assembler) memPrefixes(m opd) {
	if m.seg >= 0 {
		a.emit(segPrefix[m.seg])
	}
	if a.use16Addr(m) != (a.bits == 16) {
		a.emit(0x67)
	}
}

// use16Addr decides the addressing width of a memory operand.
func (a *Assembler) use16Addr(m opd) bool {
	if m.addr16 {
		return true
	}
	if m.base < 0 && m.index < 0 {
		return a.bits == 16
	}
	return false
}

// emitModRM encodes regOp plus a register or memory r/m operand.
func (a *Assembler) emitModRM(regOp int, rm opd) {
	if rm.kind == opdReg || rm.kind == opdCreg || rm.kind == opdSreg {
		a.emit(byte(3<<6 | regOp<<3 | rm.reg))
		return
	}
	if a.use16Addr(rm) {
		a.emitModRM16(regOp, rm)
		return
	}
	disp := rm.disp
	// Pure displacement.
	if rm.base < 0 && rm.index < 0 {
		a.emit(byte(regOp<<3 | 5))
		a.emit32(disp)
		return
	}
	needSIB := rm.index >= 0 || rm.base == ESP
	mod := 0
	dispSize := 0
	switch {
	case disp == 0 && rm.base != EBP && rm.base >= 0:
		mod, dispSize = 0, 0
	case rm.base < 0:
		mod, dispSize = 0, 4 // index-only form requires disp32
	case int32(disp) >= -128 && int32(disp) <= 127 && !rm.symbolic:
		mod, dispSize = 1, 1
	default:
		mod, dispSize = 2, 4
	}
	if needSIB {
		a.emit(byte(mod<<6 | regOp<<3 | 4))
		idx := 4 // none
		if rm.index >= 0 {
			idx = rm.index
		}
		base := 5 // none (mod 0)
		if rm.base >= 0 {
			base = rm.base
		} else {
			mod = 0
		}
		a.emit(byte(rm.scale<<6 | idx<<3 | base))
	} else {
		a.emit(byte(mod<<6 | regOp<<3 | rm.base))
	}
	switch dispSize {
	case 1:
		a.emit(byte(disp))
	case 4:
		a.emit32(disp)
	}
}

// emitModRM16 encodes 16-bit addressing forms.
func (a *Assembler) emitModRM16(regOp int, rm opd) {
	disp := rm.disp
	if rm.base < 0 && rm.index < 0 {
		a.emit(byte(regOp<<3 | 6))
		a.emit16(disp)
		return
	}
	// Map (base, index) to the r/m encoding.
	combo := -1
	b, x := rm.base, rm.index
	pair := func(p, q int) bool { return b == p && x == q || b == q && x == p }
	switch {
	case pair(EBX, ESI):
		combo = 0
	case pair(EBX, EDI):
		combo = 1
	case pair(EBP, ESI):
		combo = 2
	case pair(EBP, EDI):
		combo = 3
	case b == ESI && x < 0:
		combo = 4
	case b == EDI && x < 0:
		combo = 5
	case b == EBP && x < 0:
		combo = 6
	case b == EBX && x < 0:
		combo = 7
	}
	if combo < 0 {
		a.errorf("unencodable 16-bit address")
		return
	}
	switch {
	case disp == 0 && combo != 6 && !rm.symbolic:
		a.emit(byte(regOp<<3 | combo))
	case int32(disp) >= -128 && int32(disp) <= 127 && !rm.symbolic:
		a.emit(byte(1<<6 | regOp<<3 | combo))
		a.emit(byte(disp))
	default:
		a.emit(byte(2<<6 | regOp<<3 | combo))
		a.emit16(disp)
	}
}

var aluIdx = map[string]int{"add": 0, "or": 1, "adc": 2, "sbb": 3, "and": 4, "sub": 5, "xor": 6, "cmp": 7}
var shiftIdx = map[string]int{"rol": 0, "ror": 1, "rcl": 2, "rcr": 3, "shl": 4, "sal": 4, "shr": 5, "sar": 7}
var grp3Idx = map[string]int{"not": 2, "neg": 3, "mul": 4, "imul1": 5, "div": 6, "idiv": 7}
var ccIdx = map[string]int{
	"o": 0, "no": 1, "b": 2, "c": 2, "nae": 2, "ae": 3, "nb": 3, "nc": 3,
	"e": 4, "z": 4, "ne": 5, "nz": 5, "be": 6, "na": 6, "a": 7, "nbe": 7,
	"s": 8, "ns": 9, "p": 10, "pe": 10, "np": 11, "po": 11,
	"l": 12, "nge": 12, "ge": 13, "nl": 13, "le": 14, "ng": 14, "g": 15, "nle": 15,
}

// opSizeOf derives the operand size from the operands, preferring
// explicit register sizes and size hints.
func (a *Assembler) opSizeOf(ops []opd) int {
	for _, o := range ops {
		if o.kind == opdReg && o.size > 0 {
			return o.size
		}
	}
	for _, o := range ops {
		if o.size > 0 {
			return o.size
		}
	}
	return 0
}

func (a *Assembler) defSize() int {
	if a.bits == 16 {
		return 2
	}
	return 4
}

// doInst assembles one instruction line.
func (a *Assembler) doInst(mnem, rest string) {
	// REP prefixes wrap a string instruction.
	switch mnem {
	case "rep", "repe", "repz":
		a.emit(0xf3)
		m2, r2 := splitMnemonic(rest)
		a.doInst(m2, r2)
		return
	case "repne", "repnz":
		a.emit(0xf2)
		m2, r2 := splitMnemonic(rest)
		a.doInst(m2, r2)
		return
	case "lock":
		a.emit(0xf0)
		m2, r2 := splitMnemonic(rest)
		a.doInst(m2, r2)
		return
	}

	var ops []opd
	if strings.TrimSpace(rest) != "" {
		for _, s := range splitOperands(rest) {
			o, ok := a.parseOperand(s)
			if !ok {
				if a.pass == 2 {
					a.errorf("bad operand %q in %s %s", s, mnem, rest)
				}
				return
			}
			ops = append(ops, o)
		}
	}

	if idx, ok := aluIdx[mnem]; ok && len(ops) == 2 {
		a.encodeALU(idx, ops[0], ops[1])
		return
	}
	if idx, ok := shiftIdx[mnem]; ok && len(ops) == 2 {
		a.encodeShift(idx, ops[0], ops[1])
		return
	}
	if idx, ok := grp3Idx[mnem]; ok && len(ops) == 1 {
		a.encodeGrp3(idx, ops[0])
		return
	}
	if strings.HasPrefix(mnem, "j") && len(ops) == 1 {
		if cc, ok := ccIdx[mnem[1:]]; ok {
			a.encodeJcc(cc, ops[0])
			return
		}
	}
	if strings.HasPrefix(mnem, "set") && len(ops) == 1 {
		if cc, ok := ccIdx[mnem[3:]]; ok {
			a.memPrefixes0(ops[0])
			a.emit(0x0f, byte(0x90+cc))
			a.emitModRM(0, ops[0])
			return
		}
	}
	if strings.HasPrefix(mnem, "cmov") && len(ops) == 2 {
		if cc, ok := ccIdx[mnem[4:]]; ok {
			size := a.opSizeOf(ops)
			a.memPrefixes0(ops[1])
			a.prefixOp(size)
			a.emit(0x0f, byte(0x40+cc))
			a.emitModRM(ops[0].reg, ops[1])
			return
		}
	}

	switch mnem {
	case "mov":
		a.encodeMov(ops)
	case "test":
		a.encodeTest(ops)
	case "xchg":
		if len(ops) == 2 {
			size := a.opSizeOf(ops)
			dst, src := ops[0], ops[1]
			if dst.kind == opdMem {
				dst, src = src, dst
			}
			a.memPrefixes0(src)
			a.prefixOp(size)
			a.emit(byteOpcode(0x86, size))
			a.emitModRM(dst.reg, src)
		}
	case "lea":
		if len(ops) == 2 && ops[0].kind == opdReg && ops[1].kind == opdMem {
			a.memPrefixes(ops[1])
			a.prefixOp(ops[0].size)
			a.emit(0x8d)
			a.emitModRM(ops[0].reg, ops[1])
		} else {
			a.errorf("lea needs reg, [mem]")
		}
	case "bt", "bts", "btr", "btc":
		a.encodeBitTest(mnem, ops)
	case "cmpxchg":
		if len(ops) == 2 {
			size := a.opSizeOf(ops)
			a.memPrefixes0(ops[0])
			a.prefixOp(size)
			a.emit(0x0f, byteOpcode(0xb0, size))
			a.emitModRM(ops[1].reg, ops[0])
		} else {
			a.errorf("cmpxchg needs 2 operands")
		}
	case "xadd":
		if len(ops) == 2 {
			size := a.opSizeOf(ops)
			a.memPrefixes0(ops[0])
			a.prefixOp(size)
			a.emit(0x0f, byteOpcode(0xc0, size))
			a.emitModRM(ops[1].reg, ops[0])
		} else {
			a.errorf("xadd needs 2 operands")
		}
	case "bsf", "bsr":
		if len(ops) == 2 && ops[0].kind == opdReg {
			a.memPrefixes0(ops[1])
			a.prefixOp(ops[0].size)
			opc := byte(0xbc)
			if mnem == "bsr" {
				opc = 0xbd
			}
			a.emit(0x0f, opc)
			a.emitModRM(ops[0].reg, ops[1])
		} else {
			a.errorf("%s needs reg, r/m", mnem)
		}
	case "bswap":
		if len(ops) == 1 && ops[0].kind == opdReg && ops[0].size == 4 {
			a.emit(0x0f, 0xc8+byte(ops[0].reg))
		} else {
			a.errorf("bswap needs a 32-bit register")
		}
	case "shld", "shrd":
		if len(ops) == 3 {
			size := a.opSizeOf(ops[:2])
			a.memPrefixes0(ops[0])
			a.prefixOp(size)
			opc := byte(0xa4)
			if mnem == "shrd" {
				opc = 0xac
			}
			if ops[2].kind == opdReg && ops[2].size == 1 && ops[2].reg == ECX {
				a.emit(0x0f, opc+1)
				a.emitModRM(ops[1].reg, ops[0])
			} else {
				a.emit(0x0f, opc)
				a.emitModRM(ops[1].reg, ops[0])
				a.emit(byte(ops[2].val))
			}
		} else {
			a.errorf("%s needs 3 operands", mnem)
		}
	case "movzx", "movsx":
		if len(ops) != 2 {
			a.errorf("%s needs 2 operands", mnem)
			return
		}
		srcSize := ops[1].size
		if srcSize == 0 {
			a.errorf("%s memory source needs a size hint", mnem)
			return
		}
		base := byte(0xb6)
		if mnem == "movsx" {
			base = 0xbe
		}
		if srcSize == 2 {
			base++
		}
		a.memPrefixes0(ops[1])
		a.prefixOp(ops[0].size)
		a.emit(0x0f, base)
		a.emitModRM(ops[0].reg, ops[1])
	case "inc", "dec":
		a.encodeIncDec(mnem == "inc", ops)
	case "push":
		a.encodePush(ops)
	case "pop":
		a.encodePop(ops)
	case "imul":
		a.encodeIMul(ops)
	case "jmp":
		a.encodeJmp(ops)
	case "call":
		a.encodeCall(ops)
	case "ret":
		if len(ops) == 1 {
			a.emit(0xc2)
			a.emit16(ops[0].val)
		} else {
			a.emit(0xc3)
		}
	case "retf":
		a.emit(0xcb)
	case "loop":
		a.encodeRel8(0xe2, ops)
	case "loope", "loopz":
		a.encodeRel8(0xe1, ops)
	case "loopne", "loopnz":
		a.encodeRel8(0xe0, ops)
	case "jcxz":
		if a.bits == 32 {
			a.emit(0x67)
		}
		a.encodeRel8(0xe3, ops)
	case "jecxz":
		if a.bits == 16 {
			a.emit(0x67)
		}
		a.encodeRel8(0xe3, ops)
	case "int":
		if len(ops) == 1 {
			if ops[0].val == 3 {
				a.emit(0xcc)
			} else {
				a.emit(0xcd, byte(ops[0].val))
			}
		}
	case "int3":
		a.emit(0xcc)
	case "iret":
		if a.bits == 32 {
			a.emit(0x66)
		}
		a.emit(0xcf)
	case "iretd":
		if a.bits == 16 {
			a.emit(0x66)
		}
		a.emit(0xcf)
	case "in":
		a.encodeIn(ops)
	case "out":
		a.encodeOut(ops)
	case "lgdt", "lidt":
		if len(ops) == 1 && ops[0].kind == opdMem {
			a.memPrefixes(ops[0])
			a.emit(0x0f, 0x01)
			reg := 2
			if mnem == "lidt" {
				reg = 3
			}
			a.emitModRM(reg, ops[0])
		} else {
			a.errorf("%s needs a memory operand", mnem)
		}
	case "invlpg":
		if len(ops) == 1 && ops[0].kind == opdMem {
			a.memPrefixes(ops[0])
			a.emit(0x0f, 0x01)
			a.emitModRM(7, ops[0])
		} else {
			a.errorf("invlpg needs a memory operand")
		}
	// Zero-operand instructions.
	case "nop":
		a.emit(0x90)
	case "hlt":
		a.emit(0xf4)
	case "cli":
		a.emit(0xfa)
	case "sti":
		a.emit(0xfb)
	case "cld":
		a.emit(0xfc)
	case "std":
		a.emit(0xfd)
	case "clc":
		a.emit(0xf8)
	case "stc":
		a.emit(0xf9)
	case "cmc":
		a.emit(0xf5)
	case "leave":
		a.emit(0xc9)
	case "pushf":
		a.emit(0x9c)
	case "popf":
		a.emit(0x9d)
	case "pushfd":
		a.prefixOp(4)
		a.emit(0x9c)
	case "popfd":
		a.prefixOp(4)
		a.emit(0x9d)
	case "pusha", "pushad":
		if mnem == "pushad" {
			a.prefixOp(4)
		}
		a.emit(0x60)
	case "popa", "popad":
		if mnem == "popad" {
			a.prefixOp(4)
		}
		a.emit(0x61)
	case "cpuid":
		a.emit(0x0f, 0xa2)
	case "rdtsc":
		a.emit(0x0f, 0x31)
	case "rdmsr":
		a.emit(0x0f, 0x32)
	case "wrmsr":
		a.emit(0x0f, 0x30)
	case "wbinvd":
		a.emit(0x0f, 0x09)
	case "ud2":
		a.emit(0x0f, 0x0b)
	case "cbw":
		a.prefixOp(2)
		a.emit(0x98)
	case "cwde":
		a.prefixOp(4)
		a.emit(0x98)
	case "cdq":
		a.prefixOp(4)
		a.emit(0x99)
	case "movsb":
		a.emit(0xa4)
	case "movsw":
		a.prefixOp(2)
		a.emit(0xa5)
	case "movsd":
		a.prefixOp(4)
		a.emit(0xa5)
	case "cmpsb":
		a.emit(0xa6)
	case "stosb":
		a.emit(0xaa)
	case "stosw":
		a.prefixOp(2)
		a.emit(0xab)
	case "stosd":
		a.prefixOp(4)
		a.emit(0xab)
	case "lodsb":
		a.emit(0xac)
	case "lodsw":
		a.prefixOp(2)
		a.emit(0xad)
	case "lodsd":
		a.prefixOp(4)
		a.emit(0xad)
	case "scasb":
		a.emit(0xae)
	default:
		a.errorf("unknown mnemonic %q", mnem)
	}
}

// memPrefixes0 emits memory prefixes only when the operand is memory.
func (a *Assembler) memPrefixes0(o opd) {
	if o.kind == opdMem {
		a.memPrefixes(o)
	}
}

// byteOpcode selects the byte-form opcode when size==1.
func byteOpcode(base byte, size int) byte {
	if size == 1 {
		return base
	}
	return base + 1
}

func (a *Assembler) encodeALU(idx int, dst, src opd) {
	size := a.opSizeOf([]opd{dst, src})
	if size == 0 {
		a.errorf("operand size unknown; add byte/word/dword")
		return
	}
	switch {
	case src.kind == opdImm:
		a.memPrefixes0(dst)
		a.prefixOp(size)
		if size == 1 {
			a.emit(0x80)
			a.emitModRM(idx, dst)
			a.emit(byte(src.val))
		} else if !src.symbolic && int32(src.val) >= -128 && int32(src.val) <= 127 {
			a.emit(0x83)
			a.emitModRM(idx, dst)
			a.emit(byte(src.val))
		} else {
			a.emit(0x81)
			a.emitModRM(idx, dst)
			a.emitZ(src.val, size)
		}
	case dst.kind == opdReg && src.kind == opdMem:
		a.memPrefixes(src)
		a.prefixOp(size)
		a.emit(byteOpcode(byte(idx<<3|0x02), size))
		a.emitModRM(dst.reg, src)
	case src.kind == opdReg:
		a.memPrefixes0(dst)
		a.prefixOp(size)
		a.emit(byteOpcode(byte(idx<<3), size))
		a.emitModRM(src.reg, dst)
	default:
		a.errorf("bad ALU operand combination")
	}
}

func (a *Assembler) encodeShift(idx int, dst, src opd) {
	size := a.opSizeOf([]opd{dst})
	if size == 0 {
		a.errorf("shift operand size unknown")
		return
	}
	a.memPrefixes0(dst)
	a.prefixOp(size)
	if src.kind == opdReg && src.size == 1 && src.reg == ECX {
		a.emit(byteOpcode(0xd2, size))
		a.emitModRM(idx, dst)
		return
	}
	if src.kind != opdImm {
		a.errorf("shift count must be CL or immediate")
		return
	}
	a.emit(byteOpcode(0xc0, size))
	a.emitModRM(idx, dst)
	a.emit(byte(src.val))
}

func (a *Assembler) encodeGrp3(idx int, dst opd) {
	size := a.opSizeOf([]opd{dst})
	if size == 0 {
		a.errorf("operand size unknown")
		return
	}
	a.memPrefixes0(dst)
	a.prefixOp(size)
	a.emit(byteOpcode(0xf6, size))
	a.emitModRM(idx, dst)
}

func (a *Assembler) encodeIncDec(inc bool, ops []opd) {
	if len(ops) != 1 {
		a.errorf("inc/dec need one operand")
		return
	}
	o := ops[0]
	size := a.opSizeOf(ops)
	if o.kind == opdReg && size >= 2 {
		a.prefixOp(size)
		base := byte(0x40)
		if !inc {
			base = 0x48
		}
		a.emit(base + byte(o.reg))
		return
	}
	if size == 0 {
		a.errorf("operand size unknown")
		return
	}
	a.memPrefixes0(o)
	a.prefixOp(size)
	a.emit(byteOpcode(0xfe, size))
	reg := 0
	if !inc {
		reg = 1
	}
	a.emitModRM(reg, o)
}

func (a *Assembler) encodePush(ops []opd) {
	if len(ops) != 1 {
		a.errorf("push needs one operand")
		return
	}
	o := ops[0]
	switch o.kind {
	case opdReg:
		a.prefixOp(o.size)
		a.emit(0x50 + byte(o.reg))
	case opdSreg:
		switch o.reg {
		case ES:
			a.emit(0x06)
		case CS:
			a.emit(0x0e)
		case SS:
			a.emit(0x16)
		case DS:
			a.emit(0x1e)
		case FS:
			a.emit(0x0f, 0xa0)
		case GS:
			a.emit(0x0f, 0xa8)
		}
	case opdImm:
		if !o.symbolic && int32(o.val) >= -128 && int32(o.val) <= 127 {
			a.emit(0x6a, byte(o.val))
		} else {
			a.emit(0x68)
			a.emitZ(o.val, a.defSize())
		}
	case opdMem:
		a.memPrefixes(o)
		a.emit(0xff)
		a.emitModRM(6, o)
	}
}

func (a *Assembler) encodePop(ops []opd) {
	if len(ops) != 1 {
		a.errorf("pop needs one operand")
		return
	}
	o := ops[0]
	switch o.kind {
	case opdReg:
		a.prefixOp(o.size)
		a.emit(0x58 + byte(o.reg))
	case opdSreg:
		switch o.reg {
		case ES:
			a.emit(0x07)
		case SS:
			a.emit(0x17)
		case DS:
			a.emit(0x1f)
		case FS:
			a.emit(0x0f, 0xa1)
		case GS:
			a.emit(0x0f, 0xa9)
		default:
			a.errorf("cannot pop cs")
		}
	case opdMem:
		a.memPrefixes(o)
		a.emit(0x8f)
		a.emitModRM(0, o)
	}
}

func (a *Assembler) encodeIMul(ops []opd) {
	switch len(ops) {
	case 1:
		a.encodeGrp3(grp3Idx["imul1"], ops[0])
	case 2:
		size := a.opSizeOf(ops)
		a.memPrefixes0(ops[1])
		a.prefixOp(size)
		a.emit(0x0f, 0xaf)
		a.emitModRM(ops[0].reg, ops[1])
	case 3:
		size := a.opSizeOf(ops)
		a.memPrefixes0(ops[1])
		a.prefixOp(size)
		if !ops[2].symbolic && int32(ops[2].val) >= -128 && int32(ops[2].val) <= 127 {
			a.emit(0x6b)
			a.emitModRM(ops[0].reg, ops[1])
			a.emit(byte(ops[2].val))
		} else {
			a.emit(0x69)
			a.emitModRM(ops[0].reg, ops[1])
			a.emitZ(ops[2].val, size)
		}
	}
}

func (a *Assembler) encodeMov(ops []opd) {
	if len(ops) != 2 {
		a.errorf("mov needs 2 operands")
		return
	}
	dst, src := ops[0], ops[1]
	switch {
	case dst.kind == opdCreg && src.kind == opdReg:
		a.emit(0x0f, 0x22)
		a.emit(byte(3<<6 | dst.reg<<3 | src.reg))
	case dst.kind == opdReg && src.kind == opdCreg:
		a.emit(0x0f, 0x20)
		a.emit(byte(3<<6 | src.reg<<3 | dst.reg))
	case dst.kind == opdSreg:
		a.memPrefixes0(src)
		a.emit(0x8e)
		a.emitModRM(dst.reg, src)
	case src.kind == opdSreg:
		a.memPrefixes0(dst)
		a.emit(0x8c)
		a.emitModRM(src.reg, dst)
	case dst.kind == opdReg && src.kind == opdImm:
		a.prefixOp(dst.size)
		if dst.size == 1 {
			a.emit(0xb0 + byte(dst.reg))
			a.emit(byte(src.val))
		} else {
			a.emit(0xb8 + byte(dst.reg))
			a.emitZ(src.val, dst.size)
		}
	case dst.kind == opdMem && src.kind == opdImm:
		size := dst.size
		if size == 0 {
			size = src.size
		}
		if size == 0 {
			a.errorf("mov mem, imm needs a size hint")
			return
		}
		a.memPrefixes(dst)
		a.prefixOp(size)
		a.emit(byteOpcode(0xc6, size))
		a.emitModRM(0, dst)
		if size == 1 {
			a.emit(byte(src.val))
		} else {
			a.emitZ(src.val, size)
		}
	case dst.kind == opdReg && src.kind == opdMem:
		a.memPrefixes(src)
		a.prefixOp(dst.size)
		a.emit(byteOpcode(0x8a, dst.size))
		a.emitModRM(dst.reg, src)
	case dst.kind == opdMem && src.kind == opdReg:
		a.memPrefixes(dst)
		a.prefixOp(src.size)
		a.emit(byteOpcode(0x88, src.size))
		a.emitModRM(src.reg, dst)
	case dst.kind == opdReg && src.kind == opdReg:
		if dst.size != src.size {
			a.errorf("mov register size mismatch")
			return
		}
		a.prefixOp(dst.size)
		a.emit(byteOpcode(0x88, dst.size))
		a.emitModRM(src.reg, opd{kind: opdReg, reg: dst.reg})
	default:
		a.errorf("bad mov operand combination")
	}
}

func (a *Assembler) encodeTest(ops []opd) {
	if len(ops) != 2 {
		a.errorf("test needs 2 operands")
		return
	}
	dst, src := ops[0], ops[1]
	size := a.opSizeOf(ops)
	if size == 0 {
		a.errorf("test operand size unknown")
		return
	}
	if src.kind == opdImm {
		a.memPrefixes0(dst)
		a.prefixOp(size)
		a.emit(byteOpcode(0xf6, size))
		a.emitModRM(0, dst)
		if size == 1 {
			a.emit(byte(src.val))
		} else {
			a.emitZ(src.val, size)
		}
		return
	}
	if dst.kind == opdMem {
		dst, src = src, dst
	}
	a.memPrefixes0(src)
	a.prefixOp(size)
	a.emit(byteOpcode(0x84, size))
	a.emitModRM(dst.reg, src)
}

func (a *Assembler) encodeJcc(cc int, o opd) {
	if o.kind != opdImm {
		a.errorf("jcc needs a label")
		return
	}
	size := a.defSize()
	// 0F 8x relZ: total length 2 + relsize (16-bit mode: 4; 32: 6).
	instLen := uint32(2 + a.relSize(size))
	rel := o.val - (a.pc() + instLen)
	a.emit(0x0f, byte(0x80+cc))
	a.emitZ(rel, size)
}

func (a *Assembler) encodeRel8(opc byte, ops []opd) {
	if len(ops) != 1 || ops[0].kind != opdImm {
		a.errorf("needs a label operand")
		return
	}
	rel := int64(ops[0].val) - int64(a.pc()+2)
	if a.pass == 2 && (rel < -128 || rel > 127) {
		a.errorf("rel8 target out of range (%d)", rel)
	}
	a.emit(opc, byte(rel))
}

func (a *Assembler) encodeJmp(ops []opd) {
	if len(ops) != 1 {
		a.errorf("jmp needs one operand")
		return
	}
	o := ops[0]
	switch o.kind {
	case opdFar:
		// jmp sel:off. With a dword hint in 16-bit mode, emit ptr16:32.
		size := a.defSize()
		if o.size == 4 {
			size = 4
		}
		a.prefixOp(size)
		a.emit(0xea)
		a.emitZ(o.val, size)
		a.emit16(o.sel)
	case opdImm:
		size := a.defSize()
		instLen := uint32(1 + a.relSize(size))
		rel := o.val - (a.pc() + instLen)
		a.emit(0xe9)
		a.emitZ(rel, size)
	case opdReg:
		a.emit(0xff)
		a.emitModRM(4, o)
	case opdMem:
		a.memPrefixes(o)
		a.emit(0xff)
		a.emitModRM(4, o)
	}
}

func (a *Assembler) encodeCall(ops []opd) {
	if len(ops) != 1 {
		a.errorf("call needs one operand")
		return
	}
	o := ops[0]
	switch o.kind {
	case opdImm:
		size := a.defSize()
		instLen := uint32(1 + a.relSize(size))
		rel := o.val - (a.pc() + instLen)
		a.emit(0xe8)
		a.emitZ(rel, size)
	case opdReg:
		a.emit(0xff)
		a.emitModRM(2, o)
	case opdMem:
		a.memPrefixes(o)
		a.emit(0xff)
		a.emitModRM(2, o)
	default:
		a.errorf("bad call operand")
	}
}

var btOpcode = map[string]struct {
	rm  byte // 0F xx for r/m, reg form
	grp int  // /reg for the 0F BA immediate form
}{
	"bt": {0xa3, 4}, "bts": {0xab, 5}, "btr": {0xb3, 6}, "btc": {0xbb, 7},
}

func (a *Assembler) encodeBitTest(mnem string, ops []opd) {
	if len(ops) != 2 {
		a.errorf("%s needs 2 operands", mnem)
		return
	}
	enc := btOpcode[mnem]
	size := a.opSizeOf(ops)
	if size < 2 {
		size = a.defSize()
	}
	a.memPrefixes0(ops[0])
	a.prefixOp(size)
	if ops[1].kind == opdReg {
		a.emit(0x0f, enc.rm)
		a.emitModRM(ops[1].reg, ops[0])
		return
	}
	if ops[1].kind != opdImm {
		a.errorf("%s source must be a register or immediate", mnem)
		return
	}
	a.emit(0x0f, 0xba)
	a.emitModRM(enc.grp, ops[0])
	a.emit(byte(ops[1].val))
}

func (a *Assembler) encodeIn(ops []opd) {
	if len(ops) != 2 || ops[0].kind != opdReg || ops[0].reg != EAX {
		a.errorf("in needs al/ax/eax, port")
		return
	}
	size := ops[0].size
	a.prefixOp(size)
	if ops[1].kind == opdReg && ops[1].size == 2 && ops[1].reg == EDX {
		a.emit(byteOpcode(0xec, size))
		return
	}
	if ops[1].kind != opdImm {
		a.errorf("in port must be dx or imm8")
		return
	}
	a.emit(byteOpcode(0xe4, size), byte(ops[1].val))
}

func (a *Assembler) encodeOut(ops []opd) {
	if len(ops) != 2 || ops[1].kind != opdReg || ops[1].reg != EAX {
		a.errorf("out needs port, al/ax/eax")
		return
	}
	size := ops[1].size
	a.prefixOp(size)
	if ops[0].kind == opdReg && ops[0].size == 2 && ops[0].reg == EDX {
		a.emit(byteOpcode(0xee, size))
		return
	}
	if ops[0].kind != opdImm {
		a.errorf("out port must be dx or imm8")
		return
	}
	a.emit(byteOpcode(0xe6, size), byte(ops[0].val))
}
