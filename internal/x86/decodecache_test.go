package x86

import "testing"

// pagerEnv extends flatEnv with the ExecPager fast path: identity
// translation, per-page write generations (mirroring hw.Memory), and a
// way to decline pages (as MMIO-backed pages are declined).
type pagerEnv struct {
	*flatEnv
	gen      []uint64
	declined map[uint32]bool
	calls    int
}

func newPagerEnv(size int) *pagerEnv {
	return &pagerEnv{
		flatEnv:  newFlatEnv(size),
		gen:      make([]uint64, (size+4095)/4096),
		declined: make(map[uint32]bool),
	}
}

func (e *pagerEnv) MemWrite(st *CPUState, va uint32, size int, val uint32) error {
	if err := e.flatEnv.MemWrite(st, va, size, val); err != nil {
		return err
	}
	for p := va >> 12; p <= (va+uint32(size)-1)>>12; p++ {
		e.gen[p]++
	}
	return nil
}

// write patches memory directly (the DMA/VMM analogue), bumping the
// write generation like hw.Memory does.
func (e *pagerEnv) write(addr uint32, b []byte) {
	copy(e.mem[addr:], b)
	for p := addr >> 12; p <= (addr+uint32(len(b))-1)>>12; p++ {
		e.gen[p]++
	}
}

func (e *pagerEnv) ExecPage(st *CPUState, va uint32) ([]byte, uint64, uint64, error) {
	e.calls++
	page := va >> 12
	base := int(page) << 12
	if base+4096 > len(e.mem) {
		return nil, 0, 0, PageFault(va, false, false, false)
	}
	if e.declined[page] {
		return nil, 0, 0, nil
	}
	return e.mem[base : base+4096], uint64(page), e.gen[page], nil
}

// runCached assembles 32-bit code at org, loads it, and returns an
// interpreter with the decode cache attached (and its env).
func runCached(t *testing.T, src string, org uint32) (*Interp, *pagerEnv) {
	t.Helper()
	code := MustAssemble("bits 32\norg 0x1000\n" + src)
	env := newPagerEnv(1 << 20)
	env.write(org, code)
	st := &CPUState{}
	st.Reset()
	st.CR0 |= CR0PE
	st.Seg[CS] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	st.Seg[DS] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	st.Seg[SS] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	st.EIP = org
	st.GPR[ESP] = 0x8000
	ip := NewInterp(env, st, Intercepts{})
	ip.Cache = NewDecodeCache()
	return ip, env
}

func stepN(t *testing.T, ip *Interp, n int) {
	t.Helper()
	for i := 0; i < n && !ip.St.Halted; i++ {
		if err := ip.Step(); err != nil {
			t.Fatalf("step %d: %v (eip=%#x)", i, err, ip.St.EIP)
		}
	}
}

// TestDecodeCacheMatchesSlowPath runs the same loop-heavy program with
// the cache attached and detached and requires identical final state and
// retired-instruction counts.
func TestDecodeCacheMatchesSlowPath(t *testing.T) {
	src := `
	mov ecx, 50
	mov eax, 0
loop:
	add eax, ecx
	dec ecx
	jnz loop
	hlt`
	fast, _ := runCached(t, src, 0x1000)
	stepN(t, fast, 1000)
	slow, _ := runCached(t, src, 0x1000)
	slow.Cache = nil
	stepN(t, slow, 1000)
	if !fast.St.Halted || !slow.St.Halted {
		t.Fatalf("halted: fast=%v slow=%v", fast.St.Halted, slow.St.Halted)
	}
	if fast.InstRet != slow.InstRet {
		t.Errorf("InstRet: cached %d vs uncached %d", fast.InstRet, slow.InstRet)
	}
	if *fast.St != *slow.St {
		t.Errorf("final state differs:\n cached   %s\n uncached %s", fast.St.String(), slow.St.String())
	}
	if want := uint32(50 * 51 / 2); fast.St.GPR[EAX] != want {
		t.Errorf("eax = %d, want %d", fast.St.GPR[EAX], want)
	}
}

// TestDecodeCacheStaleGeneration pins the two-tier staleness contract:
// on a fresh page (write generation unchanged since fill) hits are
// served without looking at the bytes; once any write bumps the
// generation, every hit is byte-verified against the live page and only
// decodes whose bytes actually changed are re-decoded.
func TestDecodeCacheStaleGeneration(t *testing.T) {
	ip, env := runCached(t, "mov eax, 0x11111111\nhlt", 0x1000)
	stepN(t, ip, 1)
	if ip.St.GPR[EAX] != 0x11111111 {
		t.Fatalf("eax = %#x", ip.St.GPR[EAX])
	}
	// Patch bytes behind the cache's back, with no generation bump: the
	// page is fresh, so the cache must serve the cached decode without
	// re-reading the bytes. (The real memory system can't do this —
	// every write path bumps the generation — so this asserts the
	// fresh-page path really serves unverified hits.)
	copy(env.mem[0x1001:], []byte{0x33, 0x33, 0x33, 0x33})
	ip.St.EIP = 0x1000
	stepN(t, ip, 1)
	if ip.St.GPR[EAX] != 0x11111111 {
		t.Errorf("fresh page did not serve a hit: eax = %#x", ip.St.GPR[EAX])
	}
	// Patch the immediate in place with a generation bump; the stale
	// decode's bytes differ and it must be re-decoded.
	env.write(0x1001, []byte{0x22, 0x22, 0x22, 0x22})
	ip.St.EIP = 0x1000
	stepN(t, ip, 1)
	if ip.St.GPR[EAX] != 0x22222222 {
		t.Errorf("after patch: eax = %#x, want 0x22222222 (stale decode executed)", ip.St.GPR[EAX])
	}
	// A write elsewhere in the page must not drop the (unchanged)
	// decode, but it does put the page in verify mode: a subsequent
	// behind-the-back change of the instruction bytes is now caught by
	// the byte comparison even without its own generation bump.
	env.write(0x1800, []byte{0xff})
	copy(env.mem[0x1001:], []byte{0x44, 0x44, 0x44, 0x44})
	ip.St.EIP = 0x1000
	stepN(t, ip, 1)
	if ip.St.GPR[EAX] != 0x44444444 {
		t.Errorf("verify mode missed a byte change: eax = %#x, want 0x44444444", ip.St.GPR[EAX])
	}
}

// TestDecodeCachePageSpill places an instruction across a page boundary;
// the fast path must fall back and still execute it correctly.
func TestDecodeCachePageSpill(t *testing.T) {
	// mov eax, imm32 is 5 bytes; at 0x1ffd it ends at 0x2001.
	ip, _ := runCached(t, "mov eax, 0x44556677\nhlt", 0x1ffd)
	stepN(t, ip, 2)
	if ip.St.GPR[EAX] != 0x44556677 {
		t.Errorf("eax = %#x, want 0x44556677", ip.St.GPR[EAX])
	}
	if !ip.St.Halted {
		t.Error("did not reach hlt")
	}
}

// TestDecodeCacheDeclinedPage runs code on a page the pager declines
// (the MMIO case): execution must fall back to the slow path.
func TestDecodeCacheDeclinedPage(t *testing.T) {
	ip, env := runCached(t, "mov eax, 7\nhlt", 0x1000)
	env.declined[1] = true
	stepN(t, ip, 2)
	if ip.St.GPR[EAX] != 7 {
		t.Errorf("eax = %d, want 7", ip.St.GPR[EAX])
	}
	if env.calls == 0 {
		t.Error("ExecPage never consulted")
	}
}

// TestDecodeCacheOverflowResets fills the cache past its page bound and
// checks execution stays correct across the wholesale reset.
func TestDecodeCacheOverflowResets(t *testing.T) {
	c := NewDecodeCache()
	for i := 0; i < decodeCacheMaxPages+8; i++ {
		c.page(uint64(i), true, 0)
	}
	if len(c.pages) > decodeCacheMaxPages {
		t.Errorf("cache grew past its bound: %d pages", len(c.pages))
	}
}

// TestInstNoFaultClassification pins the snapshot-elision classifier:
// instructions listed safe must be ones whose exec cannot error;
// faultable or intercept-able forms must stay unsafe.
func TestInstNoFaultClassification(t *testing.T) {
	cases := []struct {
		asm  string
		safe bool
	}{
		{"inc eax", true},
		{"mov eax, 42", true},
		{"add eax, ebx", true},
		{"add eax, 5", true},
		{"test al, 1", true},
		{"shl eax, 3", true},
		{"jz .x\n.x: nop", true},
		{"jmp .x\n.x: nop", true},
		{"xchg eax, ebx", true},
		{"cmc", true},
		{"sti", true},
		{"not edx", true},
		{"imul eax, ebx", true},
		{"movzx eax, bl", true},
		{"bsf eax, ebx", true},
		{"lea eax, [ebx+4]", true},

		{"div ebx", false},          // #DE
		{"idiv ebx", false},         // #DE
		{"mov eax, [ebx]", false},   // memory operand
		{"add [ebx], eax", false},   // memory operand
		{"push eax", false},         // stack write
		{"pop eax", false},          // stack read
		{"hlt", false},              // intercept-able
		{"cpuid", false},            // intercept-able
		{"rdtsc", false},            // intercept-able
		{"in al, 0x60", false},      // intercept-able
		{"out 0x80, al", false},     // intercept-able
		{"mov cr3, eax", false},     // sensitive
		{"invlpg [eax]", false},     // sensitive
		{"int 0x10", false},         // event delivery
		{"rep movsd", false},        // string/memory
		{"call .x\n.x: nop", false}, // stack write
		{"ret", false},              // stack read
	}
	for _, tc := range cases {
		code := MustAssemble("bits 32\n" + tc.asm)
		inst, err := Decode(&pageFetcher{data: code}, true)
		if err != nil {
			t.Fatalf("%q: decode: %v", tc.asm, err)
		}
		if got := instNoFault(inst); got != tc.safe {
			t.Errorf("instNoFault(%q) = %v, want %v", tc.asm, got, tc.safe)
		}
	}
}
