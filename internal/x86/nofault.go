package x86

// instNoFault reports whether inst provably cannot make exec return a
// non-nil error: no memory operand (so no translation fault or exit), no
// #UD/#DE-capable form, no intercepted or sensitive operation. For such
// instructions Step skips the CPUState rollback snapshot — pure host-side
// hot-loop slimming with no effect on simulated behaviour, because the
// snapshot of a successfully retired instruction is never read.
//
// The classification is deliberately conservative: anything not listed
// keeps the snapshot. Listing an instruction that can fail is a
// simulator bug (Step panics), never a guest-triggerable condition.
//
// The superblock layer (superblock.go) builds on this classifier:
// InstFusible narrows it further (no ExtraCycles producers) to chain
// no-fault runs into fused blocks. Growing this list therefore also
// grows superblock coverage — and misclassification is caught by the
// same panic in both the single-step and fused paths.
func instNoFault(inst *Inst) bool {
	if inst.TwoByte {
		return twoByteNoFault(inst)
	}
	op := inst.Op
	switch {
	case op < 0x40:
		// ALU block rows: forms 0-3 are r/m variants (register-only is
		// safe), 4/5 are AL/eAX,imm; 6/7 are segment pushes and BCD ops.
		switch op & 7 {
		case 0, 1, 2, 3:
			return inst.Mod == 3
		case 4, 5:
			return true
		}
		return false
	case op < 0x50: // INC/DEC r
		return true
	case op >= 0x70 && op <= 0x7f: // Jcc rel8
		return true
	case op >= 0x91 && op <= 0x97: // XCHG eAX, r
		return true
	case op >= 0xb0 && op <= 0xbf: // MOV r, imm
		return true
	}
	switch op {
	case 0x69, 0x6b: // IMUL r, r/m, imm
		return inst.Mod == 3
	case 0x80, 0x81, 0x82, 0x83: // group 1: ALU r/m, imm; all 8 /r forms valid
		return inst.Mod == 3
	case 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x8b: // TEST/XCHG/MOV r/m forms
		return inst.Mod == 3
	case 0x8d: // LEA computes the address only; register form is #UD
		return inst.Mod != 3
	case 0x90: // NOP / PAUSE
		return true
	case 0x98, 0x99: // CBW/CWDE, CWD/CDQ
		return true
	case 0xa8, 0xa9: // TEST AL/eAX, imm
		return true
	case 0xc0, 0xc1, 0xd0, 0xd1, 0xd2, 0xd3: // shift group 2
		return inst.Mod == 3
	case 0xe0, 0xe1, 0xe2, 0xe3: // LOOPcc, JCXZ
		return true
	case 0xe9, 0xeb: // JMP rel
		return true
	case 0xf5, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd: // CMC/CLC/STC/CLI/STI/CLD/STD
		return true
	case 0xf6, 0xf7: // group 3: DIV/IDIV (/6, /7) can raise #DE
		return inst.Mod == 3 && inst.RegOp <= 5
	case 0xfe: // group 4: INC/DEC r/m8; /2.. is #UD
		return inst.Mod == 3 && inst.RegOp <= 1
	}
	return false
}

// twoByteNoFault is the 0x0F-escape half of instNoFault. Intercept-able
// operations (CPUID, RDTSC, MSR and CR accesses, INVLPG) are excluded
// even when their intercept is currently off, as are segment loads and
// pushes.
func twoByteNoFault(inst *Inst) bool {
	op := inst.Op
	switch {
	case op >= 0x40 && op <= 0x4f: // CMOVcc
		return inst.Mod == 3
	case op >= 0x80 && op <= 0x8f: // Jcc relZ
		return true
	case op >= 0x90 && op <= 0x9f: // SETcc
		return inst.Mod == 3
	case op >= 0xc8 && op <= 0xcf: // BSWAP
		return true
	}
	switch op {
	case 0x06, 0x08, 0x09, 0x1f: // CLTS, INVD, WBINVD, long NOP
		return true
	case 0x21, 0x23: // MOV r,DRn / MOV DRn,r — modelled as register-only
		return true
	case 0xa3, 0xab, 0xb3, 0xbb: // BT/BTS/BTR/BTC r/m, r
		return inst.Mod == 3
	case 0xba: // group 8: /4-/7 are the bit tests, below is #UD
		return inst.Mod == 3 && inst.RegOp >= 4
	case 0xa4, 0xa5, 0xac, 0xad: // SHLD/SHRD
		return inst.Mod == 3
	case 0xaf: // IMUL r, r/m
		return inst.Mod == 3
	case 0xb0, 0xb1: // CMPXCHG
		return inst.Mod == 3
	case 0xb6, 0xb7, 0xbe, 0xbf: // MOVZX/MOVSX
		return inst.Mod == 3
	case 0xbc, 0xbd: // BSF/BSR
		return inst.Mod == 3
	case 0xc0, 0xc1: // XADD
		return inst.Mod == 3
	}
	return false
}
