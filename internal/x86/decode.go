package x86

import "fmt"

// Inst is one decoded instruction: prefixes, opcode, ModRM/SIB
// addressing, displacement and immediates. Both the guest-mode
// interpreter and the VMM's instruction emulator (§7.1) consume this.
type Inst struct {
	Len     int  // total encoded length in bytes
	Op      byte // primary opcode byte
	TwoByte bool // 0x0F escape

	OpSize   int // 2 or 4 from prefixes/mode; byte ops override to 1 at execution
	AddrSize int // 2 or 4

	SegOv      int // segment override register index, or -1
	Rep, RepNE bool
	Lock       bool

	HasModRM       bool
	Mod, RegOp, RM int
	HasSIB         bool
	Scale          int // SIB scale as shift amount (0-3)
	Index          int // SIB index register, -1 if none
	Base           int // SIB/modrm base register, -1 if none
	Disp           int32

	Imm  uint32
	Imm2 uint32 // segment selector of far pointers

	// enc shadows the Len bytes this decode was made from. Filled only
	// when the instruction enters the decoded-instruction cache: decode
	// is a pure function of (bytes, default size), so a cached decode
	// stays valid exactly as long as the live page bytes still equal
	// enc[:Len]. See decodecache.go.
	enc [15]byte
}

// immKind encodes what trails the ModRM bytes.
type immKind uint8

const (
	immNone immKind = iota
	imm8
	immZ    // 16 or 32 bits by operand size
	imm16   // always 16 bits
	immMoff // address-sized memory offset (A0-A3)
	immFar  // ptr16:Z far pointer
	immGrp3 // F6/F7: imm only for /0 and /1 (TEST)
)

// The decode tables are init-only: filled below during package
// initialization and never written (or aliased out) afterwards, so
// concurrent machines can share them read-only. The globalstate
// analyzer verifies this, including writes through aliases.
var oneByteModRM = [256]bool{}
var oneByteImm = [256]immKind{}
var twoByteModRM = [256]bool{}
var twoByteImm = [256]immKind{}

func init() {
	// ALU block: op r/m,r and friends at x0-x3 of each row 0x00-0x38.
	for _, base := range []int{0x00, 0x08, 0x10, 0x18, 0x20, 0x28, 0x30, 0x38} {
		for off := 0; off < 4; off++ {
			oneByteModRM[base+off] = true
		}
		oneByteImm[base+4] = imm8 // op AL, imm8
		oneByteImm[base+5] = immZ // op eAX, immZ
	}
	for _, b := range []int{0x62, 0x63, 0x69, 0x6b, 0x84, 0x85, 0x86, 0x87,
		0x88, 0x89, 0x8a, 0x8b, 0x8c, 0x8d, 0x8e, 0x8f,
		0xc0, 0xc1, 0xc4, 0xc5, 0xc6, 0xc7, 0xd0, 0xd1, 0xd2, 0xd3,
		0xf6, 0xf7, 0xfe, 0xff} {
		oneByteModRM[b] = true
	}
	oneByteModRM[0x80], oneByteModRM[0x81], oneByteModRM[0x82], oneByteModRM[0x83] = true, true, true, true

	oneByteImm[0x69] = immZ
	oneByteImm[0x6b] = imm8
	oneByteImm[0x68] = immZ
	oneByteImm[0x6a] = imm8
	for b := 0x70; b <= 0x7f; b++ {
		oneByteImm[b] = imm8
	}
	oneByteImm[0x80], oneByteImm[0x82] = imm8, imm8
	oneByteImm[0x81] = immZ
	oneByteImm[0x83] = imm8
	oneByteImm[0x9a] = immFar
	for b := 0xa0; b <= 0xa3; b++ {
		oneByteImm[b] = immMoff
	}
	oneByteImm[0xa8] = imm8
	oneByteImm[0xa9] = immZ
	for b := 0xb0; b <= 0xb7; b++ {
		oneByteImm[b] = imm8
	}
	for b := 0xb8; b <= 0xbf; b++ {
		oneByteImm[b] = immZ
	}
	oneByteImm[0xc0], oneByteImm[0xc1] = imm8, imm8
	oneByteImm[0xc2] = imm16
	oneByteImm[0xc6] = imm8
	oneByteImm[0xc7] = immZ
	oneByteImm[0xcd] = imm8
	for b := 0xe0; b <= 0xe7; b++ {
		oneByteImm[b] = imm8 // LOOPcc, JCXZ, IN/OUT imm8
	}
	oneByteImm[0xe8], oneByteImm[0xe9] = immZ, immZ
	oneByteImm[0xea] = immFar
	oneByteImm[0xeb] = imm8
	oneByteImm[0xf6] = immGrp3
	oneByteImm[0xf7] = immGrp3

	for _, b := range []int{0x00, 0x01, 0x20, 0x21, 0x22, 0x23, 0xa3, 0xab,
		0xaf, 0xb0, 0xb1, 0xb3, 0xb6, 0xb7, 0xba, 0xbb, 0xbc, 0xbd,
		0xbe, 0xbf, 0xc0, 0xc1, 0xa4, 0xa5, 0xac, 0xad} {
		twoByteModRM[b] = true
	}
	for b := 0x40; b <= 0x4f; b++ {
		twoByteModRM[b] = true // CMOVcc
	}
	for b := 0x90; b <= 0x9f; b++ {
		twoByteModRM[b] = true // SETcc
	}
	for b := 0x80; b <= 0x8f; b++ {
		twoByteImm[b] = immZ // Jcc relZ
	}
	twoByteImm[0xba] = imm8 // BT group
	twoByteImm[0xa4] = imm8 // SHLD imm8
	twoByteImm[0xac] = imm8 // SHRD imm8
}

// ByteFetcher supplies consecutive instruction bytes; errors propagate
// fetch faults out of the decoder.
type ByteFetcher interface {
	FetchByte() (byte, error)
}

// BytesFetcher feeds the decoder from a plain byte slice, for decoding
// instruction bytes captured outside a running guest (the profiler's
// hot-site disassembly).
type BytesFetcher struct {
	Data []byte
	off  int
}

// FetchByte implements ByteFetcher.
func (f *BytesFetcher) FetchByte() (byte, error) {
	if f.off >= len(f.Data) {
		return 0, InstTooLongError{}
	}
	b := f.Data[f.off]
	f.off++
	return b, nil
}

// InstTooLongError reports an instruction exceeding the architectural
// 15-byte limit.
type InstTooLongError struct{}

func (InstTooLongError) Error() string { return "x86: instruction longer than 15 bytes" }

type decodeCursor struct {
	f   ByteFetcher
	n   int
	err error
}

func (d *decodeCursor) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.n >= 15 {
		d.err = InstTooLongError{}
		return 0
	}
	b, err := d.f.FetchByte()
	if err != nil {
		d.err = err
		return 0
	}
	d.n++
	return b
}

func (d *decodeCursor) u16() uint32 {
	lo := uint32(d.byte())
	hi := uint32(d.byte())
	return hi<<8 | lo
}

func (d *decodeCursor) u32() uint32 {
	b0 := uint32(d.byte())
	b1 := uint32(d.byte())
	b2 := uint32(d.byte())
	b3 := uint32(d.byte())
	return b3<<24 | b2<<16 | b1<<8 | b0
}

func (d *decodeCursor) uz(size int) uint32 {
	if size == 2 {
		return d.u16()
	}
	return d.u32()
}

// Decode reads and decodes one instruction from f. def32 selects the
// default operand/address size (the D bit of the current code segment).
func Decode(f ByteFetcher, def32 bool) (*Inst, error) {
	d := &decodeCursor{f: f}
	inst := &Inst{SegOv: -1, Index: -1, Base: -1}

	defSize := 2
	if def32 {
		defSize = 4
	}
	inst.OpSize, inst.AddrSize = defSize, defSize

	// Prefixes.
	var op byte
prefixes:
	for {
		op = d.byte()
		if d.err != nil {
			return nil, d.err
		}
		switch op {
		case 0x26:
			inst.SegOv = ES
		case 0x2e:
			inst.SegOv = CS
		case 0x36:
			inst.SegOv = SS
		case 0x3e:
			inst.SegOv = DS
		case 0x64:
			inst.SegOv = FS
		case 0x65:
			inst.SegOv = GS
		case 0x66:
			if def32 {
				inst.OpSize = 2
			} else {
				inst.OpSize = 4
			}
		case 0x67:
			if def32 {
				inst.AddrSize = 2
			} else {
				inst.AddrSize = 4
			}
		case 0xf0:
			inst.Lock = true
		case 0xf2:
			inst.RepNE = true
		case 0xf3:
			inst.Rep = true
		default:
			break prefixes
		}
	}

	modrmTab, immTab := &oneByteModRM, &oneByteImm
	if op == 0x0f {
		inst.TwoByte = true
		op = d.byte()
		modrmTab, immTab = &twoByteModRM, &twoByteImm
	}
	inst.Op = op

	if modrmTab[op] {
		if err := decodeModRM(d, inst); err != nil {
			return nil, err
		}
	}

	kind := immTab[op]
	if kind == immGrp3 {
		if inst.RegOp <= 1 { // TEST r/m, imm
			if op == 0xf6 {
				kind = imm8
			} else {
				kind = immZ
			}
		} else {
			kind = immNone
		}
	}
	switch kind {
	case imm8:
		inst.Imm = uint32(d.byte())
	case immZ:
		inst.Imm = d.uz(inst.OpSize)
	case imm16:
		inst.Imm = d.u16()
	case immMoff:
		inst.Imm = d.uz(inst.AddrSize)
	case immFar:
		inst.Imm = d.uz(inst.OpSize)
		inst.Imm2 = d.u16()
	case immNone, immGrp3:
		// No immediate bytes; immGrp3 was rewritten above for TEST.
	}
	if d.err != nil {
		return nil, d.err
	}
	inst.Len = d.n
	return inst, nil
}

func decodeModRM(d *decodeCursor, inst *Inst) error {
	m := d.byte()
	if d.err != nil {
		return d.err
	}
	inst.HasModRM = true
	inst.Mod = int(m >> 6)
	inst.RegOp = int(m >> 3 & 7)
	inst.RM = int(m & 7)

	if inst.Mod == 3 {
		return nil // register operand, no addressing bytes
	}

	if inst.AddrSize == 4 {
		if inst.RM == 4 { // SIB
			sib := d.byte()
			inst.HasSIB = true
			inst.Scale = int(sib >> 6 & 3) // 2-bit field; mask keeps the shift in effectiveAddr bounded
			inst.Index = int(sib >> 3 & 7)
			inst.Base = int(sib & 7)
			if inst.Index == 4 {
				inst.Index = -1 // no index
			}
			if inst.Base == 5 && inst.Mod == 0 {
				inst.Base = -1
				inst.Disp = int32(d.u32())
			}
		} else if inst.RM == 5 && inst.Mod == 0 {
			inst.Disp = int32(d.u32()) // disp32, no base
		} else {
			inst.Base = inst.RM
		}
		switch inst.Mod {
		case 1:
			inst.Disp = int32(int8(d.byte()))
		case 2:
			inst.Disp = int32(d.u32())
		}
	} else {
		// 16-bit addressing forms.
		if inst.RM == 6 && inst.Mod == 0 {
			inst.Disp = int32(d.u16())
		}
		switch inst.Mod {
		case 1:
			inst.Disp = int32(int8(d.byte()))
		case 2:
			inst.Disp = int32(int16(d.u16()))
		}
	}
	return d.err
}

// IsMemOperand reports whether the ModRM r/m operand addresses memory.
func (i *Inst) IsMemOperand() bool { return i.HasModRM && i.Mod != 3 }

// effectiveAddr computes the linear offset of the memory operand within
// its segment, and returns that segment's register index.
func (i *Inst) effectiveAddr(st *CPUState) (uint32, int) {
	seg := DS
	var off uint32
	if i.AddrSize == 4 {
		if i.Base >= 0 {
			off += st.GPR[i.Base]
			if i.Base == ESP || i.Base == EBP {
				seg = SS
			}
		}
		if i.Index >= 0 {
			off += st.GPR[i.Index] << uint(i.Scale)
		}
		off += uint32(i.Disp)
	} else {
		switch {
		case i.Mod == 0 && i.RM == 6:
			// disp16 only
		default:
			switch i.RM {
			case 0:
				off = st.GPR[EBX] + st.GPR[ESI]
			case 1:
				off = st.GPR[EBX] + st.GPR[EDI]
			case 2:
				off = st.GPR[EBP] + st.GPR[ESI]
				seg = SS
			case 3:
				off = st.GPR[EBP] + st.GPR[EDI]
				seg = SS
			case 4:
				off = st.GPR[ESI]
			case 5:
				off = st.GPR[EDI]
			case 6:
				off = st.GPR[EBP]
				seg = SS
			case 7:
				off = st.GPR[EBX]
			}
		}
		off = (off + uint32(i.Disp)) & 0xffff
	}
	if i.AddrSize == 4 {
		off += 0 // disp already added
	}
	if i.SegOv >= 0 {
		seg = i.SegOv
	}
	return off, seg
}

func (i *Inst) String() string {
	esc := ""
	if i.TwoByte {
		esc = "0f "
	}
	return fmt.Sprintf("inst{%s%02x len=%d opsize=%d mod=%d reg=%d rm=%d disp=%d imm=%#x}",
		esc, i.Op, i.Len, i.OpSize, i.Mod, i.RegOp, i.RM, i.Disp, i.Imm)
}
