package x86

// repBurst caps REP iterations executed per Step so pending interrupts
// keep bounded latency; the instruction is architecturally restartable
// (EIP stays on it until ECX reaches zero).
const repBurst = 64

// execString handles MOVS, CMPS, STOS, LODS and SCAS with optional
// REP/REPE/REPNE prefixes.
func (ip *Interp) execString(inst *Inst) error {
	st := ip.St
	op := int(inst.Op)
	size := inst.OpSize
	if op&1 == 0 {
		size = 1
	}
	delta := uint32(size)
	if st.GetFlag(FlagDF) {
		delta = -delta
	}
	srcSeg := DS
	if inst.SegOv >= 0 {
		srcSeg = inst.SegOv
	}
	rep := inst.Rep || inst.RepNE
	iters := 1
	if rep {
		cx := st.Reg(ECX, inst.AddrSize)
		if cx == 0 {
			return nil
		}
		iters = repBurst
		if uint32(iters) > cx {
			iters = int(cx)
		}
	}
	am := sizeMask(inst.AddrSize)

	for i := 0; i < iters; i++ {
		si := st.Reg(ESI, inst.AddrSize)
		di := st.Reg(EDI, inst.AddrSize)
		var cmpBreak bool
		switch op &^ 1 {
		case 0xa4: // MOVS
			v, err := ip.memRead(srcSeg, si, size)
			if err != nil {
				return err
			}
			if err := ip.memWrite(ES, di, size, v); err != nil {
				return err
			}
			st.SetReg(ESI, inst.AddrSize, (si+delta)&am)
			st.SetReg(EDI, inst.AddrSize, (di+delta)&am)
		case 0xa6: // CMPS
			a, err := ip.memRead(srcSeg, si, size)
			if err != nil {
				return err
			}
			b, err := ip.memRead(ES, di, size)
			if err != nil {
				return err
			}
			st.flagsSub(a, b, a-b, size, 0)
			st.SetReg(ESI, inst.AddrSize, (si+delta)&am)
			st.SetReg(EDI, inst.AddrSize, (di+delta)&am)
			cmpBreak = true
		case 0xaa: // STOS
			if err := ip.memWrite(ES, di, size, st.Reg(EAX, size)); err != nil {
				return err
			}
			st.SetReg(EDI, inst.AddrSize, (di+delta)&am)
		case 0xac: // LODS
			v, err := ip.memRead(srcSeg, si, size)
			if err != nil {
				return err
			}
			st.SetReg(EAX, size, v)
			st.SetReg(ESI, inst.AddrSize, (si+delta)&am)
		case 0xae: // SCAS
			b, err := ip.memRead(ES, di, size)
			if err != nil {
				return err
			}
			a := st.Reg(EAX, size)
			st.flagsSub(a, b, a-b, size, 0)
			st.SetReg(EDI, inst.AddrSize, (di+delta)&am)
			cmpBreak = true
		}
		if rep {
			cx := st.Reg(ECX, inst.AddrSize) - 1
			st.SetReg(ECX, inst.AddrSize, cx)
			ip.InstRet++ // each iteration retires work
			if cmpBreak {
				z := st.GetFlag(FlagZF)
				if inst.Rep && !z || inst.RepNE && z {
					return nil
				}
			}
			if cx == 0 {
				return nil
			}
		}
	}
	if rep {
		// Burst exhausted with ECX > 0: restart the instruction so the
		// run loop can deliver interrupts in between.
		st.EIP -= uint32(inst.Len)
	}
	return nil
}
