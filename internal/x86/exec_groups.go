package x86

// execShiftGroup handles 0xC0/0xC1 (imm8), 0xD0/0xD1 (by 1) and
// 0xD2/0xD3 (by CL): ROL ROR RCL RCR SHL SHR SAL SAR.
func (ip *Interp) execShiftGroup(inst *Inst) error {
	st := ip.St
	size := inst.OpSize
	if inst.Op == 0xc0 || inst.Op == 0xd0 || inst.Op == 0xd2 {
		size = 1
	}
	var count uint32
	switch inst.Op {
	case 0xc0, 0xc1:
		count = inst.Imm
	case 0xd0, 0xd1:
		count = 1
	default:
		count = uint32(st.Reg8(ECX)) // CL
	}
	count &= 31
	v, err := ip.readRM(inst, size)
	if err != nil {
		return err
	}
	if count == 0 {
		return nil // flags unchanged
	}
	bits := uint32(size) * 8
	v &= sizeMask(size)
	var res uint32
	switch inst.RegOp {
	case 0: // ROL
		c := count % bits
		res = v<<c | v>>(bits-c)
		if c == 0 {
			res = v
		}
		st.SetFlag(FlagCF, res&1 != 0)
		st.SetFlag(FlagOF, (res&1)^(res>>(bits-1)&1) != 0)
	case 1: // ROR
		c := count % bits
		res = v>>c | v<<(bits-c)
		if c == 0 {
			res = v
		}
		st.SetFlag(FlagCF, res&signBit(size) != 0)
		st.SetFlag(FlagOF, (res>>(bits-1)&1)^(res>>(bits-2)&1) != 0)
	case 2: // RCL
		cf := uint32(0)
		if st.GetFlag(FlagCF) {
			cf = 1
		}
		wide := uint64(v) | uint64(cf)<<bits
		c := count % (bits + 1)
		wide = wide<<c | wide>>(uint64(bits)+1-uint64(c))
		res = uint32(wide) & sizeMask(size)
		st.SetFlag(FlagCF, wide>>bits&1 != 0)
		st.SetFlag(FlagOF, (uint32(wide>>bits)&1)^(res>>(bits-1)&1) != 0)
	case 3: // RCR
		cf := uint32(0)
		if st.GetFlag(FlagCF) {
			cf = 1
		}
		wide := uint64(v) | uint64(cf)<<bits
		c := count % (bits + 1)
		wide = wide>>c | wide<<(uint64(bits)+1-uint64(c))
		res = uint32(wide) & sizeMask(size)
		st.SetFlag(FlagCF, wide>>bits&1 != 0)
		st.SetFlag(FlagOF, (res>>(bits-1)&1)^(res>>(bits-2)&1) != 0)
	case 4, 6: // SHL/SAL
		if count > bits {
			res = 0
			st.SetFlag(FlagCF, false)
		} else {
			res = v << count
			st.SetFlag(FlagCF, v>>(bits-count)&1 != 0)
		}
		res &= sizeMask(size)
		st.setSZP(res, size)
		st.SetFlag(FlagOF, (res>>(bits-1)&1) != boolBit(st.GetFlag(FlagCF)))
	case 5: // SHR
		if count > bits {
			res = 0
			st.SetFlag(FlagCF, false)
		} else {
			res = v >> count
			st.SetFlag(FlagCF, v>>(count-1)&1 != 0)
		}
		st.setSZP(res, size)
		st.SetFlag(FlagOF, v&signBit(size) != 0)
	case 7: // SAR
		sv := int64(int32(signExtend(v, size)))
		if count >= bits {
			count = bits - 1
			st.SetFlag(FlagCF, sv>>count&1 != 0)
			res = uint32(sv>>count) & sizeMask(size)
		} else {
			st.SetFlag(FlagCF, sv>>(count-1)&1 != 0)
			res = uint32(sv>>count) & sizeMask(size)
		}
		st.setSZP(res, size)
		st.SetFlag(FlagOF, false)
	}
	if inst.RegOp == 0 || inst.RegOp == 1 || inst.RegOp == 2 || inst.RegOp == 3 {
		// Rotates don't change SZP.
	}
	return ip.writeRM(inst, size, res)
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// execGroup3 handles 0xF6/0xF7: TEST, NOT, NEG, MUL, IMUL, DIV, IDIV.
func (ip *Interp) execGroup3(inst *Inst) error {
	st := ip.St
	size := inst.OpSize
	if inst.Op == 0xf6 {
		size = 1
	}
	v, err := ip.readRM(inst, size)
	if err != nil {
		return err
	}
	v &= sizeMask(size)
	switch inst.RegOp {
	case 4, 5:
		ip.ExtraCycles += 4 // multiply latency
	case 6, 7:
		ip.ExtraCycles += 38 // divide latency
	}
	switch inst.RegOp {
	case 0, 1: // TEST r/m, imm
		st.flagsLogic(v&inst.Imm, size)
		return nil
	case 2: // NOT
		return ip.writeRM(inst, size, ^v&sizeMask(size))
	case 3: // NEG
		res := -v & sizeMask(size)
		st.flagsSub(0, v, res, size, 0)
		st.SetFlag(FlagCF, v != 0)
		return ip.writeRM(inst, size, res)
	case 4: // MUL
		a := st.Reg(EAX, size)
		prod := uint64(a) * uint64(v)
		hi := uint32(prod >> (uint(size) * 8))
		st.SetReg(EAX, size, uint32(prod))
		if size == 1 {
			st.SetReg(EAX, 2, uint32(prod)) // AX = AL*r/m8
		} else {
			st.SetReg(EDX, size, hi)
		}
		over := hi != 0
		if size == 1 {
			over = uint32(prod)>>8 != 0
		}
		st.SetFlag(FlagCF, over)
		st.SetFlag(FlagOF, over)
		return nil
	case 5: // IMUL (one operand)
		a := int64(int32(signExtend(st.Reg(EAX, size), size)))
		b := int64(int32(signExtend(v, size)))
		prod := a * b
		st.SetReg(EAX, size, uint32(prod))
		if size == 1 {
			st.SetReg(EAX, 2, uint32(prod)&0xffff)
		} else {
			st.SetReg(EDX, size, uint32(prod>>(uint(size)*8)))
		}
		over := prod != int64(int32(signExtend(uint32(prod), size)))
		st.SetFlag(FlagCF, over)
		st.SetFlag(FlagOF, over)
		return nil
	case 6: // DIV
		if v == 0 {
			return &Exception{Vector: VecDE}
		}
		var num uint64
		if size == 1 {
			num = uint64(st.Reg(EAX, 2))
		} else {
			num = uint64(st.Reg(EDX, size))<<(uint(size)*8) | uint64(st.Reg(EAX, size))
		}
		q := num / uint64(v)
		r := num % uint64(v)
		if q > uint64(sizeMask(size)) {
			return &Exception{Vector: VecDE}
		}
		if size == 1 {
			st.SetReg8(EAX, uint8(q))
			st.SetReg8(4, uint8(r)) // AH
		} else {
			st.SetReg(EAX, size, uint32(q))
			st.SetReg(EDX, size, uint32(r))
		}
		return nil
	case 7: // IDIV
		if v == 0 {
			return &Exception{Vector: VecDE}
		}
		var num int64
		if size == 1 {
			num = int64(int16(st.Reg(EAX, 2)))
		} else {
			num = int64(uint64(st.Reg(EDX, size))<<(uint(size)*8) | uint64(st.Reg(EAX, size)))
			if size == 2 {
				num = int64(int32(uint32(num)))
			}
		}
		d := int64(int32(signExtend(v, size)))
		q := num / d
		r := num % d
		lim := int64(sizeMask(size) >> 1)
		if q > lim || q < -lim-1 {
			return &Exception{Vector: VecDE}
		}
		if size == 1 {
			st.SetReg8(EAX, uint8(q))
			st.SetReg8(4, uint8(r))
		} else {
			st.SetReg(EAX, size, uint32(q))
			st.SetReg(EDX, size, uint32(r))
		}
		return nil
	}
	return UDFault()
}

// execGroup5 handles 0xFF: INC, DEC, CALL, CALL far, JMP, JMP far, PUSH.
func (ip *Interp) execGroup5(inst *Inst) error {
	st := ip.St
	switch inst.RegOp {
	case 0: // INC r/m
		v, err := ip.readRM(inst, inst.OpSize)
		if err != nil {
			return err
		}
		v++
		if err := ip.writeRM(inst, inst.OpSize, v); err != nil {
			return err
		}
		st.flagsInc(v, inst.OpSize)
		return nil
	case 1: // DEC r/m
		v, err := ip.readRM(inst, inst.OpSize)
		if err != nil {
			return err
		}
		v--
		if err := ip.writeRM(inst, inst.OpSize, v); err != nil {
			return err
		}
		st.flagsDec(v, inst.OpSize)
		return nil
	case 2: // CALL near r/m
		target, err := ip.readRM(inst, inst.OpSize)
		if err != nil {
			return err
		}
		if err := ip.push(st.EIP, inst.OpSize); err != nil {
			return err
		}
		st.EIP = target & sizeMask(inst.OpSize)
		return nil
	case 3, 5: // CALL/JMP far m16:Z
		if inst.Mod == 3 {
			return UDFault()
		}
		off, seg := inst.effectiveAddr(st)
		target, err := ip.memRead(seg, off, inst.OpSize)
		if err != nil {
			return err
		}
		sel, err := ip.memRead(seg, off+uint32(inst.OpSize), 2)
		if err != nil {
			return err
		}
		if inst.RegOp == 3 {
			if err := ip.push(uint32(st.Seg[CS].Sel), inst.OpSize); err != nil {
				return err
			}
			if err := ip.push(st.EIP, inst.OpSize); err != nil {
				return err
			}
		}
		if err := ip.loadSeg(CS, uint16(sel)); err != nil {
			return err
		}
		st.EIP = target
		return nil
	case 4: // JMP near r/m
		target, err := ip.readRM(inst, inst.OpSize)
		if err != nil {
			return err
		}
		st.EIP = target & sizeMask(inst.OpSize)
		return nil
	case 6: // PUSH r/m
		v, err := ip.readRM(inst, inst.OpSize)
		if err != nil {
			return err
		}
		return ip.push(v, inst.OpSize)
	}
	return UDFault()
}

// imul2 implements the two/three-operand IMUL forms.
func (ip *Interp) imul2(inst *Inst, src, imm uint32) error {
	st := ip.St
	size := inst.OpSize
	a := int64(int32(signExtend(src, size)))
	b := int64(int32(signExtend(imm, size)))
	prod := a * b
	st.SetReg(inst.RegOp, size, uint32(prod))
	over := prod != int64(int32(signExtend(uint32(prod), size)))
	st.SetFlag(FlagCF, over)
	st.SetFlag(FlagOF, over)
	return nil
}
