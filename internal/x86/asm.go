package x86

import (
	"fmt"
	"strconv"
	"strings"
)

// Assembler is a two-pass assembler for the instruction subset the
// interpreter executes. It exists so the guest operating systems in this
// repository are genuine machine code: the same bytes flow through the
// guest-mode interpreter and, on faults, through the VMM's instruction
// emulator.
//
// Syntax is NASM-flavoured:
//
//	org 0x7c00
//	bits 16
//	start:
//	    mov ax, 0x10
//	    mov [es:di+4], eax
//	    jnz start
//	    db 0x55, 0xaa, "text"
//	    times 16 db 0
type Assembler struct {
	bits    int // 16 or 32
	org     uint32
	out     []byte
	symbols map[string]uint32
	pass    int
	errs    []string
	line    int
}

// Assemble assembles source and returns the flat binary image.
func Assemble(source string) ([]byte, error) {
	a := &Assembler{symbols: make(map[string]uint32)}
	for a.pass = 1; a.pass <= 2; a.pass++ {
		a.bits = 16
		a.org = 0
		a.out = a.out[:0]
		a.errs = a.errs[:0]
		for i, raw := range strings.Split(source, "\n") {
			a.line = i + 1
			a.doLine(raw)
		}
		if len(a.errs) > 0 {
			return nil, fmt.Errorf("x86 asm: %s", strings.Join(a.errs, "; "))
		}
	}
	return a.out, nil
}

// MustAssemble panics on assembly errors; for statically known-good
// sources in tests and guest images.
func MustAssemble(source string) []byte {
	b, err := Assemble(source)
	if err != nil {
		// invariant: Must-variant for static, known-good assembly in
		// tests and guest-image builders; the source is authored in this
		// repository, never supplied by a guest or user domain at run
		// time (those go through Assemble and get the error).
		panic(err)
	}
	return b
}

func (a *Assembler) errorf(format string, args ...any) {
	a.errs = append(a.errs, fmt.Sprintf("line %d: %s", a.line, fmt.Sprintf(format, args...)))
}

func (a *Assembler) pc() uint32 { return a.org + uint32(len(a.out)) }

func (a *Assembler) emit(b ...byte) { a.out = append(a.out, b...) }

func (a *Assembler) emit16(v uint32) { a.emit(byte(v), byte(v>>8)) }

func (a *Assembler) emit32(v uint32) { a.emit(byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }

func (a *Assembler) emitZ(v uint32, size int) {
	if size == 2 {
		a.emit16(v)
	} else {
		a.emit32(v)
	}
}

func (a *Assembler) doLine(raw string) {
	// Strip comments (; to end of line, respecting no strings-with-; in
	// code lines except db).
	code := raw
	if i := strings.IndexByte(code, ';'); i >= 0 && !strings.Contains(code[:i], "\"") && !strings.Contains(code[:i], "'") {
		code = code[:i]
	}
	code = strings.TrimSpace(code)
	if code == "" {
		return
	}
	// Label?
	for {
		i := strings.IndexByte(code, ':')
		if i < 0 || strings.ContainsAny(code[:i], " \t[") {
			break
		}
		name := strings.TrimSpace(code[:i])
		if a.pass == 1 {
			if _, dup := a.symbols[name]; dup {
				a.errorf("duplicate label %q", name)
			}
		}
		a.symbols[name] = a.pc()
		code = strings.TrimSpace(code[i+1:])
		if code == "" {
			return
		}
	}

	mnem, rest := splitMnemonic(code)
	switch mnem {
	case "org":
		v, ok := a.eval(rest)
		if !ok {
			a.errorf("bad org %q", rest)
			return
		}
		a.org = v
		return
	case "bits":
		switch strings.TrimSpace(rest) {
		case "16":
			a.bits = 16
		case "32":
			a.bits = 32
		default:
			a.errorf("bits must be 16 or 32")
		}
		return
	case "align":
		n, ok := a.eval(rest)
		if !ok || n == 0 {
			a.errorf("bad align")
			return
		}
		for a.pc()%n != 0 {
			a.emit(0)
		}
		return
	case "db", "dw", "dd":
		a.doData(mnem, rest)
		return
	case "times":
		a.doTimes(rest)
		return
	case "equ":
		a.errorf("equ requires 'name equ value' form")
		return
	}
	// name equ value
	if f := strings.Fields(code); len(f) == 3 && f[1] == "equ" {
		v, ok := a.eval(f[2])
		if !ok {
			a.errorf("bad equ value %q", f[2])
			return
		}
		a.symbols[f[0]] = v
		return
	}
	a.doInst(mnem, rest)
}

func splitMnemonic(code string) (string, string) {
	i := strings.IndexAny(code, " \t")
	if i < 0 {
		return strings.ToLower(code), ""
	}
	return strings.ToLower(code[:i]), strings.TrimSpace(code[i+1:])
}

func (a *Assembler) doData(kind, rest string) {
	for _, item := range splitOperands(rest) {
		item = strings.TrimSpace(item)
		if len(item) >= 2 && (item[0] == '"' || item[0] == '\'') {
			if item[len(item)-1] != item[0] {
				a.errorf("unterminated string")
				continue
			}
			for _, c := range []byte(item[1 : len(item)-1]) {
				switch kind {
				case "db":
					a.emit(c)
				case "dw":
					a.emit16(uint32(c))
				case "dd":
					a.emit32(uint32(c))
				}
			}
			continue
		}
		v, ok := a.eval(item)
		if !ok {
			if a.pass == 2 {
				a.errorf("bad data item %q", item)
			}
			v = 0
		}
		switch kind {
		case "db":
			a.emit(byte(v))
		case "dw":
			a.emit16(v)
		case "dd":
			a.emit32(v)
		}
	}
}

func (a *Assembler) doTimes(rest string) {
	i := strings.IndexAny(rest, " \t")
	if i < 0 {
		a.errorf("times needs a count and a directive")
		return
	}
	n, ok := a.eval(rest[:i])
	if !ok {
		a.errorf("bad times count %q", rest[:i])
		return
	}
	body := strings.TrimSpace(rest[i:])
	mnem, brest := splitMnemonic(body)
	if mnem != "db" && mnem != "dw" && mnem != "dd" {
		a.errorf("times supports only data directives")
		return
	}
	for k := uint32(0); k < n; k++ {
		a.doData(mnem, brest)
	}
}

// eval evaluates a constant expression: numbers, labels, $, + and -.
func (a *Assembler) eval(expr string) (uint32, bool) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, false
	}
	// Tokenize on + and - at top level.
	var total int64
	sign := int64(1)
	tok := ""
	flushed := true
	flush := func() bool {
		if tok == "" {
			return !flushed
		}
		v, ok := a.evalAtom(tok)
		if !ok {
			return false
		}
		total += sign * int64(v)
		tok = ""
		flushed = true
		return true
	}
	for i := 0; i < len(expr); i++ {
		c := expr[i]
		switch c {
		case '+':
			if !flush() {
				return 0, false
			}
			sign = 1
		case '-':
			if tok == "" && flushed && total == 0 && i == 0 {
				sign = -1
				continue
			}
			if !flush() {
				return 0, false
			}
			sign = -1
		case ' ', '\t':
		case '*':
			// scale inside eval not supported; memory parser handles it
			return 0, false
		default:
			tok += string(c)
			flushed = false
		}
	}
	if tok == "" {
		return 0, false
	}
	if v, ok := a.evalAtom(tok); ok {
		total += sign * int64(v)
		return uint32(total), true
	}
	return 0, false
}

func (a *Assembler) evalAtom(tok string) (uint32, bool) {
	tok = strings.TrimSpace(tok)
	if tok == "$" {
		return a.pc(), true
	}
	if v, err := strconv.ParseUint(tok, 0, 64); err == nil {
		return uint32(v), true
	}
	if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
		return uint32(v), true
	}
	if len(tok) == 3 && tok[0] == '\'' && tok[2] == '\'' {
		return uint32(tok[1]), true
	}
	if v, ok := a.symbols[tok]; ok {
		return v, true
	}
	if a.pass == 1 {
		// Forward reference: value unknown yet, treat as 0 but remember
		// we must not choose size-dependent encodings for it. The
		// instruction encoders always use full-width immediates for
		// symbolic operands, so sizes stay stable between passes.
		if isIdent(tok) {
			return 0, true
		}
	}
	return 0, false
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits on commas not inside brackets or quotes.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if strings.TrimSpace(s[start:]) != "" || len(out) > 0 {
		out = append(out, s[start:])
	}
	return out
}
