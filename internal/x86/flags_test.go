package x86

import (
	"testing"
	"testing/quick"
)

// flagRig executes `op eax, [mem]` snippets repeatedly with fresh
// operands, capturing EFLAGS via PUSHFD.
type flagRig struct {
	env *flatEnv
	ip  *Interp
	st  *CPUState
}

func newFlagRig(t *testing.T, mnemonic string) *flagRig {
	t.Helper()
	code := MustAssemble("bits 32\norg 0x1000\n" +
		"	mov eax, [0x5000]\n" +
		"	" + mnemonic + " eax, [0x5004]\n" +
		"	pushfd\n" +
		"	pop ebx\n" +
		"	hlt\n")
	env := newFlatEnv(1 << 20)
	copy(env.mem[0x1000:], code)
	st := &CPUState{}
	ip := NewInterp(env, st, Intercepts{})
	return &flagRig{env: env, ip: ip, st: st}
}

// run executes the snippet with the given operands and returns
// (result, eflags).
func (r *flagRig) run(t *testing.T, a, b uint32) (uint32, uint32) {
	t.Helper()
	r.st.Reset()
	r.st.CR0 = CR0PE
	for i := range r.st.Seg {
		r.st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	}
	r.st.EIP = 0x1000
	r.st.GPR[ESP] = 0x80000
	for i := 0; i < 4; i++ {
		r.env.mem[0x5000+i] = byte(a >> (8 * uint(i)))
		r.env.mem[0x5004+i] = byte(b >> (8 * uint(i)))
	}
	for i := 0; i < 10 && !r.st.Halted; i++ {
		if err := r.ip.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	return r.st.GPR[EAX], r.st.GPR[EBX]
}

// Reference flag computations per the Intel SDM.
func refParity(v uint32) bool {
	v &= 0xff
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v&1 == 0
}

type refFlags struct{ cf, pf, af, zf, sf, of bool }

func refAdd(a, b uint32) (uint32, refFlags) {
	res := a + b
	return res, refFlags{
		cf: uint64(a)+uint64(b) > 0xffffffff,
		pf: refParity(res),
		af: (a^b^res)&0x10 != 0,
		zf: res == 0,
		sf: res>>31 != 0,
		of: (a^res)&(b^res)>>31&1 != 0,
	}
}

func refSub(a, b uint32) (uint32, refFlags) {
	res := a - b
	return res, refFlags{
		cf: a < b,
		pf: refParity(res),
		af: (a^b^res)&0x10 != 0,
		zf: res == 0,
		sf: res>>31 != 0,
		of: (a^b)&(a^res)>>31&1 != 0,
	}
}

func refLogic(res uint32) refFlags {
	return refFlags{pf: refParity(res), zf: res == 0, sf: res>>31 != 0}
}

func checkFlags(t *testing.T, mnem string, a, b, gotRes, gotFl uint32, wantRes uint32, want refFlags) bool {
	t.Helper()
	if gotRes != wantRes {
		t.Errorf("%s(%#x,%#x): result %#x, want %#x", mnem, a, b, gotRes, wantRes)
		return false
	}
	for _, c := range []struct {
		name string
		bit  uint32
		want bool
	}{
		{"CF", FlagCF, want.cf}, {"PF", FlagPF, want.pf}, {"AF", FlagAF, want.af},
		{"ZF", FlagZF, want.zf}, {"SF", FlagSF, want.sf}, {"OF", FlagOF, want.of},
	} {
		if got := gotFl&c.bit != 0; got != c.want {
			t.Errorf("%s(%#x,%#x): %s = %v, want %v", mnem, a, b, c.name, got, c.want)
			return false
		}
	}
	return true
}

func TestALUFlagsAgainstReference(t *testing.T) {
	type refFn func(a, b uint32) (uint32, refFlags)
	cases := map[string]refFn{
		"add": refAdd,
		"sub": refSub,
		"and": func(a, b uint32) (uint32, refFlags) { return a & b, refLogic(a & b) },
		"or":  func(a, b uint32) (uint32, refFlags) { return a | b, refLogic(a | b) },
		"xor": func(a, b uint32) (uint32, refFlags) { return a ^ b, refLogic(a ^ b) },
	}
	for mnem, ref := range cases {
		rig := newFlagRig(t, mnem)
		f := func(a, b uint32) bool {
			gotRes, gotFl := rig.run(t, a, b)
			wantRes, want := ref(a, b)
			return checkFlags(t, mnem, a, b, gotRes, gotFl, wantRes, want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", mnem, err)
		}
		// Edge cases quick.Check may miss.
		for _, p := range [][2]uint32{
			{0, 0}, {0xffffffff, 1}, {0x7fffffff, 1}, {0x80000000, 0x80000000},
			{0x80000000, 1}, {1, 0xffffffff},
		} {
			gotRes, gotFl := rig.run(t, p[0], p[1])
			wantRes, want := ref(p[0], p[1])
			checkFlags(t, mnem, p[0], p[1], gotRes, gotFl, wantRes, want)
		}
	}
}

func TestCmpMatchesSubFlags(t *testing.T) {
	rig := newFlagRig(t, "cmp")
	f := func(a, b uint32) bool {
		gotRes, gotFl := rig.run(t, a, b)
		if gotRes != a {
			t.Errorf("cmp modified eax: %#x", gotRes)
			return false
		}
		_, want := refSub(a, b)
		return checkFlags(t, "cmp", a, b, a, gotFl, a, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIncDecPreserveCF(t *testing.T) {
	// INC/DEC must leave CF untouched (stc first, then inc).
	for _, src := range []string{
		"stc\n	inc eax\n", "stc\n	dec eax\n",
	} {
		env := newFlatEnv(1 << 20)
		code := MustAssemble("bits 32\norg 0x1000\n	mov eax, 5\n	" + src + "	hlt\n")
		copy(env.mem[0x1000:], code)
		st := &CPUState{}
		st.Reset()
		st.CR0 = CR0PE
		for i := range st.Seg {
			st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
		}
		st.EIP = 0x1000
		ip := NewInterp(env, st, Intercepts{})
		for i := 0; i < 10 && !st.Halted; i++ {
			if err := ip.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if !st.GetFlag(FlagCF) {
			t.Errorf("%q cleared CF", src)
		}
	}
}

func TestShiftFlagReference(t *testing.T) {
	// SHL/SHR carry = last bit shifted out.
	for _, tc := range []struct {
		src    string
		val    uint32
		wantCF bool
		want   uint32
	}{
		{"shl eax, 1", 0x80000000, true, 0},
		{"shl eax, 1", 0x40000000, false, 0x80000000},
		{"shr eax, 1", 1, true, 0},
		{"shr eax, 4", 0x18, true, 1},
		{"sar eax, 1", 0x80000000, false, 0xc0000000},
		{"sar eax, 31", 0xffffffff, true, 0xffffffff},
	} {
		env := newFlatEnv(1 << 20)
		code := MustAssemble("bits 32\norg 0x1000\n	" + tc.src + "\n	hlt\n")
		copy(env.mem[0x1000:], code)
		st := &CPUState{}
		st.Reset()
		st.CR0 = CR0PE
		for i := range st.Seg {
			st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
		}
		st.EIP = 0x1000
		st.GPR[EAX] = tc.val
		ip := NewInterp(env, st, Intercepts{})
		for i := 0; i < 10 && !st.Halted; i++ {
			if err := ip.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if st.GPR[EAX] != tc.want {
			t.Errorf("%q(%#x): result %#x, want %#x", tc.src, tc.val, st.GPR[EAX], tc.want)
		}
		if st.GetFlag(FlagCF) != tc.wantCF {
			t.Errorf("%q(%#x): CF = %v, want %v", tc.src, tc.val, st.GetFlag(FlagCF), tc.wantCF)
		}
	}
}

func TestMulDivReference(t *testing.T) {
	// MUL/DIV against Go's 64-bit arithmetic.
	f := func(a, b uint32) bool {
		if b == 0 {
			return true
		}
		env := newFlatEnv(1 << 20)
		code := MustAssemble(`bits 32
org 0x1000
	mov eax, [0x5000]
	mov ecx, [0x5004]
	mul ecx
	mov esi, eax
	mov edi, edx
	mov eax, [0x5000]
	xor edx, edx
	div ecx
	hlt`)
		copy(env.mem[0x1000:], code)
		st := &CPUState{}
		st.Reset()
		st.CR0 = CR0PE
		for i := range st.Seg {
			st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
		}
		st.EIP = 0x1000
		for i := 0; i < 4; i++ {
			env.mem[0x5000+i] = byte(a >> (8 * uint(i)))
			env.mem[0x5004+i] = byte(b >> (8 * uint(i)))
		}
		ip := NewInterp(env, st, Intercepts{})
		for i := 0; i < 20 && !st.Halted; i++ {
			if err := ip.Step(); err != nil {
				t.Fatalf("step: %v", err)
			}
		}
		prod := uint64(a) * uint64(b)
		if st.GPR[ESI] != uint32(prod) || st.GPR[EDI] != uint32(prod>>32) {
			t.Errorf("mul(%#x,%#x) = %#x:%#x, want %#x:%#x", a, b, st.GPR[EDI], st.GPR[ESI],
				uint32(prod>>32), uint32(prod))
			return false
		}
		if st.GPR[EAX] != a/b || st.GPR[EDX] != a%b {
			t.Errorf("div(%#x,%#x) = q%#x r%#x, want q%#x r%#x", a, b,
				st.GPR[EAX], st.GPR[EDX], a/b, a%b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
