package x86

import "fmt"

// Interp executes instructions for one virtual CPU. It is the substitute
// for hardware guest mode: sensitive instructions and intercepted events
// produce *VMExit errors exactly where VT-x would trap to the
// microhypervisor; guest-visible faults are delivered through the guest's
// IDT like hardware would.
type Interp struct {
	Env Env
	IC  Intercepts
	St  *CPUState

	// InstRet counts retired instructions (including REP iterations);
	// the binding layer charges cycle costs from it.
	InstRet uint64

	// ExtraCycles accumulates additional latency of slow instructions
	// (DIV, MUL) beyond the base per-instruction cost; the binding
	// layer charges the delta alongside InstRet.
	ExtraCycles uint64

	// TSC, if set, supplies RDTSC values; otherwise a per-instruction
	// counter is used.
	TSC func() uint64

	// MSRs backs non-intercepted RDMSR/WRMSR.
	MSRs map[uint32]uint64

	// Cache, when set, memoizes instruction decode per physical code
	// page. Host-side only: attaching or detaching it never changes
	// simulated cycles, traces or guest state. It takes effect only
	// when Env also implements ExecPager.
	Cache *DecodeCache

	// pager is Env's ExecPager extension, captured once at creation.
	pager ExecPager

	// StepHook, when set, is invoked at the top of every Step, before
	// the instruction at the current EIP is fetched. The profiler's
	// virtual-time sampler hangs off it. Host-side only: the hook must
	// not touch guest state or clocks, and a nil hook costs exactly
	// one predicted branch, so execution is unchanged when disabled.
	StepHook func()
}

// NewInterp binds an interpreter to an environment and CPU state.
func NewInterp(env Env, st *CPUState, ic Intercepts) *Interp {
	ip := &Interp{Env: env, St: st, IC: ic, MSRs: make(map[uint32]uint64)}
	ip.pager, _ = env.(ExecPager)
	return ip
}

type execFetcher struct {
	ip  *Interp
	pos uint32
}

func (f *execFetcher) FetchByte() (byte, error) {
	st := f.ip.St
	v, err := f.ip.Env.MemRead(st, st.Seg[CS].Base+f.pos, 1, AccessExec)
	if err != nil {
		return 0, err
	}
	f.pos++
	return byte(v), nil
}

// fetchDecode produces the instruction at CS:EIP — through the decoded-
// instruction cache when the environment exposes direct code-page access
// and a cache is attached, else by per-byte fetch through Env.MemRead.
//
// Charge identity: the fast path performs exactly one translation of the
// fetch address, which is also what the slow path charges — only the
// first byte's MemRead can miss the TLB; the remaining bytes of an
// in-page fetch hit the translation just inserted, for free. Everything
// else the fast path skips (per-byte MemRead calls, re-decode) is host
// work with no simulated cost, so cycles, traces and faults are
// bit-identical either way.
func (ip *Interp) fetchDecode(st *CPUState) (*Inst, error) {
	def32 := st.Seg[CS].Def32
	if ip.Cache != nil && ip.pager != nil {
		va := st.Seg[CS].Base + st.EIP
		data, page, gen, err := ip.pager.ExecPage(st, va)
		if err != nil {
			return nil, err
		}
		if data != nil {
			dp, fresh := ip.Cache.page(page, def32, gen)
			return ip.decodeFromPage(dp, data, int(va&(codePageSize-1)), def32, fresh)
		}
	}
	f := &execFetcher{ip: ip, pos: st.EIP}
	return Decode(f, def32)
}

// decodeFromPage returns the cached decode at page offset off, filling
// the cache on a miss. On a stale page (fresh=false: the page was
// written since fill time) a hit is first byte-verified against the
// live page; only decodes whose bytes actually changed re-decode. An
// instruction that spills past the page's end re-fetches through the
// environment, so the next page's translation happens (and faults and
// charges) exactly as on the slow path; the first page's bytes re-read
// for free — their translation was just inserted into the TLB. In-page
// decode failures (the 15-byte limit) surface as-is: the slow path
// would read the same bytes and fail identically.
func (ip *Interp) decodeFromPage(dp *decodedPage, data []byte, off int, def32, fresh bool) (*Inst, error) {
	if inst := dp.insts[off]; inst != nil && (fresh || instValid(inst, data, off)) {
		return inst, nil
	}
	inst, err := Decode(&pageFetcher{data: data, off: off}, def32)
	if err == nil {
		cacheInst(dp, data, off, inst)
		return inst, nil
	}
	if _, spill := err.(errPageSpill); !spill {
		return nil, err
	}
	f := &execFetcher{ip: ip, pos: ip.St.EIP}
	return Decode(f, def32)
}

// Step fetches, decodes and executes one instruction (or a bounded burst
// of REP iterations). It returns nil on normal progress, or *VMExit when
// control must leave guest mode. Guest exceptions are delivered to the
// guest internally; only triple faults surface as exits.
func (ip *Interp) Step() error {
	st := ip.St
	if st.Halted {
		return nil // waiting for an interrupt; the run loop advances time
	}
	if ip.StepHook != nil {
		ip.StepHook()
	}
	prevShadow := st.IntShadow
	st.IntShadow = false

	inst, err := ip.fetchDecode(st)
	return ip.stepDecoded(inst, err, prevShadow)
}

// stepDecoded is the back half of Step: execute an already-fetched
// instruction (or route the fetch error err), with the interrupt shadow
// already consumed and prevShadow holding its pre-fetch value for the
// rollback snapshot. StepBlock shares it so every mid-flight fallback
// from the fused path behaves byte-for-byte like the sequential
// interpreter without re-translating the fetch address.
func (ip *Interp) stepDecoded(inst *Inst, err error, prevShadow bool) error {
	st := ip.St
	if err == nil && instNoFault(inst) {
		// The instruction provably cannot fault, exit or error, so the
		// rollback snapshot below is dead weight; skip the copy.
		st.EIP += uint32(inst.Len)
		if err := ip.exec(inst); err != nil {
			// invariant: instNoFault admitted an instruction whose exec
			// failed — a classification bug in the simulator itself,
			// never reachable from guest input.
			panic(fmt.Sprintf("x86: no-fault instruction %v failed: %v", inst, err))
		}
		ip.InstRet++
		return nil
	}

	snapshot := *st
	snapshot.IntShadow = prevShadow
	if err == nil {
		st.EIP += uint32(inst.Len)
		err = ip.exec(inst)
	}
	if err == nil {
		ip.InstRet++
		return nil
	}

	switch e := err.(type) {
	case *VMExit:
		*st = snapshot
		if inst != nil {
			e.InstLen = inst.Len
		}
		return e
	case *Exception:
		*st = snapshot
		ip.InstRet++
		return ip.deliverException(e)
	case InstTooLongError:
		*st = snapshot
		return ip.deliverException(GPFault(0))
	default:
		return fmt.Errorf("x86: interpreter error at eip=%#x: %w", snapshot.EIP, err)
	}
}

// deliverException injects a fault into the guest, escalating to double
// and triple fault as hardware does.
func (ip *Interp) deliverException(e *Exception) error {
	if e.Vector == VecPF {
		ip.St.CR2 = e.CR2
	}
	err := ip.deliverEvent(e.Vector, e.Code, e.HasCode, false)
	if err == nil {
		return nil
	}
	if _, ok := err.(*Exception); ok {
		// Fault during fault delivery: double fault.
		if e.Vector == VecDF {
			return &VMExit{Reason: ExitTripleFault}
		}
		return ip.deliverException(&Exception{Vector: VecDF, Code: 0, HasCode: true})
	}
	return err
}

// Interrupt delivers an external or virtual interrupt vector to the
// guest. The caller must have checked interruptibility (IF, shadow).
func (ip *Interp) Interrupt(vector uint8) error {
	ip.St.Halted = false
	err := ip.deliverEvent(int(vector), 0, false, false)
	if err == nil {
		return nil
	}
	if _, ok := err.(*Exception); ok {
		return ip.deliverException(&Exception{Vector: VecDF, Code: 0, HasCode: true})
	}
	return err
}

// Interruptible reports whether an interrupt can be delivered now.
func (ip *Interp) Interruptible() bool {
	return ip.St.IF() && !ip.St.IntShadow
}

// deliverEvent pushes an interrupt/exception frame and vectors through
// the IVT (real mode) or IDT (protected mode).
func (ip *Interp) deliverEvent(vec int, code uint32, hasCode bool, swInt bool) error {
	st := ip.St
	if !st.ProtectedMode() {
		// Real mode: IVT at linear 0, 4 bytes per vector.
		off, err := ip.readLinear(uint32(vec)*4, 2)
		if err != nil {
			return err
		}
		sel, err := ip.readLinear(uint32(vec)*4+2, 2)
		if err != nil {
			return err
		}
		if err := ip.push(st.EFLAGS&0xffff, 2); err != nil {
			return err
		}
		if err := ip.push(uint32(st.Seg[CS].Sel), 2); err != nil {
			return err
		}
		if err := ip.push(st.EIP&0xffff, 2); err != nil {
			return err
		}
		st.SetFlag(FlagIF, false)
		st.SetFlag(FlagTF, false)
		st.Seg[CS] = Segment{Sel: uint16(sel), Base: sel << 4, Limit: 0xffff}
		st.EIP = off
		return nil
	}

	// Protected mode: read the 8-byte gate descriptor.
	if uint32(vec)*8+7 > uint32(st.IDTR.Limit) {
		return GPFault(uint32(vec)*8 | 2)
	}
	lo, err := ip.readLinear(st.IDTR.Base+uint32(vec)*8, 4)
	if err != nil {
		return err
	}
	hi, err := ip.readLinear(st.IDTR.Base+uint32(vec)*8+4, 4)
	if err != nil {
		return err
	}
	if hi&(1<<15) == 0 { // present bit
		return GPFault(uint32(vec)*8 | 2)
	}
	gateType := hi >> 8 & 0xf
	if gateType != 0xe && gateType != 0xf && gateType != 0x6 && gateType != 0x7 {
		return GPFault(uint32(vec)*8 | 2)
	}
	sel := uint16(lo >> 16)
	offset := lo&0xffff | hi&0xffff0000
	if gateType == 0x6 || gateType == 0x7 { // 16-bit gates
		offset &= 0xffff
	}

	if err := ip.push(st.EFLAGS, 4); err != nil {
		return err
	}
	if err := ip.push(uint32(st.Seg[CS].Sel), 4); err != nil {
		return err
	}
	if err := ip.push(st.EIP, 4); err != nil {
		return err
	}
	if hasCode {
		if err := ip.push(code, 4); err != nil {
			return err
		}
	}
	if err := ip.loadSeg(CS, sel); err != nil {
		return err
	}
	if gateType == 0xe || gateType == 0x6 { // interrupt gate masks IF
		st.SetFlag(FlagIF, false)
	}
	st.SetFlag(FlagTF, false)
	st.EIP = offset
	return nil
}

// loadSeg loads a segment register. In real mode the base is sel<<4; in
// protected mode the descriptor is read from the GDT.
func (ip *Interp) loadSeg(seg int, sel uint16) error {
	st := ip.St
	if !st.ProtectedMode() {
		st.Seg[seg] = Segment{Sel: sel, Base: uint32(sel) << 4, Limit: 0xffff, Def32: st.Seg[seg].Def32}
		return nil
	}
	if sel&^0x3 == 0 {
		// Null selector: allowed for data segments, faults on use; we
		// model it as a zero segment.
		if seg == CS || seg == SS {
			return GPFault(0)
		}
		st.Seg[seg] = Segment{}
		return nil
	}
	if sel&0x4 != 0 {
		return GPFault(uint32(sel)) // no LDT support
	}
	index := uint32(sel &^ 0x7)
	if index+7 > uint32(st.GDTR.Limit) {
		return GPFault(uint32(sel))
	}
	lo, err := ip.readLinear(st.GDTR.Base+index, 4)
	if err != nil {
		return err
	}
	hi, err := ip.readLinear(st.GDTR.Base+index+4, 4)
	if err != nil {
		return err
	}
	if hi&(1<<15) == 0 { // present
		return GPFault(uint32(sel))
	}
	base := lo>>16 | hi<<16&0xff0000 | hi&0xff000000
	limit := lo&0xffff | hi&0xf0000
	if hi&(1<<23) != 0 { // granularity: 4K units
		limit = limit<<12 | 0xfff
	}
	st.Seg[seg] = Segment{Sel: sel, Base: base, Limit: limit, Def32: hi&(1<<22) != 0}
	if seg == SS {
		st.IntShadow = true
	}
	return nil
}

// readLinear reads from a linear (post-segmentation) address.
func (ip *Interp) readLinear(la uint32, size int) (uint32, error) {
	return ip.Env.MemRead(ip.St, la, size, AccessRead)
}

// writeLinear writes to a linear address.
func (ip *Interp) writeLinear(la uint32, size int, v uint32) error {
	return ip.Env.MemWrite(ip.St, la, size, v)
}

// linear applies segmentation.
func (ip *Interp) linear(seg int, off uint32) uint32 {
	return ip.St.Seg[seg].Base + off
}

// memRead reads seg:off.
func (ip *Interp) memRead(seg int, off uint32, size int) (uint32, error) {
	return ip.readLinear(ip.linear(seg, off), size)
}

// memWrite writes seg:off.
func (ip *Interp) memWrite(seg int, off uint32, size int, v uint32) error {
	return ip.writeLinear(ip.linear(seg, off), size, v)
}

// stackWidth returns the stack pointer width in bytes (SS.D bit).
func (ip *Interp) stackWidth() int {
	if ip.St.Seg[SS].Def32 {
		return 4
	}
	return 2
}

// push writes val (of size bytes) to the stack.
func (ip *Interp) push(val uint32, size int) error {
	st := ip.St
	sw := ip.stackWidth()
	sp := st.GPR[ESP]
	var newSP uint32
	if sw == 4 {
		newSP = sp - uint32(size)
	} else {
		newSP = sp&^0xffff | (sp-uint32(size))&0xffff
	}
	if err := ip.memWrite(SS, newSP&spMask(sw), size, val); err != nil {
		return err
	}
	st.GPR[ESP] = newSP
	return nil
}

// pop reads size bytes off the stack.
func (ip *Interp) pop(size int) (uint32, error) {
	st := ip.St
	sw := ip.stackWidth()
	sp := st.GPR[ESP]
	v, err := ip.memRead(SS, sp&spMask(sw), size)
	if err != nil {
		return 0, err
	}
	if sw == 4 {
		st.GPR[ESP] = sp + uint32(size)
	} else {
		st.GPR[ESP] = sp&^0xffff | (sp+uint32(size))&0xffff
	}
	return v, nil
}

func spMask(sw int) uint32 {
	if sw == 4 {
		return 0xffffffff
	}
	return 0xffff
}

// readRM reads the ModRM r/m operand.
func (ip *Interp) readRM(inst *Inst, size int) (uint32, error) {
	if inst.Mod == 3 {
		return ip.St.Reg(inst.RM, size), nil
	}
	off, seg := inst.effectiveAddr(ip.St)
	return ip.memRead(seg, off, size)
}

// writeRM writes the ModRM r/m operand.
func (ip *Interp) writeRM(inst *Inst, size int, v uint32) error {
	if inst.Mod == 3 {
		ip.St.SetReg(inst.RM, size, v)
		return nil
	}
	off, seg := inst.effectiveAddr(ip.St)
	return ip.memWrite(seg, off, size, v)
}

// rmAddr returns the linear address of a memory r/m operand.
func (ip *Interp) rmAddr(inst *Inst) uint32 {
	off, seg := inst.effectiveAddr(ip.St)
	return ip.linear(seg, off)
}

func (ip *Interp) tsc() uint64 {
	if ip.TSC != nil {
		return ip.TSC()
	}
	return ip.InstRet
}

// CPUIDValues returns the synthetic CPUID leaves of the simulated
// processor. The VMM also calls this to emulate intercepted CPUID.
func CPUIDValues(leaf, sub uint32) (a, b, c, d uint32) {
	switch leaf {
	case 0:
		// "NovaSimCPU--" in the vendor string registers.
		return 1, 0x61766f4e, 0x2d2d5550, 0x436d6953
	case 1:
		// family 6 model 26 (Bloomfield-ish); features: FPU TSC MSR PSE
		// PGE CMOV.
		return 0x000106a0, 0, 0, 1<<0 | 1<<3 | 1<<4 | 1<<5 | 1<<13 | 1<<15
	}
	return 0, 0, 0, 0
}
