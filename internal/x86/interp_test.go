package x86

import "testing"

// flatEnv is a test environment: identity-mapped memory, recorded port
// I/O, no intercepts.
type flatEnv struct {
	mem   []byte
	ports map[uint16]uint32
	outs  []portOp
	invs  int
}

type portOp struct {
	port uint16
	size int
	val  uint32
}

func newFlatEnv(size int) *flatEnv {
	return &flatEnv{mem: make([]byte, size), ports: make(map[uint16]uint32)}
}

func (e *flatEnv) MemRead(st *CPUState, va uint32, size int, kind AccessKind) (uint32, error) {
	if int(va)+size > len(e.mem) {
		return 0, PageFault(va, false, false, false)
	}
	var v uint32
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint32(e.mem[va+uint32(i)])
	}
	return v, nil
}

func (e *flatEnv) MemWrite(st *CPUState, va uint32, size int, val uint32) error {
	if int(va)+size > len(e.mem) {
		return PageFault(va, false, true, false)
	}
	for i := 0; i < size; i++ {
		e.mem[va+uint32(i)] = byte(val >> (8 * uint(i)))
	}
	return nil
}

func (e *flatEnv) In(port uint16, size int) (uint32, error) { return e.ports[port], nil }

func (e *flatEnv) Out(port uint16, size int, val uint32) error {
	e.outs = append(e.outs, portOp{port, size, val})
	return nil
}

func (e *flatEnv) InvalidateTLB(st *CPUState, all bool, va uint32) { e.invs++ }

// run32 assembles src as 32-bit code at org 0, loads it at 0x1000 with a
// flat protected-mode setup, and steps until HLT or maxSteps.
func run32(t *testing.T, src string, maxSteps int) (*Interp, *flatEnv) {
	t.Helper()
	code := MustAssemble("bits 32\norg 0x1000\n" + src)
	env := newFlatEnv(1 << 20)
	copy(env.mem[0x1000:], code)
	st := &CPUState{}
	st.Reset()
	st.CR0 = CR0PE
	for i := range st.Seg {
		st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	}
	st.EIP = 0x1000
	st.GPR[ESP] = 0x80000
	ip := NewInterp(env, st, Intercepts{})
	for i := 0; i < maxSteps; i++ {
		if st.Halted {
			return ip, env
		}
		if err := ip.Step(); err != nil {
			t.Fatalf("step %d: %v (state %v)", i, err, st)
		}
	}
	if !st.Halted {
		t.Fatalf("did not halt after %d steps: %v", maxSteps, st)
	}
	return ip, env
}

func TestInterpMovArithmetic(t *testing.T) {
	ip, _ := run32(t, `
		mov eax, 5
		mov ebx, 7
		add eax, ebx
		sub eax, 2
		imul eax, eax, 3
		hlt`, 100)
	if got := ip.St.GPR[EAX]; got != 30 {
		t.Errorf("eax = %d, want 30", got)
	}
}

func TestInterpFlagsAndJcc(t *testing.T) {
	ip, _ := run32(t, `
		mov ecx, 10
		xor eax, eax
	loop_top:
		add eax, ecx
		dec ecx
		jnz loop_top
		hlt`, 200)
	if got := ip.St.GPR[EAX]; got != 55 {
		t.Errorf("eax = %d, want 55", got)
	}
}

func TestInterpMemoryAndStack(t *testing.T) {
	ip, env := run32(t, `
		mov eax, 0xdeadbeef
		mov [0x2000], eax
		mov ebx, [0x2000]
		push ebx
		pop ecx
		hlt`, 100)
	if ip.St.GPR[ECX] != 0xdeadbeef {
		t.Errorf("ecx = %#x", ip.St.GPR[ECX])
	}
	if env.mem[0x2000] != 0xef || env.mem[0x2003] != 0xde {
		t.Error("little-endian store wrong")
	}
}

func TestInterpCallRet(t *testing.T) {
	ip, _ := run32(t, `
		mov eax, 1
		call fn
		add eax, 100
		hlt
	fn:
		add eax, 10
		ret`, 100)
	if ip.St.GPR[EAX] != 111 {
		t.Errorf("eax = %d, want 111", ip.St.GPR[EAX])
	}
}

func TestInterpSIBAddressing(t *testing.T) {
	ip, _ := run32(t, `
		mov ebx, 0x2000
		mov esi, 4
		mov dword [ebx+esi*4+8], 42
		mov eax, [0x2018]
		hlt`, 100)
	if ip.St.GPR[EAX] != 42 {
		t.Errorf("eax = %d, want 42", ip.St.GPR[EAX])
	}
}

func TestInterpMulDiv(t *testing.T) {
	ip, _ := run32(t, `
		mov eax, 100
		mov ebx, 7
		xor edx, edx
		div ebx
		mov esi, eax
		mov edi, edx
		hlt`, 100)
	if ip.St.GPR[ESI] != 14 || ip.St.GPR[EDI] != 2 {
		t.Errorf("q=%d r=%d, want 14 2", ip.St.GPR[ESI], ip.St.GPR[EDI])
	}
}

func TestInterpDivideByZeroFaults(t *testing.T) {
	// Set up an IDT entry for #DE that halts.
	src := `
		; IDT at 0x3000 - entry 0 points to handler
		mov dword [0x3000], handler_lo
		mov dword [0x3004], 0x00008e00
		mov word [0x3000], handler
		mov word [0x3006], 0
		lidt [idtr]
		xor ebx, ebx
		mov eax, 1
		div ebx
		; never reached
		mov eax, 0xbad
		hlt
	handler:
		mov eax, 0x600d
		hlt
	idtr:
		dw 0x7ff
		dd 0x3000
	handler_lo: dd 0
	`
	// Patch: the code above writes handler offset into IDT low word and
	// selector must be code segment. Build IDT programmatically instead.
	code := MustAssemble("bits 32\norg 0x1000\n" + `
		lidt [idtr]
		xor ebx, ebx
		mov eax, 1
		div ebx
		mov eax, 0xbad
		hlt
	handler:
		mov eax, 0x600d
		hlt
	idtr:
		dw 0x7ff
		dd 0x3000
	`)
	_ = src
	env := newFlatEnv(1 << 20)
	copy(env.mem[0x1000:], code)
	// Find handler offset: it's right after "mov eax, 0xbad; hlt":
	// lidt(7? bytes)... instead locate 0x600d constant after assembling.
	// Simpler: assemble handler at a fixed org.
	handler := MustAssemble("bits 32\norg 0x5000\nmov eax, 0x600d\nhlt")
	copy(env.mem[0x5000:], handler)
	// GDT at 0x4000: null + flat code descriptor at selector 0x08.
	gdt := []byte{
		0, 0, 0, 0, 0, 0, 0, 0,
		0xff, 0xff, 0, 0, 0, 0x9a, 0xcf, 0, // flat 32-bit code
	}
	copy(env.mem[0x4000:], gdt)
	// IDT entry 0 at 0x3000: offset 0x5000, selector 0x08, 32-bit
	// interrupt gate.
	idt := []byte{0x00, 0x50, 0x08, 0x00, 0x00, 0x8e, 0x00, 0x00}
	copy(env.mem[0x3000:], idt)

	st := &CPUState{}
	st.Reset()
	st.CR0 = CR0PE
	for i := range st.Seg {
		st.Seg[i] = Segment{Sel: 0x08, Base: 0, Limit: 0xffffffff, Def32: true}
	}
	st.GDTR = DescTable{Base: 0x4000, Limit: 0xff}
	st.EIP = 0x1000
	st.GPR[ESP] = 0x80000
	ip := NewInterp(env, st, Intercepts{})
	for i := 0; i < 100 && !st.Halted; i++ {
		if err := ip.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if st.GPR[EAX] != 0x600d {
		t.Errorf("eax = %#x, want 0x600d (handler did not run)", st.GPR[EAX])
	}
}

func TestInterpStringOps(t *testing.T) {
	ip, env := run32(t, `
		cld
		mov esi, src_data
		mov edi, 0x2000
		mov ecx, 3
		rep movsd
		mov eax, [0x2008]
		hlt
	src_data:
		dd 0x11111111, 0x22222222, 0x33333333`, 300)
	if ip.St.GPR[EAX] != 0x33333333 {
		t.Errorf("eax = %#x", ip.St.GPR[EAX])
	}
	if ip.St.GPR[ECX] != 0 {
		t.Errorf("ecx = %d after rep", ip.St.GPR[ECX])
	}
	_ = env
}

func TestInterpRepStosLarge(t *testing.T) {
	// Exceeds the REP burst: instruction must restart transparently.
	ip, env := run32(t, `
		cld
		mov edi, 0x2000
		mov eax, 0xabababab
		mov ecx, 1000
		rep stosd
		hlt`, 5000)
	if ip.St.GPR[ECX] != 0 {
		t.Fatalf("ecx = %d", ip.St.GPR[ECX])
	}
	for _, off := range []int{0x2000, 0x2000 + 999*4} {
		if env.mem[off] != 0xab {
			t.Errorf("mem[%#x] = %#x", off, env.mem[off])
		}
	}
	if env.mem[0x2000+1000*4] == 0xab {
		t.Error("stosd wrote past the end")
	}
}

func TestInterpPortIO(t *testing.T) {
	code := `
		mov al, 0x42
		out 0x80, al
		mov dx, 0x3f8
		mov al, 'X'
		out dx, al
		in al, 0x60
		hlt`
	env := newFlatEnv(1 << 20)
	env.ports[0x60] = 0x99
	bin := MustAssemble("bits 32\norg 0x1000\n" + code)
	copy(env.mem[0x1000:], bin)
	st := &CPUState{}
	st.Reset()
	st.CR0 = CR0PE
	for i := range st.Seg {
		st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	}
	st.EIP = 0x1000
	st.GPR[ESP] = 0x80000
	ip := NewInterp(env, st, Intercepts{})
	for i := 0; i < 50 && !st.Halted; i++ {
		if err := ip.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(env.outs) != 2 || env.outs[0].port != 0x80 || env.outs[0].val != 0x42 {
		t.Errorf("outs = %+v", env.outs)
	}
	if env.outs[1].port != 0x3f8 || env.outs[1].val != 'X' {
		t.Errorf("outs[1] = %+v", env.outs[1])
	}
	if st.Reg8(EAX) != 0x99 {
		t.Errorf("al = %#x after in", st.Reg8(EAX))
	}
}

func TestInterpIOIntercept(t *testing.T) {
	env := newFlatEnv(1 << 20)
	bin := MustAssemble("bits 32\norg 0x1000\nout 0x80, al\nhlt")
	copy(env.mem[0x1000:], bin)
	st := &CPUState{}
	st.Reset()
	st.CR0 = CR0PE
	for i := range st.Seg {
		st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	}
	st.EIP = 0x1000
	st.SetReg8(EAX, 0x55)
	ip := NewInterp(env, st, FullVirt())
	err := ip.Step()
	exit, ok := err.(*VMExit)
	if !ok {
		t.Fatalf("want VMExit, got %v", err)
	}
	if exit.Reason != ExitIO || exit.Port != 0x80 || exit.In || exit.OutVal != 0x55 {
		t.Errorf("exit = %+v", exit)
	}
	if exit.InstLen != 2 {
		t.Errorf("instlen = %d, want 2", exit.InstLen)
	}
	if st.EIP != 0x1000 {
		t.Errorf("EIP advanced to %#x despite exit", st.EIP)
	}
}

func TestInterpHLTAndCPUIDIntercepts(t *testing.T) {
	env := newFlatEnv(1 << 20)
	bin := MustAssemble("bits 32\norg 0x1000\ncpuid\nhlt")
	copy(env.mem[0x1000:], bin)
	st := &CPUState{}
	st.Reset()
	st.CR0 = CR0PE
	for i := range st.Seg {
		st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	}
	st.EIP = 0x1000
	ip := NewInterp(env, st, FullVirt())
	exit, ok := ip.Step().(*VMExit)
	if !ok || exit.Reason != ExitCPUID {
		t.Fatalf("want cpuid exit, got %v", exit)
	}
	// Emulate what the VMM would do: advance EIP.
	st.EIP += uint32(exit.InstLen)
	exit, ok = ip.Step().(*VMExit)
	if !ok || exit.Reason != ExitHLT {
		t.Fatalf("want hlt exit, got %v", exit)
	}
}

func TestInterpCRInterceptAndINVLPG(t *testing.T) {
	env := newFlatEnv(1 << 20)
	bin := MustAssemble("bits 32\norg 0x1000\nmov cr3, eax\nhlt")
	copy(env.mem[0x1000:], bin)
	st := &CPUState{}
	st.Reset()
	st.CR0 = CR0PE
	for i := range st.Seg {
		st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	}
	st.EIP = 0x1000
	st.GPR[EAX] = 0x9000
	ip := NewInterp(env, st, VTLBVirt())
	exit, ok := ip.Step().(*VMExit)
	if !ok || exit.Reason != ExitCRAccess || !exit.CRWrite || exit.CR != 3 || exit.CRVal != 0x9000 {
		t.Fatalf("exit = %+v", exit)
	}
	// Without interception the write lands and flushes.
	ip.IC = Intercepts{}
	if err := ip.Step(); err != nil {
		t.Fatal(err)
	}
	if st.CR3 != 0x9000 {
		t.Errorf("cr3 = %#x", st.CR3)
	}
	if env.invs == 0 {
		t.Error("CR3 write did not flush TLB")
	}
}

func TestInterpCPUIDNative(t *testing.T) {
	ip, _ := run32(t, `
		xor eax, eax
		cpuid
		hlt`, 10)
	if ip.St.GPR[EAX] != 1 {
		t.Errorf("cpuid max leaf = %d", ip.St.GPR[EAX])
	}
	if ip.St.GPR[EBX] == 0 {
		t.Error("vendor string empty")
	}
}

func TestInterpRealModeIVT(t *testing.T) {
	// Real-mode software interrupt through the IVT.
	env := newFlatEnv(1 << 20)
	// IVT entry 0x21 -> 0x0000:0x5000.
	env.mem[0x21*4] = 0x00
	env.mem[0x21*4+1] = 0x50
	main := MustAssemble("bits 16\norg 0x7c00\nmov ax, 0x1234\nint 0x21\nhlt")
	copy(env.mem[0x7c00:], main)
	isr := MustAssemble("bits 16\norg 0x5000\nmov bx, ax\niret")
	copy(env.mem[0x5000:], isr)

	st := &CPUState{}
	st.Reset()
	st.GPR[ESP] = 0x7000
	ip := NewInterp(env, st, Intercepts{})
	for i := 0; i < 20 && !st.Halted; i++ {
		if err := ip.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Halted {
		t.Fatal("did not halt")
	}
	if st.Reg(EBX, 2) != 0x1234 {
		t.Errorf("bx = %#x, want 0x1234", st.Reg(EBX, 2))
	}
}

func TestInterpRealToProtectedSwitch(t *testing.T) {
	env := newFlatEnv(1 << 20)
	// GDT at 0x800: null, code (0x08), data (0x10), all flat 32-bit.
	gdt := []byte{
		0, 0, 0, 0, 0, 0, 0, 0,
		0xff, 0xff, 0, 0, 0, 0x9a, 0xcf, 0,
		0xff, 0xff, 0, 0, 0, 0x92, 0xcf, 0,
	}
	copy(env.mem[0x800:], gdt)
	boot := MustAssemble(`bits 16
org 0x7c00
	cli
	lgdt [gdtr]
	mov eax, cr0
	or eax, 1
	mov cr0, eax
	jmp dword 0x08:0x8000
gdtr:
	dw 23
	dd 0x800`)
	copy(env.mem[0x7c00:], boot)
	pm := MustAssemble(`bits 32
org 0x8000
	mov ax, 0x10
	mov ds, ax
	mov ss, ax
	mov esp, 0x90000
	mov dword [0x2000], 0xfeedface
	hlt`)
	copy(env.mem[0x8000:], pm)

	st := &CPUState{}
	st.Reset()
	st.GPR[ESP] = 0x7000
	ip := NewInterp(env, st, Intercepts{})
	for i := 0; i < 50 && !st.Halted; i++ {
		if err := ip.Step(); err != nil {
			t.Fatalf("step: %v st=%v", err, st)
		}
	}
	if !st.Halted {
		t.Fatal("did not halt")
	}
	if !st.ProtectedMode() {
		t.Error("not in protected mode")
	}
	if !st.Seg[CS].Def32 {
		t.Error("CS not 32-bit")
	}
	v, _ := env.MemRead(st, 0x2000, 4, AccessRead)
	if v != 0xfeedface {
		t.Errorf("mem = %#x", v)
	}
}

func TestInterpInterruptDelivery(t *testing.T) {
	env := newFlatEnv(1 << 20)
	gdt := []byte{
		0, 0, 0, 0, 0, 0, 0, 0,
		0xff, 0xff, 0, 0, 0, 0x9a, 0xcf, 0,
	}
	copy(env.mem[0x4000:], gdt)
	// IDT vector 0x20 -> 0x5000.
	idtOff := 0x3000 + 0x20*8
	copy(env.mem[idtOff:], []byte{0x00, 0x50, 0x08, 0x00, 0x00, 0x8e, 0x00, 0x00})
	isr := MustAssemble("bits 32\norg 0x5000\nmov ebx, 77\niretd")
	copy(env.mem[0x5000:], isr)
	main := MustAssemble("bits 32\norg 0x1000\nspin: inc eax\njmp spin")
	copy(env.mem[0x1000:], main)

	st := &CPUState{}
	st.Reset()
	st.CR0 = CR0PE
	for i := range st.Seg {
		st.Seg[i] = Segment{Sel: 0x08, Base: 0, Limit: 0xffffffff, Def32: true}
	}
	st.GDTR = DescTable{Base: 0x4000, Limit: 0xff}
	st.IDTR = DescTable{Base: 0x3000, Limit: 0x7ff}
	st.EIP = 0x1000
	st.GPR[ESP] = 0x80000
	st.SetFlag(FlagIF, true)
	ip := NewInterp(env, st, Intercepts{})
	for i := 0; i < 5; i++ {
		if err := ip.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !ip.Interruptible() {
		t.Fatal("not interruptible")
	}
	if err := ip.Interrupt(0x20); err != nil {
		t.Fatal(err)
	}
	// IF must be masked inside the handler (interrupt gate).
	if st.IF() {
		t.Error("IF still set inside handler")
	}
	savedEIP := st.EIP
	if savedEIP != 0x5000 {
		t.Fatalf("EIP = %#x, want 0x5000", savedEIP)
	}
	// Run the ISR to IRETD.
	for i := 0; i < 5 && st.EIP >= 0x5000 && st.EIP < 0x6000; i++ {
		if err := ip.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if st.GPR[EBX] != 77 {
		t.Errorf("ebx = %d", st.GPR[EBX])
	}
	if !st.IF() {
		t.Error("IF not restored by iretd")
	}
	if st.EIP < 0x1000 || st.EIP > 0x1010 {
		t.Errorf("did not return to main loop: eip=%#x", st.EIP)
	}
}

func TestInterpHaltedWaitsForInterrupt(t *testing.T) {
	ip, _ := run32(t, "hlt", 5)
	if !ip.St.Halted {
		t.Fatal("not halted")
	}
	// Step on a halted CPU is a no-op.
	before := ip.InstRet
	if err := ip.Step(); err != nil {
		t.Fatal(err)
	}
	if ip.InstRet != before {
		t.Error("halted CPU retired instructions")
	}
}

func TestInterpSTIShadow(t *testing.T) {
	env := newFlatEnv(1 << 20)
	bin := MustAssemble("bits 32\norg 0x1000\ncli\nsti\nnop\nhlt")
	copy(env.mem[0x1000:], bin)
	st := &CPUState{}
	st.Reset()
	st.CR0 = CR0PE
	for i := range st.Seg {
		st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	}
	st.EIP = 0x1000
	ip := NewInterp(env, st, Intercepts{})
	ip.Step() // cli
	ip.Step() // sti -> shadow
	if ip.Interruptible() {
		t.Error("interruptible during STI shadow")
	}
	ip.Step() // nop clears shadow
	if !ip.Interruptible() {
		t.Error("not interruptible after shadow expires")
	}
}

func TestInterpMovzxMovsxBitOps(t *testing.T) {
	ip, _ := run32(t, `
		mov eax, 0xff80
		movzx ebx, ax
		movsx ecx, al
		mov edx, 1
		shl edx, 4
		shr eax, 8
		hlt`, 50)
	if ip.St.GPR[EBX] != 0xff80 {
		t.Errorf("movzx = %#x", ip.St.GPR[EBX])
	}
	if ip.St.GPR[ECX] != 0xffffff80 {
		t.Errorf("movsx = %#x", ip.St.GPR[ECX])
	}
	if ip.St.GPR[EDX] != 16 {
		t.Errorf("shl = %d", ip.St.GPR[EDX])
	}
	if ip.St.GPR[EAX] != 0xff {
		t.Errorf("shr = %#x", ip.St.GPR[EAX])
	}
}

func TestInterpXchgCmpxchg(t *testing.T) {
	ip, _ := run32(t, `
		mov eax, 1
		mov ebx, 2
		xchg eax, ebx
		hlt`, 10)
	if ip.St.GPR[EAX] != 2 || ip.St.GPR[EBX] != 1 {
		t.Errorf("xchg: eax=%d ebx=%d", ip.St.GPR[EAX], ip.St.GPR[EBX])
	}
}

func TestInterpRDTSC(t *testing.T) {
	env := newFlatEnv(1 << 20)
	bin := MustAssemble("bits 32\norg 0x1000\nrdtsc\nhlt")
	copy(env.mem[0x1000:], bin)
	st := &CPUState{}
	st.Reset()
	st.CR0 = CR0PE
	for i := range st.Seg {
		st.Seg[i] = Segment{Base: 0, Limit: 0xffffffff, Def32: true}
	}
	st.EIP = 0x1000
	ip := NewInterp(env, st, Intercepts{})
	ip.TSC = func() uint64 { return 0x123456789a }
	if err := ip.Step(); err != nil {
		t.Fatal(err)
	}
	if st.GPR[EAX] != 0x3456789a || st.GPR[EDX] != 0x12 {
		t.Errorf("rdtsc: edx:eax = %#x:%#x", st.GPR[EDX], st.GPR[EAX])
	}
}
