package x86

// Page table entry bits (32-bit, 2-level).
const (
	PTEPresent  uint32 = 1 << 0
	PTEWrite    uint32 = 1 << 1
	PTEUser     uint32 = 1 << 2
	PTEAccessed uint32 = 1 << 5
	PTEDirty    uint32 = 1 << 6
	PTELarge    uint32 = 1 << 7 // PS bit in the PDE
	PTEGlobal   uint32 = 1 << 8
)

// PhysMem gives the walker access to physical memory. The boolean result
// is false when the address is outside RAM (a malformed page table).
type PhysMem interface {
	ReadPhys32(pa uint64) (uint32, bool)
	WritePhys32(pa uint64, v uint32) bool
}

// Walk is the result of a successful page-table walk.
type Walk struct {
	PA       uint64 // translated physical address
	Large    bool   // mapped by a 4M PDE
	Writable bool
	User     bool
	Global   bool
	Steps    int // page-table levels touched (for cycle accounting)
}

// WalkGuest walks a 32-bit two-level page table rooted at cr3 and
// translates va. write requests write access; wp applies CR0.WP
// semantics for supervisor accesses. setAD updates accessed/dirty bits
// like the hardware walker. On failure it returns a #PF exception with
// hardware-formatted error code (supervisor access assumed: our guests
// run at CPL0).
func WalkGuest(mem PhysMem, cr3, cr4, va uint32, write, wp, setAD bool) (Walk, *Exception) {
	w := Walk{}
	pdeAddr := uint64(cr3&^0xfff) + uint64(va>>22)*4
	pde, ok := mem.ReadPhys32(pdeAddr)
	w.Steps++
	if !ok || pde&PTEPresent == 0 {
		return w, PageFault(va, false, write, false)
	}
	if pde&PTELarge != 0 && cr4&CR4PSE != 0 {
		// 4M page.
		if write && pde&PTEWrite == 0 && wp {
			return w, PageFault(va, true, write, false)
		}
		if setAD {
			upd := pde | PTEAccessed
			if write {
				upd |= PTEDirty
			}
			if upd != pde {
				mem.WritePhys32(pdeAddr, upd)
			}
		}
		w.PA = uint64(pde&0xffc00000) + uint64(va&0x3fffff)
		w.Large = true
		w.Writable = pde&PTEWrite != 0
		w.User = pde&PTEUser != 0
		w.Global = pde&PTEGlobal != 0
		return w, nil
	}
	pteAddr := uint64(pde&^0xfff) + uint64(va>>12&0x3ff)*4
	pte, ok := mem.ReadPhys32(pteAddr)
	w.Steps++
	if !ok || pte&PTEPresent == 0 {
		return w, PageFault(va, false, write, false)
	}
	if write && (pde&PTEWrite == 0 || pte&PTEWrite == 0) && wp {
		return w, PageFault(va, true, write, false)
	}
	if setAD {
		if pde&PTEAccessed == 0 {
			mem.WritePhys32(pdeAddr, pde|PTEAccessed)
		}
		upd := pte | PTEAccessed
		if write {
			upd |= PTEDirty
		}
		if upd != pte {
			mem.WritePhys32(pteAddr, upd)
		}
	}
	w.PA = uint64(pte&^0xfff) + uint64(va&0xfff)
	w.Writable = pde&PTEWrite != 0 && pte&PTEWrite != 0
	w.User = pde&PTEUser != 0 && pte&PTEUser != 0
	w.Global = pte&PTEGlobal != 0
	return w, nil
}
