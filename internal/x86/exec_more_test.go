package x86

import "testing"

// Table-driven execution tests for the less-travelled instructions: the
// snippet runs to HLT and the named register is compared.
func TestExecInstructionTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		reg  int
		want uint32
	}{
		{"cmov-taken", "mov eax, 1\ncmp eax, 1\nmov ebx, 9\ncmove ecx, ebx\nhlt", ECX, 9},
		{"cmov-not-taken", "mov eax, 1\ncmp eax, 2\nmov ecx, 5\nmov ebx, 9\ncmove ecx, ebx\nhlt", ECX, 5},
		{"setcc", "mov eax, 3\ncmp eax, 3\nsete bl\nhlt", EBX, 1},
		{"setcc-false", "mov eax, 3\ncmp eax, 4\nmov ebx, 0xff\nsete bl\nhlt", EBX, 0xff00>>8 - 0xff + 0}, // bl=0
		{"bt-reg", "mov eax, 0x10\nmov ecx, 4\nbt eax, ecx\nmov ebx, 0\nadc ebx, 0\nhlt", EBX, 1},
		{"bts", "mov eax, 0\nbts eax, 3\nhlt", EAX, 8},
		{"btr", "mov eax, 0xff\nbtr eax, 0\nhlt", EAX, 0xfe},
		{"btc", "mov eax, 1\nbtc eax, 0\nbtc eax, 4\nhlt", EAX, 0x10},
		{"bt-imm", "mov eax, 0x80\nbt eax, 7\nmov ebx, 0\nadc ebx, 0\nhlt", EBX, 1},
		{"bsf", "mov eax, 0x40\nbsf ebx, eax\nhlt", EBX, 6},
		{"bsr", "mov eax, 0x41\nbsr ebx, eax\nhlt", EBX, 6},
		{"bswap", "mov eax, 0x11223344\nbswap eax\nhlt", EAX, 0x44332211},
		{"xadd", "mov eax, 10\nmov ebx, 3\nxadd eax, ebx\nhlt", EAX, 13},
		{"xadd-old", "mov eax, 10\nmov ebx, 3\nxadd eax, ebx\nhlt", EBX, 10},
		{"cmpxchg-eq", "mov eax, 7\nmov ebx, 7\nmov ecx, 42\ncmpxchg ebx, ecx\nhlt", EBX, 42},
		{"cmpxchg-ne", "mov eax, 1\nmov ebx, 7\nmov ecx, 42\ncmpxchg ebx, ecx\nhlt", EAX, 7},
		{"shld", "mov eax, 0x80000000\nmov ebx, 0x40000000\nshld eax, ebx, 2\nhlt", EAX, 1},
		{"shrd", "mov eax, 1\nmov ebx, 3\nshrd eax, ebx, 1\nhlt", EAX, 0x80000000},
		{"rol", "mov eax, 0x80000001\nrol eax, 4\nhlt", EAX, 0x18},
		{"ror", "mov eax, 0x18\nror eax, 4\nhlt", EAX, 0x80000001},
		{"neg", "mov eax, 5\nneg eax\nhlt", EAX, 0xfffffffb},
		{"not", "mov eax, 0x0f0f0f0f\nnot eax\nhlt", EAX, 0xf0f0f0f0},
		{"imul3", "mov ebx, 7\nimul eax, ebx, 6\nhlt", EAX, 42},
		{"imul-neg", "mov ebx, 0xffffffff\nimul eax, ebx, 5\nhlt", EAX, 0xfffffffb},
		{"idiv", "mov eax, 0xffffffd8\ncdq\nmov ebx, 5\nidiv ebx\nhlt", EAX, 0xfffffff8}, // -40/5 = -8
		{"cbw", "mov al, 0x80\ncbw\nhlt", EAX, 0xff80},
		{"cwde", "mov ax, 0x8000\ncwde\nhlt", EAX, 0xffff8000},
		{"leave", "mov ebp, 0x7000\nmov dword [0x7000], 0x1234\npush ebp\nmov ebp, esp\nleave\nhlt", EBP, 0x7000},
		{"pusha-popa", "mov eax, 1\nmov ebx, 2\npusha\nmov eax, 0\nmov ebx, 0\npopa\nadd eax, ebx\nhlt", EAX, 3},
		{"loop", "mov ecx, 4\nxor eax, eax\nl:\nadd eax, 2\nloop l\nhlt", EAX, 8},
		{"loopne", "mov ecx, 10\nxor eax, eax\nl:\ninc eax\ncmp eax, 3\nloopne l\nhlt", EAX, 3},
		{"jecxz", "xor ecx, ecx\nmov eax, 1\njecxz over\nmov eax, 2\nover:\nhlt", EAX, 1},
		{"xchg-acc", "mov eax, 1\nmov edx, 2\nxchg eax, edx\nhlt", EDX, 1},
		{"movsx-mem", "mov dword [0x2000], 0xff\nmovsx eax, byte [0x2000]\nhlt", EAX, 0xffffffff},
		{"test-clears-cf", "stc\ntest eax, eax\nmov ebx, 0\nadc ebx, 0\nhlt", EBX, 0},
		{"sbb", "mov eax, 5\nstc\nsbb eax, 2\nhlt", EAX, 2},
		{"adc", "mov eax, 5\nstc\nadc eax, 2\nhlt", EAX, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ip, _ := run32(t, tc.src, 300)
			if got := ip.St.GPR[tc.reg]; got != tc.want {
				t.Errorf("%s = %#x, want %#x", RegName(tc.reg), got, tc.want)
			}
		})
	}
}

func TestExecStringCompare(t *testing.T) {
	// REPE CMPSB finds the first difference.
	ip, _ := run32(t, `
	cld
	mov esi, s1
	mov edi, s2copy
	; copy s2 to ES region first (flat, same segment)
	mov ecx, 8
	mov esi, s2
	rep movsb
	mov esi, s1
	mov edi, s2copy
	mov ecx, 8
	repe cmpsb
	mov eax, ecx
	hlt
s1: db "abcdefgh"
s2: db "abcdXfgh"
s2copy: db 0,0,0,0,0,0,0,0`, 300)
	// Difference at index 4 (0-based): after comparing 5 bytes ECX = 3.
	if ip.St.GPR[EAX] != 3 {
		t.Errorf("ecx after repe cmpsb = %d, want 3", ip.St.GPR[EAX])
	}
}

func TestExecScasFindsByte(t *testing.T) {
	ip, _ := run32(t, `
	cld
	mov edi, hay
	mov ecx, 16
	mov al, 'x'
	repne scasb
	mov eax, edi
	hlt
hay: db "aaaaaxbbbbbbbbbb"`, 300)
	// EDI points one past the found 'x' (index 5).
	base := ip.St.GPR[EAX] - 6
	v, _ := ip.Env.MemRead(ip.St, base+5, 1, AccessRead)
	if byte(v) != 'x' {
		t.Errorf("scasb landed wrong: edi=%#x", ip.St.GPR[EAX])
	}
}

func TestExecFarCallRet(t *testing.T) {
	// Far call through a memory pointer and far return, flat segments.
	env := newFlatEnv(1 << 20)
	gdt := []byte{
		0, 0, 0, 0, 0, 0, 0, 0,
		0xff, 0xff, 0, 0, 0, 0x9a, 0xcf, 0,
	}
	copy(env.mem[0x4000:], gdt)
	main := MustAssemble(`bits 32
org 0x1000
	call ebx     ; near call through register first
	mov ecx, 1
	hlt`)
	fn := MustAssemble("bits 32\norg 0x5000\nmov edx, 0x77\nret")
	copy(env.mem[0x1000:], main)
	copy(env.mem[0x5000:], fn)
	st := &CPUState{}
	st.Reset()
	st.CR0 = CR0PE
	for i := range st.Seg {
		st.Seg[i] = Segment{Sel: 0x08, Base: 0, Limit: 0xffffffff, Def32: true}
	}
	st.GDTR = DescTable{Base: 0x4000, Limit: 0xff}
	st.EIP = 0x1000
	st.GPR[ESP] = 0x80000
	st.GPR[EBX] = 0x5000
	ip := NewInterp(env, st, Intercepts{})
	for i := 0; i < 50 && !st.Halted; i++ {
		if err := ip.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if st.GPR[EDX] != 0x77 || st.GPR[ECX] != 1 {
		t.Errorf("edx=%#x ecx=%#x", st.GPR[EDX], st.GPR[ECX])
	}
}
