package x86

// execTwoByte executes the 0x0F escape opcodes.
func (ip *Interp) execTwoByte(inst *Inst) error {
	st := ip.St
	op := int(inst.Op)

	switch {
	case op >= 0x40 && op <= 0x4f: // CMOVcc
		v, err := ip.readRM(inst, inst.OpSize)
		if err != nil {
			return err
		}
		if st.condition(op & 0xf) {
			st.SetReg(inst.RegOp, inst.OpSize, v)
		}
		return nil
	case op >= 0x80 && op <= 0x8f: // Jcc relZ
		if st.condition(op & 0xf) {
			st.EIP += signExtend(inst.Imm, inst.OpSize)
			if inst.OpSize == 2 {
				st.EIP &= 0xffff
			}
		}
		return nil
	case op >= 0x90 && op <= 0x9f: // SETcc
		var v uint32
		if st.condition(op & 0xf) {
			v = 1
		}
		return ip.writeRM(inst, 1, v)
	case op >= 0xc8 && op <= 0xcf: // BSWAP
		r := op - 0xc8
		v := st.GPR[r]
		st.GPR[r] = v<<24 | v<<8&0xff0000 | v>>8&0xff00 | v>>24
		return nil
	}

	switch op {
	case 0x00: // group 6: LLDT/LTR etc. — accepted as no-ops (flat model)
		switch inst.RegOp {
		case 2, 3: // LLDT, LTR
			_, err := ip.readRM(inst, 2)
			return err
		}
		return UDFault()
	case 0x01: // group 7
		return ip.execGroup7(inst)
	case 0x06: // CLTS
		return nil
	case 0x08, 0x09: // INVD, WBINVD
		return nil
	case 0x0b: // UD2
		return UDFault()
	case 0x1f: // long NOP
		return nil
	case 0x20: // MOV r, CRn
		if inst.RegOp == 1 || inst.RegOp > 4 {
			return UDFault()
		}
		if ip.IC.CR {
			return &VMExit{Reason: ExitCRAccess, CR: inst.RegOp, CRWrite: false, CRGPR: inst.RM}
		}
		st.GPR[inst.RM] = ip.readCR(inst.RegOp)
		return nil
	case 0x22: // MOV CRn, r
		if inst.RegOp == 1 || inst.RegOp > 4 {
			return UDFault()
		}
		val := st.GPR[inst.RM]
		if ip.IC.CR {
			return &VMExit{Reason: ExitCRAccess, CR: inst.RegOp, CRWrite: true, CRGPR: inst.RM, CRVal: val}
		}
		return ip.writeCR(inst.RegOp, val)
	case 0x21, 0x23: // MOV r, DRn / MOV DRn, r — debug registers ignored
		if op == 0x21 {
			st.GPR[inst.RM] = 0
		}
		return nil
	case 0x30: // WRMSR
		if ip.IC.MSR {
			return &VMExit{Reason: ExitMSR, MSR: st.GPR[ECX], MSRWrite: true,
				MSRVal: uint64(st.GPR[EDX])<<32 | uint64(st.GPR[EAX])}
		}
		ip.MSRs[st.GPR[ECX]] = uint64(st.GPR[EDX])<<32 | uint64(st.GPR[EAX])
		return nil
	case 0x31: // RDTSC
		if ip.IC.RDTSC {
			return &VMExit{Reason: ExitRDTSC}
		}
		v := ip.tsc()
		st.GPR[EAX] = uint32(v)
		st.GPR[EDX] = uint32(v >> 32)
		return nil
	case 0x32: // RDMSR
		if ip.IC.MSR {
			return &VMExit{Reason: ExitMSR, MSR: st.GPR[ECX], MSRWrite: false}
		}
		v := ip.MSRs[st.GPR[ECX]]
		st.GPR[EAX] = uint32(v)
		st.GPR[EDX] = uint32(v >> 32)
		return nil
	case 0xa0: // PUSH FS
		return ip.push(uint32(st.Seg[FS].Sel), inst.OpSize)
	case 0xa1: // POP FS
		v, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		return ip.loadSeg(FS, uint16(v))
	case 0xa8: // PUSH GS
		return ip.push(uint32(st.Seg[GS].Sel), inst.OpSize)
	case 0xa9: // POP GS
		v, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		return ip.loadSeg(GS, uint16(v))
	case 0xa2: // CPUID
		if ip.IC.CPUID {
			return &VMExit{Reason: ExitCPUID}
		}
		a, b, c, d := CPUIDValues(st.GPR[EAX], st.GPR[ECX])
		st.GPR[EAX], st.GPR[EBX], st.GPR[ECX], st.GPR[EDX] = a, b, c, d
		return nil
	case 0xa3, 0xab, 0xb3, 0xbb: // BT/BTS/BTR/BTC r/m, r
		return ip.execBitTest(inst, op, st.Reg(inst.RegOp, inst.OpSize))
	case 0xba: // group 8: BT/BTS/BTR/BTC r/m, imm8
		if inst.RegOp < 4 {
			return UDFault()
		}
		// Group 8: /4 BT, /5 BTS, /6 BTR, /7 BTC.
		fake := map[int]int{4: 0xa3, 5: 0xab, 6: 0xb3, 7: 0xbb}[inst.RegOp]
		return ip.execBitTest(inst, fake, inst.Imm)
	case 0xa4, 0xac: // SHLD/SHRD r/m, r, imm8
		return ip.execDblShift(inst, op == 0xa4, inst.Imm&31)
	case 0xa5, 0xad: // SHLD/SHRD r/m, r, CL
		return ip.execDblShift(inst, op == 0xa5, uint32(st.Reg8(ECX))&31)
	case 0xaf: // IMUL r, r/m
		src, err := ip.readRM(inst, inst.OpSize)
		if err != nil {
			return err
		}
		return ip.imul2(inst, st.Reg(inst.RegOp, inst.OpSize), src)
	case 0xb0, 0xb1: // CMPXCHG
		size := byteOr(op == 0xb0, inst.OpSize)
		dst, err := ip.readRM(inst, size)
		if err != nil {
			return err
		}
		acc := st.Reg(EAX, size)
		st.flagsSub(acc, dst, acc-dst, size, 0)
		if acc == dst {
			st.SetFlag(FlagZF, true)
			return ip.writeRM(inst, size, st.Reg(inst.RegOp, size))
		}
		st.SetFlag(FlagZF, false)
		st.SetReg(EAX, size, dst)
		return nil
	case 0xb6, 0xb7: // MOVZX
		srcSize := 1
		if op == 0xb7 {
			srcSize = 2
		}
		v, err := ip.readRM(inst, srcSize)
		if err != nil {
			return err
		}
		st.SetReg(inst.RegOp, inst.OpSize, v)
		return nil
	case 0xbe, 0xbf: // MOVSX
		srcSize := 1
		if op == 0xbf {
			srcSize = 2
		}
		v, err := ip.readRM(inst, srcSize)
		if err != nil {
			return err
		}
		st.SetReg(inst.RegOp, inst.OpSize, signExtend(v, srcSize))
		return nil
	case 0xbc: // BSF
		v, err := ip.readRM(inst, inst.OpSize)
		if err != nil {
			return err
		}
		v &= sizeMask(inst.OpSize)
		if v == 0 {
			st.SetFlag(FlagZF, true)
			return nil
		}
		st.SetFlag(FlagZF, false)
		n := uint32(0)
		for v&1 == 0 {
			v >>= 1
			n++
		}
		st.SetReg(inst.RegOp, inst.OpSize, n)
		return nil
	case 0xbd: // BSR
		v, err := ip.readRM(inst, inst.OpSize)
		if err != nil {
			return err
		}
		v &= sizeMask(inst.OpSize)
		if v == 0 {
			st.SetFlag(FlagZF, true)
			return nil
		}
		st.SetFlag(FlagZF, false)
		n := uint32(0)
		for v > 1 {
			v >>= 1
			n++
		}
		st.SetReg(inst.RegOp, inst.OpSize, n)
		return nil
	case 0xc0, 0xc1: // XADD
		size := byteOr(op == 0xc0, inst.OpSize)
		dst, err := ip.readRM(inst, size)
		if err != nil {
			return err
		}
		src := st.Reg(inst.RegOp, size)
		res := dst + src
		if err := ip.writeRM(inst, size, res); err != nil {
			return err
		}
		st.SetReg(inst.RegOp, size, dst)
		st.flagsAdd(dst, src, res, size, 0)
		return nil
	}
	return UDFault()
}

// execBitTest implements BT/BTS/BTR/BTC with a register or immediate bit
// index.
func (ip *Interp) execBitTest(inst *Inst, op int, bitIdx uint32) error {
	st := ip.St
	bits := uint32(inst.OpSize) * 8
	if inst.Mod == 3 {
		v := st.Reg(inst.RM, inst.OpSize)
		idx := bitIdx % bits
		st.SetFlag(FlagCF, v>>idx&1 != 0)
		switch op {
		case 0xab:
			v |= 1 << idx
		case 0xb3:
			v &^= 1 << idx
		case 0xbb:
			v ^= 1 << idx
		default:
			return nil
		}
		st.SetReg(inst.RM, inst.OpSize, v)
		return nil
	}
	// Memory form: the bit index can address beyond the operand.
	off, seg := inst.effectiveAddr(st)
	byteOff := int32(bitIdx) >> 3
	if int32(bitIdx) < 0 {
		byteOff = (int32(bitIdx) - 7) / 8
	}
	addr := off + uint32(byteOff)
	v, err := ip.memRead(seg, addr, 1)
	if err != nil {
		return err
	}
	idx := bitIdx & 7
	st.SetFlag(FlagCF, v>>idx&1 != 0)
	switch op {
	case 0xab:
		v |= 1 << idx
	case 0xb3:
		v &^= 1 << idx
	case 0xbb:
		v ^= 1 << idx
	default:
		return nil
	}
	return ip.memWrite(seg, addr, 1, v)
}

// execDblShift implements SHLD/SHRD.
func (ip *Interp) execDblShift(inst *Inst, left bool, count uint32) error {
	st := ip.St
	size := inst.OpSize
	if count == 0 {
		return nil
	}
	bits := uint32(size) * 8
	if count > bits {
		return nil // undefined; leave unchanged
	}
	dst, err := ip.readRM(inst, size)
	if err != nil {
		return err
	}
	src := st.Reg(inst.RegOp, size)
	var res uint32
	if left {
		wide := uint64(dst)<<bits | uint64(src)
		wide <<= count
		res = uint32(wide>>bits) & sizeMask(size)
		st.SetFlag(FlagCF, dst>>(bits-count)&1 != 0)
	} else {
		wide := uint64(src)<<bits | uint64(dst)
		wide >>= count
		res = uint32(wide) & sizeMask(size)
		st.SetFlag(FlagCF, dst>>(count-1)&1 != 0)
	}
	st.setSZP(res, size)
	return ip.writeRM(inst, size, res)
}

// execGroup7 handles 0F 01: SGDT/SIDT/LGDT/LIDT/SMSW/LMSW/INVLPG.
func (ip *Interp) execGroup7(inst *Inst) error {
	st := ip.St
	switch inst.RegOp {
	case 0, 1: // SGDT/SIDT
		if inst.Mod == 3 {
			return UDFault()
		}
		t := st.GDTR
		if inst.RegOp == 1 {
			t = st.IDTR
		}
		off, seg := inst.effectiveAddr(st)
		if err := ip.memWrite(seg, off, 2, uint32(t.Limit)); err != nil {
			return err
		}
		return ip.memWrite(seg, off+2, 4, t.Base)
	case 2, 3: // LGDT/LIDT
		if inst.Mod == 3 {
			return UDFault()
		}
		off, seg := inst.effectiveAddr(st)
		limit, err := ip.memRead(seg, off, 2)
		if err != nil {
			return err
		}
		base, err := ip.memRead(seg, off+2, 4)
		if err != nil {
			return err
		}
		if inst.OpSize == 2 {
			base &= 0xffffff
		}
		if inst.RegOp == 2 {
			st.GDTR = DescTable{Base: base, Limit: uint16(limit)}
		} else {
			st.IDTR = DescTable{Base: base, Limit: uint16(limit)}
		}
		return nil
	case 4: // SMSW
		return ip.writeRM(inst, 2, st.CR0&0xffff)
	case 6: // LMSW
		v, err := ip.readRM(inst, 2)
		if err != nil {
			return err
		}
		if ip.IC.CR {
			return &VMExit{Reason: ExitCRAccess, CR: 0, CRWrite: true,
				CRVal: st.CR0&^0xf | v&0xf}
		}
		return ip.writeCR(0, st.CR0&^0xf|v&0xf)
	case 7: // INVLPG
		if inst.Mod == 3 {
			return UDFault()
		}
		off, seg := inst.effectiveAddr(st)
		la := ip.linear(seg, off)
		if ip.IC.INVLPG {
			return &VMExit{Reason: ExitINVLPG, Linear: la}
		}
		ip.Env.InvalidateTLB(st, false, la)
		return nil
	}
	return UDFault()
}

// readCR reads a control register.
func (ip *Interp) readCR(cr int) uint32 {
	st := ip.St
	switch cr {
	case 0:
		return st.CR0
	case 2:
		return st.CR2
	case 3:
		return st.CR3
	case 4:
		return st.CR4
	}
	return 0
}

// writeCR writes a control register (non-intercepted path), applying TLB
// maintenance as hardware would.
func (ip *Interp) writeCR(cr int, val uint32) error {
	st := ip.St
	switch cr {
	case 0:
		pgChanged := (st.CR0^val)&(CR0PG|CR0PE) != 0
		st.CR0 = val
		if pgChanged {
			ip.Env.InvalidateTLB(st, true, 0)
		}
	case 2:
		st.CR2 = val
	case 3:
		st.CR3 = val
		ip.Env.InvalidateTLB(st, true, 0)
	case 4:
		st.CR4 = val
		ip.Env.InvalidateTLB(st, true, 0)
	}
	return nil
}

// WriteCR is the exported variant used by the microhypervisor when it
// emulates an intercepted CR access (vTLB mode, §5.3).
func (ip *Interp) WriteCR(cr int, val uint32) error { return ip.writeCR(cr, val) }

// ReadCR is the exported variant for intercepted CR reads.
func (ip *Interp) ReadCR(cr int) uint32 { return ip.readCR(cr) }
