// Package x86 implements the instruction-set layer of the simulated
// platform: an instruction decoder, an interpreter for real mode and
// 32-bit protected mode with paging, a guest page-table walker, and a
// small assembler used to build guest kernels.
//
// The decoder and execution core are shared between the two places the
// paper needs them: "guest mode" execution of a virtual machine (the
// substitute for Intel VT-x), and the user-level VMM's instruction
// emulator (§7.1), which decodes and executes exactly the faulting
// instructions the guest ran.
package x86

import "fmt"

// General-purpose register indices, in ModRM encoding order.
const (
	EAX = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
)

// Segment register indices, in ModRM/sreg encoding order.
const (
	ES = iota
	CS
	SS
	DS
	FS
	GS
)

// EFLAGS bits.
const (
	FlagCF uint32 = 1 << 0
	FlagPF uint32 = 1 << 2
	FlagAF uint32 = 1 << 4
	FlagZF uint32 = 1 << 6
	FlagSF uint32 = 1 << 7
	FlagTF uint32 = 1 << 8
	FlagIF uint32 = 1 << 9
	FlagDF uint32 = 1 << 10
	FlagOF uint32 = 1 << 11

	// FlagsFixed is always set in EFLAGS (bit 1).
	FlagsFixed uint32 = 1 << 1
)

// CR0 bits.
const (
	CR0PE uint32 = 1 << 0 // protected mode enable
	CR0WP uint32 = 1 << 16
	CR0PG uint32 = 1 << 31 // paging enable
)

// CR4 bits.
const (
	CR4PSE uint32 = 1 << 4 // 4M pages
	CR4PGE uint32 = 1 << 7 // global pages
)

// Exception vectors.
const (
	VecDE = 0  // divide error
	VecDB = 1  // debug
	VecBP = 3  // breakpoint
	VecUD = 6  // invalid opcode
	VecNM = 7  // device not available
	VecDF = 8  // double fault
	VecGP = 13 // general protection
	VecPF = 14 // page fault
)

// Segment is a segment register with its cached descriptor.
type Segment struct {
	Sel   uint16
	Base  uint32
	Limit uint32
	Def32 bool // D/B bit: default operand/address size is 32-bit
}

// DescTable is GDTR or IDTR.
type DescTable struct {
	Base  uint32
	Limit uint16
}

// CPUState is the architectural register state of one (virtual or
// physical) processor. It is a plain value so VM-exit handling can copy
// the subset selected by a message transfer descriptor.
type CPUState struct {
	GPR    [8]uint32
	EIP    uint32
	EFLAGS uint32

	Seg  [6]Segment
	GDTR DescTable
	IDTR DescTable

	CR0, CR2, CR3, CR4 uint32

	TSC uint64

	Halted bool
	// IntShadow blocks interrupt delivery for one instruction after STI
	// or MOV SS, as on hardware.
	IntShadow bool
}

// Reset puts the CPU into the post-RESET real-mode state with execution
// starting at the conventional boot vector used by our virtual BIOS.
func (c *CPUState) Reset() {
	*c = CPUState{}
	c.EFLAGS = FlagsFixed
	for i := range c.Seg {
		c.Seg[i] = Segment{Limit: 0xffff}
	}
	c.EIP = 0x7c00 // boot sector entry, loaded by the BIOS
}

// ProtectedMode reports whether CR0.PE is set.
func (c *CPUState) ProtectedMode() bool { return c.CR0&CR0PE != 0 }

// PagingEnabled reports whether CR0.PG is set.
func (c *CPUState) PagingEnabled() bool { return c.CR0&CR0PG != 0 }

// IF reports whether interrupts are enabled.
func (c *CPUState) IF() bool { return c.EFLAGS&FlagIF != 0 }

// GetFlag returns one EFLAGS bit as a bool.
func (c *CPUState) GetFlag(f uint32) bool { return c.EFLAGS&f != 0 }

// SetFlag sets or clears one EFLAGS bit.
func (c *CPUState) SetFlag(f uint32, v bool) {
	if v {
		c.EFLAGS |= f
	} else {
		c.EFLAGS &^= f
	}
}

// Reg8 reads an 8-bit register by its encoding (AL CL DL BL AH CH DH BH).
func (c *CPUState) Reg8(r int) uint8 {
	if r < 4 {
		return uint8(c.GPR[r])
	}
	return uint8(c.GPR[r-4] >> 8)
}

// SetReg8 writes an 8-bit register by its encoding.
func (c *CPUState) SetReg8(r int, v uint8) {
	if r < 4 {
		c.GPR[r] = c.GPR[r]&^0xff | uint32(v)
	} else {
		c.GPR[r-4] = c.GPR[r-4]&^0xff00 | uint32(v)<<8
	}
}

// Reg reads a register with the given operand size (1, 2 or 4 bytes).
func (c *CPUState) Reg(r, size int) uint32 {
	switch size {
	case 1:
		return uint32(c.Reg8(r))
	case 2:
		return c.GPR[r] & 0xffff
	default:
		return c.GPR[r]
	}
}

// SetReg writes a register with the given operand size; 16-bit writes
// preserve the upper half, as on hardware.
func (c *CPUState) SetReg(r, size int, v uint32) {
	switch size {
	case 1:
		c.SetReg8(r, uint8(v))
	case 2:
		c.GPR[r] = c.GPR[r]&^0xffff | v&0xffff
	default:
		c.GPR[r] = v
	}
}

var regNames = [8]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}
var segNames = [6]string{"es", "cs", "ss", "ds", "fs", "gs"}

// RegName returns the name of a 32-bit register.
func RegName(r int) string { return regNames[r] }

// SegName returns the name of a segment register.
func SegName(s int) string { return segNames[s] }

func (c *CPUState) String() string {
	return fmt.Sprintf("eip=%08x eax=%08x ecx=%08x edx=%08x ebx=%08x esp=%08x ebp=%08x esi=%08x edi=%08x efl=%08x cr0=%08x cr3=%08x cs=%04x",
		c.EIP, c.GPR[EAX], c.GPR[ECX], c.GPR[EDX], c.GPR[EBX], c.GPR[ESP], c.GPR[EBP], c.GPR[ESI], c.GPR[EDI], c.EFLAGS, c.CR0, c.CR3, c.Seg[CS].Sel)
}

// Exception is a guest-visible CPU exception.
type Exception struct {
	Vector  int
	Code    uint32 // error code; meaningful only if HasCode
	HasCode bool
	CR2     uint32 // faulting address for #PF
}

func (e *Exception) Error() string {
	if e.Vector == VecPF {
		return fmt.Sprintf("x86: #PF code=%#x cr2=%#x", e.Code, e.CR2)
	}
	return fmt.Sprintf("x86: exception %d code=%#x", e.Vector, e.Code)
}

// PageFault builds a #PF exception. The error code encodes
// present/write/user as on hardware.
func PageFault(addr uint32, present, write, user bool) *Exception {
	var code uint32
	if present {
		code |= 1
	}
	if write {
		code |= 2
	}
	if user {
		code |= 4
	}
	return &Exception{Vector: VecPF, Code: code, HasCode: true, CR2: addr}
}

// GPFault builds a #GP exception.
func GPFault(code uint32) *Exception {
	return &Exception{Vector: VecGP, Code: code, HasCode: true}
}

// UDFault builds a #UD exception.
func UDFault() *Exception { return &Exception{Vector: VecUD} }
