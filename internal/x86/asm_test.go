package x86

import (
	"bytes"
	"testing"
)

// assertBytes checks an assembly snippet against its expected encoding
// (reference encodings produced by NASM).
func assertBytes(t *testing.T, src string, want []byte) {
	t.Helper()
	got, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble %q: %v", src, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("assemble %q = %x, want %x", src, got, want)
	}
}

func TestAsmBasic32(t *testing.T) {
	assertBytes(t, "bits 32\nmov eax, 0x12345678", []byte{0xb8, 0x78, 0x56, 0x34, 0x12})
	assertBytes(t, "bits 32\nmov ebx, eax", []byte{0x89, 0xc3})
	assertBytes(t, "bits 32\nadd eax, ebx", []byte{0x01, 0xd8})
	assertBytes(t, "bits 32\nadd eax, 4", []byte{0x83, 0xc0, 0x04})
	assertBytes(t, "bits 32\nadd eax, 0x1234", []byte{0x81, 0xc0, 0x34, 0x12, 0x00, 0x00})
	assertBytes(t, "bits 32\nnop\nhlt\ncli\nsti", []byte{0x90, 0xf4, 0xfa, 0xfb})
	assertBytes(t, "bits 32\npush eax\npop ebx", []byte{0x50, 0x5b})
	assertBytes(t, "bits 32\nret", []byte{0xc3})
	assertBytes(t, "bits 32\nint 0x10", []byte{0xcd, 0x10})
	assertBytes(t, "bits 32\ncpuid\nrdtsc", []byte{0x0f, 0xa2, 0x0f, 0x31})
}

func TestAsmMemoryForms32(t *testing.T) {
	assertBytes(t, "bits 32\nmov eax, [0x1234]", []byte{0x8b, 0x05, 0x34, 0x12, 0x00, 0x00})
	assertBytes(t, "bits 32\nmov eax, [ebx]", []byte{0x8b, 0x03})
	assertBytes(t, "bits 32\nmov eax, [ebx+8]", []byte{0x8b, 0x43, 0x08})
	assertBytes(t, "bits 32\nmov eax, [ebx+esi*4]", []byte{0x8b, 0x04, 0xb3})
	assertBytes(t, "bits 32\nmov eax, [ebx+esi*4+16]", []byte{0x8b, 0x44, 0xb3, 0x10})
	assertBytes(t, "bits 32\nmov [esp+4], eax", []byte{0x89, 0x44, 0x24, 0x04})
	assertBytes(t, "bits 32\nmov dword [0x2000], 7",
		[]byte{0xc7, 0x05, 0x00, 0x20, 0x00, 0x00, 0x07, 0x00, 0x00, 0x00})
	assertBytes(t, "bits 32\nmov byte [eax], 5", []byte{0xc6, 0x00, 0x05})
	// Segment override.
	assertBytes(t, "bits 32\nmov eax, [es:ebx]", []byte{0x26, 0x8b, 0x03})
}

func TestAsm16BitMode(t *testing.T) {
	assertBytes(t, "bits 16\nmov ax, 0x1234", []byte{0xb8, 0x34, 0x12})
	assertBytes(t, "bits 16\nmov eax, 0x12345678", []byte{0x66, 0xb8, 0x78, 0x56, 0x34, 0x12})
	assertBytes(t, "bits 16\nmov ax, [bx+si]", []byte{0x8b, 0x00})
	assertBytes(t, "bits 16\nmov ax, [bx+4]", []byte{0x8b, 0x47, 0x04})
	assertBytes(t, "bits 16\nmov ax, [0x500]", []byte{0x8b, 0x06, 0x00, 0x05})
	assertBytes(t, "bits 16\nout 0x20, al", []byte{0xe6, 0x20})
	assertBytes(t, "bits 16\nin al, dx", []byte{0xec})
}

func TestAsmJumpsAndLabels(t *testing.T) {
	// jmp to self in 32-bit mode: E9 with rel = -5.
	assertBytes(t, "bits 32\nself: jmp self", []byte{0xe9, 0xfb, 0xff, 0xff, 0xff})
	// Forward conditional.
	bin := MustAssemble("bits 32\n jz done\n nop\ndone: hlt")
	want := []byte{0x0f, 0x84, 0x01, 0x00, 0x00, 0x00, 0x90, 0xf4}
	if !bytes.Equal(bin, want) {
		t.Errorf("jz fwd = %x, want %x", bin, want)
	}
	// call.
	bin = MustAssemble("bits 32\ncall fn\nhlt\nfn: ret")
	want = []byte{0xe8, 0x01, 0x00, 0x00, 0x00, 0xf4, 0xc3}
	if !bytes.Equal(bin, want) {
		t.Errorf("call = %x, want %x", bin, want)
	}
}

func TestAsmOrgAffectsLabels(t *testing.T) {
	bin := MustAssemble("bits 32\norg 0x7c00\nstart: mov eax, start\nhlt")
	want := []byte{0xb8, 0x00, 0x7c, 0x00, 0x00, 0xf4}
	if !bytes.Equal(bin, want) {
		t.Errorf("got %x, want %x", bin, want)
	}
}

func TestAsmDataDirectives(t *testing.T) {
	assertBytes(t, "db 1, 2, 3", []byte{1, 2, 3})
	assertBytes(t, "dw 0x1234", []byte{0x34, 0x12})
	assertBytes(t, "dd 0xdeadbeef", []byte{0xef, 0xbe, 0xad, 0xde})
	assertBytes(t, `db "AB", 0`, []byte{'A', 'B', 0})
	assertBytes(t, "times 4 db 0xcc", []byte{0xcc, 0xcc, 0xcc, 0xcc})
}

func TestAsmAlignAndEqu(t *testing.T) {
	bin := MustAssemble("db 1\nalign 4\ndb 2")
	if len(bin) != 5 || bin[4] != 2 {
		t.Errorf("align: %x", bin)
	}
	bin = MustAssemble("FOO equ 0x42\nbits 32\nmov eax, FOO")
	want := []byte{0xb8, 0x42, 0x00, 0x00, 0x00}
	if !bytes.Equal(bin, want) {
		t.Errorf("equ: %x want %x", bin, want)
	}
}

func TestAsmControlRegisters(t *testing.T) {
	assertBytes(t, "bits 32\nmov cr3, eax", []byte{0x0f, 0x22, 0xd8})
	assertBytes(t, "bits 32\nmov eax, cr0", []byte{0x0f, 0x20, 0xc0})
	assertBytes(t, "bits 32\ninvlpg [eax]", []byte{0x0f, 0x01, 0x38})
}

func TestAsmLgdtFarJump(t *testing.T) {
	bin := MustAssemble("bits 16\nlgdt [0x800]")
	want := []byte{0x0f, 0x01, 0x16, 0x00, 0x08}
	if !bytes.Equal(bin, want) {
		t.Errorf("lgdt: %x want %x", bin, want)
	}
	bin = MustAssemble("bits 16\njmp 0x08:0x1000")
	want = []byte{0xea, 0x00, 0x10, 0x08, 0x00}
	if !bytes.Equal(bin, want) {
		t.Errorf("jmp far: %x want %x", bin, want)
	}
	// dword far jump from 16-bit mode (ptr16:32).
	bin = MustAssemble("bits 16\njmp dword 0x08:0x8000")
	want = []byte{0x66, 0xea, 0x00, 0x80, 0x00, 0x00, 0x08, 0x00}
	if !bytes.Equal(bin, want) {
		t.Errorf("jmp far32: %x want %x", bin, want)
	}
}

func TestAsmStringAndRep(t *testing.T) {
	assertBytes(t, "bits 32\nrep movsd", []byte{0xf3, 0xa5})
	assertBytes(t, "bits 32\nrep stosb", []byte{0xf3, 0xaa})
	assertBytes(t, "bits 32\nlodsb", []byte{0xac})
}

func TestAsmErrors(t *testing.T) {
	for _, src := range []string{
		"bits 32\nbogus eax, 1",
		"bits 32\nmov [eax], 1", // no size hint
		"bits 32\nfoo: nop\nfoo: nop",
		"bits 7",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestAsmDecodeRoundTrip(t *testing.T) {
	// Every assembled instruction must decode back with the same length.
	srcs := []string{
		"mov eax, 1", "mov ebx, [eax+4]", "add eax, ebx", "sub ecx, 4",
		"cmp eax, 100", "push ebp", "pop edi", "inc esi", "dec dword [eax]",
		"shl eax, 3", "imul eax, ebx", "movzx eax, bl", "test al, 1",
		"xchg eax, ebx", "lea esi, [ebx+ecx*2+8]", "cpuid", "rdtsc",
		"hlt", "cli", "sti", "invlpg [eax]", "mov cr3, eax",
		"rep movsd", "out 0x80, al", "in eax, dx",
	}
	for _, src := range srcs {
		bin := MustAssemble("bits 32\n" + src)
		r := &sliceFetcher{b: bin}
		inst, err := Decode(r, true)
		if err != nil {
			t.Errorf("decode %q (%x): %v", src, bin, err)
			continue
		}
		if inst.Len != len(bin) {
			t.Errorf("decode %q: len %d, encoded %d (%x)", src, inst.Len, len(bin), bin)
		}
	}
}

type sliceFetcher struct {
	b []byte
	i int
}

func (s *sliceFetcher) FetchByte() (byte, error) {
	if s.i >= len(s.b) {
		return 0, PageFault(uint32(s.i), false, false, false)
	}
	b := s.b[s.i]
	s.i++
	return b, nil
}

func TestDecodePrefixes(t *testing.T) {
	// 66 0F B7 C3: movzx eax, bx with operand-size prefix (redundant
	// here but must parse).
	inst, err := Decode(&sliceFetcher{b: []byte{0x66, 0x0f, 0xb7, 0xc3}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.TwoByte || inst.Op != 0xb7 || inst.OpSize != 2 {
		t.Errorf("inst = %+v", inst)
	}
	// Segment override + rep.
	inst, err = Decode(&sliceFetcher{b: []byte{0xf3, 0x26, 0xa5}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Rep || inst.SegOv != ES || inst.Op != 0xa5 {
		t.Errorf("inst = %+v", inst)
	}
}

func TestDecodeTooLong(t *testing.T) {
	b := make([]byte, 20)
	for i := range b {
		b[i] = 0x66 // endless prefixes
	}
	if _, err := Decode(&sliceFetcher{b: b}, true); err == nil {
		t.Error("16 prefix bytes decoded without error")
	}
}

func TestDecodeModRMForms(t *testing.T) {
	// 8B 04 B3: mov eax, [ebx+esi*4]
	inst, err := Decode(&sliceFetcher{b: []byte{0x8b, 0x04, 0xb3}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Base != EBX || inst.Index != ESI || inst.Scale != 2 {
		t.Errorf("SIB decode: %+v", inst)
	}
	// 8B 05 disp32: mov eax, [disp32]
	inst, err = Decode(&sliceFetcher{b: []byte{0x8b, 0x05, 0x78, 0x56, 0x34, 0x12}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Base != -1 || inst.Disp != 0x12345678 {
		t.Errorf("disp32 decode: %+v", inst)
	}
}

func TestAsmBitAndAtomicOps(t *testing.T) {
	assertBytes(t, "bits 32\nbt eax, ecx", []byte{0x0f, 0xa3, 0xc8})
	assertBytes(t, "bits 32\nbts eax, 3", []byte{0x0f, 0xba, 0xe8, 0x03})
	assertBytes(t, "bits 32\nbtr eax, 0", []byte{0x0f, 0xba, 0xf0, 0x00})
	assertBytes(t, "bits 32\nbtc eax, 4", []byte{0x0f, 0xba, 0xf8, 0x04})
	assertBytes(t, "bits 32\ncmpxchg ebx, ecx", []byte{0x0f, 0xb1, 0xcb})
	assertBytes(t, "bits 32\nxadd eax, ebx", []byte{0x0f, 0xc1, 0xd8})
	assertBytes(t, "bits 32\nbswap eax", []byte{0x0f, 0xc8})
	assertBytes(t, "bits 32\nbsf ebx, eax", []byte{0x0f, 0xbc, 0xd8})
	assertBytes(t, "bits 32\nbsr ebx, eax", []byte{0x0f, 0xbd, 0xd8})
	assertBytes(t, "bits 32\nshld eax, ebx, 2", []byte{0x0f, 0xa4, 0xd8, 0x02})
	assertBytes(t, "bits 32\nshrd eax, ebx, cl", []byte{0x0f, 0xad, 0xd8})
	assertBytes(t, "bits 32\nsete bl", []byte{0x0f, 0x94, 0xc3})
	assertBytes(t, "bits 32\ncmove ecx, ebx", []byte{0x0f, 0x44, 0xcb})
	assertBytes(t, "bits 32\nlock xadd eax, ebx", []byte{0xf0, 0x0f, 0xc1, 0xd8})
}
