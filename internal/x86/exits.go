package x86

import "fmt"

// ExitReason classifies VM exits, mirroring the event types for which the
// NOVA VMM creates dedicated portals (§5.2, §7).
type ExitReason int

// VM exit reasons.
const (
	ExitNone ExitReason = iota
	ExitHLT
	ExitCPUID
	ExitIO           // port I/O intercepted
	ExitEPTViolation // access to unmapped/MMIO guest-physical memory
	ExitCRAccess     // MOV to/from control register
	ExitINVLPG
	ExitMSR
	ExitException       // guest exception intercepted (vTLB #PF path)
	ExitInterruptWindow // guest became interruptible with injection pending
	ExitExternalInterrupt
	ExitTripleFault
	ExitRecall // forced by the recall hypercall (§7.5)
	ExitRDTSC
)

var exitNames = map[ExitReason]string{
	ExitNone:              "none",
	ExitHLT:               "hlt",
	ExitCPUID:             "cpuid",
	ExitIO:                "io",
	ExitEPTViolation:      "ept-violation",
	ExitCRAccess:          "cr-access",
	ExitINVLPG:            "invlpg",
	ExitMSR:               "msr",
	ExitException:         "exception",
	ExitInterruptWindow:   "interrupt-window",
	ExitExternalInterrupt: "external-interrupt",
	ExitTripleFault:       "triple-fault",
	ExitRecall:            "recall",
	ExitRDTSC:             "rdtsc",
}

func (r ExitReason) String() string {
	if s, ok := exitNames[r]; ok {
		return s
	}
	return fmt.Sprintf("ExitReason(%d)", int(r))
}

// NumExitReasons is the size of per-reason arrays (portals, counters).
const NumExitReasons = int(ExitRDTSC) + 1

// VMExit carries the exit reason and its qualification, the information
// hardware stores in the VMCS exit fields. The microhypervisor forwards
// a selected subset of this plus guest state to the VMM through the
// event's portal.
type VMExit struct {
	Reason  ExitReason
	InstLen int // length of the exiting instruction (0 if async)

	// ExitIO qualification.
	Port   uint16
	Size   int
	In     bool
	OutVal uint32 // value the guest was writing (OUT only)

	// ExitEPTViolation qualification.
	GPA   uint64
	Write bool
	Fetch bool

	// ExitCRAccess qualification.
	CR      int
	CRWrite bool
	CRGPR   int    // GPR operand index
	CRVal   uint32 // value being written (CRWrite only)

	// ExitException qualification.
	Vec     int
	ErrCode uint32
	HasCode bool
	CR2     uint32

	// ExitINVLPG qualification.
	Linear uint32

	// ExitMSR qualification.
	MSR      uint32
	MSRWrite bool
	MSRVal   uint64
}

func (e *VMExit) Error() string {
	switch e.Reason {
	case ExitIO:
		dir := "out"
		if e.In {
			dir = "in"
		}
		return fmt.Sprintf("x86: vmexit io %s port=%#x size=%d", dir, e.Port, e.Size)
	case ExitEPTViolation:
		return fmt.Sprintf("x86: vmexit ept-violation gpa=%#x write=%v fetch=%v", e.GPA, e.Write, e.Fetch)
	default:
		return fmt.Sprintf("x86: vmexit %v", e.Reason)
	}
}

// AccessKind distinguishes instruction fetches from data accesses.
type AccessKind int

// Memory access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExec
)

// Env is the interpreter's connection to the outside world: memory
// translation and access, port I/O, and TLB maintenance notifications.
// The implementation determines the execution mode:
//
//   - a native bus translates through the guest's own page tables and
//     reaches physical devices directly (the paper's bare-metal baseline);
//   - a nested-paging bus adds the GPA→HPA dimension (EPT/NPT);
//   - a vTLB bus consults the shadow page table and converts misses into
//     VM exits for the microhypervisor (§5.3).
type Env interface {
	// MemRead performs a data or fetch access of size 1, 2 or 4 bytes.
	// It returns *Exception for guest-visible faults and *VMExit when
	// the access leaves guest mode.
	MemRead(st *CPUState, va uint32, size int, kind AccessKind) (uint32, error)
	// MemWrite performs a data write.
	MemWrite(st *CPUState, va uint32, size int, val uint32) error
	// In reads from an I/O port (only called when I/O is not
	// intercepted).
	In(port uint16, size int) (uint32, error)
	// Out writes to an I/O port.
	Out(port uint16, size int, val uint32) error
	// InvalidateTLB is called for non-intercepted CR writes and INVLPG
	// so the Env can flush cached translations. all=false flushes only
	// va's page.
	InvalidateTLB(st *CPUState, all bool, va uint32)
}

// Intercepts selects which sensitive events leave guest mode, mirroring
// the execution controls of the VMCS. A native (bare-metal) run uses the
// zero value: nothing traps.
type Intercepts struct {
	HLT    bool
	IO     bool
	CR     bool
	INVLPG bool
	CPUID  bool
	MSR    bool
	RDTSC  bool
}

// FullVirt returns the intercept set of a fully virtualized guest under
// hardware nested paging: everything sensitive traps except what the MMU
// handles in hardware.
func FullVirt() Intercepts {
	return Intercepts{HLT: true, IO: true, CPUID: true, MSR: true}
}

// VTLBVirt returns the intercept set for shadow paging: additionally CR
// writes and INVLPG must trap so the microhypervisor can maintain the
// shadow page table (§5.3).
func VTLBVirt() Intercepts {
	return Intercepts{HLT: true, IO: true, CPUID: true, MSR: true, CR: true, INVLPG: true}
}

// ExitReasonNames returns the reason-name table indexed by reason, for
// self-describing trace metadata.
func ExitReasonNames() []string {
	names := make([]string, NumExitReasons)
	for i := range names {
		names[i] = ExitReason(i).String()
	}
	return names
}
