package x86

import "strings"

// Operand kinds produced by the assembler's parser.
const (
	opdNone = iota
	opdReg
	opdSreg
	opdCreg
	opdImm
	opdMem
	opdFar // sel:offset
)

type opd struct {
	kind int
	size int // 1, 2 or 4 for registers / size-hinted memory; 0 unknown
	reg  int

	val      uint32 // immediate or far offset
	sel      uint32 // far selector
	symbolic bool   // contains a label: force full-width encodings

	// Memory addressing.
	base, index, scale int // register indices, -1 for none; scale shift
	disp               uint32
	seg                int  // segment override or -1
	addr16             bool // uses 16-bit addressing registers
}

var reg8Names = map[string]int{"al": 0, "cl": 1, "dl": 2, "bl": 3, "ah": 4, "ch": 5, "dh": 6, "bh": 7}
var reg16Names = map[string]int{"ax": 0, "cx": 1, "dx": 2, "bx": 3, "sp": 4, "bp": 5, "si": 6, "di": 7}
var reg32Names = map[string]int{"eax": 0, "ecx": 1, "edx": 2, "ebx": 3, "esp": 4, "ebp": 5, "esi": 6, "edi": 7}
var sregNames = map[string]int{"es": ES, "cs": CS, "ss": SS, "ds": DS, "fs": FS, "gs": GS}
var cregNames = map[string]int{"cr0": 0, "cr2": 2, "cr3": 3, "cr4": 4}

// parseOperand parses one operand string.
func (a *Assembler) parseOperand(s string) (opd, bool) {
	s = strings.TrimSpace(s)
	low := strings.ToLower(s)

	if r, ok := reg8Names[low]; ok {
		return opd{kind: opdReg, size: 1, reg: r}, true
	}
	if r, ok := reg16Names[low]; ok {
		return opd{kind: opdReg, size: 2, reg: r}, true
	}
	if r, ok := reg32Names[low]; ok {
		return opd{kind: opdReg, size: 4, reg: r}, true
	}
	if r, ok := sregNames[low]; ok {
		return opd{kind: opdSreg, size: 2, reg: r}, true
	}
	if r, ok := cregNames[low]; ok {
		return opd{kind: opdCreg, size: 4, reg: r}, true
	}

	// Size hint? (Ordered slice, not a map: assembler output must be
	// byte-identical across runs — nova-vet: determinism.)
	size := 0
	for _, h := range []struct {
		hint string
		sz   int
	}{{"byte", 1}, {"word", 2}, {"dword", 4}} {
		if strings.HasPrefix(low, h.hint+" ") || strings.HasPrefix(low, h.hint+"[") {
			size = h.sz
			s = strings.TrimSpace(s[len(h.hint):])
			low = strings.ToLower(s)
			break
		}
	}

	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return opd{}, false
		}
		m, ok := a.parseMem(s[1 : len(s)-1])
		if !ok {
			return opd{}, false
		}
		m.size = size
		return m, true
	}

	// Far pointer sel:off?
	if i := strings.IndexByte(s, ':'); i > 0 {
		sel, ok1 := a.eval(s[:i])
		off, ok2 := a.eval(s[i+1:])
		if ok1 && ok2 {
			return opd{kind: opdFar, sel: sel, val: off, size: size}, true
		}
		return opd{}, false
	}

	// Immediate expression.
	v, ok := a.eval(s)
	if !ok {
		return opd{}, false
	}
	return opd{kind: opdImm, size: size, val: v, symbolic: containsIdent(a, s)}, true
}

// containsIdent reports whether the expression references a symbol (so
// encoders must pick width-stable forms).
func containsIdent(a *Assembler, s string) bool {
	for _, tok := range strings.FieldsFunc(s, func(r rune) bool {
		return r == '+' || r == '-' || r == ' ' || r == '\t'
	}) {
		if tok == "$" {
			return true
		}
		if isIdent(tok) {
			if _, num := reg32Names[strings.ToLower(tok)]; !num {
				return true
			}
		}
	}
	return false
}

// parseMem parses the inside of a [] memory reference: optional seg
// override, registers with optional *scale, and displacement terms.
func (a *Assembler) parseMem(s string) (opd, bool) {
	m := opd{kind: opdMem, base: -1, index: -1, seg: -1}
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ':'); i > 0 {
		segName := strings.ToLower(strings.TrimSpace(s[:i]))
		if r, ok := sregNames[segName]; ok {
			m.seg = r
			s = s[i+1:]
		}
	}
	var disp int64
	sign := int64(1)
	for _, term := range splitTerms(s) {
		t := strings.TrimSpace(term)
		if t == "" {
			continue
		}
		neg := false
		if t[0] == '-' {
			neg = true
			t = strings.TrimSpace(t[1:])
		} else if t[0] == '+' {
			t = strings.TrimSpace(t[1:])
		}
		low := strings.ToLower(t)
		// reg*scale, or a constant product folded into the displacement?
		if i := strings.IndexByte(low, '*'); i > 0 {
			rn := strings.TrimSpace(low[:i])
			sc := strings.TrimSpace(low[i+1:])
			r, ok := reg32Names[rn]
			if !ok {
				lv, ok1 := a.eval(rn)
				rv, ok2 := a.eval(sc)
				if !ok1 || !ok2 {
					return m, false
				}
				prod := int64(lv) * int64(rv)
				if neg {
					disp -= prod
				} else {
					disp += prod
				}
				continue
			}
			shift := map[string]int{"1": 0, "2": 1, "4": 2, "8": 3}[sc]
			if neg {
				return m, false
			}
			m.index = r
			m.scale = shift
			continue
		}
		if r, ok := reg32Names[low]; ok && !neg {
			if m.base < 0 {
				m.base = r
			} else if m.index < 0 {
				m.index = r
			} else {
				return m, false
			}
			continue
		}
		if r, ok := reg16Names[low]; ok && !neg {
			// 16-bit addressing register.
			if m.base < 0 {
				m.base = r
			} else if m.index < 0 {
				m.index = r
			} else {
				return m, false
			}
			m.addr16 = true
			continue
		}
		v, ok := a.eval(t)
		if !ok {
			return m, false
		}
		if containsIdent(a, t) {
			m.symbolic = true
		}
		if neg {
			disp -= int64(v) * sign
		} else {
			disp += int64(v) * sign
		}
	}
	m.disp = uint32(disp)
	return m, true
}

// splitTerms splits an address expression on top-level + and - while
// keeping the sign with the term.
func splitTerms(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if (s[i] == '+' || s[i] == '-') && i > start {
			out = append(out, s[start:i])
			start = i
		}
	}
	out = append(out, s[start:])
	return out
}
