package x86

// exec executes one decoded instruction. EIP has already been advanced
// past the instruction; jump instructions overwrite it.
func (ip *Interp) exec(inst *Inst) error {
	st := ip.St
	op := int(inst.Op)

	if inst.TwoByte {
		return ip.execTwoByte(inst)
	}

	// The regular ALU block: 8 operations x 6 encodings.
	if op < 0x40 && op&7 <= 5 {
		return ip.execALUBlock(inst)
	}

	switch op {
	case 0x06, 0x0e, 0x16, 0x1e: // PUSH ES/CS/SS/DS
		return ip.push(uint32(st.Seg[op>>3].Sel), inst.OpSize)
	case 0x07, 0x17, 0x1f: // POP ES/SS/DS
		v, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		return ip.loadSeg(op>>3, uint16(v))
	}

	switch {
	case op >= 0x40 && op <= 0x47: // INC r
		r := op - 0x40
		v := st.Reg(r, inst.OpSize) + 1
		st.SetReg(r, inst.OpSize, v)
		st.flagsInc(v, inst.OpSize)
		return nil
	case op >= 0x48 && op <= 0x4f: // DEC r
		r := op - 0x48
		v := st.Reg(r, inst.OpSize) - 1
		st.SetReg(r, inst.OpSize, v)
		st.flagsDec(v, inst.OpSize)
		return nil
	case op >= 0x50 && op <= 0x57: // PUSH r
		return ip.push(st.Reg(op-0x50, inst.OpSize), inst.OpSize)
	case op >= 0x58 && op <= 0x5f: // POP r
		v, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		st.SetReg(op-0x58, inst.OpSize, v)
		return nil
	case op >= 0x70 && op <= 0x7f: // Jcc rel8
		if st.condition(op & 0xf) {
			st.EIP += signExtend(inst.Imm, 1)
			if !st.Seg[CS].Def32 {
				st.EIP &= 0xffff
			}
		}
		return nil
	case op >= 0x91 && op <= 0x97: // XCHG eAX, r
		r := op - 0x90
		a, b := st.Reg(EAX, inst.OpSize), st.Reg(r, inst.OpSize)
		st.SetReg(EAX, inst.OpSize, b)
		st.SetReg(r, inst.OpSize, a)
		return nil
	case op >= 0xb0 && op <= 0xb7: // MOV r8, imm8
		st.SetReg8(op-0xb0, uint8(inst.Imm))
		return nil
	case op >= 0xb8 && op <= 0xbf: // MOV r, immZ
		st.SetReg(op-0xb8, inst.OpSize, inst.Imm)
		return nil
	}

	switch op {
	case 0x60: // PUSHA
		return ip.pusha(inst.OpSize)
	case 0x61: // POPA
		return ip.popa(inst.OpSize)
	case 0x68, 0x6a: // PUSH immZ / imm8
		v := inst.Imm
		if op == 0x6a {
			v = signExtend(v, 1)
		}
		return ip.push(v, inst.OpSize)
	case 0x69, 0x6b: // IMUL r, r/m, imm
		src, err := ip.readRM(inst, inst.OpSize)
		if err != nil {
			return err
		}
		imm := inst.Imm
		if op == 0x6b {
			imm = signExtend(imm, 1)
		}
		return ip.imul2(inst, src, imm)
	case 0x80, 0x81, 0x82, 0x83: // group 1: ALU r/m, imm
		return ip.execGroup1(inst)
	case 0x84, 0x85: // TEST r/m, r
		size := byteOr(op == 0x84, inst.OpSize)
		a, err := ip.readRM(inst, size)
		if err != nil {
			return err
		}
		st.flagsLogic(a&st.Reg(inst.RegOp, size), size)
		return nil
	case 0x86, 0x87: // XCHG r/m, r
		size := byteOr(op == 0x86, inst.OpSize)
		a, err := ip.readRM(inst, size)
		if err != nil {
			return err
		}
		b := st.Reg(inst.RegOp, size)
		if err := ip.writeRM(inst, size, b); err != nil {
			return err
		}
		st.SetReg(inst.RegOp, size, a)
		return nil
	case 0x88, 0x89: // MOV r/m, r
		size := byteOr(op == 0x88, inst.OpSize)
		return ip.writeRM(inst, size, st.Reg(inst.RegOp, size))
	case 0x8a, 0x8b: // MOV r, r/m
		size := byteOr(op == 0x8a, inst.OpSize)
		v, err := ip.readRM(inst, size)
		if err != nil {
			return err
		}
		st.SetReg(inst.RegOp, size, v)
		return nil
	case 0x8c: // MOV r/m16, Sreg
		if inst.RegOp >= 6 {
			return UDFault()
		}
		return ip.writeRM(inst, 2, uint32(st.Seg[inst.RegOp].Sel))
	case 0x8d: // LEA
		if inst.Mod == 3 {
			return UDFault()
		}
		off, _ := inst.effectiveAddr(st)
		if inst.OpSize == 2 {
			off &= 0xffff
		}
		st.SetReg(inst.RegOp, inst.OpSize, off)
		return nil
	case 0x8e: // MOV Sreg, r/m16
		if inst.RegOp == CS || inst.RegOp >= 6 {
			return UDFault()
		}
		v, err := ip.readRM(inst, 2)
		if err != nil {
			return err
		}
		return ip.loadSeg(inst.RegOp, uint16(v))
	case 0x8f: // POP r/m
		v, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		return ip.writeRM(inst, inst.OpSize, v)
	case 0x90: // NOP (XCHG eAX, eAX)
		return nil
	case 0x98: // CBW/CWDE
		if inst.OpSize == 2 {
			st.SetReg(EAX, 2, signExtend(st.Reg(EAX, 1), 1))
		} else {
			st.GPR[EAX] = signExtend(st.Reg(EAX, 2), 2)
		}
		return nil
	case 0x99: // CWD/CDQ
		if int32(st.GPR[EAX])<<(32-uint(inst.OpSize)*8) < 0 {
			st.SetReg(EDX, inst.OpSize, sizeMask(inst.OpSize))
		} else {
			st.SetReg(EDX, inst.OpSize, 0)
		}
		return nil
	case 0x9a: // CALL far ptr16:Z
		if err := ip.push(uint32(st.Seg[CS].Sel), inst.OpSize); err != nil {
			return err
		}
		if err := ip.push(st.EIP, inst.OpSize); err != nil {
			return err
		}
		if err := ip.loadSeg(CS, uint16(inst.Imm2)); err != nil {
			return err
		}
		st.EIP = inst.Imm
		return nil
	case 0x9c: // PUSHF
		return ip.push(st.EFLAGS&sizeMask(inst.OpSize), inst.OpSize)
	case 0x9d: // POPF
		v, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		const writable = FlagCF | FlagPF | FlagAF | FlagZF | FlagSF | FlagTF | FlagIF | FlagDF | FlagOF
		if inst.OpSize == 2 {
			st.EFLAGS = st.EFLAGS&^(writable&0xffff) | v&writable&0xffff | FlagsFixed
		} else {
			st.EFLAGS = st.EFLAGS&^writable | v&writable | FlagsFixed
		}
		return nil
	case 0xa0, 0xa1: // MOV AL/eAX, moffs
		size := byteOr(op == 0xa0, inst.OpSize)
		seg := DS
		if inst.SegOv >= 0 {
			seg = inst.SegOv
		}
		v, err := ip.memRead(seg, inst.Imm, size)
		if err != nil {
			return err
		}
		st.SetReg(EAX, size, v)
		return nil
	case 0xa2, 0xa3: // MOV moffs, AL/eAX
		size := byteOr(op == 0xa2, inst.OpSize)
		seg := DS
		if inst.SegOv >= 0 {
			seg = inst.SegOv
		}
		return ip.memWrite(seg, inst.Imm, size, st.Reg(EAX, size))
	case 0xa4, 0xa5, 0xa6, 0xa7, 0xaa, 0xab, 0xac, 0xad, 0xae, 0xaf:
		return ip.execString(inst)
	case 0xa8, 0xa9: // TEST AL/eAX, imm
		size := byteOr(op == 0xa8, inst.OpSize)
		st.flagsLogic(st.Reg(EAX, size)&inst.Imm, size)
		return nil
	case 0xc0, 0xc1, 0xd0, 0xd1, 0xd2, 0xd3: // shift group
		return ip.execShiftGroup(inst)
	case 0xc2: // RET imm16
		v, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		st.EIP = v
		ip.adjustSP(inst.Imm)
		return nil
	case 0xc3: // RET
		v, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		st.EIP = v
		return nil
	case 0xc6, 0xc7: // MOV r/m, imm
		size := byteOr(op == 0xc6, inst.OpSize)
		return ip.writeRM(inst, size, inst.Imm)
	case 0xc9: // LEAVE
		st.GPR[ESP] = st.GPR[EBP]
		v, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		st.SetReg(EBP, inst.OpSize, v)
		return nil
	case 0xca, 0xcb: // RET far [imm16]
		eip, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		cs, err := ip.pop(inst.OpSize)
		if err != nil {
			return err
		}
		if err := ip.loadSeg(CS, uint16(cs)); err != nil {
			return err
		}
		st.EIP = eip
		if op == 0xca {
			ip.adjustSP(inst.Imm)
		}
		return nil
	case 0xcc: // INT3
		return ip.deliverEvent(VecBP, 0, false, true)
	case 0xcd: // INT imm8
		return ip.deliverEvent(int(inst.Imm), 0, false, true)
	case 0xcf: // IRET
		return ip.iret(inst.OpSize)
	case 0xe0, 0xe1, 0xe2: // LOOPNE/LOOPE/LOOP
		cx := st.Reg(ECX, inst.AddrSize) - 1
		st.SetReg(ECX, inst.AddrSize, cx)
		take := cx != 0
		if op == 0xe0 {
			take = take && !st.GetFlag(FlagZF)
		} else if op == 0xe1 {
			take = take && st.GetFlag(FlagZF)
		}
		if take {
			st.EIP += signExtend(inst.Imm, 1)
		}
		return nil
	case 0xe3: // JCXZ
		if st.Reg(ECX, inst.AddrSize) == 0 {
			st.EIP += signExtend(inst.Imm, 1)
		}
		return nil
	case 0xe4, 0xe5, 0xec, 0xed: // IN
		size := byteOr(op == 0xe4 || op == 0xec, inst.OpSize)
		port := uint16(inst.Imm)
		if op >= 0xec {
			port = uint16(st.GPR[EDX])
		}
		if ip.IC.IO {
			return &VMExit{Reason: ExitIO, Port: port, Size: size, In: true}
		}
		v, err := ip.Env.In(port, size)
		if err != nil {
			return err
		}
		st.SetReg(EAX, size, v)
		return nil
	case 0xe6, 0xe7, 0xee, 0xef: // OUT
		size := byteOr(op == 0xe6 || op == 0xee, inst.OpSize)
		port := uint16(inst.Imm)
		if op >= 0xee {
			port = uint16(st.GPR[EDX])
		}
		val := st.Reg(EAX, size)
		if ip.IC.IO {
			return &VMExit{Reason: ExitIO, Port: port, Size: size, In: false, OutVal: val}
		}
		return ip.Env.Out(port, size, val)
	case 0xe8: // CALL relZ
		if err := ip.push(st.EIP, inst.OpSize); err != nil {
			return err
		}
		st.EIP += signExtend(inst.Imm, inst.OpSize)
		if inst.OpSize == 2 {
			st.EIP &= 0xffff
		}
		return nil
	case 0xe9: // JMP relZ
		st.EIP += signExtend(inst.Imm, inst.OpSize)
		if inst.OpSize == 2 {
			st.EIP &= 0xffff
		}
		return nil
	case 0xea: // JMP far ptr16:Z
		if err := ip.loadSeg(CS, uint16(inst.Imm2)); err != nil {
			return err
		}
		st.EIP = inst.Imm
		return nil
	case 0xeb: // JMP rel8
		st.EIP += signExtend(inst.Imm, 1)
		if !st.Seg[CS].Def32 {
			st.EIP &= 0xffff
		}
		return nil
	case 0xf4: // HLT
		if ip.IC.HLT {
			return &VMExit{Reason: ExitHLT}
		}
		st.Halted = true
		return nil
	case 0xf5: // CMC
		st.SetFlag(FlagCF, !st.GetFlag(FlagCF))
		return nil
	case 0xf6, 0xf7: // group 3
		return ip.execGroup3(inst)
	case 0xf8: // CLC
		st.SetFlag(FlagCF, false)
		return nil
	case 0xf9: // STC
		st.SetFlag(FlagCF, true)
		return nil
	case 0xfa: // CLI
		st.SetFlag(FlagIF, false)
		return nil
	case 0xfb: // STI
		if !st.IF() {
			st.IntShadow = true
		}
		st.SetFlag(FlagIF, true)
		return nil
	case 0xfc: // CLD
		st.SetFlag(FlagDF, false)
		return nil
	case 0xfd: // STD
		st.SetFlag(FlagDF, true)
		return nil
	case 0xfe: // group 4: INC/DEC r/m8
		v, err := ip.readRM(inst, 1)
		if err != nil {
			return err
		}
		switch inst.RegOp {
		case 0:
			v++
			if err := ip.writeRM(inst, 1, v); err != nil {
				return err
			}
			st.flagsInc(v, 1)
		case 1:
			v--
			if err := ip.writeRM(inst, 1, v); err != nil {
				return err
			}
			st.flagsDec(v, 1)
		default:
			return UDFault()
		}
		return nil
	case 0xff: // group 5
		return ip.execGroup5(inst)
	}
	return UDFault()
}

// byteOr picks size 1 for byte-form opcodes, else the instruction size.
func byteOr(isByte bool, opSize int) int {
	if isByte {
		return 1
	}
	return opSize
}

// adjustSP releases imm bytes of stack (RET imm16).
func (ip *Interp) adjustSP(imm uint32) {
	st := ip.St
	if ip.stackWidth() == 4 {
		st.GPR[ESP] += imm
	} else {
		st.GPR[ESP] = st.GPR[ESP]&^0xffff | (st.GPR[ESP]+imm)&0xffff
	}
}

// iret pops the interrupt frame.
func (ip *Interp) iret(opSize int) error {
	st := ip.St
	size := opSize
	if !st.ProtectedMode() {
		size = 2
	}
	eip, err := ip.pop(size)
	if err != nil {
		return err
	}
	cs, err := ip.pop(size)
	if err != nil {
		return err
	}
	fl, err := ip.pop(size)
	if err != nil {
		return err
	}
	if err := ip.loadSeg(CS, uint16(cs)); err != nil {
		return err
	}
	st.EIP = eip
	const writable = FlagCF | FlagPF | FlagAF | FlagZF | FlagSF | FlagTF | FlagIF | FlagDF | FlagOF
	if size == 2 {
		st.EFLAGS = st.EFLAGS&^(writable&0xffff) | fl&writable&0xffff | FlagsFixed
	} else {
		st.EFLAGS = st.EFLAGS&^writable | fl&writable | FlagsFixed
	}
	return nil
}

// execALUBlock handles the 0x00-0x3d two-operand ALU encodings.
func (ip *Interp) execALUBlock(inst *Inst) error {
	st := ip.St
	op := int(inst.Op)
	aluOp := op >> 3 & 7 // ADD OR ADC SBB AND SUB XOR CMP
	form := op & 7

	size := inst.OpSize
	if form == 0 || form == 2 || form == 4 {
		size = 1
	}

	var dst, src uint32
	var writeBack func(uint32) error
	switch form {
	case 0, 1: // r/m, r
		v, err := ip.readRM(inst, size)
		if err != nil {
			return err
		}
		dst, src = v, st.Reg(inst.RegOp, size)
		writeBack = func(r uint32) error { return ip.writeRM(inst, size, r) }
	case 2, 3: // r, r/m
		v, err := ip.readRM(inst, size)
		if err != nil {
			return err
		}
		dst, src = st.Reg(inst.RegOp, size), v
		writeBack = func(r uint32) error { st.SetReg(inst.RegOp, size, r); return nil }
	case 4, 5: // AL/eAX, imm
		dst, src = st.Reg(EAX, size), inst.Imm
		writeBack = func(r uint32) error { st.SetReg(EAX, size, r); return nil }
	}
	return ip.aluOp(aluOp, dst, src, size, writeBack)
}

// execGroup1 handles 0x80-0x83: ALU r/m, imm.
func (ip *Interp) execGroup1(inst *Inst) error {
	size := inst.OpSize
	if inst.Op == 0x80 || inst.Op == 0x82 {
		size = 1
	}
	src := inst.Imm
	if inst.Op == 0x83 {
		src = signExtend(src, 1)
	}
	dst, err := ip.readRM(inst, size)
	if err != nil {
		return err
	}
	return ip.aluOp(inst.RegOp, dst, src, size, func(r uint32) error {
		return ip.writeRM(inst, size, r)
	})
}

// aluOp executes one of the 8 classic ALU operations and writes flags.
// CMP (7) discards the result.
func (ip *Interp) aluOp(aluOp int, dst, src uint32, size int, writeBack func(uint32) error) error {
	st := ip.St
	var res uint32
	switch aluOp {
	case 0: // ADD
		res = dst + src
		st.flagsAdd(dst, src, res, size, 0)
	case 1: // OR
		res = dst | src
		st.flagsLogic(res, size)
	case 2: // ADC
		c := uint32(0)
		if st.GetFlag(FlagCF) {
			c = 1
		}
		res = dst + src + c
		st.flagsAdd(dst, src, res, size, c)
	case 3: // SBB
		b := uint32(0)
		if st.GetFlag(FlagCF) {
			b = 1
		}
		res = dst - src - b
		st.flagsSub(dst, src, res, size, b)
	case 4: // AND
		res = dst & src
		st.flagsLogic(res, size)
	case 5: // SUB
		res = dst - src
		st.flagsSub(dst, src, res, size, 0)
	case 6: // XOR
		res = dst ^ src
		st.flagsLogic(res, size)
	case 7: // CMP
		res = dst - src
		st.flagsSub(dst, src, res, size, 0)
		return nil
	}
	return writeBack(res & sizeMask(size))
}

// pusha pushes all eight GPRs.
func (ip *Interp) pusha(size int) error {
	st := ip.St
	sp := st.GPR[ESP]
	for _, r := range []int{EAX, ECX, EDX, EBX} {
		if err := ip.push(st.Reg(r, size), size); err != nil {
			return err
		}
	}
	if err := ip.push(sp&sizeMask(size), size); err != nil {
		return err
	}
	for _, r := range []int{EBP, ESI, EDI} {
		if err := ip.push(st.Reg(r, size), size); err != nil {
			return err
		}
	}
	return nil
}

// popa pops all eight GPRs (skipping ESP).
func (ip *Interp) popa(size int) error {
	st := ip.St
	for _, r := range []int{EDI, ESI, EBP} {
		v, err := ip.pop(size)
		if err != nil {
			return err
		}
		st.SetReg(r, size, v)
	}
	if _, err := ip.pop(size); err != nil { // discard saved SP
		return err
	}
	for _, r := range []int{EBX, EDX, ECX, EAX} {
		v, err := ip.pop(size)
		if err != nil {
			return err
		}
		st.SetReg(r, size, v)
	}
	return nil
}
