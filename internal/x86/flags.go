package x86

// Flag computation helpers. Arithmetic flags follow the Intel SDM
// definitions for each operation class; size is the operand size in
// bytes (1, 2 or 4).

func signBit(size int) uint32 { return 1 << (uint(size)*8 - 1) }

func sizeMask(size int) uint32 {
	switch size {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	default:
		return 0xffffffff
	}
}

// parity8 reports even parity of the low byte.
func parity8(v uint32) bool {
	v &= 0xff
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v&1 == 0
}

// setSZP sets SF, ZF and PF from a result.
func (c *CPUState) setSZP(res uint32, size int) {
	res &= sizeMask(size)
	c.SetFlag(FlagZF, res == 0)
	c.SetFlag(FlagSF, res&signBit(size) != 0)
	c.SetFlag(FlagPF, parity8(res))
}

// flagsAdd sets all arithmetic flags for dst + src (+carryIn) = res.
func (c *CPUState) flagsAdd(dst, src, res uint32, size int, carryIn uint32) {
	m := sizeMask(size)
	dst, src, res = dst&m, src&m, res&m
	c.setSZP(res, size)
	c.SetFlag(FlagCF, uint64(dst)+uint64(src)+uint64(carryIn) > uint64(m))
	c.SetFlag(FlagAF, (dst^src^res)&0x10 != 0)
	c.SetFlag(FlagOF, (dst^res)&(src^res)&signBit(size) != 0)
}

// flagsSub sets all arithmetic flags for dst - src (- borrowIn) = res.
func (c *CPUState) flagsSub(dst, src, res uint32, size int, borrowIn uint32) {
	m := sizeMask(size)
	dst, src, res = dst&m, src&m, res&m
	c.setSZP(res, size)
	c.SetFlag(FlagCF, uint64(dst) < uint64(src)+uint64(borrowIn))
	c.SetFlag(FlagAF, (dst^src^res)&0x10 != 0)
	c.SetFlag(FlagOF, (dst^src)&(dst^res)&signBit(size) != 0)
}

// flagsLogic sets flags for AND/OR/XOR/TEST results: CF=OF=0.
func (c *CPUState) flagsLogic(res uint32, size int) {
	c.setSZP(res, size)
	c.SetFlag(FlagCF, false)
	c.SetFlag(FlagOF, false)
	c.SetFlag(FlagAF, false)
}

// flagsInc sets flags for INC (CF unchanged).
func (c *CPUState) flagsInc(res uint32, size int) {
	c.setSZP(res, size)
	c.SetFlag(FlagAF, res&0xf == 0)
	c.SetFlag(FlagOF, res&sizeMask(size) == signBit(size))
}

// flagsDec sets flags for DEC (CF unchanged).
func (c *CPUState) flagsDec(res uint32, size int) {
	c.setSZP(res, size)
	c.SetFlag(FlagAF, res&0xf == 0xf)
	c.SetFlag(FlagOF, res&sizeMask(size) == signBit(size)-1)
}

// condition evaluates a Jcc/SETcc/CMOVcc condition code (low nibble of
// the opcode).
func (c *CPUState) condition(cc int) bool {
	var r bool
	switch cc >> 1 {
	case 0: // O
		r = c.GetFlag(FlagOF)
	case 1: // B/C
		r = c.GetFlag(FlagCF)
	case 2: // Z/E
		r = c.GetFlag(FlagZF)
	case 3: // BE
		r = c.GetFlag(FlagCF) || c.GetFlag(FlagZF)
	case 4: // S
		r = c.GetFlag(FlagSF)
	case 5: // P
		r = c.GetFlag(FlagPF)
	case 6: // L
		r = c.GetFlag(FlagSF) != c.GetFlag(FlagOF)
	case 7: // LE
		r = c.GetFlag(FlagZF) || c.GetFlag(FlagSF) != c.GetFlag(FlagOF)
	}
	if cc&1 != 0 {
		return !r
	}
	return r
}

// signExtend widens v of the given byte size to 32 bits.
func signExtend(v uint32, size int) uint32 {
	switch size {
	case 1:
		return uint32(int32(int8(v)))
	case 2:
		return uint32(int32(int16(v)))
	default:
		return v
	}
}
