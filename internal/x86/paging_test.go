package x86

import (
	"testing"
	"testing/quick"
)

// ptMem is a simple physical memory for walker tests.
type ptMem struct {
	b []byte
}

func (m *ptMem) ReadPhys32(pa uint64) (uint32, bool) {
	if pa+4 > uint64(len(m.b)) {
		return 0, false
	}
	return uint32(m.b[pa]) | uint32(m.b[pa+1])<<8 | uint32(m.b[pa+2])<<16 | uint32(m.b[pa+3])<<24, true
}

func (m *ptMem) WritePhys32(pa uint64, v uint32) bool {
	if pa+4 > uint64(len(m.b)) {
		return false
	}
	m.b[pa], m.b[pa+1], m.b[pa+2], m.b[pa+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return true
}

func (m *ptMem) put32(pa uint64, v uint32) { m.WritePhys32(pa, v) }

// buildPT maps va -> pa with flags in a 2-level table: PD at 0x1000,
// PT for va's directory at 0x2000.
func buildPT(m *ptMem, va, pa, pteFlags uint32) {
	m.put32(0x1000+uint64(va>>22)*4, 0x2000|PTEPresent|PTEWrite|PTEUser)
	m.put32(0x2000+uint64(va>>12&0x3ff)*4, pa&^0xfff|pteFlags)
}

func TestWalkGuestBasic(t *testing.T) {
	m := &ptMem{b: make([]byte, 1<<20)}
	buildPT(m, 0x00403000, 0x7000, PTEPresent|PTEWrite)
	w, exc := WalkGuest(m, 0x1000, 0, 0x00403abc, false, true, false)
	if exc != nil {
		t.Fatalf("fault: %v", exc)
	}
	if w.PA != 0x7abc {
		t.Errorf("pa = %#x, want 0x7abc", w.PA)
	}
	if w.Large || !w.Writable || w.User {
		t.Errorf("attrs: %+v", w)
	}
	if w.Steps != 2 {
		t.Errorf("steps = %d, want 2", w.Steps)
	}
}

func TestWalkGuestNotPresent(t *testing.T) {
	m := &ptMem{b: make([]byte, 1<<20)}
	// Empty PD.
	_, exc := WalkGuest(m, 0x1000, 0, 0x00403abc, false, true, false)
	if exc == nil {
		t.Fatal("no fault for unmapped address")
	}
	if exc.Vector != VecPF || exc.CR2 != 0x00403abc {
		t.Errorf("exc = %+v", exc)
	}
	if exc.Code&1 != 0 {
		t.Error("P bit set in error code for not-present fault")
	}
	// Present PD, empty PT.
	m.put32(0x1000+4, 0x2000|PTEPresent|PTEWrite)
	_, exc = WalkGuest(m, 0x1000, 0, 0x00403abc, false, true, false)
	if exc == nil {
		t.Fatal("no fault for not-present PTE")
	}
}

func TestWalkGuestWriteProtection(t *testing.T) {
	m := &ptMem{b: make([]byte, 1<<20)}
	buildPT(m, 0x00403000, 0x7000, PTEPresent) // read-only
	// With WP: write faults with P=1 W=1 in the code.
	_, exc := WalkGuest(m, 0x1000, 0, 0x00403000, true, true, false)
	if exc == nil {
		t.Fatal("write to RO page did not fault under WP")
	}
	if exc.Code&3 != 3 {
		t.Errorf("error code = %#x, want P|W", exc.Code)
	}
	// Supervisor write without WP succeeds.
	if _, exc := WalkGuest(m, 0x1000, 0, 0x00403000, true, false, false); exc != nil {
		t.Errorf("write without WP faulted: %v", exc)
	}
	// Reads always fine.
	if _, exc := WalkGuest(m, 0x1000, 0, 0x00403000, false, true, false); exc != nil {
		t.Errorf("read faulted: %v", exc)
	}
}

func TestWalkGuestLargePage(t *testing.T) {
	m := &ptMem{b: make([]byte, 1<<20)}
	// 4M PDE mapping 0x00800000 -> 0x00c00000.
	m.put32(0x1000+2*4, 0x00c00000|PTEPresent|PTEWrite|PTELarge)
	w, exc := WalkGuest(m, 0x1000, CR4PSE, 0x00923456, false, true, false)
	if exc != nil {
		t.Fatal(exc)
	}
	if !w.Large {
		t.Error("not large")
	}
	if w.PA != 0x00d23456 {
		t.Errorf("pa = %#x", w.PA)
	}
	if w.Steps != 1 {
		t.Errorf("steps = %d, want 1", w.Steps)
	}
	// Without CR4.PSE the PS bit is ignored and the PDE is treated as a
	// table pointer — which here points into garbage, so expect a
	// 2-level walk (not-present since "table" content is zero... the
	// table at 0x00c00000 is out of our 1MB memory -> malformed).
	_, exc = WalkGuest(m, 0x1000, 0, 0x00923456, false, true, false)
	if exc == nil {
		t.Error("PSE-disabled walk should fault here")
	}
}

func TestWalkGuestAccessedDirty(t *testing.T) {
	m := &ptMem{b: make([]byte, 1<<20)}
	buildPT(m, 0x00403000, 0x7000, PTEPresent|PTEWrite)
	if _, exc := WalkGuest(m, 0x1000, 0, 0x00403000, true, true, true); exc != nil {
		t.Fatal(exc)
	}
	pde, _ := m.ReadPhys32(0x1000 + 4)
	pte, _ := m.ReadPhys32(0x2000 + 3*4)
	if pde&PTEAccessed == 0 {
		t.Error("PDE accessed bit not set")
	}
	if pte&PTEAccessed == 0 || pte&PTEDirty == 0 {
		t.Errorf("PTE A/D not set: %#x", pte)
	}
}

func TestWalkGuestGlobalBit(t *testing.T) {
	m := &ptMem{b: make([]byte, 1<<20)}
	buildPT(m, 0x00403000, 0x7000, PTEPresent|PTEGlobal)
	w, exc := WalkGuest(m, 0x1000, CR4PGE, 0x00403000, false, true, false)
	if exc != nil {
		t.Fatal(exc)
	}
	if !w.Global {
		t.Error("global bit lost")
	}
}

func TestWalkGuestOffsetPreservedProperty(t *testing.T) {
	m := &ptMem{b: make([]byte, 1<<20)}
	buildPT(m, 0x00403000, 0x7000, PTEPresent|PTEWrite)
	f := func(off uint16) bool {
		va := 0x00403000 | uint32(off)&0xfff
		w, exc := WalkGuest(m, 0x1000, 0, va, false, true, false)
		return exc == nil && w.PA == 0x7000+uint64(va&0xfff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
