package vmm

import (
	"strings"
	"testing"

	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/services"
	"nova/internal/x86"
)

// testStack builds platform + kernel + disk server + one VMM.
func testStack(t *testing.T, mode hypervisor.PagingMode, withDisk bool) (*hypervisor.Kernel, *VMM, *services.DiskServer) {
	t.Helper()
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 128 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	root := services.NewRootPM(k)
	var ds *services.DiskServer
	if withDisk {
		var err error
		ds, err = root.StartDiskServer()
		if err != nil {
			t.Fatal(err)
		}
	}
	base, err := root.AllocPages("vm", 2048)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(k, Config{
		Name: "test", MemPages: 2048, BasePage: base, CPU: 0, Mode: mode,
		DiskServer: ds, BootDisk: plat.AHCI.Disk(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, m, ds
}

func TestBIOSBootPath(t *testing.T) {
	k, m, _ := testStack(t, hypervisor.ModeEPT, true)
	disk := k.Plat.AHCI.Disk()

	// Boot sector: print 'A', read LBA 1 via INT 13h CHS, print its
	// first byte, query E820, print 'C' if it worked, halt forever.
	boot := x86.MustAssemble(`bits 16
org 0x7c00
	mov ax, 0x0e41  ; teletype 'A'
	int 0x10
	; CHS read: 1 sector, cyl 0 head 0 sector 2 (= LBA 1) to 0:0x8000
	mov ax, 0x0201
	mov cx, 0x0002
	xor dx, dx
	mov bx, 0x8000
	int 0x13
	jc fail
	mov al, [0x8000]
	mov ah, 0x0e
	int 0x10
	; E820 first entry
	mov eax, 0xe820
	mov edx, 0x534d4150
	xor ebx, ebx
	mov ecx, 20
	mov di, 0x9000
	int 0x15
	jc fail
	mov ax, 0x0e43  ; 'C'
	int 0x10
fail:
	hlt
	jmp fail`)
	if err := disk.WriteSectors(0, 1, pad512(boot)); err != nil {
		t.Fatal(err)
	}
	sector1 := make([]byte, 512)
	sector1[0] = 'B'
	if err := disk.WriteSectors(1, 1, sector1); err != nil {
		t.Fatal(err)
	}

	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(10, 10_000_000); err != nil {
		t.Fatal(err)
	}
	k.Run(k.Now() + 100_000_000)

	if got := m.Console(); got != "ABC" {
		t.Errorf("console = %q, want ABC (killed=%v)", got, k.Killed)
	}
	// E820 entry written into guest memory: base 0, length 0x9fc00,
	// type 1.
	if l := m.guestRead32(0x9008); l != 0x9fc00 {
		t.Errorf("E820 length = %#x", l)
	}
	if m.Stats.BIOSCalls < 4 {
		t.Errorf("BIOS calls = %d", m.Stats.BIOSCalls)
	}
}

func pad512(b []byte) []byte {
	out := make([]byte, 512)
	copy(out, b)
	return out
}

func TestBIOSExtendedRead(t *testing.T) {
	k, m, _ := testStack(t, hypervisor.ModeEPT, true)
	disk := k.Plat.AHCI.Disk()
	boot := x86.MustAssemble(`bits 16
org 0x7c00
	; INT 13h AH=42: DAP at 0:0x7e00
	mov word [0x7e00], 0x10   ; size
	mov word [0x7e02], 4      ; count
	mov word [0x7e04], 0x9000 ; offset
	mov word [0x7e06], 0      ; segment
	mov word [0x7e08], 7      ; LBA low
	mov word [0x7e0a], 0
	mov word [0x7e0c], 0
	mov word [0x7e0e], 0
	mov ah, 0x42
	mov si, 0x7e00
	xor dx, dx
	int 0x13
	jc fail
	mov ax, 0x0e4f ; 'O'
	int 0x10
fail:
	hlt
	jmp fail`)
	disk.WriteSectors(0, 1, pad512(boot)) //nolint:errcheck
	want := make([]byte, 4*512)
	for i := range want {
		want[i] = byte(i * 3)
	}
	disk.WriteSectors(7, 4, want) //nolint:errcheck

	m.Boot()                //nolint:errcheck
	m.Start(10, 10_000_000) //nolint:errcheck
	k.Run(k.Now() + 100_000_000)
	if m.Console() != "O" {
		t.Fatalf("console = %q (killed=%v)", m.Console(), k.Killed)
	}
	got := m.GuestRead(0x9000, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("extended read data mismatch at %d", i)
		}
	}
}

func TestGuestSerialOutput(t *testing.T) {
	k, m, _ := testStack(t, hypervisor.ModeEPT, false)
	img := x86.MustAssemble(`bits 16
org 0x8000
	mov dx, 0x3f8
	mov al, 'h'
	out dx, al
	mov al, 'i'
	out dx, al
	hlt
stop:
	jmp stop`)
	m.LoadImage(0x8000, img) //nolint:errcheck
	st := &m.EC.VCPU.State
	st.Reset()
	st.EIP = 0x8000
	m.Start(10, 10_000_000) //nolint:errcheck
	k.Run(k.Now() + 50_000_000)
	if !strings.Contains(m.Console(), "hi") {
		t.Errorf("console = %q", m.Console())
	}
	if m.Stats.PortIO < 2 {
		t.Errorf("port I/O exits = %d", m.Stats.PortIO)
	}
}

func TestGuestVPITTimer(t *testing.T) {
	// The guest programs the virtual PIT and counts ticks through the
	// virtual PIC: the full recall+injection machinery.
	k, m, _ := testStack(t, hypervisor.ModeEPT, false)
	img := x86.MustAssemble(`bits 16
org 0x8000
	cli
	xor ax, ax
	mov ds, ax
	mov word [0x20*4], isr
	mov word [0x20*4+2], 0
	; PIC init, base 0x20
	mov al, 0x11
	out 0x20, al
	mov al, 0x20
	out 0x21, al
	mov al, 0x04
	out 0x21, al
	mov al, 0x01
	out 0x21, al
	mov al, 0
	out 0x21, al
	; PIT ~1kHz periodic
	mov al, 0x34
	out 0x43, al
	mov al, 0xa9
	out 0x40, al
	mov al, 0x04
	out 0x40, al
	sti
loop_w:
	hlt
	mov ax, [0x6000]
	cmp ax, 5
	jnz loop_w
	cli
	hlt
isr:
	push ax
	mov ax, [0x6000]
	inc ax
	mov [0x6000], ax
	mov al, 0x20
	out 0x20, al
	pop ax
	iret`)
	m.LoadImage(0x8000, img) //nolint:errcheck
	st := &m.EC.VCPU.State
	st.Reset()
	st.EIP = 0x8000
	m.Start(10, 10_000_000) //nolint:errcheck
	k.Run(k.Now() + 500_000_000)
	if got := m.guestRead32(0x6000) & 0xffff; got != 5 {
		t.Errorf("guest tick count = %d, want 5 (killed=%v)", got, k.Killed)
	}
	if m.EC.VCPU.InjectedIRQs < 5 {
		t.Errorf("injections = %d", m.EC.VCPU.InjectedIRQs)
	}
	if m.EC.VCPU.Exits[x86.ExitIO] < 8 {
		t.Errorf("io exits = %d", m.EC.VCPU.Exits[x86.ExitIO])
	}
}

func TestCompromisedVMMOnlyKillsItsVM(t *testing.T) {
	// §4.2 Guest Attacks: a guest triggers a bug in its VMM (modeled by
	// SabotageIO); the kernel kills that VM; a second VM with its own
	// VMM is unaffected.
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 128 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	root := services.NewRootPM(k)

	mk := func(name string) *VMM {
		base, err := root.AllocPages(name, 512)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(k, Config{Name: name, MemPages: 512, BasePage: base, CPU: 0, Mode: hypervisor.ModeEPT})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	victim := mk("victim")
	healthy := mk("healthy")
	victim.SabotageIO = true

	attack := x86.MustAssemble("bits 16\norg 0x8000\nout 0x80, al\nhlt\ns: jmp s")
	work := x86.MustAssemble(`bits 16
org 0x8000
	mov ecx, 2000
w:
	dec ecx
	jnz w
	mov dword [0x6000], 0x600d
	cli
	hlt`)
	victim.LoadImage(0x8000, attack) //nolint:errcheck
	healthy.LoadImage(0x8000, work)  //nolint:errcheck
	for _, m := range []*VMM{victim, healthy} {
		st := &m.EC.VCPU.State
		st.Reset()
		st.EIP = 0x8000
		m.Start(10, 1_000_000) //nolint:errcheck
	}
	k.Run(k.Now() + 100_000_000)

	if !victim.EC.VCPU.State.Halted && len(k.Killed) == 0 {
		t.Error("sabotaged VMM did not take its VM down")
	}
	if len(k.Killed) != 1 || !strings.Contains(k.Killed[0], "victim") {
		t.Errorf("killed = %v, want only the victim", k.Killed)
	}
	if got := healthy.guestRead32(0x6000); got != 0x600d {
		t.Errorf("healthy VM did not complete: marker=%#x", got)
	}
}

func TestEmulatorHandlesMMIOInstructionForms(t *testing.T) {
	// The instruction emulator must handle the forms drivers use
	// against device registers: mov r->m, mov m->r, sized accesses,
	// read-modify-write.
	k, m, _ := testStack(t, hypervisor.ModeEPT, true)
	img := x86.MustAssemble(`bits 16
org 0x8000
	cli
	lgdt [gdtr]
	mov eax, cr0
	or eax, 1
	mov cr0, eax
	jmp dword 0x08:pm
gdtr:
	dw 23
	dd gdt
align 8
gdt:
	dd 0, 0
	dd 0x0000ffff, 0x00cf9a00
	dd 0x0000ffff, 0x00cf9200
bits 32
pm:
	mov ax, 0x10
	mov ds, ax
	mov ss, ax
	mov esp, 0x7000
	mov esi, 0xfeb00000
	mov eax, [esi+0x124]      ; PxSIG
	mov [0x6000], eax
	mov dword [esi+0x114], 0x40000001 ; PxIE write
	mov eax, [esi+0x114]
	mov [0x6004], eax
	or dword [esi+0x04], 2   ; RMW on GHC
	mov eax, [esi+0x04]
	mov [0x6008], eax
	cli
	hlt`)
	m.LoadImage(0x8000, img) //nolint:errcheck
	st := &m.EC.VCPU.State
	st.Reset()
	st.EIP = 0x8000
	m.Start(10, 10_000_000) //nolint:errcheck
	k.Run(k.Now() + 100_000_000)
	if got := m.guestRead32(0x6000); got != 0x101 {
		t.Errorf("PxSIG via emulator = %#x (killed=%v)", got, k.Killed)
	}
	if got := m.guestRead32(0x6004); got != 0x40000001 {
		t.Errorf("PxIE readback = %#x", got)
	}
	if got := m.guestRead32(0x6008); got&2 == 0 {
		t.Errorf("GHC RMW = %#x", got)
	}
	if m.Stats.Emulated < 5 {
		t.Errorf("emulated instructions = %d", m.Stats.Emulated)
	}
}
