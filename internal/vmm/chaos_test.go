package vmm

import (
	"math/rand"
	"testing"

	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/services"
	"nova/internal/x86"
)

// TestGuestRunningGarbageIsContained boots VMs whose "kernels" are
// random bytes (the strongest form of a malicious/broken guest) next to
// a healthy VM. Whatever the garbage does — fault storms, sensitive
// instructions, triple faults — the healthy VM and the host stack must
// be unaffected (§4.2).
func TestGuestRunningGarbageIsContained(t *testing.T) {
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 256 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	root := services.NewRootPM(k)
	ds, err := root.StartDiskServer()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	var chaos []*VMM
	for i := 0; i < 2; i++ {
		base, err := root.AllocPages("chaos", 512)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(k, Config{
			Name: "chaos", MemPages: 512, BasePage: base, CPU: 0,
			Mode: hypervisor.ModeEPT, DiskServer: ds, BootDisk: plat.AHCI.Disk(),
		})
		if err != nil {
			t.Fatal(err)
		}
		garbage := make([]byte, 1024)
		rng.Read(garbage)
		if err := m.LoadImage(0x8000, garbage); err != nil {
			t.Fatal(err)
		}
		st := &m.EC.VCPU.State
		st.Reset()
		st.EIP = 0x8000
		if err := m.Start(10, 500_000); err != nil {
			t.Fatal(err)
		}
		chaos = append(chaos, m)
	}

	// The healthy VM does real disk I/O through the shared server while
	// the chaos VMs thrash.
	base, err := root.AllocPages("healthy", 512)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := New(k, Config{
		Name: "healthy", MemPages: 512, BasePage: base, CPU: 0,
		Mode: hypervisor.ModeEPT, DiskServer: ds, BootDisk: plat.AHCI.Disk(),
	})
	if err != nil {
		t.Fatal(err)
	}
	work := x86.MustAssemble(`bits 16
org 0x8000
	mov ecx, 5000
w:
	mov eax, [0x6000]
	inc eax
	mov [0x6000], eax
	dec ecx
	jnz w
	mov dword [0x6004], 0x600d
	cli
	hlt`)
	if err := healthy.LoadImage(0x8000, work); err != nil {
		t.Fatal(err)
	}
	st := &healthy.EC.VCPU.State
	st.Reset()
	st.EIP = 0x8000
	if err := healthy.Start(10, 500_000); err != nil {
		t.Fatal(err)
	}

	k.Run(k.Now() + 30_000_000)

	if got := healthy.guestRead32(0x6004); got != 0x600d {
		t.Fatalf("healthy VM did not finish (marker %#x); killed=%v", got, k.Killed)
	}
	if got := healthy.guestRead32(0x6000); got != 5000 {
		t.Errorf("healthy progress = %d", got)
	}
	// None of the chaos VMs may have taken anything else down: the only
	// permissible kernel action is killing chaos VMs themselves.
	for _, msg := range k.Killed {
		if !contains(msg, "chaos") {
			t.Errorf("non-chaos victim: %s", msg)
		}
	}
	// The disk server is still usable after the storm.
	if ds.Stats.Failures > 0 {
		t.Logf("disk server rejected %d malformed requests (fine)", ds.Stats.Failures)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestTwoVMsOnTwoPhysicalCPUs runs two independent VMs pinned to
// different processors via the per-CPU runqueues and RunAll.
func TestTwoVMsOnTwoPhysicalCPUs(t *testing.T) {
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, NumCPUs: 2, RAMSize: 128 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	root := services.NewRootPM(k)
	mk := func(name string, cpu int) *VMM {
		base, err := root.AllocPages(name, 512)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(k, Config{Name: name, MemPages: 512, BasePage: base, CPU: cpu, Mode: hypervisor.ModeEPT})
		if err != nil {
			t.Fatal(err)
		}
		img := x86.MustAssemble(`bits 16
org 0x8000
	mov ecx, 20000
w:
	mov eax, [0x6000]
	inc eax
	mov [0x6000], eax
	dec ecx
	jnz w
	mov dword [0x6004], 0x600d
	cli
	hlt`)
		if err := m.LoadImage(0x8000, img); err != nil {
			t.Fatal(err)
		}
		st := &m.EC.VCPU.State
		st.Reset()
		st.EIP = 0x8000
		if err := m.Start(10, 1_000_000); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := mk("cpu0-vm", 0)
	b := mk("cpu1-vm", 1)

	k.RunAll(10_000_000)

	for name, m := range map[string]*VMM{"a": a, "b": b} {
		if got := m.guestRead32(0x6004); got != 0x600d {
			t.Errorf("vm %s did not finish: %#x (killed=%v)", name, got, k.Killed)
		}
	}
	// Work really happened on both processors.
	if plat.CPUs[0].Clock.Busy() == 0 || plat.CPUs[1].Clock.Busy() == 0 {
		t.Errorf("busy cycles: cpu0=%d cpu1=%d", plat.CPUs[0].Clock.Busy(), plat.CPUs[1].Clock.Busy())
	}
}
