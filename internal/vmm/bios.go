package vmm

import (
	"encoding/binary"
	"fmt"

	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/span"
	"nova/internal/trace"
	"nova/internal/x86"
)

// Virtual BIOS (§7.4). Instead of injecting BIOS code into the guest
// and emulating slow real-mode execution, the BIOS is integrated with
// the VMM: every interrupt vector points to a four-byte stub in the
// BIOS segment that performs a single OUT to the BIOS trap port. The
// resulting VM exit runs the service directly against the device
// models, and the stub's IRET resumes the guest. The BIOS code is also
// invisible to the guest (it sees only the stubs).

// biosSegBase is the guest-physical base of the BIOS stub area.
const biosSegBase = 0xf0000

// Virtual disk geometry reported by INT 13h AH=08.
const (
	biosHeads         = 16
	biosSectorsPerTrk = 63
)

// SetupBIOS installs the interrupt vector table, the BIOS data area and
// the trap stubs into guest memory.
func (m *VMM) SetupBIOS() error {
	if m.size < biosSegBase+0x10000 {
		return fmt.Errorf("vmm: guest memory too small for the BIOS segment")
	}
	// IVT: vector n -> F000:n*4.
	ivt := make([]byte, 1024)
	for n := 0; n < 256; n++ {
		binary.LittleEndian.PutUint16(ivt[n*4:], uint16(n*4))
		binary.LittleEndian.PutUint16(ivt[n*4+2:], 0xf000)
	}
	if err := m.GuestWrite(0, ivt); err != nil {
		return err
	}
	// Stubs: out BIOSTrapPort, al ; iret ; nop.
	stubs := make([]byte, 1024)
	for n := 0; n < 256; n++ {
		stubs[n*4] = 0xe6
		stubs[n*4+1] = BIOSTrapPort
		stubs[n*4+2] = 0xcf
		stubs[n*4+3] = 0x90
	}
	if err := m.GuestWrite(biosSegBase, stubs); err != nil {
		return err
	}
	// BIOS data area: COM1 port, base memory size.
	bda := make([]byte, 256)
	binary.LittleEndian.PutUint16(bda[0x00:], 0x3f8)
	binary.LittleEndian.PutUint16(bda[0x13:], 639)
	return m.GuestWrite(0x400, bda)
}

// Boot performs the BIOS power-on path: install the stubs, load the
// boot sector from LBA 0 to 0000:7C00 and point the vCPU at it with the
// conventional register state.
func (m *VMM) Boot() error {
	if err := m.SetupBIOS(); err != nil {
		return err
	}
	if m.Cfg.BootDisk != nil {
		sector := make([]byte, hw.SectorSize)
		if err := m.Cfg.BootDisk.ReadSectors(0, 1, sector); err != nil {
			return err
		}
		if err := m.GuestWrite(0x7c00, sector); err != nil {
			return err
		}
	}
	st := &m.EC.VCPU.State
	st.Reset()
	st.EIP = 0x7c00
	st.GPR[x86.ESP] = 0x7000
	st.SetReg8(x86.EDX, 0x80) // boot drive
	return nil
}

// LoadImage writes a flat binary into guest memory (used by multiboot
// loading and the test workloads).
func (m *VMM) LoadImage(gpa uint64, image []byte) error {
	return m.GuestWrite(gpa, image)
}

// biosCall dispatches a BIOS service trap. The vector is recovered from
// the stub's position: CS=F000, IP = vector*4.
func (m *VMM) biosCall(msg *hypervisor.UTCB) {
	m.Stats.BIOSCalls++
	m.count(m.statNames.bios, 1)
	vector := uint8(msg.State.EIP / 4)
	st := &msg.State
	m.K.Tracer.Emit(m.K.CurCPU(), m.K.Now(), trace.KindBIOSCall, uint64(vector), uint64(st.GPR[x86.EAX]>>8&0xff), 0, 0)
	switch vector {
	case 0x10:
		m.bios10(st)
	case 0x11: // equipment: one floppy-less disk, COM1
		st.SetReg(x86.EAX, 2, 0x0201)
	case 0x12: // base memory in KB
		st.SetReg(x86.EAX, 2, 639)
	case 0x13:
		m.bios13(msg)
	case 0x15:
		m.bios15(msg)
	case 0x16:
		m.bios16(msg)
	case 0x1a:
		m.bios1a(st)
	default:
		m.setCF(msg, true)
	}
}

// setCF writes the carry flag into the FLAGS image the INT pushed on
// the guest stack, so it survives the stub's IRET.
func (m *VMM) setCF(msg *hypervisor.UTCB, cf bool) {
	sp := msg.State.GPR[x86.ESP] & 0xffff
	flagsGPA := uint64(msg.State.Seg[x86.SS].Base) + uint64((sp+4)&0xffff)
	b := m.GuestRead(flagsGPA, 2)
	if b == nil {
		return
	}
	fl := binary.LittleEndian.Uint16(b)
	if cf {
		fl |= 1
	} else {
		fl &^= 1
	}
	var out [2]byte
	binary.LittleEndian.PutUint16(out[:], fl)
	m.GuestWrite(flagsGPA, out[:]) //nolint:errcheck
}

// bios10 implements the video services we need: teletype output.
func (m *VMM) bios10(st *x86.CPUState) {
	switch st.Reg8(4) { // AH
	case 0x0e:
		m.console = append(m.console, st.Reg8(x86.EAX))
	case 0x00, 0x01, 0x02, 0x03: // mode/cursor: accepted
		st.SetReg(x86.EDX, 2, 0)
	}
}

// bios13 implements the disk services: reset, CHS read, extended read,
// geometry.
func (m *VMM) bios13(msg *hypervisor.UTCB) {
	st := &msg.State
	if m.Cfg.BootDisk == nil {
		m.setCF(msg, true)
		st.SetReg8(4, 0x01)
		return
	}
	switch st.Reg8(4) { // AH
	case 0x00: // reset
		m.setCF(msg, false)
		st.SetReg8(4, 0)
	case 0x02: // CHS read: AL sectors, CH cyl, CL sector, DH head, ES:BX
		count := int(st.Reg8(x86.EAX))
		cyl := uint64(st.Reg8(5)) | uint64(st.Reg8(x86.ECX)&0xc0)<<2 // CH + CL[7:6]
		sec := uint64(st.Reg8(x86.ECX) & 0x3f)
		head := uint64(st.Reg8(6))
		lba := (cyl*biosHeads+head)*biosSectorsPerTrk + sec - 1
		buf := uint64(st.Seg[x86.ES].Base) + uint64(st.Reg(x86.EBX, 2))
		m.biosDiskRead(msg, lba, count, buf)
	case 0x42: // extended read: DS:SI -> disk address packet
		dap := uint64(st.Seg[x86.DS].Base) + uint64(st.Reg(x86.ESI, 2))
		pkt := m.GuestRead(dap, 16)
		if pkt == nil {
			m.setCF(msg, true)
			return
		}
		count := int(binary.LittleEndian.Uint16(pkt[2:]))
		off := uint64(binary.LittleEndian.Uint16(pkt[4:]))
		seg := uint64(binary.LittleEndian.Uint16(pkt[6:]))
		lba := binary.LittleEndian.Uint64(pkt[8:])
		m.biosDiskRead(msg, lba, count, seg<<4+off)
	case 0x08: // geometry
		st.SetReg8(5, 0xff)                    // CH: low cylinders
		st.SetReg8(x86.ECX, biosSectorsPerTrk) // CL
		st.SetReg8(6, biosHeads-1)             // DH: max head
		st.SetReg8(x86.EDX, 1)                 // DL: one drive
		m.setCF(msg, false)
	case 0x41: // extensions present
		st.SetReg(x86.EBX, 2, 0xaa55)
		st.SetReg(x86.ECX, 2, 0x01)
		m.setCF(msg, false)
	default:
		m.setCF(msg, true)
		st.SetReg8(4, 0x01)
	}
}

// biosDiskRead reads synchronously from the boot disk into guest
// memory, charging the media service time (boot-time path; runtime I/O
// goes through the disk server).
func (m *VMM) biosDiskRead(msg *hypervisor.UTCB, lba uint64, count int, gpa uint64) {
	st := &msg.State
	cpu := m.K.CurCPU()
	// Synchronous span: the whole INT 13h service runs inline, so the
	// span opens and closes within this call (no queueing segment).
	sp := m.K.Spans.Open(cpu, m.K.Now(), span.ClassBIOSDisk, span.SegEmul, lba)
	// The sector count is guest-written (AL, or the DAP's 16-bit field);
	// reject anything beyond the conventional 127-sector BIOS transfer
	// limit instead of sizing an allocation by it.
	if count <= 0 || count > 127 {
		m.K.Spans.Close(cpu, m.K.Now(), sp, span.StatusError)
		m.setCF(msg, true)
		st.SetReg8(4, 0x01)
		return
	}
	m.K.Spans.Annotate(cpu, m.K.Now(), sp, span.AnnotSectors, uint64(count))
	buf := make([]byte, count*hw.SectorSize)
	if err := m.Cfg.BootDisk.ReadSectors(lba, count, buf); err != nil {
		m.K.Spans.Close(cpu, m.K.Now(), sp, span.StatusError)
		m.setCF(msg, true)
		st.SetReg8(4, 0x04)
		return
	}
	if err := m.GuestWrite(gpa, buf); err != nil {
		m.K.Spans.Close(cpu, m.K.Now(), sp, span.StatusError)
		m.setCF(msg, true)
		st.SetReg8(4, 0x09)
		return
	}
	// The media access itself is the served part of the request.
	m.K.Spans.Transition(cpu, m.K.Now(), sp, span.SegServer)
	m.K.ChargeUser(m.Cfg.BootDisk.ServiceTime(len(buf)))
	m.K.Spans.Close(cpu, m.K.Now(), sp, span.StatusOK)
	m.setCF(msg, false)
	st.SetReg8(4, 0)
	st.SetReg8(x86.EAX, uint8(count))
}

// bios15 implements the system services: E820 memory map and legacy
// extended-memory queries.
func (m *VMM) bios15(msg *hypervisor.UTCB) {
	st := &msg.State
	switch {
	case st.Reg(x86.EAX, 2) == 0xe820 && st.GPR[x86.EDX] == 0x534d4150: // 'SMAP'
		type region struct {
			base, length uint64
			kind         uint32
		}
		regions := []region{
			{0, 0x9fc00, 1},
			{0x100000, m.size - 0x100000, 1},
		}
		idx := st.GPR[x86.EBX]
		if idx >= uint64AsU32(len(regions)) {
			m.setCF(msg, true)
			return
		}
		r := regions[idx]
		buf := make([]byte, 20)
		binary.LittleEndian.PutUint64(buf[0:], r.base)
		binary.LittleEndian.PutUint64(buf[8:], r.length)
		binary.LittleEndian.PutUint32(buf[16:], r.kind)
		dst := uint64(st.Seg[x86.ES].Base) + uint64(st.Reg(x86.EDI, 2))
		m.GuestWrite(dst, buf) //nolint:errcheck
		st.GPR[x86.EAX] = 0x534d4150
		st.GPR[x86.ECX] = 20
		if int(idx)+1 < len(regions) {
			st.GPR[x86.EBX] = idx + 1
		} else {
			st.GPR[x86.EBX] = 0
		}
		m.setCF(msg, false)
	case st.Reg8(4) == 0x88: // extended memory in KB above 1M
		kb := (m.size - 0x100000) / 1024
		if kb > 0xffff {
			kb = 0xffff
		}
		st.SetReg(x86.EAX, 2, uint32(kb))
		m.setCF(msg, false)
	default:
		m.setCF(msg, true)
	}
}

func uint64AsU32(v int) uint32 { return uint32(v) }

// bios16 implements the keyboard services over the injected key queue.
func (m *VMM) bios16(msg *hypervisor.UTCB) {
	st := &msg.State
	switch st.Reg8(4) {
	case 0x00: // blocking read
		if len(m.biosKeys) > 0 {
			st.SetReg(x86.EAX, 2, uint32(m.biosKeys[0]))
			m.biosKeys = m.biosKeys[1:]
		} else {
			// No input source: report Enter so boot prompts proceed.
			st.SetReg(x86.EAX, 2, 0x1c0d)
		}
	case 0x01: // poll: ZF in the stacked flags mirrors queue state
		sp := st.GPR[x86.ESP] & 0xffff
		flagsGPA := uint64(st.Seg[x86.SS].Base) + uint64((sp+4)&0xffff)
		if b := m.GuestRead(flagsGPA, 2); b != nil {
			fl := binary.LittleEndian.Uint16(b)
			if len(m.biosKeys) == 0 {
				fl |= uint16(x86.FlagZF)
			} else {
				fl &^= uint16(x86.FlagZF)
				st.SetReg(x86.EAX, 2, uint32(m.biosKeys[0]))
			}
			var out [2]byte
			binary.LittleEndian.PutUint16(out[:], fl)
			m.GuestWrite(flagsGPA, out[:]) //nolint:errcheck
		}
	}
}

// bios1a implements the time-of-day tick counter (18.2 Hz).
func (m *VMM) bios1a(st *x86.CPUState) {
	if st.Reg8(4) != 0 {
		return
	}
	cycles := uint64(m.K.Plat.CPUs[m.Cfg.CPU].Clock.Now())
	ticksPerSec := 18.2065
	ticks := uint64(float64(cycles) / (float64(m.K.Plat.Cost.FreqMHz) * 1e6) * ticksPerSec)
	st.SetReg(x86.EDX, 2, uint32(ticks))
	st.SetReg(x86.ECX, 2, uint32(ticks>>16))
	st.SetReg8(x86.EAX, 0)
}
