package vmm

import (
	"testing"

	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/services"
	"nova/internal/x86"
)

// TestMultiVCPUIPISync exercises §7.5: a two-vCPU guest on a two-CPU
// host. vCPU0 sends virtual IPIs (the TLB-shootdown pattern) to vCPU1,
// which handles them in its ISR and acknowledges through shared memory;
// both synchronize entirely through guest code.
func TestMultiVCPUIPISync(t *testing.T) {
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, NumCPUs: 2, RAMSize: 128 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	root := services.NewRootPM(k)
	base, err := root.AllocPages("mp-vm", 1024)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(k, Config{
		Name: "mp", MemPages: 1024, BasePage: base, CPU: 0,
		Mode: hypervisor.ModeEPT, VCPUs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ECs) != 2 {
		t.Fatalf("vcpus = %d", len(m.ECs))
	}
	if m.ECs[0].CPU == m.ECs[1].CPU {
		t.Fatal("vCPUs not spread over physical CPUs")
	}

	// Shared layout: 0x6010 IPI counter, 0x6014 vCPU1 done, 0x6018
	// vCPU1 ready, 0x6000 final marker.
	bsp := x86.MustAssemble(`bits 16
org 0x8000
	xor ax, ax
	mov ds, ax
	mov es, ax
	mov word [0x84], 0x5000
	mov word [0x86], 0
	mov dword [0x6010], 0
	mov dword [0x6014], 0
w_ready:
	mov eax, [0x6018]
	test eax, eax
	jz w_ready
	; send 3 IPIs to vCPU1, vector 0x21, waiting for each ack
	mov ecx, 3
ipi_loop:
	mov ebx, [0x6010]
	mov dx, 0xf2
	mov ax, 0x0121
	out dx, ax
w_ack:
	mov eax, [0x6010]
	cmp eax, ebx
	jz w_ack
	dec ecx
	jnz ipi_loop
w_done:
	mov eax, [0x6014]
	cmp eax, 0x600d
	jnz w_done
	mov dword [0x6000], 0xd00ed00e
	cli
	hlt`)
	ap := x86.MustAssemble(`bits 16
org 0x9000
	xor ax, ax
	mov ds, ax
	mov es, ax
	sti
	mov dword [0x6018], 1
ap_wait:
	hlt
	mov eax, [0x6010]
	cmp eax, 3
	jb ap_wait
	mov dword [0x6014], 0x600d
	cli
	hlt`)
	isr := x86.MustAssemble(`bits 16
org 0x5000
	push ax
	mov ax, [0x6010]
	inc ax
	mov [0x6010], ax
	pop ax
	iret`)
	check := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	check(m.LoadImage(0x8000, bsp))
	check(m.LoadImage(0x9000, ap))
	check(m.LoadImage(0x5000, isr))
	for i, entry := range []uint32{0x8000, 0x9000} {
		st := &m.ECs[i].VCPU.State
		st.Reset()
		st.EIP = entry
	}
	check(m.Start(10, 500_000))

	k.RunAll(500_000_000)

	marker := plat.Mem.Read32(hw.PhysAddr(uint64(base)<<12 + 0x6000))
	if marker != 0xd00ed00e {
		t.Fatalf("BSP did not finish: marker=%#x counter=%d done=%#x ready=%d killed=%v",
			marker,
			plat.Mem.Read32(hw.PhysAddr(uint64(base)<<12+0x6010)),
			plat.Mem.Read32(hw.PhysAddr(uint64(base)<<12+0x6014)),
			plat.Mem.Read32(hw.PhysAddr(uint64(base)<<12+0x6018)), k.Killed)
	}
	if got := plat.Mem.Read32(hw.PhysAddr(uint64(base)<<12 + 0x6010)); got != 3 {
		t.Errorf("IPIs handled = %d, want 3", got)
	}
	// Injections happened on vCPU1, and both vCPUs retired work.
	if m.ECs[1].VCPU.InjectedIRQs < 3 {
		t.Errorf("vCPU1 injections = %d", m.ECs[1].VCPU.InjectedIRQs)
	}
	if m.ECs[0].VCPU.Interp.InstRet == 0 || m.ECs[1].VCPU.Interp.InstRet == 0 {
		t.Error("a vCPU retired nothing")
	}
	// Both physical CPUs advanced their clocks.
	if plat.CPUs[0].Clock.Now() == 0 || plat.CPUs[1].Clock.Now() == 0 {
		t.Error("a physical CPU never ran")
	}
}
