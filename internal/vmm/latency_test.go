package vmm

import (
	"testing"

	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/services"
	"nova/internal/x86"
)

// TestHighPriorityVMTimerLatency targets §9's real-time direction: a
// high-priority VM's periodic timer keeps firing on schedule even while
// a low-priority VM burns the CPU. Priority scheduling plus recall-based
// injection bound the latency.
func TestHighPriorityVMTimerLatency(t *testing.T) {
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 128 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	root := services.NewRootPM(k)

	mk := func(name string) *VMM {
		base, err := root.AllocPages(name, 512)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(k, Config{Name: name, MemPages: 512, BasePage: base, CPU: 0, Mode: hypervisor.ModeEPT})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// The real-time VM: programs its virtual PIT at ~2 kHz and counts
	// ticks while halting in between (an idle control loop).
	rt := mk("rt")
	rtImg := x86.MustAssemble(`bits 16
org 0x8000
	cli
	xor ax, ax
	mov ds, ax
	mov word [0x20*4], isr
	mov word [0x20*4+2], 0
	mov al, 0x11
	out 0x20, al
	mov al, 0x20
	out 0x21, al
	mov al, 0x04
	out 0x21, al
	mov al, 0x01
	out 0x21, al
	mov al, 0
	out 0x21, al
	mov al, 0x34
	out 0x43, al
	mov al, 0x54    ; reload 596 -> ~2 kHz
	out 0x40, al
	mov al, 0x02
	out 0x40, al
	sti
idle:
	hlt
	jmp idle
isr:
	push ax
	mov ax, [0x6000]
	inc ax
	mov [0x6000], ax
	mov al, 0x20
	out 0x20, al
	pop ax
	iret`)
	if err := rt.LoadImage(0x8000, rtImg); err != nil {
		t.Fatal(err)
	}

	// The bulk VM: spins forever at low priority.
	bulk := mk("bulk")
	bulkImg := x86.MustAssemble("bits 16\norg 0x8000\nspin: inc eax\njmp spin")
	if err := bulk.LoadImage(0x8000, bulkImg); err != nil {
		t.Fatal(err)
	}

	for _, m := range []*VMM{rt, bulk} {
		st := &m.EC.VCPU.State
		st.Reset()
		st.EIP = 0x8000
	}
	if err := rt.Start(60, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := bulk.Start(5, 1_000_000); err != nil {
		t.Fatal(err)
	}

	const horizon = 10_000_000 // ~4 ms at 2.67 GHz
	k.Run(k.Now() + horizon)

	ticks := rt.guestRead32(0x6000) & 0xffff
	// Expected ticks: horizon / (596/1193182 s * 2670 MHz) ≈ 30.
	period := 596.0 / 1193182.0 * 2670e6
	expected := uint32(float64(horizon) / period)
	if ticks < expected*8/10 {
		t.Errorf("rt VM got %d ticks, expected ~%d despite the bulk VM", ticks, expected)
	}
	// The bulk VM did run in the gaps (the rt VM halts between ticks).
	if bulk.EC.VCPU.Interp.InstRet == 0 {
		t.Error("bulk VM starved although the rt VM is mostly idle")
	}
}
