package vmm

import (
	"nova/internal/hypervisor"
	"nova/internal/trace"
	"nova/internal/x86"
)

// BIOSTrapPort is the magic port the virtual BIOS stubs hit: moving the
// BIOS into the VMM (§7.4) means each INT service is a single trap
// instead of a long emulated real-mode code path.
const BIOSTrapPort = 0xb1

// VIPIPort delivers virtual inter-processor interrupts in
// multiprocessor guests (§7.5): a 16-bit write of target<<8|vector asks
// the VMM to inject the vector into the target vCPU, recalling it if it
// currently runs — the mechanism behind the paper's TLB-shootdown
// example.
const VIPIPort = 0xf2

// handleIO emulates an intercepted IN/OUT by updating the owning
// virtual device's state machine (§7.2).
func (m *VMM) handleIO(msg *hypervisor.UTCB) error {
	m.Stats.PortIO++
	m.count(m.statNames.pio, 1)
	m.K.ChargeUser(m.K.Plat.Cost.DeviceModelUpdate)
	if m.SabotageIO {
		// Attack-scenario hook: a compromised VMM crashing in its
		// handler (§4.2 "Guest Attacks").
		return errSabotaged
	}
	e := &msg.Exit
	if e.In {
		val := m.portRead(e.Port, e.Size)
		m.K.Tracer.Emit(m.K.CurCPU(), m.K.Now(), trace.KindPIO, uint64(e.Port), 1, uint64(val), uint64(e.Size))
		msg.State.SetReg(x86.EAX, e.Size, val)
	} else {
		m.K.Tracer.Emit(m.K.CurCPU(), m.K.Now(), trace.KindPIO, uint64(e.Port), 0, uint64(e.OutVal), uint64(e.Size))
		switch e.Port {
		case BIOSTrapPort:
			m.biosCall(msg)
		case VIPIPort:
			m.sendIPI(e.OutVal)
		default:
			m.portWrite(e.Port, e.Size, e.OutVal)
		}
	}
	msg.State.EIP += uint32(e.InstLen)
	return nil
}

// sendIPI injects a vector into another vCPU. Pending same-vector IPIs
// coalesce, as on hardware.
func (m *VMM) sendIPI(val uint32) {
	target := int(val >> 8 & 0xff)
	vector := uint8(val)
	if target >= len(m.ECs) {
		return
	}
	m.Stats.Injected++
	m.count(m.statNames.injected, 1)
	m.K.InjectIRQ(m.PD, m.ECs[target], vector) //nolint:errcheck
}

// portRead dispatches an IN to the virtual device models.
func (m *VMM) portRead(port uint16, size int) uint32 {
	switch {
	case port >= 0x20 && port <= 0x21, port >= 0xa0 && port <= 0xa1, port == 0x4d0, port == 0x4d1:
		return m.vPIC.PortRead(port, size)
	case port >= 0x40 && port <= 0x43, port == 0x61:
		return m.vPIT.PortRead(port, size)
	case port >= m.vSerial.Base() && port < m.vSerial.Base()+8:
		return m.vSerial.PortRead(port, size)
	case port >= 0xcf8 && port <= 0xcff:
		return m.vPCI.PortRead(port, size)
	case port == 0x60, port == 0x64:
		return m.vKBD.PortRead(port, size)
	case port == 0x92: // A20 gate: already enabled
		return 0x02
	case port == 0x70, port == 0x71: // CMOS: not modeled
		return 0
	}
	switch size {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	default:
		return 0xffffffff
	}
}

// portWrite dispatches an OUT to the virtual device models.
func (m *VMM) portWrite(port uint16, size int, val uint32) {
	switch {
	case port >= 0x20 && port <= 0x21, port >= 0xa0 && port <= 0xa1, port == 0x4d0, port == 0x4d1:
		m.vPIC.PortWrite(port, size, val)
	case port >= 0x40 && port <= 0x43, port == 0x61:
		m.vPIT.PortWrite(port, size, val)
	case port >= m.vSerial.Base() && port < m.vSerial.Base()+8:
		m.vSerial.PortWrite(port, size, val)
	case port >= 0xcf8 && port <= 0xcff:
		m.vPCI.PortWrite(port, size, val)
	case port == 0x60, port == 0x64:
		m.vKBD.PortWrite(port, size, val)
	case port == 0x80: // POST code: discard
	}
}

// mmioRead dispatches an emulated load from a virtual device window.
func (m *VMM) mmioRead(gpa uint64, size int) (uint32, bool) {
	if m.vAHCI != nil && gpa >= VAHCIBase && gpa < VAHCIBase+0x1000 {
		m.Stats.MMIO++
		m.count(m.statNames.mmio, 1)
		val := m.vAHCI.MMIORead(uint32(gpa-VAHCIBase), size)
		m.K.Tracer.Emit(m.K.CurCPU(), m.K.Now(), trace.KindMMIO, gpa, 1, uint64(val), uint64(size))
		m.K.Tracer.Count("mmio.vahci", 1)
		return val, true
	}
	return 0, false
}

// mmioWrite dispatches an emulated store to a virtual device window.
func (m *VMM) mmioWrite(gpa uint64, size int, val uint32) bool {
	if m.vAHCI != nil && gpa >= VAHCIBase && gpa < VAHCIBase+0x1000 {
		m.Stats.MMIO++
		m.count(m.statNames.mmio, 1)
		m.K.Tracer.Emit(m.K.CurCPU(), m.K.Now(), trace.KindMMIO, gpa, 0, uint64(val), uint64(size))
		m.K.Tracer.Count("mmio.vahci", 1)
		m.vAHCI.MMIOWrite(uint32(gpa-VAHCIBase), size, val)
		return true
	}
	return false
}

// InjectKey delivers a keystroke to the guest: the scancode appears at
// the virtual keyboard controller (raising IRQ 1) and the
// scancode/ASCII pair is queued for the BIOS INT 16h services.
//
// nocharge: models an external input event (a human keypress), which
// costs the machine nothing until the guest services the interrupt.
func (m *VMM) InjectKey(scancode, ascii byte) {
	m.vKBD.Inject(scancode)
	m.biosKeys = append(m.biosKeys, uint16(scancode)<<8|uint16(ascii))
}

// InjectString types a string through the BIOS key queue.
func (m *VMM) InjectString(s string) {
	for _, c := range []byte(s) {
		m.InjectKey(0, c)
	}
}

// TextScreen decodes the guest's VGA text buffer (guest-physical
// 0xB8000, mapped straight into the VM as the paper suggests for frame
// buffers) into 25 lines of 80 characters.
func (m *VMM) TextScreen() []string {
	const base, cols, rows = 0xb8000, 80, 25
	raw := m.GuestRead(base, cols*rows*2)
	if raw == nil {
		return nil
	}
	lines := make([]string, rows)
	for r := 0; r < rows; r++ {
		b := make([]byte, cols)
		for c := 0; c < cols; c++ {
			ch := raw[(r*cols+c)*2]
			if ch < 0x20 || ch > 0x7e {
				ch = ' '
			}
			b[c] = ch
		}
		lines[r] = string(b)
	}
	return lines
}
