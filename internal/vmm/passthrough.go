package vmm

import (
	"fmt"

	"nova/internal/cap"
	"nova/internal/hw"
)

// Direct device assignment (§4, §8.2, §8.3): on platforms with an
// IOMMU, NOVA assigns hardware devices to VMs for secure driver reuse.
// The device's MMIO window is mapped into guest-physical space, its DMA
// is confined to the VM's memory through an IOMMU domain that
// translates guest-physical bus addresses, and its interrupt line is
// routed straight to the vCPU (still costing the virtualization exits
// Figure 6/7 measure).

// AssignDevice maps a host device at the guest-physical address equal
// to its host MMIO base, builds the IOMMU domain from the VM's memory,
// and routes its interrupt to the vCPU.
func (m *VMM) AssignDevice(dev hw.DeviceID, mmioBase hw.PhysAddr, mmioSize uint64, irqLine int, guestVector uint8) error {
	k := m.K
	if k.Plat.IOMMU == nil {
		return fmt.Errorf("vmm: platform has no IOMMU; a DMA-capable device cannot be assigned safely")
	}
	pages := int(mmioSize / hw.PageSize)
	basePage := uint32(mmioBase >> 12)
	// Root -> VMM -> VM, at the identity guest-physical address.
	if err := k.DelegateMem(k.Root, basePage, m.PD, basePage, pages, cap.RightRead|cap.RightWrite); err != nil {
		return err
	}
	if err := k.DelegateMem(m.PD, basePage, m.VM, basePage, pages, cap.RightRead|cap.RightWrite); err != nil {
		return err
	}

	// The IOMMU domain translates the device's guest-physical DMA
	// addresses using the same mapping the VM's host page table has.
	dom := hw.NewIOMMUDomain(m.Cfg.Name + "-" + dev.String())
	for p := uint32(0); p < uint32(m.Cfg.MemPages); p++ {
		frame, rights, ok := m.VM.Mem.Translate(p)
		if !ok {
			continue
		}
		perm := hw.IOMMURead
		if rights&cap.RightWrite != 0 {
			perm |= hw.IOMMUWrite
		}
		if err := dom.Map(uint64(p)<<12, frame<<12, hw.PageSize, perm); err != nil {
			return err
		}
	}
	k.Plat.IOMMU.Attach(dev, dom)
	k.Plat.IOMMU.AllowVector(dev, guestVector)
	return k.AssignGSIToVM(m.PD, irqLine, m.EC, guestVector)
}

// AssignHostAHCI passes the platform's SATA controller through to the
// guest (the "Direct" configuration of Figure 6).
func (m *VMM) AssignHostAHCI(guestVector uint8) error {
	if err := m.AssignDevice(hw.AHCIDeviceID, hw.AHCIMMIOBase, hw.AHCIMMIOSize, hw.IRQAHCI, guestVector); err != nil {
		return err
	}
	m.vPCI.Add(&hw.PCIFunction{
		Dev: hw.AHCIDeviceID, VendorID: 0x8086, DeviceID: 0x2922,
		Class: 0x010601, BAR: [6]uint32{5: uint32(hw.AHCIMMIOBase)}, IRQLine: hw.IRQAHCI,
	})
	return nil
}

// AssignHostNIC passes the platform's network controller through to the
// guest (the "Direct" configuration of Figure 7).
func (m *VMM) AssignHostNIC(guestVector uint8) error {
	if err := m.AssignDevice(hw.NICDeviceID, hw.NICMMIOBase, hw.NICMMIOSize, hw.IRQNIC, guestVector); err != nil {
		return err
	}
	m.vPCI.Add(&hw.PCIFunction{
		Dev: hw.NICDeviceID, VendorID: 0x8086, DeviceID: 0x10de,
		Class: 0x020000, BAR: [6]uint32{0: uint32(hw.NICMMIOBase)}, IRQLine: hw.IRQNIC,
	})
	return nil
}
