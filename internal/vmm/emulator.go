package vmm

import (
	"errors"
	"fmt"

	"nova/internal/hypervisor"
	"nova/internal/trace"
	"nova/internal/x86"
)

var errSabotaged = errors.New("vmm: handler sabotaged")

// emuEnv is the instruction emulator's world (§7.1): guest-virtual
// addresses are translated through the guest's own page tables, RAM
// accesses go to the guest memory the VMM owns, and accesses that fall
// into a virtual device window update the device model instead.
type emuEnv struct {
	m *VMM
}

// vmmGuestPhys adapts the VMM's guest-memory mapping as x86.PhysMem for
// the emulator's page-table walks.
type vmmGuestPhys struct{ m *VMM }

func (g vmmGuestPhys) ReadPhys32(pa uint64) (uint32, bool) {
	if pa+4 > g.m.size {
		return 0, false
	}
	return g.m.guestRead32(pa), true
}

func (g vmmGuestPhys) WritePhys32(pa uint64, v uint32) bool {
	if pa+4 > g.m.size {
		return false
	}
	g.m.guestWrite32(pa, v)
	return true
}

// translate resolves a guest-linear address to guest-physical using the
// guest's paging state from the exit message.
func (e *emuEnv) translate(st *x86.CPUState, va uint32, write bool) (uint64, error) {
	if !st.PagingEnabled() {
		return uint64(va), nil
	}
	w, exc := x86.WalkGuest(vmmGuestPhys{e.m}, st.CR3, st.CR4, va, write, st.CR0&x86.CR0WP != 0, true)
	if exc != nil {
		return 0, exc
	}
	return w.PA, nil
}

func (e *emuEnv) MemRead(st *x86.CPUState, va uint32, size int, kind x86.AccessKind) (uint32, error) {
	gpa, err := e.translate(st, va, false)
	if err != nil {
		return 0, err
	}
	if v, ok := e.m.mmioRead(gpa, size); ok {
		return v, nil
	}
	if gpa+uint64(size) > e.m.size {
		// Unclaimed bus address: reads float high (PCI master abort).
		return 0xffffffff >> (32 - uint(size)*8), nil
	}
	var v uint32
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint32(e.m.GuestRead(gpa+uint64(i), 1)[0])
	}
	return v, nil
}

func (e *emuEnv) MemWrite(st *x86.CPUState, va uint32, size int, val uint32) error {
	gpa, err := e.translate(st, va, true)
	if err != nil {
		return err
	}
	if e.m.mmioWrite(gpa, size, val) {
		return nil
	}
	if gpa+uint64(size) > e.m.size {
		return nil // unclaimed bus address: write dropped
	}
	b := make([]byte, size)
	for i := 0; i < size; i++ {
		b[i] = byte(val >> (8 * uint(i)))
	}
	return e.m.GuestWrite(gpa, b)
}

func (e *emuEnv) In(port uint16, size int) (uint32, error) {
	return e.m.portRead(port, size), nil
}

func (e *emuEnv) Out(port uint16, size int, val uint32) error {
	e.m.portWrite(port, size, val)
	return nil
}

func (e *emuEnv) InvalidateTLB(st *x86.CPUState, all bool, va uint32) {}

// emulate runs the faulting instruction to completion in the VMM (§7.1:
// fetch, decode, execute with fixup, write back, advance). It is the
// handler for EPT-violation (MMIO) exits.
func (m *VMM) emulate(msg *hypervisor.UTCB) error {
	m.Stats.Emulated++
	m.count(m.statNames.emulated, 1)
	m.K.Tracer.Emit(m.K.CurCPU(), m.K.Now(), trace.KindEmulate, uint64(msg.State.EIP), 0, 0, 0)
	m.K.ChargeUser(m.K.Plat.Cost.EmulateInstruction)
	m.K.ProfEmulate(msg.State.Seg[x86.CS].Base+msg.State.EIP, msg.State.Seg[x86.CS].Def32,
		m.K.Plat.Cost.EmulateInstruction)

	// The emulator is a full interpreter instance over the emulation
	// environment; guest state comes from (and returns to) the exit
	// message. Exceptions raised by the emulated instruction are
	// delivered through the guest's IDT exactly as §7.1's fixup path
	// does.
	st := msg.State
	interp := x86.NewInterp(&emuEnv{m: m}, &st, x86.Intercepts{})
	interp.TSC = func() uint64 { return uint64(m.K.Now()) }
	if err := interp.Step(); err != nil {
		return fmt.Errorf("vmm: emulation failed at eip=%#x: %w", msg.State.EIP, err)
	}
	msg.State = st
	return nil
}
