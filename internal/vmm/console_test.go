package vmm

import (
	"strings"
	"testing"

	"nova/internal/hypervisor"
	"nova/internal/x86"
)

// TestKeyboardAndVGAConsole runs an interactive guest: it reads keys
// through INT 16h and echoes them into the VGA text buffer, which the
// VMM decodes (the frame buffer is plain guest memory mapped straight
// into the VM, as §7.2 suggests).
func TestKeyboardAndVGAConsole(t *testing.T) {
	k, m, _ := testStack(t, hypervisor.ModeEPT, false)
	img := x86.MustAssemble(`bits 16
org 0x8000
	xor ax, ax
	mov ds, ax
	mov ax, 0xb800
	mov es, ax
	xor di, di
read_loop:
	mov ah, 0
	int 0x16        ; blocking key read -> AL = ascii
	cmp al, 13      ; Enter ends the line
	jz done
	mov ah, 0x1f    ; attribute
	mov [es:di], ax ; wait: stores AX (attr:char reversed?) store char+attr
	add di, 2
	jmp read_loop
done:
	cli
	hlt`)
	// Note: `mov [es:di], ax` stores AL (char) at di and AH (attr) at
	// di+1 — exactly the VGA cell layout.
	if err := m.SetupBIOS(); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(0x8000, img); err != nil {
		t.Fatal(err)
	}
	m.InjectString("NOVA!\r")
	st := &m.EC.VCPU.State
	st.Reset()
	st.EIP = 0x8000
	if err := m.Start(10, 10_000_000); err != nil {
		t.Fatal(err)
	}
	k.Run(k.Now() + 100_000_000)

	if !m.EC.VCPU.State.Halted {
		t.Fatalf("guest did not finish (killed=%v)", k.Killed)
	}
	screen := m.TextScreen()
	if screen == nil {
		t.Fatal("no text screen")
	}
	if !strings.HasPrefix(screen[0], "NOVA!") {
		t.Errorf("screen line 0 = %q", strings.TrimRight(screen[0], " "))
	}
	if m.Stats.BIOSCalls < 6 {
		t.Errorf("BIOS calls = %d", m.Stats.BIOSCalls)
	}
}

// TestKeyboardControllerPath reads scancodes through the virtual i8042
// with IRQ 1 delivery, the driver-level path.
func TestKeyboardControllerPath(t *testing.T) {
	k, m, _ := testStack(t, hypervisor.ModeEPT, false)
	img := x86.MustAssemble(`bits 16
org 0x8000
	cli
	xor ax, ax
	mov ds, ax
	mov word [1*4 + 0x20*4], isr  ; IVT vector 0x21 (IRQ1 at base 0x20)
	mov word [1*4 + 0x20*4 + 2], 0
	; PIC init, base 0x20, only IRQ1 unmasked
	mov al, 0x11
	out 0x20, al
	mov al, 0x20
	out 0x21, al
	mov al, 0x04
	out 0x21, al
	mov al, 0x01
	out 0x21, al
	mov al, 0xfd
	out 0x21, al
	sti
wait_key:
	hlt
	mov al, [0x6000]
	test al, al
	jz wait_key
	cli
	hlt
isr:
	push ax
	in al, 0x64
	test al, 1
	jz isr_out
	in al, 0x60
	mov [0x6000], al
isr_out:
	mov al, 0x20
	out 0x20, al
	pop ax
	iret`)
	if err := m.LoadImage(0x8000, img); err != nil {
		t.Fatal(err)
	}
	st := &m.EC.VCPU.State
	st.Reset()
	st.EIP = 0x8000
	if err := m.Start(10, 10_000_000); err != nil {
		t.Fatal(err)
	}
	// Let the guest set up, then press a key.
	k.Run(k.Now() + 2_000_000)
	m.InjectKey(0x1e, 'a') // scancode for 'A'
	k.Run(k.Now() + 50_000_000)

	if got := m.guestRead32(0x6000) & 0xff; got != 0x1e {
		t.Errorf("scancode seen by guest = %#x, want 0x1e (killed=%v)", got, k.Killed)
	}
}
