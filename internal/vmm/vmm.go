// Package vmm implements NOVA's user-level virtual-machine monitor
// (§7): a deprivileged application that multiplexes one unmodified
// guest operating system onto the resources it received from the root
// partition manager. Each VM gets a dedicated VMM instance (§4.2), so a
// compromised monitor impairs only its own guest.
//
// The VMM owns the guest's memory, emulates sensitive instructions with
// the decoder-based instruction emulator (§7.1), models virtual devices
// as software state machines (§7.2), talks to host device drivers such
// as the disk server through per-client portals and shared completion
// memory (§7.3, Figure 4), integrates the virtual BIOS (§7.4), and
// injects interrupts using the recall hypercall (§7.5).
package vmm

import (
	"fmt"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/services"
	"nova/internal/span"
	"nova/internal/stat"
	"nova/internal/x86"
)

// Stats counts VMM-level activity.
type Stats struct {
	Emulated     uint64 // instructions run through the emulator
	PortIO       uint64
	MMIO         uint64
	HLTs         uint64
	Injected     uint64
	DiskRequests uint64
	BIOSCalls    uint64
}

// Config describes the virtual machine to build.
type Config struct {
	Name     string
	MemPages int    // guest-physical memory size in pages (>= 256)
	BasePage uint32 // first host page of the guest's memory (from the root PM)
	CPU      int
	Mode     hypervisor.PagingMode

	// VCPUs is the number of virtual CPUs (default 1). Each vCPU gets
	// its own set of VM-exit portals and a dedicated handler pinned to
	// the same physical processor (§7.5); vCPU i runs on physical CPU
	// (CPU+i) mod NumCPUs.
	VCPUs int

	// HostLargePages marks the delegation as large-page backed
	// (Figure 5's small/large host page comparison).
	HostLargePages bool

	// DiskServer connects the virtual AHCI controller; nil gives the
	// guest no disk.
	DiskServer *services.DiskServer
	// BootDisk gives the virtual BIOS synchronous access to boot
	// sectors (INT 13h); runtime I/O goes through the disk server.
	BootDisk *hw.Disk
}

// VMM is one virtual-machine monitor instance.
type VMM struct {
	K   *hypervisor.Kernel
	PD  *hypervisor.PD
	VM  *hypervisor.PD
	EC  *hypervisor.EC   // the boot vCPU (ECs[0])
	ECs []*hypervisor.EC // all vCPUs (§7.5)
	Cfg Config

	base uint64 // host-physical address of guest-physical 0
	size uint64

	vPIC    *hw.I8259
	vPIT    *hw.I8254
	vSerial *hw.Serial8250
	vPCI    *hw.PCIBus
	vAHCI   *VAHCI
	vKBD    *hw.I8042

	// biosKeys queues (scancode, ascii) pairs for INT 16h.
	biosKeys []uint16

	diskPortalSel cap.Selector
	diskClientID  uint64
	doorbell      *hypervisor.Semaphore

	MSRs map[uint32]uint64

	// inHandler marks that we are inside an exit handler, where
	// injection rides on the reply instead of a recall hypercall.
	inHandler  bool
	curMsg     *hypervisor.UTCB
	timerTicks uint64

	// spanInject queues, per virtual PIC line, the request spans whose
	// completion interrupt is pending on that line. armInjection closes
	// every span queued on the acked line — closing all of them (not
	// just the head) is what makes coalesced interrupts close each
	// request exactly once: one injected vector may complete several
	// requests.
	spanInject [16][]span.ID

	console []byte

	Stats Stats

	// statNames holds the precomputed per-VM metric names so the hot
	// emulation paths never format strings; recording through them is
	// nil-safe (no registry attached → no-op).
	statNames statNames

	// Sabotage hooks for the attack-scenario examples: when set, the
	// named handler misbehaves (returns an error, as a crashed VMM
	// would).
	SabotageIO bool
}

// statNames holds the per-VM metric names used by VMM.count, formatted
// once at construction so emulation hot paths never build strings.
type statNames struct {
	emulated string
	pio      string
	mmio     string
	hlts     string
	injected string
	diskReqs string
	bios     string
}

// count bumps one of the VMM's per-VM resource counters at the current
// virtual time. Nil-safe: with no stat registry attached to the kernel
// the call is a no-op, so instrumented paths need no enablement checks.
func (m *VMM) count(name string, n uint64) {
	if m.K.Stat == nil {
		return
	}
	m.K.Stat.Add(name, m.K.Now(), n)
}

// guestExitMTDs selects per-event minimal state transfer (§5.2/§7: the
// CPUID portal carries only GPRs, instruction pointer and length).
func guestExitMTDs() map[x86.ExitReason]hypervisor.MTD {
	return map[x86.ExitReason]hypervisor.MTD{
		x86.ExitCPUID:             hypervisor.MTDGPR | hypervisor.MTDEIP,
		x86.ExitIO:                hypervisor.MTDGPR | hypervisor.MTDEIP | hypervisor.MTDQual | hypervisor.MTDInj | hypervisor.MTDEFLAGS,
		x86.ExitHLT:               hypervisor.MTDEIP | hypervisor.MTDEFLAGS | hypervisor.MTDSTA | hypervisor.MTDInj,
		x86.ExitEPTViolation:      hypervisor.MTDAll,
		x86.ExitMSR:               hypervisor.MTDGPR | hypervisor.MTDEIP,
		x86.ExitInterruptWindow:   hypervisor.MTDInj | hypervisor.MTDEFLAGS | hypervisor.MTDEIP,
		x86.ExitRecall:            hypervisor.MTDInj | hypervisor.MTDEFLAGS | hypervisor.MTDEIP | hypervisor.MTDSTA,
		x86.ExitException:         hypervisor.MTDAll,
		x86.ExitTripleFault:       hypervisor.MTDAll,
		x86.ExitCRAccess:          hypervisor.MTDGPR | hypervisor.MTDEIP | hypervisor.MTDCR | hypervisor.MTDQual,
		x86.ExitINVLPG:            hypervisor.MTDEIP | hypervisor.MTDQual,
		x86.ExitRDTSC:             hypervisor.MTDGPR | hypervisor.MTDEIP,
		x86.ExitExternalInterrupt: 0,
		x86.ExitNone:              0,
	}
}

// New builds the VMM, its VM domain, the vCPU, the virtual devices and
// the VM-exit portals.
func New(k *hypervisor.Kernel, cfg Config) (*VMM, error) {
	if cfg.MemPages < 256 {
		return nil, fmt.Errorf("vmm: guest needs at least 1 MiB (256 pages), got %d", cfg.MemPages)
	}
	pd, err := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "vmm-"+cfg.Name, false)
	if err != nil {
		return nil, err
	}
	vm, err := k.CreatePD(pd, pd.Caps.AllocSel(), cfg.Name, true)
	if err != nil {
		return nil, err
	}
	vm.HostLargePages = cfg.HostLargePages
	m := &VMM{
		K: k, PD: pd, VM: vm, Cfg: cfg,
		base: uint64(cfg.BasePage) << 12,
		size: uint64(cfg.MemPages) * hw.PageSize,
		MSRs: make(map[uint32]uint64),
		statNames: statNames{
			emulated: stat.Name("vmm_emulated_instructions", "vm", cfg.Name),
			pio:      stat.Name("vmm_pio", "vm", cfg.Name),
			mmio:     stat.Name("vmm_mmio", "vm", cfg.Name),
			hlts:     stat.Name("vmm_hlts", "vm", cfg.Name),
			injected: stat.Name("vmm_injections", "vm", cfg.Name),
			diskReqs: stat.Name("vmm_disk_requests", "vm", cfg.Name),
			bios:     stat.Name("vmm_bios_calls", "vm", cfg.Name),
		},
	}

	// Memory: root -> VMM -> VM at guest-physical 0. The VMM keeps the
	// mapping in its own space too: it manages guest-physical memory by
	// mapping a subset of its address space into the VM (§7).
	if err := k.DelegateMem(k.Root, cfg.BasePage, pd, cfg.BasePage, cfg.MemPages, cap.RightsAll); err != nil {
		return nil, err
	}
	if err := k.DelegateMem(pd, cfg.BasePage, vm, 0, cfg.MemPages, cap.RightRead|cap.RightWrite|cap.RightExec); err != nil {
		return nil, err
	}

	// Virtual devices.
	m.vPIC = hw.NewI8259()
	m.vPIC.OutputChanged = m.kick
	m.vSerial = hw.NewSerial8250(0x3f8)
	m.vPIT = hw.NewI8254(k.Plat.Queue, func() hw.Cycles { return k.Plat.CPUs[cfg.CPU].Clock.Now() },
		k.Plat.Cost.FreqMHz, func() {
			m.timerTicks++
			m.vPIC.RaiseIRQ(0)
		})
	m.vPCI = hw.NewPCIBus()
	m.vKBD = hw.NewI8042(func() { m.vPIC.RaiseIRQ(1) })
	if cfg.DiskServer != nil {
		m.vAHCI = NewVAHCI(m)
		m.vPCI.Add(&hw.PCIFunction{
			Dev: hw.BDF(0, 31, 2), VendorID: 0x8086, DeviceID: 0x2922,
			Class: 0x010601, BAR: [6]uint32{5: uint32(hw.AHCIMMIOBase)}, IRQLine: VAHCIIRQ,
		})
		// The disk server creates the channel: doorbell semaphore plus
		// request portal, both delegated to the VMM (Figure 4, step 1).
		pt, bell, id, err := cfg.DiskServer.AddClient(pd, cfg.Name)
		if err != nil {
			return nil, err
		}
		m.doorbell = bell
		m.diskClientID = id
		m.diskPortalSel = pd.Caps.AllocSel()
		if err := services.DelegatePortal(k, cfg.DiskServer.PD, pt, pd, m.diskPortalSel); err != nil {
			return nil, err
		}
		// Completion EC woken by the doorbell (Figure 4, step 7).
		cec, err := k.CreateEC(k.Root, k.Root.Caps.AllocSel(), pd, cfg.CPU, cfg.Name+"-disk-complete", nil)
		if err != nil {
			return nil, err
		}
		cec.Run = m.handleDiskCompletions
		if _, err := k.CreateSC(k.Root, k.Root.Caps.AllocSel(), cec, 30, 1_000_000); err != nil {
			return nil, err
		}
		k.BindECToSemaphore(cec, m.doorbell)
	}

	// The vCPUs and their per-vCPU exit portal sets (§7.5: "for each
	// virtual CPU, there exists a dedicated handler ... which resides
	// on the same physical processor as the virtual CPU"; the handlers
	// here are closures bound to their vCPU index, so most exits by
	// different vCPUs are handled independently).
	nvcpus := cfg.VCPUs
	if nvcpus <= 0 {
		nvcpus = 1
	}
	mtds := guestExitMTDs()
	for i := 0; i < nvcpus; i++ {
		i := i
		pcpu := (cfg.CPU + i) % len(k.Plat.CPUs)
		ec, err := k.CreateVCPU(pd, pd.Caps.AllocSel(), vm, pcpu,
			fmt.Sprintf("%s-vcpu%d", cfg.Name, i), cfg.Mode, i)
		if err != nil {
			return nil, err
		}
		m.ECs = append(m.ECs, ec)
		for r := x86.ExitReason(0); int(r) < x86.NumExitReasons; r++ {
			r := r
			sel := pd.Caps.AllocSel()
			if _, err := k.CreatePortal(pd, sel, fmt.Sprintf("%s-v%d-%s", cfg.Name, i, r),
				uint64(r), mtds[r],
				func(msg *hypervisor.UTCB) error { return m.handleExit(r, i, msg) }); err != nil {
				return nil, err
			}
			if err := k.DelegateCap(pd, sel, vm, hypervisor.PortalSelectorFor(r, i), cap.RightCall); err != nil {
				return nil, err
			}
		}
	}
	m.EC = m.ECs[0]
	return m, nil
}

// Start gives every vCPU a scheduling context, making the VM runnable.
func (m *VMM) Start(priority int, quantum hw.Cycles) error {
	for _, ec := range m.ECs {
		if _, err := m.K.CreateSC(m.PD, m.PD.Caps.AllocSel(), ec, priority, quantum); err != nil {
			return err
		}
	}
	return nil
}

// Console returns everything the guest printed through the BIOS
// teletype service and the virtual serial port.
func (m *VMM) Console() string { return string(m.console) + m.vSerial.Output() }

// GuestRead copies guest-physical memory (the VMM's own mapping of it).
func (m *VMM) GuestRead(gpa uint64, n int) []byte {
	if gpa+uint64(n) > m.size {
		return nil
	}
	return m.K.Plat.Mem.ReadBytes(hw.PhysAddr(m.base+gpa), n)
}

// GuestWrite fills guest-physical memory.
//
// nocharge: cost is carried by the caller — setup-time image/BIOS
// loading outside measured windows, or the instruction emulator, which
// charges EmulateInstruction per emulated instruction.
func (m *VMM) GuestWrite(gpa uint64, b []byte) error {
	if gpa+uint64(len(b)) > m.size {
		return fmt.Errorf("vmm: guest write [%#x,%#x) beyond guest memory", gpa, gpa+uint64(len(b)))
	}
	m.K.Plat.Mem.WriteBytes(hw.PhysAddr(m.base+gpa), b)
	return nil
}

func (m *VMM) guestRead32(gpa uint64) uint32 {
	if gpa+4 > m.size {
		return 0
	}
	return m.K.Plat.Mem.Read32(hw.PhysAddr(m.base + gpa))
}

func (m *VMM) guestWrite32(gpa uint64, v uint32) {
	if gpa+4 <= m.size {
		m.K.Plat.Mem.Write32(hw.PhysAddr(m.base+gpa), v)
	}
}

// kick reacts to virtual interrupt-controller output changes: inside an
// exit handler the injection rides on the reply; otherwise the VMM
// recalls the vCPU so it can inject in a timely manner (§7.5).
func (m *VMM) kick() {
	if !m.vPIC.HasPending() {
		return
	}
	if m.inHandler {
		m.armInjection(m.curMsg)
		return
	}
	if m.EC != nil && !m.EC.VCPU.PendingValid {
		m.K.Recall(m.PD, m.EC) //nolint:errcheck
	}
}

// armInjection acknowledges the virtual PIC and requests injection in
// the exit reply. The kernel delivers when the guest becomes
// interruptible, producing an interrupt-window exit if needed.
func (m *VMM) armInjection(msg *hypervisor.UTCB) {
	if msg == nil || msg.InjectValid {
		return
	}
	if vec, ok := m.vPIC.Acknowledge(); ok {
		msg.InjectValid = true
		msg.InjectVector = vec
		msg.WindowRequest = true
		m.Stats.Injected++
		m.count(m.statNames.injected, 1)
		m.closeInjectedSpans(vec)
	}
}

// closeInjectedSpans closes every request span waiting on the IRQ line
// behind the just-acknowledged vector: arming the injection is the end
// of the request's causal chain (the guest observes the completion when
// it runs next). Whether the arm came from the in-handler path or a
// recall exit, Acknowledge fires exactly once per injection, so each
// span closes exactly once.
func (m *VMM) closeInjectedSpans(vec uint8) {
	line, ok := m.vPIC.LineFor(vec)
	if !ok || line < 0 || line >= len(m.spanInject) || len(m.spanInject[line]) == 0 {
		return
	}
	cpu, now := m.K.CurCPU(), m.K.Now()
	for _, sp := range m.spanInject[line] {
		m.K.Spans.Annotate(cpu, now, sp, span.AnnotVector, uint64(vec))
		m.K.Spans.Close(cpu, now, sp, span.StatusOK)
	}
	m.spanInject[line] = m.spanInject[line][:0]
}

// handleExit is the per-vCPU portal handler: it dispatches on the event
// type and arms pending injections before replying. Device interrupts
// are delivered to the boot vCPU (the classic PIC has a single output);
// other vCPUs receive interrupts through virtual IPIs.
func (m *VMM) handleExit(r x86.ExitReason, vcpu int, msg *hypervisor.UTCB) error {
	m.inHandler = true
	m.curMsg = msg
	defer func() { m.inHandler = false; m.curMsg = nil }()

	var err error
	switch r {
	case x86.ExitCPUID:
		a, b, c, d := x86.CPUIDValues(msg.State.GPR[x86.EAX], msg.State.GPR[x86.ECX])
		msg.State.GPR[x86.EAX], msg.State.GPR[x86.EBX] = a, b
		msg.State.GPR[x86.ECX], msg.State.GPR[x86.EDX] = c, d
		msg.State.EIP += uint32(msg.Exit.InstLen)
	case x86.ExitIO:
		err = m.handleIO(msg)
	case x86.ExitHLT:
		m.Stats.HLTs++
		m.count(m.statNames.hlts, 1)
		if m.vPIC.HasPending() && msg.State.IF() {
			m.armInjection(msg)
			msg.State.EIP += uint32(msg.Exit.InstLen)
		} else {
			msg.State.Halted = true
			msg.State.EIP += uint32(msg.Exit.InstLen)
		}
	case x86.ExitEPTViolation:
		err = m.emulate(msg)
	case x86.ExitMSR:
		if msg.Exit.MSRWrite {
			m.MSRs[msg.Exit.MSR] = msg.Exit.MSRVal
		} else {
			v := m.MSRs[msg.Exit.MSR]
			msg.State.GPR[x86.EAX] = uint32(v)
			msg.State.GPR[x86.EDX] = uint32(v >> 32)
		}
		msg.State.EIP += uint32(msg.Exit.InstLen)
	case x86.ExitInterruptWindow, x86.ExitRecall:
		m.armInjection(msg)
	case x86.ExitTripleFault:
		return fmt.Errorf("vmm: guest %s triple fault at eip=%#x", m.Cfg.Name, msg.State.EIP)
	default:
		return fmt.Errorf("vmm: unhandled exit %v", r)
	}
	if err != nil {
		return err
	}
	// Epilogue: if the virtual PIC has something deliverable and no
	// injection is outstanding, arm it now (boot vCPU only: the PIC's
	// INTR line is wired to it).
	if vcpu == 0 && m.vPIC.HasPending() {
		m.armInjection(msg)
	}
	return nil
}
