package vmm

import (
	"encoding/binary"

	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/services"
	"nova/internal/span"
	"nova/internal/trace"
)

// VAHCIBase is the guest-physical base of the virtual AHCI controller's
// register window (matching the host convention, so the same guest
// driver binary works natively, with passthrough, and fully
// virtualized — exactly the comparison of Figure 6).
const VAHCIBase = uint64(hw.AHCIMMIOBase)

// VAHCIIRQ is the virtual interrupt line of the controller.
const VAHCIIRQ = 11

// maxPRDEntries mirrors the disk server's scatter-list bound: the
// virtual controller refuses guest command headers advertising more
// PRD entries than a forwarded request may carry.
const maxPRDEntries = services.MaxDMASegs

// VAHCI is the virtual AHCI controller: a software state machine
// mimicking the host bus adapter (§7.2). Commands the guest rings are
// decoded from guest memory and forwarded to the disk server over the
// per-client portal; the host driver then DMAs directly into guest
// buffers, eliminating data copies (§8.2).
type VAHCI struct {
	m *VMM

	ghc, is                       uint32
	clb                           uint64
	pis, pie, pcmd, tfd, serr, ci uint32
	inflight                      uint32

	// spans correlates an in-flight forwarded command slot with its
	// request span: assigned at doorbell decode, consumed when the
	// completion record comes back (the cookie round-trips the slot).
	// Zero entries mean "no span" and record nothing.
	spans [32]span.ID

	Commands uint64
	IRQs     uint64
}

// NewVAHCI creates the device model.
func NewVAHCI(m *VMM) *VAHCI {
	return &VAHCI{m: m, tfd: 0x50}
}

// MMIORead implements the register file (registers without read side
// effects could be mapped read-only into the guest; we intercept them
// all for the fully-virtualized configuration).
func (a *VAHCI) MMIORead(off uint32, size int) uint32 {
	switch off {
	case 0x00: // CAP
		return 0x40141f00
	case 0x04: // GHC
		return a.ghc | 1<<31
	case 0x08: // IS
		return a.is
	case 0x0c: // PI
		return 1
	case 0x10: // VS
		return 0x00010300
	}
	if off >= 0x100 && off < 0x180 {
		switch off - 0x100 {
		case 0x00:
			return uint32(a.clb)
		case 0x04:
			return uint32(a.clb >> 32)
		case 0x10:
			return a.pis
		case 0x14:
			return a.pie
		case 0x18:
			cmd := a.pcmd
			if a.pcmd&1 != 0 {
				cmd |= 1 << 15
			}
			return cmd
		case 0x20:
			return a.tfd
		case 0x24:
			return 0x101
		case 0x28:
			return 0x113
		case 0x30:
			return a.serr
		case 0x38:
			return a.ci
		}
	}
	return 0
}

// MMIOWrite updates the state machine; writes to PxCI issue commands.
func (a *VAHCI) MMIOWrite(off uint32, size int, val uint32) {
	switch off {
	case 0x04:
		a.ghc = val &^ 1
		return
	case 0x08:
		a.is &^= val
		return
	}
	if off >= 0x100 && off < 0x180 {
		switch off - 0x100 {
		case 0x00:
			a.clb = a.clb&^0xffffffff | uint64(val)
		case 0x04:
			a.clb = a.clb&0xffffffff | uint64(val)<<32
		case 0x10:
			a.pis &^= val
		case 0x14:
			a.pie = val
		case 0x18:
			a.pcmd = val & (1 | 1<<4)
		case 0x30:
			a.serr &^= val
		case 0x38:
			newSlots := val &^ a.ci &^ a.inflight
			a.ci |= val
			if a.pcmd&1 != 0 {
				for slot := 0; slot < 32; slot++ {
					if newSlots&(1<<uint(slot)) != 0 {
						a.issue(slot)
					}
				}
			}
		}
	}
}

// issue decodes the guest's command (header, CFIS, PRDT all live in
// guest memory) and forwards it to the disk server (Figure 4, step 2).
func (a *VAHCI) issue(slot int) {
	a.Commands++
	m := a.m
	hdrGPA := a.clb + uint64(slot)*32
	hdr := m.guestRead32(hdrGPA)
	prdtl := int(hdr >> 16)
	if prdtl > maxPRDEntries {
		// The PRD count is guest-written; refuse oversized tables
		// instead of walking wherever the guest points.
		a.fail(slot)
		return
	}
	ctba := uint64(m.guestRead32(hdrGPA+8)) | uint64(m.guestRead32(hdrGPA+12))<<32

	cfis := m.GuestRead(ctba, 20)
	if cfis == nil || cfis[0] != 0x27 {
		a.fail(slot)
		return
	}
	cmd := cfis[2]
	lba := uint64(cfis[4]) | uint64(cfis[5])<<8 | uint64(cfis[6])<<16 |
		uint64(cfis[8])<<24 | uint64(cfis[9])<<32 | uint64(cfis[10])<<40
	count := int(binary.LittleEndian.Uint16(cfis[12:]))
	if count == 0 {
		count = 65536
	}

	// Gather the PRDT and translate guest-physical buffer addresses to
	// host-physical for the driver. Only these buffer ranges are
	// exposed to the device (§4.2).
	var bufs []services.DMASeg
	for i := 0; i < prdtl; i++ {
		base := ctba + 0x80 + uint64(i)*16
		dba := uint64(m.guestRead32(base)) | uint64(m.guestRead32(base+4))<<32
		dbc := int(m.guestRead32(base+12)&0x3fffff) + 1
		if dba+uint64(dbc) > m.size {
			a.fail(slot)
			return
		}
		bufs = append(bufs, services.DMASeg{HPA: m.base + dba, Len: dbc})
	}

	switch cmd {
	case 0xec: // IDENTIFY: served by the device model itself
		id := a.identify()
		off := 0
		for _, b := range bufs {
			n := b.Len
			if n > len(id)-off {
				n = len(id) - off
			}
			if n <= 0 {
				break
			}
			m.K.Plat.Mem.WriteBytes(hw.PhysAddr(b.HPA), id[off:off+n])
			off += n
		}
		a.completeLocal(slot)
		return
	case 0xe7: // FLUSH
		a.completeLocal(slot)
		return
	case 0x25, 0x35: // READ/WRITE DMA EXT
		op := services.DiskOpRead
		if cmd == 0x35 {
			op = services.DiskOpWrite
		}
		a.inflight |= 1 << uint(slot)
		a.tfd |= 0x80
		m.Stats.DiskRequests++
		m.count(m.statNames.diskReqs, 1)
		m.K.Tracer.Emit(m.K.CurCPU(), m.K.Now(), trace.KindDiskRequest, uint64(op), lba, uint64(count), uint64(slot))
		// The doorbell decode is the request origin: the span opens in
		// the emulation segment, rides the portal call to the disk
		// server, and closes when the completion interrupt is armed for
		// injection (Figure 4 end to end).
		cpu := m.K.CurCPU()
		sp := m.K.Spans.Open(cpu, m.K.Now(), span.ClassDisk, span.SegEmul, uint64(slot))
		m.K.Spans.Annotate(cpu, m.K.Now(), sp, span.AnnotLBA, lba)
		m.K.Spans.Annotate(cpu, m.K.Now(), sp, span.AnnotSectors, uint64(count))
		a.spans[slot] = sp
		req := services.DiskRequest{Op: op, LBA: lba, Count: count, Bufs: bufs, Cookie: uint64(slot)}
		msg := &hypervisor.UTCB{Words: services.EncodeRequest(&req)}
		m.K.Spans.Begin(cpu, sp, span.SegEmul)
		err := m.K.Call(m.PD, m.diskPortalSel, msg)
		m.K.Spans.End(cpu)
		if err != nil || len(msg.Words) == 0 || msg.Words[0] == 0 {
			a.inflight &^= 1 << uint(slot)
			a.fail(slot)
			return
		}
		// Accepted: the request is in flight at the host device until
		// its completion record arrives.
		m.K.Spans.Transition(cpu, m.K.Now(), sp, span.SegQueue)
		return
	}
	a.fail(slot)
}

// completeLocal finishes a command served without the disk server.
func (a *VAHCI) completeLocal(slot int) {
	a.ci &^= 1 << uint(slot)
	a.pis |= 1
	a.interrupt()
}

// Complete finishes a forwarded command when its completion record
// arrives (Figure 4, steps 7-8).
//
// nocharge: the completion EC (handleDiskCompletions) charges one
// DeviceModelUpdate per doorbell batch before draining records.
func (a *VAHCI) Complete(slot int, ok bool) {
	if slot < 0 || slot >= 32 {
		// The cookie round-trips through the disk server; treat an
		// out-of-range slot as a protocol violation, not an index.
		return
	}
	m := a.m
	sp := a.spans[slot]
	a.spans[slot] = 0
	if sp != 0 {
		m.K.Spans.Transition(m.K.CurCPU(), m.K.Now(), sp, span.SegEmul)
	}
	bit := uint32(1) << uint(slot)
	a.ci &^= bit
	a.inflight &^= bit
	if a.inflight == 0 {
		a.tfd &^= 0x80
	}
	if ok {
		a.pis |= 1
	} else {
		a.tfd |= 1
		a.pis |= 1 << 30
	}
	raised := a.interrupt()
	if sp == 0 {
		return
	}
	cpu := m.K.CurCPU()
	switch {
	case raised:
		// The completion interrupt is pending at the virtual PIC; the
		// span closes when the VMM arms its injection into the guest
		// (armInjection drains spanInject for the acked line).
		m.K.Spans.Transition(cpu, m.K.Now(), sp, span.SegGuest)
		m.spanInject[VAHCIIRQ] = append(m.spanInject[VAHCIIRQ], sp)
	case !ok:
		m.K.Spans.Close(cpu, m.K.Now(), sp, span.StatusError)
	default:
		// Completed, but the guest has the interrupt masked at the
		// device or PIC level: the span ends at device-model completion.
		m.K.Spans.Close(cpu, m.K.Now(), sp, span.StatusNoIRQ)
	}
}

func (a *VAHCI) fail(slot int) {
	if sp := a.spans[slot]; sp != 0 {
		a.spans[slot] = 0
		a.m.K.Spans.Close(a.m.K.CurCPU(), a.m.K.Now(), sp, span.StatusError)
	}
	a.ci &^= 1 << uint(slot)
	a.tfd |= 1
	a.pis |= 1 << 30
	a.interrupt()
}

// interrupt reports whether it asserted the virtual PIC line (the
// guest-visible behavior is unchanged; the result only steers span
// closing between the injection path and the masked-interrupt path).
func (a *VAHCI) interrupt() bool {
	if a.pis&a.pie != 0 {
		a.is |= 1
		if a.ghc&(1<<1) != 0 {
			a.IRQs++
			a.m.vPIC.RaiseIRQ(VAHCIIRQ)
			return true
		}
	}
	return false
}

// identify synthesizes IDENTIFY DEVICE data for the virtual drive.
func (a *VAHCI) identify() []byte {
	id := make([]byte, 512)
	binary.LittleEndian.PutUint16(id[0:], 0x0040)
	var sectors uint64 = 250e9 / 512
	if a.m.Cfg.BootDisk != nil {
		sectors = a.m.Cfg.BootDisk.Sectors
	}
	s28 := sectors
	if s28 > 0x0fffffff {
		s28 = 0x0fffffff
	}
	binary.LittleEndian.PutUint32(id[60*2:], uint32(s28))
	binary.LittleEndian.PutUint64(id[100*2:], sectors)
	return id
}

// handleDiskCompletions is the VMM's completion EC (Figure 4, step 7):
// woken by the disk server's doorbell, it reads the shared completion
// records, updates the device model and signals the virtual interrupt.
func (m *VMM) handleDiskCompletions() {
	m.K.ChargeUser(m.K.Plat.Cost.DeviceModelUpdate)
	for _, rec := range m.Cfg.DiskServer.Completions(m.diskClientID) {
		ok := uint64(0)
		if rec.OK {
			ok = 1
		}
		m.K.Tracer.Emit(m.K.CurCPU(), m.K.Now(), trace.KindDiskComplete, rec.Cookie, ok, 0, 0)
		m.vAHCI.Complete(int(rec.Cookie), rec.OK)
	}
}
