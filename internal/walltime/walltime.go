// Package walltime is the one sanctioned home for host wall-clock
// reads. The simulation proper (internal/hw, internal/hypervisor,
// internal/vmm, internal/x86, internal/cap) must derive all time from
// hw.Clock's virtual cycles — nova-vet's determinism analyzer rejects
// time.Now there — but CLI tools legitimately want to report how long a
// benchmark run took in host seconds. Importing this package instead of
// time documents that the measurement is about the host, not the
// simulated machine, and keeps simulation code grep-clean.
package walltime

import "time"

// Stopwatch measures elapsed host time for progress reporting.
type Stopwatch struct{ start time.Time }

// Start begins a wall-clock measurement.
func Start() Stopwatch { return Stopwatch{start: time.Now()} }

// Seconds returns the host seconds elapsed since Start.
func (s Stopwatch) Seconds() float64 { return time.Since(s.start).Seconds() }
