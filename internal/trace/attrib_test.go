package trace

import "testing"

// synthMeta is a cost model for the attribution tests: easy round
// numbers, unrelated to any real CPU.
var synthMeta = Meta{
	SyscallEntryExit: 100,
	VMTransit:        1000,
	VMRead:           40,
	PageWalkLevel:    30,
	ExitReasons:      []string{"none", "io", "ept-violation"},
}

func TestExitBreakdown(t *testing.T) {
	d := &TraceData{
		Meta: synthMeta,
		PerCPU: [][]Event{{
			// One io exit: 3000 cycles total, 800 of them in the VMM.
			{Time: 0, Kind: KindVMExit, A0: 1, A1: 0x8000, A2: 2},
			{Time: 2800, Kind: KindIPCReply, A0: 4, A1: 800, A2: 1},
			{Time: 3000, Kind: KindVMResume, A0: 1, A1: 3000, A2: 2},
			// One ept-violation: 5000 total, two IPC legs of 700 each.
			{Time: 4000, Kind: KindVMExit, A0: 2, A1: 0x9000, A2: 2},
			{Time: 5000, Kind: KindIPCReply, A0: 4, A1: 700, A2: 1},
			{Time: 6000, Kind: KindIPCReply, A0: 5, A1: 700, A2: 1},
			{Time: 9000, Kind: KindVMResume, A0: 2, A1: 5000, A2: 2},
			// An exit with no resume (ring wrapped): dropped.
			{Time: 10000, Kind: KindVMExit, A0: 1, A1: 0xa000, A2: 2},
		}},
	}
	rows := ExitBreakdown(d)
	if len(rows) != 2 {
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	io := rows[0]
	if io.Reason != "io" || io.Count != 1 || io.Total != 3000 ||
		io.Hardware != 1000 || io.VMM != 800 || io.Kernel != 1200 {
		t.Errorf("io row: %+v", io)
	}
	ept := rows[1]
	if ept.Reason != "ept-violation" || ept.Count != 1 || ept.Total != 5000 ||
		ept.Hardware != 1000 || ept.VMM != 1400 || ept.Kernel != 2600 {
		t.Errorf("ept row: %+v", ept)
	}
}

func TestExitBreakdownClampsKernel(t *testing.T) {
	// VMM + hardware exceeding the total must clamp Kernel to 0, not
	// underflow.
	d := &TraceData{
		Meta: synthMeta,
		PerCPU: [][]Event{{
			{Time: 0, Kind: KindVMExit, A0: 1, A2: 2},
			{Time: 100, Kind: KindIPCReply, A0: 4, A1: 900, A2: 1},
			{Time: 200, Kind: KindVMResume, A0: 1, A1: 1200, A2: 2},
		}},
	}
	rows := ExitBreakdown(d)
	if len(rows) != 1 || rows[0].Kernel != 0 {
		t.Fatalf("rows: %+v", rows)
	}
}

func TestComputeIPCBreakdown(t *testing.T) {
	// Figure 8 reconstruction: same-AS one-way of 300 cycles means a
	// recorded call latency of 2*300 - 100 (entry charged before the
	// recorded window opens) = 500; cross-AS one-way 450 -> latency 800.
	d := &TraceData{
		Meta: synthMeta,
		PerCPU: [][]Event{{
			{Kind: KindIPCReply, A0: 1, A1: 500, A2: 0},
			{Kind: KindIPCReply, A0: 1, A1: 500, A2: 0},
			{Kind: KindIPCReply, A0: 2, A1: 800, A2: 1},
		}},
	}
	b := ComputeIPCBreakdown(d)
	if b.SameCount != 2 || b.CrossCount != 1 {
		t.Fatalf("counts: %+v", b)
	}
	if b.SameOneWay != 300 || b.CrossOneWay != 450 {
		t.Errorf("one-way: same=%d cross=%d", b.SameOneWay, b.CrossOneWay)
	}
	if b.EntryExit != 100 || b.IPCPath != 200 || b.TLBEffects != 150 {
		t.Errorf("boxes: %+v", b)
	}
	// EntryExit + IPCPath + TLBEffects must reassemble the cross-AS
	// total — the defining identity of the Figure 8 stack.
	if b.EntryExit+b.IPCPath+b.TLBEffects != b.CrossOneWay {
		t.Errorf("boxes do not stack to the cross-AS total: %+v", b)
	}
}

func TestComputeVTLBBreakdown(t *testing.T) {
	// Figure 9 reconstruction: fills averaging 1500 cycles; warm walk
	// 2*30; per-miss 1440 = transit 1000 + vmreads 240 + fill 200.
	var h Histogram
	h.Observe(1400)
	h.Observe(1600)
	d := &TraceData{Meta: synthMeta, Metrics: Metrics{VTLBFill: h.Data()}}
	b := ComputeVTLBBreakdown(d)
	if b.Fills != 2 || b.AvgFill != 1500 || b.PerMiss != 1440 {
		t.Fatalf("breakdown: %+v", b)
	}
	if b.ExitResume != 1000 || b.VMReads != 240 || b.Fill != 200 {
		t.Errorf("boxes: %+v", b)
	}
	if b.ExitResume+b.VMReads+b.Fill != b.PerMiss {
		t.Errorf("boxes do not stack to the per-miss total: %+v", b)
	}
}

func TestComputeVTLBBreakdownEmpty(t *testing.T) {
	d := &TraceData{Meta: synthMeta}
	b := ComputeVTLBBreakdown(d)
	if b.Fills != 0 || b.PerMiss != 0 || b.Fill != 0 {
		t.Errorf("empty trace produced fills: %+v", b)
	}
}
