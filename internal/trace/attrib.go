package trace

// Attribution distills a trace into the paper's §8 cost-accounting
// views: a per-exit-reason cost table (where do the cycles of a
// virtualized run go?) and the Figure 8 / Figure 9 box breakdowns that
// the evaluation decomposes by hand. Everything here is computed from
// the event stream and the cost constants recorded in Meta — no access
// to the live system, so the same numbers come out of a saved trace
// file.

// ExitRow attributes the cycles of one VM-exit reason. Total is the
// exit-to-resume time summed over all exits of the reason; Hardware is
// the world-switch component (count × VMTransit); VMM is the portion
// spent inside portal IPC to the user-level monitor (which includes the
// handler's emulation and device-model work); Kernel is the remainder —
// dispatch, VMCS accesses, vTLB maintenance.
type ExitRow struct {
	Reason   string
	Count    uint64
	Total    uint64
	Hardware uint64
	VMM      uint64
	Kernel   uint64
}

// ExitBreakdown scans the event stream and attributes each VM exit's
// duration. The scan is per CPU: between a KindVMExit and its matching
// KindVMResume, any KindIPCReply latency is VMM time. Exits with no
// resume record (a killed VM, or a wrapped ring) are dropped.
func ExitBreakdown(d *TraceData) []ExitRow {
	n := len(d.Meta.ExitReasons)
	type acc struct {
		count, total, vmm uint64
	}
	accs := make([]acc, n)
	for _, events := range d.PerCPU {
		cur := -1
		var vmm uint64
		for _, e := range events {
			switch e.Kind {
			case KindVMExit:
				cur = int(e.A0)
				vmm = 0
			case KindIPCReply:
				if cur >= 0 {
					vmm += e.A1
				}
			case KindVMResume:
				r := int(e.A0)
				if r >= 0 && r < n {
					accs[r].count++
					accs[r].total += e.A1
					accs[r].vmm += vmm
				}
				cur = -1
				vmm = 0
			default:
			}
		}
	}
	var rows []ExitRow
	for r, a := range accs {
		if a.count == 0 {
			continue
		}
		hardware := a.count * d.Meta.VMTransit
		kernel := uint64(0)
		if a.total > a.vmm+hardware {
			kernel = a.total - a.vmm - hardware
		}
		rows = append(rows, ExitRow{
			Reason:   d.Meta.ExitReasons[r],
			Count:    a.count,
			Total:    a.total,
			Hardware: hardware,
			VMM:      a.vmm,
			Kernel:   kernel,
		})
	}
	return rows
}

// IPCBreakdown is the Figure 8 decomposition of a one-way IPC: the
// syscall entry+exit box, the kernel IPC path, and the TLB effects of
// crossing address spaces.
type IPCBreakdown struct {
	SameCount   uint64
	CrossCount  uint64
	SameOneWay  uint64 // cycles, one-way message transfer, same AS
	CrossOneWay uint64 // cycles, one-way, cross AS
	EntryExit   uint64 // lowermost box: syscall transition
	IPCPath     uint64 // SameOneWay - EntryExit
	TLBEffects  uint64 // CrossOneWay - SameOneWay
}

// ComputeIPCBreakdown averages the KindIPCReply latencies by
// address-space crossing and reconstructs Figure 8's boxes. A call is
// two one-way transfers, and the recorded call-to-reply latency starts
// after the caller's kernel entry, so one-way = (latency + entry
// cost) / 2 — the same arithmetic the bench harness applies to its
// clock deltas.
func ComputeIPCBreakdown(d *TraceData) IPCBreakdown {
	var sameSum, sameN, crossSum, crossN uint64
	for _, events := range d.PerCPU {
		for _, e := range events {
			if e.Kind != KindIPCReply {
				continue
			}
			if e.A2 != 0 {
				crossSum += e.A1
				crossN++
			} else {
				sameSum += e.A1
				sameN++
			}
		}
	}
	b := IPCBreakdown{SameCount: sameN, CrossCount: crossN, EntryExit: d.Meta.SyscallEntryExit}
	if sameN > 0 {
		b.SameOneWay = (sameSum/sameN + d.Meta.SyscallEntryExit) / 2
	}
	if crossN > 0 {
		b.CrossOneWay = (crossSum/crossN + d.Meta.SyscallEntryExit) / 2
	}
	if b.SameOneWay > b.EntryExit {
		b.IPCPath = b.SameOneWay - b.EntryExit
	}
	if b.CrossOneWay > b.SameOneWay {
		b.TLBEffects = b.CrossOneWay - b.SameOneWay
	}
	return b
}

// VTLBBreakdown is the Figure 9 decomposition of a vTLB miss: the
// hardware exit+resume transition, the six VMREADs establishing the
// cause, and the software fill (guest walk + shadow update).
type VTLBBreakdown struct {
	Fills      uint64
	AvgFill    uint64 // average measured fill duration (cycles)
	PerMiss    uint64 // AvgFill minus the warm-path walk the fill replaces
	ExitResume uint64
	VMReads    uint64
	Fill       uint64
}

// ComputeVTLBBreakdown reconstructs Figure 9's boxes from the vTLB fill
// histogram. The guest-visible per-miss cost is the fill duration minus
// the shadow-table walk a warm access would have paid anyway (two page
// walk levels), matching the cold-minus-warm methodology of the bench
// kernel.
func ComputeVTLBBreakdown(d *TraceData) VTLBBreakdown {
	h := d.Metrics.VTLBFill
	b := VTLBBreakdown{
		Fills:      h.Count,
		ExitResume: d.Meta.VMTransit,
		VMReads:    6 * d.Meta.VMRead,
	}
	if h.Count == 0 {
		return b
	}
	b.AvgFill = h.Sum / h.Count
	warm := 2 * d.Meta.PageWalkLevel
	if b.AvgFill > warm {
		b.PerMiss = b.AvgFill - warm
	}
	if b.PerMiss > b.ExitResume+b.VMReads {
		b.Fill = b.PerMiss - b.ExitResume - b.VMReads
	}
	return b
}
