package trace

import (
	"reflect"
	"testing"

	"nova/internal/hw"
	"nova/internal/x86"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(0, 4)
	if r.Cap() != 4 || r.Len() != 0 || r.Overwritten() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d over=%d", r.Cap(), r.Len(), r.Overwritten())
	}
	for i := 0; i < 10; i++ {
		r.push(hw.Cycles(100+i), KindPIO, uint64(i), 0, 0, 0)
	}
	if r.Len() != 4 {
		t.Errorf("len after wrap = %d, want 4", r.Len())
	}
	if r.Overwritten() != 6 {
		t.Errorf("overwritten = %d, want 6", r.Overwritten())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("Events() returned %d events", len(ev))
	}
	for i, e := range ev {
		// Oldest-first, and the first surviving Seq equals Overwritten.
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq || e.A0 != wantSeq || e.Time != hw.Cycles(100+6+i) {
			t.Errorf("event %d = seq %d a0 %d time %d, want seq %d", i, e.Seq, e.A0, e.Time, wantSeq)
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0, 0)
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want 1", r.Cap())
	}
	r.push(1, KindPIO, 7, 0, 0, 0)
	r.push(2, KindPIO, 8, 0, 0, 0)
	ev := r.Events()
	if len(ev) != 1 || ev[0].A0 != 8 || r.Overwritten() != 1 {
		t.Errorf("events=%v overwritten=%d", ev, r.Overwritten())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11}, {1025, 11},
		{1<<63 - 1, 63}, {1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		// The value must fall inside its own bucket's bounds.
		lo, hi := BucketBounds(BucketIndex(c.v))
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside bucket bounds [%d, %d]", c.v, lo, hi)
		}
	}
	// Buckets tile the full u64 range with no gaps or overlaps.
	if lo, hi := BucketBounds(0); lo != 0 || hi != 0 {
		t.Errorf("bucket 0 = [%d, %d], want [0, 0]", lo, hi)
	}
	prevHi := uint64(0)
	for i := 1; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi+1 {
			t.Errorf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
		if i < NumBuckets-1 && hi < lo {
			t.Errorf("bucket %d: hi %d < lo %d", i, hi, lo)
		}
		prevHi = hi
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{5, 0, 1000, 5} {
		h.Observe(v)
	}
	if h.Count != 4 || h.Sum != 1010 || h.Min != 0 || h.Max != 1000 {
		t.Errorf("count=%d sum=%d min=%d max=%d", h.Count, h.Sum, h.Min, h.Max)
	}
	if h.Buckets[0] != 1 || h.Buckets[3] != 2 || h.Buckets[10] != 1 {
		t.Errorf("buckets: %v", h.Buckets[:12])
	}
	if h.Mean() != 252.5 {
		t.Errorf("mean = %v", h.Mean())
	}
	d := h.Data()
	if len(d.Buckets) != 3 {
		t.Fatalf("Data() kept %d buckets, want 3 non-empty", len(d.Buckets))
	}
	if d.Buckets[1].Lo != 4 || d.Buckets[1].Hi != 7 || d.Buckets[1].Count != 2 {
		t.Errorf("bucket for 5s: %+v", d.Buckets[1])
	}
}

func TestCounterSetSortedOrder(t *testing.T) {
	var c CounterSet
	c.Add("zeta", 1)
	c.Add("alpha", 2)
	c.Add("mid", 3)
	c.Add("alpha", 5)
	if c.Len() != 3 || c.Get("alpha") != 7 || c.Get("absent") != 0 {
		t.Errorf("len=%d alpha=%d", c.Len(), c.Get("alpha"))
	}
	var names []string
	c.Each(func(name string, v uint64) { names = append(names, name) })
	if !reflect.DeepEqual(names, []string{"alpha", "mid", "zeta"}) {
		t.Errorf("iteration order %v", names)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, 1, KindVMExit, 1, 2, 3, 4)
	tr.CountExit(x86.ExitReason(1))
	tr.CountVTLBHit()
	tr.CountVTLBMiss()
	tr.Count("x", 1)
	tr.ObserveIPC(1)
	tr.ObserveDispatch(1)
	tr.ObserveExit(1)
	tr.ObserveVTLBFill(1)
	if tr.Rings() != nil || tr.Events() != nil {
		t.Error("nil tracer returned data")
	}
	if m := tr.MetricsData(); len(m.Exits) != 0 {
		t.Error("nil tracer returned metrics")
	}
	if _, err := tr.WriteTo(nil); err == nil {
		t.Error("nil tracer serialized without error")
	}
}

func TestMergeEventsOrder(t *testing.T) {
	tr := New(Meta{}, 2, 8)
	tr.Emit(0, 10, KindPIO, 0, 0, 0, 0)
	tr.Emit(1, 5, KindPIO, 1, 0, 0, 0)
	tr.Emit(0, 20, KindPIO, 2, 0, 0, 0)
	tr.Emit(1, 20, KindPIO, 3, 0, 0, 0)
	// Out-of-range CPUs are dropped, not panics.
	tr.Emit(2, 1, KindPIO, 9, 0, 0, 0)
	tr.Emit(-1, 1, KindPIO, 9, 0, 0, 0)
	var got []uint64
	for _, e := range tr.Events() {
		got = append(got, e.A0)
	}
	// Time order; CPU 0 before CPU 1 at equal times.
	if !reflect.DeepEqual(got, []uint64{1, 0, 2, 3}) {
		t.Errorf("merged order %v", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	meta := Meta{
		Model: "BLM", FreqMHz: 2670, VPID: true,
		SyscallEntryExit: 124, VMTransit: 1016, VMRead: 44,
		TLBRefill: 310, PageWalkLevel: 30, CacheLineAccess: 15,
		ExitReasons: []string{"none", "io"},
		KindNames:   KindNames(),
	}
	tr := New(meta, 2, 2)
	tr.Emit(0, 100, KindVMExit, 1, 0x8000, 2, 0)
	tr.Emit(0, 200, KindIPCReply, 4, 90, 1, 0)
	tr.Emit(0, 300, KindVMResume, 1, 200, 2, 0) // wraps: drops the first
	tr.Emit(1, 150, KindSemUp, 3, 1, 0, 0)
	tr.CountExit(x86.ExitReason(1))
	tr.Count("mmio.vahci", 7)
	tr.ObserveIPC(90)
	tr.ObserveVTLBFill(500)

	b, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Meta, tr.Meta) {
		t.Errorf("meta mismatch:\n got %+v\nwant %+v", d.Meta, tr.Meta)
	}
	if len(d.PerCPU) != 2 || len(d.PerCPU[0]) != 2 || len(d.PerCPU[1]) != 1 {
		t.Fatalf("per-CPU shapes: %d/%d", len(d.PerCPU[0]), len(d.PerCPU[1]))
	}
	if d.Overwritten[0] != 1 || d.Overwritten[1] != 0 {
		t.Errorf("overwritten = %v", d.Overwritten)
	}
	if !reflect.DeepEqual(d.PerCPU[0], tr.rings[0].Events()) {
		t.Errorf("cpu0 events: got %+v want %+v", d.PerCPU[0], tr.rings[0].Events())
	}
	if d.Metrics.Exits[0].Count != 1 || d.Metrics.Counters[0].Name != "mmio.vahci" ||
		d.Metrics.IPCLatency.Count != 1 || d.Metrics.VTLBFill.Sum != 500 {
		t.Errorf("metrics: %+v", d.Metrics)
	}
	if !reflect.DeepEqual(d.Events(), tr.Events()) {
		t.Error("merged events differ after round trip")
	}

	// Serialization is deterministic byte for byte.
	b2, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("two encodings of the same tracer differ")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	tr := New(Meta{Model: "K8"}, 1, 4)
	tr.Emit(0, 1, KindPIO, 0, 0, 0, 0)
	b, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode([]byte("NOTATRACE")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(b[:len(b)-3]); err == nil {
		t.Error("truncated trace accepted")
	}
	if _, err := Decode(append(append([]byte{}, b...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	for cut := range []int{8, 10, 12} {
		if _, err := Decode(b[:cut]); err == nil {
			t.Errorf("prefix of %d bytes accepted", cut)
		}
	}
}
