package trace

import (
	"math/bits"
	"sort"
)

// NumBuckets is the number of log2 histogram buckets: bucket 0 counts
// the value 0, bucket i (i >= 1) counts values in [2^(i-1), 2^i - 1].
const NumBuckets = 65

// Histogram is a log2-scaled latency histogram. The zero value is
// ready to use.
type Histogram struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
}

// BucketIndex returns the bucket a value falls into.
func BucketIndex(v uint64) int { return bits.Len64(v) }

// BucketBounds returns the inclusive [lo, hi] range of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	return uint64(1) << uint(i-1), uint64(1)<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.Buckets[BucketIndex(v)]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
}

// Mean returns the average observed value (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// CounterSet is a collection of named counters kept in sorted name
// order, so serialization never iterates a map. The zero value is
// ready to use.
type CounterSet struct {
	names  []string
	values []uint64
}

// Add adds n to the named counter, creating it at its sorted position
// on first use.
func (c *CounterSet) Add(name string, n uint64) {
	i := sort.SearchStrings(c.names, name)
	if i < len(c.names) && c.names[i] == name {
		c.values[i] += n
		return
	}
	c.names = append(c.names, "")
	copy(c.names[i+1:], c.names[i:])
	c.names[i] = name
	c.values = append(c.values, 0)
	copy(c.values[i+1:], c.values[i:])
	c.values[i] = n
}

// Get returns the named counter's value (0 if absent).
func (c *CounterSet) Get(name string) uint64 {
	i := sort.SearchStrings(c.names, name)
	if i < len(c.names) && c.names[i] == name {
		return c.values[i]
	}
	return 0
}

// Each calls f for every counter in name order.
func (c *CounterSet) Each(f func(name string, value uint64)) {
	for i, name := range c.names {
		f(name, c.values[i])
	}
}

// Len returns the number of distinct counters.
func (c *CounterSet) Len() int { return len(c.names) }
