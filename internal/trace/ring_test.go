package trace

import (
	"testing"

	"nova/internal/hw"
)

// TestRingOverwriteRecordGranular fills a tiny ring past capacity using
// multi-record emissions (the span recorder's open emits two records per
// call) and checks that the overwrite counter is record-granular: it
// must count dropped RECORDS, not emission calls, and must satisfy
// Overwritten() == pushed - Len().
func TestRingOverwriteRecordGranular(t *testing.T) {
	const capacity = 4
	r := NewRing(0, capacity)

	// 7 emissions of 2 records each = 14 records into a 4-slot ring.
	pushed := 0
	for i := 0; i < 7; i++ {
		now := hw.Cycles(10 * i)
		r.Push(now, KindVMExit, uint64(i), 1, 0, 0) // "open"
		r.Push(now, KindVMResume, uint64(i), 2, 0, 0)
		pushed += 2
	}

	if r.Len() != capacity {
		t.Fatalf("Len() = %d, want %d (full ring)", r.Len(), capacity)
	}
	wantOver := uint64(pushed - capacity)
	if r.Overwritten() != wantOver {
		t.Errorf("Overwritten() = %d, want %d (record-granular: %d records pushed, %d live)",
			r.Overwritten(), wantOver, pushed, r.Len())
	}
	if got := r.Overwritten(); got != uint64(pushed)-uint64(r.Len()) {
		t.Errorf("invariant Overwritten() == pushed - Len() broken: %d != %d - %d",
			got, pushed, r.Len())
	}

	// The survivors are the newest records, contiguous in sequence, and
	// the first surviving Seq equals Overwritten (drop-from-front).
	ev := r.Events()
	if len(ev) != capacity {
		t.Fatalf("Events() returned %d records, want %d", len(ev), capacity)
	}
	if ev[0].Seq != r.Overwritten() {
		t.Errorf("first surviving Seq = %d, want Overwritten() = %d", ev[0].Seq, r.Overwritten())
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Errorf("sequence gap: ev[%d].Seq = %d after %d", i, ev[i].Seq, ev[i-1].Seq)
		}
	}

	// A ring that never wrapped reports zero.
	small := NewRing(1, 8)
	small.Push(1, KindVMExit, 0, 0, 0, 0)
	small.Push(2, KindVMResume, 0, 0, 0, 0)
	if small.Overwritten() != 0 {
		t.Errorf("unwrapped ring Overwritten() = %d, want 0", small.Overwritten())
	}
}

// TestHistogramQuantile checks the nearest-rank quantile extraction from
// log2 buckets: exact ranks, bucket-upper-bound values clamped to the
// observed min/max.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations: 98 fast (value 100, bucket [64,127]),
	// 1 slow (1000, bucket [512,1023]), 1 very slow (9000, [8192,16383]).
	for i := 0; i < 98; i++ {
		h.Observe(100)
	}
	h.Observe(1000)
	h.Observe(9000)
	d := h.Data()

	cases := []struct {
		q    float64
		want uint64
	}{
		{0.50, 127},   // rank 50 is in the fast bucket; upper bound 127
		{0.98, 127},   // rank 98 still fast
		{0.99, 1023},  // rank 99 is the slow observation's bucket
		{0.999, 9000}, // rank 100 is the very slow one, clamped to Max
		{1.0, 9000},
	}
	for _, c := range cases {
		if got := d.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}

	// Single observation: all quantiles collapse to it (clamped to
	// [Min, Max]).
	var one Histogram
	one.Observe(5)
	od := one.Data()
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if got := od.Quantile(q); got != 5 {
			t.Errorf("single-observation Quantile(%v) = %d, want 5", q, got)
		}
	}

	// Empty histogram and nil data are zero.
	var empty Histogram
	ed := empty.Data()
	if ed.Quantile(0.5) != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", ed.Quantile(0.5))
	}
	var nd *HistogramData
	if nd.Quantile(0.5) != 0 {
		t.Errorf("nil Quantile(0.5) != 0")
	}
}
