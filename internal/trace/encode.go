package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"nova/internal/hw"
)

// magic identifies a serialized trace (version 1).
const magic = "NOVATRC1"

// eventSize is the fixed on-disk size of one event record:
// time(8) + seq(8) + kind(1) + 4×arg(8).
const eventSize = 8 + 8 + 1 + 4*8

// Meta describes the run that produced a trace: the cost-model
// constants a renderer needs to decompose measured durations into the
// paper's Figure 8/9 boxes, plus the enum name tables so traces are
// self-describing.
type Meta struct {
	Model        string `json:"model"`
	FreqMHz      int    `json:"freq_mhz"`
	NumCPUs      int    `json:"num_cpus"`
	RingCapacity int    `json:"ring_capacity"`
	VPID         bool   `json:"vpid"`

	// Cost-model constants, in cycles. VMTransit is the effective
	// world-switch cost of the run (tagged-aware).
	SyscallEntryExit uint64 `json:"syscall_entry_exit"`
	VMTransit        uint64 `json:"vm_transit"`
	VMRead           uint64 `json:"vm_read"`
	TLBRefill        uint64 `json:"tlb_refill"`
	PageWalkLevel    uint64 `json:"page_walk_level"`
	CacheLineAccess  uint64 `json:"cache_line_access"`

	ExitReasons []string `json:"exit_reasons"`
	KindNames   []string `json:"kind_names"`
}

// NamedCount is one (name, count) pair in the metrics section.
type NamedCount struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
}

// BucketCount is one non-empty histogram bucket with its value range.
type BucketCount struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramData is the serialized form of a Histogram.
type HistogramData struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Min     uint64        `json:"min"`
	Max     uint64        `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile returns the nearest-rank q-quantile derivable from the log2
// buckets: the upper bound of the bucket holding the ceil(q*Count)-th
// smallest observation, clamped to the observed [Min, Max]. The rank is
// exact (bucket counts are exact); only the value within the bucket is
// an upper bound, so p50/p99/p999 read from here never understate the
// tail. Returns 0 for an empty histogram.
func (d *HistogramData) Quantile(q float64) uint64 {
	if d == nil || d.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(d.Count))
	if float64(rank) < q*float64(d.Count) {
		rank++ // ceil without importing math
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range d.Buckets {
		cum += b.Count
		if cum >= rank {
			v := b.Hi
			if v > d.Max {
				v = d.Max
			}
			if v < d.Min {
				v = d.Min
			}
			return v
		}
	}
	return d.Max
}

// Data converts a histogram to its serialized form (non-empty buckets
// only, in value order).
func (h *Histogram) Data() HistogramData {
	d := HistogramData{Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max}
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		d.Buckets = append(d.Buckets, BucketCount{Lo: lo, Hi: hi, Count: n})
	}
	return d
}

// RingStatus reports one per-CPU event ring's occupancy, so metrics
// consumers can tell whether the recorded window covers the whole run
// or only its tail (a full ring overwrites its oldest events).
type RingStatus struct {
	CPU         int    `json:"cpu"`
	Capacity    int    `json:"capacity"`
	Live        int    `json:"live"`
	Overwritten uint64 `json:"overwritten"`
}

// Metrics is the counters-and-histograms section of a trace.
type Metrics struct {
	Exits           []NamedCount  `json:"exits,omitempty"` // reason order, non-zero only
	VTLBHits        uint64        `json:"vtlb_hits"`
	VTLBMisses      uint64        `json:"vtlb_misses"`
	Counters        []NamedCount  `json:"counters,omitempty"` // name order
	Rings           []RingStatus  `json:"rings,omitempty"` // CPU order
	IPCLatency      HistogramData `json:"ipc_latency"`
	DispatchLatency HistogramData `json:"dispatch_latency"`
	ExitLatency     HistogramData `json:"exit_latency"`
	VTLBFill        HistogramData `json:"vtlb_fill"`
}

// Truncated reports whether any per-CPU ring overwrote events: the
// window the events cover is then shorter than the run, while the
// counters and histograms still cover everything.
func (m *Metrics) Truncated() uint64 {
	var n uint64
	for _, r := range m.Rings {
		n += r.Overwritten
	}
	return n
}

// MetricsData snapshots the tracer's counters and histograms.
func (t *Tracer) MetricsData() Metrics {
	if t == nil {
		return Metrics{}
	}
	m := Metrics{
		VTLBHits:        t.VTLBHits,
		VTLBMisses:      t.VTLBMisses,
		IPCLatency:      t.IPCLatency.Data(),
		DispatchLatency: t.DispatchLatency.Data(),
		ExitLatency:     t.ExitLatency.Data(),
		VTLBFill:        t.VTLBFill.Data(),
	}
	for r, n := range t.ExitCounts {
		if n == 0 {
			continue
		}
		name := fmt.Sprintf("reason-%d", r)
		if r < len(t.Meta.ExitReasons) {
			name = t.Meta.ExitReasons[r]
		}
		m.Exits = append(m.Exits, NamedCount{Name: name, Count: n})
	}
	t.Counters.Each(func(name string, v uint64) {
		m.Counters = append(m.Counters, NamedCount{Name: name, Count: v})
	})
	for cpu, r := range t.rings {
		m.Rings = append(m.Rings, RingStatus{
			CPU: cpu, Capacity: r.Cap(), Live: r.Len(), Overwritten: r.Overwritten(),
		})
	}
	return m
}

// WriteTo serializes the trace: magic, meta JSON, per-CPU event rings,
// metrics JSON. Every section is deterministic — struct-based JSON
// (fixed field order) and fixed-size little-endian event records — so
// two runs from identical inputs serialize to identical bytes.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	if t == nil {
		return 0, fmt.Errorf("trace: nil tracer")
	}
	var buf bytes.Buffer
	buf.WriteString(magic)

	metaJSON, err := json.Marshal(t.Meta)
	if err != nil {
		return 0, err
	}
	WriteSection(&buf, metaJSON)

	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(t.rings)))
	buf.Write(tmp[:])
	for _, r := range t.rings {
		events := r.Events()
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(events)))
		binary.LittleEndian.PutUint64(hdr[4:], r.Overwritten())
		buf.Write(hdr[:])
		var rec [eventSize]byte
		for _, e := range events {
			binary.LittleEndian.PutUint64(rec[0:], uint64(e.Time))
			binary.LittleEndian.PutUint64(rec[8:], e.Seq)
			rec[16] = uint8(e.Kind)
			binary.LittleEndian.PutUint64(rec[17:], e.A0)
			binary.LittleEndian.PutUint64(rec[25:], e.A1)
			binary.LittleEndian.PutUint64(rec[33:], e.A2)
			binary.LittleEndian.PutUint64(rec[41:], e.A3)
			buf.Write(rec[:])
		}
	}

	metricsJSON, err := json.Marshal(t.MetricsData())
	if err != nil {
		return 0, err
	}
	WriteSection(&buf, metricsJSON)

	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// Encode returns the serialized trace as a byte slice.
func (t *Tracer) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Hash returns the FNV-64a hash of the serialized trace. The
// determinism regression test compares this across runs: identical
// inputs must produce identical traces, not merely identical counts.
func (t *Tracer) Hash() uint64 {
	b, err := t.Encode()
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// WriteSection appends one length-prefixed section (u32 LE length, then
// the body) to buf. The framing is shared by the trace (NOVATRC1) and
// profile (NOVAPRF1) file formats.
func WriteSection(buf *bytes.Buffer, b []byte) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b)))
	buf.Write(tmp[:])
	buf.Write(b)
}

// TraceData is a decoded trace.
type TraceData struct {
	Meta        Meta
	PerCPU      [][]Event // index = CPU, ordered by sequence
	Overwritten []uint64  // per CPU
	Metrics     Metrics
}

// Events returns all events merged into the (time, CPU, seq) order.
func (d *TraceData) Events() []Event { return MergeEvents(d.PerCPU) }

// Decode parses a serialized trace.
func Decode(b []byte) (*TraceData, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic (not a nova trace file)")
	}
	b = b[len(magic):]

	metaJSON, b, err := ReadSection(b)
	if err != nil {
		return nil, fmt.Errorf("trace: meta: %w", err)
	}
	d := &TraceData{}
	if err := json.Unmarshal(metaJSON, &d.Meta); err != nil {
		return nil, fmt.Errorf("trace: meta: %w", err)
	}

	if len(b) < 4 {
		return nil, fmt.Errorf("trace: truncated CPU count")
	}
	cpus := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if cpus < 0 || cpus > 1<<16 {
		return nil, fmt.Errorf("trace: implausible CPU count %d", cpus)
	}
	for cpu := 0; cpu < cpus; cpu++ {
		if len(b) < 12 {
			return nil, fmt.Errorf("trace: truncated ring header (cpu %d)", cpu)
		}
		count := int(binary.LittleEndian.Uint32(b))
		over := binary.LittleEndian.Uint64(b[4:])
		b = b[12:]
		if count < 0 || len(b) < count*eventSize {
			return nil, fmt.Errorf("trace: truncated ring (cpu %d)", cpu)
		}
		events := make([]Event, count)
		for i := range events {
			rec := b[i*eventSize:]
			events[i] = Event{
				Time: hw.Cycles(binary.LittleEndian.Uint64(rec[0:])),
				Seq:  binary.LittleEndian.Uint64(rec[8:]),
				CPU:  uint8(cpu),
				Kind: Kind(rec[16]),
				A0:   binary.LittleEndian.Uint64(rec[17:]),
				A1:   binary.LittleEndian.Uint64(rec[25:]),
				A2:   binary.LittleEndian.Uint64(rec[33:]),
				A3:   binary.LittleEndian.Uint64(rec[41:]),
			}
		}
		b = b[count*eventSize:]
		d.PerCPU = append(d.PerCPU, events)
		d.Overwritten = append(d.Overwritten, over)
	}

	metricsJSON, b, err := ReadSection(b)
	if err != nil {
		return nil, fmt.Errorf("trace: metrics: %w", err)
	}
	if err := json.Unmarshal(metricsJSON, &d.Metrics); err != nil {
		return nil, fmt.Errorf("trace: metrics: %w", err)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes", len(b))
	}
	return d, nil
}

// ReadSection splits one length-prefixed section (as written by
// WriteSection) off the front of b.
func ReadSection(b []byte) (section, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("truncated section length")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n < 0 || len(b) < n {
		return nil, nil, fmt.Errorf("truncated section body")
	}
	return b[:n], b[n:], nil
}
