// Package trace is the observability layer of the simulation: a
// deterministic, low-overhead event tracer plus typed counters and
// log-scaled histograms, threaded through the microhypervisor, the
// user-level VMMs and the device servers.
//
// The design contract is zero perturbation: emitting an event must
// never charge simulated cycles, mutate guest-visible state, or read
// the wall clock. Timestamps are virtual time (hw.Cycles) taken from
// the per-CPU clocks that the simulation already maintains, so a run
// with tracing enabled produces bit-identical cycle totals to a run
// without, and two traced runs of the same guest produce byte-identical
// event streams. The nova-vet `tracepure` analyzer enforces this
// statically; the CI trace-on/off step enforces it end to end.
//
// Events land in fixed-capacity per-CPU ring buffers carrying per-CPU
// sequence numbers; when a ring wraps, the oldest events are dropped
// and counted in Overwritten — emission itself never blocks, allocates
// per-event, or fails.
package trace

import (
	"nova/internal/hw"
	"nova/internal/x86"
)

// Kind classifies a trace event. The A0..A3 payload layout is fixed per
// kind and documented on each constant; renderers and the attribution
// pass depend on it.
type Kind uint8

// Event kinds, one per instrumented boundary of the stack.
const (
	// KindNone is never emitted; it marks an empty record.
	KindNone Kind = iota

	// Kernel layer.

	// KindVMExit: a VM exit entered the microhypervisor.
	// A0=exit reason, A1=guest EIP, A2=EC id, A3=host vector (external
	// interrupt exits only, else 0).
	KindVMExit
	// KindVMResume: the VM exit finished and the guest resumes.
	// A0=exit reason, A1=cycles spent handling the exit, A2=EC id.
	KindVMResume
	// KindHypercall: a user component entered the hypercall layer.
	// A0=caller PD id.
	KindHypercall
	// KindIPCCall: a portal traversal began (SC donation, Figure 3).
	// A0=portal uid, A1=payload words, A2=1 if cross-address-space.
	KindIPCCall
	// KindIPCReply: the portal's reply capability was invoked.
	// A0=portal uid, A1=call-to-reply cycles, A2=1 if cross-AS.
	KindIPCReply
	// KindSchedDispatch: the scheduler dispatched an SC.
	// A0=EC id, A1=priority, A2=cycles the SC waited in the runqueue.
	KindSchedDispatch
	// KindSemUp: semaphore up. A0=semaphore id, A1=1 if a waiter woke.
	KindSemUp
	// KindSemDown: semaphore down. A0=semaphore id, A1=1 if acquired
	// immediately (0 = caller blocked).
	KindSemDown
	// KindRecall: the recall hypercall forced a vCPU out of guest mode
	// (§7.5). A0=target EC id.
	KindRecall
	// KindInject: a virtual interrupt was delivered into the guest.
	// A0=vector, A1=EC id.
	KindInject
	// KindHostIRQ: a host interrupt was acknowledged and routed.
	// A0=host vector, A1=IRQ line (two's complement -1 if spurious),
	// A2=preempted EC id (^0 if the kernel was running).
	KindHostIRQ
	// KindVTLBFill: a vTLB miss filled the shadow page table (§5.3).
	// A0=guest-virtual address, A1=fill cycles, A2=EC id.
	KindVTLBFill
	// KindVTLBFlush: the shadow page table was flushed or pruned.
	// A0=cause (CR number, or 0xff for INVLPG), A1=EC id, A2=linear
	// address (INVLPG only).
	KindVTLBFlush

	// VMM layer.

	// KindPIO: the device-model dispatcher handled an intercepted
	// IN/OUT. A0=port, A1=1 if IN, A2=value, A3=size.
	KindPIO
	// KindMMIO: an emulated access hit a virtual device window.
	// A0=guest-physical address, A1=1 if read, A2=value, A3=size.
	KindMMIO
	// KindEmulate: the instruction emulator ran one guest instruction
	// (§7.1). A0=guest EIP.
	KindEmulate
	// KindBIOSCall: the virtual BIOS served an INT service (§7.4).
	// A0=interrupt vector, A1=AH function code.
	KindBIOSCall
	// KindDiskRequest: the vAHCI model forwarded a guest command to the
	// disk server (Figure 4, step 2). A0=op, A1=LBA, A2=sector count,
	// A3=command slot.
	KindDiskRequest
	// KindDiskComplete: a completion record reached the vAHCI model
	// (Figure 4, step 7). A0=command slot, A1=1 if OK.
	KindDiskComplete

	// Server layer.

	// KindDiskIssue: the disk server programmed the host controller
	// (Figure 4, step 4). A0=op, A1=LBA, A2=sector count, A3=host slot.
	KindDiskIssue
	// KindDiskDone: the disk server's interrupt EC retired a slot and
	// wrote the completion record (Figure 4, step 6). A0=client cookie,
	// A1=1 if OK, A2=client id.
	KindDiskDone
	// KindNetRX: the network server harvested one received packet.
	// A0=length in bytes, A1=1 if delivered to at least one client.
	KindNetRX
)

// NumKinds sizes per-kind tables.
const NumKinds = int(KindNetRX) + 1

var kindNames = [NumKinds]string{
	KindNone:          "none",
	KindVMExit:        "vm-exit",
	KindVMResume:      "vm-resume",
	KindHypercall:     "hypercall",
	KindIPCCall:       "ipc-call",
	KindIPCReply:      "ipc-reply",
	KindSchedDispatch: "sched-dispatch",
	KindSemUp:         "sem-up",
	KindSemDown:       "sem-down",
	KindRecall:        "recall",
	KindInject:        "inject",
	KindHostIRQ:       "host-irq",
	KindVTLBFill:      "vtlb-fill",
	KindVTLBFlush:     "vtlb-flush",
	KindPIO:           "pio",
	KindMMIO:          "mmio",
	KindEmulate:       "emulate",
	KindBIOSCall:      "bios-call",
	KindDiskRequest:   "disk-request",
	KindDiskComplete:  "disk-complete",
	KindDiskIssue:     "disk-issue",
	KindDiskDone:      "disk-done",
	KindNetRX:         "net-rx",
}

func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return "kind?"
}

// KindNames returns the kind-name table in kind order (for Meta).
func KindNames() []string {
	names := make([]string, NumKinds)
	copy(names, kindNames[:])
	return names
}

// Event is one trace record. Seq is the per-CPU sequence number (gaps
// never occur; a wrapped ring drops from the front, so the first
// surviving Seq equals Overwritten). Time is virtual time on the
// emitting CPU's clock.
type Event struct {
	Seq  uint64
	Time hw.Cycles
	CPU  uint8
	Kind Kind
	A0   uint64
	A1   uint64
	A2   uint64
	A3   uint64
}

// Ring is one CPU's fixed-capacity event buffer. When full, the oldest
// event is overwritten and counted; emission never fails or allocates.
type Ring struct {
	cpu  uint8
	buf  []Event
	w    int    // next write index
	n    int    // live events
	seq  uint64 // sequence number of the next event
	over uint64 // records dropped to make room (not emission calls)
}

// NewRing creates a ring for the given CPU with the given capacity
// (minimum 1).
func NewRing(cpu, capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{cpu: uint8(cpu), buf: make([]Event, capacity)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of live events.
func (r *Ring) Len() int { return r.n }

// Overwritten returns how many RECORDS were dropped to make room. The
// counter is bumped once per overwritten record inside push, not once
// per emission call, so multi-record emissions (a span open emits an
// open record plus its initial segment record) account every dropped
// record individually. The invariant Overwritten() == seq - Len() is
// checked by the ring regression test.
func (r *Ring) Overwritten() uint64 { return r.over }

// push appends an event, overwriting the oldest if full.
func (r *Ring) push(now hw.Cycles, k Kind, a0, a1, a2, a3 uint64) {
	if r.n == len(r.buf) {
		r.over++
	}
	r.buf[r.w] = Event{Seq: r.seq, Time: now, CPU: r.cpu, Kind: k, A0: a0, A1: a1, A2: a2, A3: a3}
	r.seq++
	r.w++
	if r.w == len(r.buf) {
		r.w = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
}

// Push appends one record to the ring. It exists for external recorders
// that reuse the ring machinery with their own kind space (the
// request-span recorder in internal/span); emissions of several records
// call it once per record, so overwrite accounting stays
// record-granular.
func (r *Ring) Push(now hw.Cycles, k Kind, a0, a1, a2, a3 uint64) {
	r.push(now, k, a0, a1, a2, a3)
}

// Events returns the live events oldest-first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.n)
	start := r.w - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Tracer is the per-platform trace and metrics sink. All methods are
// nil-safe so instrumented code needs no enablement checks: a nil
// *Tracer means tracing is off and every call is a two-instruction
// no-op.
type Tracer struct {
	Meta  Meta
	rings []*Ring

	// ExitCounts counts VM exits by reason (indexed by x86.ExitReason).
	ExitCounts [x86.NumExitReasons]uint64
	// VTLBHits/VTLBMisses count shadow-page-table hits and fills.
	VTLBHits   uint64
	VTLBMisses uint64
	// Counters holds ad-hoc named counters (per-device MMIO counts …).
	Counters CounterSet

	// Latency histograms, log2-bucketed, in cycles.
	IPCLatency      Histogram // portal call to reply
	DispatchLatency Histogram // runqueue wait before dispatch
	ExitLatency     Histogram // VM exit to resume
	VTLBFill        Histogram // vTLB miss to shadow fill
}

// New creates a tracer with one ring of the given capacity per CPU.
func New(meta Meta, cpus, capacity int) *Tracer {
	t := &Tracer{Meta: meta}
	t.Meta.NumCPUs = cpus
	t.Meta.RingCapacity = capacity
	for i := 0; i < cpus; i++ {
		t.rings = append(t.rings, NewRing(i, capacity))
	}
	return t
}

// Emit records one event on cpu's ring at virtual time now.
func (t *Tracer) Emit(cpu int, now hw.Cycles, k Kind, a0, a1, a2, a3 uint64) {
	if t == nil || cpu < 0 || cpu >= len(t.rings) {
		return
	}
	t.rings[cpu].push(now, k, a0, a1, a2, a3)
}

// CountExit bumps the typed per-reason VM-exit counter.
func (t *Tracer) CountExit(reason x86.ExitReason) {
	if t == nil || reason < 0 || int(reason) >= x86.NumExitReasons {
		return
	}
	t.ExitCounts[reason]++
}

// CountVTLBHit counts a shadow-page-table hit.
func (t *Tracer) CountVTLBHit() {
	if t == nil {
		return
	}
	t.VTLBHits++
}

// CountVTLBMiss counts a vTLB miss (shadow fill).
func (t *Tracer) CountVTLBMiss() {
	if t == nil {
		return
	}
	t.VTLBMisses++
}

// Count adds n to the named counter.
func (t *Tracer) Count(name string, n uint64) {
	if t == nil {
		return
	}
	t.Counters.Add(name, n)
}

// ObserveIPC records one portal-call round-trip latency.
func (t *Tracer) ObserveIPC(cycles uint64) {
	if t == nil {
		return
	}
	t.IPCLatency.Observe(cycles)
}

// ObserveDispatch records one runqueue-wait latency.
func (t *Tracer) ObserveDispatch(cycles uint64) {
	if t == nil {
		return
	}
	t.DispatchLatency.Observe(cycles)
}

// ObserveExit records one VM-exit handling latency.
func (t *Tracer) ObserveExit(cycles uint64) {
	if t == nil {
		return
	}
	t.ExitLatency.Observe(cycles)
}

// ObserveVTLBFill records one vTLB fill duration.
func (t *Tracer) ObserveVTLBFill(cycles uint64) {
	if t == nil {
		return
	}
	t.VTLBFill.Observe(cycles)
}

// Rings returns the per-CPU rings (index = CPU).
func (t *Tracer) Rings() []*Ring {
	if t == nil {
		return nil
	}
	return t.rings
}

// Events returns all live events merged across CPUs, ordered by
// (time, CPU, sequence) — a deterministic total order because each
// CPU's ring is already time- and sequence-ordered.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var per [][]Event
	for _, r := range t.rings {
		per = append(per, r.Events())
	}
	return MergeEvents(per)
}

// MergeEvents merges per-CPU, already-ordered event slices into the
// (time, CPU, seq) total order. Exported because the span recorder's
// per-CPU rings merge the same way.
func MergeEvents(per [][]Event) []Event {
	total := 0
	for _, p := range per {
		total += len(p)
	}
	out := make([]Event, 0, total)
	idx := make([]int, len(per))
	for len(out) < total {
		best := -1
		for c := range per {
			if idx[c] >= len(per[c]) {
				continue
			}
			if best < 0 {
				best = c
				continue
			}
			a, b := per[c][idx[c]], per[best][idx[best]]
			if a.Time < b.Time || (a.Time == b.Time && c < best) {
				best = c
			}
		}
		out = append(out, per[best][idx[best]])
		idx[best]++
	}
	return out
}
