package services

import (
	"fmt"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/hypervisor"
)

// RootPM is the root partition manager (§6): the first protection
// domain, created by the microhypervisor at boot with capabilities for
// all remaining memory, I/O ports and interrupts. It makes the initial
// resource-allocation decisions; further policy can be applied at every
// delegation level below it.
type RootPM struct {
	K *hypervisor.Kernel

	nextPage uint32
	endPage  uint32

	allocations map[string][2]uint32 // name -> {base, pages}
}

// NewRootPM wraps the kernel's root domain with an allocation policy.
func NewRootPM(k *hypervisor.Kernel) *RootPM {
	return &RootPM{
		K:           k,
		nextPage:    (2 << 20) / hw.PageSize, // leave the first 2 MiB for servers
		endPage:     uint32(k.Plat.Mem.Size() / hw.PageSize),
		allocations: make(map[string][2]uint32),
	}
}

// AllocPages reserves a contiguous block of host pages for a named
// consumer and returns its base page.
func (r *RootPM) AllocPages(name string, n int) (uint32, error) {
	if r.nextPage+uint32(n) > r.endPage {
		return 0, fmt.Errorf("services: out of memory allocating %d pages for %s", n, name)
	}
	base := r.nextPage
	r.nextPage += uint32(n)
	r.allocations[name] = [2]uint32{base, uint32(n)}
	return base, nil
}

// AllocAligned reserves a block whose base is aligned to align pages
// (large-page-backed guest memory needs 2M/4M alignment).
func (r *RootPM) AllocAligned(name string, n, align int) (uint32, error) {
	if align > 1 {
		rem := r.nextPage % uint32(align)
		if rem != 0 {
			r.nextPage += uint32(align) - rem
		}
	}
	return r.AllocPages(name, n)
}

// Allocations lists the current assignments for inspection.
func (r *RootPM) Allocations() map[string][2]uint32 {
	out := make(map[string][2]uint32, len(r.allocations))
	for k, v := range r.allocations {
		out[k] = v
	}
	return out
}

// StartDiskServer allocates driver memory and brings the disk server
// up under root policy.
func (r *RootPM) StartDiskServer() (*DiskServer, error) {
	base, err := r.AllocPages("disk-server", 16)
	if err != nil {
		return nil, err
	}
	return NewDiskServer(r.K, base)
}

// Console is a minimal log service: clients write bytes through a
// portal; the service keeps per-client buffers. It demonstrates the
// client/server IPC pattern the user environment is built from.
type Console struct {
	K    *hypervisor.Kernel
	PD   *hypervisor.PD
	logs map[uint64][]byte
	next uint64
}

// StartConsole creates the console service domain.
func (r *RootPM) StartConsole() (*Console, error) {
	pd, err := r.K.CreatePD(r.K.Root, r.K.Root.Caps.AllocSel(), "console", false)
	if err != nil {
		return nil, err
	}
	return &Console{K: r.K, PD: pd, logs: make(map[uint64][]byte)}, nil
}

// AddClient creates a dedicated channel and returns its portal for
// delegation to the client.
func (c *Console) AddClient(name string) (*hypervisor.Portal, uint64, error) {
	c.next++
	id := c.next
	pt, err := c.K.CreatePortal(c.PD, c.PD.Caps.AllocSel(), "console-"+name, id, 0, func(msg *hypervisor.UTCB) error {
		for _, w := range msg.Words {
			c.logs[id] = append(c.logs[id], byte(w))
		}
		msg.Words = msg.Words[:0]
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return pt, id, nil
}

// Log returns a client's accumulated output.
func (c *Console) Log(id uint64) string { return string(c.logs[id]) }

// grantChannelAuthority ensures srv holds a control capability for the
// client protection domain before channel setup delegates into it (the
// kernel's delegation hypercall demands control over the destination
// domain). The grant comes from the root PD — the broker that created
// both domains — and happens at most once per server/client pair (§6:
// policy applied at every delegation level).
func grantChannelAuthority(k *hypervisor.Kernel, srv, client *hypervisor.PD) error {
	if _, err := srv.Caps.LookupObj(client, cap.ObjPD, cap.RightCtrl); err == nil {
		return nil
	}
	rootSel, ok := k.Root.Caps.SelectorOf(client)
	if !ok {
		return fmt.Errorf("services: root holds no capability for %s", client.Name)
	}
	return k.DelegateCap(k.Root, rootSel, srv, srv.Caps.AllocSel(), cap.RightCtrl)
}

// DelegatePortal hands a service portal to a client domain at the given
// selector with call rights only — the least privilege a client needs.
func DelegatePortal(k *hypervisor.Kernel, owner *hypervisor.PD, pt *hypervisor.Portal, client *hypervisor.PD, sel cap.Selector) error {
	if err := grantChannelAuthority(k, owner, client); err != nil {
		return err
	}
	s, ok := owner.Caps.SelectorOf(pt)
	if !ok {
		return fmt.Errorf("services: portal not found in %s", owner.Name)
	}
	return k.DelegateCap(owner, s, client, sel, cap.RightCall)
}
