package services

import (
	"encoding/binary"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/span"
	"nova/internal/stat"
	"nova/internal/trace"
)

// NetServer owns the host network controller (§4: the user environment
// provides network stacks to the rest of the system). Its interrupt EC
// harvests the receive ring and copies packets into per-client queues;
// clients are woken through their doorbell semaphores. Like the disk
// server, the controller's DMA is confined by an IOMMU domain to the
// server's own ring and buffers — a malformed or malicious packet can
// at worst corrupt the server (§4.2 "Remote Attacks"), never the rest
// of the system.
type NetServer struct {
	K  *hypervisor.Kernel
	PD *hypervisor.PD

	ringBase uint64 // host-physical ring (64 descriptors)
	bufBase  uint64 // 64 x 2 KiB buffers
	slots    int
	head     uint32

	irqSem *hypervisor.Semaphore

	clients map[uint64]*netClient
	nextID  uint64

	// MaxQueued bounds each client's backlog; beyond it packets drop
	// (backpressure instead of unbounded memory).
	MaxQueued int

	// spanRefs counts, per RX-frame span, the clients that still hold
	// the frame queued (one frame fans out to every client). The span
	// closes when the last consumer drains it — a lookup index only,
	// never iterated, so span ID assignment stays deterministic.
	spanRefs map[span.ID]int

	Stats struct {
		Packets   uint64
		Bytes     uint64
		Delivered uint64
		Dropped   uint64
		Truncated uint64
		IRQs      uint64
	}
}

type netClient struct {
	name     string
	pd       *hypervisor.PD
	doorbell *hypervisor.Semaphore
	queue    [][]byte
	spans    []span.ID // parallel to queue: the frame's RX span

	// Precomputed per-client metric names (recording is nil-safe at the
	// registry, so these are always set).
	statPkts  string
	statBytes string
}

const netBufSize = 2048

// NewNetServer creates the server, programs the host NIC and wires its
// interrupt.
func NewNetServer(k *hypervisor.Kernel, memPage uint32) (*NetServer, error) {
	pd, err := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "net-server", false)
	if err != nil {
		return nil, err
	}
	const slots = 64
	ns := &NetServer{
		K: k, PD: pd,
		ringBase:  uint64(memPage) << 12,
		bufBase:   uint64(memPage)<<12 + hw.PageSize,
		slots:     slots,
		clients:   make(map[uint64]*netClient),
		MaxQueued: 256,
		spanRefs:  make(map[span.ID]int),
	}
	// 1 page ring + 32 pages of buffers.
	if err := k.DelegateMem(k.Root, memPage, pd, memPage, 33, cap.RightRead|cap.RightWrite); err != nil {
		return nil, err
	}

	sem, err := k.CreateSemaphore(k.Root, k.Root.Caps.AllocSel(), "nic-irq", 0)
	if err != nil {
		return nil, err
	}
	ns.irqSem = sem
	ec, err := k.CreateEC(k.Root, k.Root.Caps.AllocSel(), pd, 0, "net-irq", nil)
	if err != nil {
		return nil, err
	}
	ec.Run = ns.handleIRQ
	if _, err := k.CreateSC(k.Root, k.Root.Caps.AllocSel(), ec, 40, 1_000_000); err != nil {
		return nil, err
	}
	k.BindECToSemaphore(ec, sem)
	if err := k.AssignGSI(k.Root, hw.IRQNIC, sem); err != nil {
		return nil, err
	}

	if k.Plat.IOMMU != nil {
		dom := hw.NewIOMMUDomain("net-server")
		if err := dom.Map(ns.ringBase, ns.ringBase, 33*hw.PageSize, hw.IOMMURead|hw.IOMMUWrite); err != nil {
			return nil, err
		}
		k.Plat.IOMMU.Attach(hw.NICDeviceID, dom)
	}

	ns.initController()
	return ns, nil
}

func (ns *NetServer) mmioWrite(off uint32, v uint32) {
	ns.K.Plat.Mem.Write32(hw.NICMMIOBase+hw.PhysAddr(off), v)
}

func (ns *NetServer) mmioRead(off uint32) uint32 {
	return ns.K.Plat.Mem.Read32(hw.NICMMIOBase + hw.PhysAddr(off))
}

func (ns *NetServer) initController() {
	mem := ns.K.Plat.Mem
	for i := 0; i < ns.slots; i++ {
		mem.Write64(hw.PhysAddr(ns.ringBase+uint64(i)*16), ns.bufBase+uint64(i)*netBufSize)
		mem.Write64(hw.PhysAddr(ns.ringBase+uint64(i)*16+8), 0)
	}
	ns.mmioWrite(0x2800, uint32(ns.ringBase)) // RDBAL
	ns.mmioWrite(0x2804, uint32(ns.ringBase>>32))
	ns.mmioWrite(0x2808, uint32(ns.slots*16)) // RDLEN
	ns.mmioWrite(0x2810, 0)                   // RDH
	ns.mmioWrite(0x2818, uint32(ns.slots-1))  // RDT
	ns.mmioWrite(0x00d0, 0x80)                // IMS: RXT0
	ns.mmioWrite(0x0100, 2)                   // RCTL: EN, 2 KiB buffers
}

// AddClient registers a packet consumer; every received frame is
// queued for all clients (the server does no protocol demux — clients
// filter, as a NIC driver VM would). As in the disk server, the
// per-client doorbell is created server-side and delegated to the
// client with call rights only.
func (ns *NetServer) AddClient(pd *hypervisor.PD, name string) (uint64, *hypervisor.Semaphore, error) {
	if err := grantChannelAuthority(ns.K, ns.PD, pd); err != nil {
		return 0, nil, err
	}
	bellSel := ns.PD.Caps.AllocSel()
	bell, err := ns.K.CreateSemaphore(ns.PD, bellSel, name+"-net-bell", 0)
	if err != nil {
		return 0, nil, err
	}
	if err := ns.K.DelegateCap(ns.PD, bellSel, pd, pd.Caps.AllocSel(), cap.RightCall); err != nil {
		return 0, nil, err
	}
	ns.nextID++
	ns.clients[ns.nextID] = &netClient{
		name: name, pd: pd, doorbell: bell,
		statPkts:  stat.Name("net_server_delivered_packets", "client", name),
		statBytes: stat.Name("net_server_delivered_bytes", "client", name),
	}
	return ns.nextID, bell, nil
}

// Receive drains a client's packet queue. Draining is the end of each
// frame's causal chain for this client; the frame's span closes when
// the last client holding it drains (exactly once per frame).
func (ns *NetServer) Receive(clientID uint64) [][]byte {
	cl := ns.clients[clientID]
	if cl == nil {
		return nil
	}
	pkts := cl.queue
	cl.queue = nil
	sps := cl.spans
	cl.spans = nil
	cpu, now := ns.K.CurCPU(), ns.K.Now()
	for _, sp := range sps {
		if sp == 0 {
			continue
		}
		if ns.spanRefs[sp]--; ns.spanRefs[sp] <= 0 {
			delete(ns.spanRefs, sp)
			ns.K.Spans.Close(cpu, now, sp, span.StatusOK)
		}
	}
	return pkts
}

// handleIRQ is the interrupt EC: harvest DD descriptors, copy out the
// payloads, return the slots, ring client doorbells.
func (ns *NetServer) handleIRQ() {
	ns.Stats.IRQs++
	ns.K.Stat.Add("net_server_irqs", ns.K.Now(), 1)
	ns.mmioRead(0x00c0) // ICR read-to-clear
	mem := ns.K.Plat.Mem
	delivered := map[*netClient]bool{}
	for {
		descAddr := hw.PhysAddr(ns.ringBase + uint64(ns.head)*16)
		status := mem.Read8(descAddr + 12)
		if status&1 == 0 {
			break
		}
		length := int(binary.LittleEndian.Uint16(mem.ReadBytes(descAddr+8, 2)))
		if length > netBufSize {
			// Cannot happen with hardware truncation, but a defensive
			// driver never trusts device-written lengths (§4.2).
			length = netBufSize
			ns.Stats.Truncated++
		}
		pkt := mem.ReadBytes(hw.PhysAddr(ns.bufBase+uint64(ns.head)*netBufSize), length)
		ns.Stats.Packets++
		ns.Stats.Bytes += uint64(length)
		// The harvested frame is a request origin. One span per frame,
		// assigned before the client fan-out loop (the map iteration
		// order must never influence span ID assignment).
		cpu := ns.K.CurCPU()
		sp := ns.K.Spans.Open(cpu, ns.K.Now(), span.ClassNetRX, span.SegServer, uint64(length))
		ns.K.Spans.Annotate(cpu, ns.K.Now(), sp, span.AnnotBytes, uint64(length))
		ns.K.ChargeUser(hw.Cycles(200 + length/8)) // copy + bookkeeping

		nDelivered := uint64(0)
		for _, cl := range ns.clients {
			if len(cl.queue) >= ns.MaxQueued {
				ns.Stats.Dropped++
				continue
			}
			cl.queue = append(cl.queue, pkt)
			if sp != 0 {
				cl.spans = append(cl.spans, sp)
				ns.spanRefs[sp]++
			}
			ns.Stats.Delivered++
			nDelivered++
			delivered[cl] = true
			if r := ns.K.Stat; r != nil {
				now := ns.K.Now()
				r.Add(cl.statPkts, now, 1)
				r.Add(cl.statBytes, now, uint64(length))
			}
		}
		ns.K.Tracer.Emit(ns.K.CurCPU(), ns.K.Now(), trace.KindNetRX, uint64(length), nDelivered, 0, 0)
		if sp != 0 {
			if nDelivered == 0 {
				// Every client backlogged: the frame is dropped.
				ns.K.Spans.Close(cpu, ns.K.Now(), sp, span.StatusError)
			} else {
				ns.K.Spans.Transition(cpu, ns.K.Now(), sp, span.SegQueue)
			}
		}

		mem.Write8(descAddr+12, 0)    // clear status
		ns.mmioWrite(0x2818, ns.head) // return the slot (RDT)
		ns.head = (ns.head + 1) % uint32(ns.slots)
	}
	for cl := range delivered {
		if cl.doorbell != nil {
			ns.K.SemUp(ns.PD, cl.doorbell) //nolint:errcheck
		}
	}
}

// StartNetServer allocates server memory and brings the network server
// up under root policy.
func (r *RootPM) StartNetServer() (*NetServer, error) {
	base, err := r.AllocPages("net-server", 33)
	if err != nil {
		return nil, err
	}
	return NewNetServer(r.K, base)
}
