package services

import (
	"strings"
	"testing"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/hypervisor"
)

func newStack(t *testing.T) (*hypervisor.Kernel, *RootPM) {
	t.Helper()
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 64 << 20})
	k := hypervisor.New(plat, hypervisor.Config{UseVPID: true})
	return k, NewRootPM(k)
}

func TestRootPMAllocation(t *testing.T) {
	_, root := newStack(t)
	a, err := root.AllocPages("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := root.AllocPages("b", 50)
	if err != nil {
		t.Fatal(err)
	}
	if b < a+100 {
		t.Errorf("allocations overlap: a=%d b=%d", a, b)
	}
	if len(root.Allocations()) != 2 {
		t.Errorf("allocations = %v", root.Allocations())
	}
	// Aligned allocation.
	c, err := root.AllocAligned("c", 512, 512)
	if err != nil {
		t.Fatal(err)
	}
	if c%512 != 0 {
		t.Errorf("aligned base = %d", c)
	}
	// Exhaustion.
	if _, err := root.AllocPages("huge", 1<<30); err == nil {
		t.Error("absurd allocation accepted")
	}
}

func TestDiskServerRequestCompletion(t *testing.T) {
	k, root := newStack(t)
	ds, err := root.StartDiskServer()
	if err != nil {
		t.Fatal(err)
	}
	// A fake client domain with a doorbell.
	client, err := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "client", false)
	if err != nil {
		t.Fatal(err)
	}
	pt, bell, id, err := ds.AddClient(client, "client")
	if err != nil {
		t.Fatal(err)
	}
	if err := DelegatePortal(k, ds.PD, pt, client, 100); err != nil {
		t.Fatal(err)
	}

	// Buffer inside client-visible RAM (we use a root-owned page).
	bufPage, _ := root.AllocPages("buf", 8)
	bufHPA := uint64(bufPage) << 12
	req := DiskRequest{Op: DiskOpRead, LBA: 500, Count: 8,
		Bufs: []DMASeg{{HPA: bufHPA, Len: 8 * hw.SectorSize}}, Cookie: 42}
	msg := &hypervisor.UTCB{Words: EncodeRequest(&req)}
	if err := k.Call(client, 100, msg); err != nil {
		t.Fatal(err)
	}
	if msg.Words[0] != 1 {
		t.Fatal("request rejected")
	}
	// Run until the interrupt thread posts the completion.
	k.Run(k.Now() + 100_000_000)
	recs := ds.Completions(id)
	if len(recs) != 1 || recs[0].Cookie != 42 || !recs[0].OK {
		t.Fatalf("completions = %+v", recs)
	}
	if bell.Ups == 0 {
		t.Error("doorbell not rung")
	}
	// Data correct.
	want := make([]byte, 8*hw.SectorSize)
	k.Plat.AHCI.Disk().ReadSectors(500, 8, want) //nolint:errcheck
	got := k.Plat.Mem.ReadBytes(hw.PhysAddr(bufHPA), len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("DMA data mismatch")
		}
	}
}

func TestDiskServerThrottlesFloodingClient(t *testing.T) {
	k, root := newStack(t)
	ds, err := root.StartDiskServer()
	if err != nil {
		t.Fatal(err)
	}
	ds.MaxOutstanding = 4
	client, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "flood", false)
	pt, _, _, err := ds.AddClient(client, "flood")
	if err != nil {
		t.Fatal(err)
	}
	if err := DelegatePortal(k, ds.PD, pt, client, 100); err != nil {
		t.Fatal(err)
	}
	bufPage, _ := root.AllocPages("buf", 1)
	accepted, rejected := 0, 0
	for i := 0; i < 10; i++ {
		req := DiskRequest{Op: DiskOpRead, LBA: uint64(i), Count: 1,
			Bufs: []DMASeg{{HPA: uint64(bufPage) << 12, Len: hw.SectorSize}}, Cookie: uint64(i)}
		msg := &hypervisor.UTCB{Words: EncodeRequest(&req)}
		if err := k.Call(client, 100, msg); err != nil {
			t.Fatal(err)
		}
		if msg.Words[0] == 1 {
			accepted++
		} else {
			rejected++
		}
	}
	if accepted != 4 || rejected != 6 {
		t.Errorf("accepted=%d rejected=%d, want 4/6", accepted, rejected)
	}
	if ds.Stats.Throttled != 6 {
		t.Errorf("throttled = %d", ds.Stats.Throttled)
	}
}

func TestDiskServerMalformedRequest(t *testing.T) {
	k, root := newStack(t)
	ds, err := root.StartDiskServer()
	if err != nil {
		t.Fatal(err)
	}
	client, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "bad", false)
	pt, _, _, _ := ds.AddClient(client, "bad")
	if err := DelegatePortal(k, ds.PD, pt, client, 100); err != nil {
		t.Fatal(err)
	}
	msg := &hypervisor.UTCB{Words: []uint64{1, 2}} // truncated
	if err := k.Call(client, 100, msg); err != nil {
		t.Fatal(err)
	}
	if msg.Words[0] != 0 {
		t.Error("malformed request accepted")
	}
	if ds.Stats.Failures != 1 {
		t.Errorf("failures = %d", ds.Stats.Failures)
	}
}

func TestRequestEncodingRoundTrip(t *testing.T) {
	r := DiskRequest{Op: DiskOpWrite, LBA: 0x123456789a, Count: 77, Cookie: 9,
		Bufs: []DMASeg{{HPA: 0x1000, Len: 512}, {HPA: 0x9000, Len: 1024}}}
	got, err := DecodeRequest(EncodeRequest(&r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != r.Op || got.LBA != r.LBA || got.Count != r.Count || got.Cookie != r.Cookie {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Bufs) != 2 || got.Bufs[1] != r.Bufs[1] {
		t.Errorf("bufs mismatch: %+v", got.Bufs)
	}
	if _, err := DecodeRequest([]uint64{1, 2, 3, 4, 9}); err == nil {
		t.Error("truncated scatter list accepted")
	}
}

func TestConsoleService(t *testing.T) {
	k, root := newStack(t)
	con, err := root.StartConsole()
	if err != nil {
		t.Fatal(err)
	}
	client, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "app", false)
	pt, id, err := con.AddClient("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := DelegatePortal(k, con.PD, pt, client, 7); err != nil {
		t.Fatal(err)
	}
	msg := &hypervisor.UTCB{Words: []uint64{'h', 'e', 'y'}}
	if err := k.Call(client, 7, msg); err != nil {
		t.Fatal(err)
	}
	if con.Log(id) != "hey" {
		t.Errorf("log = %q", con.Log(id))
	}
	// A client without the portal capability cannot log.
	other, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "other", false)
	if err := k.Call(other, 7, msg); err == nil {
		t.Error("call without capability succeeded")
	}
}

func TestDelegatePortalLeastPrivilege(t *testing.T) {
	k, root := newStack(t)
	con, _ := root.StartConsole()
	client, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "app", false)
	pt, _, _ := con.AddClient("app")
	if err := DelegatePortal(k, con.PD, pt, client, 7); err != nil {
		t.Fatal(err)
	}
	c, err := client.Caps.Lookup(7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rights != cap.RightCall {
		t.Errorf("client got rights %v, want call only", c.Rights)
	}
}

func TestDiskServerIOMMUConfined(t *testing.T) {
	// The AHCI controller is attached to a domain containing only the
	// driver's command memory plus transiently mapped client buffers —
	// DMA elsewhere is blocked.
	k, root := newStack(t)
	if _, err := root.StartDiskServer(); err != nil {
		t.Fatal(err)
	}
	u := k.Plat.IOMMU
	if _, ok := u.Domain(hw.AHCIDeviceID); !ok {
		t.Fatal("AHCI not attached to an IOMMU domain")
	}
	// Direct DMA into kernel-reserved memory must fail.
	err := u.DMAWrite(hw.AHCIDeviceID, 0x1000, []byte{0xee})
	if err == nil || !strings.Contains(err.Error(), "IOMMU") {
		t.Errorf("DMA into hypervisor memory: %v", err)
	}
}

func TestNetServerDeliversPackets(t *testing.T) {
	k, root := newStack(t)
	ns, err := root.StartNetServer()
	if err != nil {
		t.Fatal(err)
	}
	client, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "netclient", false)
	id, bell, err := ns.AddClient(client, "netclient")
	if err != nil {
		t.Fatal(err)
	}

	// Feed three packets from the wire.
	src := hw.NewPacketSource(k.Plat.NIC, k.Plat.Queue, k.Plat.BootCPU().Clock.Now,
		k.Plat.Cost.FreqMHz, 1472, 100, 3)
	src.Start()
	k.Run(k.Now() + 50_000_000)

	pkts := ns.Receive(id)
	if len(pkts) != 3 {
		t.Fatalf("client received %d packets, want 3 (server stats %+v)", len(pkts), ns.Stats)
	}
	for i, p := range pkts {
		if len(p) != 1472 {
			t.Errorf("packet %d length %d", i, len(p))
		}
	}
	if bell.Ups == 0 {
		t.Error("doorbell never rung")
	}
	if ns.Stats.IRQs == 0 {
		t.Error("no interrupts handled")
	}
	// The NIC's DMA went through its confined IOMMU domain.
	if k.Plat.IOMMU.DMABlocks != 0 {
		t.Errorf("IOMMU blocked %d legitimate accesses", k.Plat.IOMMU.DMABlocks)
	}
	if _, ok := k.Plat.IOMMU.Domain(hw.NICDeviceID); !ok {
		t.Error("NIC not confined to a domain")
	}
}

func TestNetServerJumboTruncatedSafely(t *testing.T) {
	// §4.2 Remote Attacks: an oversized frame cannot overflow the
	// server's 2 KiB buffers — the hardware truncates at the configured
	// buffer size and the driver distrusts device-written lengths.
	k, root := newStack(t)
	ns, err := root.StartNetServer()
	if err != nil {
		t.Fatal(err)
	}
	client, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "c", false)
	id, _, err := ns.AddClient(client, "c")
	if err != nil {
		t.Fatal(err)
	}

	src := hw.NewPacketSource(k.Plat.NIC, k.Plat.Queue, k.Plat.BootCPU().Clock.Now,
		k.Plat.Cost.FreqMHz, 9188, 100, 2)
	src.Start()
	k.Run(k.Now() + 80_000_000)

	pkts := ns.Receive(id)
	if len(pkts) != 2 {
		t.Fatalf("received %d packets", len(pkts))
	}
	for _, p := range pkts {
		if len(p) > 2048 {
			t.Errorf("packet of %d bytes escaped the buffer bound", len(p))
		}
	}
	// Neighbouring server memory (the descriptor ring) is intact:
	// descriptors still parse (status cleared, addresses sane).
	if ns.Stats.Packets != 2 {
		t.Errorf("server packets = %d", ns.Stats.Packets)
	}
}

func TestNetServerBackpressure(t *testing.T) {
	k, root := newStack(t)
	ns, err := root.StartNetServer()
	if err != nil {
		t.Fatal(err)
	}
	ns.MaxQueued = 4
	client, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "slow", false)
	id, _, err := ns.AddClient(client, "slow")
	if err != nil {
		t.Fatal(err)
	}

	src := hw.NewPacketSource(k.Plat.NIC, k.Plat.Queue, k.Plat.BootCPU().Clock.Now,
		k.Plat.Cost.FreqMHz, 64, 10, 10)
	src.Start()
	k.Run(k.Now() + 200_000_000)

	pkts := ns.Receive(id)
	if len(pkts) != 4 {
		t.Errorf("queued %d, want the cap of 4", len(pkts))
	}
	if ns.Stats.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", ns.Stats.Dropped)
	}
}
