// Package services contains the user-level environment that runs on top
// of the microhypervisor besides the VMMs: the root partition manager,
// the disk server with the host AHCI driver, the network server, and a
// console service (§4, Figure 2). All of them are ordinary deprivileged
// protection domains that interact with the kernel only through
// hypercalls and with each other only through portals and shared memory.
package services

import (
	"encoding/binary"
	"fmt"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/span"
	"nova/internal/stat"
	"nova/internal/trace"
)

// Disk protocol operations (the Words[0] tag of a disk portal message).
const (
	DiskOpRead  = 1
	DiskOpWrite = 2
)

// DiskRequest is one client request to the disk server. Buffers are
// host-physical ranges of the client's memory that the client has
// delegated for DMA (§4.2: "if the VMM delegates only the guest's DMA
// buffers, then the driver can only corrupt the data").
type DiskRequest struct {
	Op     int
	LBA    uint64
	Count  int // sectors
	Bufs   []DMASeg
	Cookie uint64 // client-chosen completion tag
}

// DMASeg is one scatter/gather element.
type DMASeg struct {
	HPA uint64
	Len int
}

// CompletionRecord is written into the memory region shared with the
// client when a request finishes (Figure 4, step 7).
type CompletionRecord struct {
	Cookie uint64
	OK     bool
}

// diskClient is the per-client channel state: its own portal, shared
// completion ring and doorbell semaphore (§4.2: "device drivers use a
// dedicated communication channel for each VMM").
type diskClient struct {
	id          uint64
	name        string
	pd          *hypervisor.PD
	completions []CompletionRecord // the shared-memory ring
	doorbell    *hypervisor.Semaphore
	throttled   bool
	requests    uint64

	// Precomputed per-client metric names (empty until a stat registry
	// attaches is fine: recording is nil-safe at the registry).
	statReqs     string
	statSectors  string
	statDMABytes string
}

// DiskServer owns the host AHCI controller and serves virtual-machine
// monitors. It runs as two ECs: the per-client portal handlers (on
// donated time) and an interrupt thread woken by the AHCI semaphore.
type DiskServer struct {
	K  *hypervisor.Kernel
	PD *hypervisor.PD

	ahciMMIO hw.PhysAddr
	irqSem   *hypervisor.Semaphore
	irqEC    *hypervisor.EC

	// Driver-owned memory for the command list and tables.
	clb  uint64
	ctba [32]uint64

	clients map[uint64]*diskClient
	nextID  uint64

	inflight [32]*pendingReq

	// MaxOutstanding throttles each client (DoS defence, §4.2).
	MaxOutstanding int

	// dmaDomain confines the controller's DMA to delegated memory when
	// the platform has an IOMMU.
	dmaDomain *hw.IOMMUDomain

	Stats struct {
		Requests  uint64
		Sectors   uint64
		IRQs      uint64
		Throttled uint64
		Failures  uint64
	}
}

type pendingReq struct {
	client *diskClient
	req    DiskRequest
	span   span.ID // the request's span, carried across the host IRQ
}

// NewDiskServer creates the disk server domain, claims the AHCI MMIO
// window and interrupt, allocates driver memory, and initializes the
// controller.
func NewDiskServer(k *hypervisor.Kernel, driverMemPage uint32) (*DiskServer, error) {
	pd, err := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "disk-server", false)
	if err != nil {
		return nil, err
	}
	ds := &DiskServer{
		K: k, PD: pd,
		ahciMMIO:       hw.AHCIMMIOBase,
		clients:        make(map[uint64]*diskClient),
		MaxOutstanding: 64,
		clb:            uint64(driverMemPage) << 12,
	}
	for i := range ds.ctba {
		ds.ctba[i] = ds.clb + 0x400 + uint64(i)*0x200
	}
	// Delegate driver memory (16 pages for command structures).
	if err := k.DelegateMem(k.Root, driverMemPage, pd, driverMemPage, 16, cap.RightRead|cap.RightWrite); err != nil {
		return nil, err
	}

	// Interrupt wiring: AHCI IRQ -> semaphore -> interrupt EC.
	sem, err := k.CreateSemaphore(k.Root, k.Root.Caps.AllocSel(), "ahci-irq", 0)
	if err != nil {
		return nil, err
	}
	ds.irqSem = sem
	ec, err := k.CreateEC(k.Root, k.Root.Caps.AllocSel(), pd, 0, "disk-irq", nil)
	if err != nil {
		return nil, err
	}
	ec.Run = ds.handleIRQ
	if _, err := k.CreateSC(k.Root, k.Root.Caps.AllocSel(), ec, 40, 1_000_000); err != nil {
		return nil, err
	}
	ds.irqEC = ec
	k.BindECToSemaphore(ec, sem)
	if err := k.AssignGSI(k.Root, hw.IRQAHCI, sem); err != nil {
		return nil, err
	}

	// On platforms with an IOMMU, the driver's controller is confined
	// to the memory explicitly delegated to it.
	if k.Plat.IOMMU != nil {
		dom := hw.NewIOMMUDomain("disk-server")
		// Identity-map the driver's own command memory.
		if err := dom.Map(ds.clb, ds.clb, 16*hw.PageSize, hw.IOMMURead|hw.IOMMUWrite); err != nil {
			return nil, err
		}
		k.Plat.IOMMU.Attach(hw.AHCIDeviceID, dom)
		ds.dmaDomain = dom
	}

	ds.initController()
	return ds, nil
}

// mmio32 accesses the host controller's registers.
func (ds *DiskServer) mmioRead(off uint32) uint32 {
	return ds.K.Plat.Mem.Read32(ds.ahciMMIO + hw.PhysAddr(off))
}

func (ds *DiskServer) mmioWrite(off uint32, v uint32) {
	ds.K.Plat.Mem.Write32(ds.ahciMMIO+hw.PhysAddr(off), v)
}

// AHCI register offsets used by the driver (mirrors the device model).
const (
	regGHC  = 0x04
	regIS   = 0x08
	portIS  = 0x110
	portIE  = 0x114
	portCMD = 0x118
	portCLB = 0x100
	portCI  = 0x138
)

func (ds *DiskServer) initController() {
	ds.mmioWrite(portCLB, uint32(ds.clb))
	ds.mmioWrite(portCLB+4, uint32(ds.clb>>32))
	ds.mmioWrite(portIE, 1|1<<30) // DHRS + TFES
	ds.mmioWrite(portCMD, 1|1<<4) // ST + FRE
	ds.mmioWrite(regGHC, 1<<1)    // interrupt enable
}

// AddClient creates a dedicated channel for a client VMM (§4.2: "device
// drivers use a dedicated communication channel for each VMM"): the
// server creates the client's doorbell semaphore and request portal in
// its own domain and delegates the doorbell with call rights only. The
// portal is returned for DelegatePortal. Registration is where the root
// PD brokers authority: the server receives control over the client
// domain so the delegations into it pass capability validation.
func (ds *DiskServer) AddClient(clientPD *hypervisor.PD, name string) (*hypervisor.Portal, *hypervisor.Semaphore, uint64, error) {
	if err := grantChannelAuthority(ds.K, ds.PD, clientPD); err != nil {
		return nil, nil, 0, err
	}
	bellSel := ds.PD.Caps.AllocSel()
	bell, err := ds.K.CreateSemaphore(ds.PD, bellSel, name+"-disk-bell", 0)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := ds.K.DelegateCap(ds.PD, bellSel, clientPD, clientPD.Caps.AllocSel(), cap.RightCall); err != nil {
		return nil, nil, 0, err
	}
	ds.nextID++
	id := ds.nextID
	cl := &diskClient{
		id: id, name: name, pd: clientPD, doorbell: bell,
		statReqs:     stat.Name("disk_server_requests", "client", name),
		statSectors:  stat.Name("disk_server_sectors", "client", name),
		statDMABytes: stat.Name("disk_server_dma_bytes", "client", name),
	}
	ds.clients[id] = cl
	pt, err := ds.K.CreatePortal(ds.PD, ds.PD.Caps.AllocSel(), "disk-"+name, id, 0, func(msg *hypervisor.UTCB) error {
		return ds.handleRequest(cl, msg)
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return pt, bell, id, nil
}

// Completions drains and returns the client's completion records (the
// client reads its shared region after a doorbell signal).
func (ds *DiskServer) Completions(clientID uint64) []CompletionRecord {
	cl := ds.clients[clientID]
	if cl == nil {
		return nil
	}
	recs := cl.completions
	cl.completions = nil
	return recs
}

// EncodeRequest packs a DiskRequest into UTCB words.
func EncodeRequest(r *DiskRequest) []uint64 {
	w := []uint64{uint64(r.Op), r.LBA, uint64(r.Count), r.Cookie, uint64(len(r.Bufs))}
	for _, b := range r.Bufs {
		w = append(w, b.HPA, uint64(b.Len))
	}
	return w
}

// MaxDMASegs bounds a request's scatter list: each command table is
// 0x200 bytes with the PRDT at offset 0x80, so at most (0x200-0x80)/16
// entries fit before a longer list would overwrite the next slot's
// table in driver memory.
const MaxDMASegs = 24

// DecodeRequest unpacks UTCB words.
func DecodeRequest(w []uint64) (DiskRequest, error) {
	if len(w) < 5 {
		return DiskRequest{}, fmt.Errorf("services: short disk request (%d words)", len(w))
	}
	r := DiskRequest{Op: int(w[0]), LBA: w[1], Count: int(w[2]), Cookie: w[3]}
	n := int(w[4])
	if n < 0 || n > MaxDMASegs {
		return DiskRequest{}, fmt.Errorf("services: scatter list of %d segments exceeds %d", n, MaxDMASegs)
	}
	if len(w) < 5+2*n {
		return DiskRequest{}, fmt.Errorf("services: truncated scatter list")
	}
	for i := 0; i < n; i++ {
		r.Bufs = append(r.Bufs, DMASeg{HPA: w[5+2*i], Len: int(w[6+2*i])})
	}
	return r, nil
}

// handleRequest runs on the client's donated SC: it validates, throttles
// and programs the host controller (Figure 4, steps 2-4). The caller's
// request span (propagated through the portal via the active stack)
// spends this handler in the server segment.
func (ds *DiskServer) handleRequest(cl *diskClient, msg *hypervisor.UTCB) error {
	cpu := ds.K.CurCPU()
	sp, prevSeg := ds.K.Spans.Current(cpu)
	ds.K.Spans.Transition(cpu, ds.K.Now(), sp, span.SegServer)
	err := ds.serveRequest(cl, msg, sp)
	ds.K.Spans.Transition(cpu, ds.K.Now(), sp, prevSeg)
	return err
}

func (ds *DiskServer) serveRequest(cl *diskClient, msg *hypervisor.UTCB, sp span.ID) error {
	req, err := DecodeRequest(msg.Words)
	if err != nil {
		ds.Stats.Failures++
		msg.Words = []uint64{0}
		return nil
	}
	outstanding := 0
	for _, p := range ds.inflight {
		if p != nil && p.client == cl {
			outstanding++
		}
	}
	if outstanding >= ds.MaxOutstanding {
		// Throttle a client flooding the channel (§4.2).
		ds.Stats.Throttled++
		cl.throttled = true
		msg.Words = []uint64{0}
		return nil
	}
	slot := -1
	for i := range ds.inflight {
		if ds.inflight[i] == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		ds.Stats.Throttled++
		msg.Words = []uint64{0}
		return nil
	}
	cl.requests++
	ds.Stats.Requests++
	ds.Stats.Sectors += uint64(req.Count)
	if r := ds.K.Stat; r != nil {
		now := ds.K.Now()
		r.Add(cl.statReqs, now, 1)
		r.Add(cl.statSectors, now, uint64(req.Count))
		dma := uint64(0)
		for _, b := range req.Bufs {
			dma += uint64(b.Len)
		}
		r.Add(cl.statDMABytes, now, dma)
	}
	ds.issue(slot, cl, req, sp)
	msg.Words = []uint64{1}
	return nil
}

// issue builds the command structures in driver memory and rings the
// controller. The client's DMA buffers are mapped into the controller's
// IOMMU domain for exactly the duration of the transfer.
func (ds *DiskServer) issue(slot int, cl *diskClient, req DiskRequest, sp span.ID) {
	mem := ds.K.Plat.Mem
	ctba := ds.ctba[slot]
	// Command header.
	hdr := uint32(5) | uint32(len(req.Bufs))<<16
	if req.Op == DiskOpWrite {
		hdr |= 1 << 6
	}
	mem.Write32(hw.PhysAddr(ds.clb+uint64(slot)*32), hdr)
	mem.Write32(hw.PhysAddr(ds.clb+uint64(slot)*32+8), uint32(ctba))
	mem.Write32(hw.PhysAddr(ds.clb+uint64(slot)*32+12), uint32(ctba>>32))
	// CFIS.
	var cfis [20]byte
	cfis[0] = 0x27
	cfis[1] = 0x80
	if req.Op == DiskOpWrite {
		cfis[2] = 0x35
	} else {
		cfis[2] = 0x25
	}
	cfis[4] = byte(req.LBA)
	cfis[5] = byte(req.LBA >> 8)
	cfis[6] = byte(req.LBA >> 16)
	cfis[7] = 0x40
	cfis[8] = byte(req.LBA >> 24)
	cfis[9] = byte(req.LBA >> 32)
	cfis[10] = byte(req.LBA >> 40)
	binary.LittleEndian.PutUint16(cfis[12:], uint16(req.Count))
	mem.WriteBytes(hw.PhysAddr(ctba), cfis[:])
	// PRDT pointing at the client's buffers.
	for i, b := range req.Bufs {
		base := ctba + 0x80 + uint64(i)*16
		mem.Write32(hw.PhysAddr(base), uint32(b.HPA))
		mem.Write32(hw.PhysAddr(base+4), uint32(b.HPA>>32))
		mem.Write32(hw.PhysAddr(base+12), uint32(b.Len-1))
		if ds.dmaDomain != nil {
			lo := b.HPA &^ (hw.PageSize - 1)
			hi := (b.HPA + uint64(b.Len) + hw.PageSize - 1) &^ (hw.PageSize - 1)
			ds.dmaDomain.Map(lo, lo, hi-lo, hw.IOMMURead|hw.IOMMUWrite) //nolint:errcheck
		}
	}
	ds.inflight[slot] = &pendingReq{client: cl, req: req, span: sp}
	ds.K.Tracer.Emit(ds.K.CurCPU(), ds.K.Now(), trace.KindDiskIssue, uint64(req.Op), req.LBA, uint64(req.Count), uint64(slot))
	ds.mmioWrite(portCI, 1<<uint(slot))
}

// handleIRQ is the interrupt EC body (Figure 4, steps 6-7): it drains
// completed slots, writes completion records and rings each client's
// doorbell.
func (ds *DiskServer) handleIRQ() {
	ds.Stats.IRQs++
	ds.K.Stat.Add("disk_server_irqs", ds.K.Now(), 1)
	is := ds.mmioRead(portIS)
	ds.mmioWrite(portIS, is) // acknowledge at the device
	ds.mmioWrite(regIS, 1)
	ci := ds.mmioRead(portCI)
	signaled := map[*diskClient]bool{}
	for slot, p := range ds.inflight {
		if p == nil || ci&(1<<uint(slot)) != 0 {
			continue // still in flight
		}
		ds.inflight[slot] = nil
		ok := is&(1<<30) == 0
		okBit := uint64(0)
		if ok {
			okBit = 1
		}
		ds.K.Tracer.Emit(ds.K.CurCPU(), ds.K.Now(), trace.KindDiskDone, p.req.Cookie, okBit, p.client.id, 0)
		// The span surfaces in the server segment for the drain, then
		// queues again until the client's completion EC is dispatched.
		ds.K.Spans.Transition(ds.K.CurCPU(), ds.K.Now(), p.span, span.SegServer)
		p.client.completions = append(p.client.completions, CompletionRecord{Cookie: p.req.Cookie, OK: ok})
		ds.K.Spans.Transition(ds.K.CurCPU(), ds.K.Now(), p.span, span.SegQueue)
		if ds.dmaDomain != nil {
			for _, b := range p.req.Bufs {
				lo := b.HPA &^ (hw.PageSize - 1)
				hi := (b.HPA + uint64(b.Len) + hw.PageSize - 1) &^ (hw.PageSize - 1)
				ds.dmaDomain.Unmap(lo, hi-lo)
			}
		}
		signaled[p.client] = true
	}
	for cl := range signaled {
		if cl.doorbell != nil {
			ds.K.SemUp(ds.PD, cl.doorbell) //nolint:errcheck
		}
	}
}
