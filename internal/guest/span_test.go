package guest

import (
	"bytes"
	"testing"

	"nova/internal/hw"
	"nova/internal/span"
)

// TestSpanABIdentity runs the determinism workloads with request-span
// recording off and on — with superblock fusion enabled and disabled —
// and requires bit-identical outcomes: same cycle totals, same
// encoded-trace hash, same final physical memory, same final vCPU
// state. Span recording is pure observation; any divergence here means
// a span call charged cycles or touched guest-visible state.
func TestSpanABIdentity(t *testing.T) {
	cases := []struct {
		name   string
		cfg    RunnerConfig
		img    []byte
		params []uint32
	}{
		{
			name:   "native-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeNative},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "ept-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "vtlb-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtVTLB},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "ept-disk-boot",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true, WithDiskServer: true},
			img:    MustBuild(DiskChecksumKernel()),
			params: []uint32{8, 4, 2000},
		},
	}
	fusion := []struct {
		name    string
		disable bool
	}{
		{"sb-on", false},
		{"sb-off", true},
	}
	for _, tc := range cases {
		for _, fu := range fusion {
			t.Run(tc.name+"/"+fu.name, func(t *testing.T) {
				off := tc.cfg
				off.DisableSuperblocks = fu.disable
				on := off
				on.SpanCapacity = 4096
				cOn, thOn, rhOn, stOn := cacheABRun(t, on, tc.img, tc.params)
				cOff, thOff, rhOff, stOff := cacheABRun(t, off, tc.img, tc.params)
				if cOn != cOff {
					t.Errorf("cycle totals differ: spans-on %d vs spans-off %d (Δ=%d)", cOn, cOff, int64(cOn)-int64(cOff))
				}
				if thOn != thOff {
					t.Errorf("trace hashes differ: spans-on %#x vs spans-off %#x", thOn, thOff)
				}
				if rhOn != rhOff {
					t.Errorf("final physical memory differs: spans-on %#x vs spans-off %#x", rhOn, rhOff)
				}
				if stOn != stOff {
					t.Errorf("final vCPU state differs:\n spans-on  %s\n spans-off %s", stOn, stOff)
				}
				t.Logf("%s/%s: %d cycles, trace %#x, ram %#x", tc.name, fu.name, cOn, thOn, rhOn)
			})
		}
	}
}

// spanRun executes the disk-checksum workload with spans attached and
// returns the recorder's encoded bytes.
func spanRun(t *testing.T) []byte {
	t.Helper()
	cfg := RunnerConfig{
		Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true,
		WithDiskServer: true, SpanCapacity: 4096,
	}
	r, err := NewRunner(cfg, MustBuild(DiskChecksumKernel()))
	if err != nil {
		t.Fatal(err)
	}
	writeParams(r, 8, 4, 2000)
	if _, err := r.RunUntilDone(10_000_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := r.EncodeSpans()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSpanDiskDecomposition checks the tentpole's core claims on the
// disk-boot workload: every disk request span closes, closes exactly
// once even though its completion crosses the vAHCI IRQ
// recall/injection boundary, carries a guest segment (proving the span
// stayed open across the injection), and its per-segment durations sum
// exactly to the end-to-end latency. Also checks double-run
// byte-identity of the encoded span file.
func TestSpanDiskDecomposition(t *testing.T) {
	b := spanRun(t)
	d, err := span.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Summary.Opened == 0 || d.Summary.Opened != d.Summary.Closed {
		t.Fatalf("summary opened=%d closed=%d, want equal and nonzero", d.Summary.Opened, d.Summary.Closed)
	}

	// Every span ID must carry exactly one close record: requests whose
	// completion is injected as a virtual interrupt (the
	// recall/injection boundary) must not be closed again when later
	// interrupts on the same line are acknowledged.
	closes := map[uint64]int{} // lookup+iteration order irrelevant: only checking counts
	for _, e := range d.Events() {
		if span.Kind(e.Kind) == span.KindClose {
			closes[e.A0]++
		}
	}
	for id, n := range closes {
		if n != 1 {
			t.Errorf("span %d closed %d times, want exactly once", id, n)
		}
	}

	spans := span.BuildSpans(d)
	var disk, withGuest int
	for _, s := range spans {
		if !s.Closed {
			t.Errorf("span %d (%s) never closed", uint64(s.ID), s.Name)
			continue
		}
		var sum int64
		for _, v := range s.Segs {
			sum += v
		}
		if sum != int64(s.Duration()) {
			t.Errorf("span %d (%s): segments sum to %d, end-to-end latency %d", uint64(s.ID), s.Name, sum, s.Duration())
		}
		if s.Class == span.ClassDisk {
			disk++
			for _, p := range s.Path {
				if p.Seg == span.SegGuest {
					withGuest++
					break
				}
			}
		}
	}
	if disk == 0 {
		t.Fatal("no disk request spans recorded")
	}
	if withGuest == 0 {
		t.Error("no disk span carries a guest segment (completion injection did not keep the span open)")
	}
	t.Logf("%d spans, %d disk requests, %d with guest segment", len(spans), disk, withGuest)

	// Determinism: a second identical run must produce the identical
	// encoded span file, byte for byte.
	if b2 := spanRun(t); !bytes.Equal(b, b2) {
		t.Error("double-run span files differ (encoding or recording is nondeterministic)")
	}
}
