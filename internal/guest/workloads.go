package guest

import "fmt"

// Parameter-block addresses: the harness writes workload parameters
// into guest memory before starting the kernel.
const (
	ParamBase = 0x5000
	// Progress counters the kernels export next to the marker.
	ProgressAddr = MarkerAddr + 4
)

// DiskReadKernel builds the Figure 6 workload: sequential reads of a
// fixed block size through the AHCI driver, one outstanding request at
// a time (direct I/O, cold cache — §8.2). Parameters at ParamBase:
//
//	+0:  sectors per request
//	+4:  number of requests
//	+8:  starting LBA
//	+20: per-request software iterations (the OS block-layer path a real
//	     kernel runs per request; divide-latency dominated)
func DiskReadKernel() KernelOpts {
	return KernelOpts{
		TimerHz: 100, // background scheduling timer, as a real OS has
		ExtraISRs: map[int]string{
			AHCIVector: AHCIISRBody(),
		},
		Fragments: AHCIDriverFragment() + "blk_seed: dd 99\n",
		Workload: fmt.Sprintf(`
	call ahci_init
	mov eax, [%#[1]x + 8]
	mov [cur_lba], eax
	mov dword [%#[2]x], 0
disk_loop:
	mov eax, [cur_lba]
	mov ecx, [%#[1]x]
	mov edi, 0x40000
	call ahci_read
	call ahci_wait
	; block-layer path (modeled per-request software cost)
	mov ecx, [%#[1]x + 20]
	jecxz blk_done
blk_loop:
	mov eax, [blk_seed]
	xor edx, edx
	mov ebx, 643
	div ebx
	add eax, 7
	mov [blk_seed], eax
	dec ecx
	jnz blk_loop
blk_done:
	mov eax, [cur_lba]
	add eax, [%#[1]x]
	mov [cur_lba], eax
	mov eax, [%#[2]x]
	inc eax
	mov [%#[2]x], eax
	cmp eax, [%#[1]x + 4]
	jnz disk_loop
	jmp finish
cur_lba: dd 0
`, ParamBase, ProgressAddr),
	}
}

// DiskChecksumKernel is DiskReadKernel plus a checksum of the data read
// (so correctness of the whole DMA path is asserted end-to-end).
// The 32-bit sum of every dword read lands at ParamBase+12.
func DiskChecksumKernel() KernelOpts {
	o := DiskReadKernel()
	o.Workload = fmt.Sprintf(`
	call ahci_init
	mov eax, [%#[1]x + 8]
	mov [cur_lba], eax
	mov dword [%#[2]x], 0
	mov dword [%#[1]x + 12], 0
disk_loop:
	mov eax, [cur_lba]
	mov ecx, [%#[1]x]
	mov edi, 0x40000
	call ahci_read
	call ahci_wait
	; checksum the block
	mov ecx, [%#[1]x]
	shl ecx, 7        ; sectors * 512 / 4 dwords
	mov esi, 0x40000
	mov edx, [%#[1]x + 12]
csum:
	add edx, [esi]
	add esi, 4
	dec ecx
	jnz csum
	mov [%#[1]x + 12], edx
	mov eax, [cur_lba]
	add eax, [%#[1]x]
	mov [cur_lba], eax
	mov eax, [%#[2]x]
	inc eax
	mov [%#[2]x], eax
	cmp eax, [%#[1]x + 4]
	jnz disk_loop
	jmp finish
cur_lba: dd 0
`, ParamBase, ProgressAddr)
	return o
}

// DiskWriteReadKernel writes a guest-generated pattern to disk, reads
// it back into a second buffer and compares — exercising the write
// direction of the whole stack (vAHCI -> disk server -> host AHCI ->
// media). Parameters at ParamBase: +0 sectors, +8 LBA. On success the
// pattern checksum is stored at ParamBase+12 and ParamBase+16 is 1.
func DiskWriteReadKernel() KernelOpts {
	return KernelOpts{
		TimerHz: 100,
		ExtraISRs: map[int]string{
			AHCIVector: AHCIISRBody(),
		},
		Fragments: AHCIDriverFragment(),
		Workload: fmt.Sprintf(`
	call ahci_init
	; generate the pattern at 0x40000
	mov edi, 0x40000
	mov ecx, [%#[1]x]
	shl ecx, 7
	mov eax, 0x1337c0de
gen:
	mov [edi], eax
	add eax, 0x9e3779b9
	add edi, 4
	dec ecx
	jnz gen
	; write it out
	mov eax, [%#[1]x + 8]
	mov ecx, [%#[1]x]
	mov edi, 0x40000
	call ahci_write
	call ahci_wait
	; read it back elsewhere
	mov eax, [%#[1]x + 8]
	mov ecx, [%#[1]x]
	mov edi, 0x60000
	call ahci_read
	call ahci_wait
	; compare and checksum
	mov esi, 0x40000
	mov edi, 0x60000
	mov ecx, [%#[1]x]
	shl ecx, 7
	xor edx, edx
	mov dword [%#[1]x + 16], 1
cmp_loop:
	mov eax, [esi]
	cmp eax, [edi]
	jz cmp_ok
	mov dword [%#[1]x + 16], 0
cmp_ok:
	add edx, eax
	add esi, 4
	add edi, 4
	dec ecx
	jnz cmp_loop
	mov [%#[1]x + 12], edx
	jmp finish
`, ParamBase),
	}
}

// ComputeKernel builds a pure compute/memory workload used by the
// microbenchmark-style tests: it walks a memory arena with a stride,
// doing arithmetic per step. Parameters at ParamBase:
//
//	+0: iterations (outer)
//	+4: arena size in bytes (walked per iteration, 4-byte stride)
func ComputeKernel(paging, largePages bool, mapMB int) KernelOpts {
	return buildComputeKernel(paging, largePages, mapMB, false)
}

// ComputeKernelWithSwitches is ComputeKernel plus a CR3 reload per
// outer iteration, modeling the address-space switches of a
// multitasking guest — the events that make shadow paging expensive
// (§5.3: vTLB flush on CR writes).
func ComputeKernelWithSwitches(paging, largePages bool, mapMB int) KernelOpts {
	return buildComputeKernel(paging, largePages, mapMB, true)
}

func buildComputeKernel(paging, largePages bool, mapMB int, cr3Switch bool) KernelOpts {
	sw := ""
	if cr3Switch && paging {
		sw = "	mov eax, cr3\n	mov cr3, eax\n"
	}
	return KernelOpts{
		Paging:          paging,
		LargeGuestPages: largePages,
		MapMB:           mapMB,
		TimerHz:         100,
		Workload: fmt.Sprintf(`
	mov dword [%#[2]x], 0
	mov ebp, [%#[1]x]
outer:
	mov esi, 0x100000
	mov ecx, [%#[1]x + 4]
	shr ecx, 2
	xor eax, eax
inner:
	add eax, [esi]
	mov [esi], eax
	add esi, 4
	dec ecx
	jnz inner
%[3]s	mov eax, [%#[2]x]
	inc eax
	mov [%#[2]x], eax
	dec ebp
	jnz outer
	jmp finish
`, ParamBase, ProgressAddr, sw),
	}
}
