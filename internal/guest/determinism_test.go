package guest

import (
	"fmt"
	"testing"

	"nova/internal/hw"
)

// determinismRun boots one workload on a fresh platform and returns the
// final cycle count plus the FNV hash of the full encoded trace (every
// event's kind, payload, virtual timestamp and sequence number, plus
// all counters and histograms).
//
// This is the property the whole evaluation rests on — same inputs →
// identical virtual time — and the runtime counterpart of the nova-vet
// determinism analyzer: the analyzer forbids the *sources* of
// nondeterminism statically; this test detects any that slip through
// (map iteration feeding state, scheduling order drift, hidden
// wall-clock dependence).
func determinismRun(t *testing.T, cfg RunnerConfig, img []byte, params []uint32) (hw.Cycles, uint64, uint64) {
	t.Helper()
	cfg.TraceCapacity = 4096
	r, err := NewRunner(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	r.Chunk = 100_000
	writeParams(r, params...)
	cycles, err := r.RunUntilDone(10_000_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var exits uint64
	for _, n := range r.Tracer.ExitCounts {
		exits += n
	}
	return cycles, r.Tracer.Hash(), exits
}

// TestDeterministicBootDoubleRun boots the same guest workload twice on
// fresh platforms and requires bit-identical results: the same final
// cycle count and the same encoded-trace hash. It covers both paging
// modes and a disk-backed boot, the paths with the most asynchronous
// machinery (event queue, interrupt injection, DMA completions).
func TestDeterministicBootDoubleRun(t *testing.T) {
	cases := []struct {
		name   string
		cfg    RunnerConfig
		img    []byte
		params []uint32
	}{
		{
			name:   "ept-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "vtlb-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtVTLB},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "ept-disk-boot",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true, WithDiskServer: true},
			img:    MustBuild(DiskChecksumKernel()),
			params: []uint32{8, 4, 2000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c1, h1, n1 := determinismRun(t, tc.cfg, tc.img, tc.params)
			c2, h2, n2 := determinismRun(t, tc.cfg, tc.img, tc.params)
			if n1 == 0 {
				t.Fatal("tracer observed no VM exits; the workload did not exercise virtualization")
			}
			if c1 != c2 {
				t.Errorf("cycle counts differ between identical runs: %d vs %d (Δ=%d)", c1, c2, int64(c2)-int64(c1))
			}
			if n1 != n2 {
				t.Errorf("exit counts differ between identical runs: %d vs %d", n1, n2)
			}
			if h1 != h2 {
				t.Errorf("trace hashes differ between identical runs: %#x vs %#x", h1, h2)
			}
			t.Logf("%s: %d cycles, %d exits, trace %s", tc.name, c1, n1, fmt.Sprintf("%#x", h1))
		})
	}
}
