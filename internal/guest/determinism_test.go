package guest

import (
	"fmt"
	"hash/fnv"
	"testing"

	"nova/internal/hw"
)

// determinismRun boots one workload on a fresh platform and returns the
// final cycle count plus the FNV hash of the full encoded trace (every
// event's kind, payload, virtual timestamp and sequence number, plus
// all counters and histograms).
//
// This is the property the whole evaluation rests on — same inputs →
// identical virtual time — and the runtime counterpart of the nova-vet
// determinism analyzer: the analyzer forbids the *sources* of
// nondeterminism statically; this test detects any that slip through
// (map iteration feeding state, scheduling order drift, hidden
// wall-clock dependence).
func determinismRun(t *testing.T, cfg RunnerConfig, img []byte, params []uint32) (hw.Cycles, uint64, uint64) {
	t.Helper()
	cfg.TraceCapacity = 4096
	r, err := NewRunner(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	r.Chunk = 100_000
	writeParams(r, params...)
	cycles, err := r.RunUntilDone(10_000_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var exits uint64
	for _, n := range r.Tracer.ExitCounts {
		exits += n
	}
	return cycles, r.Tracer.Hash(), exits
}

// TestDeterministicBootDoubleRun boots the same guest workload twice on
// fresh platforms and requires bit-identical results: the same final
// cycle count and the same encoded-trace hash. It covers both paging
// modes and a disk-backed boot, the paths with the most asynchronous
// machinery (event queue, interrupt injection, DMA completions).
func TestDeterministicBootDoubleRun(t *testing.T) {
	cases := []struct {
		name   string
		cfg    RunnerConfig
		img    []byte
		params []uint32
	}{
		{
			name:   "ept-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "vtlb-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtVTLB},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "ept-disk-boot",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true, WithDiskServer: true},
			img:    MustBuild(DiskChecksumKernel()),
			params: []uint32{8, 4, 2000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c1, h1, n1 := determinismRun(t, tc.cfg, tc.img, tc.params)
			c2, h2, n2 := determinismRun(t, tc.cfg, tc.img, tc.params)
			if n1 == 0 {
				t.Fatal("tracer observed no VM exits; the workload did not exercise virtualization")
			}
			if c1 != c2 {
				t.Errorf("cycle counts differ between identical runs: %d vs %d (Δ=%d)", c1, c2, int64(c2)-int64(c1))
			}
			if n1 != n2 {
				t.Errorf("exit counts differ between identical runs: %d vs %d", n1, n2)
			}
			if h1 != h2 {
				t.Errorf("trace hashes differ between identical runs: %#x vs %#x", h1, h2)
			}
			t.Logf("%s: %d cycles, %d exits, trace %s", tc.name, c1, n1, fmt.Sprintf("%#x", h1))
		})
	}
}

// cacheABRun boots one workload and returns the final cycle count, the
// trace hash (0 in native mode, which has no tracer), an FNV hash of all
// physical RAM, and the final vCPU state rendering.
func cacheABRun(t *testing.T, cfg RunnerConfig, img []byte, params []uint32) (hw.Cycles, uint64, uint64, string) {
	t.Helper()
	if cfg.Mode != ModeNative {
		cfg.TraceCapacity = 4096
	}
	r, err := NewRunner(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	r.Chunk = 100_000
	writeParams(r, params...)
	cycles, err := r.RunUntilDone(10_000_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var traceHash uint64
	if r.Tracer != nil {
		traceHash = r.Tracer.Hash()
	}
	h := fnv.New64a()
	h.Write(r.Plat.Mem.RAM())
	var state string
	if v := r.VCPU(); v != nil {
		state = v.State.String()
	} else {
		state = r.BM.State.String()
	}
	return cycles, traceHash, h.Sum64(), state
}

// TestDecodeCacheABIdentity runs the determinism workloads with the
// decoded-instruction cache force-disabled and force-enabled and
// requires bit-identical outcomes: same cycle totals, same encoded-trace
// hash, same final physical memory, same final vCPU state. The cache is
// host-side performance machinery only; any divergence here means it
// leaked into the simulation (a charge, an event, or guest-visible
// state).
func TestDecodeCacheABIdentity(t *testing.T) {
	cases := []struct {
		name   string
		cfg    RunnerConfig
		img    []byte
		params []uint32
	}{
		{
			name:   "native-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeNative},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "ept-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "vtlb-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtVTLB},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "ept-disk-boot",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true, WithDiskServer: true},
			img:    MustBuild(DiskChecksumKernel()),
			params: []uint32{8, 4, 2000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			on := tc.cfg
			on.DisableDecodeCache = false
			off := tc.cfg
			off.DisableDecodeCache = true
			cOn, thOn, rhOn, stOn := cacheABRun(t, on, tc.img, tc.params)
			cOff, thOff, rhOff, stOff := cacheABRun(t, off, tc.img, tc.params)
			if cOn != cOff {
				t.Errorf("cycle totals differ: cache-on %d vs cache-off %d (Δ=%d)", cOn, cOff, int64(cOn)-int64(cOff))
			}
			if thOn != thOff {
				t.Errorf("trace hashes differ: cache-on %#x vs cache-off %#x", thOn, thOff)
			}
			if rhOn != rhOff {
				t.Errorf("final physical memory differs: cache-on %#x vs cache-off %#x", rhOn, rhOff)
			}
			if stOn != stOff {
				t.Errorf("final vCPU state differs:\n cache-on  %s\n cache-off %s", stOn, stOff)
			}
			t.Logf("%s: %d cycles, trace %#x, ram %#x", tc.name, cOn, thOn, rhOn)
		})
	}
}
