package guest

import (
	"testing"

	"nova/internal/hw"
	"nova/internal/x86"
)

// runCompile executes the compile workload under one configuration.
func runCompile(t *testing.T, cfg RunnerConfig, slices, cache, priv, filler, disk uint32) (*Runner, hw.Cycles) {
	t.Helper()
	img := MustBuild(CompileKernel(667))
	switch cfg.Mode {
	case ModeVirtEPT, ModeVirtVTLB:
		cfg.WithDiskServer = disk != 0
	}
	r, err := NewRunner(cfg, img)
	if err != nil {
		t.Fatalf("%v: %v", cfg.Mode, err)
	}
	writeParams(r, slices, cache, priv, filler, disk)
	cycles, err := r.RunUntilDone(20_000_000_000)
	if err != nil {
		t.Fatalf("%v: %v", cfg.Mode, err)
	}
	if got := r.ReadGuest32(ProgressAddr); got != slices {
		t.Fatalf("%v: progress = %d, want %d", cfg.Mode, got, slices)
	}
	return r, cycles
}

func TestCompileWorkloadNative(t *testing.T) {
	r, cycles := runCompile(t, RunnerConfig{Model: hw.BLM, Mode: ModeNative}, 8, 128, 16, 2000, 1)
	if cycles == 0 {
		t.Fatal("no cycles")
	}
	// Demand faults occurred and were handled inside the guest.
	if pf := r.ReadGuest32(ParamBase + 0x30); pf == 0 {
		t.Error("no guest demand faults")
	}
	// Disk reads happened.
	if r.Plat.AHCI.Stats.Commands == 0 {
		t.Error("no disk commands")
	}
}

func TestCompileWorkloadRelativePerformance(t *testing.T) {
	// The Figure 5 ordering: native <= direct <= EPT << vTLB.
	const slices, cache, priv, filler, disk = 10, 256, 32, 20000, 0
	times := map[Mode]hw.Cycles{}
	var vtlbRunner *Runner
	for _, mode := range []Mode{ModeNative, ModeDirect, ModeVirtEPT, ModeVirtVTLB} {
		r, cy := runCompile(t, RunnerConfig{
			Model: hw.BLM, Mode: mode, UseVPID: true, HostLargePages: true,
			DirectNoExits: mode == ModeDirect,
		}, slices, cache, priv, filler, disk)
		times[mode] = cy
		if mode == ModeVirtVTLB {
			vtlbRunner = r
		}
	}
	t.Logf("native=%d direct=%d ept=%d vtlb=%d", times[ModeNative], times[ModeDirect], times[ModeVirtEPT], times[ModeVirtVTLB])
	if times[ModeDirect] < times[ModeNative] {
		t.Errorf("direct (%d) beat native (%d)", times[ModeDirect], times[ModeNative])
	}
	if times[ModeVirtEPT] < times[ModeDirect] {
		t.Errorf("EPT (%d) beat direct (%d)", times[ModeVirtEPT], times[ModeDirect])
	}
	// vTLB must be substantially slower (paper: ~72% of native perf).
	if float64(times[ModeVirtVTLB]) < float64(times[ModeVirtEPT])*1.1 {
		t.Errorf("vTLB (%d) not clearly slower than EPT (%d)", times[ModeVirtVTLB], times[ModeVirtEPT])
	}
	// EPT overhead over native should be small (paper: ~1%; allow 6%).
	over := float64(times[ModeVirtEPT])/float64(times[ModeNative]) - 1
	if over > 0.06 {
		t.Errorf("EPT overhead = %.1f%%, want small", over*100)
	}
	// And the vTLB exits are dominated by fills (Table 2).
	if vtlbRunner.K.Stats.VTLBFills == 0 || vtlbRunner.K.Stats.VTLBFlushes == 0 {
		t.Errorf("vTLB stats: fills=%d flushes=%d", vtlbRunner.K.Stats.VTLBFills, vtlbRunner.K.Stats.VTLBFlushes)
	}
}

func TestCompileEventDistribution(t *testing.T) {
	// Table 2's qualitative shape under EPT: port I/O is the most
	// frequent exit, followed by hardware interrupts; HLT is rare.
	r, _ := runCompile(t, RunnerConfig{
		Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true, HostLargePages: true,
	}, 16, 128, 16, 8000, 1)
	v := r.VCPU()
	io := v.Exits[x86.ExitIO]
	ext := v.Exits[x86.ExitExternalInterrupt]
	mmio := v.Exits[x86.ExitEPTViolation]
	hlt := v.Exits[x86.ExitHLT]
	t.Logf("io=%d ext=%d mmio=%d hlt=%d inj=%d", io, ext, mmio, hlt, v.InjectedIRQs)
	if io == 0 || ext == 0 || mmio == 0 {
		t.Fatalf("missing event classes: io=%d ext=%d mmio=%d", io, ext, mmio)
	}
	if io <= ext {
		t.Errorf("port I/O (%d) should dominate external interrupts (%d)", io, ext)
	}
	if hlt > io {
		t.Errorf("hlt (%d) should be rare", hlt)
	}
	if v.InjectedIRQs == 0 {
		t.Error("no injections")
	}
}

func TestCompileVPIDEffect(t *testing.T) {
	// Without VPID the hardware TLB flushes on every transition,
	// costing refills (Figure 5's second group).
	const slices, cache, priv, filler = 8, 256, 16, 20000
	timesByVPID := map[bool]hw.Cycles{}
	for _, vpid := range []bool{true, false} {
		_, cy := runCompile(t, RunnerConfig{
			Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: vpid, HostLargePages: false,
		}, slices, cache, priv, filler, 0)
		timesByVPID[vpid] = cy
	}
	t.Logf("vpid=%d novpid=%d", timesByVPID[true], timesByVPID[false])
	if timesByVPID[false] <= timesByVPID[true] {
		t.Errorf("no-VPID (%d) not slower than VPID (%d)", timesByVPID[false], timesByVPID[true])
	}
}

func TestCompileHostPageSizeEffect(t *testing.T) {
	// Small host pages raise TLB pressure (Figure 5's third group).
	const slices, cache, priv, filler = 8, 1024, 16, 20000
	times := map[bool]hw.Cycles{}
	for _, large := range []bool{true, false} {
		_, cy := runCompile(t, RunnerConfig{
			Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true, HostLargePages: large,
		}, slices, cache, priv, filler, 0)
		times[large] = cy
	}
	t.Logf("large=%d small=%d", times[true], times[false])
	if times[false] <= times[true] {
		t.Errorf("small host pages (%d) not slower than large (%d)", times[false], times[true])
	}
}
