package guest

import "fmt"

// CompileKernel builds the Linux-kernel-compilation stand-in of §8.1:
// a multitasking guest OS with four "compiler processes", each with its
// own address space. The timer interrupt drives round-robin context
// switches (CR3 reloads — the events that hurt shadow paging), the
// interrupt path masks/EOIs/unmasks at the PIC (the dominant "Port I/O"
// row of Table 2), each timeslice streams through a PSE-mapped page
// cache (TLB pressure: the small-vs-large host page comparison) and
// demand-faults private pages (guest page faults), every few slices a
// block is read from disk, and the compute itself is divide-heavy
// arithmetic.
//
// Parameters at ParamBase:
//
//	+0:  total timeslices to run
//	+4:  page-cache pages in the working set (<= 1024)
//	+8:  private pages touched per slice (<= 512)
//	+12: filler iterations per subslice (divide latency dominates)
//	+16: disk reads enabled (0/1)
//	+20: subslices per timeslice (default 1); memory touching and
//	     compute interleave per subslice, so warm TLB state has value
//	     and untagged VM transitions cost refills (Figure 5's
//	     "EPT w/o VPID" delta)
//
// Progress (slices completed) is published at ProgressAddr; the number
// of demand faults at ParamBase+0x30.
func CompileKernel(timerHz int) KernelOpts {
	if timerHz == 0 {
		timerHz = 667 // one slice ≈ 4M cycles at 2.67 GHz
	}
	const (
		pdBase   = 0x30000 // four page directories
		ptBase   = 0x34000 // four private-region page tables
		privVA   = 0x800000
		privPhys = 0x800000
		cacheVA  = 0x400000
		pfCount  = ParamBase + 0x30
	)
	return KernelOpts{
		TimerHz: timerHz,
		ExtraISRs: map[int]string{
			// Timer tick: mask IRQ0, account, unmask — the PIC port
			// accesses that dominate Table 2's Port I/O row. Process
			// switches happen at the scheduler's own pace (end of a
			// timeslice in the work loop), not on every tick, as in a
			// real kernel where CR3 writes outnumber timer interrupts.
			0x20: `	in al, 0x21
	or al, 1
	out 0x21, al
	in al, 0x21
	and al, 0xfe
	out 0x21, al`,
			// #PF: demand-map the private page of the current process.
			14: fmt.Sprintf(`	push ebx
	push ecx
	push edx
	mov eax, cr2
	mov ebx, eax
	shr ebx, 12
	and ebx, 0x3ff
	mov ecx, [cur_proc]
	mov edx, ecx
	shl edx, 21
	add edx, %#x
	mov eax, ebx
	shl eax, 12
	add eax, edx
	or eax, 3
	shl ecx, 12
	add ecx, %#x
	mov [ecx + ebx*4], eax
	mov eax, [%#x]
	inc eax
	mov [%#x], eax
	pop edx
	pop ecx
	pop ebx`, privPhys, ptBase, pfCount, pfCount),
			AHCIVector: AHCIISRBody(),
		},
		Fragments: AHCIDriverFragment() + `
mt_on: dd 0
cur_proc: dd 0
slice_no: dd 0
sub_no: dd 0
csum: dd 0
seed: dd 123456789
`,
		Workload: fmt.Sprintf(`
	call ahci_init
	mov dword [%#[7]x], 0
	; ---- build four process address spaces ----
	mov edi, %#[1]x
	mov ecx, 8192
	xor eax, eax
zpd:
	mov [edi], eax
	add edi, 4
	dec ecx
	jnz zpd
	mov ebx, 0
pd_fill:
	mov edi, ebx
	shl edi, 12
	add edi, %#[1]x
	mov dword [edi], 0x83
	mov dword [edi+4], 0x400083
	mov eax, ebx
	shl eax, 12
	add eax, %#[2]x
	or eax, 3
	mov [edi+8], eax
	mov dword [edi+0xfe8], 0xfeb00083
	inc ebx
	cmp ebx, 4
	jnz pd_fill
	mov eax, cr4
	or eax, 0x10
	mov cr4, eax
	mov eax, %#[1]x
	mov cr3, eax
	mov eax, cr0
	or eax, 0x80000000
	mov cr0, eax
	mov dword [mt_on], 1
	; ---- timeslice loop ----
	; A timeslice consists of param+20 subslices; each subslice touches
	; the page-cache and private working sets and then computes. The
	; interleaving is what makes warm TLB state valuable: an untagged VM
	; transition mid-slice forces the next subslice to repay the walks
	; (the "EPT w/o VPID" delta of Figure 5).
slice_loop:
	mov eax, [%#[4]x + 20]
	test eax, eax
	jnz have_subs
	mov eax, 1
have_subs:
	mov [sub_no], eax
sub_loop:
	; page-cache working set (PSE-mapped region)
	mov esi, %#[3]x
	mov ecx, [%#[4]x + 4]
pc_loop:
	mov eax, [esi]
	add [csum], eax
	add esi, 4096
	dec ecx
	jnz pc_loop
	; private working set (demand-paged 4K pages, per process)
	mov esi, %#[5]x
	mov ecx, [%#[4]x + 8]
priv_loop:
	mov eax, [esi]
	inc eax
	mov [esi], eax
	add esi, 4096
	dec ecx
	jnz priv_loop
	; compute (divide-latency dominated)
	mov ecx, [%#[4]x + 12]
	jecxz fill_done
fill_loop:
	mov eax, [seed]
	xor edx, edx
	mov ebx, 641
	div ebx
	add eax, edx
	add eax, 12345
	mov [seed], eax
	dec ecx
	jnz fill_loop
fill_done:
	mov eax, [sub_no]
	dec eax
	mov [sub_no], eax
	jnz sub_loop
	mov eax, [slice_no]
	inc eax
	mov [slice_no], eax
	mov [%#[6]x], eax
	; disk read every 4th slice
	test eax, 3
	jnz no_disk
	cmp dword [%#[4]x + 16], 0
	jz no_disk
	mov eax, [slice_no]
	and eax, 0xff
	add eax, 10000
	mov ecx, 32
	mov edi, 0x600000
	call ahci_read
	call ahci_wait
no_disk:
	; TLB maintenance a kernel would do (unmap): INVLPG every 2nd slice
	mov eax, [slice_no]
	test eax, 1
	jnz no_inv
	invlpg [%#[5]x]
no_inv:
	; end of timeslice: the scheduler picks the next process
	; (CR3 reload — the event that makes shadow paging expensive, §5.3)
	mov ebx, [cur_proc]
	inc ebx
	and ebx, 3
	mov [cur_proc], ebx
	shl ebx, 12
	add ebx, %#[1]x
	mov cr3, ebx
	mov eax, [slice_no]
	cmp eax, [%#[4]x]
	jb slice_loop
	jmp finish
`, pdBase, ptBase, cacheVA, ParamBase, privVA, ProgressAddr, pfCount),
	}
}

// PDE index 0x3fa (VA 0xfe800000..0xfebfffff) times 4 = 0xfe8: the MMIO
// window PDE offset used above.
