package guest

import (
	"fmt"

	"nova/internal/hw"
	"nova/internal/hypervisor"
	"nova/internal/prof"
	"nova/internal/services"
	"nova/internal/span"
	"nova/internal/stat"
	"nova/internal/trace"
	"nova/internal/vmm"
	"nova/internal/x86"
)

// Mode selects the execution configuration a kernel runs under — the
// columns of the paper's evaluation.
type Mode int

// Execution configurations.
const (
	// ModeNative runs on the bare platform (the paper's baseline).
	ModeNative Mode = iota
	// ModeDirect runs in a VM with all host devices and interrupts
	// assigned directly to the guest (Figure 5 "Direct", Figures 6/7
	// "Direct").
	ModeDirect
	// ModeVirtEPT is full virtualization with hardware nested paging.
	ModeVirtEPT
	// ModeVirtVTLB is full virtualization with shadow paging.
	ModeVirtVTLB
)

func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeDirect:
		return "direct"
	case ModeVirtEPT:
		return "ept"
	case ModeVirtVTLB:
		return "vtlb"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// RunnerConfig selects the platform and virtualization parameters.
type RunnerConfig struct {
	Model          hw.CPUModel
	Mode           Mode
	UseVPID        bool
	HostLargePages bool
	MemPages       int // guest memory, default 4096 pages (16 MiB)
	RAMSize        uint64
	NICCoalesce    int
	DiskMBs        float64
	DiskIOPS       float64

	// WithDiskServer wires the disk server + virtual AHCI (only
	// meaningful for the fully virtualized modes).
	WithDiskServer bool
	// PassthroughAHCI / PassthroughNIC assign host devices (Direct).
	PassthroughAHCI bool
	PassthroughNIC  bool

	// DirectNoExits reproduces §8.1's "Direct" bar: all intercepts
	// disabled, every host device, port and interrupt assigned to the
	// guest; the only remaining cost is the nested page walk.
	DirectNoExits bool

	// SchedTimerHz is the microhypervisor's preemption timer frequency
	// for virtualized runs (0 disables it; DirectNoExits implies off).
	SchedTimerHz int

	// Ablation switches (forwarded to the kernel config).
	DisableMTDOpt       bool
	DisableDirectSwitch bool
	DisableVTLBTrick    bool

	// DisableDecodeCache turns off the interpreter's host-side
	// decoded-instruction cache (all modes). Results must be
	// bit-identical either way; see hypervisor.Config.
	DisableDecodeCache bool

	// DisableSuperblocks turns off fused superblock execution on top
	// of the decode cache (all modes). Results must be bit-identical
	// either way; see hypervisor.Config.
	DisableSuperblocks bool

	// TraceCapacity, when non-zero, attaches a tracer with per-CPU
	// event rings of that many entries once the stack is built (so
	// construction noise is excluded from the trace). Only meaningful
	// for the virtualized modes.
	TraceCapacity int

	// ProfilePeriod, when non-zero, attaches the virtual-time sampling
	// profiler with one sample every that many virtual cycles. Works in
	// every mode, native included. Zero-perturbation: cycle totals,
	// traces and final state are bit-identical with profiling on or
	// off.
	ProfilePeriod uint64
	// ProfileCapacity is the per-CPU sample-buffer capacity (default
	// 65536 samples when ProfilePeriod is set).
	ProfileCapacity int

	// StatEpoch, when non-zero, attaches the resource-accounting
	// registry with that virtual-time epoch length in cycles (use
	// stat.DefaultEpochLen for the default; zero leaves accounting
	// off). Works in every mode, native included. Zero-perturbation:
	// cycle totals, traces and final state are bit-identical with
	// accounting on or off.
	StatEpoch hw.Cycles

	// SpanCapacity, when non-zero, attaches the request-span recorder
	// with per-CPU rings of that many records. Only meaningful for the
	// virtualized modes (request origins live in the VMM and servers).
	// Zero-perturbation like the tracer: bit-identical runs either way.
	SpanCapacity int
}

// Runner executes one guest kernel under one configuration and exposes
// the measurement hooks the benchmarks use.
type Runner struct {
	Cfg  RunnerConfig
	Plat *hw.Platform

	// Native configuration.
	BM *hypervisor.BareMetal

	// Virtualized configurations.
	K    *hypervisor.Kernel
	Root *services.RootPM
	DS   *services.DiskServer
	VMM  *vmm.VMM

	// Chunk is the scheduling/polling granularity of RunUntilDone.
	Chunk hw.Cycles

	// Tracer is the event tracer, set when Cfg.TraceCapacity > 0.
	Tracer *trace.Tracer

	// Prof is the sampling profiler, set when Cfg.ProfilePeriod > 0.
	Prof *prof.Profiler

	// Stat is the resource-accounting registry, set when Cfg.StatEpoch
	// is non-zero.
	Stat *stat.Registry

	// Spans is the request-span recorder, set when Cfg.SpanCapacity > 0
	// (virtualized modes only).
	Spans *span.Recorder

	guestBase uint64
}

// NewRunner builds the stack for the configuration and loads the kernel
// image at Entry.
func NewRunner(cfg RunnerConfig, image []byte) (*Runner, error) {
	if cfg.MemPages == 0 {
		cfg.MemPages = 4096
	}
	if cfg.RAMSize == 0 {
		cfg.RAMSize = 64 << 20
	}
	plat, err := hw.NewPlatform(hw.Config{
		Model: cfg.Model, RAMSize: cfg.RAMSize,
		NICCoalesce: cfg.NICCoalesce, DiskMBs: cfg.DiskMBs, DiskIOPS: cfg.DiskIOPS,
		// A bare-metal OS owns the whole machine; DMA remapping is off
		// (the paper's native baseline measures exactly this).
		DisableIOMMU: cfg.Mode == ModeNative,
	})
	if err != nil {
		return nil, err
	}
	r := &Runner{Cfg: cfg, Plat: plat}

	if cfg.Mode == ModeNative {
		plat.Mem.WriteBytes(Entry, image)
		r.BM = hypervisor.NewBareMetal(plat, Entry)
		if cfg.DisableDecodeCache {
			r.BM.Interp.Cache = nil
		}
		r.BM.DisableSuperblocks = cfg.DisableSuperblocks
		if cfg.ProfilePeriod > 0 {
			r.Prof = r.BM.AttachProfiler(cfg.ProfilePeriod, profileCapacity(cfg))
		}
		if cfg.StatEpoch != 0 {
			r.Stat = r.BM.AttachStats(cfg.StatEpoch)
		}
		return r, nil
	}

	k := hypervisor.New(plat, hypervisor.Config{
		UseVPID:             cfg.UseVPID,
		DisableMTDOpt:       cfg.DisableMTDOpt,
		DisableDirectSwitch: cfg.DisableDirectSwitch,
		DisableVTLBTrick:    cfg.DisableVTLBTrick,
		DisableDecodeCache:  cfg.DisableDecodeCache,
		DisableSuperblocks:  cfg.DisableSuperblocks,
	})
	r.K = k
	r.Root = services.NewRootPM(k)

	var ds *services.DiskServer
	if cfg.WithDiskServer {
		ds, err = r.Root.StartDiskServer()
		if err != nil {
			return nil, err
		}
		r.DS = ds
	}

	align := 1
	if cfg.HostLargePages {
		align = int(plat.Cost.LargePage / hw.PageSize)
	}
	basePage, err := r.Root.AllocAligned("guest", cfg.MemPages, align)
	if err != nil {
		return nil, err
	}
	r.guestBase = uint64(basePage) << 12

	mode := hypervisor.ModeEPT
	if cfg.Mode == ModeVirtVTLB {
		mode = hypervisor.ModeVTLB
	}
	m, err := vmm.New(k, vmm.Config{
		Name: "guest", MemPages: cfg.MemPages, BasePage: basePage, CPU: 0,
		Mode: mode, HostLargePages: cfg.HostLargePages,
		DiskServer: ds, BootDisk: plat.AHCI.Disk(),
	})
	if err != nil {
		return nil, err
	}
	r.VMM = m

	if cfg.Mode == ModeDirect || cfg.PassthroughAHCI {
		if err := m.AssignHostAHCI(AHCIVector); err != nil {
			return nil, err
		}
	}
	if cfg.Mode == ModeDirect || cfg.PassthroughNIC {
		if err := m.AssignHostNIC(NICVector); err != nil {
			return nil, err
		}
	}

	if cfg.Mode == ModeDirect && cfg.DirectNoExits {
		v := m.EC.VCPU
		v.NoExitDelivery = true
		v.Interp.IC = x86.Intercepts{}
		k.GuestOwnsPIC = true
		if err := k.DelegateIO(k.Root, m.PD, 0, 0xffff); err != nil {
			return nil, err
		}
		if err := k.DelegateIO(m.PD, m.VM, 0, 0xffff); err != nil {
			return nil, err
		}
	} else if cfg.Mode != ModeNative {
		hz := cfg.SchedTimerHz
		if hz == 0 {
			hz = 667
		}
		if hz > 0 {
			k.StartSchedulingTimer(hz)
		}
	}

	if err := m.LoadImage(Entry, image); err != nil {
		return nil, err
	}
	st := &m.EC.VCPU.State
	st.Reset()
	st.EIP = Entry
	if err := m.Start(10, 10_000_000); err != nil {
		return nil, err
	}
	if cfg.TraceCapacity > 0 {
		r.Tracer = k.AttachTracer(cfg.TraceCapacity)
	}
	if cfg.ProfilePeriod > 0 {
		r.Prof = k.AttachProfiler(cfg.ProfilePeriod, profileCapacity(cfg))
	}
	if cfg.StatEpoch != 0 {
		r.Stat = k.AttachStats(cfg.StatEpoch)
	}
	if cfg.SpanCapacity > 0 {
		r.Spans = k.AttachSpans(cfg.SpanCapacity)
	}
	return r, nil
}

// profileCapacity applies the sample-buffer default.
func profileCapacity(cfg RunnerConfig) int {
	if cfg.ProfileCapacity > 0 {
		return cfg.ProfileCapacity
	}
	return 65536
}

// EncodeProfile captures code bytes at the topN hottest addresses and
// serializes the profile. Call it after the run finishes.
func (r *Runner) EncodeProfile(topN int) ([]byte, error) {
	if r.Prof == nil {
		return nil, fmt.Errorf("guest: no profiler attached (set ProfilePeriod)")
	}
	if r.BM != nil {
		read := r.BM.ProfCodeReader()
		r.Prof.CaptureCode(topN, read)
	} else if v := r.VMM; v != nil {
		read := r.K.ProfCodeReader(v.EC)
		r.Prof.CaptureCode(topN, read)
	}
	return r.Prof.Encode()
}

// EncodeStats snapshots the resource-accounting registry at the
// current virtual time and serializes it. Call it after the run
// finishes.
func (r *Runner) EncodeStats() ([]byte, error) {
	if r.Stat == nil {
		return nil, fmt.Errorf("guest: no stat registry attached (set StatEpoch)")
	}
	return r.Stat.Snapshot(r.Clock().Now()).Encode()
}

// EncodeSpans serializes the recorded request spans. Call it after the
// run finishes.
func (r *Runner) EncodeSpans() ([]byte, error) {
	if r.Spans == nil {
		return nil, fmt.Errorf("guest: no span recorder attached (set SpanCapacity)")
	}
	return r.Spans.Encode()
}

// NICVector is the guest interrupt vector of the passthrough NIC
// (IRQ 10 -> slave PIC vector 0x2a).
const NICVector = 0x2a

// Clock returns the boot CPU's clock.
func (r *Runner) Clock() *hw.Clock { return &r.Plat.BootCPU().Clock }

// ReadGuest32 reads guest-physical memory.
func (r *Runner) ReadGuest32(gpa uint64) uint32 {
	return r.Plat.Mem.Read32(hw.PhysAddr(r.guestBase + gpa))
}

// WriteGuest writes guest-physical memory (workload parameter blocks).
func (r *Runner) WriteGuest(gpa uint64, b []byte) {
	r.Plat.Mem.WriteBytes(hw.PhysAddr(r.guestBase+gpa), b)
}

// Marker returns the kernel's progress mailbox.
func (r *Runner) Marker() uint32 { return r.ReadGuest32(MarkerAddr) }

// step advances the system by one scheduling chunk.
func (r *Runner) step(until hw.Cycles) error {
	if r.BM != nil {
		return r.BM.Run(until)
	}
	r.K.Run(until)
	if len(r.K.Killed) > 0 {
		return fmt.Errorf("guest: VM killed: %v", r.K.Killed)
	}
	return nil
}

// RunUntilDone executes until the kernel stores MarkerDone or maxCycles
// elapse. It returns the cycle count at completion.
func (r *Runner) RunUntilDone(maxCycles hw.Cycles) (hw.Cycles, error) {
	chunk := r.Chunk
	if chunk == 0 {
		chunk = 2_000_000
	}
	clk := r.Clock()
	for clk.Now() < maxCycles {
		if err := r.step(clk.Now() + chunk); err != nil {
			return clk.Now(), err
		}
		if r.Marker() == MarkerDone {
			// The kernel stored RDTSC at completion: cycle-exact.
			tsc := hw.Cycles(uint64(r.ReadGuest32(DoneTSCAddr)) |
				uint64(r.ReadGuest32(DoneTSCAddr+4))<<32)
			if tsc > 0 && tsc <= clk.Now() {
				return tsc, nil
			}
			return clk.Now(), nil
		}
	}
	return clk.Now(), fmt.Errorf("guest: workload did not finish within %d cycles (marker=%#x)", maxCycles, r.Marker())
}

// RunUntilGuest32 executes until the guest stores want at gpa (a
// readiness handshake) or maxCycles pass.
func (r *Runner) RunUntilGuest32(gpa uint64, want uint32, maxCycles hw.Cycles) error {
	clk := r.Clock()
	for clk.Now() < maxCycles {
		if err := r.step(clk.Now() + 200_000); err != nil {
			return err
		}
		if r.ReadGuest32(gpa) == want {
			return nil
		}
	}
	return fmt.Errorf("guest: handshake at %#x not reached (have %#x)", gpa, r.ReadGuest32(gpa))
}

// BusyFraction returns busy/total cycles — the CPU utilization metric
// of Figures 6 and 7.
func (r *Runner) BusyFraction() float64 {
	clk := r.Clock()
	if clk.Now() == 0 {
		return 0
	}
	return float64(clk.Busy()) / float64(clk.Now())
}

// InstRet returns the total guest instructions the interpreter has
// retired. It feeds host-performance metrics (guest MIPS) only; it is
// not a simulated quantity.
func (r *Runner) InstRet() uint64 {
	if r.BM != nil {
		return r.BM.Interp.InstRet
	}
	return r.VCPU().Interp.InstRet
}

// VCPU returns the vCPU of virtualized runs (nil for native).
func (r *Runner) VCPU() *hypervisor.VCPU {
	if r.VMM == nil {
		return nil
	}
	return r.VMM.EC.VCPU
}
