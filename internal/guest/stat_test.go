package guest

import (
	"bytes"
	"testing"

	"nova/internal/hw"
	"nova/internal/stat"
)

// TestStatsABIdentity runs each A/B workload with resource accounting
// off and on and requires bit-identical outcomes: same cycle totals,
// same encoded-trace hash, same final physical memory, same final vCPU
// state. The registry is host-side observability only; any divergence
// means a metric charged cycles, touched guest state, or perturbed the
// event order. The cases cover native (BareMetal.AttachStats), EPT,
// vTLB (fill/flush counters) and the disk-boot path (per-client server
// accounting).
func TestStatsABIdentity(t *testing.T) {
	for _, tc := range profABCases() {
		t.Run(tc.name, func(t *testing.T) {
			off := tc.cfg
			on := tc.cfg
			on.StatEpoch = stat.DefaultEpochLen
			cOff, thOff, rhOff, stOff := profABRun(t, off, tc.img, tc.params)
			cOn, thOn, rhOn, stOn := profABRun(t, on, tc.img, tc.params)
			if cOn != cOff {
				t.Errorf("cycle totals differ: stats-on %d vs stats-off %d (Δ=%d)", cOn, cOff, int64(cOn)-int64(cOff))
			}
			if thOn != thOff {
				t.Errorf("trace hashes differ: stats-on %#x vs stats-off %#x", thOn, thOff)
			}
			if rhOn != rhOff {
				t.Errorf("final physical memory differs: stats-on %#x vs stats-off %#x", rhOn, rhOff)
			}
			if stOn != stOff {
				t.Errorf("final vCPU state differs:\n stats-on  %s\n stats-off %s", stOn, stOff)
			}
			t.Logf("%s: %d cycles, trace %#x, ram %#x", tc.name, cOn, thOn, rhOn)
		})
	}
}

// statRun boots one workload with accounting on and returns the encoded
// snapshot.
func statRun(t *testing.T, cfg RunnerConfig, img []byte, params []uint32) []byte {
	t.Helper()
	cfg.StatEpoch = 250_000
	r, err := NewRunner(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	r.Chunk = 100_000
	writeParams(r, params...)
	if _, err := r.RunUntilDone(10_000_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := r.EncodeStats()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

// TestStatsDoubleRunByteIdentity runs each workload twice with
// accounting on and requires the two encoded snapshots to be
// byte-identical — the determinism half of the contract: the metrics
// time series is itself a reproducible simulation output.
func TestStatsDoubleRunByteIdentity(t *testing.T) {
	for _, tc := range profABCases() {
		t.Run(tc.name, func(t *testing.T) {
			b1 := statRun(t, tc.cfg, tc.img, tc.params)
			b2 := statRun(t, tc.cfg, tc.img, tc.params)
			if !bytes.Equal(b1, b2) {
				t.Fatalf("two identical runs encoded different snapshots (%d vs %d bytes)", len(b1), len(b2))
			}
			d, err := stat.Decode(b1)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(d.Metrics) == 0 {
				t.Fatal("snapshot has no metrics")
			}
			t.Logf("%s: %d metrics, %d bytes", tc.name, len(d.Metrics), len(b1))
		})
	}
}

// TestStatsContentSanity checks that an accounted vTLB run actually
// attributes activity: exits by reason for the guest vCPU, per-PD IPC,
// vTLB fills, scheduler consumption and epoch cells that sum to the
// totals.
func TestStatsContentSanity(t *testing.T) {
	cfg := RunnerConfig{Model: hw.BLM, Mode: ModeVirtVTLB, StatEpoch: 250_000}
	img := MustBuild(ComputeKernelWithSwitches(true, false, 8))
	r, err := NewRunner(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	r.Chunk = 100_000
	writeParams(r, 3, 64<<10)
	if _, err := r.RunUntilDone(10_000_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	d := r.Stat.Snapshot(r.Clock().Now())
	byName := map[string]uint64{}
	for _, m := range d.Metrics {
		byName[m.Name] = m.Total
		var cells uint64
		for _, c := range m.Epochs {
			cells += c.Value
		}
		if m.Kind == "counter" && cells != m.Total {
			t.Errorf("%s: epoch cells sum to %d, total is %d", m.Name, cells, m.Total)
		}
	}
	if got, want := byName[stat.Name("kernel_vtlb_fills", "vm", "guest", "vcpu", "0")], r.K.Stats.VTLBFills; got != want {
		t.Errorf("vtlb fills = %d, kernel aggregate says %d", got, want)
	}
	if byName[stat.Name("guest_instructions", "vm", "guest", "vcpu", "0")] != r.InstRet() {
		t.Errorf("guest_instructions sampler diverges from InstRet")
	}
	if byName[stat.Name("kernel_sched_dispatches", "ec", "guest-vcpu0")] == 0 {
		t.Error("no dispatches accounted for the guest vCPU")
	}
	var exits uint64
	for _, m := range d.Metrics {
		md := m
		if fam, _ := md.Family(); fam == "kernel_vmexits" {
			exits += md.Total
		}
	}
	if want := r.VCPU().TotalExits(); exits != want {
		t.Errorf("per-reason exit counters sum to %d, vCPU counted %d", exits, want)
	}
}
