// Package guest contains the guest operating systems of the evaluation:
// small, genuine x86 kernels assembled by internal/x86/asm. The same
// kernel images run in all three configurations the paper compares —
// natively on the bare platform, in a VM with direct device assignment,
// and fully virtualized — because the device programming model (PIC,
// PIT, AHCI, NIC) is identical in all three.
package guest

import (
	"fmt"
	"sort"
	"strings"

	"nova/internal/x86"
)

// Entry is the guest-physical load/entry address of all kernels built
// here; the VMM's multiboot-style loader and the bare-metal runner both
// start execution there in real mode.
const Entry = 0x8000

// Layout constants shared by the kernels.
const (
	GDTAddr    = 0x800  // global descriptor table
	IDTAddr    = 0x3000 // interrupt descriptor table (built by code)
	PageDir    = 0x20000
	PageTables = 0x21000 // identity page tables (PSE off) or via 4M PDEs
	StackTop   = 0x7000

	// MarkerAddr is the guest-physical "progress mailbox": kernels
	// publish progress counters and completion flags here for the host
	// harness to poll.
	MarkerAddr = 0x6000
	// MarkerDone is stored at MarkerAddr when the workload finishes.
	MarkerDone = 0xd00ed00e
	// DoneTSCAddr holds the RDTSC value captured at completion, giving
	// cycle-exact workload durations independent of polling granularity.
	DoneTSCAddr = MarkerAddr + 8
)

// KernelOpts selects the runtime features a kernel is built with.
type KernelOpts struct {
	// Paging enables paging with an identity mapping built by the
	// kernel itself (4 KiB pages; MapMB megabytes are mapped).
	Paging bool
	MapMB  int
	// LargeGuestPages uses 4 MiB PSE mappings instead of 4 KiB pages.
	LargeGuestPages bool

	// TimerHz programs the PIT for a periodic timer interrupt with an
	// EOI-ing ISR (vector 0x20).
	TimerHz int

	// ExtraISRs maps interrupt vectors to ISR body fragments (the
	// builder wraps them with register save/EOI/iret). The fragment
	// must not use the stack beyond push/pop balance.
	ExtraISRs map[int]string

	// Fragments is appended verbatim before the workload (helper
	// routines; must be jumped over or pure subroutines).
	Fragments string

	// Workload is the 32-bit code run after initialization. It should
	// end with `jmp finish` (which stores MarkerDone and parks the CPU)
	// or loop forever.
	Workload string
}

// Build assembles a kernel image to be loaded at Entry.
func Build(o KernelOpts) ([]byte, error) {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("bits 16")
	w("org %#x", Entry)
	w("	cli")
	w("	lgdt [gdtr_data]")
	w("	mov eax, cr0")
	w("	or eax, 1")
	w("	mov cr0, eax")
	w("	jmp dword 0x08:pm_entry")
	w("gdtr_data:")
	w("	dw 23")
	w("	dd gdt_data")
	w("align 8")
	w("gdt_data:")
	w("	dd 0, 0")
	w("	dd 0x0000ffff, 0x00cf9a00") // flat 32-bit code
	w("	dd 0x0000ffff, 0x00cf9200") // flat 32-bit data
	w("bits 32")
	w("pm_entry:")
	w("	mov ax, 0x10")
	w("	mov ds, ax")
	w("	mov es, ax")
	w("	mov ss, ax")
	w("	mov fs, ax")
	w("	mov gs, ax")
	w("	mov esp, %#x", StackTop)

	// Interrupt descriptor table: 64 vectors pointing at the ISR stubs.
	w("	mov edi, %#x", IDTAddr)
	w("	mov ecx, 64")
	w("	mov esi, isr_table")
	w("idt_build:")
	w("	mov eax, [esi]")
	w("	mov word [edi], ax") // offset low
	w("	mov word [edi+2], 0x08")
	w("	mov byte [edi+4], 0")
	w("	mov byte [edi+5], 0x8e")
	w("	shr eax, 16")
	w("	mov word [edi+6], ax") // offset high
	w("	add edi, 8")
	w("	add esi, 4")
	w("	dec ecx")
	w("	jnz idt_build")
	w("	lidt [idtr_data]")

	// PIC initialization: bases 0x20/0x28, all unmasked.
	for _, s := range []struct {
		port uint16
		val  int
	}{
		{0x20, 0x11}, {0x21, 0x20}, {0x21, 0x04}, {0x21, 0x01},
		{0xa0, 0x11}, {0xa1, 0x28}, {0xa1, 0x02}, {0xa1, 0x01},
		{0x21, 0x00}, {0xa1, 0x00},
	} {
		w("	mov al, %#x", s.val)
		w("	out %#x, al", s.port)
	}

	if o.Paging {
		writePagingSetup(w, o)
	}

	if o.TimerHz > 0 {
		reload := 1193182 / o.TimerHz
		if reload > 0xffff {
			reload = 0xffff
		}
		w("	mov al, 0x34") // channel 0, lobyte/hibyte, mode 2
		w("	out 0x43, al")
		w("	mov al, %#x", reload&0xff)
		w("	out 0x40, al")
		w("	mov al, %#x", reload>>8)
		w("	out 0x40, al")
	}

	w("	sti")
	w("; ---- workload ----")
	b.WriteString(o.Workload)
	w("")
	w("finish:")
	w("	rdtsc")
	w("	mov [%#x], eax", DoneTSCAddr)
	w("	mov [%#x], edx", DoneTSCAddr+4)
	w("	mov dword [%#x], %#x", MarkerAddr, MarkerDone)
	w("park:")
	w("	hlt")
	w("	jmp park")

	if o.Fragments != "" {
		w("; ---- fragments ----")
		b.WriteString(o.Fragments)
		w("")
	}

	// ISR stubs and the vector table.
	writeISRs(w, o)

	w("idtr_data:")
	w("	dw 0x1ff")
	w("	dd %#x", IDTAddr)

	img, err := x86.Assemble(b.String())
	if err != nil {
		return nil, fmt.Errorf("guest: %w\n--- source ---\n%s", err, numberLines(b.String()))
	}
	return img, nil
}

// MustBuild panics on build errors (static kernels in tests/benches).
func MustBuild(o KernelOpts) []byte {
	img, err := Build(o)
	if err != nil {
		panic(err)
	}
	return img
}

// writePagingSetup emits code that builds identity page tables and
// enables paging.
func writePagingSetup(w func(string, ...any), o KernelOpts) {
	mapMB := o.MapMB
	if mapMB <= 0 {
		mapMB = 4
	}
	if o.LargeGuestPages {
		// 4M PDEs: one entry per 4 MiB.
		entries := (mapMB + 3) / 4
		w("	mov edi, %#x", PageDir)
		w("	mov ecx, 1024")
		w("	xor eax, eax")
		w("zero_pd:")
		w("	mov [edi], eax")
		w("	add edi, 4")
		w("	dec ecx")
		w("	jnz zero_pd")
		w("	mov edi, %#x", PageDir)
		w("	mov eax, 0x83") // present | write | PS
		w("	mov ecx, %d", entries)
		w("pde_loop:")
		w("	mov [edi], eax")
		w("	add eax, 0x400000")
		w("	add edi, 4")
		w("	dec ecx")
		w("	jnz pde_loop")
		// MMIO window PDE (device registers at 0xfeb00000).
		w("	mov dword [%#x], 0xfeb00083", PageDir+0x3fa*4)
		w("	mov eax, cr4")
		w("	or eax, 0x10") // PSE
		w("	mov cr4, eax")
	} else {
		// 4K page tables: one PT per 4 MiB of identity map.
		pts := (mapMB + 3) / 4
		w("	mov edi, %#x", PageDir)
		w("	mov ecx, 1024")
		w("	xor eax, eax")
		w("zero_pd:")
		w("	mov [edi], eax")
		w("	add edi, 4")
		w("	dec ecx")
		w("	jnz zero_pd")
		w("	mov edi, %#x", PageTables)
		w("	mov eax, 3") // present | write
		w("	mov ecx, %d", pts*1024)
		w("pte_loop:")
		w("	mov [edi], eax")
		w("	add eax, 0x1000")
		w("	add edi, 4")
		w("	dec ecx")
		w("	jnz pte_loop")
		w("	mov edi, %#x", PageDir)
		w("	mov eax, %#x + 3", PageTables)
		w("	mov ecx, %d", pts)
		w("pde_loop:")
		w("	mov [edi], eax")
		w("	add eax, 0x1000")
		w("	add edi, 4")
		w("	dec ecx")
		w("	jnz pde_loop")
		// MMIO window: a dedicated PT at PageTables + pts*0x1000.
		mmioPT := PageTables + pts*0x1000
		w("	mov edi, %#x", mmioPT)
		w("	mov eax, 0xfeb00003")
		w("	mov ecx, 1024")
		w("mmio_pte:")
		w("	mov [edi], eax")
		w("	add eax, 0x1000")
		w("	add edi, 4")
		w("	dec ecx")
		w("	jnz mmio_pte")
		w("	mov dword [%#x], %#x + 3", PageDir+0x3fa*4, mmioPT)
	}
	w("	mov eax, %#x", PageDir)
	w("	mov cr3, eax")
	w("	mov eax, cr0")
	w("	or eax, 0x80000000")
	w("	mov cr0, eax")
}

// writeISRs emits the default timer ISR, any extra ISRs, a default
// no-op handler, and the 64-entry vector table the IDT builder reads.
func writeISRs(w func(string, ...any), o KernelOpts) {
	w("isr_default:")
	w("	push eax")
	w("	mov al, 0x20")
	w("	out 0x20, al")
	w("	pop eax")
	w("	iretd")

	w("isr_timer:")
	w("	push eax")
	w("	mov eax, [tick_count]")
	w("	inc eax")
	w("	mov [tick_count], eax")
	if body, ok := o.ExtraISRs[0x20]; ok {
		w("%s", body)
	}
	w("	mov al, 0x20")
	w("	out 0x20, al") // EOI master
	w("	pop eax")
	w("	iretd")
	w("tick_count: dd 0")

	hasErrCode := map[int]bool{8: true, 10: true, 11: true, 12: true, 13: true, 14: true, 17: true}
	vecs := make([]int, 0, len(o.ExtraISRs))
	for vec := range o.ExtraISRs {
		vecs = append(vecs, vec)
	}
	sort.Ints(vecs)
	for _, vec := range vecs {
		if vec == 0x20 {
			continue
		}
		body := o.ExtraISRs[vec]
		w("isr_vec_%d:", vec)
		w("	push eax")
		w("%s", body)
		if vec >= 0x20 { // hardware interrupt: EOI the PIC(s)
			if vec >= 0x28 && vec < 0x30 {
				w("	mov al, 0x20")
				w("	out 0xa0, al")
			}
			w("	mov al, 0x20")
			w("	out 0x20, al")
		}
		w("	pop eax")
		if vec < 0x20 && hasErrCode[vec] {
			w("	add esp, 4") // drop the error code
		}
		w("	iretd")
	}

	w("isr_table:")
	for vec := 0; vec < 64; vec++ {
		switch {
		case vec == 0x20:
			w("	dd isr_timer")
		case o.ExtraISRs[vec] != "":
			w("	dd isr_vec_%d", vec)
		default:
			w("	dd isr_default")
		}
	}
}

func numberLines(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = fmt.Sprintf("%4d  %s", i+1, lines[i])
	}
	return strings.Join(lines, "\n")
}
