package guest

import "fmt"

// Guest-side NIC driver for the platform's descriptor-ring gigabit
// controller, used natively and with direct assignment (the two
// configurations of Figure 7). The receive path mirrors a real driver:
// replenish the ring, take an interrupt, harvest DD descriptors,
// checksum the payload (standing in for protocol processing), return
// the slots.

// Driver memory layout inside the guest.
const (
	NICMMIOConst = 0xfea00000
	nicRing      = 0x12000
	nicBufs      = 0x100000 // 64 jumbo-capable 16 KiB buffers
	nicBufStride = 16384
	nicSlots     = 64

	// Receive accounting the workload and harness read.
	RxCountAddr = ParamBase + 0x20
	RxBytesAddr = ParamBase + 0x24
	RxSumAddr   = ParamBase + 0x28
	// RxReadyAddr is set to 1 once the driver has enabled the NIC; the
	// harness starts the packet stream after this handshake.
	RxReadyAddr = ParamBase + 0x2c
)

// NICDriverFragment returns nic_init.
func NICDriverFragment() string {
	return fmt.Sprintf(`
nic_init:
	push esi
	mov edi, %#[1]x
	mov eax, %#[2]x
	mov ecx, %[3]d
nring_loop:
	mov [edi], eax
	mov dword [edi+4], 0
	mov dword [edi+8], 0
	mov dword [edi+12], 0
	add eax, %[7]d
	add edi, 16
	dec ecx
	jnz nring_loop
	mov dword [nic_head], 0
	mov esi, %#[4]x
	mov dword [esi+0x2800], %#[1]x
	mov dword [esi+0x2804], 0
	mov dword [esi+0x2808], %[5]d
	mov dword [esi+0x2810], 0
	mov dword [esi+0x2818], %[6]d
	mov dword [esi+0xd0], 0x80
	mov dword [esi+0x100], 0x02010002  ; EN | BSEX | BSIZE=16K (jumbo)
	pop esi
	ret
nic_head: dd 0
`, nicRing, nicBufs, nicSlots, NICMMIOConst, nicSlots*16, nicSlots-1, nicBufStride)
}

// NICISRBody harvests the ring: for each DD descriptor it checksums the
// payload (protocol-processing stand-in), accounts the packet and
// returns the slot to the hardware.
func NICISRBody() string {
	return fmt.Sprintf(`	push ebx
	push ecx
	push edx
	push esi
	push edi
	mov esi, %#[1]x
	mov eax, [esi+0xc0]      ; ICR: read-to-clear
nharvest:
	mov ebx, [nic_head]
	mov edi, ebx
	shl edi, 4
	add edi, %#[2]x          ; descriptor address
	mov al, [edi+12]
	test al, 1
	jz nharvest_done
	; packet length and buffer
	movzx ecx, word [edi+8]
	add [%#[3]x], ecx        ; rx bytes
	mov edx, [edi]           ; buffer address
	; checksum the payload per dword (protocol processing)
	mov eax, ecx
	shr eax, 2
	jz nskip_sum
nsum_loop:
	mov ecx, [edx]
	add [%#[4]x], ecx
	add edx, 4
	dec eax
	jnz nsum_loop
nskip_sum:
	mov byte [edi+12], 0     ; clear status
	mov eax, [%#[5]x]
	inc eax
	mov [%#[5]x], eax        ; rx count
	; return the slot: RDT = current head
	mov [esi+0x2818], ebx
	inc ebx
	and ebx, %[6]d
	mov [nic_head], ebx
	jmp nharvest
nharvest_done:
	pop edi
	pop esi
	pop edx
	pop ecx
	pop ebx`,
		NICMMIOConst, nicRing, RxBytesAddr, RxSumAddr, RxCountAddr, nicSlots-1)
}

// UDPReceiveKernel builds the Figure 7 workload: initialize the NIC,
// then idle in HLT while the interrupt path receives a packet stream.
// Parameters at ParamBase: +0 target packet count.
func UDPReceiveKernel() KernelOpts {
	return KernelOpts{
		TimerHz: 100,
		ExtraISRs: map[int]string{
			0x2a: NICISRBody(), // IRQ 10
		},
		Fragments: NICDriverFragment(),
		Workload: fmt.Sprintf(`
	mov dword [%#[1]x], 0
	mov dword [%#[2]x], 0
	mov dword [%#[3]x], 0
	call nic_init
	mov dword [%#[5]x], 1
rx_wait:
	cli
	mov eax, [%#[1]x]
	cmp eax, [%#[4]x]
	jae rx_done
	sti
	hlt
	jmp rx_wait
rx_done:
	sti
	jmp finish
`, RxCountAddr, RxBytesAddr, RxSumAddr, ParamBase, RxReadyAddr),
	}
}
