package guest

import (
	"hash/fnv"
	"testing"

	"nova/internal/hw"
)

// machineResult is everything observable about one finished machine:
// completion cycles, the encoded-trace hash, an FNV hash of all
// physical RAM, and the final vCPU state rendering.
type machineResult struct {
	cycles    hw.Cycles
	traceHash uint64
	ramHash   uint64
	state     string
}

// newMachine boots one complete machine stack — platform, kernel, root
// PM, VMM — with a tracer attached and the workload parameters written.
func newMachine(t *testing.T, cfg RunnerConfig, img []byte, params []uint32) *Runner {
	t.Helper()
	cfg.TraceCapacity = 4096
	r, err := NewRunner(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	r.Chunk = 100_000
	writeParams(r, params...)
	return r
}

// stepChunk advances one machine by one scheduling chunk, using exactly
// RunUntilDone's per-chunk sequence (step, then poll the marker), so a
// machine driven chunk-by-chunk from outside performs the identical
// call sequence as one driven by RunUntilDone.
func stepChunk(t *testing.T, r *Runner) (hw.Cycles, bool) {
	t.Helper()
	const maxCycles = 10_000_000_000
	clk := r.Clock()
	if clk.Now() >= maxCycles {
		t.Fatalf("machine did not finish within %d cycles (marker=%#x)", hw.Cycles(maxCycles), r.Marker())
	}
	if err := r.step(clk.Now() + r.Chunk); err != nil {
		t.Fatalf("step: %v", err)
	}
	if r.Marker() == MarkerDone {
		tsc := hw.Cycles(uint64(r.ReadGuest32(DoneTSCAddr)) |
			uint64(r.ReadGuest32(DoneTSCAddr+4))<<32)
		if tsc > 0 && tsc <= clk.Now() {
			return tsc, true
		}
		return clk.Now(), true
	}
	return 0, false
}

// finish snapshots a machine's result once it reported done.
func finish(r *Runner, cycles hw.Cycles) machineResult {
	h := fnv.New64a()
	h.Write(r.Plat.Mem.RAM())
	return machineResult{
		cycles:    cycles,
		traceHash: r.Tracer.Hash(),
		ramHash:   h.Sum64(),
		state:     r.VCPU().State.String(),
	}
}

// runIsolated drives one machine to completion on its own — the
// sequential baseline.
func runIsolated(t *testing.T, cfg RunnerConfig, img []byte, params []uint32) machineResult {
	t.Helper()
	r := newMachine(t, cfg, img, params)
	for {
		if cycles, done := stepChunk(t, r); done {
			return finish(r, cycles)
		}
	}
}

// runInterleaved boots both machines in one process and interleaves
// their chunks: machine A takes aChunks chunks, then machine B takes
// bChunks, until each has finished. A finished machine simply stops
// being scheduled, exactly as RunUntilDone would have stopped it.
func runInterleaved(t *testing.T, a, b *Runner, aChunks, bChunks int) (machineResult, machineResult) {
	t.Helper()
	var resA, resB machineResult
	doneA, doneB := false, false
	for !doneA || !doneB {
		for i := 0; i < aChunks && !doneA; i++ {
			if cycles, done := stepChunk(t, a); done {
				resA, doneA = finish(a, cycles), true
			}
		}
		for i := 0; i < bChunks && !doneB; i++ {
			if cycles, done := stepChunk(t, b); done {
				resB, doneB = finish(b, cycles), true
			}
		}
	}
	return resA, resB
}

// requireEqual compares a machine's interleaved result against its
// isolated baseline, field by field.
func requireEqual(t *testing.T, name, schedule string, got, want machineResult) {
	t.Helper()
	if got.cycles != want.cycles {
		t.Errorf("%s (%s): cycle count %d, isolated run %d (Δ=%d)", name, schedule, got.cycles, want.cycles, int64(got.cycles)-int64(want.cycles))
	}
	if got.traceHash != want.traceHash {
		t.Errorf("%s (%s): trace hash %#x, isolated run %#x", name, schedule, got.traceHash, want.traceHash)
	}
	if got.ramHash != want.ramHash {
		t.Errorf("%s (%s): final RAM hash %#x, isolated run %#x", name, schedule, got.ramHash, want.ramHash)
	}
	if got.state != want.state {
		t.Errorf("%s (%s): final vCPU state differs:\n interleaved %s\n isolated    %s", name, schedule, got.state, want.state)
	}
}

// TestTwoMachineInterleavedDeterminism is the runtime counterpart of the
// isolation analyzer: two complete machine stacks booted in the same
// process and stepped in interleaved chunks must produce results
// bit-identical to each machine running alone — same completion cycles,
// same encoded-trace hash, same final RAM, same final vCPU state — and
// the interleaving schedule must not matter. Any shared mutable state
// between the stacks (a package global written on the step path, a
// shared table mutated after init) shows up here as a divergence; this
// is the property the parallel multi-VM engine will rely on.
func TestTwoMachineInterleavedDeterminism(t *testing.T) {
	cfgA := RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true}
	cfgB := RunnerConfig{Model: hw.BLM, Mode: ModeVirtVTLB}
	img := MustBuild(ComputeKernelWithSwitches(true, false, 8))
	params := []uint32{3, 64 << 10}

	wantA := runIsolated(t, cfgA, img, params)
	wantB := runIsolated(t, cfgB, img, params)
	if wantA.traceHash == wantB.traceHash {
		t.Fatal("the two configurations produced identical traces; the test would not detect cross-machine coupling")
	}

	// Round-robin: one chunk each.
	a := newMachine(t, cfgA, img, params)
	b := newMachine(t, cfgB, img, params)
	gotA, gotB := runInterleaved(t, a, b, 1, 1)
	requireEqual(t, "machine A (ept)", "round-robin", gotA, wantA)
	requireEqual(t, "machine B (vtlb)", "round-robin", gotB, wantB)

	// Skewed: three chunks of A per chunk of B. If isolation holds, the
	// schedule is unobservable.
	a = newMachine(t, cfgA, img, params)
	b = newMachine(t, cfgB, img, params)
	gotA, gotB = runInterleaved(t, a, b, 3, 1)
	requireEqual(t, "machine A (ept)", "3:1 skew", gotA, wantA)
	requireEqual(t, "machine B (vtlb)", "3:1 skew", gotB, wantB)

	t.Logf("A: %d cycles trace %#x ram %#x; B: %d cycles trace %#x ram %#x",
		wantA.cycles, wantA.traceHash, wantA.ramHash, wantB.cycles, wantB.traceHash, wantB.ramHash)
}
