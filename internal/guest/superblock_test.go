package guest

import (
	"testing"

	"nova/internal/hw"
)

// TestSuperblockABIdentity runs the determinism workloads with fused
// superblock execution force-disabled and force-enabled — with and
// without the sampling profiler attached — and requires bit-identical
// outcomes: same cycle totals, same encoded-trace hash, same final
// physical memory, same final vCPU state. Superblocks are host-side
// performance machinery on top of the decode cache; any divergence here
// means the fused path leaked into the simulation (a missing or extra
// charge, a skipped interrupt-window check, or guest-visible state).
//
// The profiler-attached variants pin the degradation contract: an
// attached StepHook forces StepBlock back to single-stepping, so a
// profiled run must see the exact per-instruction sample stream and
// still produce identical simulated results.
func TestSuperblockABIdentity(t *testing.T) {
	cases := []struct {
		name   string
		cfg    RunnerConfig
		img    []byte
		params []uint32
	}{
		{
			name:   "native-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeNative},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "ept-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "vtlb-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtVTLB},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "ept-disk-boot",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true, WithDiskServer: true},
			img:    MustBuild(DiskChecksumKernel()),
			params: []uint32{8, 4, 2000},
		},
	}
	profiles := []struct {
		name   string
		period uint64
	}{
		{"plain", 0},
		{"profiled", 10_000},
	}
	for _, tc := range cases {
		for _, pr := range profiles {
			t.Run(tc.name+"/"+pr.name, func(t *testing.T) {
				on := tc.cfg
				on.ProfilePeriod = pr.period
				off := on
				off.DisableSuperblocks = true
				cOn, thOn, rhOn, stOn := cacheABRun(t, on, tc.img, tc.params)
				cOff, thOff, rhOff, stOff := cacheABRun(t, off, tc.img, tc.params)
				if cOn != cOff {
					t.Errorf("cycle totals differ: sb-on %d vs sb-off %d (Δ=%d)", cOn, cOff, int64(cOn)-int64(cOff))
				}
				if thOn != thOff {
					t.Errorf("trace hashes differ: sb-on %#x vs sb-off %#x", thOn, thOff)
				}
				if rhOn != rhOff {
					t.Errorf("final physical memory differs: sb-on %#x vs sb-off %#x", rhOn, rhOff)
				}
				if stOn != stOff {
					t.Errorf("final vCPU state differs:\n sb-on  %s\n sb-off %s", stOn, stOff)
				}
				t.Logf("%s/%s: %d cycles, trace %#x, ram %#x", tc.name, pr.name, cOn, thOn, rhOn)
			})
		}
	}
}
