package guest

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"nova/internal/hw"
	"nova/internal/prof"
)

// profABRun boots one workload (optionally profiled) and returns the
// final cycle count, the trace hash (0 in native mode), an FNV hash of
// all physical RAM, and the final vCPU state rendering — everything the
// zero-perturbation rule says the profiler must not move.
func profABRun(t *testing.T, cfg RunnerConfig, img []byte, params []uint32) (hw.Cycles, uint64, uint64, string) {
	t.Helper()
	if cfg.Mode != ModeNative {
		cfg.TraceCapacity = 4096
	}
	r, err := NewRunner(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	r.Chunk = 100_000
	writeParams(r, params...)
	cycles, err := r.RunUntilDone(10_000_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var traceHash uint64
	if r.Tracer != nil {
		traceHash = r.Tracer.Hash()
	}
	h := fnv.New64a()
	h.Write(r.Plat.Mem.RAM())
	var state string
	if v := r.VCPU(); v != nil {
		state = v.State.String()
	} else {
		state = r.BM.State.String()
	}
	return cycles, traceHash, h.Sum64(), state
}

// profABCases are the profiler's A/B workloads: the native baseline
// (interpreter StepHook path), EPT (exit attribution + disk server),
// and vTLB (fill attribution), covering every profiler hook.
func profABCases() []struct {
	name   string
	cfg    RunnerConfig
	img    []byte
	params []uint32
} {
	return []struct {
		name   string
		cfg    RunnerConfig
		img    []byte
		params []uint32
	}{
		{
			name:   "native-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeNative},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "ept-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name:   "vtlb-compute",
			cfg:    RunnerConfig{Model: hw.BLM, Mode: ModeVirtVTLB},
			img:    MustBuild(ComputeKernelWithSwitches(true, false, 8)),
			params: []uint32{3, 64 << 10},
		},
		{
			name: "ept-disk-boot",
			cfg: RunnerConfig{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true,
				WithDiskServer: true},
			img:    MustBuild(DiskChecksumKernel()),
			params: []uint32{8, 4, 2000},
		},
	}
}

// TestProfilerABIdentity runs each workload with the sampling profiler
// off and on and requires bit-identical outcomes: same cycle totals,
// same encoded-trace hash, same final physical memory, same final vCPU
// state. The profiler is host-side observability only; any divergence
// means a sample charged cycles, touched guest state, or perturbed the
// event order.
func TestProfilerABIdentity(t *testing.T) {
	for _, tc := range profABCases() {
		t.Run(tc.name, func(t *testing.T) {
			off := tc.cfg
			on := tc.cfg
			on.ProfilePeriod = 10_000
			cOff, thOff, rhOff, stOff := profABRun(t, off, tc.img, tc.params)
			cOn, thOn, rhOn, stOn := profABRun(t, on, tc.img, tc.params)
			if cOn != cOff {
				t.Errorf("cycle totals differ: prof-on %d vs prof-off %d (Δ=%d)", cOn, cOff, int64(cOn)-int64(cOff))
			}
			if thOn != thOff {
				t.Errorf("trace hashes differ: prof-on %#x vs prof-off %#x", thOn, thOff)
			}
			if rhOn != rhOff {
				t.Errorf("final physical memory differs: prof-on %#x vs prof-off %#x", rhOn, rhOff)
			}
			if stOn != stOff {
				t.Errorf("final vCPU state differs:\n prof-on  %s\n prof-off %s", stOn, stOff)
			}
			t.Logf("%s: %d cycles, trace %#x, ram %#x", tc.name, cOn, thOn, rhOn)
		})
	}
}

// profEncodeRun performs one profiled run and returns the encoded
// profile bytes.
func profEncodeRun(t *testing.T, cfg RunnerConfig, img []byte, params []uint32) []byte {
	t.Helper()
	cfg.ProfilePeriod = 10_000
	r, err := NewRunner(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	r.Chunk = 100_000
	writeParams(r, params...)
	if _, err := r.RunUntilDone(10_000_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := r.EncodeProfile(16)
	if err != nil {
		t.Fatalf("encode profile: %v", err)
	}
	return b
}

// TestProfileDoubleRunByteIdentity runs each workload twice with
// profiling enabled and requires byte-identical encoded profiles with a
// nonzero sample count: the sampling grid, the stack walks, the
// attributions and the captured code bytes all derive from
// deterministic simulation state, so nothing may vary between runs.
func TestProfileDoubleRunByteIdentity(t *testing.T) {
	for _, tc := range profABCases() {
		t.Run(tc.name, func(t *testing.T) {
			b1 := profEncodeRun(t, tc.cfg, tc.img, tc.params)
			b2 := profEncodeRun(t, tc.cfg, tc.img, tc.params)
			if !bytes.Equal(b1, b2) {
				t.Fatalf("two profiled runs encode differently (%d vs %d bytes)", len(b1), len(b2))
			}
			d, err := prof.Decode(b1)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if d.TotalSamples() == 0 {
				t.Fatal("profiled run recorded zero samples")
			}
			t.Logf("%s: %d samples, %d attributed events, %s",
				tc.name, d.TotalSamples(), len(d.Attrib), fmt.Sprintf("%d bytes", len(b1)))
		})
	}
}
