package guest

import "fmt"

// Guest-side AHCI driver, written once and used in all three
// configurations of Figure 6: natively it programs the host controller,
// with direct assignment it programs the same controller through the
// IOMMU-protected passthrough mapping, and fully virtualized it
// programs the VMM's device model. The driver issues READ/WRITE DMA EXT
// through command slot 0 and synchronizes with the completion interrupt
// (IRQ 11, vector 0x2b).

// Driver memory layout inside the guest.
const (
	AHCIMMIOConst = 0xfeb00000
	ahciCLB       = 0x10000
	ahciCTBA      = 0x10400
)

// AHCIDriverFragment returns the driver subroutines: ahci_init,
// ahci_read (eax=LBA, ecx=sectors, edi=buffer), ahci_write (same), and
// ahci_wait (hlt until the completion ISR fires).
func AHCIDriverFragment() string {
	return fmt.Sprintf(`
ahci_init:
	push esi
	mov esi, %#x
	mov dword [esi+0x100], %#x
	mov dword [esi+0x104], 0
	mov dword [esi+0x110], 0xffffffff
	mov dword [esi+0x114], 0x40000001
	mov dword [esi+0x118], 0x11
	mov dword [esi+0x04], 2
	pop esi
	ret

ahci_cmd_common:
	mov dword [disk_done], 0
	mov edx, 0x10005
	cmp byte [disk_write], 0
	jz acc_read
	or edx, 0x40
acc_read:
	mov [%#x], edx
	mov dword [%#x + 8], %#x
	mov dword [%#x + 12], 0
	mov byte [%#x], 0x27
	mov byte [%#x + 1], 0x80
	mov bl, 0x25
	cmp byte [disk_write], 0
	jz acc_rcmd
	mov bl, 0x35
acc_rcmd:
	mov [%#x + 2], bl
	mov [%#x + 4], al
	mov ebx, eax
	shr ebx, 8
	mov [%#x + 5], bl
	shr ebx, 8
	mov [%#x + 6], bl
	mov byte [%#x + 7], 0x40
	shr ebx, 8
	mov [%#x + 8], bl
	mov byte [%#x + 9], 0
	mov byte [%#x + 10], 0
	mov [%#x + 12], cx
	mov [%#x + 0x80], edi
	mov dword [%#x + 0x84], 0
	mov ebx, ecx
	shl ebx, 9
	dec ebx
	mov [%#x + 0x8c], ebx
	push esi
	mov esi, %#x
	mov dword [esi+0x138], 1
	pop esi
	ret

ahci_read:
	mov byte [disk_write], 0
	jmp ahci_cmd_common

ahci_write:
	mov byte [disk_write], 1
	jmp ahci_cmd_common

ahci_wait:
	cli
	mov eax, [disk_done]
	test eax, eax
	jnz aw_done
	sti
	hlt
	jmp ahci_wait
aw_done:
	sti
	ret

disk_done: dd 0
disk_write: db 0
align 4
`,
		AHCIMMIOConst,
		ahciCLB,
		ahciCLB, ahciCLB, ahciCTBA, ahciCLB,
		ahciCTBA, ahciCTBA,
		ahciCTBA, ahciCTBA,
		ahciCTBA, ahciCTBA, ahciCTBA,
		ahciCTBA, ahciCTBA, ahciCTBA,
		ahciCTBA, ahciCTBA, ahciCTBA,
		ahciCTBA,
		AHCIMMIOConst,
	)
}

// AHCIISRBody is the ISR fragment for vector 0x2b (IRQ 11): it
// acknowledges the controller and flags completion. The builder's
// wrapper saves EAX and EOIs the PICs.
func AHCIISRBody() string {
	return fmt.Sprintf(`	push esi
	mov esi, %#x
	mov eax, [esi+0x110]
	mov [esi+0x110], eax
	mov dword [esi+0x08], 1
	mov dword [disk_done], 1
	pop esi`, AHCIMMIOConst)
}

// AHCIVector is the interrupt vector of the driver's ISR.
const AHCIVector = 0x2b
