package guest

import (
	"testing"

	"nova/internal/hw"
)

// startStream feeds the platform NIC a token-bucket packet stream.
func startStream(r *Runner, pktBytes int, mbit float64, count uint64) *hw.PacketSource {
	if err := r.RunUntilGuest32(RxReadyAddr, 1, 1<<32); err != nil {
		panic(err)
	}
	src := hw.NewPacketSource(r.Plat.NIC, r.Plat.Queue, r.Clock().Now, r.Plat.Cost.FreqMHz,
		pktBytes, mbit, count)
	src.Start()
	return src
}

func TestUDPReceiveNative(t *testing.T) {
	img := MustBuild(UDPReceiveKernel())
	r, err := NewRunner(RunnerConfig{Model: hw.BLM, Mode: ModeNative}, img)
	if err != nil {
		t.Fatal(err)
	}
	const packets = 40
	writeParams(r, packets)
	startStream(r, 1472, 100, packets)
	if _, err := r.RunUntilDone(20_000_000_000); err != nil {
		t.Fatal(err)
	}
	if got := r.ReadGuest32(RxCountAddr); got != packets {
		t.Errorf("rx count = %d, want %d", got, packets)
	}
	if got := r.ReadGuest32(RxBytesAddr); got != packets*1472 {
		t.Errorf("rx bytes = %d, want %d", got, packets*1472)
	}
	if r.Plat.NIC.Stats.PacketsDropped != 0 {
		t.Errorf("drops = %d", r.Plat.NIC.Stats.PacketsDropped)
	}
}

func TestUDPReceiveDirect(t *testing.T) {
	img := MustBuild(UDPReceiveKernel())
	r, err := NewRunner(RunnerConfig{Model: hw.BLM, Mode: ModeDirect, UseVPID: true}, img)
	if err != nil {
		t.Fatal(err)
	}
	const packets = 40
	writeParams(r, packets)
	startStream(r, 1472, 100, packets)
	if _, err := r.RunUntilDone(20_000_000_000); err != nil {
		t.Fatal(err)
	}
	if got := r.ReadGuest32(RxCountAddr); got != packets {
		t.Errorf("rx count = %d, want %d", got, packets)
	}
	v := r.VCPU()
	if v.InjectedIRQs == 0 {
		t.Error("no interrupts were virtualized")
	}
	// Packet data went through IOMMU-translated DMA.
	if r.Plat.IOMMU.DMAPasses == 0 {
		t.Error("no IOMMU-translated NIC DMA")
	}
	if r.Plat.IOMMU.DMABlocks != 0 {
		t.Errorf("IOMMU blocked %d NIC accesses", r.Plat.IOMMU.DMABlocks)
	}
}

func TestUDPReceiveOverheadOrdering(t *testing.T) {
	// Figure 7's claim: direct assignment costs more CPU than native
	// for the same stream, and the overhead scales with interrupts.
	img := MustBuild(UDPReceiveKernel())
	util := map[Mode]float64{}
	for _, mode := range []Mode{ModeNative, ModeDirect} {
		r, err := NewRunner(RunnerConfig{Model: hw.BLM, Mode: mode, UseVPID: true}, img)
		if err != nil {
			t.Fatal(err)
		}
		const packets = 200
		writeParams(r, packets)
		startStream(r, 1472, 124, packets)
		if _, err := r.RunUntilDone(100_000_000_000); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		util[mode] = r.BusyFraction()
	}
	if util[ModeDirect] <= util[ModeNative] {
		t.Errorf("direct utilization (%.5f) not above native (%.5f)", util[ModeDirect], util[ModeNative])
	}
}

func TestNICCoalescingLimitsInterrupts(t *testing.T) {
	// At high packet rates, hardware coalescing caps the interrupt rate
	// (~20000/s), so interrupts << packets.
	img := MustBuild(UDPReceiveKernel())
	r, err := NewRunner(RunnerConfig{Model: hw.BLM, Mode: ModeNative}, img)
	if err != nil {
		t.Fatal(err)
	}
	const packets = 2000
	writeParams(r, packets)
	startStream(r, 64, 500, packets) // ~977k pps: far above the cap
	if _, err := r.RunUntilDone(100_000_000_000); err != nil {
		t.Fatal(err)
	}
	if got := r.ReadGuest32(RxCountAddr); got != packets {
		t.Fatalf("rx count = %d", got)
	}
	if irqs := r.Plat.NIC.Stats.IRQs; irqs >= packets/10 {
		t.Errorf("coalescing ineffective: %d interrupts for %d packets", irqs, packets)
	}
}
