package guest

import (
	"encoding/binary"
	"testing"

	"nova/internal/hw"
	"nova/internal/x86"
)

// writeParams stores the workload parameter block.
func writeParams(r *Runner, params ...uint32) {
	b := make([]byte, len(params)*4)
	for i, p := range params {
		binary.LittleEndian.PutUint32(b[i*4:], p)
	}
	r.WriteGuest(ParamBase, b)
}

func TestComputeKernelNative(t *testing.T) {
	img := MustBuild(ComputeKernel(false, false, 0))
	r, err := NewRunner(RunnerConfig{Model: hw.BLM, Mode: ModeNative}, img)
	if err != nil {
		t.Fatal(err)
	}
	writeParams(r, 3, 64<<10)
	cycles, err := r.RunUntilDone(2_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadGuest32(ProgressAddr) != 3 {
		t.Errorf("progress = %d", r.ReadGuest32(ProgressAddr))
	}
	if cycles == 0 {
		t.Error("no time elapsed")
	}
}

func TestComputeKernelAllModes(t *testing.T) {
	img := MustBuild(ComputeKernelWithSwitches(true, false, 8))
	var times = map[Mode]hw.Cycles{}
	for _, mode := range []Mode{ModeNative, ModeDirect, ModeVirtEPT, ModeVirtVTLB} {
		r, err := NewRunner(RunnerConfig{Model: hw.BLM, Mode: mode, UseVPID: true, HostLargePages: true}, img)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		r.Chunk = 100_000
		writeParams(r, 5, 256<<10)
		cycles, err := r.RunUntilDone(5_000_000_000)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := r.ReadGuest32(ProgressAddr); got != 5 {
			t.Errorf("%v: progress = %d", mode, got)
		}
		times[mode] = cycles
	}
	// Ordering: native fastest, vTLB slowest.
	if times[ModeVirtEPT] < times[ModeNative] {
		t.Errorf("EPT (%d) faster than native (%d)", times[ModeVirtEPT], times[ModeNative])
	}
	if times[ModeVirtVTLB] <= times[ModeVirtEPT] {
		t.Errorf("vTLB (%d) not slower than EPT (%d)", times[ModeVirtVTLB], times[ModeVirtEPT])
	}
}

func TestDiskReadVirtualizedEndToEnd(t *testing.T) {
	img := MustBuild(DiskChecksumKernel())
	r, err := NewRunner(RunnerConfig{
		Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true, WithDiskServer: true,
	}, img)
	if err != nil {
		t.Fatal(err)
	}
	const startLBA, sectors, requests = 2000, 8, 4
	writeParams(r, sectors, requests, startLBA)
	if _, err := r.RunUntilDone(10_000_000_000); err != nil {
		t.Fatalf("run: %v (console %q)", err, r.VMM.Console())
	}

	// Checksum must match the disk's actual content.
	want := uint32(0)
	buf := make([]byte, sectors*requests*hw.SectorSize)
	if err := r.Plat.AHCI.Disk().ReadSectors(startLBA, sectors*requests, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i += 4 {
		want += binary.LittleEndian.Uint32(buf[i:])
	}
	// The guest summed per request over the same data.
	got := r.ReadGuest32(ParamBase + 12)
	if got != want {
		t.Errorf("guest checksum = %#x, want %#x", got, want)
	}

	// The data went through the real chain: vAHCI -> disk server ->
	// host AHCI -> DMA into guest memory.
	if r.DS.Stats.Requests != requests {
		t.Errorf("disk server requests = %d, want %d", r.DS.Stats.Requests, requests)
	}
	if r.Plat.AHCI.Stats.Commands < requests {
		t.Errorf("host AHCI commands = %d", r.Plat.AHCI.Stats.Commands)
	}
	v := r.VCPU()
	if v.Exits[x86.ExitEPTViolation] == 0 {
		t.Error("no MMIO exits recorded for the virtual controller")
	}
	if v.InjectedIRQs < requests {
		t.Errorf("injected vIRQs = %d, want >= %d", v.InjectedIRQs, requests)
	}
	if r.VMM.Stats.DiskRequests != requests {
		t.Errorf("vmm disk requests = %d", r.VMM.Stats.DiskRequests)
	}
}

func TestDiskReadDirectPassthrough(t *testing.T) {
	img := MustBuild(DiskChecksumKernel())
	r, err := NewRunner(RunnerConfig{
		Model: hw.BLM, Mode: ModeDirect, UseVPID: true,
	}, img)
	if err != nil {
		t.Fatal(err)
	}
	const startLBA, sectors, requests = 512, 4, 3
	writeParams(r, sectors, requests, startLBA)
	if _, err := r.RunUntilDone(10_000_000_000); err != nil {
		t.Fatal(err)
	}
	want := uint32(0)
	buf := make([]byte, sectors*requests*hw.SectorSize)
	r.Plat.AHCI.Disk().ReadSectors(startLBA, sectors*requests, buf) //nolint:errcheck
	for i := 0; i < len(buf); i += 4 {
		want += binary.LittleEndian.Uint32(buf[i:])
	}
	if got := r.ReadGuest32(ParamBase + 12); got != want {
		t.Errorf("guest checksum = %#x, want %#x", got, want)
	}
	v := r.VCPU()
	// Direct assignment: no MMIO emulation exits, but interrupt
	// virtualization exits remain (§8.2).
	if v.Exits[x86.ExitEPTViolation] != 0 {
		t.Errorf("direct mode saw %d MMIO exits", v.Exits[x86.ExitEPTViolation])
	}
	if v.InjectedIRQs < requests {
		t.Errorf("injected vIRQs = %d", v.InjectedIRQs)
	}
	// DMA went through the IOMMU.
	if r.Plat.IOMMU.DMAPasses == 0 {
		t.Error("no IOMMU-translated DMA recorded")
	}
}

func TestDiskReadNative(t *testing.T) {
	img := MustBuild(DiskChecksumKernel())
	r, err := NewRunner(RunnerConfig{Model: hw.BLM, Mode: ModeNative}, img)
	if err != nil {
		t.Fatal(err)
	}
	const startLBA, sectors, requests = 100, 4, 3
	writeParams(r, sectors, requests, startLBA)
	if _, err := r.RunUntilDone(10_000_000_000); err != nil {
		t.Fatal(err)
	}
	want := uint32(0)
	buf := make([]byte, sectors*requests*hw.SectorSize)
	r.Plat.AHCI.Disk().ReadSectors(startLBA, sectors*requests, buf) //nolint:errcheck
	for i := 0; i < len(buf); i += 4 {
		want += binary.LittleEndian.Uint32(buf[i:])
	}
	if got := r.ReadGuest32(ParamBase + 12); got != want {
		t.Errorf("native checksum = %#x, want %#x", got, want)
	}
}

func TestDiskVirtualizationOverheadOrdering(t *testing.T) {
	// Figure 6's qualitative claim: native < direct < virtualized CPU
	// utilization for the same I/O workload.
	img := MustBuild(DiskReadKernel())
	util := map[Mode]float64{}
	for _, cfg := range []RunnerConfig{
		{Model: hw.BLM, Mode: ModeNative},
		{Model: hw.BLM, Mode: ModeDirect, UseVPID: true},
		{Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true, WithDiskServer: true},
	} {
		r, err := NewRunner(cfg, img)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Mode, err)
		}
		writeParams(r, 8, 20, 4096)
		if _, err := r.RunUntilDone(50_000_000_000); err != nil {
			t.Fatalf("%v: %v", cfg.Mode, err)
		}
		util[cfg.Mode] = r.BusyFraction()
	}
	if !(util[ModeNative] < util[ModeDirect] && util[ModeDirect] < util[ModeVirtEPT]) {
		t.Errorf("utilization ordering violated: native=%.4f direct=%.4f virt=%.4f",
			util[ModeNative], util[ModeDirect], util[ModeVirtEPT])
	}
}

func TestDiskWriteReadVirtualized(t *testing.T) {
	img := MustBuild(DiskWriteReadKernel())
	for _, mode := range []Mode{ModeVirtEPT, ModeDirect, ModeNative} {
		cfg := RunnerConfig{Model: hw.BLM, Mode: mode, UseVPID: true}
		if mode == ModeVirtEPT {
			cfg.WithDiskServer = true
		}
		r, err := NewRunner(cfg, img)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		const sectors, lba = 16, 30000
		writeParams(r, sectors, 0, lba)
		if _, err := r.RunUntilDone(20_000_000_000); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if ok := r.ReadGuest32(ParamBase + 16); ok != 1 {
			t.Errorf("%v: write/read mismatch", mode)
		}
		// The data really reached the media.
		buf := make([]byte, sectors*hw.SectorSize)
		if err := r.Plat.AHCI.Disk().ReadSectors(lba, sectors, buf); err != nil {
			t.Fatal(err)
		}
		want := uint32(0x1337c0de)
		got := binary.LittleEndian.Uint32(buf)
		if got != want {
			t.Errorf("%v: media[0] = %#x, want %#x", mode, got, want)
		}
	}
}
