package guest

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"nova/internal/hw"
	"nova/internal/trace"
)

// tinyTraceKernel is a minimal EPT guest for the golden-trace test: two
// POST-code port writes, then the finish marker. Every event it can
// generate is known in advance.
func tinyTraceKernel() KernelOpts {
	return KernelOpts{Workload: `
	mov al, 0x5a
	out 0x80, al
	out 0x80, al
	jmp finish
`}
}

func tinyTraceRun(t *testing.T, capacity int) *Runner {
	t.Helper()
	r, err := NewRunner(RunnerConfig{
		Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true,
		SchedTimerHz:  -1, // no preemption: the event sequence is closed-form
		TraceCapacity: capacity,
	}, MustBuild(tinyTraceKernel()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntilDone(1 << 32); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTraceGoldenSequence pins the exact event sequence of the tiny
// guest: one dispatch, then one (exit, call, pio, reply, resume) group
// per intercepted OUT — ten from the kernel's PIC setup, two from the
// workload — and the final HLT group. A change in instrumentation,
// interception or boot flow shows up here as a diff, not a flake.
func TestTraceGoldenSequence(t *testing.T) {
	r := tinyTraceRun(t, 4096)
	events := r.Tracer.Events()

	var got []string
	for _, e := range events {
		s := e.Kind.String()
		switch e.Kind {
		case trace.KindVMExit, trace.KindVMResume:
			s += ":" + x86ExitName(r, e.A0)
		case trace.KindPIO:
			s += fmt.Sprintf(":%#x=%#x", e.A0, e.A2)
		}
		got = append(got, s)
	}

	ioGroup := func(port, val uint64) string {
		return fmt.Sprintf("vm-exit:io ipc-call pio:%#x=%#x ipc-reply vm-resume:io", port, val)
	}
	want := strings.Fields(strings.Join([]string{
		"sched-dispatch",
		// PIC initialization (ICW1-4 + masks on master and slave).
		ioGroup(0x20, 0x11), ioGroup(0x21, 0x20), ioGroup(0x21, 0x04), ioGroup(0x21, 0x01),
		ioGroup(0xa0, 0x11), ioGroup(0xa1, 0x28), ioGroup(0xa1, 0x02), ioGroup(0xa1, 0x01),
		ioGroup(0x21, 0x00), ioGroup(0xa1, 0x00),
		// The workload's two POST-code writes.
		ioGroup(0x80, 0x5a), ioGroup(0x80, 0x5a),
		// Park at the finish marker.
		"vm-exit:hlt ipc-call ipc-reply vm-resume:hlt",
	}, " "))
	if len(got) != len(want) {
		t.Fatalf("event count %d, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, got[i], want[i])
		}
	}

	// Per-CPU invariants: contiguous sequence numbers, monotone time.
	for cpu, ring := range r.Tracer.Rings() {
		prev := hw.Cycles(0)
		for i, e := range ring.Events() {
			if e.Seq != uint64(i) {
				t.Fatalf("cpu%d event %d has seq %d (gap)", cpu, i, e.Seq)
			}
			if e.Time < prev {
				t.Fatalf("cpu%d time went backwards at event %d", cpu, i)
			}
			prev = e.Time
		}
		if ring.Overwritten() != 0 {
			t.Errorf("cpu%d overwrote %d events in an undersized run", cpu, ring.Overwritten())
		}
	}
}

func x86ExitName(r *Runner, reason uint64) string {
	names := r.Tracer.Meta.ExitReasons
	if int(reason) < len(names) {
		return names[reason]
	}
	return fmt.Sprintf("reason-%d", reason)
}

// TestTracedRunsByteIdentical runs the same guest twice and requires
// the two serialized traces to be equal byte for byte — the strongest
// determinism statement the tracer makes.
func TestTracedRunsByteIdentical(t *testing.T) {
	enc := func() []byte {
		b, err := tinyTraceRun(t, 4096).Tracer.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := enc(), enc()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("traces differ: %d vs %d bytes", len(b1), len(b2))
	}
}

// TestTracingZeroPerturbation requires a traced run to consume exactly
// as much virtual time as an untraced run: trace emission must never
// charge cycles (the tracepure analyzer enforces the same statically).
func TestTracingZeroPerturbation(t *testing.T) {
	run := func(capacity int) hw.Cycles {
		r, err := NewRunner(RunnerConfig{
			Model: hw.BLM, Mode: ModeVirtEPT, UseVPID: true,
			SchedTimerHz: -1, TraceCapacity: capacity,
		}, MustBuild(tinyTraceKernel()))
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := r.RunUntilDone(1 << 32)
		if err != nil {
			t.Fatal(err)
		}
		if (capacity > 0) != (r.Tracer != nil) {
			t.Fatalf("tracer presence does not match capacity %d", capacity)
		}
		return cycles
	}
	off, on := run(0), run(4096)
	if off != on {
		t.Errorf("tracing perturbed the run: %d cycles untraced, %d traced (Δ=%d)",
			off, on, int64(on)-int64(off))
	}
}
