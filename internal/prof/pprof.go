package prof

// pprof output: the profile rendered as a pprof profile.proto message,
// hand-encoded with the handful of protobuf primitives the format
// needs (varints and length-delimited fields), so `go tool pprof` can
// read nova profiles without this repo growing a protobuf dependency.
// The file is written raw (pprof accepts both raw and gzipped input).
//
// Every emission loop below walks sorted slices; the only map is the
// string/location interning index, which is looked up but never
// iterated, so the output bytes are deterministic.

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// pbuf is a minimal protobuf message builder.
type pbuf struct {
	bytes.Buffer
}

func (b *pbuf) varint(v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

// uintField writes a varint-typed field (skipped when zero, matching
// proto3 defaults).
func (b *pbuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	b.varint(uint64(field)<<3 | 0) // wire type 0: varint
	b.varint(v)
}

// bytesField writes a length-delimited field.
func (b *pbuf) bytesField(field int, p []byte) {
	b.varint(uint64(field)<<3 | 2) // wire type 2: length-delimited
	b.varint(uint64(len(p)))
	b.Write(p)
}

func (b *pbuf) strField(field int, s string) {
	b.varint(uint64(field)<<3 | 2)
	b.varint(uint64(len(s)))
	b.WriteString(s)
}

// packed writes a packed repeated varint field.
func (b *pbuf) packed(field int, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	var body pbuf
	for _, v := range vals {
		body.varint(v)
	}
	b.bytesField(field, body.Bytes())
}

func (b *pbuf) msg(field int, m *pbuf) {
	b.bytesField(field, m.Bytes())
}

// frameRef is one interned pprof location: a display name plus the
// address placed in the [guest] mapping (zero for synthetic frames).
type frameRef struct {
	name string
	addr uint64
}

// WritePprof renders the profile as a pprof protobuf. Periodic samples
// become stack samples labeled event=sample; attributed virtualization
// events become single-frame samples labeled event=exit/vtlb-fill/
// emulate. Both carry two values: sample count and virtual cycles
// (estimated weight×period for samples, exact modeled cost for
// attributed events).
func (d *Data) WritePprof(w io.Writer) error {
	type row struct {
		key    string
		frames []frameRef
		mode   string
		event  string
		count  uint64
		cycles uint64
	}
	var rows []row
	var kb strings.Builder
	for _, per := range d.Samples {
		for _, s := range per {
			if len(s.Frames) == 0 {
				continue
			}
			r := row{mode: s.Mode.String(), event: "sample", count: s.Weight,
				cycles: s.Weight * d.Meta.Period}
			for _, f := range s.Frames {
				ref := frameRef{name: FrameName(s.Mode, f)}
				if s.Mode != ModeServer {
					ref.addr = uint64(f)
				}
				r.frames = append(r.frames, ref)
			}
			kb.Reset()
			kb.WriteString(r.event)
			kb.WriteByte(0)
			kb.WriteString(r.mode)
			for _, f := range r.frames {
				kb.WriteByte(0)
				kb.WriteString(f.name)
			}
			r.key = kb.String()
			rows = append(rows, r)
		}
	}
	for _, a := range d.Attrib {
		mode := ModeKernel
		if a.Kind == AttribEmulate {
			mode = ModeEmulation
		}
		r := row{
			frames: []frameRef{{name: FrameName(mode, a.RIP), addr: uint64(a.RIP)}},
			mode:   mode.String(), event: a.Kind.String(),
			count: a.Count, cycles: a.Cycles,
		}
		r.key = r.event + "\x00" + r.mode + "\x00" + r.frames[0].name
		rows = append(rows, r)
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	merged := rows[:0]
	for _, r := range rows {
		if n := len(merged); n > 0 && merged[n-1].key == r.key {
			merged[n-1].count += r.count
			merged[n-1].cycles += r.cycles
			continue
		}
		merged = append(merged, r)
	}

	// Interning: index maps are lookup-only; emission order comes from
	// the append-ordered slices.
	strs := []string{""}
	strIdx := map[string]uint64{"": 0}
	intern := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}
	var locs []frameRef
	locIdx := map[string]uint64{}
	internLoc := func(f frameRef) uint64 {
		if i, ok := locIdx[f.name]; ok {
			return i
		}
		locs = append(locs, f)
		i := uint64(len(locs)) // ids are 1-based
		locIdx[f.name] = i
		return i
	}

	var p pbuf

	valueType := func(typ, unit string) *pbuf {
		var vt pbuf
		vt.uintField(1, intern(typ))
		vt.uintField(2, intern(unit))
		return &vt
	}
	p.msg(1, valueType("samples", "count")) // sample_type
	p.msg(1, valueType("cycles", "cycles"))

	modeKey, eventKey := intern("mode"), intern("event")
	for _, r := range merged {
		var s pbuf
		ids := make([]uint64, 0, len(r.frames))
		for _, f := range r.frames {
			ids = append(ids, internLoc(f))
		}
		s.packed(1, ids)                           // location_id, leaf first
		s.packed(2, []uint64{r.count, r.cycles})   // value
		for _, lab := range [...][2]uint64{{modeKey, intern(r.mode)}, {eventKey, intern(r.event)}} {
			var l pbuf
			l.uintField(1, lab[0]) // key
			l.uintField(2, lab[1]) // str
			s.msg(3, &l)
		}
		p.msg(2, &s) // sample
	}

	guestFile := intern("[guest]")
	var m pbuf
	m.uintField(1, 1)       // id
	m.uintField(3, 1<<32)   // memory_limit: the 32-bit guest space
	m.uintField(5, guestFile)
	m.uintField(7, 1) // has_functions
	p.msg(3, &m)      // mapping

	for i, f := range locs {
		var l pbuf
		l.uintField(1, uint64(i+1)) // id
		l.uintField(2, 1)           // mapping_id
		l.uintField(3, f.addr)      // address
		var ln pbuf
		ln.uintField(1, uint64(i+1)) // line.function_id
		l.msg(4, &ln)
		p.msg(4, &l) // location
	}
	for i, f := range locs {
		name := intern(f.name)
		var fn pbuf
		fn.uintField(1, uint64(i+1)) // id
		fn.uintField(2, name)        // name
		fn.uintField(3, name)        // system_name
		fn.uintField(4, guestFile)   // filename
		p.msg(5, &fn) // function
	}

	cyclesStr := intern("cycles")
	for _, s := range strs {
		p.strField(6, s) // string_table
	}
	var pt pbuf
	pt.uintField(1, cyclesStr)
	pt.uintField(2, cyclesStr)
	p.msg(11, &pt)                        // period_type
	p.uintField(12, d.Meta.Period)        // period
	p.uintField(14, cyclesStr)            // default_sample_type

	if _, err := w.Write(p.Bytes()); err != nil {
		return fmt.Errorf("prof: pprof write: %w", err)
	}
	return nil
}
