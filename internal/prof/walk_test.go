package prof

import "testing"

// stackImage builds a MemReader over a little map of 32-bit stack
// slots, standing in for the pure guest-memory readers the hypervisor
// provides. Addresses absent from the map decline, exactly like a read
// that leaves RAM or lands in MMIO.
func stackImage(words map[uint32]uint32) MemReader {
	return func(va uint32) (uint32, bool) {
		v, ok := words[va]
		return v, ok
	}
}

func TestWalkEBPValidChain(t *testing.T) {
	// Three frames: ebp=0x1000 -> 0x1100 -> 0x1200 -> null.
	read := stackImage(map[uint32]uint32{
		0x1000: 0x1100, 0x1004: 0x8010,
		0x1100: 0x1200, 0x1104: 0x8020,
		0x1200: 0,      0x1204: 0x8030,
	})
	var out [MaxFrames]uint32
	n := WalkEBP(0x8000, 0x1000, 0, 0, read, out[:])
	want := []uint32{0x8000, 0x8010, 0x8020, 0x8030}
	if n != len(want) {
		t.Fatalf("got %d frames %#x, want %d", n, out[:n], len(want))
	}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("frame %d = %#x, want %#x", i, out[i], w)
		}
	}
}

func TestWalkEBPSegmentBases(t *testing.T) {
	// Segmented setup: stack offsets read at stackBase+off, return
	// addresses are code-segment offsets recorded at codeBase+ret.
	read := stackImage(map[uint32]uint32{
		0x20000 + 0x100: 0, 0x20000 + 0x104: 0x42,
	})
	var out [4]uint32
	n := WalkEBP(0x7c05, 0x100, 0x20000, 0x7c00, read, out[:])
	if n != 2 || out[0] != 0x7c05 || out[1] != 0x7c00+0x42 {
		t.Fatalf("got %d frames %#x", n, out[:n])
	}
}

func TestWalkEBPCycleTerminates(t *testing.T) {
	// A corrupt chain that points back at itself must terminate via the
	// monotonic-progress rule, not loop.
	read := stackImage(map[uint32]uint32{
		0x1000: 0x1100, 0x1004: 0x8010,
		0x1100: 0x1000, 0x1104: 0x8020, // cycles back down
	})
	var out [MaxFrames]uint32
	n := WalkEBP(0x8000, 0x1000, 0, 0, read, out[:])
	if n != 3 {
		t.Fatalf("got %d frames %#x, want 3 (cycle must stop the walk)", n, out[:n])
	}
}

func TestWalkEBPOutsideRAM(t *testing.T) {
	// A frame pointer aimed past RAM (the reader declines) ends the
	// walk with just the sampled address — never a fault.
	read := stackImage(nil)
	var out [MaxFrames]uint32
	if n := WalkEBP(0x8000, 0xfff0_0000, 0, 0, read, out[:]); n != 1 {
		t.Fatalf("got %d frames, want 1", n)
	}
}

func TestWalkEBPChainIntoMMIO(t *testing.T) {
	// First frame is fine; the saved EBP then points into a region the
	// pure reader declines (an MMIO window). The walk keeps the good
	// frame and stops.
	read := stackImage(map[uint32]uint32{
		0x1000: 0xe000_0000, 0x1004: 0x8010,
	})
	var out [MaxFrames]uint32
	n := WalkEBP(0x8000, 0x1000, 0, 0, read, out[:])
	if n != 2 || out[1] != 0x8010 {
		t.Fatalf("got %d frames %#x, want [0x8000 0x8010]", n, out[:n])
	}
}

func TestWalkEBPMisalignedAndNull(t *testing.T) {
	read := stackImage(map[uint32]uint32{0x1000: 0x1100, 0x1004: 0x8010})
	var out [MaxFrames]uint32
	if n := WalkEBP(0x8000, 0x1001, 0, 0, read, out[:]); n != 1 {
		t.Fatalf("misaligned ebp: got %d frames, want 1", n)
	}
	if n := WalkEBP(0x8000, 0, 0, 0, read, out[:]); n != 1 {
		t.Fatalf("null ebp: got %d frames, want 1", n)
	}
	if n := WalkEBP(0x8000, 0x1000, 0, 0, read, nil); n != 0 {
		t.Fatalf("empty out: got %d frames, want 0", n)
	}
}

func TestWalkEBPBounded(t *testing.T) {
	// An arbitrarily long valid chain stops at len(out).
	words := map[uint32]uint32{}
	for fp := uint32(0x1000); fp < 0x1000+4096; fp += 8 {
		words[fp] = fp + 8
		words[fp+4] = 0x8000 + fp
	}
	read := stackImage(words)
	var out [MaxFrames]uint32
	if n := WalkEBP(0x8000, 0x1000, 0, 0, read, out[:]); n != MaxFrames {
		t.Fatalf("got %d frames, want %d", n, MaxFrames)
	}
}
