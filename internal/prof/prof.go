// Package prof is the virtual-time sampling profiler of the simulation:
// where nova-trace answers "which virtualization events happened",
// nova-prof answers "which guest code is paying for them".
//
// The profiler is driven entirely by the virtual clock. Every Period
// cycles of virtual time a sample of (guest RIP, CS default size,
// execution mode) lands in a fixed-capacity per-CPU buffer, together
// with a best-effort EBP-chain walk of the guest stack. Independently,
// every VM exit, vTLB fill and VMM-emulated instruction is attributed —
// with its exact modeled cost — to the guest instruction that caused
// it, so exit-heavy addresses stand out even between sample points.
//
// The design contract is the same zero-perturbation rule the trace
// layer obeys (enforced by the nova-vet tracepure analyzer and the A/B
// identity test): recording a sample must never charge simulated
// cycles, mutate guest-visible state, or read the wall clock. Stack
// walks therefore run over pure, bounds-checked memory readers that
// decline MMIO and never set page-table accessed bits. Because both the
// sampling grid and every recorded field derive from deterministic
// simulation state, two profiled runs of the same workload emit
// byte-identical profiles.
package prof

import (
	"nova/internal/hw"
)

// Mode classifies where the sampled virtual time was spent — the
// paper's own cost decomposition (guest work vs. virtualization work).
type Mode uint8

// Execution modes.
const (
	// ModeGuest: the vCPU was executing guest instructions.
	ModeGuest Mode = iota
	// ModeEmulation: the user-level VMM was emulating an instruction.
	ModeEmulation
	// ModeKernel: the microhypervisor was handling an exit or fill.
	ModeKernel
	// ModeServer: a user-level server EC (disk, network) was running;
	// the sample address is the EC's id, not a guest address.
	ModeServer
)

// NumModes sizes per-mode tables.
const NumModes = int(ModeServer) + 1

var modeNames = [NumModes]string{
	ModeGuest:     "guest",
	ModeEmulation: "emulation",
	ModeKernel:    "kernel",
	ModeServer:    "server",
}

func (m Mode) String() string {
	if int(m) < NumModes {
		return modeNames[m]
	}
	return "mode?"
}

// ModeNames returns the mode-name table in mode order (for Meta).
func ModeNames() []string {
	names := make([]string, NumModes)
	copy(names, modeNames[:])
	return names
}

// AttribKind classifies an exact-cost attribution record: which
// virtualization event charged the cycles that land on a guest address.
type AttribKind uint8

// Attribution kinds.
const (
	// AttribExit: one VM-exit window (exit to resume), attributed to
	// the guest instruction that took the exit.
	AttribExit AttribKind = iota
	// AttribVTLBFill: one shadow-page-table fill (§5.3).
	AttribVTLBFill
	// AttribEmulate: one VMM-emulated instruction (§7.1).
	AttribEmulate
)

// NumAttribKinds sizes per-kind tables.
const NumAttribKinds = int(AttribEmulate) + 1

var attribKindNames = [NumAttribKinds]string{
	AttribExit:     "exit",
	AttribVTLBFill: "vtlb-fill",
	AttribEmulate:  "emulate",
}

func (k AttribKind) String() string {
	if int(k) < NumAttribKinds {
		return attribKindNames[k]
	}
	return "attrib?"
}

// Meta describes the run that produced a profile.
type Meta struct {
	Model   string `json:"model"`
	FreqMHz int    `json:"freq_mhz"`
	NumCPUs int    `json:"num_cpus"`
	// Period is the sampling grid spacing in virtual cycles.
	Period uint64 `json:"period_cycles"`
	// Capacity is the per-CPU sample-buffer capacity.
	Capacity  int      `json:"capacity"`
	ModeNames []string `json:"mode_names"`
}

// MemReader reads one little-endian 32-bit word of guest-virtual
// memory with no side effects whatsoever: no cycle charges, no TLB or
// shadow fills, no accessed/dirty-bit updates, no MMIO routing. A false
// return means the address does not resolve to plain RAM; the stack
// walker treats that as the end of the frame chain.
type MemReader func(va uint32) (uint32, bool)

// GuestCtx carries the architectural context of one sample point.
type GuestCtx struct {
	// RIP is the sampled linear instruction address (CS.Base + EIP).
	// For ModeServer samples it is the server EC's id instead.
	RIP uint32
	// Def32 is the code segment's D bit at the sample point.
	Def32 bool
	// EBP is the frame-pointer offset within the stack segment.
	EBP uint32
	// StackBase/CodeBase linearize stack and code offsets (SS.Base and
	// CS.Base; zero in flat or real-address setups where they match).
	StackBase uint32
	CodeBase  uint32
	// Read, when non-nil, enables the EBP-chain stack walk.
	Read MemReader
}

// MaxFrames bounds the stack walk: the sampled address plus at most
// fifteen return addresses.
const MaxFrames = 16

// rec is one stored sample. Frames are inline so pushing a sample never
// allocates (the trace-ring rule: emission never blocks or allocates).
type rec struct {
	time   hw.Cycles
	weight uint64
	mode   Mode
	def32  bool
	n      uint8
	frames [MaxFrames]uint32
}

// Buf is one CPU's fixed-capacity sample buffer. When full, the oldest
// sample is overwritten and counted, exactly like a trace ring.
type Buf struct {
	buf []rec
	w   int    // next write index
	n   int    // live samples
	seq uint64 // samples ever pushed
}

func newBuf(capacity int) *Buf {
	if capacity < 1 {
		capacity = 1
	}
	return &Buf{buf: make([]rec, capacity)}
}

// Len returns the number of live samples.
func (b *Buf) Len() int { return b.n }

// Overwritten returns how many samples were dropped to make room.
func (b *Buf) Overwritten() uint64 { return b.seq - uint64(b.n) }

func (b *Buf) push(r rec) {
	b.buf[b.w] = r
	b.seq++
	b.w++
	if b.w == len(b.buf) {
		b.w = 0
	}
	if b.n < len(b.buf) {
		b.n++
	}
}

// recs returns the live samples oldest-first.
func (b *Buf) recs() []rec {
	out := make([]rec, 0, b.n)
	start := b.w - b.n
	if start < 0 {
		start += len(b.buf)
	}
	for i := 0; i < b.n; i++ {
		out = append(out, b.buf[(start+i)%len(b.buf)])
	}
	return out
}

// Profiler is the per-platform sampling sink. All methods are nil-safe
// so instrumented code needs no enablement checks: a nil *Profiler
// means profiling is off and every call is a two-instruction no-op.
type Profiler struct {
	Meta Meta

	bufs []*Buf
	// next is the per-CPU virtual time of the next sampling grid
	// point. Zero means the CPU has not been observed yet; the first
	// observation anchors the grid one period later.
	next []hw.Cycles

	attrib attribSet
	code   []CodeSite
}

// New creates a profiler sampling every period cycles with one buffer
// of the given capacity per CPU.
func New(meta Meta, cpus int, period uint64, capacity int) *Profiler {
	if period == 0 {
		period = 10_000
	}
	p := &Profiler{Meta: meta}
	p.Meta.NumCPUs = cpus
	p.Meta.Period = period
	p.Meta.Capacity = capacity
	p.Meta.ModeNames = ModeNames()
	for i := 0; i < cpus; i++ {
		p.bufs = append(p.bufs, newBuf(capacity))
		p.next = append(p.next, 0)
	}
	return p
}

// Tick advances cpu's sampling grid to now and, when one or more grid
// points were crossed since the last call, records a single sample
// weighted by the number of crossings. Callers invoke it from their
// execution hot loops; virtually all calls return after one compare.
func (p *Profiler) Tick(cpu int, now hw.Cycles, mode Mode, g GuestCtx) {
	if p == nil || cpu < 0 || cpu >= len(p.bufs) {
		return
	}
	next := p.next[cpu]
	if next == 0 {
		// First observation on this CPU: anchor the grid.
		p.next[cpu] = now + hw.Cycles(p.Meta.Period)
		return
	}
	if now < next {
		return
	}
	period := hw.Cycles(p.Meta.Period)
	weight := uint64((now-next)/period) + 1
	p.next[cpu] = next + hw.Cycles(weight)*period

	r := rec{time: now, weight: weight, mode: mode, def32: g.Def32}
	if g.Read != nil {
		var out [MaxFrames]uint32
		n := WalkEBP(g.RIP, g.EBP, g.StackBase, g.CodeBase, g.Read, out[:])
		r.frames = out
		r.n = uint8(n)
	} else {
		r.frames[0] = g.RIP
		r.n = 1
	}
	p.bufs[cpu].push(r)
}

// SkipIdle advances cpu's sampling grid past an idle period (HLT, event
// waits) without recording: idle virtual time belongs to no code
// address. Grid points crossed while idle are simply dropped.
func (p *Profiler) SkipIdle(cpu int, now hw.Cycles) {
	if p == nil || cpu < 0 || cpu >= len(p.next) {
		return
	}
	next := p.next[cpu]
	if next == 0 {
		p.next[cpu] = now + hw.Cycles(p.Meta.Period)
		return
	}
	if now < next {
		return
	}
	period := hw.Cycles(p.Meta.Period)
	crossed := uint64((now-next)/period) + 1
	p.next[cpu] = next + hw.Cycles(crossed)*period
}

// Attribute adds one virtualization event of the given kind at the
// guest linear address rip, carrying its exact modeled cost.
func (p *Profiler) Attribute(kind AttribKind, rip uint32, def32 bool, cycles uint64) {
	if p == nil {
		return
	}
	p.attrib.add(attribKey(kind, rip, def32), cycles)
}

// TotalSamples returns the number of grid points recorded so far
// (the sum of live sample weights across CPUs).
func (p *Profiler) TotalSamples() uint64 {
	if p == nil {
		return 0
	}
	var total uint64
	for _, b := range p.bufs {
		for _, r := range b.recs() {
			total += r.weight
		}
	}
	return total
}

// attribKey packs (kind, def32, rip) into one ordered key.
func attribKey(kind AttribKind, rip uint32, def32 bool) uint64 {
	k := uint64(kind) << 33
	if def32 {
		k |= 1 << 32
	}
	return k | uint64(rip)
}

func attribKeyFields(k uint64) (kind AttribKind, rip uint32, def32 bool) {
	return AttribKind(k >> 33), uint32(k), k&(1<<32) != 0
}

// attribSet aggregates attribution records in sorted parallel slices —
// the trace.CounterSet idiom — so encoding never iterates a map and
// output order is deterministic by construction.
type attribSet struct {
	keys   []uint64
	counts []uint64
	cycles []uint64
}

func (a *attribSet) add(key, cy uint64) {
	lo, hi := 0, len(a.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.keys) && a.keys[lo] == key {
		a.counts[lo]++
		a.cycles[lo] += cy
		return
	}
	a.keys = append(a.keys, 0)
	copy(a.keys[lo+1:], a.keys[lo:])
	a.keys[lo] = key
	a.counts = append(a.counts, 0)
	copy(a.counts[lo+1:], a.counts[lo:])
	a.counts[lo] = 1
	a.cycles = append(a.cycles, 0)
	copy(a.cycles[lo+1:], a.cycles[lo:])
	a.cycles[lo] = cy
}

// CodeSite is a snapshot of the instruction bytes at a hot address,
// captured after the run so reports can disassemble hot sites.
type CodeSite struct {
	Addr  uint32
	Def32 bool
	Bytes []byte
}

// maxInstBytes is the architectural x86 instruction-length limit.
const maxInstBytes = 15

// CaptureCode snapshots up to maxInstBytes of code at each of the topN
// hottest addresses, through a pure byte reader (same contract as
// MemReader). Call it when the run has finished, before encoding.
func (p *Profiler) CaptureCode(topN int, read func(va uint32) (byte, bool)) {
	if p == nil || read == nil {
		return
	}
	p.code = p.code[:0]
	for _, h := range p.Data().Hot(topN) {
		var buf [maxInstBytes]byte
		n := 0
		for n < maxInstBytes {
			b, ok := read(h.Addr + uint32(n))
			if !ok {
				break
			}
			buf[n] = b
			n++
		}
		if n == 0 {
			continue
		}
		site := CodeSite{Addr: h.Addr, Def32: h.Def32}
		site.Bytes = append(site.Bytes, buf[:n]...)
		p.code = append(p.code, site)
	}
}

// Sample is the decoded form of one recorded sample.
type Sample struct {
	Time hw.Cycles
	// Weight is the number of sampling grid points this sample stands
	// for (greater than one when several periods elapsed between
	// observation points).
	Weight uint64
	Mode   Mode
	Def32  bool
	// Frames holds linear addresses leaf-first: Frames[0] is the
	// sampled address, the rest are best-effort return addresses.
	Frames []uint32
}

// AttribEntry is the decoded form of one attribution aggregate.
type AttribEntry struct {
	Kind   AttribKind
	RIP    uint32
	Def32  bool
	Count  uint64
	Cycles uint64
}

// Data is a decoded (or snapshotted) profile, the unit every renderer
// operates on.
type Data struct {
	Meta        Meta
	Samples     [][]Sample // index = CPU, oldest first
	Overwritten []uint64   // per CPU
	Attrib      []AttribEntry
	Code        []CodeSite
}

// Data snapshots the live profiler into the decoded form.
func (p *Profiler) Data() *Data {
	if p == nil {
		return &Data{}
	}
	d := &Data{Meta: p.Meta}
	for _, b := range p.bufs {
		recs := b.recs()
		samples := make([]Sample, 0, len(recs))
		for _, r := range recs {
			s := Sample{Time: r.time, Weight: r.weight, Mode: r.mode, Def32: r.def32}
			s.Frames = append(s.Frames, r.frames[:r.n]...)
			samples = append(samples, s)
		}
		d.Samples = append(d.Samples, samples)
		d.Overwritten = append(d.Overwritten, b.Overwritten())
	}
	for i, key := range p.attrib.keys {
		kind, rip, def32 := attribKeyFields(key)
		d.Attrib = append(d.Attrib, AttribEntry{
			Kind: kind, RIP: rip, Def32: def32,
			Count: p.attrib.counts[i], Cycles: p.attrib.cycles[i],
		})
	}
	d.Code = append(d.Code, p.code...)
	return d
}

// TotalSamples returns the number of recorded grid points (sum of
// sample weights).
func (d *Data) TotalSamples() uint64 {
	var total uint64
	for _, per := range d.Samples {
		for _, s := range per {
			total += s.Weight
		}
	}
	return total
}
