package prof

// WalkEBP performs a best-effort frame-pointer walk of a guest stack:
// out[0] gets rip, then each saved-EBP/return-address pair reachable
// through the EBP chain appends one caller frame, until the chain ends,
// loops, leaves RAM, or out is full. The walk is purely advisory — the
// guest owes us no frame pointers — so every termination condition is
// a silent stop, never an error, and the reader contract guarantees no
// guest-visible side effects regardless of what EBP points at.
//
// ebp and the stack slots it chains through are offsets within the
// stack segment (read at stackBase+offset); return addresses are
// offsets within the code segment (recorded as codeBase+offset), which
// collapses to plain linear addresses in flat setups where both bases
// are zero. The returned count is the number of frames written.
func WalkEBP(rip, ebp, stackBase, codeBase uint32, read MemReader, out []uint32) int {
	if len(out) == 0 {
		return 0
	}
	out[0] = rip
	n := 1
	fp := ebp
	for n < len(out) {
		// A null or misaligned frame pointer ends the chain. The
		// alignment test is heuristic: compilers keep EBP 4-aligned,
		// and an unaligned value means EBP holds data, not a frame.
		if fp == 0 || fp&3 != 0 {
			break
		}
		ret, ok := read(stackBase + fp + 4)
		if !ok {
			break
		}
		next, ok := read(stackBase + fp)
		if !ok {
			break
		}
		if ret == 0 {
			break
		}
		out[n] = codeBase + ret
		n++
		// Stacks grow down, so a genuine caller frame sits at a
		// strictly higher address. Requiring monotonic progress also
		// terminates any cycle in a corrupt chain.
		if next <= fp {
			break
		}
		fp = next
	}
	return n
}
