package prof

import (
	"fmt"
	"sort"
	"strings"
)

// HotAddr is one row of the hot-address table: everything the profile
// knows about one guest code address, aggregated across CPUs. Sampled
// cycles are an estimate (weight × period); attributed cycles are the
// exact modeled costs of the exits, fills and emulations this address
// caused.
type HotAddr struct {
	Addr  uint32
	Def32 bool
	// Samples is the number of sampling grid points whose leaf frame
	// was this address; SampleCycles = Samples × Period.
	Samples      uint64
	SampleCycles uint64
	// Exact attribution, per event kind.
	Exits      uint64
	ExitCycles uint64
	Fills      uint64
	FillCycles uint64
	Emuls      uint64
	EmulCycles uint64
}

// TotalCycles is the row's ranking key: estimated self cycles plus
// exact attributed virtualization cycles.
func (h HotAddr) TotalCycles() uint64 {
	return h.SampleCycles + h.ExitCycles + h.FillCycles + h.EmulCycles
}

// hotKey orders rows by (addr, def32) during aggregation.
func hotKey(addr uint32, def32 bool) uint64 {
	k := uint64(addr) << 1
	if def32 {
		k |= 1
	}
	return k
}

// Hot aggregates the profile into its topN hottest addresses, ranked
// by TotalCycles (descending; ties by address). Server-mode samples
// are excluded — their "address" is an EC id, not guest code. The
// aggregation is sort-and-merge over slices: no map iteration anywhere
// near profile data, so output order is deterministic by construction.
func (d *Data) Hot(topN int) []HotAddr {
	var rows []HotAddr
	for _, per := range d.Samples {
		for _, s := range per {
			if s.Mode == ModeServer || len(s.Frames) == 0 {
				continue
			}
			rows = append(rows, HotAddr{
				Addr: s.Frames[0], Def32: s.Def32,
				Samples:      s.Weight,
				SampleCycles: s.Weight * d.Meta.Period,
			})
		}
	}
	for _, a := range d.Attrib {
		row := HotAddr{Addr: a.RIP, Def32: a.Def32}
		switch a.Kind {
		case AttribExit:
			row.Exits, row.ExitCycles = a.Count, a.Cycles
		case AttribVTLBFill:
			row.Fills, row.FillCycles = a.Count, a.Cycles
		case AttribEmulate:
			row.Emuls, row.EmulCycles = a.Count, a.Cycles
		default:
			continue
		}
		rows = append(rows, row)
	}

	sort.Slice(rows, func(i, j int) bool {
		return hotKey(rows[i].Addr, rows[i].Def32) < hotKey(rows[j].Addr, rows[j].Def32)
	})
	merged := rows[:0]
	for _, r := range rows {
		if n := len(merged); n > 0 &&
			merged[n-1].Addr == r.Addr && merged[n-1].Def32 == r.Def32 {
			m := &merged[n-1]
			m.Samples += r.Samples
			m.SampleCycles += r.SampleCycles
			m.Exits += r.Exits
			m.ExitCycles += r.ExitCycles
			m.Fills += r.Fills
			m.FillCycles += r.FillCycles
			m.Emuls += r.Emuls
			m.EmulCycles += r.EmulCycles
			continue
		}
		merged = append(merged, r)
	}

	sort.Slice(merged, func(i, j int) bool {
		ti, tj := merged[i].TotalCycles(), merged[j].TotalCycles()
		if ti != tj {
			return ti > tj
		}
		return hotKey(merged[i].Addr, merged[i].Def32) < hotKey(merged[j].Addr, merged[j].Def32)
	})
	if topN > 0 && len(merged) > topN {
		merged = merged[:topN]
	}
	return merged
}

// FrameName renders one stack frame for human-facing output.
func FrameName(mode Mode, addr uint32) string {
	if mode == ModeServer {
		return fmt.Sprintf("ec:%d", addr)
	}
	return fmt.Sprintf("0x%08x", addr)
}

// Folded renders the periodic samples in folded-stack format — one
// "mode;root;...;leaf weight" line per distinct stack, weights in
// samples — ready for any flamegraph renderer. Lines are aggregated
// and emitted in lexicographic order, so identical profiles fold to
// identical text. Attributed virtualization events are not folded
// (they carry exact cycles, not samples); see Hot and the pprof
// output for those.
func (d *Data) Folded() []string {
	type folded struct {
		line   string
		weight uint64
	}
	var all []folded
	var sb strings.Builder
	for _, per := range d.Samples {
		for _, s := range per {
			if len(s.Frames) == 0 {
				continue
			}
			sb.Reset()
			sb.WriteString(s.Mode.String())
			// Folded stacks list the root first; frames are stored
			// leaf-first.
			for i := len(s.Frames) - 1; i >= 0; i-- {
				sb.WriteByte(';')
				sb.WriteString(FrameName(s.Mode, s.Frames[i]))
			}
			all = append(all, folded{line: sb.String(), weight: s.Weight})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].line < all[j].line })
	merged := all[:0]
	for _, f := range all {
		if n := len(merged); n > 0 && merged[n-1].line == f.line {
			merged[n-1].weight += f.weight
			continue
		}
		merged = append(merged, f)
	}
	out := make([]string, 0, len(merged))
	for _, f := range merged {
		out = append(out, fmt.Sprintf("%s %d", f.line, f.weight))
	}
	return out
}
