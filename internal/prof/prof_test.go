package prof

import (
	"bytes"
	"reflect"
	"testing"

	"nova/internal/hw"
)

func testMeta() Meta { return Meta{Model: "TEST", FreqMHz: 1000} }

func TestTickGridAndWeights(t *testing.T) {
	p := New(testMeta(), 1, 100, 16)
	g := GuestCtx{RIP: 0x1000}

	// First observation anchors the grid at now+period; nothing records.
	p.Tick(0, 50, ModeGuest, g)
	if n := p.bufs[0].Len(); n != 0 {
		t.Fatalf("anchor tick recorded %d samples", n)
	}
	// Below the grid point: nothing.
	p.Tick(0, 149, ModeGuest, g)
	if n := p.bufs[0].Len(); n != 0 {
		t.Fatalf("sub-period tick recorded %d samples", n)
	}
	// Crossing one grid point (150): one sample of weight 1.
	p.Tick(0, 150, ModeGuest, g)
	// A long burst crossing 3 grid points (250, 350, 450): weight 3.
	p.Tick(0, 460, ModeGuest, g)

	recs := p.bufs[0].recs()
	if len(recs) != 2 {
		t.Fatalf("got %d samples, want 2", len(recs))
	}
	if recs[0].weight != 1 || recs[1].weight != 3 {
		t.Fatalf("weights = %d, %d, want 1, 3", recs[0].weight, recs[1].weight)
	}
	if got := p.TotalSamples(); got != 4 {
		t.Fatalf("TotalSamples = %d, want 4", got)
	}
	// The grid stays aligned: next should be 550, so 549 records nothing.
	p.Tick(0, 549, ModeGuest, g)
	if len(p.bufs[0].recs()) != 2 {
		t.Fatal("tick below the realigned grid point recorded a sample")
	}
}

func TestSkipIdleAdvancesWithoutRecording(t *testing.T) {
	p := New(testMeta(), 1, 100, 16)
	p.Tick(0, 0, ModeGuest, GuestCtx{RIP: 1}) // anchor; next = 100
	p.SkipIdle(0, 1000)                       // crosses many grid points
	if n := p.bufs[0].Len(); n != 0 {
		t.Fatalf("SkipIdle recorded %d samples", n)
	}
	// Grid continued through the idle span: next = 1100.
	p.Tick(0, 1099, ModeGuest, GuestCtx{RIP: 1})
	if p.bufs[0].Len() != 0 {
		t.Fatal("tick before post-idle grid point recorded a sample")
	}
	p.Tick(0, 1100, ModeGuest, GuestCtx{RIP: 1})
	if p.bufs[0].Len() != 1 {
		t.Fatal("tick at post-idle grid point did not record")
	}
}

func TestNilProfilerIsNoOp(t *testing.T) {
	var p *Profiler
	p.Tick(0, 100, ModeGuest, GuestCtx{})
	p.SkipIdle(0, 100)
	p.Attribute(AttribExit, 0, false, 1)
	p.CaptureCode(4, func(uint32) (byte, bool) { return 0, false })
	if p.TotalSamples() != 0 {
		t.Fatal("nil profiler reported samples")
	}
	if d := p.Data(); len(d.Samples) != 0 {
		t.Fatal("nil profiler produced sample data")
	}
}

func TestBufOverwrite(t *testing.T) {
	p := New(testMeta(), 1, 10, 4)
	p.Tick(0, 0, ModeGuest, GuestCtx{}) // anchor
	for i := 1; i <= 7; i++ {
		p.Tick(0, hw.Cycles(i*10), ModeGuest, GuestCtx{RIP: uint32(i)})
	}
	b := p.bufs[0]
	if b.Len() != 4 || b.Overwritten() != 3 {
		t.Fatalf("Len=%d Overwritten=%d, want 4 and 3", b.Len(), b.Overwritten())
	}
	recs := b.recs()
	// Oldest-first: samples 4..7 survive.
	for i, r := range recs {
		if want := uint32(i + 4); r.frames[0] != want {
			t.Errorf("rec %d rip=%d, want %d", i, r.frames[0], want)
		}
	}
}

func TestAttribSetSortedAggregation(t *testing.T) {
	p := New(testMeta(), 1, 10, 4)
	// Insert out of order, with one repeat.
	p.Attribute(AttribVTLBFill, 0x300, false, 7)
	p.Attribute(AttribExit, 0x200, true, 5)
	p.Attribute(AttribExit, 0x100, false, 3)
	p.Attribute(AttribExit, 0x200, true, 5)

	got := p.Data().Attrib
	want := []AttribEntry{
		{Kind: AttribExit, RIP: 0x100, Def32: false, Count: 1, Cycles: 3},
		{Kind: AttribExit, RIP: 0x200, Def32: true, Count: 2, Cycles: 10},
		{Kind: AttribVTLBFill, RIP: 0x300, Def32: false, Count: 1, Cycles: 7},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("attrib = %+v, want %+v", got, want)
	}
}

// populated builds a profiler with samples on two CPUs, attributions
// and captured code, exercising every section of the encoding.
func populated(t *testing.T) *Profiler {
	t.Helper()
	p := New(testMeta(), 2, 100, 8)
	stack := map[uint32]uint32{0x1000: 0, 0x1004: 0x8010}
	read := func(va uint32) (uint32, bool) { v, ok := stack[va]; return v, ok }
	for cpu := 0; cpu < 2; cpu++ {
		p.Tick(cpu, 0, ModeGuest, GuestCtx{})
		for i := 1; i <= 5; i++ {
			p.Tick(cpu, hw.Cycles(i*100), ModeGuest,
				GuestCtx{RIP: 0x8000 + uint32(i), Def32: true, EBP: 0x1000, Read: read})
		}
	}
	p.Tick(0, 700, ModeEmulation, GuestCtx{RIP: 0x9000})
	p.Attribute(AttribExit, 0x8001, true, 400)
	p.Attribute(AttribEmulate, 0x9000, false, 450)
	code := []byte{0x90, 0xc3}
	p.CaptureCode(4, func(va uint32) (byte, bool) {
		if int(va-0x8000) < len(code)*1000 {
			return code[va%2], true
		}
		return 0, false
	})
	return p
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	p := populated(t)
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, p.Data()) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", d, p.Data())
	}
}

func TestEncodeByteIdentity(t *testing.T) {
	p := populated(t)
	b1, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two encodings of the same profiler differ")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	p := populated(t)
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(b[:len(b)-1]); err == nil {
		t.Error("truncated profile decoded")
	}
	if _, err := Decode([]byte("NOVAPRF9")); err == nil {
		t.Error("bad magic decoded")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty profile decoded")
	}
}

func TestHotRanking(t *testing.T) {
	d := populated(t).Data()
	hot := d.Hot(3)
	if len(hot) == 0 {
		t.Fatal("no hot rows")
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].TotalCycles() > hot[i-1].TotalCycles() {
			t.Fatalf("hot table not sorted: row %d (%d) > row %d (%d)",
				i, hot[i].TotalCycles(), i-1, hot[i-1].TotalCycles())
		}
	}
	// 0x8001 carries one sample per CPU (100 cycles each) plus a
	// 400-cycle exit.
	for _, h := range hot {
		if h.Addr == 0x8001 {
			if h.Samples != 2 || h.Exits != 1 || h.TotalCycles() != 600 {
				t.Fatalf("0x8001 row = %+v, want samples=2 exits=1 total=600", h)
			}
			return
		}
	}
	t.Fatal("0x8001 missing from hot table")
}

func TestFoldedDeterministicAndMerged(t *testing.T) {
	d := populated(t).Data()
	lines := d.Folded()
	if len(lines) == 0 {
		t.Fatal("no folded output")
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] <= lines[i-1] {
			t.Fatalf("folded lines not strictly sorted: %q after %q", lines[i], lines[i-1])
		}
	}
	if !reflect.DeepEqual(lines, d.Folded()) {
		t.Fatal("two foldings of the same data differ")
	}
}

func TestWritePprofDeterministic(t *testing.T) {
	d := populated(t).Data()
	var b1, b2 bytes.Buffer
	if err := d.WritePprof(&b1); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePprof(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.Len() == 0 {
		t.Fatal("empty pprof output")
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two pprof encodings of the same data differ")
	}
}
