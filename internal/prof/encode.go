package prof

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"nova/internal/hw"
	"nova/internal/trace"
)

// magic identifies a serialized profile (version 1). The file layout
// mirrors NOVATRC1: magic, then length-prefixed sections using the
// trace package's shared framing.
const magic = "NOVAPRF1"

// recHdrSize is the fixed prefix of one sample record:
// time(8) + weight(8) + mode(1) + def32(1) + nframes(1).
const recHdrSize = 8 + 8 + 1 + 1 + 1

// attribEntrySize is the fixed size of one attribution record:
// kind(1) + def32(1) + rip(4) + count(8) + cycles(8).
const attribEntrySize = 1 + 1 + 4 + 8 + 8

// WriteTo serializes the profile: magic, meta JSON, per-CPU sample
// buffers, attribution table, code sites. Every section is
// deterministic — struct-based JSON, fixed little-endian records, and
// pre-sorted attribution keys — so two runs from identical inputs
// serialize to identical bytes.
func (d *Data) WriteTo(w io.Writer) (int64, error) {
	if d == nil {
		return 0, fmt.Errorf("prof: nil profile")
	}
	var buf bytes.Buffer
	buf.WriteString(magic)

	metaJSON, err := json.Marshal(d.Meta)
	if err != nil {
		return 0, err
	}
	trace.WriteSection(&buf, metaJSON)

	var samples bytes.Buffer
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(d.Samples)))
	samples.Write(tmp[:4])
	for cpu, per := range d.Samples {
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(per)))
		var over uint64
		if cpu < len(d.Overwritten) {
			over = d.Overwritten[cpu]
		}
		binary.LittleEndian.PutUint64(hdr[4:], over)
		samples.Write(hdr[:])
		for _, s := range per {
			var rec [recHdrSize]byte
			binary.LittleEndian.PutUint64(rec[0:], uint64(s.Time))
			binary.LittleEndian.PutUint64(rec[8:], s.Weight)
			rec[16] = uint8(s.Mode)
			rec[17] = b2u(s.Def32)
			n := len(s.Frames)
			if n > MaxFrames {
				n = MaxFrames
			}
			rec[18] = uint8(n)
			samples.Write(rec[:])
			for _, f := range s.Frames[:n] {
				binary.LittleEndian.PutUint32(tmp[:4], f)
				samples.Write(tmp[:4])
			}
		}
	}
	trace.WriteSection(&buf, samples.Bytes())

	var attrib bytes.Buffer
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(d.Attrib)))
	attrib.Write(tmp[:4])
	for _, a := range d.Attrib {
		var rec [attribEntrySize]byte
		rec[0] = uint8(a.Kind)
		rec[1] = b2u(a.Def32)
		binary.LittleEndian.PutUint32(rec[2:], a.RIP)
		binary.LittleEndian.PutUint64(rec[6:], a.Count)
		binary.LittleEndian.PutUint64(rec[14:], a.Cycles)
		attrib.Write(rec[:])
	}
	trace.WriteSection(&buf, attrib.Bytes())

	var code bytes.Buffer
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(d.Code)))
	code.Write(tmp[:4])
	for _, c := range d.Code {
		n := len(c.Bytes)
		if n > maxInstBytes {
			n = maxInstBytes
		}
		var rec [6]byte
		binary.LittleEndian.PutUint32(rec[0:], c.Addr)
		rec[4] = b2u(c.Def32)
		rec[5] = uint8(n)
		code.Write(rec[:])
		code.Write(c.Bytes[:n])
	}
	trace.WriteSection(&buf, code.Bytes())

	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Encode returns the serialized profile as a byte slice.
func (d *Data) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Hash returns the FNV-64a hash of the serialized profile. The
// byte-identity regression test compares this across runs.
func (d *Data) Hash() uint64 {
	b, err := d.Encode()
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Encode serializes the live profiler (convenience for runners).
func (p *Profiler) Encode() ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("prof: nil profiler")
	}
	return p.Data().Encode()
}

// Decode parses a serialized profile.
func Decode(b []byte) (*Data, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("prof: bad magic (not a nova profile file)")
	}
	b = b[len(magic):]

	metaJSON, b, err := trace.ReadSection(b)
	if err != nil {
		return nil, fmt.Errorf("prof: meta: %w", err)
	}
	d := &Data{}
	if err := json.Unmarshal(metaJSON, &d.Meta); err != nil {
		return nil, fmt.Errorf("prof: meta: %w", err)
	}

	samples, b, err := trace.ReadSection(b)
	if err != nil {
		return nil, fmt.Errorf("prof: samples: %w", err)
	}
	if err := d.decodeSamples(samples); err != nil {
		return nil, err
	}

	attrib, b, err := trace.ReadSection(b)
	if err != nil {
		return nil, fmt.Errorf("prof: attrib: %w", err)
	}
	if err := d.decodeAttrib(attrib); err != nil {
		return nil, err
	}

	code, b, err := trace.ReadSection(b)
	if err != nil {
		return nil, fmt.Errorf("prof: code: %w", err)
	}
	if err := d.decodeCode(code); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("prof: %d trailing bytes", len(b))
	}
	return d, nil
}

func (d *Data) decodeSamples(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("prof: truncated CPU count")
	}
	cpus := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if cpus < 0 || cpus > 1<<16 {
		return fmt.Errorf("prof: implausible CPU count %d", cpus)
	}
	for cpu := 0; cpu < cpus; cpu++ {
		if len(b) < 12 {
			return fmt.Errorf("prof: truncated buffer header (cpu %d)", cpu)
		}
		count := int(binary.LittleEndian.Uint32(b))
		over := binary.LittleEndian.Uint64(b[4:])
		b = b[12:]
		if count < 0 || count > 1<<28 {
			return fmt.Errorf("prof: implausible sample count %d (cpu %d)", count, cpu)
		}
		per := make([]Sample, 0, count)
		for i := 0; i < count; i++ {
			if len(b) < recHdrSize {
				return fmt.Errorf("prof: truncated sample (cpu %d)", cpu)
			}
			s := Sample{
				Time:   hw.Cycles(binary.LittleEndian.Uint64(b[0:])),
				Weight: binary.LittleEndian.Uint64(b[8:]),
				Mode:   Mode(b[16]),
				Def32:  b[17] != 0,
			}
			nf := int(b[18])
			b = b[recHdrSize:]
			if nf > MaxFrames || len(b) < nf*4 {
				return fmt.Errorf("prof: truncated frames (cpu %d)", cpu)
			}
			for f := 0; f < nf; f++ {
				s.Frames = append(s.Frames, binary.LittleEndian.Uint32(b[f*4:]))
			}
			b = b[nf*4:]
			per = append(per, s)
		}
		d.Samples = append(d.Samples, per)
		d.Overwritten = append(d.Overwritten, over)
	}
	if len(b) != 0 {
		return fmt.Errorf("prof: %d trailing sample bytes", len(b))
	}
	return nil
}

func (d *Data) decodeAttrib(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("prof: truncated attrib count")
	}
	count := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if count < 0 || len(b) != count*attribEntrySize {
		return fmt.Errorf("prof: malformed attrib table")
	}
	for i := 0; i < count; i++ {
		rec := b[i*attribEntrySize:]
		d.Attrib = append(d.Attrib, AttribEntry{
			Kind:   AttribKind(rec[0]),
			Def32:  rec[1] != 0,
			RIP:    binary.LittleEndian.Uint32(rec[2:]),
			Count:  binary.LittleEndian.Uint64(rec[6:]),
			Cycles: binary.LittleEndian.Uint64(rec[14:]),
		})
	}
	return nil
}

func (d *Data) decodeCode(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("prof: truncated code count")
	}
	count := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if count < 0 || count > 1<<20 {
		return fmt.Errorf("prof: implausible code-site count %d", count)
	}
	for i := 0; i < count; i++ {
		if len(b) < 6 {
			return fmt.Errorf("prof: truncated code site")
		}
		site := CodeSite{
			Addr:  binary.LittleEndian.Uint32(b[0:]),
			Def32: b[4] != 0,
		}
		n := int(b[5])
		b = b[6:]
		if n > maxInstBytes || len(b) < n {
			return fmt.Errorf("prof: truncated code bytes")
		}
		site.Bytes = append(site.Bytes, b[:n]...)
		b = b[n:]
		d.Code = append(d.Code, site)
	}
	if len(b) != 0 {
		return fmt.Errorf("prof: %d trailing code bytes", len(b))
	}
	return nil
}
