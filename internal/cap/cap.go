// Package cap implements NOVA's capability system (§5): capability
// spaces indexed by integral selectors, typed capabilities with
// permission masks, and the mapping database that records every
// delegation so that resources can be recursively revoked (§6).
//
// Capabilities are opaque and immutable to user components: they cannot
// be inspected, modified or addressed directly — only named through
// selectors, delegated with equal-or-reduced permissions, and revoked.
package cap

import (
	"errors"
	"fmt"
	"sort"
)

// Selector names a capability within a protection domain's capability
// space, like a Unix file descriptor.
type Selector uint32

// Rights is the permission mask carried by a capability. The meaning of
// each bit depends on the object type (e.g. for a portal: call; for a
// PD: create/destroy; for memory: read/write/execute).
type Rights uint8

// Generic permission bits.
const (
	RightRead Rights = 1 << iota
	RightWrite
	RightExec
	RightCtrl // create/destroy/recall/assign
	RightCall // invoke (portals, semaphores)

	RightsAll = RightRead | RightWrite | RightExec | RightCtrl | RightCall
)

func (r Rights) String() string {
	b := []byte("-----")
	if r&RightRead != 0 {
		b[0] = 'r'
	}
	if r&RightWrite != 0 {
		b[1] = 'w'
	}
	if r&RightExec != 0 {
		b[2] = 'x'
	}
	if r&RightCtrl != 0 {
		b[3] = 'c'
	}
	if r&RightCall != 0 {
		b[4] = 'p'
	}
	return string(b)
}

// ObjType classifies kernel objects.
type ObjType int

// The five kernel object types of the microhypervisor (§5), plus the
// null type.
const (
	ObjNull ObjType = iota
	ObjPD
	ObjEC
	ObjSC
	ObjPortal
	ObjSemaphore
)

var objNames = map[ObjType]string{
	ObjNull: "null", ObjPD: "pd", ObjEC: "ec", ObjSC: "sc",
	ObjPortal: "portal", ObjSemaphore: "semaphore",
}

func (t ObjType) String() string {
	if s, ok := objNames[t]; ok {
		return s
	}
	return fmt.Sprintf("ObjType(%d)", int(t))
}

// Object is implemented by every kernel object that can be referenced by
// a capability.
type Object interface {
	ObjectType() ObjType
}

// Capability couples a kernel object with the holder's permissions.
type Capability struct {
	Obj    Object
	Type   ObjType
	Rights Rights
}

// Errors returned by capability-space operations.
var (
	ErrEmptySlot   = errors.New("cap: empty selector")
	ErrOccupied    = errors.New("cap: selector already in use")
	ErrBadType     = errors.New("cap: wrong object type")
	ErrNoRights    = errors.New("cap: insufficient rights")
	ErrRevoked     = errors.New("cap: capability revoked")
	ErrInvalidSel  = errors.New("cap: invalid selector")
	ErrNotDeleg    = errors.New("cap: not delegatable")
	ErrSpaceClosed = errors.New("cap: space destroyed")
)

// node is one entry in the mapping database: a capability plus its
// position in the delegation tree.
type node struct {
	cap      Capability
	space    *Space
	sel      Selector
	parent   *node
	children map[*node]struct{}
	dead     bool
}

// Space is one protection domain's capability space.
type Space struct {
	name    string
	slots   map[Selector]*node
	closed  bool
	nextSel Selector

	// Stats.
	Inserts   uint64
	Delegates uint64
	Revokes   uint64
	Lookups   uint64
}

// NewSpace creates an empty capability space.
func NewSpace(name string) *Space {
	return &Space{name: name, slots: make(map[Selector]*node)}
}

// Name returns the space's debugging name.
func (s *Space) Name() string { return s.name }

// AllocSel returns an unused selector. Selectors below 1024 are left
// to the VM-exit portal convention (32 per virtual CPU).
func (s *Space) AllocSel() Selector {
	if s.nextSel < 1024 {
		s.nextSel = 1024
	}
	for {
		s.nextSel++
		if _, ok := s.slots[s.nextSel]; !ok {
			return s.nextSel
		}
	}
}

// Len returns the number of occupied selectors.
func (s *Space) Len() int { return len(s.slots) }

// Selectors returns the occupied selectors in ascending order.
func (s *Space) Selectors() []Selector {
	out := make([]Selector, 0, len(s.slots))
	for sel := range s.slots {
		out = append(out, sel)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Insert installs a root capability (a freshly created kernel object)
// at sel. Root capabilities have no parent in the mapping database.
func (s *Space) Insert(sel Selector, obj Object, rights Rights) error {
	if s.closed {
		return ErrSpaceClosed
	}
	if _, ok := s.slots[sel]; ok {
		return ErrOccupied
	}
	s.slots[sel] = &node{
		cap:      Capability{Obj: obj, Type: obj.ObjectType(), Rights: rights},
		space:    s,
		sel:      sel,
		children: make(map[*node]struct{}),
	}
	s.Inserts++
	return nil
}

// Lookup resolves a selector to a capability. The capability value is a
// copy: holders cannot mutate the space through it.
func (s *Space) Lookup(sel Selector) (Capability, error) {
	s.Lookups++
	n, ok := s.slots[sel]
	if !ok || n.dead {
		return Capability{}, ErrEmptySlot
	}
	return n.cap, nil
}

// LookupTyped resolves a selector and checks type and rights in one
// step, as the hypercall layer does.
func (s *Space) LookupTyped(sel Selector, t ObjType, need Rights) (Capability, error) {
	c, err := s.Lookup(sel)
	if err != nil {
		return Capability{}, err
	}
	if c.Type != t {
		return Capability{}, ErrBadType
	}
	if c.Rights&need != need {
		return Capability{}, ErrNoRights
	}
	return c, nil
}

// LookupObj is the reverse validation used by hypercalls that receive a
// kernel object by reference: it proves the holder names obj somewhere
// in this space with at least the needed rights. The scan is over the
// sorted selector list, so the result is deterministic: the lowest
// selector naming obj with sufficient rights wins. Like Lookup, the
// returned capability is a copy.
func (s *Space) LookupObj(obj Object, t ObjType, need Rights) (Capability, error) {
	if s.closed {
		return Capability{}, ErrSpaceClosed
	}
	s.Lookups++
	named := false
	for _, sel := range s.Selectors() {
		n := s.slots[sel]
		if n == nil || n.dead || n.cap.Obj != obj {
			continue
		}
		if n.cap.Type != t {
			continue
		}
		named = true
		if n.cap.Rights&need == need {
			return n.cap, nil
		}
	}
	if named {
		return Capability{}, ErrNoRights
	}
	return Capability{}, ErrEmptySlot
}

// SelectorOf returns the lowest selector naming obj in this space, for
// brokering helpers that need to re-delegate an object they hold.
func (s *Space) SelectorOf(obj Object) (Selector, bool) {
	for _, sel := range s.Selectors() {
		if n := s.slots[sel]; n != nil && !n.dead && n.cap.Obj == obj {
			return sel, true
		}
	}
	return 0, false
}

// Delegate copies the capability at srcSel into dst at dstSel, with
// rights reduced by mask, and records the delegation in the mapping
// database. The receiver's capability can later be withdrawn by
// revoking the source (§6).
func (s *Space) Delegate(srcSel Selector, dst *Space, dstSel Selector, mask Rights) error {
	if s.closed || dst.closed {
		return ErrSpaceClosed
	}
	src, ok := s.slots[srcSel]
	if !ok || src.dead {
		return ErrEmptySlot
	}
	if _, ok := dst.slots[dstSel]; ok {
		return ErrOccupied
	}
	child := &node{
		cap: Capability{
			Obj:    src.cap.Obj,
			Type:   src.cap.Type,
			Rights: src.cap.Rights & mask,
		},
		space:    dst,
		sel:      dstSel,
		parent:   src,
		children: make(map[*node]struct{}),
	}
	src.children[child] = struct{}{}
	dst.slots[dstSel] = child
	s.Delegates++
	return nil
}

// Revoke withdraws all capabilities that were delegated (transitively)
// from sel. If self is true, the capability at sel itself is removed as
// well. It returns how many capabilities were removed.
func (s *Space) Revoke(sel Selector, self bool) (int, error) {
	n, ok := s.slots[sel]
	if !ok || n.dead {
		return 0, ErrEmptySlot
	}
	s.Revokes++
	removed := 0
	var kill func(*node)
	kill = func(v *node) {
		for c := range v.children {
			kill(c)
		}
		v.children = nil
		v.dead = true
		delete(v.space.slots, v.sel)
		if v.parent != nil {
			delete(v.parent.children, v)
		}
		removed++
	}
	for c := range n.children {
		kill(c)
	}
	if self {
		kill(n)
	}
	return removed, nil
}

// Remove deletes the capability at sel from this space only (close-like
// semantics; delegated children survive and reparent to nothing —
// matching NOVA where removing your own selector does not revoke).
func (s *Space) Remove(sel Selector) error {
	n, ok := s.slots[sel]
	if !ok {
		return ErrEmptySlot
	}
	for c := range n.children {
		c.parent = nil
	}
	if n.parent != nil {
		delete(n.parent.children, n)
	}
	n.dead = true
	delete(s.slots, sel)
	return nil
}

// Destroy closes the space, revoking everything delegated from it. The
// sorted selector walk keeps teardown order deterministic; selectors
// already removed by an earlier transitive revoke are skipped, and any
// remaining revocation failures are aggregated instead of dropped so
// the hypercall layer can report them.
func (s *Space) Destroy() error {
	var errs []error
	for _, sel := range s.Selectors() {
		if _, ok := s.slots[sel]; !ok {
			continue // revoked transitively by an earlier selector
		}
		if _, err := s.Revoke(sel, true); err != nil && !errors.Is(err, ErrEmptySlot) {
			errs = append(errs, fmt.Errorf("cap: destroy %s sel %d: %w", s.name, sel, err))
		}
	}
	s.closed = true
	return errors.Join(errs...)
}
