package cap

import "fmt"

// PageSize of the memory space (matches the platform).
const PageSize = 4096

// memNode is one page mapping in the mapping database.
type memNode struct {
	frame    uint64 // host frame number
	rights   Rights
	space    *MemSpace
	page     uint32
	parent   *memNode
	children map[*memNode]struct{}
}

// MemSpace is a protection domain's memory space: the page-granular
// mapping from the PD's addresses (host-virtual for applications,
// guest-physical for VMs) to host frames, with full delegation
// tracking. The hypervisor's host page tables are materialized from
// this (§5.3, §6).
type MemSpace struct {
	name  string
	pages map[uint32]*memNode

	// Version increments on any change so cached translations (host
	// TLB, EPT caches) can be invalidated.
	Version uint64
}

// NewMemSpace creates an empty memory space.
func NewMemSpace(name string) *MemSpace {
	return &MemSpace{name: name, pages: make(map[uint32]*memNode)}
}

// Name returns the space's debugging name.
func (m *MemSpace) Name() string { return m.name }

// Len returns the number of mapped pages.
func (m *MemSpace) Len() int { return len(m.pages) }

// InsertRoot installs a root mapping of npages pages starting at page
// (address>>12) onto consecutive host frames starting at frame. Used by
// the hypervisor at boot to hand all physical memory to the root
// partition manager.
func (m *MemSpace) InsertRoot(page uint32, frame uint64, npages int, rights Rights) error {
	for i := 0; i < npages; i++ {
		p := page + uint32(i)
		if _, ok := m.pages[p]; ok {
			return fmt.Errorf("cap: page %#x already mapped in %s", p, m.name)
		}
	}
	for i := 0; i < npages; i++ {
		p := page + uint32(i)
		m.pages[p] = &memNode{
			frame: frame + uint64(i), rights: rights, space: m, page: p,
			children: make(map[*memNode]struct{}),
		}
	}
	m.Version++
	return nil
}

// Translate resolves a page to its host frame and rights.
func (m *MemSpace) Translate(page uint32) (uint64, Rights, bool) {
	n, ok := m.pages[page]
	if !ok {
		return 0, 0, false
	}
	return n.frame, n.rights, true
}

// Delegate maps npages pages from srcPage in this space to dstPage in
// dst, with rights reduced by mask. Partial overlap with existing
// mappings in dst fails without side effects.
func (m *MemSpace) Delegate(srcPage uint32, dst *MemSpace, dstPage uint32, npages int, mask Rights) error {
	for i := 0; i < npages; i++ {
		if _, ok := m.pages[srcPage+uint32(i)]; !ok {
			return fmt.Errorf("cap: source page %#x not mapped in %s", srcPage+uint32(i), m.name)
		}
		if _, ok := dst.pages[dstPage+uint32(i)]; ok {
			return fmt.Errorf("cap: destination page %#x already mapped in %s", dstPage+uint32(i), dst.name)
		}
	}
	for i := 0; i < npages; i++ {
		src := m.pages[srcPage+uint32(i)]
		child := &memNode{
			frame: src.frame, rights: src.rights & mask,
			space: dst, page: dstPage + uint32(i),
			parent: src, children: make(map[*memNode]struct{}),
		}
		src.children[child] = struct{}{}
		dst.pages[child.page] = child
	}
	dst.Version++
	return nil
}

// Revoke withdraws all mappings delegated from [page, page+npages), and
// the mappings themselves if self is set. Returns pages removed.
func (m *MemSpace) Revoke(page uint32, npages int, self bool) int {
	removed := 0
	var kill func(*memNode)
	kill = func(n *memNode) {
		for c := range n.children {
			kill(c)
		}
		n.children = nil
		delete(n.space.pages, n.page)
		n.space.Version++
		if n.parent != nil {
			delete(n.parent.children, n)
		}
		removed++
	}
	for i := 0; i < npages; i++ {
		n, ok := m.pages[page+uint32(i)]
		if !ok {
			continue
		}
		for c := range n.children {
			kill(c)
		}
		if self {
			kill(n)
		}
	}
	if removed > 0 {
		m.Version++
	}
	return removed
}

// Destroy revokes every mapping delegated from this space and clears it.
func (m *MemSpace) Destroy() {
	for page := range m.pages {
		m.Revoke(page, 1, true)
	}
}

// ioNode is one I/O port in the delegation tree.
type ioNode struct {
	space    *IOSpace
	port     uint16
	parent   *ioNode
	children map[*ioNode]struct{}
}

// IOSpace is a protection domain's I/O permission space: the set of
// x86 ports the domain may access, with delegation tracking (the
// kernel's analogue of the I/O permission bitmap).
type IOSpace struct {
	name  string
	ports map[uint16]*ioNode
}

// NewIOSpace creates an empty I/O space.
func NewIOSpace(name string) *IOSpace {
	return &IOSpace{name: name, ports: make(map[uint16]*ioNode)}
}

// Name returns the space's debugging name.
func (s *IOSpace) Name() string { return s.name }

// Len returns the number of permitted ports.
func (s *IOSpace) Len() int { return len(s.ports) }

// Allowed reports whether the domain may access port.
func (s *IOSpace) Allowed(port uint16) bool {
	_, ok := s.ports[port]
	return ok
}

// InsertRoot grants ports [lo, hi] as root entries.
func (s *IOSpace) InsertRoot(lo, hi uint16) {
	for p := uint32(lo); p <= uint32(hi); p++ {
		if _, ok := s.ports[uint16(p)]; !ok {
			s.ports[uint16(p)] = &ioNode{space: s, port: uint16(p), children: make(map[*ioNode]struct{})}
		}
	}
}

// Delegate grants dst access to ports [lo, hi], which this space must
// hold.
func (s *IOSpace) Delegate(dst *IOSpace, lo, hi uint16) error {
	for p := uint32(lo); p <= uint32(hi); p++ {
		if _, ok := s.ports[uint16(p)]; !ok {
			return fmt.Errorf("cap: port %#x not held by %s", p, s.name)
		}
	}
	for p := uint32(lo); p <= uint32(hi); p++ {
		if _, ok := dst.ports[uint16(p)]; ok {
			continue
		}
		src := s.ports[uint16(p)]
		child := &ioNode{space: dst, port: uint16(p), parent: src, children: make(map[*ioNode]struct{})}
		src.children[child] = struct{}{}
		dst.ports[uint16(p)] = child
	}
	return nil
}

// Revoke withdraws delegations of [lo, hi]; self removes this space's
// own access too.
func (s *IOSpace) Revoke(lo, hi uint16, self bool) int {
	removed := 0
	var kill func(*ioNode)
	kill = func(n *ioNode) {
		for c := range n.children {
			kill(c)
		}
		n.children = nil
		delete(n.space.ports, n.port)
		if n.parent != nil {
			delete(n.parent.children, n)
		}
		removed++
	}
	for p := uint32(lo); p <= uint32(hi); p++ {
		n, ok := s.ports[uint16(p)]
		if !ok {
			continue
		}
		for c := range n.children {
			kill(c)
		}
		if self {
			kill(n)
		}
	}
	return removed
}
