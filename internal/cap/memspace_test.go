package cap

import (
	"testing"
	"testing/quick"
)

func TestMemSpaceInsertTranslate(t *testing.T) {
	m := NewMemSpace("root")
	if err := m.InsertRoot(0x100, 0x2000, 4, RightRead|RightWrite); err != nil {
		t.Fatal(err)
	}
	frame, rights, ok := m.Translate(0x102)
	if !ok || frame != 0x2002 || rights != RightRead|RightWrite {
		t.Errorf("translate: frame=%#x rights=%v ok=%v", frame, rights, ok)
	}
	if _, _, ok := m.Translate(0x104); ok {
		t.Error("translated unmapped page")
	}
	if err := m.InsertRoot(0x102, 0x9000, 1, RightRead); err == nil {
		t.Error("overlapping insert accepted")
	}
}

func TestMemSpaceDelegateAndRevoke(t *testing.T) {
	root := NewMemSpace("root")
	vm := NewMemSpace("vm")
	drv := NewMemSpace("drv")
	root.InsertRoot(0, 0x1000, 16, RightRead|RightWrite|RightExec)
	// VM gets 8 pages at its GPA 0 from root's pages 4..11, read-write.
	if err := root.Delegate(4, vm, 0, 8, RightRead|RightWrite); err != nil {
		t.Fatal(err)
	}
	frame, rights, ok := vm.Translate(3)
	if !ok || frame != 0x1007 || rights&RightExec != 0 {
		t.Errorf("vm page 3: frame=%#x rights=%v", frame, rights)
	}
	// VM delegates its DMA buffer (2 pages) to the driver.
	if err := vm.Delegate(2, drv, 0x50, 2, RightRead|RightWrite); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := drv.Translate(0x51); !ok {
		t.Fatal("driver missing delegated page")
	}
	// Root revokes the VM's memory: both VM and driver lose it.
	n := root.Revoke(4, 8, false)
	if n != 10 {
		t.Errorf("revoked %d mappings, want 10 (8 vm + 2 drv)", n)
	}
	if _, _, ok := vm.Translate(0); ok {
		t.Error("vm kept revoked page")
	}
	if _, _, ok := drv.Translate(0x50); ok {
		t.Error("driver kept transitively revoked page")
	}
	if _, _, ok := root.Translate(4); !ok {
		t.Error("root lost its own page on non-self revoke")
	}
}

func TestMemSpaceVersionBumps(t *testing.T) {
	m := NewMemSpace("m")
	v0 := m.Version
	m.InsertRoot(0, 0, 1, RightRead)
	if m.Version == v0 {
		t.Error("version not bumped on insert")
	}
	v1 := m.Version
	m.Revoke(0, 1, true)
	if m.Version == v1 {
		t.Error("version not bumped on revoke")
	}
}

func TestMemSpacePartialOverlapAtomic(t *testing.T) {
	root, dst := NewMemSpace("root"), NewMemSpace("dst")
	root.InsertRoot(0, 0, 8, RightRead)
	dst.InsertRoot(0x12, 0x100, 1, RightRead) // collision at dst page 0x12
	if err := root.Delegate(0, dst, 0x10, 4, RightRead); err == nil {
		t.Fatal("overlapping delegate accepted")
	}
	// Nothing partial must have landed.
	if _, _, ok := dst.Translate(0x10); ok {
		t.Error("partial delegation left residue")
	}
}

func TestMemSpaceDelegationDepthProperty(t *testing.T) {
	// Property: delegating a block down a chain of n spaces and
	// revoking at the root clears all of them; frames stay consistent
	// along the chain.
	f := func(depth uint8, frameSeed uint32) bool {
		n := int(depth%6) + 1
		root := NewMemSpace("root")
		frame := uint64(frameSeed % 1e6)
		root.InsertRoot(0, frame, 4, RightRead|RightWrite)
		prev := root
		var chain []*MemSpace
		for i := 0; i < n; i++ {
			next := NewMemSpace("n")
			if err := prev.Delegate(0, next, 0, 4, RightRead|RightWrite); err != nil {
				return false
			}
			got, _, ok := next.Translate(2)
			if !ok || got != frame+2 {
				return false
			}
			chain = append(chain, next)
			prev = next
		}
		root.Revoke(0, 4, false)
		for _, sp := range chain {
			if sp.Len() != 0 {
				return false
			}
		}
		return root.Len() == 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIOSpaceDelegation(t *testing.T) {
	root := NewIOSpace("root")
	drv := NewIOSpace("drv")
	root.InsertRoot(0, 0xffff)
	if err := root.Delegate(drv, 0x3f8, 0x3ff); err != nil {
		t.Fatal(err)
	}
	if !drv.Allowed(0x3f8) || !drv.Allowed(0x3ff) {
		t.Error("delegated ports missing")
	}
	if drv.Allowed(0x400) {
		t.Error("non-delegated port allowed")
	}
	// Delegating ports the source lacks fails.
	other := NewIOSpace("other")
	if err := drv.Delegate(other, 0x20, 0x21); err == nil {
		t.Error("delegated unheld ports")
	}
	// Revoke from root removes from driver.
	root.Revoke(0x3f8, 0x3ff, false)
	if drv.Allowed(0x3f8) {
		t.Error("revoked port still allowed")
	}
	if !root.Allowed(0x3f8) {
		t.Error("root lost port on non-self revoke")
	}
}
