package cap

import (
	"math/rand"
	"testing"
)

// Property-style checks over randomly generated delegation trees. The
// PRNG is seeded, so a failure reproduces; the properties are the two
// §6 guarantees the hypercall layer leans on: delegation can only ever
// shrink rights (transitively, along any chain), and revoking what was
// delegated from a selector never harms the selector itself.

// delegation records one edge of a generated tree so properties can be
// checked against the observable Lookup results alone.
type delegation struct {
	parent *delegation // nil for the root capability
	space  *Space
	sel    Selector
	rights Rights // rights the edge was granted (parent rights & mask)
}

// growTree builds a random delegation tree over nSpaces spaces rooted
// at a full-rights capability, returning every node including the root.
func growTree(t *testing.T, rng *rand.Rand, nSpaces, nDelegations int) (root *delegation, all []*delegation, spaces []*Space) {
	t.Helper()
	for i := 0; i < nSpaces; i++ {
		spaces = append(spaces, NewSpace("prop"))
	}
	obj := &fakeObj{t: ObjSemaphore}
	if err := spaces[0].Insert(1, obj, RightsAll); err != nil {
		t.Fatal(err)
	}
	root = &delegation{space: spaces[0], sel: 1, rights: RightsAll}
	all = []*delegation{root}
	nextSel := Selector(100)
	for i := 0; i < nDelegations; i++ {
		src := all[rng.Intn(len(all))]
		dst := spaces[rng.Intn(len(spaces))]
		mask := Rights(rng.Intn(int(RightsAll) + 1))
		nextSel++
		err := src.space.Delegate(src.sel, dst, nextSel, mask)
		if err != nil {
			t.Fatalf("delegate %d: %v", i, err)
		}
		all = append(all, &delegation{
			parent: src, space: dst, sel: nextSel, rights: src.rights & mask,
		})
	}
	return root, all, spaces
}

// TestPropDelegationRightsMonotonic: along every delegation chain,
// rights never grow — each capability's observable rights are exactly
// the AND of every mask on its path, hence a subset of every ancestor's.
func TestPropDelegationRightsMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		_, all, _ := growTree(t, rng, 1+rng.Intn(4), 1+rng.Intn(40))
		for _, d := range all {
			c, err := d.space.Lookup(d.sel)
			if err != nil {
				t.Fatalf("trial %d: lookup: %v", trial, err)
			}
			if c.Rights != d.rights {
				t.Fatalf("trial %d: rights %v, want %v", trial, c.Rights, d.rights)
			}
			// Transitive monotonicity: a subset of every ancestor.
			for a := d.parent; a != nil; a = a.parent {
				if c.Rights&^a.rights != 0 {
					t.Fatalf("trial %d: capability %v exceeds ancestor %v", trial, c.Rights, a.rights)
				}
			}
		}
	}
}

// TestPropRevokeKeepsRootUsable: Revoke(sel, self=false) withdraws
// every transitively delegated capability but leaves the revoked
// selector itself intact, with unchanged rights, and still able to
// delegate again.
func TestPropRevokeKeepsRootUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		root, all, spaces := growTree(t, rng, 1+rng.Intn(4), 1+rng.Intn(40))
		removed, err := root.space.Revoke(root.sel, false)
		if err != nil {
			t.Fatalf("trial %d: revoke: %v", trial, err)
		}
		if removed != len(all)-1 {
			t.Fatalf("trial %d: revoked %d capabilities, want %d", trial, removed, len(all)-1)
		}
		for _, d := range all[1:] {
			if _, err := d.space.Lookup(d.sel); err == nil {
				t.Fatalf("trial %d: delegated capability at %d survived revoke", trial, d.sel)
			}
		}
		c, err := root.space.Lookup(root.sel)
		if err != nil {
			t.Fatalf("trial %d: root unusable after revoke: %v", trial, err)
		}
		if c.Rights != root.rights {
			t.Fatalf("trial %d: root rights changed: %v, want %v", trial, c.Rights, root.rights)
		}
		if err := root.space.Delegate(root.sel, spaces[len(spaces)-1], 9999, RightRead); err != nil {
			t.Fatalf("trial %d: root cannot delegate after revoke: %v", trial, err)
		}
	}
}
