package cap_test

import (
	"fmt"

	"nova/internal/cap"
)

type portal struct{ name string }

func (p *portal) ObjectType() cap.ObjType { return cap.ObjPortal }

// The lifecycle of a capability: created in one space, delegated with
// reduced rights, and recursively revoked through the mapping database.
func Example() {
	server := cap.NewSpace("server")
	client := cap.NewSpace("client")

	pt := &portal{name: "disk"}
	server.Insert(1, pt, cap.RightsAll)          //nolint:errcheck
	server.Delegate(1, client, 7, cap.RightCall) //nolint:errcheck

	c, _ := client.Lookup(7)
	fmt.Println("client rights:", c.Rights)

	removed, _ := server.Revoke(1, false)
	fmt.Println("revoked:", removed)
	_, err := client.Lookup(7)
	fmt.Println("client lookup after revoke:", err)

	// Output:
	// client rights: ----p
	// revoked: 1
	// client lookup after revoke: cap: empty selector
}

// Memory delegation follows the recursive address-space model: the
// parent can always take pages back from everyone downstream.
func ExampleMemSpace_Revoke() {
	root := cap.NewMemSpace("root")
	vmm := cap.NewMemSpace("vmm")
	vm := cap.NewMemSpace("vm")

	root.InsertRoot(0x100, 0x100, 16, cap.RightsAll)             //nolint:errcheck
	root.Delegate(0x100, vmm, 0x100, 16, cap.RightsAll)          //nolint:errcheck
	vmm.Delegate(0x100, vm, 0, 16, cap.RightRead|cap.RightWrite) //nolint:errcheck

	frame, _, _ := vm.Translate(3)
	fmt.Printf("vm page 3 -> frame %#x\n", frame)

	n := root.Revoke(0x100, 16, false)
	fmt.Println("mappings revoked:", n)
	_, _, ok := vm.Translate(3)
	fmt.Println("vm still mapped:", ok)

	// Output:
	// vm page 3 -> frame 0x103
	// mappings revoked: 32
	// vm still mapped: false
}
