package cap

import (
	"testing"
	"testing/quick"
)

type fakeObj struct{ t ObjType }

func (f *fakeObj) ObjectType() ObjType { return f.t }

func TestInsertLookup(t *testing.T) {
	s := NewSpace("root")
	obj := &fakeObj{t: ObjPortal}
	if err := s.Insert(5, obj, RightCall|RightCtrl); err != nil {
		t.Fatal(err)
	}
	c, err := s.Lookup(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Obj != obj || c.Type != ObjPortal {
		t.Errorf("cap = %+v", c)
	}
	if _, err := s.Lookup(6); err != ErrEmptySlot {
		t.Errorf("empty slot lookup: %v", err)
	}
	if err := s.Insert(5, obj, RightCall); err != ErrOccupied {
		t.Errorf("double insert: %v", err)
	}
}

func TestLookupTyped(t *testing.T) {
	s := NewSpace("root")
	s.Insert(1, &fakeObj{t: ObjSemaphore}, RightCall)
	if _, err := s.LookupTyped(1, ObjSemaphore, RightCall); err != nil {
		t.Errorf("typed lookup failed: %v", err)
	}
	if _, err := s.LookupTyped(1, ObjPortal, RightCall); err != ErrBadType {
		t.Errorf("wrong type: %v", err)
	}
	if _, err := s.LookupTyped(1, ObjSemaphore, RightCtrl); err != ErrNoRights {
		t.Errorf("missing rights: %v", err)
	}
}

func TestDelegateReducesRights(t *testing.T) {
	a, b := NewSpace("a"), NewSpace("b")
	a.Insert(1, &fakeObj{t: ObjPortal}, RightCall|RightCtrl)
	if err := a.Delegate(1, b, 9, RightCall); err != nil {
		t.Fatal(err)
	}
	c, err := b.Lookup(9)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rights != RightCall {
		t.Errorf("rights = %v, want call only", c.Rights)
	}
	// Delegation cannot amplify: delegate from b with full mask still
	// yields only what b holds.
	d := NewSpace("d")
	if err := b.Delegate(9, d, 1, RightsAll); err != nil {
		t.Fatal(err)
	}
	c, _ = d.Lookup(1)
	if c.Rights != RightCall {
		t.Errorf("amplified rights: %v", c.Rights)
	}
}

func TestRevokeSubtree(t *testing.T) {
	// root -> a -> b, root -> c. Revoking at root removes a, b, c but
	// keeps root's own capability.
	root, a, b, c := NewSpace("root"), NewSpace("a"), NewSpace("b"), NewSpace("c")
	root.Insert(1, &fakeObj{t: ObjPD}, RightsAll)
	root.Delegate(1, a, 1, RightsAll)
	a.Delegate(1, b, 1, RightsAll)
	root.Delegate(1, c, 1, RightsAll)

	n, err := root.Revoke(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("revoked %d, want 3", n)
	}
	if _, err := root.Lookup(1); err != nil {
		t.Error("root capability lost on non-self revoke")
	}
	for name, sp := range map[string]*Space{"a": a, "b": b, "c": c} {
		if _, err := sp.Lookup(1); err == nil {
			t.Errorf("%s still holds a revoked capability", name)
		}
	}
}

func TestRevokeSelf(t *testing.T) {
	root := NewSpace("root")
	root.Insert(1, &fakeObj{t: ObjEC}, RightsAll)
	n, err := root.Revoke(1, true)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := root.Lookup(1); err == nil {
		t.Error("self-revoked capability still present")
	}
}

func TestRevokeMidTreeKeepsAncestors(t *testing.T) {
	root, a, b := NewSpace("root"), NewSpace("a"), NewSpace("b")
	root.Insert(1, &fakeObj{t: ObjSC}, RightsAll)
	root.Delegate(1, a, 1, RightsAll)
	a.Delegate(1, b, 1, RightsAll)
	a.Revoke(1, true)
	if _, err := root.Lookup(1); err != nil {
		t.Error("ancestor affected by descendant revoke")
	}
	if _, err := b.Lookup(1); err == nil {
		t.Error("descendant survived")
	}
}

func TestDestroySpaceRevokesDelegations(t *testing.T) {
	a, b := NewSpace("a"), NewSpace("b")
	a.Insert(1, &fakeObj{t: ObjPortal}, RightsAll)
	a.Delegate(1, b, 1, RightsAll)
	a.Destroy()
	if _, err := b.Lookup(1); err == nil {
		t.Error("delegated capability survived space destruction")
	}
	if err := a.Insert(2, &fakeObj{t: ObjPortal}, RightsAll); err != ErrSpaceClosed {
		t.Errorf("insert into destroyed space: %v", err)
	}
}

func TestDelegationChainProperty(t *testing.T) {
	// Property: along any delegation chain with arbitrary masks, the
	// final rights equal the AND of the root rights and every mask, and
	// a root revoke clears every space in the chain.
	f := func(rootRights uint8, masks []uint8) bool {
		if len(masks) > 12 {
			masks = masks[:12]
		}
		root := NewSpace("root")
		root.Insert(1, &fakeObj{t: ObjPortal}, Rights(rootRights)&RightsAll)
		want := Rights(rootRights) & RightsAll
		prev := root
		var chain []*Space
		for _, m := range masks {
			next := NewSpace("n")
			if err := prev.Delegate(1, next, 1, Rights(m)); err != nil {
				return false
			}
			want &= Rights(m)
			chain = append(chain, next)
			c, _ := next.Lookup(1)
			if c.Rights != want {
				return false
			}
			prev = next
		}
		root.Revoke(1, false)
		for _, sp := range chain {
			if _, err := sp.Lookup(1); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRightsString(t *testing.T) {
	if got := (RightRead | RightCall).String(); got != "r---p" {
		t.Errorf("rights string = %q", got)
	}
}

func TestRemoveKeepsChildren(t *testing.T) {
	// Remove (close) differs from revoke: the holder's selector goes
	// away, but capabilities it delegated survive.
	a, b := NewSpace("a"), NewSpace("b")
	a.Insert(1, &fakeObj{t: ObjPortal}, RightsAll)
	a.Delegate(1, b, 1, RightsAll)
	if err := a.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Lookup(1); err == nil {
		t.Error("removed selector still resolves")
	}
	if _, err := b.Lookup(1); err != nil {
		t.Error("child did not survive parent's Remove")
	}
	if err := a.Remove(1); err != ErrEmptySlot {
		t.Errorf("double remove: %v", err)
	}
}

func TestAllocSelNeverCollides(t *testing.T) {
	s := NewSpace("s")
	seen := map[Selector]bool{}
	for i := 0; i < 1000; i++ {
		sel := s.AllocSel()
		if seen[sel] {
			t.Fatalf("selector %d allocated twice", sel)
		}
		if sel < 1024 {
			t.Fatalf("selector %d inside the reserved portal range", sel)
		}
		seen[sel] = true
		if err := s.Insert(sel, &fakeObj{t: ObjEC}, RightsAll); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDelegateIntoOccupiedSlotFails(t *testing.T) {
	a, b := NewSpace("a"), NewSpace("b")
	a.Insert(1, &fakeObj{t: ObjPortal}, RightsAll)
	b.Insert(5, &fakeObj{t: ObjSemaphore}, RightsAll)
	if err := a.Delegate(1, b, 5, RightsAll); err != ErrOccupied {
		t.Errorf("delegate into occupied slot: %v", err)
	}
}
