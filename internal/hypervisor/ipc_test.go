package hypervisor

import (
	"testing"

	"nova/internal/cap"
)

// TestIPCDelegationInMessage exercises §6's delegation-during-
// communication: a client maps memory into a server by sending typed
// items through the portal; the server's receive window clips them.
func TestIPCDelegationInMessage(t *testing.T) {
	k := newTestKernel(t, Config{})
	client, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "client", false)
	server, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "server", false)

	// The client owns 8 pages at its page 0x1000 (backed by host frames
	// 0x400...).
	if err := k.DelegateMem(k.Root, 0x400, client, 0x1000, 8, cap.RightsAll); err != nil {
		t.Fatal(err)
	}

	srvSel := server.Caps.AllocSel()
	pt, err := k.CreatePortal(server, srvSel, "mapper", 1, 0, func(m *UTCB) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Server accepts delegations at pages [0x2000, 0x2010).
	pt.AcceptBase, pt.AcceptPages = 0x2000, 16
	if err := server.Caps.Delegate(srvSel, client.Caps, 50, cap.RightCall); err != nil {
		t.Fatal(err)
	}

	msg := &UTCB{
		Words: []uint64{1},
		Delegations: []DelegateItem{
			// Inside the window, read-only: accepted.
			{SrcPage: 0x1000, DstPage: 0x2000, NPages: 4, Rights: cap.RightRead},
			// Outside the window: dropped.
			{SrcPage: 0x1004, DstPage: 0x9000, NPages: 2, Rights: cap.RightsAll},
			// Straddling the window end: dropped.
			{SrcPage: 0x1004, DstPage: 0x200e, NPages: 4, Rights: cap.RightsAll},
		},
	}
	if err := k.Call(client, 50, msg); err != nil {
		t.Fatal(err)
	}
	if msg.Delegated != 1 {
		t.Errorf("delegated = %d, want 1", msg.Delegated)
	}
	if len(msg.Delegations) != 0 {
		t.Error("delegation items not consumed")
	}

	// The accepted pages are mapped with reduced rights.
	frame, rights, ok := server.Mem.Translate(0x2002)
	if !ok {
		t.Fatal("server missing delegated page")
	}
	if frame != 0x402 {
		t.Errorf("frame = %#x, want 0x402", frame)
	}
	if rights != cap.RightRead {
		t.Errorf("rights = %v, want read-only", rights)
	}
	if _, _, ok := server.Mem.Translate(0x9000); ok {
		t.Error("out-of-window delegation landed")
	}
	if _, _, ok := server.Mem.Translate(0x200e); ok {
		t.Error("straddling delegation landed")
	}

	// And the client can revoke what it delegated through the message.
	if n, err := k.RevokeMem(client, 0x1000, 4, false); err != nil || n != 4 {
		t.Fatalf("revoke: n=%d err=%v", n, err)
	}
	if _, _, ok := server.Mem.Translate(0x2000); ok {
		t.Error("server kept revoked page")
	}
}

// TestIPCDelegationRefusedByDefault checks the zero-window default.
func TestIPCDelegationRefusedByDefault(t *testing.T) {
	k := newTestKernel(t, Config{})
	client, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "client", false)
	server, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "server", false)
	k.DelegateMem(k.Root, 0x400, client, 0x1000, 2, cap.RightsAll) //nolint:errcheck

	srvSel := server.Caps.AllocSel()
	if _, err := k.CreatePortal(server, srvSel, "plain", 1, 0, func(m *UTCB) error { return nil }); err != nil {
		t.Fatal(err)
	}
	server.Caps.Delegate(srvSel, client.Caps, 50, cap.RightCall) //nolint:errcheck
	msg := &UTCB{Delegations: []DelegateItem{{SrcPage: 0x1000, DstPage: 0, NPages: 1, Rights: cap.RightsAll}}}
	if err := k.Call(client, 50, msg); err != nil {
		t.Fatal(err)
	}
	if msg.Delegated != 0 {
		t.Error("delegation accepted by a portal with no window")
	}
	if server.Mem.Len() != 0 {
		t.Error("server space not empty")
	}
}
