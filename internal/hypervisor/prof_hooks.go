package hypervisor

// Profiler plumbing. Everything in this file is host-side observability
// riding the same zero-perturbation contract as the tracer: no cycle
// charges, no guest-visible state changes, no MMIO routing. The memory
// readers handed to the profiler's stack walker therefore go through
// hw.Memory.CodePage — the pure, bounds-checked, MMIO-declining window
// onto RAM — and guest page-table walks run with setAD=false so no
// accessed/dirty bits move.

import (
	"encoding/binary"

	"nova/internal/hw"
	"nova/internal/prof"
	"nova/internal/x86"
)

// pureReadByte reads one byte of host-physical RAM with no side
// effects; MMIO and out-of-range addresses decline.
func pureReadByte(mem *hw.Memory, pa uint64) (byte, bool) {
	data, _, ok := mem.CodePage(hw.PhysAddr(pa))
	if !ok {
		return 0, false
	}
	return data[pa&(hw.PageSize-1)], true
}

// pureRead32 reads a little-endian 32-bit word of host-physical RAM
// with no side effects.
func pureRead32(mem *hw.Memory, pa uint64) (uint32, bool) {
	data, _, ok := mem.CodePage(hw.PhysAddr(pa))
	if !ok {
		return 0, false
	}
	off := pa & (hw.PageSize - 1)
	if off+4 <= hw.PageSize {
		return binary.LittleEndian.Uint32(data[off:]), true
	}
	var v uint32
	for i := uint64(0); i < 4; i++ {
		b, ok := pureReadByte(mem, pa+i)
		if !ok {
			return 0, false
		}
		v |= uint32(b) << (8 * i)
	}
	return v, true
}

// profPhys adapts guest-physical space as x86.PhysMem for the
// profiler's side-effect-free page-table walks. With pd nil, addresses
// are host-physical already (bare metal).
type profPhys struct {
	mem *hw.Memory
	pd  *PD
}

func (p profPhys) ReadPhys32(pa uint64) (uint32, bool) {
	if p.pd != nil {
		hpa, _, ok := hostTranslate(p.pd, pa)
		if !ok {
			return 0, false
		}
		pa = hpa
	}
	return pureRead32(p.mem, pa)
}

// WritePhys32 always declines: profiler walks run with setAD=false and
// must stay read-only even if that ever changes.
func (p profPhys) WritePhys32(pa uint64, v uint32) bool { return false }

// profTranslate resolves a guest-virtual address to host-physical with
// no side effects: a pure walk of the guest page tables (when paging is
// on) followed by the domain's host translation. Any failure declines.
func profTranslate(mem *hw.Memory, pd *PD, st *x86.CPUState, va uint32) (uint64, bool) {
	pa := uint64(va)
	if st.PagingEnabled() {
		w, exc := x86.WalkGuest(profPhys{mem: mem, pd: pd}, st.CR3, st.CR4, va, false, false, false)
		if exc != nil {
			return 0, false
		}
		pa = w.PA
	}
	if pd != nil {
		hpa, _, ok := hostTranslate(pd, pa)
		if !ok {
			return 0, false
		}
		pa = hpa
	}
	return pa, true
}

// profGuestReader builds the pure 32-bit guest-virtual memory reader
// the profiler's EBP stack walker uses. pd nil means bare metal
// (guest-physical = host-physical).
func profGuestReader(mem *hw.Memory, pd *PD, st *x86.CPUState) prof.MemReader {
	return func(va uint32) (uint32, bool) {
		pa, ok := profTranslate(mem, pd, st, va)
		if !ok {
			return 0, false
		}
		return pureRead32(mem, pa)
	}
}

// profGuestByteReader is the byte-granular variant, for post-run code
// capture at hot addresses.
func profGuestByteReader(mem *hw.Memory, pd *PD, st *x86.CPUState) func(uint32) (byte, bool) {
	return func(va uint32) (byte, bool) {
		pa, ok := profTranslate(mem, pd, st, va)
		if !ok {
			return 0, false
		}
		return pureReadByte(mem, pa)
	}
}

// profCtx assembles the sampling context from a guest CPU state: the
// linear instruction address, the frame-pointer chain anchors, and the
// pure reader for the stack walk.
func profCtx(st *x86.CPUState, read prof.MemReader) prof.GuestCtx {
	return prof.GuestCtx{
		RIP:       st.Seg[x86.CS].Base + st.EIP,
		Def32:     st.Seg[x86.CS].Def32,
		EBP:       st.GPR[x86.EBP],
		StackBase: st.Seg[x86.SS].Base,
		CodeBase:  st.Seg[x86.CS].Base,
		Read:      read,
	}
}

// attachProfHook installs the per-instruction sampling hook on a vCPU.
// The hook fires before each instruction executes, so the sample lands
// on the address about to run; virtually every invocation is a single
// time comparison inside Tick.
func (k *Kernel) attachProfHook(ec *EC) {
	v := ec.VCPU
	v.profRead = profGuestReader(k.Plat.Mem, ec.PD, &v.State)
	cpu := ec.CPU
	clk := &k.Plat.CPUs[cpu].Clock
	v.Interp.StepHook = func() {
		k.Prof.Tick(cpu, clk.Now(), prof.ModeGuest, profCtx(&v.State, v.profRead))
	}
}

// profExit attributes one VM-exit window (exit to resume, cycles =
// exact modeled cost) to the guest instruction that took the exit, and
// gives the sampler a kernel-mode observation point so exit-handling
// time lands in the profile under the faulting guest stack.
func (k *Kernel) profExit(ec *EC, rip uint32, def32 bool, cycles hw.Cycles) {
	if k.Prof == nil {
		return
	}
	k.Prof.Attribute(prof.AttribExit, rip, def32, uint64(cycles))
	g := profCtx(&ec.VCPU.State, ec.VCPU.profRead)
	g.RIP, g.Def32 = rip, def32
	k.Prof.Tick(k.cpu, k.Now(), prof.ModeKernel, g)
}

// profVTLBFill attributes one shadow-page-table fill to the guest
// instruction whose access missed.
func (k *Kernel) profVTLBFill(st *x86.CPUState, cycles hw.Cycles) {
	if k.Prof == nil {
		return
	}
	rip := st.Seg[x86.CS].Base + st.EIP
	k.Prof.Attribute(prof.AttribVTLBFill, rip, st.Seg[x86.CS].Def32, uint64(cycles))
}

// ProfEmulate records one VMM-emulated instruction: exact-cost
// attribution at the guest address plus an emulation-mode observation
// point. Called by the VMM after it charges the emulation cost.
//
// nocharge: observability plumbing; the emulation work itself is
// charged by the VMM through ChargeUser at the call site.
func (k *Kernel) ProfEmulate(rip uint32, def32 bool, cycles hw.Cycles) {
	if k.Prof == nil {
		return
	}
	k.Prof.Attribute(prof.AttribEmulate, rip, def32, uint64(cycles))
	k.Prof.Tick(k.cpu, k.Now(), prof.ModeEmulation, prof.GuestCtx{RIP: rip, Def32: def32})
}

// profServerTick gives the sampler an observation point after a server
// EC ran; server samples carry the EC id in place of a code address.
func (k *Kernel) profServerTick(ec *EC) {
	k.Prof.Tick(k.cpu, k.Now(), prof.ModeServer, prof.GuestCtx{RIP: uint32(ec.ID)})
}

// AttachProfiler enables virtual-time sampling with one buffer of the
// given capacity per CPU and a sampling grid of period cycles, and
// returns the profiler for later encoding. Existing vCPUs get their
// sampling hooks retrofitted; vCPUs created afterwards are hooked at
// creation.
//
// nocharge: observability plumbing; attaching the profiler models no
// hardware work and must not move the clocks (zero-perturbation rule).
func (k *Kernel) AttachProfiler(period uint64, capacity int) *prof.Profiler {
	cost := k.Plat.Cost
	meta := prof.Meta{Model: cost.Model.String(), FreqMHz: cost.FreqMHz}
	k.Prof = prof.New(meta, len(k.Plat.CPUs), period, capacity)
	for _, ec := range k.ecs {
		if ec.Kind == ECVCPU {
			k.attachProfHook(ec)
		}
	}
	return k.Prof
}

// ProfCodeReader returns a pure byte reader over ec's guest address
// space, for Profiler.CaptureCode after a run.
func (k *Kernel) ProfCodeReader(ec *EC) func(uint32) (byte, bool) {
	return profGuestByteReader(k.Plat.Mem, ec.PD, &ec.VCPU.State)
}
