package hypervisor

import (
	"strings"
	"testing"

	"nova/internal/cap"
	"nova/internal/hw"
)

func newTestKernel(t *testing.T, cfg Config) *Kernel {
	t.Helper()
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 64 << 20})
	return New(plat, cfg)
}

func TestKernelBootResources(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	// Root PD holds all memory above the hypervisor's reserved megabyte.
	if _, _, ok := k.Root.Mem.Translate(0x100); !ok {
		t.Error("root missing low memory page")
	}
	if _, _, ok := k.Root.Mem.Translate(0xff); ok {
		t.Error("root holds hypervisor-reserved page")
	}
	if !k.Root.IO.Allowed(0x3f8) {
		t.Error("root missing I/O ports")
	}
}

func TestCreateObjectsAndCapabilities(t *testing.T) {
	k := newTestKernel(t, Config{})
	pd, err := k.CreatePD(k.Root, 1, "vmm", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Root.Caps.LookupTyped(1, cap.ObjPD, cap.RightCtrl); err != nil {
		t.Errorf("creator lacks PD capability: %v", err)
	}
	ec, err := k.CreateEC(k.Root, 2, pd, 0, "worker", func() {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateSC(k.Root, 3, ec, 10, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreatePortal(k.Root, 4, "svc", 7, 0, func(m *UTCB) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateSemaphore(k.Root, 5, "sem", 0); err != nil {
		t.Fatal(err)
	}
	if k.Root.Caps.Len() != 5 {
		t.Errorf("root cap space has %d entries, want 5", k.Root.Caps.Len())
	}
}

func TestVMsCannotHypercall(t *testing.T) {
	k := newTestKernel(t, Config{})
	vm, err := k.CreatePD(k.Root, 1, "guest", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreatePD(vm, 1, "evil", false); err != ErrVMNoHypercalls {
		t.Errorf("VM hypercall: %v, want ErrVMNoHypercalls", err)
	}
	if err := k.SemUp(vm, &Semaphore{}); err != ErrVMNoHypercalls {
		t.Errorf("VM SemUp: %v", err)
	}
}

func TestIPCCallChargesAndRuns(t *testing.T) {
	k := newTestKernel(t, Config{})
	server, _ := k.CreatePD(k.Root, 1, "server", false)
	ran := false
	pt, err := k.CreatePortal(server, 1, "echo", 1, 0, func(m *UTCB) error {
		ran = true
		m.Words = append(m.Words[:0], m.Words[0]*2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = pt
	// Delegate the portal to root so it can call.
	if err := server.Caps.Delegate(1, k.Root.Caps, 10, cap.RightCall); err != nil {
		t.Fatal(err)
	}
	before := k.Now()
	msg := &UTCB{Words: []uint64{21}}
	if err := k.Call(k.Root, 10, msg); err != nil {
		t.Fatal(err)
	}
	if !ran || msg.Words[0] != 42 {
		t.Errorf("handler ran=%v words=%v", ran, msg.Words)
	}
	if k.Now() == before {
		t.Error("IPC charged no cycles")
	}
	// Cross-AS call flushed the caller's TLB tag.
	if k.Stats.ContextSwitch < 2 {
		t.Errorf("context switches = %d, want >= 2", k.Stats.ContextSwitch)
	}
	// A caller without the capability cannot call.
	other, _ := k.CreatePD(k.Root, 2, "other", false)
	if err := k.Call(other, 10, msg); err == nil {
		t.Error("call without capability succeeded")
	}
}

func TestIPCCostModelShape(t *testing.T) {
	k := newTestKernel(t, Config{})
	same := k.IPCCost(0, false)
	cross := k.IPCCost(0, true)
	if cross <= same {
		t.Errorf("cross-AS IPC (%d) not more expensive than same-AS (%d)", cross, same)
	}
	if cross-same != k.Plat.Cost.TLBRefill {
		t.Errorf("TLB effect = %d, want %d", cross-same, k.Plat.Cost.TLBRefill)
	}
	big := k.IPCCost(64, false)
	if big <= same {
		t.Error("per-word cost missing")
	}
}

func TestSemaphoreWakesThreadEC(t *testing.T) {
	k := newTestKernel(t, Config{})
	pd, _ := k.CreatePD(k.Root, 1, "drv", false)
	runs := 0
	ec, _ := k.CreateEC(k.Root, 2, pd, 0, "irq-thread", nil)
	ec.Run = func() { runs++ }
	k.CreateSC(k.Root, 3, ec, 20, 1_000_000)
	sm, _ := k.CreateSemaphore(k.Root, 4, "irq", 0)
	k.BindECToSemaphore(ec, sm)

	k.Run(k.Now() + 1000)
	if runs != 0 {
		t.Fatalf("thread ran without signal: %d", runs)
	}
	k.semUp(sm)
	k.Run(k.Now() + 100000)
	if runs != 1 {
		t.Fatalf("thread runs = %d, want 1", runs)
	}
	// Two more signals -> two more runs.
	k.semUp(sm)
	k.semUp(sm)
	k.Run(k.Now() + 100000)
	if runs != 3 {
		t.Errorf("thread runs = %d, want 3", runs)
	}
}

func TestSchedulerPriorityOrder(t *testing.T) {
	k := newTestKernel(t, Config{})
	pd, _ := k.CreatePD(k.Root, 1, "pd", false)
	var order []string
	mk := func(name string, prio int, sel cap.Selector) *Semaphore {
		ec, _ := k.CreateEC(k.Root, sel, pd, 0, name, nil)
		ec.Run = func() { order = append(order, name) }
		k.CreateSC(k.Root, sel+100, ec, prio, 1_000_000)
		sm, _ := k.CreateSemaphore(k.Root, sel+200, name, 0)
		k.BindECToSemaphore(ec, sm)
		return sm
	}
	low := mk("low", 5, 2)
	high := mk("high", 50, 3)
	mid := mk("mid", 20, 4)
	k.semUp(low)
	k.semUp(high)
	k.semUp(mid)
	k.Run(k.Now() + 1_000_000)
	want := "high,mid,low"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("dispatch order = %s, want %s", got, want)
	}
}

func TestGSISemaphoreDelivery(t *testing.T) {
	k := newTestKernel(t, Config{})
	pd, _ := k.CreatePD(k.Root, 1, "drv", false)
	handled := 0
	ec, _ := k.CreateEC(k.Root, 2, pd, 0, "ahci-irq", nil)
	ec.Run = func() { handled++ }
	k.CreateSC(k.Root, 3, ec, 30, 1_000_000)
	sm, _ := k.CreateSemaphore(k.Root, 4, "gsi11", 0)
	k.BindECToSemaphore(ec, sm)
	if err := k.AssignGSI(k.Root, hw.IRQAHCI, sm); err != nil {
		t.Fatal(err)
	}

	k.Plat.PIC.RaiseIRQ(hw.IRQAHCI)
	k.Run(k.Now() + 1_000_000)
	if handled != 1 {
		t.Errorf("interrupt handled %d times, want 1", handled)
	}
	if k.Stats.HostInterrupts != 1 {
		t.Errorf("host interrupts = %d", k.Stats.HostInterrupts)
	}
	// The kernel EOI'd the host PIC: the line can fire again.
	k.Plat.PIC.RaiseIRQ(hw.IRQAHCI)
	k.Run(k.Now() + 1_000_000)
	if handled != 2 {
		t.Errorf("second interrupt not delivered: %d", handled)
	}
}

func TestDestroyPDRevokesEverything(t *testing.T) {
	k := newTestKernel(t, Config{})
	victim, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "victim", false)
	peer, _ := k.CreatePD(k.Root, k.Root.Caps.AllocSel(), "peer", false)

	// Delegating into the peer requires control over it: the root PD,
	// which created both domains, brokers that authority to the victim.
	peerSel, ok := k.Root.Caps.SelectorOf(peer)
	if !ok {
		t.Fatal("root lost the peer capability")
	}
	if err := k.DelegateCap(k.Root, peerSel, victim, victim.Caps.AllocSel(), cap.RightCtrl); err != nil {
		t.Fatal(err)
	}

	// The victim owns memory and delegated some of it to the peer.
	if err := k.DelegateMem(k.Root, 0x400, victim, 0x400, 8, cap.RightsAll); err != nil {
		t.Fatal(err)
	}
	if err := k.DelegateMem(victim, 0x400, peer, 0x800, 4, cap.RightRead); err != nil {
		t.Fatal(err)
	}
	// The victim exposes a portal that it delegated to the peer.
	ptSel := victim.Caps.AllocSel()
	if _, err := k.CreatePortal(victim, ptSel, "svc", 1, 0, func(m *UTCB) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := victim.Caps.Delegate(ptSel, peer.Caps, 100, cap.RightCall); err != nil {
		t.Fatal(err)
	}
	// The victim has a running EC.
	ran := 0
	ec, _ := k.CreateEC(k.Root, k.Root.Caps.AllocSel(), victim, 0, "thread", nil)
	ec.Run = func() { ran++ }
	k.CreateSC(k.Root, k.Root.Caps.AllocSel(), ec, 10, 1_000_000)
	sm, _ := k.CreateSemaphore(k.Root, k.Root.Caps.AllocSel(), "sm", 0)
	k.BindECToSemaphore(ec, sm)

	if err := k.DestroyPD(k.Root, victim); err != nil {
		t.Fatal(err)
	}

	// The peer's borrowed resources are gone; its own domain is fine.
	if _, err := peer.Caps.Lookup(100); err == nil {
		t.Error("peer kept the victim's portal capability")
	}
	if _, _, ok := peer.Mem.Translate(0x800); ok {
		t.Error("peer kept the victim's memory")
	}
	// The victim's EC never runs again.
	k.semUp(sm)
	k.Run(k.Now() + 1_000_000)
	if ran != 0 {
		t.Errorf("destroyed PD's EC ran %d times", ran)
	}
	// Calls into the dead domain fail cleanly.
	msg := &UTCB{}
	if err := k.Call(peer, 100, msg); err == nil {
		t.Error("call into destroyed domain succeeded")
	}
}
