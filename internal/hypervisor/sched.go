package hypervisor

// NumPriorities is the range of scheduling-context priorities.
const NumPriorities = 128

// runqueue is one CPU's ready structure: a FIFO per priority level,
// implementing the preemptive priority-driven round-robin policy of
// §5.1.
type runqueue struct {
	levels [NumPriorities][]*SC
	bitmap [NumPriorities / 64]uint64
	count  int
}

func newRunqueue() *runqueue { return &runqueue{} }

func (q *runqueue) push(sc *SC) {
	if sc.queued {
		return
	}
	p := sc.Priority
	if p < 0 {
		p = 0
	}
	if p >= NumPriorities {
		p = NumPriorities - 1
	}
	sc.Priority = p
	// caphold: ready queue holds the SC until dispatch, which drops dead SCs; teardown=DestroyPD
	q.levels[p] = append(q.levels[p], sc)
	q.bitmap[p/64] |= 1 << uint(p%64)
	sc.queued = true
	q.count++
}

// pop removes and returns the highest-priority SC, round-robin within a
// level.
func (q *runqueue) pop() *SC {
	for w := len(q.bitmap) - 1; w >= 0; w-- {
		if q.bitmap[w] == 0 {
			continue
		}
		// Highest set bit in this word.
		b := 63
		for ; b >= 0; b-- {
			if q.bitmap[w]&(1<<uint(b)) != 0 {
				break
			}
		}
		p := w*64 + b
		sc := q.levels[p][0]
		q.levels[p] = q.levels[p][1:]
		if len(q.levels[p]) == 0 {
			q.bitmap[w] &^= 1 << uint(b)
		}
		sc.queued = false
		q.count--
		return sc
	}
	return nil
}

// peekPriority returns the priority of the best runnable SC, or -1.
func (q *runqueue) peekPriority() int {
	for w := len(q.bitmap) - 1; w >= 0; w-- {
		if q.bitmap[w] == 0 {
			continue
		}
		for b := 63; b >= 0; b-- {
			if q.bitmap[w]&(1<<uint(b)) != 0 {
				return w*64 + b
			}
		}
	}
	return -1
}

func (q *runqueue) empty() bool { return q.count == 0 }

// enqueue puts an SC on its CPU's runqueue.
func (k *Kernel) enqueue(sc *SC) {
	if sc.EC != nil && sc.EC.dead {
		return
	}
	if !sc.queued {
		sc.enqueuedAt = k.Plat.CPUs[sc.EC.CPU].Clock.Now()
	}
	k.runq[sc.EC.CPU].push(sc)
}
