package hypervisor

// Resource-accounting plumbing. Everything in this file is host-side
// observability riding the same zero-perturbation contract as the
// tracer and profiler: no cycle charges, no guest-visible state
// changes, no wall-clock reads. All recording is nil-safe (a nil
// registry or handle struct is a no-op), and the A/B identity test in
// internal/guest proves stats-on and stats-off runs are bit-identical.

import (
	"fmt"

	"nova/internal/hw"
	"nova/internal/stat"
	"nova/internal/x86"
)

// pdStats caches the per-PD metric handles (attributed by PD name).
type pdStats struct {
	hypercalls stat.Counter
	ipcCalls   stat.Counter
	ipcWords   stat.Counter
}

func (s *pdStats) hypercall(now hw.Cycles) {
	if s == nil {
		return
	}
	s.hypercalls.Add(now, 1)
}

func (s *pdStats) ipc(now hw.Cycles, words uint64) {
	if s == nil {
		return
	}
	s.ipcCalls.Add(now, 1)
	s.ipcWords.Add(now, words)
}

// ecStats caches the per-EC scheduler metric handles.
type ecStats struct {
	dispatches stat.Counter
	ranCycles  stat.Counter
}

func (s *ecStats) dispatch(now hw.Cycles) {
	if s == nil {
		return
	}
	s.dispatches.Add(now, 1)
}

func (s *ecStats) ran(now hw.Cycles, used uint64) {
	if s == nil {
		return
	}
	s.ranCycles.Add(now, used)
}

// vcpuStats caches the per-vCPU metric handles: one exit counter per
// reason (so dispatchExit indexes an array instead of formatting a
// name), the exit-latency histogram, vTLB activity and injections.
type vcpuStats struct {
	exits       [x86.NumExitReasons]stat.Counter
	exitLatency stat.Histogram
	fills       stat.Counter
	flushes     stat.Counter
	injections  stat.Counter
}

func (s *vcpuStats) exit(reason x86.ExitReason, end hw.Cycles, dur uint64) {
	if s == nil {
		return
	}
	s.exits[reason].Add(end, 1)
	s.exitLatency.Observe(end, dur)
}

func (s *vcpuStats) fill(now hw.Cycles) {
	if s == nil {
		return
	}
	s.fills.Add(now, 1)
}

func (s *vcpuStats) flush(now hw.Cycles) {
	if s == nil {
		return
	}
	s.flushes.Add(now, 1)
}

func (s *vcpuStats) inject(now hw.Cycles) {
	if s == nil {
		return
	}
	s.injections.Add(now, 1)
}

// attachStatPD builds the per-PD handles and registers the live
// capability/object-count samplers for one protection domain.
func (k *Kernel) attachStatPD(pd *PD) {
	r := k.Stat
	pd.stats = &pdStats{
		hypercalls: r.Counter(stat.Name("kernel_hypercalls", "pd", pd.Name)),
		ipcCalls:   r.Counter(stat.Name("kernel_ipc_calls", "pd", pd.Name)),
		ipcWords:   r.Counter(stat.Name("kernel_ipc_words", "pd", pd.Name)),
	}
	r.RegisterSampler(stat.Name("kernel_pd_caps", "pd", pd.Name), func() uint64 {
		if pd.dead {
			return 0
		}
		return uint64(pd.Caps.Len())
	})
	r.RegisterSampler(stat.Name("kernel_pd_mem_nodes", "pd", pd.Name), func() uint64 {
		if pd.dead {
			return 0
		}
		return uint64(pd.Mem.Len())
	})
}

// attachStatEC builds the per-EC scheduler handles and, for vCPUs, the
// per-vCPU exit/vTLB/injection handles plus the retired-instruction
// sampler.
func (k *Kernel) attachStatEC(ec *EC) {
	r := k.Stat
	ec.stats = &ecStats{
		dispatches: r.Counter(stat.Name("kernel_sched_dispatches", "ec", ec.Name)),
		ranCycles:  r.Counter(stat.Name("kernel_sched_cycles", "ec", ec.Name)),
	}
	if ec.Kind != ECVCPU {
		return
	}
	v := ec.VCPU
	vm := ec.PD.Name
	vcpu := fmt.Sprintf("%d", v.Index)
	vs := &vcpuStats{
		exitLatency: r.Histogram(stat.Name("kernel_exit_latency_cycles", "vm", vm, "vcpu", vcpu)),
		fills:       r.Counter(stat.Name("kernel_vtlb_fills", "vm", vm, "vcpu", vcpu)),
		flushes:     r.Counter(stat.Name("kernel_vtlb_flushes", "vm", vm, "vcpu", vcpu)),
		injections:  r.Counter(stat.Name("kernel_injections", "vm", vm, "vcpu", vcpu)),
	}
	reasons := x86.ExitReasonNames()
	for i := range vs.exits {
		vs.exits[i] = r.Counter(stat.Name("kernel_vmexits", "vm", vm, "vcpu", vcpu, "reason", reasons[i]))
	}
	v.stats = vs
	r.RegisterSampler(stat.Name("guest_instructions", "vm", vm, "vcpu", vcpu), func() uint64 {
		return v.Interp.InstRet
	})
	statSuperblocks(r, v.Interp, vm, vcpu)
}

// statSuperblocks registers the superblock-layer samplers for one
// interpreter: blocks built, fused executions and instructions,
// invalidations, and the single-step fallbacks by cause. These are
// host-side counters (the fused path is invisible to the simulation);
// they quantify how much of the instruction stream executes fused, so
// the next interpreter hotspot is measurable.
func statSuperblocks(r *stat.Registry, ip *x86.Interp, vm, vcpu string) {
	c := ip.Cache
	if c == nil {
		return
	}
	sb := &c.SB
	for _, s := range []struct {
		name string
		v    *uint64
	}{
		{"interp_sb_built", &sb.Built},
		{"interp_sb_hits", &sb.Hits},
		{"interp_sb_fused_insts", &sb.Fused},
		{"interp_sb_invalidated", &sb.Invalidated},
		{"interp_sb_cut_pending", &sb.CutPending},
		{"interp_sb_cut_clamp", &sb.CutClamp},
		{"interp_sb_cut_hook", &sb.CutHook},
		{"interp_sb_cut_short", &sb.CutShort},
		{"interp_sb_cut_slow", &sb.CutSlow},
	} {
		v := s.v
		r.RegisterSampler(stat.Name(s.name, "vm", vm, "vcpu", vcpu), func() uint64 { return *v })
	}
}

// statRunq records the post-dispatch ready-queue depth and wait time.
func (k *Kernel) statRunq(now hw.Cycles, wait uint64) {
	if k.Stat == nil {
		return
	}
	k.statReadyWait.Observe(now, wait)
	if k.cpu < len(k.statRunqDepth) {
		k.statRunqDepth[k.cpu].Set(now, uint64(k.runq[k.cpu].count))
	}
}

// statObjects registers the kernel-wide live object-count samplers.
func (k *Kernel) statObjects() {
	r := k.Stat
	r.RegisterSampler(stat.Name("kernel_objects", "kind", "pd"), func() uint64 {
		n := uint64(0)
		for _, pd := range k.pds {
			if !pd.dead {
				n++
			}
		}
		return n
	})
	r.RegisterSampler(stat.Name("kernel_objects", "kind", "ec"), func() uint64 {
		n := uint64(0)
		for _, ec := range k.ecs {
			if !ec.dead {
				n++
			}
		}
		return n
	})
}

// statDevices registers the hardware device-model accounting samplers:
// DMA volume and command/packet counts straight off the hw models.
func (k *Kernel) statDevices() {
	r := k.Stat
	if ahci := k.Plat.AHCI; ahci != nil {
		r.RegisterSampler("hw_ahci_commands", func() uint64 { return ahci.Stats.Commands })
		r.RegisterSampler("hw_ahci_dma_bytes", func() uint64 { return ahci.Stats.DMABytes })
		r.RegisterSampler("hw_ahci_irqs", func() uint64 { return ahci.Stats.IRQs })
	}
	if nic := k.Plat.NIC; nic != nil {
		r.RegisterSampler("hw_nic_rx_packets", func() uint64 { return nic.Stats.PacketsReceived })
		r.RegisterSampler("hw_nic_rx_bytes", func() uint64 { return nic.Stats.BytesReceived })
		r.RegisterSampler("hw_nic_irqs", func() uint64 { return nic.Stats.IRQs })
		r.RegisterSampler("hw_nic_dropped", func() uint64 { return nic.Stats.PacketsDropped })
	}
}

// AttachStats enables resource accounting with the given virtual-time
// epoch length (zero selects stat.DefaultEpochLen) and returns the
// registry for later snapshotting. Existing PDs and ECs get their
// metric handles retrofitted; objects created afterwards are hooked at
// creation.
//
// nocharge: observability plumbing; attaching the registry models no
// hardware work and must not move the clocks (zero-perturbation rule).
func (k *Kernel) AttachStats(epochLen hw.Cycles) *stat.Registry {
	cost := k.Plat.Cost
	r := stat.New(stat.Meta{
		Model:   cost.Model.String(),
		FreqMHz: cost.FreqMHz,
		NumCPUs: len(k.Plat.CPUs),
	}, epochLen)
	k.Stat = r
	k.statIPCLatency = r.Histogram("kernel_ipc_latency_cycles")
	k.statReadyWait = r.Histogram("kernel_ready_wait_cycles")
	k.statRunqDepth = k.statRunqDepth[:0]
	for cpu := range k.Plat.CPUs {
		k.statRunqDepth = append(k.statRunqDepth,
			r.Gauge(stat.Name("kernel_runq_depth", "cpu", fmt.Sprintf("%d", cpu))))
	}
	for _, pd := range k.pds {
		k.attachStatPD(pd)
	}
	for _, ec := range k.ecs {
		k.attachStatEC(ec)
	}
	k.statObjects()
	k.statDevices()
	return r
}
