package hypervisor

import (
	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/trace"
	"nova/internal/x86"
)

// physRead accesses host-physical memory (routing device windows to
// their MMIO handlers, which matters for passthrough mappings).
func (k *Kernel) physRead(pa uint64, size int) uint32 {
	switch size {
	case 1:
		return uint32(k.Plat.Mem.Read8(hw.PhysAddr(pa)))
	case 2:
		return uint32(k.Plat.Mem.Read16(hw.PhysAddr(pa)))
	default:
		return k.Plat.Mem.Read32(hw.PhysAddr(pa))
	}
}

func (k *Kernel) physWrite(pa uint64, size int, v uint32) {
	switch size {
	case 1:
		k.Plat.Mem.Write8(hw.PhysAddr(pa), uint8(v))
	case 2:
		k.Plat.Mem.Write16(hw.PhysAddr(pa), uint16(v))
	default:
		k.Plat.Mem.Write32(hw.PhysAddr(pa), v)
	}
}

// hostTranslate resolves a guest-physical address through the VM
// domain's memory space (the host page table).
func hostTranslate(pd *PD, gpa uint64) (hpa uint64, writable bool, ok bool) {
	frame, rights, ok := pd.Mem.Translate(uint32(gpa >> 12))
	if !ok {
		return 0, false, false
	}
	return frame<<12 | gpa&0xfff, rights&cap.RightWrite != 0, true
}

// gpaPhys adapts a VM's guest-physical space as x86.PhysMem for guest
// page-table walks.
type gpaPhys struct {
	k  *Kernel
	pd *PD
}

func (g gpaPhys) ReadPhys32(pa uint64) (uint32, bool) {
	hpa, _, ok := hostTranslate(g.pd, pa)
	if !ok {
		return 0, false
	}
	return g.k.Plat.Mem.Read32(hw.PhysAddr(hpa)), true
}

// nocharge: x86.Phys page-walker callback; walk steps are charged by
// the vTLB fill / nested-walk cost accounting, not per memory touch.
func (g gpaPhys) WritePhys32(pa uint64, v uint32) bool {
	hpa, w, ok := hostTranslate(g.pd, pa)
	if !ok || !w {
		return false
	}
	g.k.Plat.Mem.Write32(hw.PhysAddr(hpa), v)
	return true
}

// ShadowPT is the per-vCPU shadow page table of the vTLB algorithm
// (§5.3): the translation the hardware MMU actually uses in shadow
// paging mode, filled lazily from the guest's page tables.
type ShadowPT struct {
	entries map[uint32]shadowEntry // vpn -> entry

	Fills   uint64
	Flushes uint64
}

type shadowEntry struct {
	hpaPage uint64
	guestW  bool
	hostW   bool
	large   bool
	memVer  uint64 // pd.Mem.Version at fill time
}

// NewShadowPT creates an empty shadow page table.
func NewShadowPT() *ShadowPT {
	return &ShadowPT{entries: make(map[uint32]shadowEntry)}
}

// Flush drops all shadow entries (guest CR3 write / CR0 paging change).
//
// nocharge: data-structure operation; the vTLB intercept that triggers
// it (handleVTLBExit) charges the flush cost at the call site.
func (s *ShadowPT) Flush() {
	s.Flushes++
	s.entries = make(map[uint32]shadowEntry)
}

// Invalidate drops the entry covering va (guest INVLPG).
//
// nocharge: charged by the INVLPG intercept path (handleVTLBExit).
func (s *ShadowPT) Invalidate(va uint32) {
	delete(s.entries, va>>12)
}

// Len returns the number of shadow entries.
func (s *ShadowPT) Len() int { return len(s.entries) }

// splitRead handles accesses that cross a page boundary byte-by-byte.
func splitRead(env x86.Env, st *x86.CPUState, va uint32, size int, kind x86.AccessKind) (uint32, error) {
	var v uint32
	for i := size - 1; i >= 0; i-- {
		b, err := env.MemRead(st, va+uint32(i), 1, kind)
		if err != nil {
			return 0, err
		}
		v = v<<8 | b&0xff
	}
	return v, nil
}

func splitWrite(env x86.Env, st *x86.CPUState, va uint32, size int, val uint32) error {
	for i := 0; i < size; i++ {
		if err := env.MemWrite(st, va+uint32(i), 1, val>>(8*uint(i))); err != nil {
			return err
		}
	}
	return nil
}

func crossesPage(va uint32, size int) bool {
	return va&0xfff+uint32(size) > hw.PageSize
}

// guestIOAccess implements non-intercepted port I/O for passthrough
// guests: the domain's I/O space gates access to the physical ports.
func guestIOAccess(k *Kernel, pd *PD, port uint16) bool {
	return pd.IO.Allowed(port)
}

// ---------------------------------------------------------------------
// EPT environment: hardware nested paging.
// ---------------------------------------------------------------------

type eptEnv struct {
	k  *Kernel
	ec *EC

	// memVer tracks pd.Mem.Version; mapping changes flush cached
	// translations.
	memVer uint64
}

func newEPTEnv(k *Kernel, ec *EC) *eptEnv { return &eptEnv{k: k, ec: ec} }

func (e *eptEnv) tag() hw.TLBTag { return e.ec.PD.Tag }

func (e *eptEnv) tlb() *hw.TLB { return e.k.Plat.CPUs[e.ec.CPU].TLB }

func (e *eptEnv) checkVer() {
	if v := e.ec.PD.Mem.Version; v != e.memVer {
		e.memVer = v
		e.tlb().FlushTag(e.tag())
	}
}

// translate resolves a guest-virtual address, performing the hardware
// two-dimensional page walk on TLB misses.
func (e *eptEnv) translate(st *x86.CPUState, va uint32, write bool) (uint64, error) {
	e.checkVer()
	tlb := e.tlb()
	if pa, entry, ok := tlb.Translate(e.tag(), va); ok {
		if !write || entry.Writable {
			return uint64(pa), nil
		}
		// Slow path below decides which layer denies the write.
	}

	cost := e.k.Plat.Cost
	var gpa uint64
	var guestW, guestLarge, guestGlobal bool
	if st.PagingEnabled() {
		w, exc := x86.WalkGuest(gpaPhys{e.k, e.ec.PD}, st.CR3, st.CR4, va, write, st.CR0&x86.CR0WP != 0, true)
		// Hardware 2-D walk: each guest level is itself translated
		// through the host tables.
		steps := (w.Steps+1)*(cost.HostPTLevels+1) - 1
		e.k.charge(hw.Cycles(steps) * cost.PageWalkLevel)
		if exc != nil {
			return 0, exc
		}
		gpa = w.PA
		guestW, guestLarge, guestGlobal = w.Writable, w.Large, w.Global
	} else {
		gpa = uint64(va)
		guestW, guestLarge = true, true
		e.k.charge(hw.Cycles(cost.HostPTLevels) * cost.PageWalkLevel)
	}

	hpa, hostW, ok := hostTranslate(e.ec.PD, gpa)
	if !ok {
		return 0, &x86.VMExit{Reason: x86.ExitEPTViolation, GPA: gpa, Write: write}
	}
	if write && !hostW {
		return 0, &x86.VMExit{Reason: x86.ExitEPTViolation, GPA: gpa, Write: true}
	}
	if write && !guestW {
		return 0, x86.PageFault(va, true, true, false)
	}

	writable := guestW && hostW
	if guestLarge && e.ec.PD.HostLargePages {
		// The combined entry covers a large page only when both guest
		// and host mappings are large (Figure 5's small-host-pages bars
		// lose exactly this).
		mask := uint64(tlb.LargePageSize() - 1)
		base := hpa &^ mask
		tlb.InsertLarge(e.tag(), va, base>>12, writable, true, guestGlobal)
	} else {
		tlb.InsertSmall(e.tag(), va, hpa>>12, writable, true, guestGlobal)
	}
	return hpa, nil
}

// ExecPage implements x86.ExecPager: one translation of the fetch
// address — charged, traced and faulting exactly like the slow path's
// first byte fetch — plus direct host access to the backing RAM page for
// the decoded-instruction cache. MMIO-backed pages are declined (nil
// data) so fetch side effects stay on the MMIO-routed path.
func (e *eptEnv) ExecPage(st *x86.CPUState, va uint32) ([]byte, uint64, uint64, error) {
	hpa, err := e.translate(st, va, false)
	if err != nil {
		return nil, 0, 0, err
	}
	data, gen, ok := e.k.Plat.Mem.CodePage(hw.PhysAddr(hpa))
	if !ok {
		return nil, 0, 0, nil
	}
	return data, hpa >> 12, gen, nil
}

func (e *eptEnv) MemRead(st *x86.CPUState, va uint32, size int, kind x86.AccessKind) (uint32, error) {
	if crossesPage(va, size) {
		return splitRead(e, st, va, size, kind)
	}
	hpa, err := e.translate(st, va, false)
	if err != nil {
		return 0, err
	}
	return e.k.physRead(hpa, size), nil
}

func (e *eptEnv) MemWrite(st *x86.CPUState, va uint32, size int, val uint32) error {
	if crossesPage(va, size) {
		return splitWrite(e, st, va, size, val)
	}
	hpa, err := e.translate(st, va, true)
	if err != nil {
		return err
	}
	e.k.physWrite(hpa, size, val)
	return nil
}

func (e *eptEnv) In(port uint16, size int) (uint32, error) {
	if !guestIOAccess(e.k, e.ec.PD, port) {
		return 0, x86.GPFault(0)
	}
	return e.k.Plat.Ports.Read(port, size), nil
}

func (e *eptEnv) Out(port uint16, size int, val uint32) error {
	if !guestIOAccess(e.k, e.ec.PD, port) {
		return x86.GPFault(0)
	}
	e.k.Plat.Ports.Write(port, size, val)
	return nil
}

func (e *eptEnv) InvalidateTLB(st *x86.CPUState, all bool, va uint32) {
	if all {
		e.tlb().FlushTag(e.tag())
	} else {
		e.tlb().FlushVA(e.tag(), va)
	}
}

func (e *eptEnv) FlushOnWorldSwitch() {
	if !e.k.tagged() {
		e.tlb().FlushAll()
	}
}

// ---------------------------------------------------------------------
// vTLB environment: shadow paging (§5.3).
// ---------------------------------------------------------------------

type vtlbEnv struct {
	k  *Kernel
	ec *EC
}

func newVTLBEnv(k *Kernel, ec *EC) *vtlbEnv { return &vtlbEnv{k: k, ec: ec} }

func (e *vtlbEnv) tag() hw.TLBTag { return e.ec.PD.Tag }

func (e *vtlbEnv) tlb() *hw.TLB { return e.k.Plat.CPUs[e.ec.CPU].TLB }

func (e *vtlbEnv) translate(st *x86.CPUState, va uint32, write bool) (uint64, error) {
	v := e.ec.VCPU
	cost := e.k.Plat.Cost

	if !st.PagingEnabled() {
		// Real mode / paging off: identity guest mapping through the
		// host page table only.
		hpa, hostW, ok := hostTranslate(e.ec.PD, uint64(va))
		if !ok {
			return 0, &x86.VMExit{Reason: x86.ExitEPTViolation, GPA: uint64(va), Write: write}
		}
		if write && !hostW {
			return 0, &x86.VMExit{Reason: x86.ExitEPTViolation, GPA: uint64(va), Write: true}
		}
		return hpa, nil
	}

	vpn := va >> 12
	// Hardware TLB first, then the shadow page table (a regular
	// two-level table the MMU walks on TLB misses).
	if pa, entry, ok := e.tlb().Translate(e.tag(), va); ok {
		if !write || entry.Writable {
			return uint64(pa), nil
		}
	}
	if se, ok := v.Shadow.entries[vpn]; ok && se.memVer == e.ec.PD.Mem.Version {
		if !write || se.guestW && se.hostW {
			e.k.Tracer.CountVTLBHit()
			e.k.charge(2 * cost.PageWalkLevel) // MMU walk of the shadow table
			e.tlb().InsertSmall(e.tag(), va, se.hpaPage, se.guestW && se.hostW, true, false)
			return se.hpaPage<<12 | uint64(va&0xfff), nil
		}
	}

	// vTLB miss: world switch into the microhypervisor, six VMREADs to
	// determine the cause, then the one-dimensional guest walk enabled
	// by running on the VM's host page table (§5.3), and the shadow
	// fill.
	t0 := e.k.Now()
	e.k.charge(cost.VMTransitCost(e.k.tagged()) + 6*cost.VMRead)
	if !e.k.tagged() {
		e.tlb().FlushAll()
	}

	w, exc := x86.WalkGuest(gpaPhys{e.k, e.ec.PD}, st.CR3, st.CR4, va, write, st.CR0&x86.CR0WP != 0, true)
	perStep := cost.CacheLineAccess
	if e.k.Cfg.DisableVTLBTrick {
		// Without running on the VM's host page table, each guest
		// page-table entry read needs a software GPA->HPA translation
		// (§5.3: the trick makes the two-dimensional walk
		// one-dimensional for software).
		perStep += hw.Cycles(cost.HostPTLevels) * cost.CacheLineAccess
	}
	e.k.charge(hw.Cycles(w.Steps) * perStep)
	if exc != nil {
		// The guest's own page fault: forwarded into the guest. This is
		// Table 2's "Guest Page Fault" row.
		e.k.Stats.GuestPageFault++
		v.Exits[x86.ExitException]++
		return 0, exc
	}

	hpa, hostW, ok := hostTranslate(e.ec.PD, w.PA)
	if !ok {
		return 0, &x86.VMExit{Reason: x86.ExitEPTViolation, GPA: w.PA, Write: write}
	}
	if write && !hostW {
		return 0, &x86.VMExit{Reason: x86.ExitEPTViolation, GPA: w.PA, Write: true}
	}

	// Shadow page-table update (two entries touched).
	e.k.charge(2 * cost.CacheLineAccess)
	v.Shadow.entries[vpn] = shadowEntry{
		hpaPage: hpa >> 12, guestW: w.Writable, hostW: hostW,
		large: w.Large, memVer: e.ec.PD.Mem.Version,
	}
	v.Shadow.Fills++
	e.k.Stats.VTLBFills++
	end := e.k.Now()
	e.k.Tracer.Emit(e.k.cpu, end, trace.KindVTLBFill, uint64(va), uint64(end-t0), uint64(e.ec.ID), 0)
	e.k.Tracer.ObserveVTLBFill(uint64(end - t0))
	e.k.Tracer.CountVTLBMiss()
	v.stats.fill(end)
	e.k.profVTLBFill(st, end-t0)
	e.tlb().InsertSmall(e.tag(), va, hpa>>12, w.Writable && hostW, true, false)
	return hpa, nil
}

// ExecPage implements x86.ExecPager; see eptEnv.ExecPage. The vTLB
// translate path emits fill traces and charges world-switch costs on
// misses exactly as the slow path's first byte fetch would.
func (e *vtlbEnv) ExecPage(st *x86.CPUState, va uint32) ([]byte, uint64, uint64, error) {
	hpa, err := e.translate(st, va, false)
	if err != nil {
		return nil, 0, 0, err
	}
	data, gen, ok := e.k.Plat.Mem.CodePage(hw.PhysAddr(hpa))
	if !ok {
		return nil, 0, 0, nil
	}
	return data, hpa >> 12, gen, nil
}

func (e *vtlbEnv) MemRead(st *x86.CPUState, va uint32, size int, kind x86.AccessKind) (uint32, error) {
	if crossesPage(va, size) {
		return splitRead(e, st, va, size, kind)
	}
	hpa, err := e.translate(st, va, false)
	if err != nil {
		return 0, err
	}
	return e.k.physRead(hpa, size), nil
}

func (e *vtlbEnv) MemWrite(st *x86.CPUState, va uint32, size int, val uint32) error {
	if crossesPage(va, size) {
		return splitWrite(e, st, va, size, val)
	}
	hpa, err := e.translate(st, va, true)
	if err != nil {
		return err
	}
	e.k.physWrite(hpa, size, val)
	return nil
}

func (e *vtlbEnv) In(port uint16, size int) (uint32, error) {
	if !guestIOAccess(e.k, e.ec.PD, port) {
		return 0, x86.GPFault(0)
	}
	return e.k.Plat.Ports.Read(port, size), nil
}

func (e *vtlbEnv) Out(port uint16, size int, val uint32) error {
	if !guestIOAccess(e.k, e.ec.PD, port) {
		return x86.GPFault(0)
	}
	e.k.Plat.Ports.Write(port, size, val)
	return nil
}

func (e *vtlbEnv) InvalidateTLB(st *x86.CPUState, all bool, va uint32) {
	// Only reached when CR/INVLPG intercepts are off; the kernel's
	// intercept path normally handles these.
	v := e.ec.VCPU
	if all {
		v.Shadow.Flush()
		e.tlb().FlushTag(e.tag())
	} else {
		v.Shadow.Invalidate(va)
		e.tlb().FlushVA(e.tag(), va)
	}
}

func (e *vtlbEnv) FlushOnWorldSwitch() {
	if !e.k.tagged() {
		e.tlb().FlushAll()
	}
}
