package hypervisor

import (
	"testing"

	"nova/internal/hw"
	"nova/internal/x86"
)

// TestSelfModifyingCodeInvalidatesDecodeCache runs a guest that patches
// an instruction in its own code page and immediately re-executes it.
// The decoded-instruction cache must observe the write (via the physical
// page's write generation) and re-decode: the patched instruction has to
// execute, in both paging modes. A stale cached decode would leave the
// first call's result in place.
func TestSelfModifyingCodeInvalidatesDecodeCache(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode PagingMode
	}{
		{"ept", ModeEPT},
		{"vtlb", ModeVTLB},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := newTestKernel(t, Config{UseVPID: true})
			// The subroutine at 0x7e00 is `mov ax, 0x1111; ret`, written
			// below as raw bytes. The main program calls it (decoding and
			// caching it), patches its immediate to 0x2222, and calls it
			// again: both stores and the re-executed fetch hit the same
			// physical code page.
			code := x86.MustAssemble(`bits 16
org 0x7c00
	call 0x7e00
	mov [0x600], ax
	mov byte [0x7e01], 0x22
	mov byte [0x7e02], 0x22
	call 0x7e00
	mov [0x604], ax
	hlt`)
			tv := makeVM(t, k, tc.mode, 64, code, 0x7c00, nil)
			tv.writeGuest(0x7e00, []byte{0xb8, 0x11, 0x11, 0xc3}) // mov ax, 0x1111; ret
			v := tv.ec.VCPU
			if v.Interp.Cache == nil {
				t.Fatal("decode cache not attached; the test would not exercise invalidation")
			}
			v.State.GPR[x86.ESP] = 0x7000
			k.Run(k.Now() + 50_000_000)
			if !v.State.Halted {
				t.Fatalf("guest did not halt: %v", v.State.String())
			}
			if got := tv.readGuest32(0x600) & 0xffff; got != 0x1111 {
				t.Errorf("first call: ax = %#x, want 0x1111", got)
			}
			if got := tv.readGuest32(0x604) & 0xffff; got != 0x2222 {
				t.Errorf("after self-modification: ax = %#x, want 0x2222 (stale decode executed?)", got)
			}
		})
	}
}

// smcSubroutine is a three-instruction fusible run ending in RET:
//
//	7e00: b8 11 11   mov ax, 0x1111
//	7e03: bb 22 22   mov bx, 0x2222
//	7e06: 01 d8      add ax, bx
//	7e08: c3         ret
//
// The movs and the add chain into one superblock (RET touches the stack
// and terminates it), so patching the middle instruction's immediate at
// 0x7e04 lands strictly inside a cached block's byte span.
var smcSubroutine = []byte{0xb8, 0x11, 0x11, 0xbb, 0x22, 0x22, 0x01, 0xd8, 0xc3}

// TestSelfModifyingCodeInvalidatesSuperblock warms a multi-instruction
// subroutine until it is cached as a superblock, then has the guest
// patch the immediate of the block's *middle* instruction and call it
// again. The fused path must observe the write and rebuild the block:
// a stale superblock would replay the old immediate even though the
// per-instruction decode cache was invalidated correctly.
func TestSelfModifyingCodeInvalidatesSuperblock(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode PagingMode
	}{
		{"ept", ModeEPT},
		{"vtlb", ModeVTLB},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := newTestKernel(t, Config{UseVPID: true})
			code := x86.MustAssemble(`bits 16
org 0x7c00
	mov cx, 32
warm:
	call 0x7e00
	dec cx
	jnz warm
	mov [0x600], ax
	mov byte [0x7e04], 0x55
	call 0x7e00
	mov [0x604], ax
	hlt`)
			tv := makeVM(t, k, tc.mode, 64, code, 0x7c00, nil)
			tv.writeGuest(0x7e00, smcSubroutine)
			v := tv.ec.VCPU
			if v.Interp.Cache == nil {
				t.Fatal("decode cache not attached; the test would not exercise invalidation")
			}
			v.State.GPR[x86.ESP] = 0x7000
			k.Run(k.Now() + 50_000_000)
			if !v.State.Halted {
				t.Fatalf("guest did not halt: %v", v.State.String())
			}
			if got := tv.readGuest32(0x600) & 0xffff; got != 0x3333 {
				t.Errorf("warm calls: ax = %#x, want 0x3333", got)
			}
			if got := tv.readGuest32(0x604) & 0xffff; got != 0x3366 {
				t.Errorf("after mid-block patch: ax = %#x, want 0x3366 (stale superblock executed?)", got)
			}
			sb := v.Interp.Cache.SB
			if sb.Built == 0 || sb.Hits == 0 {
				t.Errorf("fused path never engaged (built=%d hits=%d); the test did not exercise superblocks", sb.Built, sb.Hits)
			}
			t.Logf("%s: built=%d hits=%d fused=%d invalidated=%d", tc.name, sb.Built, sb.Hits, sb.Fused, sb.Invalidated)
		})
	}
}

// TestDMAIntoCachedCodePage patches the same mid-superblock immediate
// from *outside* the vCPU — a device bus-master write through the DMA
// path — while the guest spins on a flag. Device DMA goes through
// hw.Memory.WriteBytes and must bump the page's write generation like
// any other store, so the cached decodes and superblock over those
// bytes are re-proved against the live page when the guest re-executes
// them.
func TestDMAIntoCachedCodePage(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode PagingMode
	}{
		{"ept", ModeEPT},
		{"vtlb", ModeVTLB},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := newTestKernel(t, Config{UseVPID: true})
			code := x86.MustAssemble(`bits 16
org 0x7c00
	mov cx, 32
warm:
	call 0x7e00
	dec cx
	jnz warm
	mov [0x600], ax
wait:
	mov al, [0x7f0]
	cmp al, 1
	jne wait
	call 0x7e00
	mov [0x604], ax
	hlt`)
			tv := makeVM(t, k, tc.mode, 64, code, 0x7c00, nil)
			tv.writeGuest(0x7e00, smcSubroutine)
			v := tv.ec.VCPU
			if v.Interp.Cache == nil {
				t.Fatal("decode cache not attached; the test would not exercise invalidation")
			}
			v.State.GPR[x86.ESP] = 0x7000

			// Bounded slice: the guest warms the subroutine (caching the
			// superblock) and parks in the flag-poll loop.
			k.Run(k.Now() + 2_000_000)
			if v.State.Halted {
				t.Fatal("guest halted before the DMA patch; poll loop never entered")
			}
			if got := tv.readGuest32(0x600) & 0xffff; got != 0x3333 {
				t.Fatalf("warm calls: ax = %#x, want 0x3333", got)
			}

			// Bus-master write into the cached code page, then release the
			// poll loop. The DMA path must invalidate exactly like SMC.
			dma := hw.NewDirectDMA(k.Plat.Mem)
			dev := hw.BDF(0, 3, 0)
			if err := dma.DMAWrite(dev, tv.base+0x7e04, []byte{0x55}); err != nil {
				t.Fatalf("DMA patch: %v", err)
			}
			if err := dma.DMAWrite(dev, tv.base+0x7f0, []byte{1}); err != nil {
				t.Fatalf("DMA flag: %v", err)
			}

			k.Run(k.Now() + 50_000_000)
			if !v.State.Halted {
				t.Fatalf("guest did not halt after the DMA release: %v", v.State.String())
			}
			if got := tv.readGuest32(0x604) & 0xffff; got != 0x3366 {
				t.Errorf("after DMA patch: ax = %#x, want 0x3366 (stale decode or superblock executed?)", got)
			}
			sb := v.Interp.Cache.SB
			if sb.Built == 0 || sb.Hits == 0 {
				t.Errorf("fused path never engaged (built=%d hits=%d); the test did not exercise superblocks", sb.Built, sb.Hits)
			}
			t.Logf("%s: built=%d hits=%d fused=%d invalidated=%d", tc.name, sb.Built, sb.Hits, sb.Fused, sb.Invalidated)
		})
	}
}
