package hypervisor

import (
	"testing"

	"nova/internal/x86"
)

// TestSelfModifyingCodeInvalidatesDecodeCache runs a guest that patches
// an instruction in its own code page and immediately re-executes it.
// The decoded-instruction cache must observe the write (via the physical
// page's write generation) and re-decode: the patched instruction has to
// execute, in both paging modes. A stale cached decode would leave the
// first call's result in place.
func TestSelfModifyingCodeInvalidatesDecodeCache(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode PagingMode
	}{
		{"ept", ModeEPT},
		{"vtlb", ModeVTLB},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := newTestKernel(t, Config{UseVPID: true})
			// The subroutine at 0x7e00 is `mov ax, 0x1111; ret`, written
			// below as raw bytes. The main program calls it (decoding and
			// caching it), patches its immediate to 0x2222, and calls it
			// again: both stores and the re-executed fetch hit the same
			// physical code page.
			code := x86.MustAssemble(`bits 16
org 0x7c00
	call 0x7e00
	mov [0x600], ax
	mov byte [0x7e01], 0x22
	mov byte [0x7e02], 0x22
	call 0x7e00
	mov [0x604], ax
	hlt`)
			tv := makeVM(t, k, tc.mode, 64, code, 0x7c00, nil)
			tv.writeGuest(0x7e00, []byte{0xb8, 0x11, 0x11, 0xc3}) // mov ax, 0x1111; ret
			v := tv.ec.VCPU
			if v.Interp.Cache == nil {
				t.Fatal("decode cache not attached; the test would not exercise invalidation")
			}
			v.State.GPR[x86.ESP] = 0x7000
			k.Run(k.Now() + 50_000_000)
			if !v.State.Halted {
				t.Fatalf("guest did not halt: %v", v.State.String())
			}
			if got := tv.readGuest32(0x600) & 0xffff; got != 0x1111 {
				t.Errorf("first call: ax = %#x, want 0x1111", got)
			}
			if got := tv.readGuest32(0x604) & 0xffff; got != 0x2222 {
				t.Errorf("after self-modification: ax = %#x, want 0x2222 (stale decode executed?)", got)
			}
		})
	}
}
