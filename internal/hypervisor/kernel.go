package hypervisor

import (
	"errors"
	"fmt"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/prof"
	"nova/internal/span"
	"nova/internal/stat"
	"nova/internal/trace"
	"nova/internal/x86"
)

// PagingMode selects how a VM's memory is virtualized (§5.3).
type PagingMode int

// Memory virtualization modes.
const (
	// ModeEPT uses hardware nested paging: the MMU walks guest and host
	// page tables in hardware; no paging-related VM exits.
	ModeEPT PagingMode = iota
	// ModeVTLB uses shadow page tables maintained by the
	// microhypervisor; guest page faults, CR writes and INVLPG trap.
	ModeVTLB
)

func (m PagingMode) String() string {
	if m == ModeVTLB {
		return "vtlb"
	}
	return "ept"
}

// Stats aggregates kernel activity across all domains.
type Stats struct {
	Hypercalls     uint64
	IPCCalls       uint64
	IPCWords       uint64
	VMExits        [x86.NumExitReasons]uint64
	VTLBFills      uint64
	VTLBFlushes    uint64
	GuestPageFault uint64 // guest-visible #PF forwarded into the guest
	HostInterrupts uint64
	Injections     uint64
	Recalls        uint64
	Preemptions    uint64
	ContextSwitch  uint64
}

// Config selects global kernel options.
type Config struct {
	// UseVPID enables tagged-TLB use on VM transitions when the CPU
	// supports it (Figure 5's "EPT with/without VPID" comparison).
	UseVPID bool
	// MTDOptimization, when false, transfers the full state on every VM
	// exit instead of the portal's minimal MTD (ablation of §5.2).
	DisableMTDOpt bool
	// DirectSwitch, when false, routes every portal call through the
	// scheduler instead of switching directly on the donated SC
	// (ablation of the SC-donation design).
	DisableDirectSwitch bool
	// DisableVTLBTrick makes the vTLB fill walk the guest page table
	// without running on the VM's host page table (§5.3's trick): every
	// guest level then costs an extra software GPA->HPA translation.
	DisableVTLBTrick bool
	// DisableDecodeCache turns off the host-side decoded-instruction
	// cache of the guest interpreter. This is NOT an ablation: the
	// cache must not change simulated cycles, traces or guest state by
	// a single bit (the A/B determinism test runs both settings); the
	// switch exists for that test and for debugging.
	DisableDecodeCache bool
	// DisableSuperblocks turns off fused superblock execution
	// (x86.StepBlock) on top of the decode cache. Like the cache
	// switch, this is NOT an ablation: fused and single-stepped runs
	// are bit-identical (the superblock A/B matrix runs both); the
	// switch exists for that harness and for debugging.
	DisableSuperblocks bool
}

// Kernel is the microhypervisor instance for one platform.
type Kernel struct {
	Plat *hw.Platform
	Cfg  Config

	Root *PD

	pds  []*PD
	ecs  []*EC
	next cap.Selector // simple allocator for root caps

	runq    []*runqueue // per CPU
	current []*EC       // per CPU
	cpu     int         // CPU whose run loop is active

	// Interrupt routing: line → semaphore (driver) or vCPU injection.
	gsiSem  map[int]*Semaphore
	gsiVCPU map[int]*gsiRoute

	nextTag hw.TLBTag

	Stats Stats

	// Killed records VMs terminated by the kernel with their reasons
	// (the isolation scenarios of §4.2 assert on this).
	Killed []string

	// GuestOwnsPIC is set for the §8.1 "Direct" measurement setup where
	// a no-exit guest drives the platform interrupt controller itself;
	// the kernel then keeps its hands off pending interrupts.
	GuestOwnsPIC bool

	// preempt is set when a wakeup makes a higher-priority SC runnable
	// so the inner execution loops return to the scheduler.
	preempt bool

	// Tracer, when set, observes kernel events (VM exits, IPC,
	// scheduling, semaphores, vTLB maintenance) in dispatch order. All
	// emission is nil-safe and never charges cycles: tracing must not
	// perturb the simulation. The determinism regression test hashes
	// the event rings: two runs from identical inputs must produce
	// byte-identical traces, not merely identical aggregate counts.
	Tracer *trace.Tracer

	// Prof, when set, samples guest execution on the virtual-time grid
	// and receives exact-cost attributions for VM exits, vTLB fills and
	// emulated instructions. Same zero-perturbation contract as Tracer:
	// all recording is nil-safe, charges nothing, and two profiled runs
	// of the same workload must produce byte-identical profiles.
	Prof *prof.Profiler

	// Stat, when set, aggregates per-object resource accounting
	// (exits, IPC, vTLB activity, scheduler consumption) into
	// virtual-time epochs. Same zero-perturbation contract as Tracer
	// and Prof: all recording is nil-safe, charges nothing, and two
	// accounted runs of the same workload produce byte-identical
	// snapshots. The cached handles below keep the hot paths free of
	// name formatting.
	Stat           *stat.Registry
	statIPCLatency stat.Histogram
	statReadyWait  stat.Histogram
	statRunqDepth  []stat.Gauge

	// Spans, when set, records request-scoped causal spans: a span ID is
	// assigned at each request origin (vAHCI doorbell, NIC RX harvest,
	// BIOS INT13, standalone portal calls) and every component boundary
	// the request crosses records a critical-path segment transition.
	// Same zero-perturbation contract as Tracer/Prof/Stat: recording is
	// nil-safe, charges nothing, and two span-recorded runs of the same
	// workload produce byte-identical span files.
	Spans *span.Recorder

	// Kernel-object identity counters: every PD, EC and semaphore gets
	// a small dense id and every portal a uid, so trace events can name
	// objects without carrying pointers.
	nextPDID  int
	nextECID  int
	nextSemID int
	nextPtUID uint64
}

type gsiRoute struct {
	ec     *EC
	vector uint8
}

// maxGSI bounds the global system interrupt space (one x86 vector
// byte). DestroyPD walks this range to tear down routes into a dead
// domain without iterating the route maps.
const maxGSI = 256

// New creates a kernel on the platform, claims the hypervisor's own
// resources, and creates the root PD holding capabilities for
// everything else (§6).
func New(plat *hw.Platform, cfg Config) *Kernel {
	k := &Kernel{
		Plat:    plat,
		Cfg:     cfg,
		gsiSem:  make(map[int]*Semaphore),
		gsiVCPU: make(map[int]*gsiRoute),
		nextTag: 1,
	}
	for range plat.CPUs {
		k.runq = append(k.runq, newRunqueue())
		k.current = append(k.current, nil)
	}

	// The hypervisor claims its own memory (the first 1 MiB of host
	// RAM in this model) and the security-critical devices (interrupt
	// controllers, IOMMU); everything else goes to the root PD.
	const hvReserved = 1 << 20
	if plat.IOMMU != nil {
		plat.IOMMU.BlockRange(0, hvReserved)
	}

	root := &PD{
		Name: "root",
		ID:   k.allocPDID(),
		Caps: cap.NewSpace("root"),
		Mem:  cap.NewMemSpace("root"),
		IO:   cap.NewIOSpace("root"),
		Tag:  0,
	}
	rootPages := int((plat.Mem.Size() - hvReserved) / hw.PageSize)
	if err := root.Mem.InsertRoot(hvReserved/hw.PageSize, hvReserved/hw.PageSize, rootPages, cap.RightRead|cap.RightWrite|cap.RightExec); err != nil {
		// invariant: boot-time construction of the root PD over an empty
		// memory space cannot overlap; a failure here means the platform
		// geometry itself is broken, before any user domain exists.
		panic(fmt.Sprintf("hypervisor: root memory: %v", err))
	}
	root.IO.InsertRoot(0, 0xffff)
	// Device MMIO windows are delegatable resources too (direct device
	// assignment maps them into a VM's guest-physical space).
	for _, w := range []struct {
		base hw.PhysAddr
		size uint64
	}{
		{hw.AHCIMMIOBase, hw.AHCIMMIOSize},
		{hw.NICMMIOBase, hw.NICMMIOSize},
	} {
		if err := root.Mem.InsertRoot(uint32(w.base>>12), uint64(w.base)>>12, int(w.size/hw.PageSize), cap.RightRead|cap.RightWrite); err != nil {
			// invariant: the MMIO windows are fixed platform constants
			// disjoint from RAM; still boot time, no user domains yet.
			panic(fmt.Sprintf("hypervisor: device windows: %v", err))
		}
	}
	k.Root = root
	k.pds = append(k.pds, root)

	plat.InterruptHook = func() { /* polled by the run loop */ }

	// Initialize the host PIC the way the kernel's platform driver
	// would: vectors 0x20/0x28, everything unmasked.
	pic := plat.PIC
	pic.PortWrite(0x20, 1, 0x11)
	pic.PortWrite(0x21, 1, 0x20)
	pic.PortWrite(0x21, 1, 0x04)
	pic.PortWrite(0x21, 1, 0x01)
	pic.PortWrite(0xa0, 1, 0x11)
	pic.PortWrite(0xa1, 1, 0x28)
	pic.PortWrite(0xa1, 1, 0x02)
	pic.PortWrite(0xa1, 1, 0x01)
	pic.PortWrite(0x21, 1, 0x00)
	pic.PortWrite(0xa1, 1, 0x00)

	return k
}

// allocPDID/allocECID/allocSemID/allocPtUID hand out trace identities.
func (k *Kernel) allocPDID() int     { id := k.nextPDID; k.nextPDID++; return id }
func (k *Kernel) allocECID() int     { id := k.nextECID; k.nextECID++; return id }
func (k *Kernel) allocSemID() int    { id := k.nextSemID; k.nextSemID++; return id }
func (k *Kernel) allocPtUID() uint64 { id := k.nextPtUID; k.nextPtUID++; return id }

// AttachTracer enables event tracing and metrics with one ring of the
// given capacity per CPU, and returns the tracer for later rendering.
// The recorded metadata carries the cost-model constants the
// attribution pass needs to decompose measured durations.
//
// nocharge: observability plumbing; attaching the tracer models no
// hardware work and must not move the clocks (zero-perturbation rule).
func (k *Kernel) AttachTracer(capacity int) *trace.Tracer {
	cost := k.Plat.Cost
	meta := trace.Meta{
		Model:            cost.Model.String(),
		FreqMHz:          cost.FreqMHz,
		VPID:             k.tagged(),
		SyscallEntryExit: uint64(cost.SyscallEntryExit),
		VMTransit:        uint64(cost.VMTransitCost(k.tagged())),
		VMRead:           uint64(cost.VMRead),
		TLBRefill:        uint64(cost.TLBRefill),
		PageWalkLevel:    uint64(cost.PageWalkLevel),
		CacheLineAccess:  uint64(cost.CacheLineAccess),
		ExitReasons:      x86.ExitReasonNames(),
		KindNames:        trace.KindNames(),
	}
	k.Tracer = trace.New(meta, len(k.Plat.CPUs), capacity)
	return k.Tracer
}

// AttachSpans enables request-span recording with one ring of the
// given capacity per CPU, and returns the recorder for later encoding.
// Like AttachTracer, attachment is retrofit-able at any point; only
// requests originating after it are recorded.
//
// nocharge: observability plumbing; attaching the recorder models no
// hardware work and must not move the clocks (zero-perturbation rule).
func (k *Kernel) AttachSpans(capacity int) *span.Recorder {
	cost := k.Plat.Cost
	meta := span.Meta{
		Model:   cost.Model.String(),
		FreqMHz: cost.FreqMHz,
	}
	k.Spans = span.New(meta, len(k.Plat.CPUs), capacity)
	return k.Spans
}

// CurCPU returns the CPU whose run loop is active, for trace emission
// from user-level components (VMM, servers) running on it.
func (k *Kernel) CurCPU() int { return k.cpu }

// clock returns the active CPU's clock.
func (k *Kernel) clock() *hw.Clock { return &k.Plat.CPUs[k.cpu].Clock }

// charge accounts kernel work on the active CPU.
func (k *Kernel) charge(n hw.Cycles) { k.clock().Charge(n) }

// Now returns the active CPU's time.
func (k *Kernel) Now() hw.Cycles { return k.clock().Now() }

// ChargeUser accounts user-level compute time (VMM emulation, device
// model updates, server work) on the active CPU. In a real system this
// time passes implicitly while the component executes; in the
// simulation the components are Go code and declare their modeled cost.
func (k *Kernel) ChargeUser(n hw.Cycles) { k.charge(n) }

// StartSchedulingTimer programs the host PIT as the microhypervisor's
// preemption timer (§4: "the microhypervisor drives the interrupt
// controllers of the platform and a scheduling timer"). Each tick that
// lands while a guest runs costs an external-interrupt VM exit — the
// "Hardware Interrupts" row of Table 2.
//
// nocharge: boot-time configuration, before measured windows open; the
// recurring cost appears as the per-tick VM exits it provokes.
func (k *Kernel) StartSchedulingTimer(hz int) {
	reload := hw.PITInputHz / hz
	if reload > 0xffff {
		reload = 0xffff
	}
	pit := k.Plat.PIT
	pit.PortWrite(0x43, 1, 0x34)
	pit.PortWrite(0x40, 1, uint32(reload&0xff))
	pit.PortWrite(0x40, 1, uint32(reload>>8))
}

// tagged reports whether VM transitions keep TLB contents (VPID).
func (k *Kernel) tagged() bool { return k.Cfg.UseVPID && k.Plat.Cost.HasVPID }

// Errors of the hypercall layer.
var (
	ErrVMNoHypercalls = errors.New("hypervisor: VMs cannot perform hypercalls")
	ErrBadCPU         = errors.New("hypervisor: invalid CPU")
	ErrBadGSI         = errors.New("hypervisor: interrupt line out of range")
	ErrDead           = errors.New("hypervisor: object destroyed")
)

// syscallEnter charges the user→kernel transition of a hypercall and
// enforces that virtual machines never reach the hypercall layer.
func (k *Kernel) syscallEnter(caller *PD) error {
	if caller.IsVM {
		return ErrVMNoHypercalls
	}
	k.Stats.Hypercalls++
	k.Tracer.Emit(k.cpu, k.Now(), trace.KindHypercall, uint64(caller.ID), 0, 0, 0)
	caller.stats.hypercall(k.Now())
	k.charge(k.Plat.Cost.SyscallEntryExit)
	return nil
}

// CreatePD creates a protection domain. The creator receives the PD
// capability at sel in its capability space with full rights; by
// delegating it (with reduced rights) the creator implements its
// resource policy (§6).
func (k *Kernel) CreatePD(caller *PD, sel cap.Selector, name string, isVM bool) (*PD, error) {
	if err := k.syscallEnter(caller); err != nil {
		return nil, err
	}
	pd := &PD{
		Name: name,
		ID:   k.allocPDID(),
		Caps: cap.NewSpace(name),
		Mem:  cap.NewMemSpace(name),
		IO:   cap.NewIOSpace(name),
		IsVM: isVM,
		Tag:  k.nextTag,
	}
	k.nextTag++
	if err := caller.Caps.Insert(sel, pd, cap.RightsAll); err != nil {
		return nil, err
	}
	// caphold: kernel PD registry for domain accounting; DestroyPD marks entries dead; teardown=DestroyPD
	k.pds = append(k.pds, pd)
	if k.Stat != nil {
		k.attachStatPD(pd)
	}
	return pd, nil
}

// CreateEC creates an execution context in pd on the given CPU. For
// thread ECs, run is the body invoked when the EC is dispatched after a
// wakeup. For vCPUs, use CreateVCPU.
func (k *Kernel) CreateEC(caller *PD, sel cap.Selector, pd *PD, cpu int, name string, run func()) (*EC, error) {
	if err := k.syscallEnter(caller); err != nil {
		return nil, err
	}
	if _, err := caller.Caps.LookupObj(pd, cap.ObjPD, cap.RightCtrl); err != nil {
		return nil, err
	}
	if cpu < 0 || cpu >= len(k.Plat.CPUs) {
		return nil, ErrBadCPU
	}
	ec := &EC{Name: name, ID: k.allocECID(), PD: pd, CPU: cpu, Kind: ECThread, UTCB: &UTCB{}, Run: run}
	if err := caller.Caps.Insert(sel, ec, cap.RightsAll); err != nil {
		return nil, err
	}
	// caphold: kernel EC registry, walked to kill a domain's ECs; teardown=DestroyPD
	k.ecs = append(k.ecs, ec)
	if k.Stat != nil {
		k.attachStatEC(ec)
	}
	return ec, nil
}

// CreateVCPU creates a virtual-CPU execution context in a VM domain.
// The paging mode selects EPT or vTLB memory virtualization. index is
// the virtual CPU number; its VM-exit portals live at
// PortalSelectorFor(reason, index).
func (k *Kernel) CreateVCPU(caller *PD, sel cap.Selector, vm *PD, cpu int, name string, mode PagingMode, index int) (*EC, error) {
	if err := k.syscallEnter(caller); err != nil {
		return nil, err
	}
	if _, err := caller.Caps.LookupObj(vm, cap.ObjPD, cap.RightCtrl); err != nil {
		return nil, err
	}
	if cpu < 0 || cpu >= len(k.Plat.CPUs) {
		return nil, ErrBadCPU
	}
	if !vm.IsVM {
		return nil, fmt.Errorf("hypervisor: %s is not a VM domain", vm.Name)
	}
	ec := &EC{Name: name, ID: k.allocECID(), PD: vm, CPU: cpu, Kind: ECVCPU, UTCB: &UTCB{}}
	v := &VCPU{Index: index}
	v.State.Reset()
	ic := x86.FullVirt()
	if mode == ModeVTLB {
		ic = x86.VTLBVirt()
		v.Shadow = NewShadowPT()
	}
	var env GuestEnv
	if mode == ModeVTLB {
		env = newVTLBEnv(k, ec)
	} else {
		env = newEPTEnv(k, ec)
	}
	v.Env = env
	v.Interp = x86.NewInterp(env, &v.State, ic)
	if !k.Cfg.DisableDecodeCache {
		v.Interp.Cache = x86.NewDecodeCache()
	}
	v.Interp.TSC = func() uint64 { return uint64(k.Plat.CPUs[cpu].Clock.Now()) }
	ec.VCPU = v
	if k.Prof != nil {
		k.attachProfHook(ec)
	}
	if err := caller.Caps.Insert(sel, ec, cap.RightsAll); err != nil {
		return nil, err
	}
	// caphold: kernel EC registry, walked to kill a domain's ECs; teardown=DestroyPD
	k.ecs = append(k.ecs, ec)
	if k.Stat != nil {
		k.attachStatEC(ec)
	}
	return ec, nil
}

// CreateSC creates a scheduling context attached to ec and enqueues it.
func (k *Kernel) CreateSC(caller *PD, sel cap.Selector, ec *EC, priority int, quantum hw.Cycles) (*SC, error) {
	if err := k.syscallEnter(caller); err != nil {
		return nil, err
	}
	if _, err := caller.Caps.LookupObj(ec, cap.ObjEC, cap.RightCtrl); err != nil {
		return nil, err
	}
	sc := &SC{Name: ec.Name, Priority: priority, Quantum: quantum, Left: quantum, EC: ec}
	if err := caller.Caps.Insert(sel, sc, cap.RightsAll); err != nil {
		return nil, err
	}
	ec.SC = sc
	if ec.Kind == ECVCPU {
		ec.runnable = true
		k.enqueue(sc)
	}
	return sc, nil
}

// CreatePortal creates a portal into caller's domain. For VM-exit
// portals the VMM later delegates the capability into the VM's
// capability space at the selector matching the exit reason (§5.2).
func (k *Kernel) CreatePortal(caller *PD, sel cap.Selector, name string, id uint64, mtd MTD, handle func(msg *UTCB) error) (*Portal, error) {
	if err := k.syscallEnter(caller); err != nil {
		return nil, err
	}
	pt := &Portal{Name: name, PD: caller, ID: id, UID: k.allocPtUID(), MTD: mtd, Handle: handle}
	if err := caller.Caps.Insert(sel, pt, cap.RightsAll); err != nil {
		return nil, err
	}
	return pt, nil
}

// CreateSemaphore creates a counting semaphore.
func (k *Kernel) CreateSemaphore(caller *PD, sel cap.Selector, name string, initial int64) (*Semaphore, error) {
	if err := k.syscallEnter(caller); err != nil {
		return nil, err
	}
	sm := &Semaphore{Name: name, ID: k.allocSemID(), Counter: initial, Owner: caller}
	if err := caller.Caps.Insert(sel, sm, cap.RightsAll); err != nil {
		return nil, err
	}
	return sm, nil
}

// DelegateCap transfers a capability from caller's space (§6). This is
// the hypercall form; during IPC, delegation can also ride in the
// message transfer descriptor.
func (k *Kernel) DelegateCap(caller *PD, src cap.Selector, dst *PD, dstSel cap.Selector, mask cap.Rights) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	if _, err := caller.Caps.LookupObj(dst, cap.ObjPD, cap.RightCtrl); err != nil {
		return err
	}
	return caller.Caps.Delegate(src, dst.Caps, dstSel, mask)
}

// RevokeCap recursively withdraws delegations of caller's capability.
func (k *Kernel) RevokeCap(caller *PD, sel cap.Selector, self bool) (int, error) {
	if err := k.syscallEnter(caller); err != nil {
		return 0, err
	}
	return caller.Caps.Revoke(sel, self)
}

// DelegateMem transfers memory pages between domains.
func (k *Kernel) DelegateMem(caller *PD, srcPage uint32, dst *PD, dstPage uint32, npages int, mask cap.Rights) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	if _, err := caller.Caps.LookupObj(dst, cap.ObjPD, cap.RightCtrl); err != nil {
		return err
	}
	return caller.Mem.Delegate(srcPage, dst.Mem, dstPage, npages, mask)
}

// RevokeMem withdraws memory delegations.
func (k *Kernel) RevokeMem(caller *PD, page uint32, npages int, self bool) (int, error) {
	if err := k.syscallEnter(caller); err != nil {
		return 0, err
	}
	n := caller.Mem.Revoke(page, npages, self)
	// Any cached host translations for the affected domains are stale.
	k.Plat.CPUs[k.cpu].TLB.FlushAll()
	return n, nil
}

// DelegateIO transfers I/O port access.
func (k *Kernel) DelegateIO(caller *PD, dst *PD, lo, hi uint16) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	if _, err := caller.Caps.LookupObj(dst, cap.ObjPD, cap.RightCtrl); err != nil {
		return err
	}
	return caller.IO.Delegate(dst.IO, lo, hi)
}

// AssignGSI routes a hardware interrupt line to a semaphore: each
// occurrence performs an up operation, waking the driver EC blocked on
// it (§5: "the hypervisor uses semaphores to signal the occurrence of
// hardware interrupts to user applications").
func (k *Kernel) AssignGSI(caller *PD, line int, sm *Semaphore) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	if _, err := caller.Caps.LookupObj(sm, cap.ObjSemaphore, cap.RightCtrl); err != nil {
		return err
	}
	if line < 0 || line >= maxGSI {
		return ErrBadGSI
	}
	if !caller.IO.Allowed(uint16(line)) && caller != k.Root {
		return cap.ErrNoRights
	}
	// caphold: interrupt route into a driver domain; teardown=DestroyPD
	k.gsiSem[line] = sm
	delete(k.gsiVCPU, line)
	return nil
}

// AssignGSIToVM routes a hardware interrupt line directly to a vCPU for
// device passthrough: the kernel injects the given vector instead of
// waking a driver (§8.2 "Direct" configuration). The IOMMU's interrupt
// remapping must permit the device to use the vector.
func (k *Kernel) AssignGSIToVM(caller *PD, line int, ec *EC, vector uint8) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	if _, err := caller.Caps.LookupObj(ec, cap.ObjEC, cap.RightCtrl); err != nil {
		return err
	}
	if line < 0 || line >= maxGSI {
		return ErrBadGSI
	}
	if ec.Kind != ECVCPU {
		return fmt.Errorf("hypervisor: GSI target %s is not a vCPU", ec.Name)
	}
	// caphold: interrupt route into a guest vCPU; teardown=DestroyPD
	k.gsiVCPU[line] = &gsiRoute{ec: ec, vector: vector}
	delete(k.gsiSem, line)
	return nil
}

// Recall forces a virtual CPU to take a VM exit so the VMM can inject a
// pending interrupt in a timely manner (§7.5).
func (k *Kernel) Recall(caller *PD, ec *EC) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	if _, err := caller.Caps.LookupObj(ec, cap.ObjEC, cap.RightCtrl); err != nil {
		return err
	}
	if ec.Kind != ECVCPU {
		return fmt.Errorf("hypervisor: recall target %s is not a vCPU", ec.Name)
	}
	k.Stats.Recalls++
	k.Tracer.Emit(k.cpu, k.Now(), trace.KindRecall, uint64(ec.ID), 0, 0, 0)
	ec.VCPU.RecallPending = true
	k.wakeVCPU(ec)
	return nil
}

// InjectIRQ is the VMM-side reply path for interrupt injection outside
// a VM exit: it queues the vector and recalls the vCPU if it is
// currently running with the window closed.
func (k *Kernel) InjectIRQ(caller *PD, ec *EC, vector uint8) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	if _, err := caller.Caps.LookupObj(ec, cap.ObjEC, cap.RightCtrl); err != nil {
		return err
	}
	v := ec.VCPU
	v.PendingVector = vector
	v.PendingValid = true
	k.wakeVCPU(ec)
	return nil
}

// wakeVCPU makes a blocked (halted) vCPU runnable again.
func (k *Kernel) wakeVCPU(ec *EC) {
	if ec.SC != nil && !ec.runnable && !ec.dead {
		ec.runnable = true
		k.enqueue(ec.SC)
	}
}

// DestroyPD tears a protection domain down: its capability space is
// destroyed (revoking everything it delegated), its memory revoked, and
// its ECs killed. The creator uses this to reclaim a crashed VMM or VM.
func (k *Kernel) DestroyPD(caller *PD, pd *PD) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	if _, err := caller.Caps.LookupObj(pd, cap.ObjPD, cap.RightCtrl); err != nil {
		return err
	}
	pd.dead = true
	errs := pd.Caps.Destroy()
	pd.Mem.Destroy()
	for _, ec := range k.ecs {
		if ec.PD == pd {
			ec.dead = true
			ec.runnable = false
		}
	}
	// Tear down interrupt routes into the dead domain: semaphore routes
	// it created and vCPU routes targeting its ECs. The bounded line walk
	// keeps this deterministic (no map iteration).
	for line := 0; line < maxGSI; line++ {
		if sm := k.gsiSem[line]; sm != nil && sm.Owner == pd {
			delete(k.gsiSem, line)
		}
		if rt := k.gsiVCPU[line]; rt != nil && rt.ec.PD == pd {
			delete(k.gsiVCPU, line)
		}
	}
	return errs
}

// SemUp performs the semaphore up operation (hypercall form).
func (k *Kernel) SemUp(caller *PD, sm *Semaphore) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	if _, err := caller.Caps.LookupObj(sm, cap.ObjSemaphore, cap.RightCall); err != nil {
		return err
	}
	k.semUp(sm)
	return nil
}

// semUp is the kernel-internal up operation, also used for interrupt
// delivery.
func (k *Kernel) semUp(sm *Semaphore) {
	sm.Ups++
	woken := uint64(0)
	if len(sm.waiters) > 0 {
		ec := sm.waiters[0]
		sm.waiters = sm.waiters[1:]
		ec.waitingOn = nil
		if !ec.dead {
			ec.runnable = true
			woken = 1
			if ec.SC != nil {
				k.enqueue(ec.SC)
				cur := k.current[k.cpu]
				if cur == nil || cur.SC == nil || ec.SC.Priority > cur.SC.Priority {
					k.preempt = true
					k.Stats.Preemptions++
				}
			}
		}
	} else {
		sm.Counter++
	}
	k.Tracer.Emit(k.cpu, k.Now(), trace.KindSemUp, uint64(sm.ID), woken, 0, 0)
}

// SemDown blocks the calling EC until the semaphore is available. In
// this event-driven model, thread ECs call SemDownAsync to register and
// return; their Run body is re-invoked after the wakeup.
func (k *Kernel) SemDownAsync(caller *PD, ec *EC, sm *Semaphore) bool {
	k.Stats.Hypercalls++
	k.charge(k.Plat.Cost.SyscallEntryExit)
	sm.Downs++
	if sm.Counter > 0 {
		sm.Counter--
		k.Tracer.Emit(k.cpu, k.Now(), trace.KindSemDown, uint64(sm.ID), 1, 0, 0)
		return true // immediately acquired; EC keeps running
	}
	ec.runnable = false
	ec.waitingOn = sm
	sm.waiters = append(sm.waiters, ec)
	k.Tracer.Emit(k.cpu, k.Now(), trace.KindSemDown, uint64(sm.ID), 0, 0, 0)
	return false
}
