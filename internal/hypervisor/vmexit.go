package hypervisor

import (
	"fmt"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/trace"
	"nova/internal/x86"
)

// PortalSelector returns the conventional capability-space selector at
// which a VM's portal for the given exit reason is installed. During VM
// creation the VMM delegates one portal capability per event type into
// the VM's capability space (§5.2).
func PortalSelector(r x86.ExitReason) cap.Selector { return cap.Selector(r) }

// PortalSelectorFor is the multiprocessor form: every virtual CPU has
// its own set of VM-exit portals and a dedicated handler (§7.5).
func PortalSelectorFor(r x86.ExitReason, vcpu int) cap.Selector {
	return cap.Selector(vcpu)*32 + cap.Selector(r)
}

// dispatchExit delivers a VM exit to the handler its portal designates.
// vTLB-maintenance events are handled inside the microhypervisor; all
// other events travel to the user-level VMM as an IPC message carrying
// the MTD-selected guest state (§5.2, §8.4).
func (k *Kernel) dispatchExit(ec *EC, exit *x86.VMExit) error {
	if exit.Reason < 0 || int(exit.Reason) >= x86.NumExitReasons {
		// The exit record crosses the guest/host boundary; a reason
		// outside the architectural set means corrupted guest state.
		return k.killVM(ec, fmt.Sprintf("malformed VM exit reason %d", exit.Reason))
	}
	v := ec.VCPU
	v.Exits[exit.Reason]++
	k.Stats.VMExits[exit.Reason]++
	t0 := k.Now()
	k.Tracer.Emit(k.cpu, t0, trace.KindVMExit, uint64(exit.Reason), uint64(v.State.EIP), uint64(ec.ID), 0)
	k.Tracer.CountExit(exit.Reason)
	cost := k.Plat.Cost

	// Capture the faulting instruction's linear address before the
	// VMM's reply can rewrite EIP: the profiler attributes the whole
	// exit window to the instruction that took the exit.
	var profRIP uint32
	var profDef32 bool
	if k.Prof != nil {
		profRIP = v.State.Seg[x86.CS].Base + v.State.EIP
		profDef32 = v.State.Seg[x86.CS].Def32
	}

	// World switch guest -> host (+ the TLB flush if untagged; the
	// refill cost then emerges from subsequent misses).
	k.charge(cost.VMTransitCost(k.tagged()))
	v.Env.FlushOnWorldSwitch()

	// vTLB-related intercepts never leave the kernel (§8.4: "all
	// virtualization events, except for those related to the virtual
	// TLB, require a message to be sent to the VMM").
	if v.Shadow != nil && k.handleVTLBExit(ec, exit) {
		v.Env.FlushOnWorldSwitch()
		k.charge(cost.VMTransitCost(k.tagged()) / 8) // resume tail
		end := k.Now()
		k.Tracer.Emit(k.cpu, end, trace.KindVMResume, uint64(exit.Reason), uint64(end-t0), uint64(ec.ID), 0)
		k.Tracer.ObserveExit(uint64(end - t0))
		v.stats.exit(exit.Reason, end, uint64(end-t0))
		k.profExit(ec, profRIP, profDef32, end-t0)
		return nil
	}

	c, err := ec.PD.Caps.LookupTyped(PortalSelectorFor(exit.Reason, v.Index), cap.ObjPortal, cap.RightCall)
	if err != nil {
		return k.killVM(ec, fmt.Sprintf("no portal for %v (vcpu %d): %v", exit.Reason, v.Index, err))
	}
	pt := c.Obj.(*Portal)
	if pt.dead || pt.PD.dead {
		return k.killVM(ec, fmt.Sprintf("portal for %v leads to dead domain", exit.Reason))
	}

	mtd := pt.MTD
	if k.Cfg.DisableMTDOpt {
		mtd = MTDAll
	}
	// Reading the selected state out of the VMCS (§5.2: the MTD
	// "minimizes the amount of state that must be read from the VMCS").
	k.charge(hw.Cycles(mtd.FieldCount()) * cost.VMRead)

	utcb := ec.UTCB
	utcb.MTD = mtd
	utcb.Exit = *exit
	utcb.State = x86.CPUState{}
	CopyState(&utcb.State, &v.State, mtd)
	utcb.InjectValid = false
	utcb.WindowRequest = false

	if err := k.portalCall(ec.PD, pt, utcb, mtd.WordCount()); err != nil {
		return k.killVM(ec, fmt.Sprintf("VMM handler for %v failed: %v", exit.Reason, err))
	}

	// Install the reply state (VMWRITEs) and resume.
	k.charge(hw.Cycles(mtd.FieldCount()) * cost.VMRead)
	eipBefore := v.State.EIP
	CopyState(&v.State, &utcb.State, mtd)
	if v.State.EIP != eipBefore {
		// The VMM skipped or emulated the exiting instruction, so any
		// STI/MOV-SS interrupt shadow has architecturally expired.
		v.State.IntShadow = false
	}
	if utcb.InjectValid {
		v.PendingValid = true
		v.PendingVector = utcb.InjectVector
	}
	if utcb.WindowRequest {
		v.WindowWanted = true
	}
	v.Env.FlushOnWorldSwitch()
	end := k.Now()
	k.Tracer.Emit(k.cpu, end, trace.KindVMResume, uint64(exit.Reason), uint64(end-t0), uint64(ec.ID), 0)
	k.Tracer.ObserveExit(uint64(end - t0))
	v.stats.exit(exit.Reason, end, uint64(end-t0))
	k.profExit(ec, profRIP, profDef32, end-t0)
	return nil
}

// handleVTLBExit processes CR accesses and INVLPG for shadow-paging
// VMs entirely inside the kernel (§5.3). It reports whether the event
// was consumed.
func (k *Kernel) handleVTLBExit(ec *EC, exit *x86.VMExit) bool {
	v := ec.VCPU
	cost := k.Plat.Cost
	tlb := k.Plat.CPUs[ec.CPU].TLB
	switch exit.Reason {
	case x86.ExitCRAccess:
		k.charge(6 * cost.VMRead)
		if exit.CRWrite {
			switch exit.CR {
			case 0:
				flush := (v.State.CR0^exit.CRVal)&(x86.CR0PG|x86.CR0PE|x86.CR0WP) != 0
				v.State.CR0 = exit.CRVal
				if flush {
					v.Shadow.Flush()
					tlb.FlushTag(ec.PD.Tag)
					k.Stats.VTLBFlushes++
					k.Tracer.Emit(k.cpu, k.Now(), trace.KindVTLBFlush, 0, uint64(ec.ID), 0, 0)
					v.stats.flush(k.Now())
				}
			case 3:
				v.State.CR3 = exit.CRVal
				v.Shadow.Flush()
				tlb.FlushTag(ec.PD.Tag)
				k.Stats.VTLBFlushes++
				k.Tracer.Emit(k.cpu, k.Now(), trace.KindVTLBFlush, 3, uint64(ec.ID), 0, 0)
				v.stats.flush(k.Now())
				k.charge(hw.Cycles(v.Shadow.Len()) / 4)
			case 4:
				v.State.CR4 = exit.CRVal
				v.Shadow.Flush()
				tlb.FlushTag(ec.PD.Tag)
				k.Stats.VTLBFlushes++
				k.Tracer.Emit(k.cpu, k.Now(), trace.KindVTLBFlush, 4, uint64(ec.ID), 0, 0)
				v.stats.flush(k.Now())
			case 2:
				v.State.CR2 = exit.CRVal
			}
		} else {
			var val uint32
			switch exit.CR {
			case 0:
				val = v.State.CR0
			case 2:
				val = v.State.CR2
			case 3:
				val = v.State.CR3
			case 4:
				val = v.State.CR4
			}
			// The GPR operand decodes from a 3-bit modrm field; mask so
			// a malformed exit record cannot index past the register file.
			v.State.GPR[exit.CRGPR&7] = val
		}
		v.State.EIP += uint32(exit.InstLen)
		return true
	case x86.ExitINVLPG:
		k.charge(6 * cost.VMRead)
		v.Shadow.Invalidate(exit.Linear)
		tlb.FlushVA(ec.PD.Tag, exit.Linear)
		k.Tracer.Emit(k.cpu, k.Now(), trace.KindVTLBFlush, 0xff, uint64(ec.ID), uint64(exit.Linear), 0)
		v.State.EIP += uint32(exit.InstLen)
		return true
	default:
		// Every other exit reason travels to the user-level VMM (§8.4).
		return false
	}
}

// killVM terminates a virtual machine after an unrecoverable condition.
// Isolation holds: only this VM (and its VMM association) is affected.
func (k *Kernel) killVM(ec *EC, reason string) error {
	ec.dead = true
	ec.runnable = false
	k.Killed = append(k.Killed, fmt.Sprintf("%s: %s", ec.Name, reason))
	return fmt.Errorf("hypervisor: VM %s killed: %s", ec.Name, reason)
}

// vectorToLine maps a host interrupt vector back to its IRQ line under
// the kernel's PIC programming (master base 0x20, slave base 0x28).
func vectorToLine(vec uint8) int {
	switch {
	case vec >= 0x20 && vec < 0x28:
		return int(vec - 0x20)
	case vec >= 0x28 && vec < 0x30:
		return int(vec-0x28) + 8
	}
	return -1
}

// handleHostInterrupts drains pending host interrupts. If they arrive
// while a guest runs, each one forces a VM exit first (§8.2 "each
// hardware interrupt causes a VM exit"). Interrupts are then routed per
// AssignGSI: a semaphore-up for driver ECs, or direct injection for
// passthrough VMs.
func (k *Kernel) handleHostInterrupts(guest *EC) {
	for k.Plat.PIC.HasPending() {
		vec, ok := k.Plat.PIC.Acknowledge()
		if !ok {
			return
		}
		k.Stats.HostInterrupts++
		cost := k.Plat.Cost
		t0 := k.Now()
		preempted := ^uint64(0) // the kernel/idle loop was interrupted
		var profRIP uint32
		var profDef32 bool
		if guest != nil {
			preempted = uint64(guest.ID)
			if k.Prof != nil {
				st := &guest.VCPU.State
				profRIP = st.Seg[x86.CS].Base + st.EIP
				profDef32 = st.Seg[x86.CS].Def32
			}
			guest.VCPU.Exits[x86.ExitExternalInterrupt]++
			k.Stats.VMExits[x86.ExitExternalInterrupt]++
			// The exit record carries the host vector and the preempted
			// vCPU's identity, so external-interrupt exits are
			// distinguishable from each other and from synchronous ones.
			k.Tracer.Emit(k.cpu, t0, trace.KindVMExit, uint64(x86.ExitExternalInterrupt), uint64(guest.VCPU.State.EIP), uint64(guest.ID), uint64(vec))
			k.Tracer.CountExit(x86.ExitExternalInterrupt)
			k.charge(cost.VMTransitCost(k.tagged()))
			guest.VCPU.Env.FlushOnWorldSwitch()
		}
		// Kernel interrupt path: vector dispatch, EOI at the PIC.
		k.charge(cost.SyscallEntryExit / 2)
		line := vectorToLine(vec)
		k.Tracer.Emit(k.cpu, k.Now(), trace.KindHostIRQ, uint64(vec), uint64(int64(line)), preempted, 0)
		if line >= 8 {
			k.Plat.PIC.PortWrite(0xa0, 1, 0x20)
		}
		k.Plat.PIC.PortWrite(0x20, 1, 0x20)
		if line >= 0 {
			if r, ok := k.gsiVCPU[line]; ok && !r.ec.dead {
				v := r.ec.VCPU
				v.PendingValid = true
				v.PendingVector = r.vector
				k.wakeVCPU(r.ec)
			} else if sm, ok := k.gsiSem[line]; ok {
				k.semUp(sm)
			}
		}
		if guest != nil {
			end := k.Now()
			k.Tracer.Emit(k.cpu, end, trace.KindVMResume, uint64(x86.ExitExternalInterrupt), uint64(end-t0), uint64(guest.ID), 0)
			k.Tracer.ObserveExit(uint64(end - t0))
			guest.VCPU.stats.exit(x86.ExitExternalInterrupt, end, uint64(end-t0))
			k.profExit(guest, profRIP, profDef32, end-t0)
		}
	}
}
