// Package hypervisor implements the NOVA microhypervisor (§5): the five
// kernel object types (protection domains, execution contexts,
// scheduling contexts, portals, semaphores), the capability-based
// hypercall interface, portal IPC with scheduling-context donation and
// reply capabilities, per-CPU priority round-robin scheduling, host
// memory management with hardware nested paging (EPT) or the software
// virtual-TLB algorithm (§5.3), VM-exit dispatch through per-event
// portals with message transfer descriptors, and semaphore-based
// interrupt delivery.
//
// It is the only component of this repository that plays the "ring 0,
// host mode" role; everything in internal/vmm and internal/services is
// deprivileged user-level code that can only enter the kernel through
// the hypercall methods.
package hypervisor

import (
	"nova/internal/cap"
	"nova/internal/x86"
)

// MTD is a message transfer descriptor: a bitmask selecting which groups
// of guest state the microhypervisor transfers through a portal on a VM
// exit. Configuring each event's portal with the minimal MTD is the
// §5.2 performance optimization that avoids reading the whole VMCS.
type MTD uint32

// MTD state groups, with the approximate number of VMCS fields each
// group costs to read/write.
const (
	MTDGPR    MTD = 1 << iota // general-purpose registers
	MTDEIP                    // instruction pointer + length
	MTDEFLAGS                 // flags
	MTDESP                    // stack pointer
	MTDSeg                    // segment registers
	MTDCR                     // control registers
	MTDDT                     // GDTR/IDTR
	MTDQual                   // exit qualification
	MTDInj                    // event injection
	MTDSTA                    // interruptibility state
	MTDTSC                    // time-stamp counter

	// MTDAll transfers everything (the unoptimized configuration the
	// MTD ablation benchmark compares against).
	MTDAll MTD = MTDGPR | MTDEIP | MTDEFLAGS | MTDESP | MTDSeg | MTDCR |
		MTDDT | MTDQual | MTDInj | MTDSTA | MTDTSC
)

// fieldCounts approximates how many VMCS fields each group comprises.
// Kept as an ordered slice, not a map: FieldCount runs on every VM exit
// and sim-critical code must not iterate maps (nova-vet: determinism).
var fieldCounts = []struct {
	bit MTD
	n   int
}{
	{MTDGPR, 8}, {MTDEIP, 2}, {MTDEFLAGS, 1}, {MTDESP, 1}, {MTDSeg, 12},
	{MTDCR, 4}, {MTDDT, 4}, {MTDQual, 2}, {MTDInj, 2}, {MTDSTA, 1}, {MTDTSC, 1},
}

// FieldCount returns the number of VMCS fields selected by the MTD —
// the number of VMREAD/VMWRITE operations the transfer costs.
func (m MTD) FieldCount() int {
	n := 0
	for _, fc := range fieldCounts {
		if m&fc.bit != 0 {
			n += fc.n
		}
	}
	return n
}

// DelegateItem is a typed message item requesting a memory delegation
// during IPC (§6: "the sender specifies in the message transfer
// descriptor one or more regions of its memory space ... and can
// optionally reduce the access permissions during the transfer").
type DelegateItem struct {
	SrcPage uint32 // page in the sender's memory space
	DstPage uint32 // requested page in the receiver's space
	NPages  int
	Rights  cap.Rights // mask applied during transfer
}

// UTCB is the user thread control block: the per-EC message buffer
// through which IPC payloads and VM-exit state travel. Only the groups
// selected by MTD are valid in State.
type UTCB struct {
	// Words carries protocol-specific arguments for client/server IPC.
	Words []uint64

	// Delegations are processed by the kernel during the portal call:
	// each item lands in the receiver's memory space if (and only if)
	// it falls inside the window the receiver declared on its portal.
	// Accepted items are recorded in Delegated.
	Delegations []DelegateItem
	Delegated   int

	// VM-exit messages.
	MTD   MTD
	State x86.CPUState
	Exit  x86.VMExit

	// Injection request from the VMM back to the vCPU (MTDInj).
	InjectVector  uint8
	InjectValid   bool
	WindowRequest bool // VMM asks for an interrupt-window exit
}

// CopyState copies the MTD-selected groups from src into dst. This is
// what the microhypervisor does on both directions of a VM-exit portal
// traversal.
func CopyState(dst, src *x86.CPUState, m MTD) {
	if m&MTDGPR != 0 {
		gpr := src.GPR
		if m&MTDESP == 0 {
			gpr[x86.ESP] = dst.GPR[x86.ESP]
		}
		dst.GPR = gpr
	} else if m&MTDESP != 0 {
		dst.GPR[x86.ESP] = src.GPR[x86.ESP]
	}
	if m&MTDEIP != 0 {
		dst.EIP = src.EIP
	}
	if m&MTDEFLAGS != 0 {
		dst.EFLAGS = src.EFLAGS
	}
	if m&MTDSeg != 0 {
		dst.Seg = src.Seg
	}
	if m&MTDCR != 0 {
		dst.CR0, dst.CR2, dst.CR3, dst.CR4 = src.CR0, src.CR2, src.CR3, src.CR4
	}
	if m&MTDDT != 0 {
		dst.GDTR, dst.IDTR = src.GDTR, src.IDTR
	}
	if m&MTDSTA != 0 {
		dst.IntShadow = src.IntShadow
		dst.Halted = src.Halted
	}
	if m&MTDTSC != 0 {
		dst.TSC = src.TSC
	}
}

// WordCount returns how many 32-bit words the MTD-selected state
// occupies in the UTCB (for the per-word IPC transfer cost).
func (m MTD) WordCount() int { return m.FieldCount() }
