package hypervisor

import (
	"strings"
	"testing"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/x86"
)

// testVM wires a minimal VMM around one guest for kernel-level tests.
type testVM struct {
	k    *Kernel
	vmm  *PD
	vm   *PD
	ec   *EC
	base uint64 // host-physical address of guest-physical 0
}

// guestMTD is the state a test portal transfers.
const guestMTD = MTDGPR | MTDEIP | MTDEFLAGS | MTDQual | MTDSTA | MTDInj

var selCounter cap.Selector = 100

func nextSel() cap.Selector { selCounter++; return selCounter }

// makeVM builds a VM with memPages pages of guest-physical memory
// (backed at host 2 MiB), loads code at guest-physical org, and installs
// portals from handlers. Exit reasons without handlers get a default
// that fails the test.
func makeVM(t *testing.T, k *Kernel, mode PagingMode, memPages int, code []byte, org uint32,
	handlers map[x86.ExitReason]func(*testVM, *UTCB) error) *testVM {
	t.Helper()
	vmm, err := k.CreatePD(k.Root, nextSel(), "vmm", false)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := k.CreatePD(vmm, nextSel(), "guest", true)
	if err != nil {
		t.Fatal(err)
	}
	const basePage = 0x200 // host 2 MiB
	tv := &testVM{k: k, vmm: vmm, vm: vm, base: basePage << 12}
	if err := k.DelegateMem(k.Root, basePage, vmm, basePage, memPages, cap.RightsAll); err != nil {
		t.Fatal(err)
	}
	if err := k.DelegateMem(vmm, basePage, vm, 0, memPages, cap.RightRead|cap.RightWrite|cap.RightExec); err != nil {
		t.Fatal(err)
	}
	k.Plat.Mem.WriteBytes(hw.PhysAddr(tv.base+uint64(org)), code)

	ec, err := k.CreateVCPU(vmm, nextSel(), vm, 0, "vcpu0", mode, 0)
	if err != nil {
		t.Fatal(err)
	}
	tv.ec = ec
	ec.VCPU.State.EIP = org

	for r := x86.ExitReason(0); int(r) < x86.NumExitReasons; r++ {
		r := r
		h := handlers[r]
		if h == nil {
			switch r {
			case x86.ExitHLT:
				h = func(tv *testVM, m *UTCB) error { m.State.Halted = true; return nil }
			default:
				h = func(tv *testVM, m *UTCB) error {
					t.Fatalf("unexpected VM exit %v (eip=%#x)", m.Exit.Reason, m.State.EIP)
					return nil
				}
			}
		}
		sel := nextSel()
		if _, err := k.CreatePortal(vmm, sel, "exit-"+r.String(), uint64(r), guestMTD,
			func(m *UTCB) error { return h(tv, m) }); err != nil {
			t.Fatal(err)
		}
		if err := vmm.Caps.Delegate(sel, vm.Caps, PortalSelector(r), cap.RightCall); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.CreateSC(vmm, nextSel(), ec, 10, 10_000_000); err != nil {
		t.Fatal(err)
	}
	return tv
}

// writeGuest writes into guest-physical memory.
func (tv *testVM) writeGuest(gpa uint64, b []byte) {
	tv.k.Plat.Mem.WriteBytes(hw.PhysAddr(tv.base+gpa), b)
}

func (tv *testVM) readGuest32(gpa uint64) uint32 {
	return tv.k.Plat.Mem.Read32(hw.PhysAddr(tv.base + gpa))
}

func TestGuestEPTRunsAndExits(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	code := x86.MustAssemble(`bits 16
org 0x7c00
	mov ax, 5
	cpuid
	add ax, 1
	hlt`)
	cpuids := 0
	tv := makeVM(t, k, ModeEPT, 64, code, 0x7c00, map[x86.ExitReason]func(*testVM, *UTCB) error{
		x86.ExitCPUID: func(tv *testVM, m *UTCB) error {
			cpuids++
			m.State.GPR[x86.EBX] = 0x600d
			m.State.EIP += uint32(m.Exit.InstLen)
			return nil
		},
	})
	k.Run(k.Now() + 50_000_000)
	v := tv.ec.VCPU
	if cpuids != 1 {
		t.Errorf("cpuid exits handled = %d", cpuids)
	}
	if !v.State.Halted {
		t.Fatalf("guest did not halt: %v", v.State.String())
	}
	if v.State.Reg(x86.EAX, 2) != 6 {
		t.Errorf("ax = %d, want 6", v.State.Reg(x86.EAX, 2))
	}
	if v.State.GPR[x86.EBX] != 0x600d {
		t.Errorf("ebx not written back from VMM reply: %#x", v.State.GPR[x86.EBX])
	}
	if v.Exits[x86.ExitCPUID] != 1 || v.Exits[x86.ExitHLT] != 1 {
		t.Errorf("exit counts: cpuid=%d hlt=%d", v.Exits[x86.ExitCPUID], v.Exits[x86.ExitHLT])
	}
}

func TestGuestPortIOExit(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	code := x86.MustAssemble(`bits 16
org 0x7c00
	mov al, 0x42
	out 0x80, al
	in al, 0x60
	hlt`)
	var outPort uint16
	var outVal uint32
	tv := makeVM(t, k, ModeEPT, 64, code, 0x7c00, map[x86.ExitReason]func(*testVM, *UTCB) error{
		x86.ExitIO: func(tv *testVM, m *UTCB) error {
			if m.Exit.In {
				m.State.SetReg(x86.EAX, m.Exit.Size, 0x99)
			} else {
				outPort, outVal = m.Exit.Port, m.Exit.OutVal
			}
			m.State.EIP += uint32(m.Exit.InstLen)
			return nil
		},
	})
	k.Run(k.Now() + 50_000_000)
	if outPort != 0x80 || outVal != 0x42 {
		t.Errorf("out: port=%#x val=%#x", outPort, outVal)
	}
	if tv.ec.VCPU.State.Reg8(x86.EAX) != 0x99 {
		t.Errorf("in: al=%#x", tv.ec.VCPU.State.Reg8(x86.EAX))
	}
	if tv.ec.VCPU.Exits[x86.ExitIO] != 2 {
		t.Errorf("io exits = %d", tv.ec.VCPU.Exits[x86.ExitIO])
	}
}

func TestGuestEPTViolationForMMIO(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	// 16 pages mapped (64K); access at linear 0x20000 exits.
	code := x86.MustAssemble(`bits 16
org 0x7c00
	mov ax, 0x2000
	mov ds, ax
	mov byte [0x0], 0x55
	hlt`)
	var gpa uint64
	var isWrite bool
	tv := makeVM(t, k, ModeEPT, 16, code, 0x7c00, map[x86.ExitReason]func(*testVM, *UTCB) error{
		x86.ExitEPTViolation: func(tv *testVM, m *UTCB) error {
			gpa, isWrite = m.Exit.GPA, m.Exit.Write
			// Emulate the instruction as a no-op MMIO store: skip it.
			// The VMM would decode it; here we know its length.
			m.State.EIP += 4
			return nil
		},
	})
	k.Run(k.Now() + 50_000_000)
	if gpa != 0x20000 || !isWrite {
		t.Errorf("ept violation gpa=%#x write=%v", gpa, isWrite)
	}
	if !tv.ec.VCPU.State.Halted {
		t.Error("guest did not complete")
	}
}

func TestGuestKilledWithoutPortal(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	vmm, _ := k.CreatePD(k.Root, nextSel(), "vmm", false)
	vm, _ := k.CreatePD(vmm, nextSel(), "guest", true)
	const basePage = 0x200
	k.DelegateMem(k.Root, basePage, vmm, basePage, 16, cap.RightsAll)
	k.DelegateMem(vmm, basePage, vm, 0, 16, cap.RightsAll)
	code := x86.MustAssemble("bits 16\norg 0x7c00\ncpuid\nhlt")
	k.Plat.Mem.WriteBytes(hw.PhysAddr(basePage<<12+0x7c00), code)
	ec, _ := k.CreateVCPU(vmm, nextSel(), vm, 0, "vcpu", ModeEPT, 0)
	ec.VCPU.State.EIP = 0x7c00
	k.CreateSC(vmm, nextSel(), ec, 10, 1_000_000)
	k.Run(k.Now() + 10_000_000)
	if !ec.dead {
		t.Fatal("VM without portals survived a VM exit")
	}
	if len(k.Killed) != 1 || !strings.Contains(k.Killed[0], "no portal") {
		t.Errorf("killed = %v", k.Killed)
	}
}

func TestGuestInterruptInjection(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	// IVT entry 0x21 -> 0:0x5000; ISR increments a counter at 0x6000.
	code := x86.MustAssemble(`bits 16
org 0x7c00
	xor ax, ax
	mov ds, ax
	mov es, ax
	mov word [0x84], 0x5000 ; IVT vector 0x21 offset
	mov word [0x86], 0      ; segment
	sti
again:
	hlt
	jmp again`)
	isr := x86.MustAssemble(`bits 16
org 0x5000
	push ax
	mov ax, [0x6000]
	inc ax
	mov [0x6000], ax
	pop ax
	iret`)
	injected := 0
	tv := makeVM(t, k, ModeEPT, 64, code, 0x7c00, map[x86.ExitReason]func(*testVM, *UTCB) error{
		x86.ExitHLT: func(tv *testVM, m *UTCB) error {
			if injected < 3 {
				injected++
				m.InjectValid = true
				m.InjectVector = 0x21
				m.State.EIP += uint32(m.Exit.InstLen)
			} else {
				m.State.Halted = true
			}
			return nil
		},
	})
	tv.writeGuest(0x5000, isr)
	k.Run(k.Now() + 100_000_000)
	v := tv.ec.VCPU
	if got := tv.readGuest32(0x6000) & 0xffff; got != 3 {
		t.Errorf("ISR ran %d times, want 3", got)
	}
	if v.InjectedIRQs != 3 {
		t.Errorf("injections = %d", v.InjectedIRQs)
	}
	if !v.State.Halted {
		t.Error("guest did not finish")
	}
}

func TestInterruptWindowExit(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	// Guest runs with IF=0, does some work, then STI: the injection
	// must wait for the window and produce a window exit.
	code := x86.MustAssemble(`bits 16
org 0x7c00
	xor ax, ax
	mov ds, ax
	mov word [0x84], 0x5000
	mov word [0x86], 0
	cli
	out 0x80, al   ; VMM queues an injection here
	mov cx, 10
spin:
	dec cx
	jnz spin
	sti
	nop
	hlt`)
	isr := x86.MustAssemble("bits 16\norg 0x5000\nmov bx, 0x1234\niret")
	windowExits := 0
	tv := makeVM(t, k, ModeEPT, 64, code, 0x7c00, map[x86.ExitReason]func(*testVM, *UTCB) error{
		x86.ExitIO: func(tv *testVM, m *UTCB) error {
			m.InjectValid = true
			m.InjectVector = 0x21
			m.State.EIP += uint32(m.Exit.InstLen)
			return nil
		},
		x86.ExitInterruptWindow: func(tv *testVM, m *UTCB) error {
			windowExits++
			return nil
		},
	})
	tv.writeGuest(0x5000, isr)
	k.Run(k.Now() + 100_000_000)
	v := tv.ec.VCPU
	if windowExits != 1 {
		t.Errorf("interrupt-window exits = %d, want 1", windowExits)
	}
	if v.State.Reg(x86.EBX, 2) != 0x1234 {
		t.Errorf("ISR did not run: bx=%#x", v.State.Reg(x86.EBX, 2))
	}
	if v.Exits[x86.ExitInterruptWindow] != 1 {
		t.Errorf("window exit count = %d", v.Exits[x86.ExitInterruptWindow])
	}
}

func TestRecallForcesExit(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	code := x86.MustAssemble(`bits 16
org 0x7c00
	sti
spin:
	jmp spin`)
	recalls := 0
	tv := makeVM(t, k, ModeEPT, 64, code, 0x7c00, map[x86.ExitReason]func(*testVM, *UTCB) error{
		x86.ExitRecall: func(tv *testVM, m *UTCB) error {
			recalls++
			m.State.Halted = true // stop the test
			return nil
		},
	})
	// Let the guest spin a while, then recall it.
	k.Run(k.Now() + 1_000_000)
	if err := k.Recall(tv.vmm, tv.ec); err != nil {
		t.Fatal(err)
	}
	k.Run(k.Now() + 10_000_000)
	if recalls != 1 {
		t.Errorf("recall exits = %d, want 1", recalls)
	}
	if k.Stats.Recalls != 1 {
		t.Errorf("recall stat = %d", k.Stats.Recalls)
	}
}

func TestReadOnlyMappingReadsDirectWritesTrap(t *testing.T) {
	// §7.2: "device registers without read side effects can be mapped
	// read-only" — reads proceed at full speed without exits; writes
	// become EPT violations for the VMM to emulate.
	k := newTestKernel(t, Config{UseVPID: true})
	writes := 0
	code := x86.MustAssemble(`bits 16
org 0x7c00
	mov ax, 0x3000
	mov ds, ax
	mov eax, [0x0]      ; read the RO page: no exit
	mov [0x6000], eax   ; via DS... careful: 0x6000 within ds segment
	mov byte [0x4], 0x55 ; write the RO page: traps
	hlt`)
	tv := makeVM(t, k, ModeEPT, 64, code, 0x7c00, map[x86.ExitReason]func(*testVM, *UTCB) error{
		x86.ExitEPTViolation: func(tv *testVM, m *UTCB) error {
			writes++
			if !m.Exit.Write || m.Exit.GPA != 0x30004 {
				t.Errorf("unexpected violation: gpa=%#x write=%v", m.Exit.GPA, m.Exit.Write)
			}
			m.State.EIP += 5 // emulate/skip the store
			return nil
		},
	})
	// Replace the RW mapping of guest page 0x30 with a read-only one
	// (a register window of a virtual device).
	tv.vm.Mem.Revoke(0x30, 1, true)
	if err := tv.vmm.Mem.Delegate(0x200+0x30, tv.vm.Mem, 0x30, 1, cap.RightRead); err != nil {
		t.Fatal(err)
	}
	// Put a recognizable value into the backing frame.
	k.Plat.Mem.Write32(hw.PhysAddr(tv.base+0x30000), 0x5afe5afe)

	k.Run(k.Now() + 50_000_000)
	v := tv.ec.VCPU
	if !v.State.Halted {
		t.Fatalf("guest did not halt; killed=%v", k.Killed)
	}
	// The read saw the device value without any read exits.
	if got := tv.readGuest32(0x36000); got != 0x5afe5afe {
		t.Errorf("read-through value = %#x", got)
	}
	if writes != 1 {
		t.Errorf("write traps = %d, want 1", writes)
	}
	if v.Exits[x86.ExitEPTViolation] != 1 {
		t.Errorf("ept violations = %d, want exactly the write", v.Exits[x86.ExitEPTViolation])
	}
}
