package hypervisor

import (
	"fmt"

	"nova/internal/hw"
	"nova/internal/trace"
	"nova/internal/x86"
)

// BindECToSemaphore makes a thread EC block on sm between runs: the
// driver pattern of down → handle → down. If the semaphore already has
// signals queued, the EC becomes runnable immediately.
func (k *Kernel) BindECToSemaphore(ec *EC, sm *Semaphore) {
	ec.WaitSem = sm
	k.blockOnSem(ec, sm)
}

func (k *Kernel) blockOnSem(ec *EC, sm *Semaphore) {
	sm.Downs++
	if sm.Counter > 0 {
		sm.Counter--
		ec.runnable = true
		if ec.SC != nil {
			k.enqueue(ec.SC)
		}
		return
	}
	ec.runnable = false
	ec.waitingOn = sm
	sm.waiters = append(sm.waiters, ec)
}

// Run executes the system until the given time, or until nothing can
// ever run again (no runnable ECs and no pending events). It returns
// the reason it stopped.
func (k *Kernel) Run(until hw.Cycles) string {
	for {
		clk := k.clock()
		if clk.Now() >= until {
			return "deadline"
		}
		k.Plat.RunEventsUntil(clk.Now())
		if !k.GuestOwnsPIC {
			k.handleHostInterrupts(nil)
		}

		sc := k.runq[k.cpu].pop()
		if sc == nil {
			// Idle: skip to the next event.
			if k.Plat.Queue.Empty() {
				return "idle"
			}
			t := k.Plat.Queue.NextTime()
			if t > until {
				clk.AdvanceTo(until)
				k.Prof.SkipIdle(k.cpu, clk.Now())
				return "deadline"
			}
			clk.AdvanceTo(t)
			k.Prof.SkipIdle(k.cpu, clk.Now())
			continue
		}
		ec := sc.EC
		if ec.dead || !ec.runnable {
			continue
		}
		k.current[k.cpu] = ec
		k.preempt = false
		wait := clk.Now() - sc.enqueuedAt
		k.Tracer.Emit(k.cpu, clk.Now(), trace.KindSchedDispatch, uint64(ec.ID), uint64(sc.Priority), uint64(wait), 0)
		k.Tracer.ObserveDispatch(uint64(wait))
		ec.stats.dispatch(clk.Now())
		k.statRunq(clk.Now(), uint64(wait))

		switch ec.Kind {
		case ECThread:
			k.Stats.ContextSwitch++
			ec.runnable = false
			if ec.Run != nil {
				ec.Run()
			}
			if ec.WaitSem != nil && !ec.dead {
				k.blockOnSem(ec, ec.WaitSem)
			}
			if k.Prof != nil {
				k.profServerTick(ec)
			}
		case ECVCPU:
			slice := sc.Left
			if slice == 0 {
				slice = sc.Quantum
			}
			deadline := clk.Now() + slice
			if deadline > until {
				deadline = until
			}
			start := clk.Now()
			k.runVCPU(ec, deadline)
			used := clk.Now() - start
			ec.stats.ran(clk.Now(), uint64(used))
			if used >= sc.Left {
				sc.Left = sc.Quantum // fresh quantum, back of the level
			} else {
				sc.Left -= used
			}
			if ec.runnable && !ec.dead {
				k.enqueue(sc)
			}
		}
		k.current[k.cpu] = nil
	}
}

// RunAll runs every CPU's scheduler in interleaved slices until the
// deadline, for multiprocessor configurations. CPU clocks advance
// independently; cross-CPU interactions (recall, semaphores) take
// effect when the target CPU's loop resumes.
func (k *Kernel) RunAll(until hw.Cycles) {
	const window = 200000 // interleave granularity in cycles
	for {
		progress := false
		for cpu := range k.Plat.CPUs {
			k.cpu = cpu
			now := k.Plat.CPUs[cpu].Clock.Now()
			if now >= until {
				continue
			}
			end := now + window
			if end > until {
				end = until
			}
			reason := k.Run(end)
			if reason == "deadline" {
				progress = true
			}
		}
		k.cpu = 0
		if !progress {
			return
		}
	}
}

// runVCPU executes a virtual CPU until its slice expires, it blocks, or
// a higher-priority EC preempts it.
func (k *Kernel) runVCPU(ec *EC, deadline hw.Cycles) {
	v := ec.VCPU
	clk := k.clock()
	cost := k.Plat.Cost

	for clk.Now() < deadline && !ec.dead {
		k.Plat.RunEventsUntil(clk.Now())
		if k.preempt {
			k.Stats.Preemptions++
			return
		}
		pending := k.Plat.PIC.HasPending()
		if pending {
			if v.NoExitDelivery {
				// §8.1 "Direct": the guest owns the platform interrupt
				// controller; deliver without leaving guest mode.
				if v.Interp.Interruptible() {
					if vec, ok := k.Plat.PIC.Acknowledge(); ok {
						v.InjectedIRQs++
						k.Tracer.Emit(k.cpu, clk.Now(), trace.KindInject, uint64(vec), uint64(ec.ID), 0, 0)
						v.stats.inject(clk.Now())
						if err := v.Interp.Interrupt(vec); err != nil {
							k.handleGuestRunError(ec, err)
						}
					}
					continue
				}
				if v.State.Halted {
					// Halted with IF=0 would wedge; fall through to the
					// halt handling below.
					k.killVM(ec, "halted with interrupts disabled") //nolint:errcheck
					return
				}
				// Not interruptible yet: execute until the window opens.
			} else {
				k.handleHostInterrupts(ec)
				if k.preempt {
					return
				}
				continue
			}
		}
		if v.RecallPending {
			v.RecallPending = false
			if err := k.dispatchExit(ec, &x86.VMExit{Reason: x86.ExitRecall}); err != nil {
				return
			}
			continue
		}
		if v.PendingValid {
			if v.Interruptible() {
				if v.WindowWanted {
					// The VMM asked to be notified when the window
					// opens (§8.2's extra exit per interrupt).
					v.WindowWanted = false
					if err := k.dispatchExit(ec, &x86.VMExit{Reason: x86.ExitInterruptWindow}); err != nil {
						return
					}
					if !v.PendingValid || !v.Interruptible() {
						continue
					}
				}
				v.PendingValid = false
				v.State.Halted = false
				k.Stats.Injections++
				v.InjectedIRQs++
				k.Tracer.Emit(k.cpu, clk.Now(), trace.KindInject, uint64(v.PendingVector), uint64(ec.ID), 0, 0)
				v.stats.inject(clk.Now())
				k.charge(2 * cost.VMRead) // event-injection VMWRITEs
				if err := v.Interp.Interrupt(v.PendingVector); err != nil {
					k.handleGuestRunError(ec, err)
					continue
				}
			} else if !v.State.Halted {
				v.WindowWanted = true
			}
		}
		if v.State.Halted {
			if v.NoExitDelivery {
				// The guest owns the interrupt hardware: idle to the
				// next platform event like a bare-metal CPU.
				if k.Plat.Queue.Empty() {
					ec.runnable = false
					return
				}
				t := k.Plat.Queue.NextTime()
				if t > deadline {
					clk.AdvanceTo(deadline)
					k.Prof.SkipIdle(k.cpu, clk.Now())
					return
				}
				clk.AdvanceTo(t)
				k.Prof.SkipIdle(k.cpu, clk.Now())
				continue
			}
			// HLT with nothing to deliver: the vCPU blocks until the
			// VMM injects or recalls.
			if !v.PendingValid {
				ec.runnable = false
				return
			}
			if !v.Interruptible() {
				// HLT with IF=0 and no NMI support: wedged guest.
				k.killVM(ec, "halted with interrupts disabled") //nolint:errcheck
				return
			}
			continue
		}

		before := v.Interp.InstRet
		extraBefore := v.Interp.ExtraCycles
		var err error
		if max := k.fuseLimit(v, clk, deadline, pending); max > 1 {
			err = v.Interp.StepBlock(max)
		} else {
			err = v.Interp.Step()
		}
		retired := v.Interp.InstRet - before
		if retired == 0 {
			retired = 1
		}
		clk.Charge(hw.Cycles(retired)*cost.InstructionCost + hw.Cycles(v.Interp.ExtraCycles-extraBefore))
		if err != nil {
			k.handleGuestRunError(ec, err)
		}
	}
	if k.preempt {
		k.Stats.Preemptions++
	}
}

// fuseLimit bounds a fused superblock run: the number of base-cost
// instructions that fit strictly between now and the nearer of the next
// platform event and the run deadline. Within that window the
// sequential loop's per-step top-of-loop work (RunEventsUntil, PIC,
// recall, injection and halt checks) is provably a no-op, so batching
// it at the block boundary cannot change simulated behaviour. Anything
// already pending forces single-stepping — delivery timing must stay
// per-instruction exact (interrupt shadows, halt wake-ups). pending is
// the caller's loop-top PIC.HasPending result: nothing between the loop
// top and the step site can raise a line, so re-querying would only
// duplicate the hottest check in the run loop.
func (k *Kernel) fuseLimit(v *VCPU, clk *hw.Clock, deadline hw.Cycles, pending bool) uint64 {
	if k.Cfg.DisableSuperblocks || v.Interp.Cache == nil {
		return 1
	}
	if pending || v.RecallPending || v.PendingValid {
		v.Interp.Cache.SB.CutPending++
		return 1
	}
	limit := deadline
	if !k.Plat.Queue.Empty() {
		if t := k.Plat.Queue.NextTime(); t < limit {
			limit = t
		}
	}
	now := clk.Now()
	if limit <= now {
		return 1
	}
	ic := k.Plat.Cost.InstructionCost
	if ic == 1 {
		return uint64(limit - now)
	}
	return uint64((limit - now + ic - 1) / ic)
}

// handleGuestRunError routes interpreter errors: VM exits go to the
// portal dispatcher, anything else kills the VM.
func (k *Kernel) handleGuestRunError(ec *EC, err error) {
	if exit, ok := err.(*x86.VMExit); ok {
		k.dispatchExit(ec, exit) //nolint:errcheck // dispatch kills the VM on failure
		return
	}
	k.killVM(ec, fmt.Sprintf("guest execution error: %v", err)) //nolint:errcheck
}

// Interruptible reports whether the vCPU can accept an interrupt now.
func (v *VCPU) Interruptible() bool {
	return v.State.IF() && !v.State.IntShadow
}
