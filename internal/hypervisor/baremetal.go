package hypervisor

import (
	"fmt"

	"nova/internal/hw"
	"nova/internal/prof"
	"nova/internal/stat"
	"nova/internal/x86"
)

// BareMetal runs an operating system directly on the simulated
// platform with no virtualization layer at all: the paper's "Native"
// baseline. The OS owns the physical devices, receives hardware
// interrupts through its own IDT, and pays only its own page-walk
// costs.
type BareMetal struct {
	Plat   *hw.Platform
	State  x86.CPUState
	Interp *x86.Interp

	// Prof, when set, samples execution on the virtual-time grid (same
	// zero-perturbation contract as the kernel's profiler).
	Prof *prof.Profiler

	// Stat, when set, carries the native run's resource accounting
	// (instruction and device totals; a native run has no exits or IPC).
	Stat *stat.Registry

	// DisableSuperblocks turns off fused superblock execution
	// (x86.StepBlock) and single-steps every instruction. This is NOT
	// an ablation: superblocks are host-side machinery whose on/off
	// results are bit-identical; the switch exists for the A/B identity
	// harness and for debugging.
	DisableSuperblocks bool
}

// AttachProfiler enables virtual-time sampling on the native run.
//
// nocharge: observability plumbing; attaching the profiler models no
// hardware work and must not move the clock (zero-perturbation rule).
func (b *BareMetal) AttachProfiler(period uint64, capacity int) *prof.Profiler {
	cost := b.Plat.Cost
	meta := prof.Meta{Model: cost.Model.String(), FreqMHz: cost.FreqMHz}
	b.Prof = prof.New(meta, len(b.Plat.CPUs), period, capacity)
	read := profGuestReader(b.Plat.Mem, nil, &b.State)
	clk := &b.Plat.BootCPU().Clock
	b.Interp.StepHook = func() {
		b.Prof.Tick(0, clk.Now(), prof.ModeGuest, profCtx(&b.State, read))
	}
	return b.Prof
}

// AttachStats enables resource accounting on the native run: retired
// instructions plus the host device-model totals, so native and
// virtualized profiles of the same workload are directly comparable.
//
// nocharge: observability plumbing; attaching the registry models no
// hardware work and must not move the clock (zero-perturbation rule).
func (b *BareMetal) AttachStats(epochLen hw.Cycles) *stat.Registry {
	cost := b.Plat.Cost
	r := stat.New(stat.Meta{
		Model:   cost.Model.String(),
		FreqMHz: cost.FreqMHz,
		NumCPUs: len(b.Plat.CPUs),
	}, epochLen)
	b.Stat = r
	r.RegisterSampler(stat.Name("guest_instructions", "vm", "native", "vcpu", "0"),
		func() uint64 { return b.Interp.InstRet })
	statSuperblocks(r, b.Interp, "native", "0")
	if ahci := b.Plat.AHCI; ahci != nil {
		r.RegisterSampler("hw_ahci_commands", func() uint64 { return ahci.Stats.Commands })
		r.RegisterSampler("hw_ahci_dma_bytes", func() uint64 { return ahci.Stats.DMABytes })
		r.RegisterSampler("hw_ahci_irqs", func() uint64 { return ahci.Stats.IRQs })
	}
	if nic := b.Plat.NIC; nic != nil {
		r.RegisterSampler("hw_nic_rx_packets", func() uint64 { return nic.Stats.PacketsReceived })
		r.RegisterSampler("hw_nic_rx_bytes", func() uint64 { return nic.Stats.BytesReceived })
		r.RegisterSampler("hw_nic_irqs", func() uint64 { return nic.Stats.IRQs })
		r.RegisterSampler("hw_nic_dropped", func() uint64 { return nic.Stats.PacketsDropped })
	}
	return r
}

// ProfCodeReader returns a pure byte reader over the OS's address
// space, for Profiler.CaptureCode after a run.
func (b *BareMetal) ProfCodeReader() func(uint32) (byte, bool) {
	return profGuestByteReader(b.Plat.Mem, nil, &b.State)
}

// nativeEnv translates through the OS's own page tables (physical =
// linear when paging is off) and reaches devices directly.
type nativeEnv struct {
	plat *hw.Platform
}

type hostPhys struct{ mem *hw.Memory }

func (h hostPhys) ReadPhys32(pa uint64) (uint32, bool) {
	if pa+4 > h.mem.Size() {
		return 0, false
	}
	return h.mem.Read32(hw.PhysAddr(pa)), true
}

// nocharge: x86.Phys page-walker callback; the walker charges
// PageWalkLevel per level and the interpreter charges per instruction.
func (h hostPhys) WritePhys32(pa uint64, v uint32) bool {
	if pa+4 > h.mem.Size() {
		return false
	}
	h.mem.Write32(hw.PhysAddr(pa), v)
	return true
}

func (e *nativeEnv) translate(st *x86.CPUState, va uint32, write bool) (uint64, error) {
	if !st.PagingEnabled() {
		return uint64(va), nil
	}
	tlb := e.plat.BootCPU().TLB
	if pa, entry, ok := tlb.Translate(hw.HostTag, va); ok {
		if !write || entry.Writable {
			return uint64(pa), nil
		}
	}
	w, exc := x86.WalkGuest(hostPhys{e.plat.Mem}, st.CR3, st.CR4, va, write, st.CR0&x86.CR0WP != 0, true)
	e.plat.BootCPU().Clock.Charge(hw.Cycles(w.Steps) * e.plat.Cost.PageWalkLevel)
	if exc != nil {
		return 0, exc
	}
	if w.Large {
		mask := uint64(tlb.LargePageSize() - 1)
		tlb.InsertLarge(hw.HostTag, va, w.PA&^mask>>12, w.Writable, w.User, w.Global)
	} else {
		tlb.InsertSmall(hw.HostTag, va, w.PA>>12, w.Writable, w.User, w.Global)
	}
	return w.PA, nil
}

// ExecPage implements x86.ExecPager: one translation of the fetch
// address — charged exactly like the slow path's first byte fetch —
// plus direct host access to the backing RAM page for the
// decoded-instruction cache.
func (e *nativeEnv) ExecPage(st *x86.CPUState, va uint32) ([]byte, uint64, uint64, error) {
	pa, err := e.translate(st, va, false)
	if err != nil {
		return nil, 0, 0, err
	}
	data, gen, ok := e.plat.Mem.CodePage(hw.PhysAddr(pa))
	if !ok {
		return nil, 0, 0, nil
	}
	return data, pa >> 12, gen, nil
}

func (e *nativeEnv) MemRead(st *x86.CPUState, va uint32, size int, kind x86.AccessKind) (uint32, error) {
	if crossesPage(va, size) {
		return splitRead(e, st, va, size, kind)
	}
	pa, err := e.translate(st, va, false)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint32(e.plat.Mem.Read8(hw.PhysAddr(pa))), nil
	case 2:
		return uint32(e.plat.Mem.Read16(hw.PhysAddr(pa))), nil
	default:
		return e.plat.Mem.Read32(hw.PhysAddr(pa)), nil
	}
}

func (e *nativeEnv) MemWrite(st *x86.CPUState, va uint32, size int, val uint32) error {
	if crossesPage(va, size) {
		return splitWrite(e, st, va, size, val)
	}
	pa, err := e.translate(st, va, true)
	if err != nil {
		return err
	}
	switch size {
	case 1:
		e.plat.Mem.Write8(hw.PhysAddr(pa), uint8(val))
	case 2:
		e.plat.Mem.Write16(hw.PhysAddr(pa), uint16(val))
	default:
		e.plat.Mem.Write32(hw.PhysAddr(pa), val)
	}
	return nil
}

func (e *nativeEnv) In(port uint16, size int) (uint32, error) {
	return e.plat.Ports.Read(port, size), nil
}

func (e *nativeEnv) Out(port uint16, size int, val uint32) error {
	e.plat.Ports.Write(port, size, val)
	return nil
}

func (e *nativeEnv) InvalidateTLB(st *x86.CPUState, all bool, va uint32) {
	tlb := e.plat.BootCPU().TLB
	if all {
		if st.CR4&x86.CR4PGE != 0 {
			tlb.FlushTag(hw.HostTag)
		} else {
			tlb.FlushAll()
		}
	} else {
		tlb.FlushVA(hw.HostTag, va)
	}
}

// NewBareMetal prepares a native run of the OS image already loaded in
// platform memory, entered at the given address in real mode.
func NewBareMetal(plat *hw.Platform, entry uint32) *BareMetal {
	b := &BareMetal{Plat: plat}
	b.State.Reset()
	b.State.EIP = entry
	env := &nativeEnv{plat: plat}
	b.Interp = x86.NewInterp(env, &b.State, x86.Intercepts{})
	b.Interp.Cache = x86.NewDecodeCache()
	b.Interp.TSC = func() uint64 { return uint64(plat.BootCPU().Clock.Now()) }
	return b
}

// Run executes until the deadline, the OS halts with no wakeup source,
// or a triple fault occurs.
func (b *BareMetal) Run(until hw.Cycles) error {
	clk := &b.Plat.BootCPU().Clock
	cost := b.Plat.Cost
	for clk.Now() < until {
		b.Plat.RunEventsUntil(clk.Now())
		pending := b.Plat.PIC.HasPending()
		if pending && b.Interp.Interruptible() {
			if vec, ok := b.Plat.PIC.Acknowledge(); ok {
				if err := b.Interp.Interrupt(vec); err != nil {
					return fmt.Errorf("hypervisor: native interrupt delivery: %w", err)
				}
			}
			continue
		}
		if b.State.Halted {
			if b.Plat.Queue.Empty() {
				return nil
			}
			t := b.Plat.Queue.NextTime()
			if t > until {
				clk.AdvanceTo(until)
				b.Prof.SkipIdle(0, clk.Now())
				return nil
			}
			clk.AdvanceTo(t)
			b.Prof.SkipIdle(0, clk.Now())
			continue
		}
		before := b.Interp.InstRet
		extraBefore := b.Interp.ExtraCycles
		var err error
		if max := b.fuseLimit(clk, until, pending); max > 1 {
			err = b.Interp.StepBlock(max)
		} else {
			err = b.Interp.Step()
		}
		retired := b.Interp.InstRet - before
		if retired == 0 {
			retired = 1
		}
		clk.Charge(hw.Cycles(retired)*cost.InstructionCost + hw.Cycles(b.Interp.ExtraCycles-extraBefore))
		if err != nil {
			return fmt.Errorf("hypervisor: native execution: %w", err)
		}
	}
	return nil
}

// fuseLimit mirrors Kernel.fuseLimit for the native run loop: fused
// instructions must fit strictly between now and the nearer of the
// next platform event and the deadline, and a pending interrupt forces
// single-stepping so delivery timing (including the STI shadow) stays
// per-instruction exact. pending is the caller's loop-top
// PIC.HasPending result; nothing between there and the step site can
// raise a line.
func (b *BareMetal) fuseLimit(clk *hw.Clock, until hw.Cycles, pending bool) uint64 {
	if b.DisableSuperblocks || b.Interp.Cache == nil {
		return 1
	}
	if pending {
		b.Interp.Cache.SB.CutPending++
		return 1
	}
	limit := until
	if !b.Plat.Queue.Empty() {
		if t := b.Plat.Queue.NextTime(); t < limit {
			limit = t
		}
	}
	now := clk.Now()
	if limit <= now {
		return 1
	}
	ic := b.Plat.Cost.InstructionCost
	if ic == 1 {
		return uint64(limit - now)
	}
	return uint64((limit - now + ic - 1) / ic)
}
