package hypervisor

import (
	"fmt"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/span"
	"nova/internal/trace"
)

// ipcPerWord is the marginal transfer cost per message word (§8.4:
// "2–3 cycles per word").
const ipcPerWord = 3

// portalLookupCost approximates the capability lookup on the IPC path.
const portalLookupCost = 12

// Call performs synchronous IPC through a portal capability: the
// kernel looks the capability up in the caller's space, donates the
// caller's scheduling context to the handler EC, switches address
// spaces, delivers the message, and blocks the caller until the handler
// invokes the reply capability (§5.2).
//
// In this model the handler's code runs inline (it executes on the
// donated SC anyway — that is the whole point of donation: no scheduler
// involvement, Figure 3), so Call returns when the reply arrives. The
// handler replies by mutating msg in place.
func (k *Kernel) Call(caller *PD, sel cap.Selector, msg *UTCB) error {
	if err := k.syscallEnter(caller); err != nil {
		return err
	}
	c, err := caller.Caps.LookupTyped(sel, cap.ObjPortal, cap.RightCall)
	if err != nil {
		return err
	}
	pt := c.Obj.(*Portal)
	if pt.dead || pt.PD.dead {
		return ErrDead
	}
	// A hypercall-initiated portal call with no enclosing request is its
	// own span (a standalone IPC round-trip). Calls made on behalf of an
	// in-flight request (e.g. the VMM forwarding a disk command) already
	// carry the request's span via the active stack — don't nest.
	if id, _ := k.Spans.Current(k.cpu); id == 0 {
		sp := k.Spans.Open(k.cpu, k.Now(), span.ClassIPC, span.SegIPC, pt.UID)
		k.Spans.Begin(k.cpu, sp, span.SegIPC)
		err := k.portalCall(caller, pt, msg, len(msg.Words))
		k.Spans.End(k.cpu)
		status := span.StatusOK
		if err != nil {
			status = span.StatusError
		}
		k.Spans.Close(k.cpu, k.Now(), sp, status)
		return err
	}
	return k.portalCall(caller, pt, msg, len(msg.Words))
}

// portalCall is the kernel-internal portal traversal, shared between
// the hypercall path and VM-exit delivery. words is the payload size
// for the per-word cost.
func (k *Kernel) portalCall(from *PD, pt *Portal, msg *UTCB, words int) error {
	k.Stats.IPCCalls++
	k.Stats.IPCWords += uint64(words)
	t0 := k.Now()
	crossAS := uint64(0)
	if pt.PD != from {
		crossAS = 1
	}
	k.Tracer.Emit(k.cpu, t0, trace.KindIPCCall, pt.UID, uint64(words), crossAS, 0)

	// The CPU's current request span (if any) enters the kernel-IPC
	// segment for the portal traversal; the caller's segment is restored
	// when the reply completes. The handler itself (running inline on the
	// donated SC) transitions to its own segment and back.
	sp, prevSeg := k.Spans.Current(k.cpu)
	k.Spans.Transition(k.cpu, t0, sp, span.SegIPC)

	cost := hw.Cycles(portalLookupCost) + k.Plat.Cost.SyscallEntryExit/8 // portal traversal
	cost += hw.Cycles(words * ipcPerWord)
	if pt.PD != from {
		// Cross-address-space: without user TLB tags, the address-space
		// switch flushes and later repopulates the user-side TLB
		// entries ("TLB effects", Figure 8). User components are host
		// code whose TLB footprint is folded into the refill constant;
		// guest-tagged entries are governed by VPID on the world
		// switch, not here.
		cost += k.Plat.Cost.TLBRefill
		k.Stats.ContextSwitch++
	}
	if k.Cfg.DisableDirectSwitch {
		// Ablation: instead of switching directly to the handler on the
		// donated SC, take a trip through the scheduler.
		cost += k.Plat.Cost.SyscallEntryExit + hw.Cycles(60)
	}
	k.charge(cost)

	// Typed items: memory delegations riding on the message land in the
	// receiver's space, clipped to the portal's receive window (§6).
	if len(msg.Delegations) > 0 {
		msg.Delegated = 0
		for _, it := range msg.Delegations {
			if it.NPages <= 0 {
				continue
			}
			if pt.AcceptPages <= 0 ||
				it.DstPage < pt.AcceptBase ||
				it.DstPage+uint32(it.NPages) > pt.AcceptBase+uint32(pt.AcceptPages) {
				continue // outside the receiver's window: dropped
			}
			if err := from.Mem.Delegate(it.SrcPage, pt.PD.Mem, it.DstPage, it.NPages, it.Rights); err != nil {
				continue
			}
			k.charge(hw.Cycles(it.NPages) * 8) // mapping-database insertion
			msg.Delegated++
		}
		msg.Delegations = msg.Delegations[:0]
	}

	pt.Calls++
	if pt.Handle == nil {
		return fmt.Errorf("hypervisor: portal %s has no handler", pt.Name)
	}
	// The handler runs here, on the donated scheduling context: the
	// entire handling is accounted to the caller's time quantum (§5.2).
	// The kernel creates the reply capability before the handler runs
	// and destroys it on return.
	if err := pt.Handle(msg); err != nil {
		return err
	}

	// Reply path: the handler's reply hypercall (its own kernel
	// entry/exit) plus the switch back.
	reply := k.Plat.Cost.SyscallEntryExit + hw.Cycles(portalLookupCost) + hw.Cycles(words*ipcPerWord)
	if pt.PD != from {
		reply += k.Plat.Cost.TLBRefill
		k.Stats.ContextSwitch++
	}
	k.charge(reply)
	end := k.Now()
	k.Spans.Transition(k.cpu, end, sp, prevSeg)
	k.Tracer.Emit(k.cpu, end, trace.KindIPCReply, pt.UID, uint64(end-t0), crossAS, 0)
	k.Tracer.ObserveIPC(uint64(end - t0))
	from.stats.ipc(end, uint64(words))
	k.statIPCLatency.Observe(end, uint64(end-t0))
	return nil
}

// IPCCost returns the cycle cost of one one-way message transfer of the
// given word count, for the Figure 8 microbenchmark: kernel entry/exit,
// the IPC path (capability lookup, portal traversal, context switch and
// payload copy), and the TLB effects of a cross-address-space switch.
func (k *Kernel) IPCCost(words int, crossAS bool) hw.Cycles {
	c := k.Plat.Cost.SyscallEntryExit +
		hw.Cycles(portalLookupCost) + k.Plat.Cost.SyscallEntryExit/8 +
		hw.Cycles(words*ipcPerWord)
	if crossAS {
		c += k.Plat.Cost.TLBRefill
	}
	return c
}
