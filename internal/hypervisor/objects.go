package hypervisor

import (
	"fmt"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/prof"
	"nova/internal/x86"
)

// PD is a protection domain (§5): the unit of spatial isolation. It
// abstracts from the difference between a user application and a
// virtual machine — both are just resource containers with three
// spaces.
type PD struct {
	Name string
	// ID is a small dense identity used by trace events.
	ID int

	Caps *cap.Space
	Mem  *cap.MemSpace // HVA→HPA for applications, GPA→HPA for VMs
	IO   *cap.IOSpace

	// IsVM marks domains whose ECs are virtual CPUs. VMs cannot perform
	// hypercalls (§4.2: "VMs cannot perform hypercalls, a successful
	// attack [on the hypervisor] is unlikely").
	IsVM bool

	// Tag is the TLB tag of this domain's host address space.
	Tag hw.TLBTag

	// HostLargePages marks that this domain's memory was delegated in
	// large-page chunks, letting the MMU install large TLB entries
	// (Figure 5's small-vs-large host page comparison).
	HostLargePages bool

	// stats caches this domain's resource-accounting handles (set when
	// a stat registry attaches; nil means accounting is off).
	stats *pdStats

	dead bool
}

// ObjectType implements cap.Object.
func (p *PD) ObjectType() cap.ObjType { return cap.ObjPD }

func (p *PD) String() string { return fmt.Sprintf("pd:%s", p.Name) }

// ECKind distinguishes the two flavours of execution context.
type ECKind int

// Execution context kinds: ordinary host threads and virtual CPUs (§5:
// "execution contexts abstract from the differences between threads and
// virtual CPUs").
const (
	ECThread ECKind = iota
	ECVCPU
)

// EC is an execution context.
type EC struct {
	Name string
	// ID is a small dense identity used by trace events.
	ID   int
	PD   *PD
	CPU  int // physical CPU this EC is pinned to
	Kind ECKind

	UTCB *UTCB

	// SC is the scheduling context bound to this EC (nil for pure
	// portal handlers, which run on donated time).
	SC *SC

	// VCPU state, for ECVCPU.
	VCPU *VCPU

	// Run is the body of a thread EC. It is invoked when the EC is
	// dispatched after becoming runnable and runs until it blocks
	// (returns). Handler ECs bound to portals instead receive messages
	// through their portal's Handle function.
	Run func()

	// WaitSem, when set, is the semaphore this thread blocks on between
	// runs (the classic driver loop: down, handle, repeat).
	WaitSem *Semaphore

	// Runnable threads wait in the runqueue; blocked ones sit on a
	// semaphore or wait for their next wakeup.
	runnable  bool
	waitingOn *Semaphore

	// stats caches this EC's scheduler accounting handles (set when a
	// stat registry attaches; nil means accounting is off).
	stats *ecStats

	dead bool
}

// ObjectType implements cap.Object.
func (e *EC) ObjectType() cap.ObjType { return cap.ObjEC }

func (e *EC) String() string { return fmt.Sprintf("ec:%s", e.Name) }

// SC is a scheduling context: a priority coupled with a time quantum
// (§5.1). SCs are donated across portal calls so servers run on their
// client's time and priority.
type SC struct {
	Name     string
	Priority int       // higher value = more important
	Quantum  hw.Cycles // full timeslice
	Left     hw.Cycles // remaining slice
	EC       *EC       // execution context attached to this SC

	queued bool
	// enqueuedAt is the virtual time the SC last entered its runqueue,
	// for the scheduler-dispatch-latency trace metric.
	enqueuedAt hw.Cycles
}

// ObjectType implements cap.Object.
func (s *SC) ObjectType() cap.ObjType { return cap.ObjSC }

func (s *SC) String() string { return fmt.Sprintf("sc:%s(p%d)", s.Name, s.Priority) }

// Portal is a dedicated entry point into a protection domain (§5). For
// VM-exit portals, MTD selects the state transferred and ID is the
// event type; for service portals ID is a protocol tag.
type Portal struct {
	Name string
	PD   *PD // domain the portal leads into
	ID   uint64
	// UID is a kernel-wide unique identity used by trace events (ID is
	// a caller-chosen protocol tag and not unique).
	UID uint64
	MTD MTD

	// Handle is the handler EC's code: it receives the message UTCB,
	// mutates it in place as the reply, and returns. It runs on the
	// caller's donated scheduling context. A nil return ends the
	// communication normally; returning an error kills the caller
	// (used to model handler crashes in the attack scenarios).
	Handle func(msg *UTCB) error

	// AcceptBase/AcceptPages declare the receive window for memory
	// delegations riding on messages (§6: "the receiver declares a
	// region where it is willing to accept resource delegations").
	// A zero-sized window refuses all delegations.
	AcceptBase  uint32
	AcceptPages int

	Calls uint64

	dead bool
}

// ObjectType implements cap.Object.
func (p *Portal) ObjectType() cap.ObjType { return cap.ObjPortal }

func (p *Portal) String() string { return fmt.Sprintf("portal:%s", p.Name) }

// Semaphore synchronizes ECs and delivers hardware interrupts to
// user-level drivers (§5).
type Semaphore struct {
	Name string
	// ID is a small dense identity used by trace events.
	ID      int
	Counter int64
	waiters []*EC

	// Owner is the domain the semaphore was created in; interrupt
	// routes (AssignGSI) bound to it are torn down when that domain is
	// destroyed.
	Owner *PD

	Ups   uint64
	Downs uint64
}

// ObjectType implements cap.Object.
func (s *Semaphore) ObjectType() cap.ObjType { return cap.ObjSemaphore }

func (s *Semaphore) String() string { return fmt.Sprintf("sm:%s", s.Name) }

// VCPU is the guest-mode execution state of an ECVCPU: architectural
// registers, the interpreter binding, injection state and exit
// statistics.
type VCPU struct {
	State  x86.CPUState
	Interp *x86.Interp
	Env    GuestEnv

	// Index is the virtual CPU number within its VM; each vCPU has its
	// own set of VM-exit portals (§7.5).
	Index int

	// PendingVector is the interrupt the VMM wants injected; delivery
	// waits until the guest is interruptible, possibly via an
	// interrupt-window exit.
	PendingVector uint8
	PendingValid  bool
	WindowWanted  bool

	RecallPending bool

	// NoExitDelivery marks the paper's §8.1 "Direct" measurement
	// configuration: all intercepts disabled, host devices and
	// interrupts assigned to the guest, so the only remaining overhead
	// is the hardware nested-paging walk. Host interrupts are delivered
	// straight through the guest's IDT without a VM exit.
	NoExitDelivery bool

	// Exits counts VM exits by reason; Table 2 is printed from these.
	Exits [x86.NumExitReasons]uint64
	// InjectedIRQs counts virtual interrupt injections (Table 2's
	// "Injected vIRQ" row).
	InjectedIRQs uint64

	// vTLB state (only used in shadow-paging mode).
	Shadow *ShadowPT

	// profRead is the host-side pure memory reader the profiler's
	// stack walker uses for this vCPU (set when a profiler attaches;
	// never touches guest-visible state).
	profRead prof.MemReader

	// stats caches this vCPU's resource-accounting handles (set when a
	// stat registry attaches; nil means accounting is off).
	stats *vcpuStats
}

// TotalExits sums all exit reasons.
func (v *VCPU) TotalExits() uint64 {
	var t uint64
	for _, n := range v.Exits {
		t += n
	}
	return t
}

// GuestEnv is the hypervisor-provided execution environment for a
// vCPU: one of the native, nested-paging or vTLB MMU bindings.
type GuestEnv interface {
	x86.Env
	// FlushOnWorldSwitch is called on VM entry/exit when the hardware
	// lacks tagged TLBs (VPID): the whole TLB is flushed.
	FlushOnWorldSwitch()
}
