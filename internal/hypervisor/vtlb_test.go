package hypervisor

import (
	"encoding/binary"
	"testing"

	"nova/internal/hw"
	"nova/internal/x86"
)

// pagedGuestImage builds a protected-mode guest with paging: GDT at
// 0x800, IDT at 0x3000, page directory at 0x1000, page table at 0x2000
// (identity mapping the first 2 MiB), 16-bit boot stub at 0x7c00 and
// 32-bit kernel at 0x8000.
func pagedGuestImage(tv *testVM, kernel32 string) {
	// GDT: null, flat code 0x08, flat data 0x10.
	gdt := []byte{
		0, 0, 0, 0, 0, 0, 0, 0,
		0xff, 0xff, 0, 0, 0, 0x9a, 0xcf, 0,
		0xff, 0xff, 0, 0, 0, 0x92, 0xcf, 0,
	}
	tv.writeGuest(0x800, gdt)
	// IDT entry 14 (#PF) -> 0x9000, 32-bit interrupt gate, sel 0x08.
	idt := make([]byte, 16*8)
	binary.LittleEndian.PutUint16(idt[14*8:], 0x9000)
	binary.LittleEndian.PutUint16(idt[14*8+2:], 0x08)
	idt[14*8+5] = 0x8e
	tv.writeGuest(0x3000, idt)
	// Page directory: PDE[0] -> PT at 0x2000.
	pd := make([]byte, 4096)
	binary.LittleEndian.PutUint32(pd, 0x2000|uint32(x86.PTEPresent|x86.PTEWrite))
	tv.writeGuest(0x1000, pd)
	// Page table: identity map pages 0..511 (first 2 MiB).
	pt := make([]byte, 4096)
	for i := 0; i < 512; i++ {
		binary.LittleEndian.PutUint32(pt[i*4:], uint32(i)<<12|uint32(x86.PTEPresent|x86.PTEWrite))
	}
	tv.writeGuest(0x2000, pt)

	boot := x86.MustAssemble(`bits 16
org 0x7c00
	cli
	lgdt [gdtr_data]
	mov eax, cr0
	or eax, 1
	mov cr0, eax
	jmp dword 0x08:0x8000
gdtr_data:
	dw 23
	dd 0x800`)
	tv.writeGuest(0x7c00, boot)
	tv.writeGuest(0x8000, x86.MustAssemble("bits 32\norg 0x8000\n"+kernel32))
}

func TestGuestVTLBShadowPaging(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	tv := makeVM(t, k, ModeVTLB, 512, nil, 0, nil)
	pagedGuestImage(tv, `
	mov ax, 0x10
	mov ds, ax
	mov es, ax
	mov ss, ax
	mov esp, 0x7000
	lidt [idtr]
	mov eax, 0x1000
	mov cr3, eax
	mov eax, cr0
	or eax, 0x80000000
	mov cr0, eax
	; paging is on: touch a few mapped pages
	mov dword [0x100000 - 4], 0xabcd1234
	mov eax, [0x100000 - 4]
	mov [0x6000], eax
	invlpg [0x6000]
	; full TLB flush via CR3 reload
	mov eax, cr3
	mov cr3, eax
	mov ebx, [0x6000]
	hlt
idtr:
	dw 0x7f
	dd 0x3000`)
	tv.ec.VCPU.State.EIP = 0x7c00

	k.Run(k.Now() + 500_000_000)
	v := tv.ec.VCPU
	if !v.State.Halted {
		t.Fatalf("guest did not halt: %v; killed=%v", v.State.String(), k.Killed)
	}
	if v.State.GPR[x86.EBX] != 0xabcd1234 {
		t.Errorf("ebx = %#x, want 0xabcd1234", v.State.GPR[x86.EBX])
	}
	if k.Stats.VTLBFills == 0 {
		t.Error("no vTLB fills recorded")
	}
	if k.Stats.VTLBFlushes < 2 {
		t.Errorf("vTLB flushes = %d, want >= 2 (paging enable + CR3 reload)", k.Stats.VTLBFlushes)
	}
	if v.Exits[x86.ExitCRAccess] < 4 {
		t.Errorf("CR access exits = %d, want >= 4", v.Exits[x86.ExitCRAccess])
	}
	if v.Exits[x86.ExitINVLPG] != 1 {
		t.Errorf("INVLPG exits = %d, want 1", v.Exits[x86.ExitINVLPG])
	}
	// vTLB events were handled in the kernel, not the VMM: only the HLT
	// exit should have traversed a portal.
	if v.Exits[x86.ExitHLT] != 1 {
		t.Errorf("hlt exits = %d", v.Exits[x86.ExitHLT])
	}
}

func TestGuestVTLBDemandPaging(t *testing.T) {
	// The guest's #PF handler maps the missing page and returns; the
	// hypervisor must forward the fault (Table 2 "Guest Page Fault")
	// and then fill the shadow entry on retry.
	k := newTestKernel(t, Config{UseVPID: true})
	tv := makeVM(t, k, ModeVTLB, 1024, nil, 0, nil)
	pagedGuestImage(tv, `
	mov ax, 0x10
	mov ds, ax
	mov ss, ax
	mov esp, 0x7000
	lidt [idtr]
	mov eax, 0x1000
	mov cr3, eax
	mov eax, cr0
	or eax, 0x80000000
	mov cr0, eax
	; touch an unmapped page: PTE[768] (VA 0x300000) is empty
	mov eax, [0x300000]
	mov ebx, [0x6000]    ; marker set by the #PF handler
	hlt
idtr:
	dw 0x7f
	dd 0x3000`)
	// #PF handler at 0x9000: map VA 0x300000 -> GPA 0x300000 and retry.
	tv.writeGuest(0x9000, x86.MustAssemble(`bits 32
org 0x9000
	push eax
	mov dword [0x2c00], 0x00300003  ; PTE slot 768 of the PT at 0x2000
	mov dword [0x6000], 0x600d600d
	pop eax
	add esp, 4
	iretd`))
	// Extend the identity page table to cover pages 512..1023 except
	// 768, so the handler itself runs mapped.
	pt := make([]byte, 2048)
	for i := 512; i < 1024; i++ {
		if i == 768 {
			continue
		}
		binary.LittleEndian.PutUint32(pt[(i-512)*4:], uint32(i)<<12|3)
	}
	tv.writeGuest(0x2000+512*4, pt)
	tv.ec.VCPU.State.EIP = 0x7c00

	k.Run(k.Now() + 500_000_000)
	v := tv.ec.VCPU
	if !v.State.Halted {
		t.Fatalf("guest did not halt: %v; killed=%v", v.State.String(), k.Killed)
	}
	if k.Stats.GuestPageFault == 0 {
		t.Error("no guest page fault forwarded")
	}
	if v.State.GPR[x86.EBX] != 0x600d600d {
		t.Errorf("handler marker = %#x", v.State.GPR[x86.EBX])
	}
}

func TestVTLBFillsRespondToWorkingSet(t *testing.T) {
	// Touching N distinct pages must cause at least N vTLB fills.
	k := newTestKernel(t, Config{UseVPID: true})
	tv := makeVM(t, k, ModeVTLB, 512, nil, 0, nil)
	pagedGuestImage(tv, `
	mov ax, 0x10
	mov ds, ax
	mov ss, ax
	mov esp, 0x7000
	mov eax, 0x1000
	mov cr3, eax
	mov eax, cr0
	or eax, 0x80000000
	mov cr0, eax
	mov ecx, 64
	mov ebx, 0x40000
touch:
	mov [ebx], ecx
	add ebx, 4096
	dec ecx
	jnz touch
	hlt`)
	tv.ec.VCPU.State.EIP = 0x7c00
	k.Run(k.Now() + 500_000_000)
	if !tv.ec.VCPU.State.Halted {
		t.Fatalf("guest did not halt; killed=%v", k.Killed)
	}
	if k.Stats.VTLBFills < 64 {
		t.Errorf("vTLB fills = %d, want >= 64", k.Stats.VTLBFills)
	}
}

func TestBareMetalTimerInterrupts(t *testing.T) {
	plat := hw.MustNewPlatform(hw.Config{Model: hw.BLM, RAMSize: 16 << 20})
	// A tiny native OS: set up the PIC and PIT, count 5 timer ticks.
	os16 := x86.MustAssemble(`bits 16
org 0x7c00
	cli
	xor ax, ax
	mov ds, ax
	mov es, ax
	mov word [0x20*4], 0x5000  ; IVT vector 0x20 -> ISR
	mov word [0x20*4+2], 0
	; program the PIC: master base 0x20
	mov al, 0x11
	out 0x20, al
	mov al, 0x20
	out 0x21, al
	mov al, 0x04
	out 0x21, al
	mov al, 0x01
	out 0x21, al
	mov al, 0x00
	out 0x21, al
	; PIT channel 0, mode 2, ~1kHz
	mov al, 0x34
	out 0x43, al
	mov al, 0xa9
	out 0x40, al
	mov al, 0x04
	out 0x40, al
	sti
wait_loop:
	hlt
	mov ax, [0x6000]
	cmp ax, 5
	jnz wait_loop
	cli
	hlt`)
	isr := x86.MustAssemble(`bits 16
org 0x5000
	push ax
	mov ax, [0x6000]
	inc ax
	mov [0x6000], ax
	mov al, 0x20
	out 0x20, al  ; EOI
	pop ax
	iret`)
	plat.Mem.WriteBytes(0x7c00, os16)
	plat.Mem.WriteBytes(0x5000, isr)

	bm := NewBareMetal(plat, 0x7c00)
	if err := bm.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	ticks := plat.Mem.Read16(0x6000)
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if plat.PIT.Ticks < 5 {
		t.Errorf("PIT fired %d times", plat.PIT.Ticks)
	}
	plat.PIT.Stop()
}
