package hypervisor

import (
	"testing"

	"nova/internal/cap"
	"nova/internal/hw"
	"nova/internal/x86"
)

// spinVM builds a VM whose guest spins forever, for scheduler tests.
func spinVM(t *testing.T, k *Kernel, name string, basePage uint32, prio int, quantum hw.Cycles) *testVM {
	t.Helper()
	vmm, err := k.CreatePD(k.Root, nextSel(), "vmm-"+name, false)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := k.CreatePD(vmm, nextSel(), name, true)
	if err != nil {
		t.Fatal(err)
	}
	tv := &testVM{k: k, vmm: vmm, vm: vm, base: uint64(basePage) << 12}
	if err := k.DelegateMem(k.Root, basePage, vmm, basePage, 16, cap.RightsAll); err != nil {
		t.Fatal(err)
	}
	if err := k.DelegateMem(vmm, basePage, vm, 0, 16, cap.RightsAll); err != nil {
		t.Fatal(err)
	}
	code := x86.MustAssemble(`bits 16
org 0x7c00
spin:
	mov eax, [0x6000]
	inc eax
	mov [0x6000], eax
	jmp spin`)
	k.Plat.Mem.WriteBytes(hw.PhysAddr(tv.base+0x7c00), code)
	ec, err := k.CreateVCPU(vmm, nextSel(), vm, 0, name+"-vcpu", ModeEPT, 0)
	if err != nil {
		t.Fatal(err)
	}
	tv.ec = ec
	ec.VCPU.State.EIP = 0x7c00
	// A portal set that never fires (the spin loop is exit-free).
	for r := x86.ExitReason(0); int(r) < x86.NumExitReasons; r++ {
		sel := nextSel()
		if _, err := k.CreatePortal(vmm, sel, "p", uint64(r), 0, func(m *UTCB) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if err := vmm.Caps.Delegate(sel, vm.Caps, PortalSelector(r), cap.RightCall); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.CreateSC(vmm, nextSel(), ec, prio, quantum); err != nil {
		t.Fatal(err)
	}
	return tv
}

// TestFairSharingEqualPriority checks the §5.1 policy: two VMs with
// equal priority and quantum share the CPU round-robin, each making
// roughly half the progress (and §9's fair-resource-scheduling goal).
func TestFairSharingEqualPriority(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	a := spinVM(t, k, "vm-a", 0x200, 10, 100_000)
	b := spinVM(t, k, "vm-b", 0x400, 10, 100_000)

	k.Run(k.Now() + 4_000_000)

	pa := a.readGuest32(0x6000)
	pb := b.readGuest32(0x6000)
	if pa == 0 || pb == 0 {
		t.Fatalf("progress a=%d b=%d", pa, pb)
	}
	ratio := float64(pa) / float64(pb)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unfair split: a=%d b=%d (ratio %.2f)", pa, pb, ratio)
	}
}

// TestPriorityStarvesLower checks strict priority: the higher-priority
// VM monopolizes the CPU (§5.1: "no execution context can monopolize
// the CPU" applies within a priority level via quanta; across levels
// priority wins).
func TestPriorityStarvesLower(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	hi := spinVM(t, k, "vm-hi", 0x200, 50, 100_000)
	lo := spinVM(t, k, "vm-lo", 0x400, 5, 100_000)

	k.Run(k.Now() + 2_000_000)

	ph := hi.readGuest32(0x6000)
	pl := lo.readGuest32(0x6000)
	if ph == 0 {
		t.Fatal("high-priority VM made no progress")
	}
	if pl != 0 {
		t.Errorf("low-priority VM ran (%d iterations) while high was runnable", pl)
	}
}

// TestQuantumProportionalSharing checks that unequal quanta at equal
// priority split the CPU proportionally (the fair-scheduling direction
// the paper names as future work, §9).
func TestQuantumProportionalSharing(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	big := spinVM(t, k, "vm-big", 0x200, 10, 300_000)
	small := spinVM(t, k, "vm-small", 0x400, 10, 100_000)

	k.Run(k.Now() + 8_000_000)

	pb := big.readGuest32(0x6000)
	ps := small.readGuest32(0x6000)
	if pb == 0 || ps == 0 {
		t.Fatalf("progress big=%d small=%d", pb, ps)
	}
	ratio := float64(pb) / float64(ps)
	if ratio < 2.2 || ratio > 4.0 {
		t.Errorf("quantum split off: big=%d small=%d ratio=%.2f, want ~3", pb, ps, ratio)
	}
}

// TestMemoryRevocationUnderExecution revokes a running guest's memory:
// the next access becomes an EPT violation delivered to the VMM —
// revocation takes effect even against an executing VM (§6).
func TestMemoryRevocationUnderExecution(t *testing.T) {
	k := newTestKernel(t, Config{UseVPID: true})
	violations := 0
	tv := makeVM(t, k, ModeEPT, 16, x86.MustAssemble(`bits 16
org 0x7c00
spin:
	mov eax, [0x6000]
	inc eax
	mov [0x6000], eax
	jmp spin`), 0x7c00, map[x86.ExitReason]func(*testVM, *UTCB) error{
		x86.ExitEPTViolation: func(tv *testVM, m *UTCB) error {
			violations++
			m.State.Halted = true // stop the guest; the VMM would re-map
			return nil
		},
	})
	k.Run(k.Now() + 300_000)
	if tv.readGuest32(0x6000) == 0 {
		t.Fatal("guest never ran")
	}
	// The VMM revokes the guest's memory (e.g., reclaiming it).
	if _, err := k.RevokeMem(tv.vmm, 0x200, 16, false); err != nil {
		t.Fatal(err)
	}
	k.Run(k.Now() + 300_000)
	if violations == 0 {
		t.Fatal("no EPT violation after revocation")
	}
	if !tv.ec.VCPU.State.Halted {
		t.Error("guest kept running on revoked memory")
	}
}
