package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Globalstate classifies every package-level variable in the
// sim-critical packages. NOVA's isolation argument — and the planned
// parallel multi-VM engine — require that all mutable per-machine state
// live in the machine's own object graph; a package-level var that is
// written after initialization silently couples every Machine instance
// in the process. Each var must therefore be one of:
//
//   - an init-only table: provably never written after package
//     initialization (writes in init functions, or in helpers reachable
//     only from init, are allowed), including writes through aliases
//     and through slices/maps handed out by accessor functions — the
//     write-effect summaries (effects.go) track those;
//   - a constant in waiting: a never-written var of basic type is
//     flagged so it becomes a const (a const cannot be aliased or
//     assigned, making the isolation argument structural);
//   - audited shared state: annotated `// shared-ok: <why>` on its
//     declaration. Everything else written at runtime is a finding.
var Globalstate = &Analyzer{
	Name: "globalstate",
	Doc:  "package-level vars in sim-critical packages must be init-only tables, consts, or annotated // shared-ok:",
	run:  runGlobalstate,
}

func runGlobalstate(pass *Pass) {
	eff := pass.Prog.Effects()
	cg := pass.Prog.CallGraph()
	initOnly := initOnlyFuncs(cg)

	// writersOf collects, program-wide, the non-init functions that
	// store directly into each global (effects attribute alias writes to
	// the function containing the store).
	writersOf := make(map[*types.Var][]*EffectSummary)
	for _, node := range cg.Ordered {
		s := eff.Summary(node.Fn)
		if s == nil {
			continue
		}
		for r, w := range s.Writes {
			if r.Kind != RegionGlobal || !w.Direct || initOnly[node.Fn] {
				continue
			}
			writersOf[r.Global] = append(writersOf[r.Global], s)
		}
	}

	for _, pkg := range pass.Targets {
		for _, v := range packageLevelVars(pkg) {
			writers := writersOf[v]
			sort.Slice(writers, func(i, j int) bool {
				return FuncDisplayName(writers[i].Fn) < FuncDisplayName(writers[j].Fn)
			})
			_, vs := varSpecFor(pkg, v)
			pos := v.Pos()
			if vs != nil {
				pos = vs.Pos()
			}
			if len(writers) > 0 {
				if varAnnotated(pkg, v, markSharedOK) {
					continue
				}
				names := make([]string, 0, len(writers))
				for _, w := range writers {
					names = append(names, FuncDisplayName(w.Fn))
				}
				pass.Reportf(pos, "package-level var %s is written after init (in %s); mutable globals couple every machine in the process — move it into per-machine state or annotate // shared-ok: <why>", v.Name(), strings.Join(dedupStrings(names), ", "))
				continue
			}
			// Never written anywhere (not even init): a basic-typed var
			// is a const in waiting.
			if isBasicKind(v.Type()) && !varAnnotated(pkg, v, markSharedOK) {
				pass.Reportf(pos, "package-level var %s is never written; declare it const so machine isolation is structural", v.Name())
			}
		}
	}
}

// packageLevelVars lists pkg's package-scope variables in declaration
// order.
func packageLevelVars(pkg *Package) []*types.Var {
	var out []*types.Var
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok && name.Name != "_" {
						out = append(out, v)
					}
				}
			}
		}
	}
	return out
}

// initOnlyFuncs computes the functions that can only execute during
// package initialization: the init functions themselves plus unexported
// functions all of whose (transitive) callers are init-only. Exported
// functions are never init-only — the loader does not see test files or
// external callers, so reachability from outside must be assumed.
func initOnlyFuncs(cg *CallGraph) map[*types.Func]bool {
	callers := make(map[*types.Func][]*types.Func)
	for _, node := range cg.Ordered {
		for _, e := range node.Out {
			callers[e.Callee] = append(callers[e.Callee], e.Caller)
		}
	}
	initOnly := make(map[*types.Func]bool)
	for _, node := range cg.Ordered {
		if isInitFunc(node.Fn) {
			initOnly[node.Fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range cg.Ordered {
			fn := node.Fn
			if initOnly[fn] || fn.Exported() || isInitFunc(fn) {
				continue
			}
			cs := callers[fn]
			if len(cs) == 0 {
				continue
			}
			all := true
			for _, c := range cs {
				if !initOnly[c] {
					all = false
					break
				}
			}
			if all {
				initOnly[fn] = true
				changed = true
			}
		}
	}
	return initOnly
}

// isInitFunc reports whether fn is a package init function (not a
// method, named init at package scope).
func isInitFunc(fn *types.Func) bool {
	if fn.Name() != "init" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isBasicKind reports whether t's underlying type is a basic kind
// (numeric, string, bool) — the types Go allows as constants.
func isBasicKind(t types.Type) bool {
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

func dedupStrings(in []string) []string {
	var out []string
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
