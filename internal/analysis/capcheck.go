package analysis

import (
	"go/ast"
	"go/types"
)

// Capcheck enforces the hypercall discipline of §6: the kernel trusts
// nothing a user domain hands it. Concretely, every exported hypercall
// method on Kernel — an exported method whose first parameter is the
// calling protection domain (*PD) and whose results include an error —
// must:
//
//  1. begin with the syscallEnter guard (`if err :=
//     k.syscallEnter(caller); err != nil { return ... }`), which both
//     charges the user→kernel transition and rejects VM domains, and
//  2. never discard the error of a capability-space validation
//     (Lookup/LookupTyped/Insert/Delegate/Revoke): a discarded lookup
//     error means an object is dereferenced without the selector having
//     been validated against the caller's capability space.
//
// Methods without an error result (e.g. the async semaphore fast path,
// which charges inline and cannot propagate) are outside the rule.
var Capcheck = &Analyzer{
	Name: "capcheck",
	Doc:  "hypercalls must guard with syscallEnter and never discard capability validation errors",
	run:  runCapcheck,
}

// capSpaceOps are the capability/resource-space operations whose error
// results constitute selector validation.
var capSpaceOps = map[string]bool{
	"Lookup": true, "LookupTyped": true, "LookupObj": true,
	"Insert": true, "Delegate": true, "Revoke": true, "Destroy": true,
}

func runCapcheck(pass *Pass) {
	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !isHypercallMethod(pkg, fd) {
					continue
				}
				if !startsWithSyscallEnterGuard(fd) {
					pass.Reportf(fd.Pos(), "hypercall %s.%s does not begin with the syscallEnter(caller) guard", recvTypeName(fd), fd.Name.Name)
				}
				checkDiscardedValidation(pass, pkg, fd)
			}
		}
	}
}

// isHypercallMethod reports whether fd is an exported method on a type
// named Kernel whose first parameter is *PD and whose results include
// an error — the shape of the CreatePD/DelegateCap/Recall family.
func isHypercallMethod(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || !fd.Name.IsExported() || recvTypeName(fd) != "Kernel" {
		return false
	}
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return false
	}
	first := fd.Type.Params.List[0].Type
	star, ok := first.(*ast.StarExpr)
	if !ok {
		return false
	}
	id, ok := star.X.(*ast.Ident)
	if !ok || id.Name != "PD" {
		return false
	}
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		if tv, ok := pkg.Info.Types[r.Type]; ok && isErrorType(tv.Type) {
			return true
		}
	}
	return false
}

// recvTypeName returns the name of a method's receiver type.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// startsWithSyscallEnterGuard reports whether the method's first
// statement is `if err := recv.syscallEnter(caller); err != nil {...}`
// (with caller being the method's first parameter).
func startsWithSyscallEnterGuard(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init == nil {
		return false
	}
	asg, ok := ifs.Init.(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "syscallEnter" {
		return false
	}
	// The guard must pass the hypercall's caller, not some other PD.
	callerName := firstParamName(fd)
	if callerName == "" || len(call.Args) != 1 {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && arg.Name == callerName
}

func firstParamName(fd *ast.FuncDecl) string {
	p := fd.Type.Params.List[0]
	if len(p.Names) == 0 {
		return ""
	}
	return p.Names[0].Name
}

// checkDiscardedValidation flags capability-space operations whose
// error result is dropped on the floor inside a hypercall body.
func checkDiscardedValidation(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !capSpaceOps[sel.Sel.Name] {
			return true
		}
		callee, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if isErrorType(sig.Results().At(i).Type()) {
				pass.Reportf(call.Pos(), "hypercall %s.%s discards the error of capability validation %s (selector must be validated before object use)", recvTypeName(fd), fd.Name.Name, sel.Sel.Name)
				break
			}
		}
		return true
	})
}
