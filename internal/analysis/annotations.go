package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The shared-state analyzers communicate with the code through four
// comment annotations, each carrying a mandatory rationale:
//
//	// shared-ok: <why>     on a package-level var declaration — this
//	                        mutable global is audited shared state
//	                        (globalstate and isolation accept it);
//	// shared: <why>        on a write site — this store is the audited
//	                        cross-machine rendezvous (the simulated
//	                        NIC/disk server channel); isolation accepts
//	                        the single annotated line;
//	// epoch-barrier: <why> on a function declaration — this function is
//	                        part of the audited parallel-engine gate;
//	                        concurrency primitives are allowed inside.
//	// caphold: <why>; teardown=<Func>
//	                        on a store site that stashes a looked-up
//	                        kernel object into state outliving the
//	                        hypercall (capflow's lifetime rule). The
//	                        rationale explains why the kernel must hold
//	                        the reference; teardown names the function
//	                        whose destruction path releases it, and
//	                        capflow checks that function is a destruction
//	                        root (DestroyPD, or Space.Destroy/Revoke) or
//	                        reachable from one.
//
// The markers are substrings, so both `// shared-ok: reason` and a
// longer sentence containing the marker work; an annotation without a
// rationale is itself a finding (annotations are load-bearing audit
// records, not switches).
const (
	markSharedOK     = "shared-ok:"
	markSharedWrite  = "shared:"
	markEpochBarrier = "epoch-barrier:"
	markCapHold      = "caphold:"
)

// annotLines caches, per file and marker, the line numbers covered by a
// matching comment (the comment's own lines, so both trailing and
// line-above forms attach to the adjacent statement).
type annotLines struct {
	fset  *token.FileSet
	cache map[*ast.File]map[string]map[int]bool
}

func newAnnotLines(fset *token.FileSet) *annotLines {
	return &annotLines{fset: fset, cache: make(map[*ast.File]map[string]map[int]bool)}
}

func (a *annotLines) lines(f *ast.File, marker string) map[int]bool {
	byMarker, ok := a.cache[f]
	if !ok {
		byMarker = make(map[string]map[int]bool)
		a.cache[f] = byMarker
	}
	if lines, ok := byMarker[marker]; ok {
		return lines
	}
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		if !containsMarker(cg.Text(), marker) {
			continue
		}
		start := a.fset.Position(cg.Pos()).Line
		end := a.fset.Position(cg.End()).Line
		for l := start; l <= end; l++ {
			lines[l] = true
		}
	}
	byMarker[marker] = lines
	return lines
}

// covers reports whether pos's line (or the line above it) carries the
// marker in its file.
func (a *annotLines) covers(pkg *Package, pos token.Pos, marker string) bool {
	f := fileOf(pkg, pos)
	if f == nil {
		return false
	}
	lines := a.lines(f, marker)
	line := a.fset.Position(pos).Line
	return lines[line] || lines[line-1]
}

// containsMarker matches the marker anywhere in a comment's text. The
// three markers are mutually non-overlapping substrings ("shared:"
// requires the colon directly after "shared", which "shared-ok:" does
// not have), so plain containment is exact.
func containsMarker(text, marker string) bool {
	return strings.Contains(text, marker)
}

// varSpecFor finds the ValueSpec and enclosing GenDecl declaring the
// package-level var v, or nils.
func varSpecFor(pkg *Package, v *types.Var) (*ast.GenDecl, *ast.ValueSpec) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if pkg.Info.Defs[name] == v {
						return gd, vs
					}
				}
			}
		}
	}
	return nil, nil
}

// varAnnotated reports whether v's declaration carries the marker, in
// the spec's doc comment, its trailing comment, or the var block's doc.
func varAnnotated(pkg *Package, v *types.Var, marker string) bool {
	gd, vs := varSpecFor(pkg, v)
	if vs == nil {
		return false
	}
	for _, cg := range []*ast.CommentGroup{vs.Doc, vs.Comment, gd.Doc} {
		if cg != nil && containsMarker(cg.Text(), marker) {
			return true
		}
	}
	return false
}

// funcAnnotated reports whether fd's doc comment carries the marker.
func funcAnnotated(fd *ast.FuncDecl, marker string) bool {
	return fd.Doc != nil && containsMarker(fd.Doc.Text(), marker)
}
