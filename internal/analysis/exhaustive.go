package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive guards the dispatch points that grow with the instruction
// and hypercall surface: a switch over an enum-like named integer type
// (x86.ExitReason, hypercall numbers, EC kinds) must either list every
// declared constant of that type or carry a `default` arm. Without
// this, adding an exit reason silently falls through existing switches
// — the VM-exit equivalent of an unhandled interrupt.
//
// A type is enum-like when it is a named (defined) type with an integer
// underlying type, declared in an analyzed package, with at least two
// package-level constants of exactly that type. Case coverage is
// computed by constant *value*, so aliases (two names for one value)
// count as covering each other.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over enum-like named types must cover all constants or have a default arm",
	run:  runExhaustive,
}

// enumInfo is the declared constant set of one enum-like type.
type enumInfo struct {
	names  []string                  // declaration order
	values map[string]constant.Value // name -> value
}

func runExhaustive(pass *Pass) {
	enums := collectEnums(pass.Prog)
	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkSwitch(pass, pkg, enums, sw)
				return true
			})
		}
	}
}

// collectEnums finds every enum-like named type in the program and its
// declared constants, in declaration (source) order.
func collectEnums(prog *Program) map[*types.Named]*enumInfo {
	enums := make(map[*types.Named]*enumInfo)
	for _, pkg := range prog.Pkgs {
		// Walk const declarations in source order so missing-constant
		// lists in diagnostics read like the type's declaration.
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						c, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok {
							continue
						}
						named, ok := c.Type().(*types.Named)
						if !ok || !isIntegerType(named) {
							continue
						}
						info := enums[named]
						if info == nil {
							info = &enumInfo{values: make(map[string]constant.Value)}
							enums[named] = info
						}
						info.names = append(info.names, c.Name())
						info.values[c.Name()] = c.Val()
					}
				}
			}
		}
	}
	// A single constant of a type is a sentinel, not an enum.
	for named, info := range enums {
		if len(info.names) < 2 {
			delete(enums, named)
		}
	}
	return enums
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func checkSwitch(pass *Pass, pkg *Package, enums map[*types.Named]*enumInfo, sw *ast.SwitchStmt) {
	tv, ok := pkg.Info.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	info, ok := enums[named]
	if !ok {
		return
	}
	covered := make(map[string]bool) // by exact constant string
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default arm: always exhaustive
		}
		for _, e := range cc.List {
			etv, ok := pkg.Info.Types[e]
			if !ok || etv.Value == nil {
				// A non-constant case (a variable) can cover anything;
				// be conservative and treat the switch as handled.
				return
			}
			covered[etv.Value.ExactString()] = true
		}
	}
	var missing []string
	seen := make(map[string]bool)
	for _, name := range info.names {
		v := info.values[name].ExactString()
		if covered[v] || seen[v] {
			continue
		}
		seen[v] = true
		missing = append(missing, name)
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(), "switch over %s is not exhaustive and has no default arm: missing %s",
		named.Obj().Name(), strings.Join(missing, ", "))
}
