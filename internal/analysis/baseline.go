package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineFile is the checked-in suppression list at the repository
// root. Each line is one pre-existing finding the builder chose not to
// fix when its analyzer was introduced:
//
//	analyzer<TAB>relative/file.go<TAB>message
//
// Line numbers are deliberately omitted so unrelated edits above a
// finding do not invalidate the entry. The file is a ratchet: nova-vet
// warns about stale entries (fixed findings) so they get deleted, and
// new findings are never added here without review — fix them instead.
const BaselineFile = "nova-vet.baseline"

// BaselineKey renders the stable identity of a diagnostic used for
// baseline matching. Paths are made relative to root and slash-
// normalized so baselines are portable across checkouts.
func BaselineKey(root string, d Diagnostic) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return d.Analyzer + "\t" + file + "\t" + d.Message
}

// LoadBaseline reads a baseline file into a key set. A missing file is
// an empty baseline, not an error.
func LoadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}, nil
		}
		return nil, err
	}
	defer f.Close()
	keys := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("analysis: malformed baseline line (want analyzer<TAB>file<TAB>message): %q", line)
		}
		keys[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return keys, nil
}

// ApplyBaseline splits diagnostics into kept (new findings) and
// suppressed, and reports baseline entries that matched nothing (stale
// — the finding was fixed and the entry should be deleted).
func ApplyBaseline(root string, ds []Diagnostic, baseline map[string]bool) (kept []Diagnostic, suppressed int, stale []string) {
	used := make(map[string]bool)
	for _, d := range ds {
		key := BaselineKey(root, d)
		if baseline[key] {
			used[key] = true
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	for key := range baseline {
		if !used[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	return kept, suppressed, stale
}

// FormatBaseline renders diagnostics as baseline file content (sorted,
// deduplicated, with an explanatory header).
func FormatBaseline(root string, ds []Diagnostic) string {
	seen := make(map[string]bool)
	var keys []string
	for _, d := range ds {
		k := BaselineKey(root, d)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# nova-vet baseline: pre-existing findings accepted when an analyzer was\n")
	b.WriteString("# introduced. Format: analyzer<TAB>file<TAB>message (no line numbers, so\n")
	b.WriteString("# unrelated edits don't invalidate entries). This file only shrinks:\n")
	b.WriteString("# fix a finding, delete its line. Regenerate with: nova-vet -write-baseline ./...\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("\n")
	}
	return b.String()
}
