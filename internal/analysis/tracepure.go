package analysis

import (
	"go/ast"
	"go/types"
)

// Tracepure enforces the observability layer's zero-perturbation
// contract (DESIGN.md §observability): recording a trace event or a
// profile sample must be invisible to the simulation. Three rules:
//
//  1. Trace-layer functions — everything declared in a package named
//     "trace", "prof", "stat" or "span", plus methods on the trace types
//     (Tracer, Ring, Histogram, CounterSet, Profiler, Buf, the
//     metric registry's Registry/Metric/Counter/Gauge, and the
//     interpreter's host-side DecodeCache/Superblock acceleration
//     state) wherever they are declared — must not reach a
//     cycle-charge sink (Clock.Charge,
//     Kernel.charge/ChargeUser), a platform mutator (PortWrite,
//     MMIOWrite, ...), or a wall-clock read (time.Now, ...).
//     Reachability runs over the shared whole-program call graph, so
//     indirection doesn't hide a violation.
//
//  2. Emission call sites: arguments of a call to a trace-type method
//     must not contain nested calls that charge, mutate platform
//     state, or read the wall clock — `tr.Emit(k.Now(), ...)` is the
//     idiom; `tr.Emit(doWorkAndCharge(), ...)` would make the traced
//     run diverge from the untraced one.
//
//  3. Trace-layer functions must not range over a map: encoded traces
//     and profiles are compared byte-for-byte across runs, and map
//     iteration order would make the encoding nondeterministic. Maps
//     are fine as lookup indexes; emission must walk sorted slices.
//
// The analyzer is self-limiting (it only fires on trace-shaped code),
// so the suite runs it over every package.
var Tracepure = &Analyzer{
	Name: "tracepure",
	Doc:  "trace emission must not charge cycles, mutate guest-visible state, or read the wall clock",
	run:  runTracepure,
}

// traceTypeNames are the receiver types that make up the trace layer,
// matched by name so fixture packages can model them.
var traceTypeNames = map[string]bool{
	"Tracer": true, "Ring": true, "Histogram": true, "CounterSet": true,
	"Profiler": true, "Buf": true,
	// internal/stat's registry layer rides the same contract: recording
	// a metric must never charge, mutate, or read the wall clock.
	"Registry": true, "Metric": true, "Counter": true, "Gauge": true,
	// The decoded-instruction cache and its superblock layer are
	// host-side acceleration state: filling, byte-verifying, or
	// invalidating them must be invisible to the simulation, exactly
	// like emitting a trace record.
	"DecodeCache": true, "Superblock": true,
	// internal/span's request recorder rides the same contract: opening,
	// transitioning, or closing a span must never charge, mutate, or
	// read the wall clock, and its encoding must not range over a map.
	"Recorder": true,
}

func runTracepure(pass *Pass) {
	cg := pass.Prog.CallGraph()
	reachCharge := cg.ReachesAny(isChargeSink)
	reachMutate := cg.ReachesAny(isPlatformMutatorFunc)
	reachWall := cg.ReachesAny(isWallClockFunc)

	describe := func(fn *types.Func) string {
		switch {
		case reachCharge[fn] || isChargeSink(fn):
			return "charges simulated cycles"
		case reachMutate[fn] || isPlatformMutatorFunc(fn):
			return "mutates guest-visible platform state"
		case reachWall[fn] || isWallClockFunc(fn):
			return "reads the wall clock"
		}
		return ""
	}

	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || !isTraceLayerFunc(pkg, fn) {
					continue
				}
				if why := describe(fn); why != "" {
					pass.Reportf(fd.Pos(), "trace-layer function %s %s (trace emission must be zero-perturbation)", fd.Name.Name, why)
				}
				reportMapRanges(pass, pkg, fd)
			}

			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isTraceMethodCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						inner, ok := m.(*ast.CallExpr)
						if !ok {
							return true
						}
						for _, callee := range cg.CalleesAt(inner) {
							if why := describe(callee); why != "" {
								pass.Reportf(inner.Pos(), "argument of trace emission calls %s, which %s (hoist it before the emission)", callee.Name(), why)
							}
						}
						return true
					})
				}
				return true
			})
		}
	}
}

// reportMapRanges flags rule 3: a `for range` over a map anywhere in
// the body of a trace-layer function.
func reportMapRanges(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			pass.Reportf(rs.Pos(), "trace-layer function %s ranges over a map (iteration order makes the encoding nondeterministic; walk sorted slices)", fd.Name.Name)
		}
		return true
	})
}

// isTraceLayerFunc reports whether fn belongs to the trace layer: any
// function in a package named "trace", "prof", "stat" or "span", or a
// method on one of the trace types regardless of package.
func isTraceLayerFunc(pkg *Package, fn *types.Func) bool {
	switch pkg.Types.Name() {
	case "trace", "prof", "stat", "span":
		return true
	}
	return recvIsTraceType(fn)
}

// recvIsTraceType reports whether fn is a method on one of the
// traceTypeNames receivers.
func recvIsTraceType(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && traceTypeNames[named.Obj().Name()]
}

// isTraceMethodCall reports whether the call invokes a method on a
// trace type (an emission or metrics-recording site).
func isTraceMethodCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && recvIsTraceType(fn)
}

// isPlatformMutatorFunc reports whether fn is a method carrying one of
// the platform-mutator names (the same name set chargecheck uses).
func isPlatformMutatorFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return platformMutators[fn.Name()]
}

// isWallClockFunc reports whether fn is one of the package-level time
// functions that observe host wall-clock time.
func isWallClockFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()]
}
