package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the shared call-graph engine every interprocedural
// analyzer builds on. The graph is computed once per loaded Program
// (lazily, cached) so the whole nova-vet suite pays for one traversal
// of the syntax trees regardless of how many analyzers consume it.
//
// Edges are resolved conservatively in three ways:
//
//   - static calls: `f(x)` and `recv.M(x)` resolve through the type
//     checker's Uses map to the concrete *types.Func;
//   - method/function values: `h := m.handler` (or storing a method in
//     a struct field, as the kernel does with EC.Run) adds an edge from
//     the enclosing function to the referenced function, on the theory
//     that a function whose value escapes may be called;
//   - interface calls: a call through an interface method fans out to
//     every concrete method in the program whose receiver type
//     implements the interface.
//
// The result over-approximates the dynamic call graph, which is the
// right direction for both consumers: chargecheck wants "some charge
// path exists" (extra edges can only make it pass where a human would
// agree a path exists), and taint wants "could guest data reach this
// sink" (extra edges only add candidate flows, which the verifier then
// reads).

// CallEdge is one resolved call (or function-value reference) from
// Caller to Callee. Site is nil for value references.
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
	Site   *ast.CallExpr
}

// FuncNode is a function in the call graph together with its syntax.
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	Out  []CallEdge
}

// CallGraph is the program-wide graph over declared functions.
type CallGraph struct {
	prog  *Program
	Nodes map[*types.Func]*FuncNode

	// Ordered lists the nodes in source-position order, so analyzers
	// that iterate the whole graph produce deterministic output.
	Ordered []*FuncNode

	// sites maps every call expression to the concrete functions it may
	// invoke (one for static calls, several for interface calls).
	sites map[*ast.CallExpr][]*types.Func

	// impls caches interface-method resolution.
	impls map[*types.Func][]*types.Func

	// named is every non-interface named type declared in the program,
	// used to resolve interface calls to their implementations.
	named []*types.Named
}

// CallGraph returns the program's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

// Node returns the graph node for fn, or nil if fn has no body in the
// program (stdlib, interface methods).
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.Nodes[fn] }

// CalleesAt returns the concrete functions the call expression may
// invoke: one for a static call, all implementations for an interface
// call, nothing for builtins and conversions.
func (g *CallGraph) CalleesAt(call *ast.CallExpr) []*types.Func { return g.sites[call] }

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		prog:  prog,
		Nodes: make(map[*types.Func]*FuncNode),
		sites: make(map[*ast.CallExpr][]*types.Func),
		impls: make(map[*types.Func][]*types.Func),
	}
	// Pass 0: collect declared functions and named types.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						g.Nodes[fn] = &FuncNode{Fn: fn, Pkg: pkg, Decl: fd}
					}
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.named = append(g.named, named)
		}
	}
	for _, node := range g.Nodes {
		g.Ordered = append(g.Ordered, node)
	}
	sort.Slice(g.Ordered, func(i, j int) bool {
		a := prog.Fset.Position(g.Ordered[i].Decl.Pos())
		b := prog.Fset.Position(g.Ordered[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	// Pass 1: edges.
	for _, node := range g.Ordered {
		g.collectEdges(node)
	}
	return g
}

// collectEdges walks one function body recording call and value edges.
func (g *CallGraph) collectEdges(node *FuncNode) {
	info := node.Pkg.Info
	// Identifiers appearing in call position; references outside this
	// set are function values.
	callFuns := make(map[*ast.Ident]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		callFuns[id] = true
		callee, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		for _, c := range g.resolve(callee) {
			g.addEdge(node, c, call.Pos(), call)
			g.sites[call] = append(g.sites[call], c)
		}
		return true
	})
	// Function/method values: any further reference to a *types.Func.
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callFuns[id] {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		for _, c := range g.resolve(fn) {
			g.addEdge(node, c, id.Pos(), nil)
		}
		return true
	})
}

func (g *CallGraph) addEdge(node *FuncNode, callee *types.Func, pos token.Pos, site *ast.CallExpr) {
	node.Out = append(node.Out, CallEdge{Caller: node.Fn, Callee: callee, Pos: pos, Site: site})
}

// resolve expands an interface method into its concrete implementations
// (plus nothing for the abstract method itself); a concrete function
// resolves to itself.
func (g *CallGraph) resolve(fn *types.Func) []*types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return []*types.Func{fn}
	}
	recv := sig.Recv()
	if recv == nil || !types.IsInterface(recv.Type()) {
		return []*types.Func{fn}
	}
	if cached, ok := g.impls[fn]; ok {
		return cached
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range g.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, fn.Pkg(), fn.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if msig, ok := m.Type().(*types.Signature); ok && msig.Recv() != nil && types.IsInterface(msig.Recv().Type()) {
			continue // embedded interface: still abstract
		}
		out = append(out, m)
	}
	g.impls[fn] = out
	return out
}

// ReachesAny computes, by fixpoint over the edges, the set of functions
// from which some function satisfying pred is reachable (functions
// satisfying pred are themselves included).
func (g *CallGraph) ReachesAny(pred func(*types.Func) bool) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	for fn, node := range g.Nodes {
		if pred(fn) {
			reach[fn] = true
		}
		for _, e := range node.Out {
			if pred(e.Callee) {
				reach[fn] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range g.Nodes {
			if reach[fn] {
				continue
			}
			for _, e := range node.Out {
				if reach[e.Callee] {
					reach[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// FuncDisplayName renders a function as package.(*Recv).Name or
// package.Name for diagnostics, with the module prefix trimmed.
func FuncDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		path = strings.TrimPrefix(path, ModulePath+"/internal/")
		path = strings.TrimPrefix(path, ModulePath+"/")
		if i := strings.LastIndex(path, "/"); i >= 0 {
			path = path[i+1:]
		}
		name = path + "." + name
	}
	return name
}
