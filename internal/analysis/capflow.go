package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"nova/internal/cap"
)

// Capflow is the interprocedural capability-rights and object-lifetime
// verifier of the hypercall layer. Where capcheck proves every hypercall
// *performs* a validation, capflow proves the validation is the *right*
// one: it tracks each looked-up kernel object through the hypercall's
// dataflow (into callees, through struct fields and containers) and
// checks three rules against the declared operation→rights contract in
// caprights.go:
//
//  1. sufficiency — every operation the hypercall performs on the
//     object downstream (state writes, invocations, retained
//     references) is covered by the rights the lookup demanded;
//  2. least privilege — rights the lookup demanded but no downstream
//     operation exercises are flagged, so the hypercall interface
//     never over-requests authority;
//  3. lifetime — a looked-up (or hypercall-created) object reference
//     may not be stored into state that outlives the hypercall unless
//     the store carries a `// caphold: <why>; teardown=<Func>`
//     annotation whose teardown function is a destruction root
//     (Kernel.DestroyPD, Space/MemSpace/IOSpace Destroy/Revoke) or
//     reachable from one — i.e. some destruction path provably
//     releases the reference.
//
// The analyzer also cross-checks the HypercallRights table in both
// directions (every hypercall has a row; every row corresponds to a
// validation the body performs) and flags direct capability-space
// mutations outside the Kernel/cap layer as hypercall bypasses.
//
// Dataflow model, shared with the effects engine's philosophy: values
// are tracked at levels — direct (the object itself), capResult (a
// Capability struct whose .Obj is the object), carrier (a struct or
// slice holding the object), graph (storage merely reachable from the
// object) — and call sites compose per-function flow summaries
// (escapes, invocations, result flows) built on the shared call graph,
// while state writes are mapped through the shared write-effect
// summaries. Function literals are skipped (closures are not tracked);
// cap-package functions and Space/MemSpace/IOSpace methods record no
// escapes (the mapping database is the revocation-tracked holder of
// capability references, not a lifetime leak).
var Capflow = &Analyzer{
	Name: "capflow",
	Doc:  "hypercalls must exercise exactly the rights they demand and may not retain looked-up objects without an audited teardown",
	run:  runCapflow,
}

// trackLevel orders how directly a value exposes a tracked object.
// Composition takes the minimum: reading a field of a carrier yields at
// most graph-level reachability, never the object itself.
type trackLevel uint8

const (
	lvlNone trackLevel = iota
	// lvlGraph: storage reachable from the object (sm.waiters, ec.VCPU).
	lvlGraph
	// lvlCarrier: a struct/slice/map holding a reference to the object.
	lvlCarrier
	// lvlCapResult: a cap.Capability whose Obj field is the object.
	lvlCapResult
	// lvlDirect: the object reference itself.
	lvlDirect
)

func minLvl(a, b trackLevel) trackLevel {
	if a < b {
		return a
	}
	return b
}

// flowInput identifies a function's receiver or parameter in a flow
// summary; parameters are indexed like effects regions (receiver
// excluded, unnamed params counted).
type flowInput struct {
	recv  bool
	param int
}

// capRoot is one tracked origin inside a hypercall frame: a capability
// lookup or an object creation.
type capRoot struct {
	pos       token.Pos
	param     int   // validated param index (caller = 0); -1 selector lookup; -2 creation
	objType   int64 // folded cap.ObjType value; -1 unknown
	need      cap.Rights
	needKnown bool
	creation  bool
	bare      bool // bare Lookup(sel): lifetime rule only, no table row

	ops     []capOp
	escapes []capEscape
	escaped bool
}

// capOp is one operation the hypercall performs on a root's object.
type capOp struct {
	kind opKind
	pos  token.Pos
	path []string // call chain to the op, innermost first; nil = in the hypercall body
}

// capEscape is one store of a root's reference into outliving state.
type capEscape struct {
	pos  token.Pos
	path []string
	dest string
}

// valSet maps tracked origins (*capRoot in hypercall frames, flowInput
// in summary frames) to the level at which a value exposes them.
type valSet map[any]trackLevel

func (vs valSet) add(key any, l trackLevel) bool {
	if l == lvlNone {
		return false
	}
	if cur, ok := vs[key]; ok && cur >= l {
		return false
	}
	vs[key] = l
	return true
}

func (vs valSet) join(other valSet) bool {
	changed := false
	for k, l := range other {
		if vs.add(k, l) {
			changed = true
		}
	}
	return changed
}

// flow summaries -----------------------------------------------------------

type escTargetKind uint8

const (
	escRecv escTargetKind = iota
	escGlobal
	escParam
)

// flowEsc: input `in` is stored into state that outlives the function.
type flowEsc struct {
	in     flowInput
	tkind  escTargetKind
	tparam int
	pos    token.Pos
	path   []string
}

// flowInv: the function calls through input `in` (method or func field).
type flowInv struct {
	in   flowInput
	pos  token.Pos
	path []string
}

// flowSummary is the capflow-side per-function summary, complementing
// the write-effect summary: where may inputs escape to, which inputs
// are invoked through, and which inputs flow into each result.
type flowSummary struct {
	escapes []flowEsc
	invokes []flowInv
	results []map[flowInput]trackLevel
}

const maxFlowPath = 12

func appendPath(path []string, name string) []string {
	if len(path) >= maxFlowPath {
		return path
	}
	return append(append([]string{}, path...), name)
}

// chainSuffix renders an innermost-first call chain outermost-first for
// diagnostics. Empty for operations in the hypercall body itself.
func chainSuffix(path []string) string {
	if len(path) == 0 {
		return ""
	}
	rev := make([]string, len(path))
	for i, p := range path {
		rev[len(path)-1-i] = p
	}
	return " (via " + strings.Join(rev, " -> ") + ")"
}

// analyzer state -----------------------------------------------------------

type capflowState struct {
	prog  *Program
	cg    *CallGraph
	eff   *Effects
	sums  map[*types.Func]*flowSummary
	busy  map[*types.Func]bool
	reach map[*types.Func]bool // functions reachable from a destruction root
}

func runCapflow(pass *Pass) {
	st := &capflowState{
		prog: pass.Prog,
		cg:   pass.Prog.CallGraph(),
		eff:  pass.Prog.Effects(),
		sums: make(map[*types.Func]*flowSummary),
		busy: make(map[*types.Func]bool),
	}
	st.computeDestroyReach()
	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if isHypercallMethod(pkg, fd) {
					st.checkHypercall(pass, pkg, fd)
				} else {
					st.checkDirectMutation(pass, pkg, fd)
				}
			}
		}
	}
}

// destruction roots --------------------------------------------------------

// isDestructionRoot reports whether fn anchors a teardown path: the
// domain-destruction hypercall or the space-level revocation primitives
// it drives.
func isDestructionRoot(fn *types.Func) bool {
	switch fn.Name() {
	case "DestroyPD":
		return funcRecvName(fn) == "Kernel"
	case "Destroy", "Revoke":
		switch funcRecvName(fn) {
		case "Space", "MemSpace", "IOSpace":
			return true
		}
	}
	return false
}

func funcRecvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// computeDestroyReach marks every function reachable from a destruction
// root by forward BFS over the call graph: a valid caphold teardown
// must be one of these, so some destruction path provably releases the
// held reference.
func (st *capflowState) computeDestroyReach() {
	st.reach = make(map[*types.Func]bool)
	var queue []*types.Func
	for fn := range st.cg.Nodes {
		if isDestructionRoot(fn) {
			st.reach[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := st.cg.Nodes[fn]
		if node == nil {
			continue
		}
		for _, e := range node.Out {
			if !st.reach[e.Callee] {
				st.reach[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
}

// teardownValid reports whether a function with the given name exists
// and is a destruction root or reachable from one.
func (st *capflowState) teardownValid(name string) bool {
	for fn := range st.cg.Nodes {
		if fn.Name() == name && (isDestructionRoot(fn) || st.reach[fn]) {
			return true
		}
	}
	return false
}

func (st *capflowState) packageOf(pos token.Pos) *Package {
	for _, pkg := range st.prog.Pkgs {
		if fileOf(pkg, pos) != nil {
			return pkg
		}
	}
	return nil
}

// capholdAt finds a caphold annotation on pos's line (or the line
// above) and parses its `<why>; teardown=<Func>` payload.
func (st *capflowState) capholdAt(pos token.Pos) (why, teardown string, found bool) {
	pkg := st.packageOf(pos)
	if pkg == nil {
		return "", "", false
	}
	f := fileOf(pkg, pos)
	line := st.prog.Fset.Position(pos).Line
	for _, cg := range f.Comments {
		text := cg.Text()
		if !containsMarker(text, markCapHold) {
			continue
		}
		start := st.prog.Fset.Position(cg.Pos()).Line
		end := st.prog.Fset.Position(cg.End()).Line
		if line < start || line > end+1 {
			continue
		}
		rest := text[strings.Index(text, markCapHold)+len(markCapHold):]
		if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
			rest = rest[:nl]
		}
		parts := strings.Split(rest, ";")
		why = strings.TrimSpace(parts[0])
		for _, p := range parts[1:] {
			p = strings.TrimSpace(p)
			if rest, ok := strings.CutPrefix(p, "teardown="); ok {
				teardown = strings.TrimSpace(rest)
			}
		}
		return why, teardown, true
	}
	return "", "", false
}

// per-function summaries ---------------------------------------------------

// summaryExempt: the cap package and the space types ARE the mapping
// database — holding capability references there is the design, tracked
// by delegation trees and released by Revoke/Destroy. Their summaries
// record no escapes (their write effects still count as operations).
func summaryExempt(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == ModulePath+"/internal/cap" {
		return true
	}
	switch funcRecvName(fn) {
	case "Space", "MemSpace", "IOSpace":
		return true
	}
	return false
}

func (st *capflowState) summaryOf(fn *types.Func) *flowSummary {
	if s, ok := st.sums[fn]; ok {
		return s
	}
	if st.busy[fn] {
		return &flowSummary{} // recursion: one empty round, callers re-run never
	}
	node := st.cg.Node(fn)
	if node == nil || summaryExempt(fn) {
		s := &flowSummary{}
		st.sums[fn] = s
		return s
	}
	st.busy[fn] = true
	fr := st.newFrame(node, false)
	fr.propagate()
	fr.collect()
	delete(st.busy, fn)
	st.sums[fn] = fr.sum
	return fr.sum
}

// frames -------------------------------------------------------------------

type flowFrame struct {
	st    *capflowState
	node  *FuncNode
	pkg   *Package
	info  *types.Info
	hyper bool

	env       map[types.Object]valSet
	recvVar   types.Object
	paramVars []types.Object

	lookups   map[*ast.CallExpr]*capRoot
	creations map[*ast.CompositeLit]*capRoot
	roots     []*capRoot // hypercall mode

	sum *flowSummary // summary mode
}

func (st *capflowState) newFrame(node *FuncNode, hyper bool) *flowFrame {
	fr := &flowFrame{
		st:        st,
		node:      node,
		pkg:       node.Pkg,
		info:      node.Pkg.Info,
		hyper:     hyper,
		env:       make(map[types.Object]valSet),
		lookups:   make(map[*ast.CallExpr]*capRoot),
		creations: make(map[*ast.CompositeLit]*capRoot),
	}
	fd := node.Decl
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		fr.recvVar = fr.info.Defs[fd.Recv.List[0].Names[0]]
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			for len(fr.paramVars) <= idx {
				fr.paramVars = append(fr.paramVars, nil)
			}
			fr.paramVars[idx] = fr.info.Defs[name]
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	if !hyper {
		fr.sum = &flowSummary{}
		if sig, ok := node.Fn.Type().(*types.Signature); ok {
			fr.sum.results = make([]map[flowInput]trackLevel, sig.Results().Len())
			for i := range fr.sum.results {
				fr.sum.results[i] = make(map[flowInput]trackLevel)
			}
		}
		if fr.recvVar != nil {
			fr.env[fr.recvVar] = valSet{flowInput{recv: true}: lvlDirect}
		}
		for i, p := range fr.paramVars {
			if p != nil {
				fr.env[p] = valSet{flowInput{param: i}: lvlDirect}
			}
		}
	}
	return fr
}

func (fr *flowFrame) paramIndex(obj types.Object) int {
	for i, p := range fr.paramVars {
		if p != nil && obj == p {
			return i
		}
	}
	return -1
}

// inspectBody walks the function body, skipping function literals:
// closures are not tracked (stores inside them are charged to nothing),
// which is conservative in neither direction but keeps the model small;
// the kernel stores closures only as handlers, never capability refs.
func (fr *flowFrame) inspectBody(visit func(ast.Node) bool) {
	ast.Inspect(fr.node.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// scanLookups finds the hypercall's capability validations: Lookup /
// LookupTyped / LookupObj calls on a Space reached from the calling
// PD's own fields. Each becomes a tracked root.
func (fr *flowFrame) scanLookups() {
	callerVar := fr.paramVars[0]
	fr.inspectBody(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		op := sel.Sel.Name
		if op != "Lookup" && op != "LookupTyped" && op != "LookupObj" {
			return true
		}
		if typeNameOf(fr.info, sel.X) != "Space" {
			return true
		}
		if baseIdentObj(fr.info, sel.X) != callerVar || callerVar == nil {
			return true
		}
		switch op {
		case "LookupObj": // (obj, type, need): validates a parameter by identity
			if len(call.Args) != 3 {
				return true
			}
			id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj := fr.info.ObjectOf(id)
			idx := fr.paramIndex(obj)
			if idx < 0 {
				return true
			}
			t, tok := foldInt(fr.info, call.Args[1])
			r, rok := foldInt(fr.info, call.Args[2])
			root := &capRoot{pos: call.Pos(), param: idx, objType: -1, needKnown: tok && rok}
			if tok {
				root.objType = t
			}
			if rok {
				root.need = cap.Rights(r)
			}
			fr.roots = append(fr.roots, root)
			fr.lookups[call] = root
			set, ok := fr.env[obj]
			if !ok {
				set = make(valSet)
				fr.env[obj] = set
			}
			set.add(root, lvlDirect)
		case "LookupTyped": // (sel, type, need): selector-based validation
			if len(call.Args) != 3 {
				return true
			}
			t, tok := foldInt(fr.info, call.Args[1])
			r, rok := foldInt(fr.info, call.Args[2])
			root := &capRoot{pos: call.Pos(), param: -1, objType: -1, needKnown: tok && rok}
			if tok {
				root.objType = t
			}
			if rok {
				root.need = cap.Rights(r)
			}
			fr.roots = append(fr.roots, root)
			fr.lookups[call] = root
		case "Lookup": // (sel): untyped — lifetime rule only
			root := &capRoot{pos: call.Pos(), param: -1, objType: -1, bare: true}
			fr.roots = append(fr.roots, root)
			fr.lookups[call] = root
		}
		return true
	})
}

// creationRoot tracks hypercall-created kernel objects (only the
// lifetime rule applies to them: a fresh object escaping into kernel
// state needs an audited teardown exactly like a looked-up one).
var kernelObjectTypes = map[string]bool{
	"PD": true, "EC": true, "SC": true, "Portal": true, "Semaphore": true,
}

func (fr *flowFrame) creationRoot(lit *ast.CompositeLit) *capRoot {
	if !fr.hyper {
		return nil
	}
	if root, ok := fr.creations[lit]; ok {
		return root
	}
	tv, ok := fr.info.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || !kernelObjectTypes[named.Obj().Name()] {
		fr.creations[lit] = nil
		return nil
	}
	root := &capRoot{pos: lit.Pos(), param: -2, objType: -1, creation: true}
	fr.creations[lit] = root
	fr.roots = append(fr.roots, root)
	return root
}

// value evaluation ---------------------------------------------------------

func (fr *flowFrame) eval(expr ast.Expr) valSet {
	if tv, ok := fr.info.Types[expr]; ok && tv.Type != nil {
		if _, basic := tv.Type.Underlying().(*types.Basic); basic {
			return nil // scalar copy severs tracking
		}
	}
	switch e := expr.(type) {
	case *ast.Ident:
		if set, ok := fr.env[fr.info.ObjectOf(e)]; ok {
			return set
		}
	case *ast.ParenExpr:
		return fr.eval(e.X)
	case *ast.StarExpr:
		return fr.eval(e.X)
	case *ast.UnaryExpr:
		return fr.eval(e.X)
	case *ast.TypeAssertExpr:
		return fr.eval(e.X)
	case *ast.SliceExpr:
		return fr.eval(e.X)
	case *ast.SelectorExpr:
		inner := fr.eval(e.X)
		if len(inner) == 0 {
			return nil
		}
		out := make(valSet)
		for k, l := range inner {
			if l == lvlCapResult && e.Sel.Name == "Obj" {
				out.add(k, lvlDirect) // Capability.Obj IS the object
			} else {
				out.add(k, lvlGraph)
			}
		}
		return out
	case *ast.IndexExpr:
		inner := fr.eval(e.X)
		out := make(valSet)
		for k, l := range inner {
			if l == lvlCarrier {
				out.add(k, lvlCarrier) // element of a holding container
			} else {
				out.add(k, lvlGraph)
			}
		}
		return out
	case *ast.CompositeLit:
		out := make(valSet)
		if root := fr.creationRoot(e); root != nil {
			out.add(root, lvlDirect)
		}
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			for k, l := range fr.eval(v) {
				out.add(k, minLvl(l, lvlCarrier))
			}
		}
		return out
	case *ast.CallExpr:
		return fr.evalCall(e)
	}
	return nil
}

func (fr *flowFrame) evalCall(call *ast.CallExpr) valSet {
	if root, ok := fr.lookups[call]; ok {
		return valSet{root: lvlCapResult}
	}
	if tv, ok := fr.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return fr.eval(call.Args[0]) // conversion
		}
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fr.info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				out := make(valSet)
				for _, a := range call.Args {
					out.join(fr.eval(a))
				}
				return out
			}
			return nil
		}
	}
	callees := fr.st.cg.CalleesAt(call)
	if len(callees) == 0 {
		// Unknown callee: the result may carry any argument/receiver.
		out := make(valSet)
		for _, a := range call.Args {
			for k, l := range fr.eval(a) {
				out.add(k, minLvl(l, lvlCarrier))
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			for k, l := range fr.eval(sel.X) {
				out.add(k, minLvl(l, lvlCarrier))
			}
		}
		return out
	}
	out := make(valSet)
	for _, callee := range callees {
		sum := fr.st.summaryOf(callee)
		if sum == nil || len(sum.results) == 0 {
			continue
		}
		out.join(fr.mapResult(call, callee, sum.results[0]))
	}
	return out
}

func (fr *flowFrame) mapResult(call *ast.CallExpr, callee *types.Func, res map[flowInput]trackLevel) valSet {
	out := make(valSet)
	for in, lvl := range res {
		for k, al := range fr.inputValue(call, in) {
			out.add(k, minLvl(al, lvl))
		}
	}
	return out
}

// inputValue evaluates the caller-side expression feeding a callee
// input: the method receiver or the positional argument (with the
// variadic tail collapsing onto the last argument, like the effects
// engine).
func (fr *flowFrame) inputValue(call *ast.CallExpr, in flowInput) valSet {
	if in.recv {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return fr.eval(sel.X)
		}
		return nil
	}
	if in.param >= 0 && in.param < len(call.Args) {
		return fr.eval(call.Args[in.param])
	}
	if len(call.Args) > 0 && in.param >= len(call.Args) {
		return fr.eval(call.Args[len(call.Args)-1])
	}
	return nil
}

// propagation --------------------------------------------------------------

const maxFlowRounds = 30

func (fr *flowFrame) propagate() {
	if fr.hyper {
		fr.scanLookups()
	}
	for round := 0; round < maxFlowRounds; round++ {
		if !fr.propagateOnce() {
			break
		}
	}
}

func (fr *flowFrame) propagateOnce() bool {
	changed := false
	fr.inspectBody(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			sets := fr.evalRHSList(n.Lhs, n.Rhs)
			for i, lhs := range n.Lhs {
				if fr.bindLHS(lhs, sets[i]) {
					changed = true
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				sets := fr.evalRHSList(lhs, vs.Values)
				for i, name := range vs.Names {
					if fr.bindLHS(name, sets[i]) {
						changed = true
					}
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				inner := fr.eval(n.X)
				out := make(valSet)
				for k, l := range inner {
					if l == lvlCarrier {
						out.add(k, lvlCarrier)
					} else {
						out.add(k, lvlGraph)
					}
				}
				if fr.bindLHS(n.Value, out) {
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

func (fr *flowFrame) evalRHSList(lhs, rhs []ast.Expr) []valSet {
	out := make([]valSet, len(lhs))
	if len(rhs) == 1 && len(lhs) > 1 {
		call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if !ok {
			out[0] = fr.eval(rhs[0]) // v, ok := x.(T) / m[k]
			return out
		}
		if root, ok := fr.lookups[call]; ok {
			out[0] = valSet{root: lvlCapResult} // Capability result; error slot untracked
			return out
		}
		for _, callee := range fr.st.cg.CalleesAt(call) {
			sum := fr.st.summaryOf(callee)
			if sum == nil || len(sum.results) != len(lhs) {
				continue
			}
			for i := range out {
				mapped := fr.mapResult(call, callee, sum.results[i])
				if out[i] == nil {
					out[i] = mapped
				} else {
					out[i].join(mapped)
				}
			}
		}
		return out
	}
	for i := range lhs {
		if i < len(rhs) {
			out[i] = fr.eval(rhs[i])
		}
	}
	return out
}

// bindLHS merges a value's tracking into an assignment target. A plain
// local identifier takes the set directly; a store through a local's
// field makes that local a carrier of the stored roots (stashing an EC
// in a local struct keeps the EC tracked when the struct later
// escapes). Stores through the receiver or globals are not bindings —
// they are escapes, handled by collect.
func (fr *flowFrame) bindLHS(lhs ast.Expr, set valSet) bool {
	if len(set) == 0 {
		return false
	}
	chained := false
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := fr.info.ObjectOf(x)
			if obj == nil || x.Name == "_" || obj == fr.recvVar {
				return false
			}
			if v, ok := obj.(*types.Var); ok && isPackageLevelVar(v) {
				return false
			}
			cur, ok := fr.env[obj]
			if !ok {
				cur = make(valSet)
				fr.env[obj] = cur
			}
			if !chained {
				return cur.join(set)
			}
			capped := make(valSet)
			for k, l := range set {
				capped.add(k, minLvl(l, lvlCarrier))
			}
			return cur.join(capped)
		case *ast.SelectorExpr:
			e, chained = x.X, true
		case *ast.IndexExpr:
			e, chained = x.X, true
		case *ast.StarExpr:
			e, chained = x.X, true
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// collection ---------------------------------------------------------------

// targetKind classifies where a store lands.
type targetKind uint8

const (
	tgtNone targetKind = iota
	tgtRecv             // the frame's receiver: kernel state in a hypercall
	tgtGlobal
	tgtTracked // hypercall mode: an object the hypercall validated
	tgtParam
	tgtLocal
)

type storeTarget struct {
	kind  targetKind
	param int
}

func (fr *flowFrame) classifyTarget(expr ast.Expr) storeTarget {
	e := ast.Unparen(expr)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := fr.info.ObjectOf(x)
			if obj == nil {
				return storeTarget{kind: tgtNone}
			}
			if obj == fr.recvVar {
				return storeTarget{kind: tgtRecv}
			}
			if v, ok := obj.(*types.Var); ok && isPackageLevelVar(v) {
				return storeTarget{kind: tgtGlobal}
			}
			if !fr.hyper {
				if idx := fr.paramIndex(obj); idx >= 0 {
					return storeTarget{kind: tgtParam, param: idx}
				}
			}
			if set, ok := fr.env[obj]; ok {
				for _, l := range set {
					if l == lvlDirect {
						return storeTarget{kind: tgtTracked}
					}
				}
			}
			if fr.hyper {
				if idx := fr.paramIndex(obj); idx >= 0 {
					return storeTarget{kind: tgtParam, param: idx}
				}
			}
			return storeTarget{kind: tgtLocal}
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return storeTarget{kind: tgtNone}
		}
	}
}

func (fr *flowFrame) collect() {
	fr.inspectBody(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for i, lhs := range n.Lhs {
					fr.collectWrite(lhs)
					fr.collectEscape(lhs, fr.rhsFor(n, i), n.Pos())
				}
			}
		case *ast.IncDecStmt:
			fr.collectWrite(n.X)
		case *ast.CallExpr:
			fr.collectCall(n)
		case *ast.ReturnStmt:
			fr.collectReturn(n)
		}
		return true
	})
}

func (fr *flowFrame) rhsFor(n *ast.AssignStmt, i int) valSet {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		sets := fr.evalRHSList(n.Lhs, n.Rhs)
		return sets[i]
	}
	if i < len(n.Rhs) {
		return fr.eval(n.Rhs[i])
	}
	return nil
}

// collectWrite records a state write through a tracked value: the
// written storage is whatever the chain base reaches (field, element or
// pointee), so direct- and graph-level roots get a write operation;
// carriers do not (writing next to an object is not writing it).
func (fr *flowFrame) collectWrite(lhs ast.Expr) {
	var base ast.Expr
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		base = x.X
	case *ast.IndexExpr:
		base = x.X
	case *ast.StarExpr:
		base = x.X
	default:
		return
	}
	for k, l := range fr.eval(base) {
		if l == lvlDirect || l == lvlGraph {
			fr.onWrite(k, lhs.Pos(), nil)
		}
	}
}

// collectEscape records stores of tracked references (direct, carrier
// or capability level — graph-level reachability is not a retained
// reference) into state that outlives the call.
func (fr *flowFrame) collectEscape(lhs ast.Expr, rhs valSet, pos token.Pos) {
	esc := make(valSet)
	for k, l := range rhs {
		if l >= lvlCarrier {
			esc.add(k, l)
		}
	}
	if len(esc) == 0 {
		return
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if v, ok := fr.info.ObjectOf(id).(*types.Var); ok && isPackageLevelVar(v) {
			fr.escapeTo(storeTarget{kind: tgtGlobal}, esc, pos, nil)
		}
		return // plain local assignment: a binding, not an escape
	}
	fr.escapeTo(fr.classifyTarget(lhs), esc, pos, nil)
}

// escapeTo dispatches escaping roots against a classified store target.
// path is the call chain for escapes mapped from callee summaries (nil
// for stores in this frame's own body).
func (fr *flowFrame) escapeTo(tgt storeTarget, roots valSet, pos token.Pos, path []string) {
	switch tgt.kind {
	case tgtRecv:
		fr.onEscape(roots, escRecv, 0, pos, path, "kernel state")
	case tgtGlobal:
		fr.onEscape(roots, escGlobal, 0, pos, path, "a package-level variable")
	case tgtParam:
		fr.onEscape(roots, escParam, tgt.param, pos, path, "caller-visible storage")
	case tgtTracked:
		// Storing a tracked reference into another validated object
		// (ec.SC = sc) is a state write on the stored object, not a
		// lifetime leak: the holder's own teardown governs it.
		for k := range roots {
			fr.onWrite(k, pos, path)
		}
	}
}

func (fr *flowFrame) onEscape(roots valSet, tkind escTargetKind, tparam int, pos token.Pos, path []string, dest string) {
	if fr.hyper {
		for k := range roots {
			if root, ok := k.(*capRoot); ok {
				root.escapes = append(root.escapes, capEscape{pos: pos, path: path, dest: dest})
			}
		}
		return
	}
	self := FuncDisplayName(fr.node.Fn)
	for k := range roots {
		if in, ok := k.(flowInput); ok {
			fr.sum.escapes = append(fr.sum.escapes, flowEsc{
				in: in, tkind: tkind, tparam: tparam, pos: pos, path: appendPath(path, self),
			})
		}
	}
}

func (fr *flowFrame) onWrite(key any, pos token.Pos, path []string) {
	if !fr.hyper {
		return // callee write effects flow through the effects engine
	}
	if root, ok := key.(*capRoot); ok {
		root.ops = append(root.ops, capOp{kind: opWrite, pos: pos, path: path})
	}
}

func (fr *flowFrame) onInvoke(key any, pos token.Pos, path []string) {
	if fr.hyper {
		if root, ok := key.(*capRoot); ok {
			root.ops = append(root.ops, capOp{kind: opInvoke, pos: pos, path: path})
		}
		return
	}
	if in, ok := key.(flowInput); ok {
		fr.sum.invokes = append(fr.sum.invokes, flowInv{in: in, pos: pos, path: appendPath(path, FuncDisplayName(fr.node.Fn))})
	}
}

func (fr *flowFrame) collectCall(call *ast.CallExpr) {
	if _, ok := fr.lookups[call]; ok {
		return // the validation itself is not an operation
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fr.isInvocation(sel) {
			for k, l := range fr.eval(sel.X) {
				if l == lvlDirect || l == lvlCapResult {
					fr.onInvoke(k, call.Pos(), nil)
				}
			}
		}
	}
	if tv, ok := fr.info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := fr.info.Uses[id].(*types.Builtin); ok {
			return
		}
	}
	for _, callee := range fr.st.cg.CalleesAt(call) {
		sum := fr.st.summaryOf(callee)
		for _, esc := range sum.escapes {
			fr.mapEscape(call, esc)
		}
		for _, inv := range sum.invokes {
			for k, l := range fr.inputValue(call, inv.in) {
				if l == lvlDirect {
					fr.onInvoke(k, inv.pos, fr.mappedPath(inv.path))
				}
			}
		}
		if fr.hyper {
			fr.mapWriteEffects(call, callee)
		}
	}
}

// isInvocation reports whether sel is a method call or a call through a
// function-typed field — calling through the object either way.
func (fr *flowFrame) isInvocation(sel *ast.SelectorExpr) bool {
	s, ok := fr.info.Selections[sel]
	if !ok {
		return false
	}
	switch s.Kind() {
	case types.MethodVal:
		return true
	case types.FieldVal:
		_, isFunc := s.Type().Underlying().(*types.Signature)
		return isFunc
	}
	return false
}

// mappedPath extends a callee-side chain with this frame's own name
// when building a summary; hypercall frames keep the chain as-is (the
// hypercall is the diagnostic's subject, not a link).
func (fr *flowFrame) mappedPath(path []string) []string {
	if fr.hyper {
		return path
	}
	return appendPath(path, FuncDisplayName(fr.node.Fn))
}

// mapEscape maps one callee escape through a call site: if a tracked
// reference feeds the escaping input, the store target is resolved in
// this frame (the callee's receiver/argument expression) and the escape
// re-classified here.
func (fr *flowFrame) mapEscape(call *ast.CallExpr, esc flowEsc) {
	feeding := make(valSet)
	for k, l := range fr.inputValue(call, esc.in) {
		if l >= lvlCarrier {
			feeding.add(k, l)
		}
	}
	if len(feeding) == 0 {
		return
	}
	path := fr.mappedPath(esc.path)
	if esc.tkind == escGlobal {
		fr.escapeTo(storeTarget{kind: tgtGlobal}, feeding, esc.pos, path)
		return
	}
	var target ast.Expr
	if esc.tkind == escRecv {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		target = sel.X
	} else {
		if esc.tparam < 0 || esc.tparam >= len(call.Args) {
			return
		}
		target = call.Args[esc.tparam]
	}
	fr.escapeTo(fr.classifyTarget(target), feeding, esc.pos, path)
}

// mapWriteEffects turns the callee's write-effect summary into
// operations on tracked objects: a callee that writes through its
// receiver or a parameter writes whatever object the hypercall passed
// there.
func (fr *flowFrame) mapWriteEffects(call *ast.CallExpr, callee *types.Func) {
	es := fr.st.eff.Summary(callee)
	if es == nil {
		return
	}
	for _, w := range es.Writes {
		var site valSet
		switch w.Region.Kind {
		case RegionRecv:
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				site = fr.eval(sel.X)
			}
		case RegionParam:
			site = fr.inputValue(call, flowInput{param: w.Region.Param})
		default:
			continue
		}
		for k, l := range site {
			if l == lvlDirect || l == lvlGraph {
				fr.onWrite(k, w.Pos, w.Path)
			}
		}
	}
}

func (fr *flowFrame) collectReturn(n *ast.ReturnStmt) {
	if fr.hyper || fr.sum == nil || len(n.Results) != len(fr.sum.results) {
		return
	}
	for i, r := range n.Results {
		for k, l := range fr.eval(r) {
			if in, ok := k.(flowInput); ok {
				if cur, exists := fr.sum.results[i][in]; !exists || l > cur {
					fr.sum.results[i][in] = l
				}
			}
		}
	}
}

// hypercall verification ---------------------------------------------------

func (st *capflowState) checkHypercall(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	node := st.cg.Node(fn)
	if node == nil {
		return
	}
	fr := st.newFrame(node, true)
	fr.propagate()
	fr.collect()

	name := fd.Name.Name
	rows, hasRow := HypercallRights[name]
	if !hasRow {
		pass.Reportf(fd.Name.Pos(), "hypercall Kernel.%s has no entry in the capability-rights table (HypercallRights in caprights.go): declare which capabilities it validates so the interface stays reviewed", name)
	} else {
		st.checkTable(pass, fr, name, rows, fd)
	}
	seen := make(map[string]bool)
	for _, root := range fr.roots {
		for _, esc := range root.escapes {
			st.checkEscape(pass, root, esc, name, seen)
		}
	}
	for _, root := range fr.roots {
		st.checkRights(pass, root, name)
	}
}

// checkTable cross-checks the declared rows against the lookups the
// body actually performs, in both directions.
func (st *capflowState) checkTable(pass *Pass, fr *flowFrame, name string, rows []DeclaredLookup, fd *ast.FuncDecl) {
	matched := make([]bool, len(rows))
	for _, root := range fr.roots {
		if root.creation || root.bare || !root.needKnown {
			continue
		}
		found := false
		for i, row := range rows {
			if !matched[i] && row.Param == root.param && int64(row.Type) == root.objType && row.Need == root.need {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			pass.Reportf(root.pos, "hypercall Kernel.%s validates a %s with rights %s, but the capability-rights table declares no such lookup (update HypercallRights alongside the code)", name, objTypeName(root.objType), root.need)
		}
	}
	for i, row := range rows {
		if !matched[i] {
			pass.Reportf(fd.Name.Pos(), "the capability-rights table declares that Kernel.%s validates a %s with rights %s, but the body performs no such lookup (specification/implementation drift)", name, objTypeName(int64(row.Type)), row.Need)
		}
	}
}

// checkEscape enforces the lifetime rule on one escaping reference:
// the store must carry a well-formed caphold annotation whose teardown
// lies on a destruction path; a valid hold becomes an opStore operation
// (and therefore needs control rights at lookup time).
func (st *capflowState) checkEscape(pass *Pass, root *capRoot, esc capEscape, name string, seen map[string]bool) {
	root.escaped = true
	objDesc := "the " + objTypeName(root.objType) + " validated by this lookup"
	if root.creation {
		objDesc = "the kernel object created here"
	} else if root.objType < 0 {
		objDesc = "the object validated by this lookup"
	}
	report := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d|%s", root.pos, msg)
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Reportf(root.pos, "%s", msg)
	}
	why, teardown, found := st.capholdAt(esc.pos)
	if !found {
		report("hypercall Kernel.%s stores %s into %s%s without a caphold annotation (lifetime rule: the kernel must not retain hypercall references past the call unless the hold is audited with `// caphold: <why>; teardown=<Func>`)",
			name, objDesc, esc.dest, chainSuffix(esc.path))
		return
	}
	if why == "" || teardown == "" {
		report("hypercall Kernel.%s stores %s into %s%s under a malformed caphold annotation: the form is `// caphold: <why>; teardown=<Func>` with both parts present",
			name, objDesc, esc.dest, chainSuffix(esc.path))
		return
	}
	if !st.teardownValid(teardown) {
		report("hypercall Kernel.%s stores %s into %s%s under a caphold annotation whose teardown %s is not a destruction root (Kernel.DestroyPD or a space Destroy/Revoke) or reachable from one — no destruction path releases the held reference",
			name, objDesc, esc.dest, chainSuffix(esc.path), teardown)
		return
	}
	root.ops = append(root.ops, capOp{kind: opStore, pos: esc.pos, path: esc.path})
}

// checkRights enforces sufficiency (rule 1) and least privilege
// (rule 2) for one lookup against the operations collected downstream.
func (st *capflowState) checkRights(pass *Pass, root *capRoot, name string) {
	if !root.needKnown {
		return
	}
	ops := root.ops
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].pos != ops[j].pos {
			return ops[i].pos < ops[j].pos
		}
		if ops[i].kind != ops[j].kind {
			return ops[i].kind < ops[j].kind
		}
		return strings.Join(ops[i].path, "/") < strings.Join(ops[j].path, "/")
	})
	for _, op := range ops {
		req := opRequiredRights(op.kind, cap.ObjType(root.objType))
		if req&^root.need != 0 {
			pass.Reportf(root.pos, "hypercall Kernel.%s validates this %s with rights %s, but %s%s requires %s",
				name, objTypeName(root.objType), root.need, op.kind, chainSuffix(op.path), req)
			return // rule 2 is noise once the lookup is known insufficient
		}
	}
	used := cap.Rights(0)
	for _, op := range ops {
		used |= opRequiredRights(op.kind, cap.ObjType(root.objType))
	}
	if root.escaped {
		used |= cap.RightCtrl // any retention exercises control, audited or not
	}
	if unused := root.need &^ used; unused != 0 {
		pass.Reportf(root.pos, "hypercall Kernel.%s requests rights %s on this %s but never exercises %s (least privilege: demand only the rights the downstream operations need)",
			name, root.need, objTypeName(root.objType), unused)
	}
}

// hypercall bypass rule ----------------------------------------------------

// capMutOps are the space mutations that must stay behind the hypercall
// layer (InsertRoot is deliberately absent: it is the boot-time filler).
var capMutOps = map[string]bool{
	"Insert": true, "Delegate": true, "Revoke": true, "Remove": true, "Destroy": true,
}

var spaceTypeNames = map[string]bool{
	"Space": true, "MemSpace": true, "IOSpace": true,
}

// checkDirectMutation flags capability/resource-space mutations outside
// the Kernel and the spaces themselves: user-level components must go
// through hypercalls, where validation and accounting live.
func (st *capflowState) checkDirectMutation(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	switch recvTypeName(fd) {
	case "Kernel", "Space", "MemSpace", "IOSpace":
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !capMutOps[sel.Sel.Name] {
			return true
		}
		tname := typeNameOf(pkg.Info, sel.X)
		if !spaceTypeNames[tname] {
			return true
		}
		pass.Reportf(call.Pos(), "%s calls %s.%s directly — a hypercall-layer bypass: capability and resource spaces may only be mutated through Kernel hypercalls, which validate and account the operation", fd.Name.Name, tname, sel.Sel.Name)
		return true
	})
}

// small helpers ------------------------------------------------------------

// typeNameOf names the (pointer-stripped) named type of an expression.
func typeNameOf(info *types.Info, expr ast.Expr) string {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// baseIdentObj resolves the base identifier of a selector chain
// (caller.Caps -> caller) to its object.
func baseIdentObj(info *types.Info, expr ast.Expr) types.Object {
	e := ast.Unparen(expr)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// foldInt extracts a compile-time integer constant (the type and rights
// arguments of a lookup).
func foldInt(info *types.Info, expr ast.Expr) (int64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}
