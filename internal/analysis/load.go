package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this repository's module.
// The loader maps "nova/..." imports onto directories under the repo
// root, so packages type-check from source without export data or any
// external loader dependency (go.mod stays empty).
const ModulePath = "nova"

// Package is one loaded, type-checked package: syntax plus type
// information, as the analyzers consume it.
type Package struct {
	Path  string // import path ("nova/internal/hw", "fixture/nopanic", ...)
	Dir   string // directory the files came from
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a set of packages loaded together. All packages share one
// FileSet and one importer, so types.Object identities are comparable
// across packages (the chargecheck call graph depends on this).
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	byPath map[string]*Package
	cg     *CallGraph // built lazily by CallGraph()
	eff    *Effects   // built lazily by Effects()
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// Loader type-checks packages from source using only the standard
// library. Import resolution:
//
//   - "unsafe" resolves to types.Unsafe;
//   - paths under ModulePath resolve to directories inside Root;
//   - anything else resolves to $GOROOT/src/<path> (standard library).
//
// Build-constrained file selection is delegated to go/build's
// ImportDir, which honours //go:build lines and GOOS/GOARCH suffixes
// without consulting module metadata.
type Loader struct {
	Root string // repository root (directory containing go.mod)

	fset  *token.FileSet
	ctxt  build.Context
	cache map[string]*cacheEntry
}

type cacheEntry struct {
	pkg *Package
	err error
	// busy marks an import in progress, to fail cleanly on cycles
	// instead of recursing forever.
	busy bool
}

// NewLoader returns a loader rooted at the repository root.
func NewLoader(root string) *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false // pure-Go view; cgo files are skipped
	return &Loader{
		Root:  root,
		fset:  token.NewFileSet(),
		ctxt:  ctxt,
		cache: make(map[string]*cacheEntry),
	}
}

// goroot returns the standard library source root.
func goroot() string {
	if g := os.Getenv("GOROOT"); g != "" {
		return g
	}
	return runtime.GOROOT()
}

// dirFor maps an import path to the directory holding its sources.
func (l *Loader) dirFor(path string) (string, error) {
	if path == ModulePath {
		return l.Root, nil
	}
	if strings.HasPrefix(path, ModulePath+"/") {
		return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, ModulePath+"/"))), nil
	}
	dir := filepath.Join(goroot(), "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return "", fmt.Errorf("analysis: cannot resolve import %q (not in module %s, not in GOROOT)", path, ModulePath)
	}
	return dir, nil
}

// sourceFiles lists the build-constrained non-test Go files of dir.
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := append([]string{}, bp.GoFiles...)
	sort.Strings(files) // deterministic parse order
	for i, f := range files {
		files[i] = filepath.Join(dir, f)
	}
	return files, nil
}

// LoadDir loads and type-checks the package in dir under the given
// import path, pulling in dependencies from source as needed.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	return l.load(path, dir)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	pkg, err := l.load(path, dir)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if e, ok := l.cache[path]; ok {
		if e.busy {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return e.pkg, e.err
	}
	e := &cacheEntry{busy: true}
	l.cache[path] = e
	e.pkg, e.err = l.loadUncached(path, dir)
	e.busy = false
	return e.pkg, e.err
}

func (l *Loader) loadUncached(path, dir string) (*Package, error) {
	filenames, err := l.sourceFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", l.ctxt.GOARCH),
		// The repo must always type-check; fail loudly on any error.
		Error: nil,
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// LoadRepo loads every package of the repository (directories under
// root containing Go files, skipping testdata, hidden directories, and
// this module's vendor dir if one ever appears) into one Program.
func LoadRepo(root string) (*Program, error) {
	l := NewLoader(root)
	dirs, err := repoPackageDirs(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.fset, byPath: make(map[string]*Package)}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := ModulePath
		if rel != "." {
			path = ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[path] = pkg
	}
	return prog, nil
}

// LoadDirs loads the given directories (with synthetic import paths
// derived from their base names) into one Program — used by the fixture
// tests, where each testdata directory is a standalone package.
func LoadDirs(root string, dirs []string) (*Program, error) {
	l := NewLoader(root)
	prog := &Program{Fset: l.fset, byPath: make(map[string]*Package)}
	for _, dir := range dirs {
		path := "fixture/" + filepath.Base(dir)
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[path] = pkg
	}
	return prog, nil
}

// repoPackageDirs walks root and returns every directory containing at
// least one buildable non-test Go file.
func repoPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
