package analysis

import (
	"testing"

	"nova/internal/walltime"
)

// suiteBudgetSeconds bounds the full-repository suite run. The gate
// runs on every test invocation and before every commit; if it cannot
// stay fast it will be bypassed. The current run (load + type-check +
// call graph + effect fixpoint + ten analyzers) takes a few seconds;
// the bound leaves an order of magnitude of headroom for slow CI
// machines while still catching a fixpoint that stops converging.
const suiteBudgetSeconds = 60.0

// TestSuiteRuntimeBudget asserts the analyzer gate stays affordable.
func TestSuiteRuntimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo suite run")
	}
	sw := walltime.Start()
	diags, err := RunSuite(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := sw.Seconds()
	t.Logf("suite: %d finding(s) in %.2fs", len(diags), elapsed)
	if elapsed > suiteBudgetSeconds {
		t.Errorf("full suite took %.1fs, budget is %.0fs — an analyzer fixpoint is likely diverging", elapsed, suiteBudgetSeconds)
	}
}
