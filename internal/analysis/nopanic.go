package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Nopanic forbids panic() in the kernel, IPC, vTLB and device paths.
// NOVA's isolation argument (§4.2) requires that a misbehaving guest or
// VMM takes down only itself; in this reproduction a panic in a shared
// path (kernel object code, device models, the instruction emulator)
// tears down the whole simulated machine — every VM at once. Failures
// must instead surface as error returns the kernel converts into
// killVM, charging only the offending domain.
//
// A panic is permitted only where it asserts a genuine internal
// invariant whose violation means the simulation itself is broken (not
// reachable from guest or user input), and the call site must say so: a
// `// invariant: <why this cannot fire from guest input>` comment on
// the panic's line or the line(s) directly above it.
var Nopanic = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic() in kernel/IPC/vTLB/device paths unless justified by an // invariant: comment",
	run:  runNopanic,
}

func runNopanic(pass *Pass) {
	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			covered := invariantLines(pass.Prog, f)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true // a local function shadowing the builtin
				}
				line := pass.Prog.Fset.Position(call.Pos()).Line
				if covered[line] {
					return true
				}
				pass.Reportf(call.Pos(), "panic() in kernel/device path of %s without an // invariant: justification (return an error; the kernel isolates the failing domain)", pkg.Path)
				return true
			})
		}
	}
}

// invariantLines returns the set of source lines on which a panic is
// justified: every line of a comment group containing "invariant:",
// plus the line immediately after it (the common comment-above-panic
// form) — trailing same-line comments are covered by the former.
func invariantLines(prog *Program, f *ast.File) map[int]bool {
	covered := make(map[int]bool)
	for _, cg := range f.Comments {
		if !strings.Contains(cg.Text(), "invariant:") {
			continue
		}
		start := prog.Fset.Position(cg.Pos()).Line
		end := prog.Fset.Position(cg.End()).Line
		for l := start; l <= end+1; l++ {
			covered[l] = true
		}
	}
	return covered
}
