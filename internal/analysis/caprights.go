package analysis

import "nova/internal/cap"

// This file is the declared operation→rights contract of the hypercall
// layer: the machine-checked analogue of the paper's hypercall interface
// table (§6 lists, for every hypercall, which capability the caller must
// present and with which rights). The capflow analyzer cross-checks this
// table against the kernel sources in both directions — every hypercall
// must have a row, and every row must correspond to a validation the
// body actually performs — and then verifies that the rights each row
// requests are exactly the rights the downstream dataflow exercises.
//
// Editing rule: a change to a hypercall's validation (a new LookupObj,
// a different rights mask) and a change to this table must land
// together, or capflow fails the repo gate. That is the point — the
// table IS the reviewed interface specification, and drift between
// specification and implementation is a finding, not a merge.

// DeclaredLookup is one row of a hypercall's validation contract: which
// parameter (or selector) is validated, as what object type, with what
// rights.
type DeclaredLookup struct {
	// Param is the index of the validated hypercall parameter, counting
	// the calling PD as parameter 0. Param == -1 declares a
	// selector-based lookup (LookupTyped on a cap.Selector argument)
	// instead of an object-identity validation.
	Param int
	Type  cap.ObjType
	Need  cap.Rights
}

// HypercallRights maps each hypercall method of the kernel to its
// declared validations. An empty row declares that the hypercall
// validates no kernel-object argument (creation calls, which insert
// into the caller's own space, and revocation calls, which operate on
// the caller's own selectors).
//
// The Fix* rows belong to the capflow fixture package
// (testdata/src/capflow), whose hypercall-shaped methods exercise the
// analyzer's rules; they coexist here because the table is keyed by
// method name and the fixture names never collide with real hypercalls.
var HypercallRights = map[string][]DeclaredLookup{
	// --- object creation: the new object lands in the caller's own
	// capability space; only container arguments need validation.
	"CreatePD":        {},
	"CreatePortal":    {},
	"CreateSemaphore": {},
	"CreateEC":        {{Param: 2, Type: cap.ObjPD, Need: cap.RightCtrl}},
	"CreateVCPU":      {{Param: 2, Type: cap.ObjPD, Need: cap.RightCtrl}},
	"CreateSC":        {{Param: 2, Type: cap.ObjEC, Need: cap.RightCtrl}},

	// --- delegation and revocation: delegating into a destination
	// domain requires control over that domain; revocation works on the
	// caller's own selectors and needs no validation.
	"DelegateCap": {{Param: 2, Type: cap.ObjPD, Need: cap.RightCtrl}},
	"DelegateMem": {{Param: 2, Type: cap.ObjPD, Need: cap.RightCtrl}},
	"DelegateIO":  {{Param: 1, Type: cap.ObjPD, Need: cap.RightCtrl}},
	"RevokeCap":   {},
	"RevokeMem":   {},

	// --- interrupt routing and vCPU control.
	"AssignGSI":     {{Param: 2, Type: cap.ObjSemaphore, Need: cap.RightCtrl}},
	"AssignGSIToVM": {{Param: 2, Type: cap.ObjEC, Need: cap.RightCtrl}},
	"Recall":        {{Param: 1, Type: cap.ObjEC, Need: cap.RightCtrl}},
	"InjectIRQ":     {{Param: 1, Type: cap.ObjEC, Need: cap.RightCtrl}},
	"DestroyPD":     {{Param: 1, Type: cap.ObjPD, Need: cap.RightCtrl}},

	// --- communication: signalling and portal traversal need call
	// rights, not control.
	"SemUp": {{Param: 1, Type: cap.ObjSemaphore, Need: cap.RightCall}},
	"Call":  {{Param: -1, Type: cap.ObjPortal, Need: cap.RightCall}},

	// --- capflow fixture rows (testdata/src/capflow).
	"FixSignalBadRights": {{Param: 1, Type: cap.ObjSemaphore, Need: cap.RightRead}},
	"FixSignalOK":        {{Param: 1, Type: cap.ObjSemaphore, Need: cap.RightCall}},
	"FixOverRequest":     {{Param: 1, Type: cap.ObjEC, Need: cap.RightCtrl | cap.RightCall}},
	"FixRetain":          {{Param: 1, Type: cap.ObjSemaphore, Need: cap.RightCtrl}},
	"FixHold":            {{Param: 1, Type: cap.ObjSemaphore, Need: cap.RightCtrl}},
	"FixHoldBadTeardown": {{Param: 1, Type: cap.ObjEC, Need: cap.RightCtrl}},
	"FixChain":           {{Param: 1, Type: cap.ObjEC, Need: cap.RightCtrl}},
	"FixDrift":           {{Param: 1, Type: cap.ObjEC, Need: cap.RightCtrl}},
	"FixCallPortal":      {{Param: -1, Type: cap.ObjPortal, Need: cap.RightCall}},
	"FixCallBadRights":   {{Param: -1, Type: cap.ObjPortal, Need: cap.RightRead}},
}

// opKind classifies what a hypercall does with a looked-up object.
type opKind uint8

const (
	// opWrite: the hypercall (or a callee) stores into the object's own
	// state — mutating a semaphore counter, marking a PD dead, binding
	// an SC to an EC.
	opWrite opKind = iota
	// opInvoke: the hypercall calls through the object — traversing a
	// portal's handler, methods on the object itself.
	opInvoke
	// opStore: the hypercall retains a reference to the object in state
	// that outlives the call, under a validated caphold annotation.
	opStore
)

func (k opKind) String() string {
	switch k {
	case opWrite:
		return "a state write"
	case opInvoke:
		return "an invocation"
	case opStore:
		return "retaining the reference"
	}
	return "an operation"
}

// opRequiredRights is the operation→rights half of the contract: the
// rights a hypercall must have demanded at lookup time to be allowed to
// perform the operation downstream. Mutating or retaining a kernel
// object needs control; communication objects (portals, semaphores) are
// designed to be written/traversed by mere callers, so their write and
// invoke operations need only call rights — but retaining them still
// needs control.
func opRequiredRights(k opKind, t cap.ObjType) cap.Rights {
	switch k {
	case opWrite, opInvoke:
		if t == cap.ObjPortal || t == cap.ObjSemaphore {
			return cap.RightCall
		}
		return cap.RightCtrl
	default: // opStore
		return cap.RightCtrl
	}
}

// objTypeName names an object type in diagnostics. It goes through the
// numeric value rather than cap.ObjType.String so fixture-declared
// constants (same iota order, distinct named types) render identically.
func objTypeName(t int64) string {
	switch cap.ObjType(t) {
	case cap.ObjPD:
		return "PD"
	case cap.ObjEC:
		return "EC"
	case cap.ObjSC:
		return "SC"
	case cap.ObjPortal:
		return "Portal"
	case cap.ObjSemaphore:
		return "Semaphore"
	}
	return "object"
}
